//! STR bulk loading vs incremental insertion: the Step-0 loader may only
//! change page boundaries (build cost, page counts, I/O, candidate
//! *order*) — never join or query *results*. This suite pins that down
//! across workload shapes × Step-1 backends × execution policies, the
//! acceptance matrix of the batched hot-path PR.

use msj::core::{Backend, Execution, JoinConfig, MultiStepJoin, TreeLoader};
use msj::geom::{ObjectId, Point, Polygon, Relation};

fn sorted(mut v: Vec<(ObjectId, ObjectId)>) -> Vec<(ObjectId, ObjectId)> {
    v.sort_unstable();
    v
}

/// Thin crossing slivers whose MBRs are useless — the pathological shape
/// from `pathological_inputs.rs`, reused as a loader workload.
fn needle_relations() -> (Relation, Relation) {
    let needle = |x0: f64, y0: f64, dx: f64, dy: f64| {
        let along = Point::new(dx, dy);
        let across = along.perp().normalized().unwrap() * 1e-3;
        Polygon::new(vec![
            Point::new(x0, y0),
            Point::new(x0 + along.x, y0 + along.y),
            Point::new(x0 + along.x + across.x, y0 + along.y + across.y),
            Point::new(x0 + across.x, y0 + across.y),
        ])
        .unwrap()
        .into()
    };
    let a = Relation::from_regions((0..12).map(|i| {
        let t = i as f64 / 12.0 * std::f64::consts::TAU;
        needle(0.0, 0.0, 10.0 * t.cos(), 10.0 * t.sin())
    }));
    let b = Relation::from_regions((0..12).map(|i| {
        let t = (i as f64 + 0.5) / 12.0 * std::f64::consts::TAU;
        needle(
            5.0 * t.cos(),
            5.0 * t.sin(),
            -10.0 * t.sin(),
            10.0 * t.cos(),
        )
    }));
    (a, b)
}

fn workloads() -> Vec<(&'static str, Relation, Relation)> {
    let mut out = vec![
        (
            "carto",
            msj::datagen::small_carto(60, 24.0, 4001),
            msj::datagen::small_carto(60, 24.0, 4002),
        ),
        (
            "holed",
            msj::datagen::carto_with_holes(40, 24.0, 4003),
            msj::datagen::carto_with_holes(40, 24.0, 4004),
        ),
        (
            "skewed",
            msj::datagen::skewed_carto(60, 24.0, 4005),
            msj::datagen::skewed_carto(60, 24.0, 4006),
        ),
    ];
    let (a, b) = needle_relations();
    out.push(("pathological", a, b));
    out
}

fn backends() -> [Backend; 2] {
    [
        Backend::RStarTraversal,
        Backend::PartitionedSweep {
            tiles_per_axis: 4,
            threads: 2,
        },
    ]
}

/// The full acceptance matrix: response sets must be byte-identical
/// across {STR, incremental} × {R*-traversal, partitioned sweep} ×
/// {serial, fused}, on every workload shape.
#[test]
fn loaders_backends_and_executions_agree_everywhere() {
    for (name, a, b) in &workloads() {
        let mut reference: Option<Vec<(ObjectId, ObjectId)>> = None;
        for loader in [TreeLoader::Str, TreeLoader::Incremental] {
            for backend in backends() {
                for execution in [
                    Execution::Serial,
                    Execution::Fused { threads: 1 },
                    Execution::Fused { threads: 4 },
                ] {
                    let config = JoinConfig::builder()
                        .loader(loader)
                        .backend(backend)
                        .execution(execution)
                        .build();
                    let result = MultiStepJoin::new(config).execute(a, b);
                    let got = sorted(result.pairs);
                    match &reference {
                        None => reference = Some(got),
                        Some(expect) => assert_eq!(
                            &got, expect,
                            "{name}: {loader:?} × {backend:?} × {execution:?} diverged"
                        ),
                    }
                }
            }
        }
        // And the whole matrix matches the exhaustive exact join.
        let truth = sorted(msj::core::ground_truth_join(a, b));
        assert_eq!(reference.unwrap(), truth, "{name}: matrix != ground truth");
    }
}

/// The loaders must agree on every *intermediate* quantity that is
/// layout-independent: candidate sets (as sets), filter statistics, and
/// exact-step operation counts.
#[test]
fn loader_choice_preserves_candidates_and_filter_stats() {
    let a = msj::datagen::small_carto(80, 24.0, 4011);
    let b = msj::datagen::small_carto(80, 24.0, 4012);
    let run = |loader: TreeLoader| {
        MultiStepJoin::new(JoinConfig::builder().loader(loader).build()).execute(&a, &b)
    };
    let str_run = run(TreeLoader::Str);
    let inc_run = run(TreeLoader::Incremental);
    assert_eq!(sorted(str_run.pairs), sorted(inc_run.pairs));
    let (s, i) = (&str_run.stats, &inc_run.stats);
    assert_eq!(s.mbr_join.candidates, i.mbr_join.candidates);
    assert_eq!(s.filter_false_hits, i.filter_false_hits);
    assert_eq!(s.filter_hits_progressive, i.filter_hits_progressive);
    assert_eq!(s.exact_tests, i.exact_tests);
    assert_eq!(s.exact_hits, i.exact_hits);
    assert_eq!(s.exact_ops, i.exact_ops);
}

/// Per-step timings are populated and account for the pipeline: Step 0 is
/// always nonzero (trees + stores were built), and the Step-2/3 sums are
/// consistent with a join that classified and exact-tested candidates.
#[test]
fn per_step_timings_are_populated() {
    let a = msj::datagen::small_carto(60, 24.0, 4021);
    let b = msj::datagen::small_carto(60, 24.0, 4022);
    for execution in [Execution::Serial, Execution::Fused { threads: 2 }] {
        let config = JoinConfig::builder().execution(execution).build();
        let r = MultiStepJoin::new(config).execute(&a, &b);
        assert!(r.stats.step0_nanos > 0, "{execution:?}: step0");
        assert!(
            r.stats.step2_nanos > 0,
            "{execution:?}: candidates were classified"
        );
        assert!(
            r.stats.step3_nanos > 0,
            "{execution:?}: exact tests ran ({} tests)",
            r.stats.exact_tests
        );
    }
}

//! The Step-2a raster pre-filter may only *accelerate* the join — never
//! change it. This suite pins the PR-4 acceptance matrix: raster-on vs
//! raster-off response sets must be byte-identical across
//! {backend × loader × execution × threads 1/4} on cartographic, holed,
//! skewed and pathological workloads, and every individual raster
//! decision must be confirmed by the exact geometry.

use msj::core::{
    ground_truth_join, Backend, Execution, FilterOutcome, GeometricFilter, JoinConfig,
    MultiStepJoin, RasterConfig, TreeLoader,
};
use msj::exact::quadratic_intersects;
use msj::geom::{ObjectId, Point, Polygon, Relation};

fn sorted(mut v: Vec<(ObjectId, ObjectId)>) -> Vec<(ObjectId, ObjectId)> {
    v.sort_unstable();
    v
}

/// Thin crossing slivers whose MBRs are useless (and whose raster
/// signatures are all-PARTIAL on any realistic grid).
fn needle_relations() -> (Relation, Relation) {
    let needle = |x0: f64, y0: f64, dx: f64, dy: f64| {
        let along = Point::new(dx, dy);
        let across = along.perp().normalized().unwrap() * 1e-3;
        Polygon::new(vec![
            Point::new(x0, y0),
            Point::new(x0 + along.x, y0 + along.y),
            Point::new(x0 + along.x + across.x, y0 + along.y + across.y),
            Point::new(x0 + across.x, y0 + across.y),
        ])
        .unwrap()
        .into()
    };
    let a = Relation::from_regions((0..12).map(|i| {
        let t = i as f64 / 12.0 * std::f64::consts::TAU;
        needle(0.0, 0.0, 10.0 * t.cos(), 10.0 * t.sin())
    }));
    let b = Relation::from_regions((0..12).map(|i| {
        let t = (i as f64 + 0.5) / 12.0 * std::f64::consts::TAU;
        needle(
            5.0 * t.cos(),
            5.0 * t.sin(),
            -10.0 * t.sin(),
            10.0 * t.cos(),
        )
    }));
    (a, b)
}

fn workloads() -> Vec<(&'static str, Relation, Relation)> {
    let (na, nb) = needle_relations();
    vec![
        (
            "carto",
            msj::datagen::small_carto(48, 24.0, 41),
            msj::datagen::small_carto(48, 24.0, 42),
        ),
        (
            "holed",
            msj::datagen::carto_with_holes(32, 20.0, 43),
            msj::datagen::carto_with_holes(32, 20.0, 44),
        ),
        (
            "skewed",
            msj::datagen::skewed_carto(48, 24.0, 45),
            msj::datagen::skewed_carto(48, 24.0, 46),
        ),
        ("needles", na, nb),
    ]
}

/// The full acceptance matrix: every cell with the stage on must equal
/// the same cell with the stage off, which must equal the ground truth.
#[test]
fn raster_on_equals_raster_off_across_the_matrix() {
    for (name, a, b) in &workloads() {
        let expect = sorted(ground_truth_join(a, b));
        for backend in [
            Backend::RStarTraversal,
            Backend::PartitionedSweep {
                tiles_per_axis: 4,
                threads: 2,
            },
        ] {
            for loader in [TreeLoader::Str, TreeLoader::Incremental] {
                for execution in [
                    Execution::Serial,
                    Execution::Fused { threads: 1 },
                    Execution::Fused { threads: 4 },
                ] {
                    let base = JoinConfig::builder()
                        .backend(backend)
                        .loader(loader)
                        .execution(execution)
                        .build();
                    let off =
                        MultiStepJoin::new(base.to_builder().raster(RasterConfig::off()).build())
                            .execute(a, b);
                    assert_eq!(
                        sorted(off.pairs.clone()),
                        expect,
                        "{name}/{backend:?}/{loader:?}/{execution:?} raster-off vs truth"
                    );
                    for raster in [RasterConfig::default(), RasterConfig::with_bits(7)] {
                        let on = MultiStepJoin::new(base.to_builder().raster(raster).build())
                            .execute(a, b);
                        assert_eq!(
                            sorted(on.pairs.clone()),
                            expect,
                            "{name}/{backend:?}/{loader:?}/{execution:?}/{raster:?}"
                        );
                        // The stage accounted for every candidate...
                        let s = &on.stats;
                        assert_eq!(
                            s.mbr_join.candidates,
                            s.raster_hits + s.raster_drops + s.raster_inconclusive,
                            "{name}: raster accounting"
                        );
                        // ...and decided ones never reached later steps.
                        assert!(
                            s.exact_tests <= off.stats.exact_tests,
                            "{name}: raster increased exact tests"
                        );
                    }
                }
            }
        }
    }
}

/// Every single raster decision is confirmed by the exact geometry — not
/// just the aggregate response set.
#[test]
fn every_raster_decision_is_confirmed_by_exact_geometry() {
    for (name, a, b) in &workloads() {
        let config = JoinConfig::default();
        let filter = GeometricFilter::from_config(&config, a, b);
        assert!(filter.raster_active(), "{name}: stage should be on");
        let mut counts = msj::exact::OpCounts::new();
        for oa in a.iter() {
            for ob in b.iter() {
                if !oa.mbr().intersects(&ob.mbr()) {
                    continue;
                }
                let truth = quadratic_intersects(&oa.region, &ob.region, &mut counts);
                match filter.classify(oa.id, ob.id) {
                    FilterOutcome::HitRaster => {
                        assert!(
                            truth,
                            "{name}: raster Hit on disjoint ({}, {})",
                            oa.id, ob.id
                        )
                    }
                    FilterOutcome::DropRaster => assert!(
                        !truth,
                        "{name}: raster Drop on intersecting ({}, {})",
                        oa.id, ob.id
                    ),
                    // Inconclusive raster decisions fall through to the
                    // approximation chain, whose own soundness is pinned
                    // by the existing suites.
                    _ => {}
                }
            }
        }
    }
}

/// Needle slivers never own FULL cells, so the stage can prove drops but
/// no hits — and must leave crossing pairs to the exact step.
#[test]
fn all_partial_signatures_stay_conservative() {
    let (a, b) = needle_relations();
    let r = MultiStepJoin::new(JoinConfig::default()).execute(&a, &b);
    assert_eq!(r.stats.raster_hits, 0, "slivers cannot own FULL cells");
    assert_eq!(sorted(r.pairs.clone()), sorted(ground_truth_join(&a, &b)));
}

//! The paper's headline qualitative claims, asserted end-to-end on the
//! synthetic datasets at reduced scale. These tests pin the *shape* of
//! every major result: who wins, in which direction, by roughly what
//! factor.

use msj::approx::{
    Conservative, ConservativeKind, ConservativeStore, ProgressiveKind, ProgressiveStore,
};
use msj::core::{figure18_cost, CostModelParams, ExactCostKind, JoinConfig, MultiStepJoin};
use msj::exact::{
    quadratic_intersects, sweep_intersects, trees_intersect, OpCounts, TrStarStore, Weights,
};
use msj::geom::Relation;
use msj::sam::{tree_join, LruBuffer, PageLayout, RStarTree};

/// Builds a strategy-A series plus candidate/truth data at test scale.
fn series_data() -> (Relation, Relation, Vec<(u32, u32)>, Vec<bool>) {
    let base = msj::datagen::small_carto(120, 40.0, 11);
    let series = msj::datagen::strategy_a("claims", &base, msj::datagen::world(), 0.5, 0.5);
    let layout = PageLayout::baseline(4096);
    let ta = RStarTree::insert_all(layout, series.a.iter().map(|o| (o.mbr(), o.id)));
    let tb = RStarTree::insert_all(layout, series.b.iter().map(|o| (o.mbr(), o.id)));
    let mut buffer = LruBuffer::new(1024);
    let mut candidates = Vec::new();
    tree_join(&ta, &tb, &mut buffer, |a, b| candidates.push((a, b)));
    let sa = TrStarStore::build(&series.a, 3);
    let sb = TrStarStore::build(&series.b, 3);
    let mut c = OpCounts::new();
    let truth: Vec<bool> = candidates
        .iter()
        .map(|&(a, b)| trees_intersect(sa.get(a), sb.get(b), &mut c))
        .collect();
    (series.a, series.b, candidates, truth)
}

/// §3.1 / Table 2: roughly one third of the MBR-join candidates are false
/// hits.
#[test]
fn about_one_third_of_candidates_are_false_hits() {
    let (_, _, candidates, truth) = series_data();
    let false_hits = truth.iter().filter(|&&t| !t).count() as f64;
    let share = false_hits / candidates.len() as f64;
    assert!(
        (0.18..0.48).contains(&share),
        "false-hit share {share:.2} outside the paper's ≈1/3 band"
    );
}

/// Table 3: the 5-corner identifies about two thirds of the false hits,
/// and the identification power ranks MBC < 5-C < CH.
#[test]
fn five_corner_identifies_most_false_hits() {
    let (rel_a, rel_b, candidates, truth) = series_data();
    let ident = |kind: ConservativeKind| -> f64 {
        let sa = ConservativeStore::build(kind, &rel_a);
        let sb = ConservativeStore::build(kind, &rel_b);
        let mut fh = 0u64;
        let mut id = 0u64;
        for (&(a, b), &t) in candidates.iter().zip(&truth) {
            if t {
                continue;
            }
            fh += 1;
            if !sa.view(a).intersects(&sb.view(b)) {
                id += 1;
            }
        }
        id as f64 / fh.max(1) as f64
    };
    let mbc = ident(ConservativeKind::Mbc);
    let c5 = ident(ConservativeKind::FiveCorner);
    let ch = ident(ConservativeKind::ConvexHull);
    assert!(c5 > 0.5, "5-C should identify most false hits, got {c5:.2}");
    assert!(
        mbc < c5 && c5 <= ch,
        "ordering MBC({mbc:.2}) < 5-C({c5:.2}) <= CH({ch:.2})"
    );
}

/// Table 5: progressive approximations identify a substantial share of
/// the hits (paper ≈ 32–35 %), with MER at least as good as MEC.
#[test]
fn progressive_approximations_identify_hits() {
    let (rel_a, rel_b, candidates, truth) = series_data();
    let ident = |kind: ProgressiveKind| -> f64 {
        let sa = ProgressiveStore::build(kind, &rel_a);
        let sb = ProgressiveStore::build(kind, &rel_b);
        let mut hits = 0u64;
        let mut id = 0u64;
        for (&(a, b), &t) in candidates.iter().zip(&truth) {
            if !t {
                continue;
            }
            hits += 1;
            if sa.get(a).intersects(&sb.get(b)) {
                id += 1;
            }
        }
        id as f64 / hits.max(1) as f64
    };
    let mec = ident(ProgressiveKind::Mec);
    let mer = ident(ProgressiveKind::Mer);
    assert!(mec > 0.10, "MEC share {mec:.2}");
    assert!(mer > 0.15, "MER share {mer:.2}");
    assert!(
        mer >= mec * 0.8,
        "MER({mer:.2}) should be ≈>= MEC({mec:.2})"
    );
}

/// Table 7: on the candidates that reach the exact step, the TR*-tree
/// beats the plane sweep, which beats the quadratic algorithm, in
/// weighted operation cost.
#[test]
fn exact_algorithm_ranking_matches_table7() {
    let (rel_a, rel_b, candidates, _) = series_data();
    let weights = Weights::default();
    let sa = TrStarStore::build(&rel_a, 3);
    let sb = TrStarStore::build(&rel_b, 3);
    let mut cq = OpCounts::new();
    let mut cs = OpCounts::new();
    let mut ct = OpCounts::new();
    for &(a, b) in candidates.iter().take(300) {
        quadratic_intersects(&rel_a.object(a).region, &rel_b.object(b).region, &mut cq);
        sweep_intersects(
            &rel_a.object(a).region,
            &rel_b.object(b).region,
            true,
            &mut cs,
        );
        trees_intersect(sa.get(a), sb.get(b), &mut ct);
    }
    let (q, s, t) = (
        cq.cost_ms(&weights),
        cs.cost_ms(&weights),
        ct.cost_ms(&weights),
    );
    assert!(t < s, "TR* ({t:.0} ms) must beat the sweep ({s:.0} ms)");
    assert!(s < q, "sweep ({s:.0} ms) must beat quadratic ({q:.0} ms)");
    assert!(q / t > 5.0, "TR* speedup over quadratic only {:.1}x", q / t);
}

/// Figure 17: M = 3 is the best TR*-tree node capacity (fewest weighted
/// operations among 3, 4, 5).
#[test]
fn trstar_m3_is_best_capacity() {
    let (rel_a, rel_b, candidates, _) = series_data();
    let weights = Weights::default();
    let mut costs = Vec::new();
    for m in [3usize, 4, 5] {
        let sa = TrStarStore::build(&rel_a, m);
        let sb = TrStarStore::build(&rel_b, m);
        let mut c = OpCounts::new();
        for &(a, b) in candidates.iter().take(300) {
            trees_intersect(sa.get(a), sb.get(b), &mut c);
        }
        costs.push(c.cost_ms(&weights));
    }
    assert!(
        costs[0] <= costs[1] * 1.05 && costs[0] <= costs[2] * 1.05,
        "M=3 ({:.0}) should be within 5% of best among M=4 ({:.0}), M=5 ({:.0})",
        costs[0],
        costs[1],
        costs[2]
    );
}

/// Figure 18: version 2 beats version 1, version 3 beats version 2, and
/// version 3 improves on version 1 by a factor in the paper's "more than
/// 3" regime.
#[test]
fn version_costs_rank_v3_v2_v1() {
    let a = msj::datagen::small_carto(100, 30.0, 21);
    let b = msj::datagen::small_carto(100, 30.0, 22);
    let params = CostModelParams::default();
    let cost = |config: JoinConfig, kind: ExactCostKind| -> f64 {
        let r = MultiStepJoin::new(config).execute(&a, &b);
        figure18_cost(&r.stats, kind, &params).total_s()
    };
    let v1 = cost(JoinConfig::version1(), ExactCostKind::PlaneSweep);
    let v2 = cost(JoinConfig::version2(), ExactCostKind::PlaneSweep);
    let v3 = cost(JoinConfig::version3(), ExactCostKind::TrStar);
    assert!(v2 < v1, "v2 ({v2:.1}s) must beat v1 ({v1:.1}s)");
    assert!(v3 < v2, "v3 ({v3:.1}s) must beat v2 ({v2:.1}s)");
    assert!(v1 / v3 > 2.5, "total improvement only {:.1}x", v1 / v3);
}

/// §3.4: storing approximations in addition to the MBR reduces fanout and
/// therefore costs some MBR-join I/O — but the filter gain dominates
/// (Figure 11's 'total' is positive).
#[test]
fn approximation_gain_exceeds_storage_loss() {
    let rel_a = msj::datagen::large_relation(1500, 0, 31);
    let rel_b = msj::datagen::large_relation(1500, 1, 31);
    let page = 2048usize;
    let base_a = RStarTree::insert_all(
        PageLayout::baseline(page),
        rel_a.iter().map(|o| (o.mbr(), o.id)),
    );
    let base_b = RStarTree::insert_all(
        PageLayout::baseline(page),
        rel_b.iter().map(|o| (o.mbr(), o.id)),
    );
    let mut buffer = LruBuffer::with_bytes(128 * 1024, page);
    let base = tree_join(&base_a, &base_b, &mut buffer, |_, _| {});

    let cons_a = ConservativeStore::build(ConservativeKind::FiveCorner, &rel_a);
    let cons_b = ConservativeStore::build(ConservativeKind::FiveCorner, &rel_b);
    let mer_a = ProgressiveStore::build(ProgressiveKind::Mer, &rel_a);
    let mer_b = ProgressiveStore::build(ProgressiveKind::Mer, &rel_b);
    let layout = PageLayout::with_extra_bytes(page, 56);
    let ta = RStarTree::insert_all(layout, rel_a.iter().map(|o| (o.mbr(), o.id)));
    let tb = RStarTree::insert_all(layout, rel_b.iter().map(|o| (o.mbr(), o.id)));
    let mut buffer = LruBuffer::with_bytes(128 * 1024, page);
    let mut identified = 0i64;
    let stats = tree_join(&ta, &tb, &mut buffer, |x, y| {
        if !cons_a.view(x).intersects(&cons_b.view(y)) || mer_a.get(x).intersects(&mer_b.get(y)) {
            identified += 1;
        }
    });
    let loss = stats.io.physical as i64 - base.io.physical as i64;
    assert!(
        identified > 2 * loss.max(0),
        "gain {identified} should dominate loss {loss}"
    );
}

/// A conservative approximation never misclassifies: every "false hit" it
/// identifies is truly disjoint (checked against ground truth).
#[test]
fn filter_soundness_on_series() {
    let (rel_a, rel_b, candidates, truth) = series_data();
    for kind in [
        ConservativeKind::FiveCorner,
        ConservativeKind::Mbe,
        ConservativeKind::Mbc,
    ] {
        let sa = ConservativeStore::build(kind, &rel_a);
        let sb = ConservativeStore::build(kind, &rel_b);
        for (&(a, b), &t) in candidates.iter().zip(&truth) {
            if !sa.view(a).intersects(&sb.view(b)) {
                assert!(!t, "{} separated a true hit ({a},{b})", kind.name());
            }
        }
    }
    // And conservativeness itself: approximations contain their objects.
    for o in rel_a.iter().take(20) {
        for kind in ConservativeKind::ALL {
            let ap = Conservative::compute(kind, o);
            assert!(msj::approx::is_conservative_for(&ap, &o.region));
        }
    }
}

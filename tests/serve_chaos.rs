//! Connection chaos: the serving front under deterministic wire faults.
//!
//! For every wire fault kind — `conn_reset`, `partial_write`,
//! `slow_client`, `drop_before_reply` — across several seeds, the suite
//! replays a fixed request sequence against a live server armed with
//! that plan and asserts the three wire-robustness invariants:
//!
//! 1. **Every completed response is byte-identical** to the encoding of
//!    the same request submitted in-process — an injected socket fault
//!    may kill a connection, but it can never corrupt a frame that
//!    parses (partial writes truncate, which the client detects);
//! 2. **The server survives**: after the fault, a reconnect serves the
//!    remaining sequence, and the drain still exits cleanly;
//! 3. **The injection is observable**: exactly one
//!    `msj_fault_injected_total{site="…"}` increment for the armed kind,
//!    and zero for every other site.

use std::sync::Arc;

use msj::core::{JoinConfig, Request, SpatialEngine};
use msj::fault::{FaultConfig, FaultKind};
use msj::geom::{Point, Rect};
use msj::serve::{
    encode_response, response_body_for, Client, ResponseBody, ServeConfig, Server, WireRequest,
    WireRequestBody,
};

fn seeds() -> Vec<u64> {
    match std::env::var("MSJ_FAULT_SEED")
        .ok()
        .and_then(|s| s.trim().parse::<u64>().ok())
    {
        Some(seed) => vec![seed],
        None => vec![11, 42, 977],
    }
}

fn to_request(body: &WireRequestBody) -> Request {
    match *body {
        WireRequestBody::Join { a, b } => Request::Join {
            a,
            b,
            execution: None,
        },
        WireRequestBody::SelfJoin { dataset } => Request::SelfJoin {
            dataset,
            execution: None,
        },
        WireRequestBody::Point { dataset, x, y } => Request::Point {
            dataset,
            point: Point::new(x, y),
        },
        WireRequestBody::Window { dataset, bounds } => Request::Window {
            dataset,
            window: Rect::new(
                Point::new(bounds[0], bounds[1]),
                Point::new(bounds[2], bounds[3]),
            ),
        },
        WireRequestBody::Metrics => unreachable!("metrics is not an engine request"),
    }
}

/// The fixed request mix: long enough that any seed-derived target
/// response index (`< BATCH_SPREAD`) fires mid-sequence.
fn workload(a: u32, b: u32) -> Vec<WireRequest> {
    vec![
        WireRequest::point(1, a, 0.35, 0.65),
        WireRequest::window(2, b, [0.1, 0.1, 0.6, 0.6]),
        WireRequest::join(3, a, b),
        WireRequest::point(4, b, 0.8, 0.2),
        WireRequest::self_join(5, a),
        WireRequest::window(6, a, [0.4, 0.4, 0.9, 0.9]),
        WireRequest::point(7, a, 0.5, 0.5),
        WireRequest::join(8, b, a),
    ]
}

const WIRE_SITES: [&str; 4] = [
    "conn_reset",
    "partial_write",
    "slow_client",
    "drop_before_reply",
];

#[test]
fn wire_faults_never_corrupt_a_completed_response_and_the_server_survives() {
    let kinds = [
        FaultKind::ConnReset,
        FaultKind::PartialWrite,
        FaultKind::SlowClient { millis: 30 },
        FaultKind::DropBeforeReply,
    ];
    for seed in seeds() {
        for kind in kinds {
            run_chaos_cell(seed, kind);
        }
    }
}

fn run_chaos_cell(seed: u64, kind: FaultKind) {
    let cell = format!("seed {seed}, kind {:?}", kind);
    let engine = Arc::new(SpatialEngine::new(JoinConfig::default()));
    let a = engine.register(msj::datagen::small_carto(50, 8.0, 5)).id();
    let b = engine.register(msj::datagen::small_carto(50, 8.0, 6)).id();
    let requests = workload(a, b);

    // The oracle: each request submitted in-process, encoded through the
    // same deterministic projection the server uses. Running it on the
    // same engine beforehand is safe — the wire payload excludes
    // buffer-warmth and timing, the two things repetition changes.
    let expected: Vec<Vec<u8>> = requests
        .iter()
        .map(|req| {
            encode_response(
                req.request_id,
                &response_body_for(&engine.submit(to_request(&req.body))),
            )
        })
        .collect();

    let server = Server::start(
        engine.clone(),
        ServeConfig {
            fault: FaultConfig::seeded(seed, kind),
            ..ServeConfig::default()
        },
    )
    .expect("server starts");

    let mut client = Client::connect(server.addr()).expect("connect");
    let mut disconnects = 0;
    for (req, want) in requests.iter().zip(&expected) {
        // Retry across connection kills: the fault is one-shot, so the
        // second attempt always completes.
        let mut reply = None;
        for _attempt in 0..3 {
            let got = client.send(req).err().or_else(|| match client.recv() {
                Ok(r) => {
                    reply = Some(r);
                    None
                }
                Err(e) => Some(e),
            });
            match got {
                None => break,
                Some(_) => {
                    disconnects += 1;
                    client = Client::connect(server.addr()).expect("reconnect after fault");
                }
            }
        }
        let reply = reply.unwrap_or_else(|| panic!("no reply after retries ({cell})"));
        assert_eq!(
            reply.frame, *want,
            "completed response diverged from the in-process oracle ({cell})"
        );
    }

    // Invariant 3: the injection is visible in the metrics, at exactly
    // the armed site, exactly once.
    let snapshot = engine.metrics().snapshot();
    for site in WIRE_SITES {
        let count = snapshot.counter(&format!("msj_fault_injected_total{{site=\"{site}\"}}"));
        let want = u64::from(site == kind.site());
        assert_eq!(count, want, "fault counter for {site} ({cell})");
    }
    // Connection-killing kinds must actually have killed one; the slow
    // wire must not have.
    match kind {
        FaultKind::SlowClient { .. } => assert_eq!(disconnects, 0, "{cell}"),
        _ => assert_eq!(disconnects, 1, "{cell}"),
    }

    // Invariant 2: the server drains cleanly after the chaos.
    let reply = client
        .call(&WireRequest::metrics(99))
        .expect("metrics after fault");
    assert!(matches!(reply.body, ResponseBody::Text(_)));
    server.shutdown();
    assert!(server.join().clean, "unclean drain after fault ({cell})");
}

//! Graceful drain under load: no hung connection, no silent drop.
//!
//! Concurrent clients keep a server busy while it shuts down. The
//! contract under test:
//!
//! * every request that was sent receives **exactly one** response —
//!   a byte-identical completed answer, or an explicit
//!   `Shed`/`Draining`/`DeadlineExceeded`/`Cancelled` — never silence;
//! * in-flight and queued work admitted before the drain completes
//!   byte-identically (given a roomy drain deadline);
//! * a tiny drain deadline still exits within its bound, converting the
//!   backlog into explicit `Draining`/`Cancelled` responses instead of
//!   dropping it.

use std::sync::Arc;
use std::time::{Duration, Instant};

use msj::core::{JoinConfig, Request, SpatialEngine};
use msj::serve::{
    encode_response, response_body_for, Client, ServeConfig, Server, WireRequest, WireRequestBody,
    WireStatus,
};

fn to_request(body: &WireRequestBody) -> Request {
    match *body {
        WireRequestBody::Join { a, b } => Request::Join {
            a,
            b,
            execution: None,
        },
        WireRequestBody::SelfJoin { dataset } => Request::SelfJoin {
            dataset,
            execution: None,
        },
        WireRequestBody::Point { dataset, x, y } => Request::Point {
            dataset,
            point: msj::geom::Point::new(x, y),
        },
        WireRequestBody::Window { dataset, bounds } => Request::Window {
            dataset,
            window: msj::geom::Rect::new(
                msj::geom::Point::new(bounds[0], bounds[1]),
                msj::geom::Point::new(bounds[2], bounds[3]),
            ),
        },
        WireRequestBody::Metrics => unreachable!(),
    }
}

/// Per-client mix: one join (slow) plus a spread of selections (fast,
/// batchable). Ids are disjoint across clients.
fn client_workload(client: u64, a: u32, b: u32) -> Vec<WireRequest> {
    let base = client * 100;
    let mut requests = vec![WireRequest::join(base + 1, a, b)];
    for i in 0..6 {
        let t = (i as f64 + 0.5) / 6.0;
        requests.push(WireRequest::point(base + 2 + i, a, t, 1.0 - t));
    }
    requests.push(WireRequest::window(base + 9, b, [0.2, 0.2, 0.7, 0.7]));
    requests
}

struct Outcome {
    completed: usize,
    refused: usize,
}

/// Sends the workload pipelined, then collects one reply per request.
/// Panics on a missing reply (hang → client read timeout), an unknown
/// status, or a completed reply that differs from its oracle frame.
fn drive_client(
    addr: std::net::SocketAddr,
    requests: &[WireRequest],
    oracle: &std::collections::HashMap<u64, Vec<u8>>,
) -> Outcome {
    let mut client = Client::connect_with_timeout(addr, Duration::from_secs(30)).expect("connect");
    for request in requests {
        client.send(request).expect("send");
    }
    let mut outcome = Outcome {
        completed: 0,
        refused: 0,
    };
    for _ in requests {
        let reply = client.recv().expect("every sent request gets a reply");
        match reply.body.status() {
            WireStatus::Ok => {
                let want = oracle
                    .get(&reply.request_id)
                    .unwrap_or_else(|| panic!("unknown request id {}", reply.request_id));
                assert_eq!(
                    &reply.frame, want,
                    "completed reply {} diverged from the in-process oracle",
                    reply.request_id
                );
                outcome.completed += 1;
            }
            WireStatus::Shed
            | WireStatus::Draining
            | WireStatus::DeadlineExceeded
            | WireStatus::Cancelled => outcome.refused += 1,
            other => panic!("unexpected status {other:?} for {}", reply.request_id),
        }
    }
    outcome
}

/// Builds the serving engine plus a twin used only to precompute oracle
/// frames. Computing the oracle on a *separate* engine keeps the
/// serving engine's prepared-join cache cold, so the drain really
/// catches joins mid-flight — and doubles as a cross-engine determinism
/// check: the wire projection must not depend on which engine instance
/// ran the request.
fn build_engines(objects: usize) -> (Arc<SpatialEngine>, Arc<SpatialEngine>, u32, u32) {
    let engine = Arc::new(SpatialEngine::new(JoinConfig::default()));
    let oracle = Arc::new(SpatialEngine::new(JoinConfig::default()));
    let (mut a, mut b) = (0, 0);
    for e in [&engine, &oracle] {
        a = e.register(msj::datagen::small_carto(objects, 8.0, 31)).id();
        b = e.register(msj::datagen::small_carto(objects, 8.0, 47)).id();
    }
    (engine, oracle, a, b)
}

fn oracle_for(
    engine: &SpatialEngine,
    workloads: &[Vec<WireRequest>],
) -> std::collections::HashMap<u64, Vec<u8>> {
    workloads
        .iter()
        .flatten()
        .map(|req| {
            (
                req.request_id,
                encode_response(
                    req.request_id,
                    &response_body_for(&engine.submit(to_request(&req.body))),
                ),
            )
        })
        .collect()
}

#[test]
fn drain_under_load_completes_admitted_work_and_refuses_the_rest_explicitly() {
    let (engine, oracle_engine, a, b) = build_engines(120);
    let clients: Vec<Vec<WireRequest>> = (0..4).map(|c| client_workload(c, a, b)).collect();
    let oracle = Arc::new(oracle_for(&oracle_engine, &clients));

    let server = Server::start(
        engine.clone(),
        ServeConfig {
            workers: 2,
            // Roomy: everything admitted before the drain completes.
            drain_deadline: Duration::from_secs(30),
            ..ServeConfig::default()
        },
    )
    .expect("server starts");
    let addr = server.addr();

    let handles: Vec<_> = clients
        .iter()
        .cloned()
        .map(|requests| {
            let oracle = oracle.clone();
            std::thread::spawn(move || drive_client(addr, &requests, &oracle))
        })
        .collect();
    // Shut down while the joins are still grinding.
    std::thread::sleep(Duration::from_millis(15));
    server.shutdown();

    let mut completed = 0;
    let mut refused = 0;
    for handle in handles {
        let outcome = handle.join().expect("client thread");
        completed += outcome.completed;
        refused += outcome.refused;
    }
    let report = server.join();
    assert_eq!(
        completed + refused,
        4 * 8,
        "every sent request must be answered exactly once"
    );
    assert!(
        completed > 0,
        "a 30s drain deadline must complete the admitted work"
    );
    assert!(report.clean, "drain must settle inside a roomy deadline");
    // Explicit refusals during drain are visible in the metrics.
    let snapshot = engine.metrics().snapshot();
    assert_eq!(
        u64::try_from(refused).unwrap(),
        snapshot.counter("msj_draining_responses_total")
            + snapshot.counter("msj_request_shed_total{reason=\"queue_full\"}")
            + snapshot.counter("msj_request_shed_total{reason=\"admission\"}")
            + snapshot.counter("msj_request_shed_total{reason=\"conn_cap\"}"),
        "every refusal is counted"
    );
}

#[test]
fn tiny_drain_deadline_still_exits_bounded_with_explicit_abandonment() {
    // Heavier joins and one worker: shutdown catches a deep backlog.
    let (engine, oracle_engine, a, b) = build_engines(250);
    let requests: Vec<WireRequest> = (0..6).map(|i| WireRequest::join(i, a, b)).collect();
    let oracle = oracle_for(&oracle_engine, std::slice::from_ref(&requests));

    let server = Server::start(
        engine,
        ServeConfig {
            workers: 1,
            drain_deadline: Duration::from_millis(1),
            ..ServeConfig::default()
        },
    )
    .expect("server starts");
    let mut client =
        Client::connect_with_timeout(server.addr(), Duration::from_secs(30)).expect("connect");
    // A warm-up round trip pins the connection into the event loop, so
    // the pipelined joins below are read and admitted promptly even
    // under the coarse-tick scan poller.
    let warm = client
        .call(&WireRequest::point(100, a, 0.5, 0.5))
        .expect("warm-up");
    assert_eq!(warm.body.status(), WireStatus::Ok);
    for request in &requests {
        client.send(request).expect("send");
    }
    // Long enough for the joins to be admitted (the first grinding on
    // the worker, the rest queued), short enough that the backlog is
    // still deep when the drain begins.
    std::thread::sleep(Duration::from_millis(20));
    server.shutdown();
    let started = Instant::now();
    let (mut completed, mut refused) = (0usize, 0usize);
    for _ in &requests {
        let reply = client.recv().expect("every sent request gets a reply");
        match reply.body.status() {
            WireStatus::Ok => {
                assert_eq!(
                    reply.frame, oracle[&reply.request_id],
                    "completed reply {} diverged from the in-process oracle",
                    reply.request_id
                );
                completed += 1;
            }
            WireStatus::Shed
            | WireStatus::Draining
            | WireStatus::DeadlineExceeded
            | WireStatus::Cancelled => refused += 1,
            other => panic!("unexpected status {other:?} for {}", reply.request_id),
        }
    }
    let report = server.join();
    // Exit must respect the bound: deadline + the cancellation grace,
    // with scheduling slack.
    assert!(
        started.elapsed() < Duration::from_secs(10),
        "drain deadline did not bound the exit"
    );
    assert_eq!(completed + refused, requests.len());
    assert!(
        refused > 0,
        "a 1ms deadline over a deep join backlog must abandon something"
    );
    assert!(
        report.abandoned_queued > 0 || report.cancelled_inflight > 0,
        "the report must account for the abandonment: {report:?}"
    );
}

#[test]
fn post_drain_connections_are_refused_at_the_listener() {
    let (engine, _oracle, a, _) = build_engines(40);
    let server = Server::start(engine, ServeConfig::default()).expect("server starts");
    let addr = server.addr();
    let mut client = Client::connect(addr).expect("connect");
    client
        .call(&WireRequest::point(1, a, 0.5, 0.5))
        .expect("warm request");
    server.shutdown();
    let report = server.join();
    assert!(report.clean);
    // The listener is gone: a fresh connection cannot be established
    // (or is immediately closed on platforms that accept backlogged
    // connections before the close propagates).
    match Client::connect(addr) {
        Err(_) => {}
        Ok(mut c) => {
            let result = c.call(&WireRequest::point(2, a, 0.5, 0.5));
            assert!(result.is_err(), "post-drain server must not serve");
        }
    }
    // The old connection observes EOF, not a hang.
    assert!(client.recv().is_err());
}

//! Chaos agreement: the engine under deterministic fault injection.
//!
//! For every cell of the fault matrix — {worker_panic, slow_worker,
//! raster_corrupt, cancel} × {backend} × {execution / threads} — the
//! suite asserts the three robustness invariants:
//!
//! 1. **Completed responses are byte-identical** to the fault-free run
//!    under the same configuration (stragglers and degraded mode never
//!    change answers);
//! 2. **Failed requests return the matching [`EngineError`] variant**
//!    (injected panics surface as `WorkerPanicked`, injected
//!    cancellation as `Cancelled`) — never a poisoned lock, never a
//!    process abort;
//! 3. **The same engine instance serves a clean follow-up** request
//!    byte-identically after the fault — no state is poisoned.
//!
//! Seeds come from `MSJ_FAULT_SEED` when set (the CI chaos job sweeps
//! several fixed values); otherwise a fixed default set runs. Faults are
//! one-shot per engine by design, which is exactly what invariant 3
//! needs.

use msj::core::{
    Backend, CancelToken, EngineError, Execution, FaultConfig, FaultKind, JoinConfig, Request,
    Response, SpatialEngine,
};
use msj::geom::Relation;

/// Small batches so every run crosses at least `msj::fault::BATCH_SPREAD`
/// batch boundaries — a seed-targeted fault is then guaranteed to land.
const BATCH: usize = 16;

fn seeds() -> Vec<u64> {
    match std::env::var("MSJ_FAULT_SEED")
        .ok()
        .and_then(|s| s.trim().parse::<u64>().ok())
    {
        Some(seed) => vec![seed],
        None => vec![11, 42, 977],
    }
}

fn matrix() -> Vec<(Backend, Execution)> {
    let backends = [
        Backend::RStarTraversal,
        Backend::PartitionedSweep {
            tiles_per_axis: 6,
            threads: 0,
        },
    ];
    let executions = [
        Execution::Serial,
        Execution::Fused { threads: 1 },
        Execution::Fused { threads: 4 },
    ];
    backends
        .iter()
        .flat_map(|&b| executions.iter().map(move |&e| (b, e)))
        .collect()
}

fn config(backend: Backend, execution: Execution, fault: FaultConfig) -> JoinConfig {
    JoinConfig::builder()
        .backend(backend)
        .execution(execution)
        .batch_pairs(BATCH)
        .fault(fault)
        .build()
}

fn engine_for(config: JoinConfig, a: &Relation, b: &Relation) -> (SpatialEngine, Request) {
    let engine = SpatialEngine::new(config);
    let ha = engine.register(a.clone());
    let hb = engine.register(b.clone());
    let request = Request::Join {
        a: ha.id(),
        b: hb.id(),
        execution: None,
    };
    (engine, request)
}

fn join_pairs(response: Response) -> Vec<(u32, u32)> {
    match response {
        Response::Join(resp) => resp.pairs,
        other => panic!("expected a join response, got {other:?}"),
    }
}

#[test]
fn fault_matrix_agreement_and_recovery() {
    let a = msj::datagen::small_carto(120, 24.0, 9001);
    let b = msj::datagen::small_carto(120, 24.0, 9002);
    let seeds = seeds();
    for (backend, execution) in matrix() {
        // Fault-free reference for this cell, once.
        let (clean_engine, clean_request) =
            engine_for(config(backend, execution, FaultConfig::disabled()), &a, &b);
        let baseline = join_pairs(clean_engine.submit(clean_request).unwrap());
        assert!(
            !baseline.is_empty(),
            "degenerate cell {backend:?}/{execution:?}"
        );

        for &seed in &seeds {
            // --- worker_panic: fails with WorkerPanicked, then recovers.
            let (engine, request) = engine_for(
                config(
                    backend,
                    execution,
                    FaultConfig::seeded(seed, FaultKind::WorkerPanic),
                ),
                &a,
                &b,
            );
            match engine.submit(request) {
                Err(EngineError::WorkerPanicked { message, .. }) => {
                    assert!(message.contains("injected fault"), "{message}");
                }
                other => panic!(
                    "worker_panic seed {seed} on {backend:?}/{execution:?}: expected \
                     WorkerPanicked, got {other:?}"
                ),
            }
            let recovered = join_pairs(engine.submit(request).unwrap());
            assert_eq!(
                recovered, baseline,
                "post-panic follow-up drifted (seed {seed}, {backend:?}/{execution:?})"
            );
            let prom = engine.metrics().render_prometheus();
            assert!(prom.contains("msj_worker_panics_total 1"));

            // --- slow_worker: a straggler, not a failure — identical
            // answers, just later.
            let (engine, request) = engine_for(
                config(
                    backend,
                    execution,
                    FaultConfig::seeded(seed, FaultKind::SlowWorker { millis: 5 }),
                ),
                &a,
                &b,
            );
            let stalled = join_pairs(engine.submit(request).unwrap());
            assert_eq!(
                stalled, baseline,
                "straggler changed answers (seed {seed}, {backend:?}/{execution:?})"
            );

            // --- raster_corrupt: degraded filter-only path, correct
            // answers.
            let (engine, request) = engine_for(
                config(
                    backend,
                    execution,
                    FaultConfig::seeded(seed, FaultKind::RasterCorrupt),
                ),
                &a,
                &b,
            );
            let degraded = join_pairs(engine.submit(request).unwrap());
            assert_eq!(
                degraded, baseline,
                "degraded mode changed answers (seed {seed}, {backend:?}/{execution:?})"
            );
            let prom = engine.metrics().render_prometheus();
            assert!(prom.contains("msj_degraded_mode_total{reason=\"fault_injected\"} 1"));
            // Degraded is sticky for the cached pair and still correct.
            let again = join_pairs(engine.submit(request).unwrap());
            assert_eq!(again, baseline);

            // --- cancel: the injected cancellation trips the caller's
            // token mid-run; the follow-up (fault spent) completes.
            let (engine, request) = engine_for(
                config(
                    backend,
                    execution,
                    FaultConfig::seeded(seed, FaultKind::CancelAtBatch { batch: 0 }),
                ),
                &a,
                &b,
            );
            let token = CancelToken::new();
            match engine.submit_with_cancel(request, &token) {
                Err(EngineError::Cancelled { .. }) => {}
                other => panic!(
                    "cancel seed {seed} on {backend:?}/{execution:?}: expected Cancelled, \
                     got {other:?}"
                ),
            }
            let recovered = join_pairs(engine.submit(request).unwrap());
            assert_eq!(
                recovered, baseline,
                "post-cancel follow-up drifted (seed {seed}, {backend:?}/{execution:?})"
            );
            let prom = engine.metrics().render_prometheus();
            assert!(prom.contains("msj_request_cancelled_total 1"));
        }
    }
}

#[test]
fn deadline_stops_promptly_and_leaves_the_engine_clean() {
    use std::time::Duration;
    let a = msj::datagen::small_carto(160, 24.0, 9003);
    let b = msj::datagen::small_carto(160, 24.0, 9004);
    for (backend, execution) in matrix() {
        let (engine, request) =
            engine_for(config(backend, execution, FaultConfig::disabled()), &a, &b);
        let baseline = join_pairs(engine.submit(request).unwrap());
        let token = CancelToken::with_deadline(Duration::ZERO);
        match engine.submit_with_cancel(request, &token) {
            Err(EngineError::DeadlineExceeded { .. }) => {}
            other => panic!("{backend:?}/{execution:?}: expected DeadlineExceeded, got {other:?}"),
        }
        let after = join_pairs(engine.submit(request).unwrap());
        assert_eq!(after, baseline, "{backend:?}/{execution:?}");
    }
}

//! Observability may only *watch* the join — never change it. This
//! suite pins the PR-6 acceptance criterion: response sets with metrics
//! and tracing enabled must be byte-identical to
//! [`ObsConfig::disabled`] across {backend × execution × threads}, for
//! one-shot joins and for the resident engine's whole request surface,
//! while the enabled side actually records what it watched.

use msj::core::{
    Backend, Execution, JoinConfig, MultiStepJoin, ObsConfig, Request, Response, SpatialEngine,
};
use msj::geom::{Point, Rect};
use std::sync::Arc;

fn workload(seed: u64) -> (msj::geom::Relation, msj::geom::Relation) {
    (
        msj::datagen::small_carto(48, 24.0, seed),
        msj::datagen::small_carto(48, 24.0, seed + 1),
    )
}

/// One-shot joins: every backend × execution cell produces the same
/// bytes (pairs, in order, plus the deterministic operation counts)
/// whether observability is fully on (metrics + traces) or fully off.
#[test]
fn tracing_on_and_off_are_byte_identical_across_the_matrix() {
    let (a, b) = workload(8101);
    let backends = [
        Backend::RStarTraversal,
        Backend::PartitionedSweep {
            tiles_per_axis: 4,
            threads: 2,
        },
    ];
    let executions = [
        Execution::Serial,
        Execution::Fused { threads: 1 },
        Execution::Fused { threads: 4 },
    ];
    for backend in backends {
        for execution in executions {
            let run = |obs: ObsConfig| {
                let config = JoinConfig::builder()
                    .backend(backend)
                    .execution(execution)
                    .obs(obs)
                    .build();
                MultiStepJoin::new(config).execute(&a, &b)
            };
            let on = run(ObsConfig::with_traces(8));
            let off = run(ObsConfig::disabled());
            let label = format!("{backend:?}/{execution:?}");
            // Byte-identical: same pairs in the same order — not merely
            // the same set.
            assert_eq!(on.pairs, off.pairs, "{label}: response sets diverged");
            assert_eq!(
                on.stats.exact_ops, off.stats.exact_ops,
                "{label}: exact-geometry work diverged"
            );
            assert_eq!(
                on.stats.mbr_join.candidates, off.stats.mbr_join.candidates,
                "{label}: candidate streams diverged"
            );
            // The watched side watched; the dark side stayed dark.
            assert!(!on.worker_lanes.is_empty(), "{label}: no lanes recorded");
            assert!(
                off.worker_lanes.is_empty(),
                "{label}: disabled obs left lanes"
            );
            assert_eq!(off.stats.step2_nanos + off.stats.step3_nanos, 0, "{label}");
        }
    }
}

/// The resident engine: the full request surface (join, self-join,
/// point, window) answers identically on a traced engine and a dark
/// one, and only the traced engine accumulates metrics and traces.
#[test]
fn engine_request_surface_agrees_with_observability_off() {
    let (a, b) = workload(8201);
    let world = a.bounding_rect().unwrap();
    let a = Arc::new(a);
    let b = Arc::new(b);
    let p = Point::new(
        world.xmin() + world.width() * 0.45,
        world.ymin() + world.height() * 0.55,
    );
    let w = Rect::from_bounds(
        p.x,
        p.y,
        p.x + world.width() * 0.15,
        p.y + world.height() * 0.15,
    );

    let serve = |obs: ObsConfig| {
        let engine = SpatialEngine::new(JoinConfig::builder().obs(obs).build());
        let (ha, hb) = (engine.register(a.clone()), engine.register(b.clone()));
        let responses = engine.submit_batch([
            Request::Join {
                a: ha.id(),
                b: hb.id(),
                execution: Some(Execution::Fused { threads: 4 }),
            },
            Request::SelfJoin {
                dataset: ha.id(),
                execution: None,
            },
            Request::Point {
                dataset: ha.id(),
                point: p,
            },
            Request::Window {
                dataset: ha.id(),
                window: w,
            },
        ]);
        (engine, responses)
    };
    let (traced, on) = serve(ObsConfig::with_traces(16));
    let (dark, off) = serve(ObsConfig::disabled());
    assert_eq!(on.len(), off.len());
    for (i, (x, y)) in on.iter().zip(off.iter()).enumerate() {
        match (x.as_ref().unwrap(), y.as_ref().unwrap()) {
            (Response::Join(jx), Response::Join(jy)) => {
                assert_eq!(jx.pairs, jy.pairs, "request {i}: join pairs diverged");
            }
            (Response::Selection(sx), Response::Selection(sy)) => {
                assert_eq!(sx.ids, sy.ids, "request {i}: selection ids diverged");
            }
            other => panic!("request {i}: response shapes diverged: {other:?}"),
        }
    }
    // Four requests → four traces and four latency observations.
    assert_eq!(traced.recent_traces().len(), 4);
    let snap = traced.metrics().snapshot();
    let served: u64 = ["join", "self_join", "point", "window"]
        .iter()
        .filter_map(|kind| snap.histogram(&format!("msj_request_latency_nanos{{kind=\"{kind}\"}}")))
        .map(|h| h.count)
        .sum();
    assert_eq!(served, 4);
    assert!(dark.recent_traces().is_empty());
    assert_eq!(
        dark.metrics()
            .snapshot()
            .counter("msj_admission_accept_total"),
        0
    );
}

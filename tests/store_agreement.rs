//! Store agreement: the persistent Step-0 store must be invisible to
//! answers.
//!
//! * **Cold start** — register → persist → drop the engine →
//!   [`SpatialEngine::open`] from the segment files: every request kind
//!   (join, self-join, point, window) answers byte-identically across
//!   the full {backend} × {execution / threads} matrix, with zero
//!   re-parsing of the source relations.
//! * **Eviction** — an undersized residency budget keeps evicting cold
//!   datasets; every touch reloads from disk and still answers
//!   identically.
//! * **Corruption** — a seeded `store_corrupt:<section>` fault flips one
//!   bit in a segment section before checksum verification. Loads must
//!   degrade (rebuild the artifact, or run the pair filter-only) and
//!   answer byte-identically — never panic, never wedge. Seeds come from
//!   `MSJ_FAULT_SEED` when set, mirroring the CI chaos loop.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use msj::core::{
    Backend, Execution, FaultConfig, FaultKind, JoinConfig, Request, Response, SpatialEngine,
    StoreConfig,
};
use msj::fault::StoreSection;
use msj::geom::{Point, Rect, Relation};

/// Small batches so fused runs cross several batch boundaries.
const BATCH: usize = 16;

static DIR_COUNTER: AtomicU64 = AtomicU64::new(0);

/// A fresh, unique store directory under the OS temp root.
fn tmp_store(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "msj-store-agreement-{}-{}-{}",
        std::process::id(),
        tag,
        DIR_COUNTER.fetch_add(1, Ordering::Relaxed)
    ))
}

fn seeds() -> Vec<u64> {
    match std::env::var("MSJ_FAULT_SEED")
        .ok()
        .and_then(|s| s.trim().parse::<u64>().ok())
    {
        Some(seed) => vec![seed],
        None => vec![11, 42, 977],
    }
}

fn matrix() -> Vec<(Backend, Execution)> {
    let backends = [
        Backend::RStarTraversal,
        Backend::PartitionedSweep {
            tiles_per_axis: 6,
            threads: 0,
        },
    ];
    let executions = [
        Execution::Serial,
        Execution::Fused { threads: 1 },
        Execution::Fused { threads: 4 },
    ];
    backends
        .iter()
        .flat_map(|&b| executions.iter().map(move |&e| (b, e)))
        .collect()
}

fn config(backend: Backend, execution: Execution, fault: FaultConfig) -> JoinConfig {
    JoinConfig::builder()
        .backend(backend)
        .execution(execution)
        .batch_pairs(BATCH)
        .fault(fault)
        .build()
}

/// One request of every kind the engine serves, with selection geometry
/// derived from the data so every response is non-trivial.
fn workload(a: &Relation) -> Vec<Request> {
    let point = a.iter().nth(3).expect("dataset too small").mbr().center();
    let win = a.iter().nth(7).expect("dataset too small").mbr();
    let window = Rect::new(
        Point::new(win.xmin() - 1.0, win.ymin() - 1.0),
        Point::new(win.xmax() + 1.0, win.ymax() + 1.0),
    );
    vec![
        Request::Join {
            a: 0,
            b: 1,
            execution: None,
        },
        Request::SelfJoin {
            dataset: 0,
            execution: None,
        },
        Request::Point { dataset: 0, point },
        Request::Window { dataset: 1, window },
    ]
}

/// Flattens every response into comparable payload vectors; errors fail
/// the test at the call site.
fn run(engine: &SpatialEngine, requests: &[Request]) -> Vec<Vec<u64>> {
    engine
        .submit_batch(requests.iter().cloned())
        .into_iter()
        .map(|response| match response.expect("request failed") {
            Response::Join(join) => join
                .pairs
                .into_iter()
                .map(|(x, y)| (u64::from(x) << 32) | u64::from(y))
                .collect(),
            Response::Selection(sel) => sel.ids.into_iter().map(u64::from).collect(),
        })
        .collect()
}

#[test]
fn reopened_engine_answers_identically() {
    let a = msj::datagen::small_carto(120, 24.0, 9101);
    let b = msj::datagen::small_carto(120, 24.0, 9102);
    let requests = workload(&a);
    for (backend, execution) in matrix() {
        let dir = tmp_store("reopen");
        let cfg = config(backend, execution, FaultConfig::disabled());
        let reference = {
            let engine = SpatialEngine::new(cfg)
                .with_store(StoreConfig::new(&dir))
                .expect("arm store");
            engine.register(a.clone());
            engine.register(b.clone());
            run(&engine, &requests)
        }; // engine dropped; only the segment files survive
        assert!(
            reference.iter().any(|payload| !payload.is_empty()),
            "degenerate workload for {backend:?}/{execution:?}"
        );

        let reopened = SpatialEngine::open(cfg, StoreConfig::new(&dir)).expect("cold start");
        assert_eq!(reopened.num_datasets(), 2, "both datasets restored");
        assert_eq!(
            run(&reopened, &requests),
            reference,
            "cold start drifted on {backend:?}/{execution:?}"
        );
        // A restored store must load clean: no checksum failures, no
        // degraded fallback.
        let prom = reopened.metrics().render_prometheus();
        for section in StoreSection::ALL {
            assert!(
                prom.contains(&format!(
                    "msj_store_checksum_failures_total{{section=\"{}\"}} 0",
                    section.name()
                )),
                "unexpected checksum failure for {} on {backend:?}/{execution:?}",
                section.name()
            );
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}

#[test]
fn undersized_budget_evicts_and_reloads_identically() {
    let a = msj::datagen::small_carto(100, 20.0, 9103);
    let b = msj::datagen::small_carto(100, 20.0, 9104);
    let c = msj::datagen::small_carto(100, 20.0, 9105);
    let cfg = JoinConfig::builder().batch_pairs(BATCH).build();

    // Reference: no store, everything resident.
    let free = SpatialEngine::new(cfg);
    free.register(a.clone());
    free.register(b.clone());
    free.register(c.clone());
    let pairs = [(0u32, 1u32), (1, 2), (0, 2)];
    let reference: Vec<_> = pairs
        .iter()
        .map(|&(x, y)| {
            run(
                &free,
                &[Request::Join {
                    a: x,
                    b: y,
                    execution: None,
                }],
            )
        })
        .collect();

    // A budget far below one dataset: every touch evicts the previous
    // resident and re-materializes from disk.
    let dir = tmp_store("evict");
    let engine = SpatialEngine::new(cfg)
        .with_store(StoreConfig::new(&dir).with_byte_budget(4096))
        .expect("arm store");
    engine.register(a);
    engine.register(b);
    engine.register(c);
    for round in 0..2 {
        for (i, &(x, y)) in pairs.iter().enumerate() {
            let got = run(
                &engine,
                &[Request::Join {
                    a: x,
                    b: y,
                    execution: None,
                }],
            );
            assert_eq!(
                got, reference[i],
                "evict-then-touch drifted for pair {x}/{y} (round {round})"
            );
        }
    }
    let prom = engine.metrics().render_prometheus();
    let evictions = prom
        .lines()
        .find_map(|l| l.strip_prefix("msj_store_evictions_total "))
        .and_then(|v| v.trim().parse::<u64>().ok())
        .expect("evictions counter rendered");
    assert!(evictions > 0, "undersized budget never evicted:\n{prom}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn corrupt_dataset_sections_degrade_not_wedge() {
    let a = msj::datagen::small_carto(120, 24.0, 9106);
    let b = msj::datagen::small_carto(120, 24.0, 9107);
    let requests = workload(&a);
    let cfg = config(
        Backend::RStarTraversal,
        Execution::Serial,
        FaultConfig::disabled(),
    );

    // Seed the store once, clean, and take the reference answers. The
    // join also writes the pair-raster segment the raster cases corrupt.
    let dir = tmp_store("chaos");
    let reference = {
        let engine = SpatialEngine::new(cfg)
            .with_store(StoreConfig::new(&dir))
            .expect("arm store");
        engine.register(a.clone());
        engine.register(b.clone());
        run(&engine, &requests)
    };

    let dataset_sections = [
        StoreSection::Tree,
        StoreSection::Conservative,
        StoreSection::Progressive,
        StoreSection::TrStar,
    ];
    for &seed in &seeds() {
        // --- Step-0 sections: the load detects the flip, rebuilds the
        // artifact from the resident relation, and answers identically.
        for section in dataset_sections {
            let faulty = config(
                Backend::RStarTraversal,
                Execution::Serial,
                FaultConfig::seeded(seed, FaultKind::StoreCorrupt { section }),
            );
            let engine =
                SpatialEngine::open(faulty, StoreConfig::new(&dir)).expect("corrupt load wedged");
            assert_eq!(
                run(&engine, &requests),
                reference,
                "degraded load drifted (seed {seed}, section {})",
                section.name()
            );
            let prom = engine.metrics().render_prometheus();
            assert!(
                prom.contains(&format!(
                    "msj_store_checksum_failures_total{{section=\"{}\"}} 1",
                    section.name()
                )),
                "missing checksum counter for {} (seed {seed}):\n{prom}",
                section.name()
            );
            assert!(
                prom.contains("msj_degraded_mode_total{reason=\"store_corrupt\"} 1"),
                "missing degraded counter (seed {seed}, section {}):\n{prom}",
                section.name()
            );
        }

        // --- Pair-raster sections: the prepare detects the flip and
        // falls back to the PR-8 filter-only path — same answers.
        for section in [StoreSection::RasterA, StoreSection::RasterB] {
            let faulty = config(
                Backend::RStarTraversal,
                Execution::Serial,
                FaultConfig::seeded(seed, FaultKind::StoreCorrupt { section }),
            );
            let engine = SpatialEngine::open(faulty, StoreConfig::new(&dir)).expect("open wedged");
            assert_eq!(
                run(&engine, &requests),
                reference,
                "filter-only fallback drifted (seed {seed}, section {})",
                section.name()
            );
            let prom = engine.metrics().render_prometheus();
            assert!(
                prom.contains(&format!(
                    "msj_store_checksum_failures_total{{section=\"{}\"}} 1",
                    section.name()
                )),
                "missing checksum counter for {} (seed {seed}):\n{prom}",
                section.name()
            );
            assert!(
                prom.contains("msj_degraded_mode_total{reason=\"store_corrupt\"} 1"),
                "missing degraded counter (seed {seed}, section {}):\n{prom}",
                section.name()
            );
        }

        // --- The relation section is the one artifact with no rebuild
        // source: the open must fail with a clean error, never panic.
        let faulty = config(
            Backend::RStarTraversal,
            Execution::Serial,
            FaultConfig::seeded(
                seed,
                FaultKind::StoreCorrupt {
                    section: StoreSection::Relation,
                },
            ),
        );
        match SpatialEngine::open(faulty, StoreConfig::new(&dir)) {
            Err(err) => assert_eq!(err.kind(), std::io::ErrorKind::InvalidData, "{err}"),
            Ok(_) => panic!("corrupt relation section must fail the open (seed {seed})"),
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}

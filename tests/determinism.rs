//! Reproducibility: identical seeds must give bit-identical datasets,
//! joins and statistics across runs — the property that makes every
//! experiment in EXPERIMENTS.md re-checkable.

use msj::core::{JoinConfig, MultiStepJoin};

#[test]
fn datasets_are_bit_identical_per_seed() {
    let a1 = msj::datagen::europe_like(77);
    let a2 = msj::datagen::europe_like(77);
    assert_eq!(a1.len(), a2.len());
    for (x, y) in a1.iter().zip(a2.iter()) {
        assert_eq!(x.region.outer().vertices(), y.region.outer().vertices());
    }
    // A different seed produces different data.
    let b = msj::datagen::europe_like(78);
    let same = a1
        .iter()
        .zip(b.iter())
        .filter(|(x, y)| x.region.outer().vertices() == y.region.outer().vertices())
        .count();
    assert_eq!(same, 0);
}

#[test]
fn joins_are_deterministic() {
    let a = msj::datagen::small_carto(50, 24.0, 5);
    let b = msj::datagen::small_carto(50, 24.0, 6);
    let r1 = MultiStepJoin::new(JoinConfig::default()).execute(&a, &b);
    let r2 = MultiStepJoin::new(JoinConfig::default()).execute(&a, &b);
    assert_eq!(r1.pairs, r2.pairs);
    assert_eq!(r1.stats.mbr_join.candidates, r2.stats.mbr_join.candidates);
    assert_eq!(r1.stats.filter_false_hits, r2.stats.filter_false_hits);
    assert_eq!(r1.stats.exact_ops, r2.stats.exact_ops);
    assert_eq!(r1.stats.mbr_join.io.physical, r2.stats.mbr_join.io.physical);
}

#[test]
fn series_generation_is_deterministic() {
    let s1 = msj::datagen::test_series(msj::datagen::BaseMap::Europe, msj::datagen::Strategy::B, 3);
    let s2 = msj::datagen::test_series(msj::datagen::BaseMap::Europe, msj::datagen::Strategy::B, 3);
    for (x, y) in s1.b.iter().zip(s2.b.iter()) {
        assert_eq!(x.region.outer().vertices(), y.region.outer().vertices());
    }
}

//! Cross-crate integration: the full multi-step pipeline must return the
//! exact intersection join for representative configurations, including
//! regions with holes.

use msj::approx::{ConservativeKind, ProgressiveKind};
use msj::core::{ground_truth_join, JoinConfig, MultiStepJoin};
use msj::exact::ExactAlgorithm;
use msj::geom::{Point, Polygon, PolygonWithHoles, Relation, SpatialObject};

fn sorted(mut v: Vec<(u32, u32)>) -> Vec<(u32, u32)> {
    v.sort_unstable();
    v
}

#[test]
fn carto_workload_all_versions() {
    let a = msj::datagen::small_carto(60, 30.0, 101);
    let b = msj::datagen::small_carto(60, 30.0, 102);
    let expect = sorted(ground_truth_join(&a, &b));
    assert!(expect.len() > 20, "workload must produce hits");
    for config in [
        JoinConfig::version1(),
        JoinConfig::version2(),
        JoinConfig::version3(),
    ] {
        let got = sorted(MultiStepJoin::new(config).execute(&a, &b).pairs);
        assert_eq!(got, expect, "{config:?}");
    }
}

#[test]
fn strategy_b_series_is_exact() {
    let base = msj::datagen::small_carto(40, 24.0, 7);
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(99);
    let series = msj::datagen::strategy_b("itest", &base, msj::datagen::world(), &mut rng);
    let expect = sorted(ground_truth_join(&series.a, &series.b));
    let got = sorted(
        MultiStepJoin::new(JoinConfig::default())
            .execute(&series.a, &series.b)
            .pairs,
    );
    assert_eq!(got, expect);
}

/// A donut (square with a square hole) and probes inside/outside the hole
/// exercise the hole-handling of every exact algorithm through the whole
/// pipeline.
#[test]
fn regions_with_holes_are_joined_correctly() {
    fn sq(x: f64, y: f64, s: f64) -> Polygon {
        Polygon::new(vec![
            Point::new(x, y),
            Point::new(x + s, y),
            Point::new(x + s, y + s),
            Point::new(x, y + s),
        ])
        .unwrap()
    }
    // Relation A: three donuts in a row.
    let donut = |x: f64| PolygonWithHoles::new(sq(x, 0.0, 10.0), vec![sq(x + 3.0, 3.0, 4.0)]);
    let a = Relation::new(vec![
        SpatialObject::new(0, donut(0.0)),
        SpatialObject::new(1, donut(20.0)),
        SpatialObject::new(2, donut(40.0)),
    ]);
    // Relation B: a square inside the first hole (no intersection), one
    // poking through the second donut's ring (intersection), one covering
    // the third donut entirely (intersection), one far away.
    let b = Relation::new(vec![
        SpatialObject::new(0, sq(4.0, 4.0, 2.0).into()),
        SpatialObject::new(1, sq(24.0, 4.0, 12.0).into()),
        SpatialObject::new(2, sq(38.0, -2.0, 16.0).into()),
        SpatialObject::new(3, sq(100.0, 100.0, 5.0).into()),
    ]);
    let expect = vec![(1u32, 1u32), (2, 2)];
    for exact in [
        ExactAlgorithm::Quadratic,
        ExactAlgorithm::PlaneSweep { restrict: true },
        ExactAlgorithm::TrStar { max_entries: 3 },
    ] {
        let config = JoinConfig::builder().exact(exact).build();
        let got = sorted(MultiStepJoin::new(config).execute(&a, &b).pairs);
        assert_eq!(got, expect, "{exact:?}");
    }
}

#[test]
fn every_conservative_progressive_combination_is_exact() {
    let a = msj::datagen::small_carto(30, 20.0, 301);
    let b = msj::datagen::small_carto(30, 20.0, 302);
    let expect = sorted(ground_truth_join(&a, &b));
    for conservative in [
        None,
        Some(ConservativeKind::Mbc),
        Some(ConservativeKind::Mbe),
        Some(ConservativeKind::Rmbr),
        Some(ConservativeKind::FourCorner),
        Some(ConservativeKind::FiveCorner),
        Some(ConservativeKind::ConvexHull),
    ] {
        for progressive in [None, Some(ProgressiveKind::Mec), Some(ProgressiveKind::Mer)] {
            let config = JoinConfig::builder()
                .conservative(conservative)
                .progressive(progressive)
                .false_area_test(true)
                .build();
            let got = sorted(MultiStepJoin::new(config).execute(&a, &b).pairs);
            assert_eq!(got, expect, "cons {conservative:?} prog {progressive:?}");
        }
    }
}

#[test]
fn self_join_contains_every_object_with_itself() {
    let a = msj::datagen::small_carto(25, 20.0, 55);
    let result = MultiStepJoin::new(JoinConfig::default()).execute(&a, &a);
    for id in 0..a.len() as u32 {
        assert!(result.pairs.contains(&(id, id)), "missing self pair {id}");
    }
}

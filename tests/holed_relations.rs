//! End-to-end joins over relations where a fraction of objects carry
//! holes ("lakes", §2.1) — every exact algorithm and the full pipeline
//! must handle them identically.

use msj::core::{ground_truth_join, JoinConfig, MultiStepJoin};
use msj::exact::ExactAlgorithm;

fn sorted(mut v: Vec<(u32, u32)>) -> Vec<(u32, u32)> {
    v.sort_unstable();
    v
}

#[test]
fn holed_relations_have_holes() {
    let rel = msj::datagen::carto_with_holes(60, 24.0, 404);
    let holed = rel.iter().filter(|o| !o.region.holes().is_empty()).count();
    assert!(
        holed > 5,
        "dataset must actually contain holes, got {holed}"
    );
    for o in rel.iter() {
        assert!(
            msj::geom::region_is_valid(&o.region),
            "object {} invalid",
            o.id
        );
    }
}

#[test]
fn pipeline_is_exact_on_holed_data() {
    let a = msj::datagen::carto_with_holes(50, 24.0, 405);
    let b = msj::datagen::carto_with_holes(50, 24.0, 406);
    let expect = sorted(ground_truth_join(&a, &b));
    assert!(!expect.is_empty());
    for exact in [
        ExactAlgorithm::Quadratic,
        ExactAlgorithm::PlaneSweep { restrict: true },
        ExactAlgorithm::TrStar { max_entries: 3 },
    ] {
        let config = JoinConfig::builder().exact(exact).build();
        let got = sorted(MultiStepJoin::new(config).execute(&a, &b).pairs);
        assert_eq!(got, expect, "{exact:?} differs on holed data");
    }
}

#[test]
fn progressive_approximations_respect_holes() {
    use msj::approx::{Progressive, ProgressiveKind};
    use msj::geom::Point;
    let rel = msj::datagen::carto_with_holes(40, 30.0, 407);
    for o in rel.iter().filter(|o| !o.region.holes().is_empty()) {
        // MEC and MER of a holed region must avoid the hole interior.
        for kind in ProgressiveKind::ALL {
            match Progressive::compute(kind, o) {
                Progressive::Mec(c) => {
                    for i in 0..16 {
                        let t = i as f64 / 16.0 * std::f64::consts::TAU;
                        let p = c.center + Point::new(t.cos(), t.sin()) * (c.radius * 0.98);
                        assert!(
                            o.region.contains_point(p),
                            "MEC escapes region {} (possibly into a hole)",
                            o.id
                        );
                    }
                }
                Progressive::Mer(r) => {
                    for i in 0..=3 {
                        for j in 0..=3 {
                            let p = Point::new(
                                r.xmin() + r.width() * i as f64 / 3.0,
                                r.ymin() + r.height() * j as f64 / 3.0,
                            )
                            .lerp(r.center(), 1e-7);
                            assert!(o.region.contains_point(p), "MER escapes region {}", o.id);
                        }
                    }
                }
                Progressive::Empty => {}
            }
        }
    }
}

#[test]
fn trapezoid_decomposition_area_matches_on_holed_data() {
    let rel = msj::datagen::carto_with_holes(30, 24.0, 408);
    for o in rel.iter() {
        let traps = msj::exact::decompose(&o.region);
        let total: f64 = traps.iter().map(|t| t.area()).sum();
        assert!(
            (total - o.area()).abs() < 1e-6 * o.area(),
            "object {}: trapezoid area {} vs region area {}",
            o.id,
            total,
            o.area()
        );
    }
}

//! The resident engine's serving contract:
//!
//! * an owned `PreparedJoin` (no borrowed lifetime) built once runs
//!   repeatedly — Serial and Fused ×4 — with byte-identical response
//!   sets and stable statistics;
//! * an `Arc<PreparedJoin>` is shared across threads, every thread
//!   getting the identical response set;
//! * the unified `Request`/`Response` surface agrees with the one-shot
//!   pipeline and the linear-scan ground truth;
//! * the deprecated shims (`parallel_join`, `QueryProcessor::build`)
//!   keep producing byte-identical output to the engine paths they
//!   delegate to.

use msj::core::{Execution, JoinConfig, MultiStepJoin, Request, Response, SpatialEngine};
use msj::geom::{Point, Rect};
use std::sync::Arc;

fn sorted(mut v: Vec<(u32, u32)>) -> Vec<(u32, u32)> {
    v.sort_unstable();
    v
}

/// Satellite: one owned prepared join, 10 runs under Serial and Fused ×4
/// each — byte-identical response sets, stable statistics.
#[test]
fn owned_prepared_join_is_stable_over_ten_runs() {
    let a = msj::datagen::small_carto(60, 24.0, 9001);
    let b = msj::datagen::small_carto(60, 24.0, 9002);
    let reference = MultiStepJoin::new(JoinConfig::default()).execute(&a, &b);
    let engine = SpatialEngine::new(JoinConfig::default());
    let (ha, hb) = (engine.register(a), engine.register(b));
    let prepared = engine.prepare_join(&ha, &hb);

    for execution in [Execution::Serial, Execution::Fused { threads: 4 }] {
        let expect_pairs = match execution {
            Execution::Serial => reference.pairs.clone(),
            Execution::Fused { .. } => sorted(reference.pairs.clone()),
        };
        let mut steady: Option<msj::core::MultiStepStats> = None;
        for run in 0..10 {
            let result = prepared.run_with(execution);
            assert_eq!(
                result.pairs, expect_pairs,
                "{execution:?} run {run}: response set drifted"
            );
            let s = result.stats;
            // Deterministic counters are identical on every run.
            assert_eq!(s.mbr_join.candidates, reference.stats.mbr_join.candidates);
            assert_eq!(s.raster_hits, reference.stats.raster_hits);
            assert_eq!(s.raster_drops, reference.stats.raster_drops);
            assert_eq!(s.filter_false_hits, reference.stats.filter_false_hits);
            assert_eq!(
                s.filter_hits_progressive,
                reference.stats.filter_hits_progressive
            );
            assert_eq!(s.exact_tests, reference.stats.exact_tests);
            assert_eq!(s.exact_hits, reference.stats.exact_hits);
            assert_eq!(s.exact_ops, reference.stats.exact_ops);
            assert_eq!(s.result_pairs, reference.stats.result_pairs);
            // The simulated I/O reaches a steady state after the first
            // run of this execution mode (warm LRU buffer).
            if run >= 1 {
                if let Some(prev) = steady {
                    assert_eq!(
                        s.mbr_join.io.physical, prev.mbr_join.io.physical,
                        "{execution:?} run {run}: warm-buffer I/O not steady"
                    );
                }
                steady = Some(s);
            }
        }
    }
    // The prepared join retains its last run's stats for admission.
    assert!(prepared.last_stats().is_some());
}

/// Satellite: `Arc<PreparedJoin>` shared across threads — every thread
/// re-runs the resident join and sees the identical response set.
#[test]
fn prepared_join_is_shared_across_threads() {
    let a = msj::datagen::small_carto(50, 24.0, 9003);
    let b = msj::datagen::small_carto(50, 24.0, 9004);
    let engine = SpatialEngine::new(JoinConfig::default());
    let (ha, hb) = (engine.register(a), engine.register(b));
    let prepared: Arc<_> = engine.prepare_join(&ha, &hb);
    let expect = prepared.run_with(Execution::Fused { threads: 2 }).pairs;
    assert!(!expect.is_empty());

    let results: Vec<Vec<(u32, u32)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..4)
            .map(|i| {
                let shared = Arc::clone(&prepared);
                scope.spawn(move || {
                    // Mix execution policies across threads.
                    let execution = if i % 2 == 0 {
                        Execution::Serial
                    } else {
                        Execution::Fused { threads: 2 }
                    };
                    sorted(shared.run_with(execution).pairs)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    for (i, got) in results.iter().enumerate() {
        assert_eq!(got, &sorted(expect.clone()), "thread {i} diverged");
    }
}

/// The engine itself is shared across threads serving mixed traffic.
#[test]
fn engine_serves_batches_from_multiple_threads() {
    let rel = msj::datagen::small_carto(40, 24.0, 9005);
    let world = rel.bounding_rect().unwrap();
    let engine = Arc::new(SpatialEngine::new(JoinConfig::default()));
    let h = engine.register(rel);
    let expect = {
        let Ok(Response::Join(join)) = engine.submit(Request::SelfJoin {
            dataset: h.id(),
            execution: None,
        }) else {
            panic!("self-join failed");
        };
        join.pairs
    };
    std::thread::scope(|scope| {
        for t in 0..3 {
            let engine = Arc::clone(&engine);
            let expect = expect.clone();
            let id = h.id();
            scope.spawn(move || {
                let p = Point::new(
                    world.xmin() + world.width() * 0.3,
                    world.ymin() + world.height() * (0.2 + 0.2 * t as f64),
                );
                let responses = engine.submit_batch([
                    Request::SelfJoin {
                        dataset: id,
                        execution: Some(Execution::Fused { threads: 2 }),
                    },
                    Request::Point {
                        dataset: id,
                        point: p,
                    },
                    Request::Window {
                        dataset: id,
                        window: Rect::from_bounds(p.x, p.y, p.x + 1.0, p.y + 1.0),
                    },
                ]);
                let Ok(Response::Join(join)) = &responses[0] else {
                    panic!("thread {t}: join failed");
                };
                assert_eq!(sorted(join.pairs.clone()), sorted(expect), "thread {t}");
                assert!(responses[1].is_ok() && responses[2].is_ok());
            });
        }
    });
}

/// Satellite: the deprecated `parallel_join` shim stays byte-identical
/// to the engine path it delegates to.
#[test]
#[allow(deprecated)]
fn parallel_join_shim_is_byte_identical_to_the_engine() {
    let a = msj::datagen::small_carto(40, 24.0, 9006);
    let b = msj::datagen::small_carto(40, 24.0, 9007);
    let config = JoinConfig::default();
    let engine = SpatialEngine::new(config);
    let (ha, hb) = (engine.register(a.clone()), engine.register(b.clone()));
    let prepared = engine.prepare_join(&ha, &hb);
    for threads in [1usize, 4] {
        let shim = msj::core::parallel_join(&a, &b, &config, threads);
        let resident = prepared.run_with(Execution::Fused { threads });
        assert_eq!(shim.pairs, resident.pairs, "x{threads}: pairs");
        assert_eq!(shim.stats.exact_ops, resident.stats.exact_ops);
        assert_eq!(shim.stats.exact_tests, resident.stats.exact_tests);
        assert_eq!(shim.stats.raster_hits, resident.stats.raster_hits);
        assert_eq!(
            shim.stats.filter_false_hits,
            resident.stats.filter_false_hits
        );
        assert_eq!(shim.stats.result_pairs, resident.stats.result_pairs);
    }
}

/// Satellite: the deprecated `QueryProcessor::build` shim stays
/// byte-identical to the engine's selection queries.
#[test]
#[allow(deprecated)]
fn query_processor_shim_is_byte_identical_to_the_engine() {
    let rel = msj::datagen::small_carto(60, 24.0, 9008);
    let world = rel.bounding_rect().unwrap();
    for config in [JoinConfig::default(), JoinConfig::version1()] {
        let engine = SpatialEngine::new(config);
        let h = engine.register(rel.clone());
        let mut shim = msj::core::QueryProcessor::build(&rel, &config);
        let mut counts = msj::exact::OpCounts::new();
        for i in 0..30 {
            let p = Point::new(
                world.xmin() + world.width() * (i as f64 * 0.37).fract(),
                world.ymin() + world.height() * (i as f64 * 0.61).fract(),
            );
            let (shim_ids, shim_stats) = shim.point_query(p, &mut counts);
            let resp = engine.point_query(&h, p);
            assert_eq!(shim_ids, resp.ids, "point {p:?}");
            assert_eq!(shim_stats, resp.stats, "point stats {p:?}");
            let side = world.width() * 0.08;
            let w = Rect::from_bounds(p.x, p.y, p.x + side, p.y + side);
            let (shim_ids, shim_stats) = shim.window_query(w, &mut counts);
            let resp = engine.window_query(&h, w);
            assert_eq!(shim_ids, resp.ids, "window {w:?}");
            assert_eq!(shim_stats, resp.stats, "window stats {w:?}");
        }
    }
}

/// The serving surface agrees with the classic one-shot pipeline on the
/// same data and configuration (the migration is behavior-preserving).
#[test]
fn engine_join_equals_one_shot_execute() {
    let a = msj::datagen::carto_with_holes(36, 24.0, 9009);
    let b = msj::datagen::carto_with_holes(36, 24.0, 9010);
    for config in [
        JoinConfig::version1(),
        JoinConfig::version2(),
        JoinConfig::version3(),
    ] {
        let one_shot = MultiStepJoin::new(config).execute(&a, &b);
        let engine = SpatialEngine::new(config);
        let (ha, hb) = (engine.register(a.clone()), engine.register(b.clone()));
        let Ok(Response::Join(join)) = engine.submit(Request::Join {
            a: ha.id(),
            b: hb.id(),
            execution: None,
        }) else {
            panic!("join failed for {config:?}");
        };
        assert_eq!(join.pairs, one_shot.pairs, "{config:?}");
        assert_eq!(join.stats.exact_ops, one_shot.stats.exact_ops, "{config:?}");
        // The response carries §5 accounting with observed yields.
        assert!(join.admission.estimated_s >= 0.0);
        assert_eq!(
            join.admission.cost.filter_yield_observed,
            join.stats.identified_fraction()
        );
    }
}

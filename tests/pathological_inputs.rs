//! Failure injection: pathological inputs that stress degenerate paths —
//! identical keys, zero-extent rectangles, huge coordinate magnitudes,
//! needle polygons — must neither panic nor violate invariants.

use msj::core::{ground_truth_join, JoinConfig, MultiStepJoin};
use msj::geom::{Point, Polygon, Rect, Relation, SpatialObject};
use msj::sam::{LruBuffer, PageLayout, RStarTree};

#[test]
fn rstar_with_all_identical_rectangles() {
    // Every key identical: splits cannot separate by geometry at all.
    let rect = Rect::from_bounds(5.0, 5.0, 6.0, 6.0);
    let layout = PageLayout {
        page_size: 256,
        leaf_entry_bytes: 48,
        dir_entry_bytes: 20,
    };
    let mut tree = RStarTree::new(layout);
    for id in 0..200u32 {
        tree.insert(rect, id);
    }
    tree.check_invariants()
        .expect("invariants with identical keys");
    let mut buffer = LruBuffer::new(1 << 12);
    let hits = tree.point_query(Point::new(5.5, 5.5), &mut buffer);
    assert_eq!(hits.len(), 200);
    // Delete half of them again.
    for id in 0..100u32 {
        assert!(tree.delete(rect, id));
    }
    tree.check_invariants()
        .expect("invariants after deleting half");
    assert_eq!(tree.len(), 100);
}

#[test]
fn rstar_with_zero_extent_rectangles() {
    // Point-like keys (degenerate MBRs of point objects).
    let layout = PageLayout {
        page_size: 256,
        leaf_entry_bytes: 48,
        dir_entry_bytes: 20,
    };
    let items: Vec<(Rect, u32)> = (0..150)
        .map(|i| {
            let p = Point::new((i % 15) as f64, (i / 15) as f64);
            (Rect::new(p, p), i as u32)
        })
        .collect();
    let tree = RStarTree::insert_all(layout, items.iter().copied());
    tree.check_invariants().expect("invariants with point keys");
    let mut buffer = LruBuffer::new(1 << 12);
    let hits = tree.point_query(Point::new(3.0, 4.0), &mut buffer);
    assert_eq!(hits, vec![63]);
}

#[test]
fn rstar_with_huge_coordinates() {
    let layout = PageLayout::baseline(512);
    let scale = 1e12;
    let items: Vec<(Rect, u32)> = (0..100)
        .map(|i| {
            let x = (i % 10) as f64 * scale;
            let y = (i / 10) as f64 * scale;
            (
                Rect::from_bounds(x, y, x + 0.5 * scale, y + 0.5 * scale),
                i as u32,
            )
        })
        .collect();
    let tree = RStarTree::insert_all(layout, items.iter().copied());
    tree.check_invariants().expect("invariants at 1e12 scale");
    let mut buffer = LruBuffer::new(1 << 12);
    let w = Rect::from_bounds(0.0, 0.0, 2.0 * scale, 2.0 * scale);
    let mut got = tree.window_query(w, &mut buffer);
    got.sort_unstable();
    let mut expect: Vec<u32> = items
        .iter()
        .filter(|(r, _)| r.intersects(&w))
        .map(|&(_, id)| id)
        .collect();
    expect.sort_unstable();
    assert_eq!(got, expect);
}

#[test]
fn needle_polygons_join_correctly() {
    // Extremely thin slivers: MBR filtering is useless, exact tests and
    // approximations must still agree with the ground truth.
    let needle = |x0: f64, y0: f64, dx: f64, dy: f64| -> SpatialObject {
        let along = Point::new(dx, dy);
        let across = along.perp().normalized().unwrap() * 1e-3;
        SpatialObject::new(
            0,
            Polygon::new(vec![
                Point::new(x0, y0),
                Point::new(x0 + along.x, y0 + along.y),
                Point::new(x0 + along.x + across.x, y0 + along.y + across.y),
                Point::new(x0 + across.x, y0 + across.y),
            ])
            .unwrap()
            .into(),
        )
    };
    // A star of 8 needles from the origin vs a ring of crossing needles.
    let a = Relation::from_regions((0..8).map(|i| {
        let t = i as f64 / 8.0 * std::f64::consts::TAU;
        needle(0.0, 0.0, 10.0 * t.cos(), 10.0 * t.sin()).region
    }));
    let b = Relation::from_regions((0..8).map(|i| {
        let t = (i as f64 + 0.5) / 8.0 * std::f64::consts::TAU;
        needle(
            5.0 * t.cos(),
            5.0 * t.sin(),
            -10.0 * t.sin(),
            10.0 * t.cos(),
        )
        .region
    }));
    let expect = {
        let mut v = ground_truth_join(&a, &b);
        v.sort_unstable();
        v
    };
    for config in [JoinConfig::version1(), JoinConfig::version3()] {
        let mut got = MultiStepJoin::new(config).execute(&a, &b).pairs;
        got.sort_unstable();
        assert_eq!(got, expect, "{config:?}");
    }
}

#[test]
fn single_object_relations() {
    let sq = Polygon::new(vec![
        Point::new(0.0, 0.0),
        Point::new(1.0, 0.0),
        Point::new(1.0, 1.0),
        Point::new(0.0, 1.0),
    ])
    .unwrap();
    let a = Relation::from_regions(vec![sq.clone().into()]);
    let b = Relation::from_regions(vec![sq.translated(Point::new(0.5, 0.5)).into()]);
    let r = MultiStepJoin::new(JoinConfig::default()).execute(&a, &b);
    assert_eq!(r.pairs, vec![(0, 0)]);
    // Disjoint singletons.
    let c = Relation::from_regions(vec![sq.translated(Point::new(10.0, 10.0)).into()]);
    let r2 = MultiStepJoin::new(JoinConfig::default()).execute(&a, &c);
    assert!(r2.pairs.is_empty());
}

#[test]
fn polygon_constructor_rejects_bad_inputs() {
    use msj::geom::PolygonError;
    // NaN, infinity, too-few, zero-area: every rejection path.
    assert_eq!(
        Polygon::new(vec![Point::new(0.0, 0.0), Point::new(1.0, 0.0)]),
        Err(PolygonError::TooFewVertices)
    );
    assert_eq!(
        Polygon::new(vec![
            Point::new(0.0, 0.0),
            Point::new(f64::INFINITY, 0.0),
            Point::new(1.0, 1.0),
        ]),
        Err(PolygonError::NonFiniteVertex)
    );
    assert_eq!(
        Polygon::new(vec![
            Point::new(0.0, 0.0),
            Point::new(1.0, 1.0),
            Point::new(0.5, 0.5),
        ]),
        Err(PolygonError::ZeroArea)
    );
}

//! End-to-end: the partitioned Step-1 backend slots into the full
//! multi-step pipeline and produces the identical response set as the
//! R*-tree traversal and the ground truth — for all three paper
//! configurations (§5 versions 1/2/3).

use msj::core::{
    ground_truth_join, Backend, Execution, JoinConfig, MultiStepJoin, Request, Response,
    SpatialEngine,
};

fn sorted(mut v: Vec<(u32, u32)>) -> Vec<(u32, u32)> {
    v.sort_unstable();
    v
}

#[test]
fn all_paper_versions_agree_on_the_partitioned_backend() {
    let a = msj::datagen::small_carto(50, 24.0, 601);
    let b = msj::datagen::small_carto(50, 24.0, 602);
    let truth = sorted(ground_truth_join(&a, &b));
    assert!(!truth.is_empty());
    for base in [
        JoinConfig::version1(),
        JoinConfig::version2(),
        JoinConfig::version3(),
    ] {
        let rstar = MultiStepJoin::new(base).execute(&a, &b);
        assert_eq!(sorted(rstar.pairs.clone()), truth, "R* {base:?}");
        for tiles_per_axis in [1usize, 4, 16] {
            for threads in [1usize, 2, 8] {
                let config = base
                    .to_builder()
                    .backend(Backend::PartitionedSweep {
                        tiles_per_axis,
                        threads,
                    })
                    .build();
                let part = MultiStepJoin::new(config).execute(&a, &b);
                assert_eq!(
                    sorted(part.pairs.clone()),
                    truth,
                    "partitioned {tiles_per_axis}x{tiles_per_axis} t{threads} {base:?}"
                );
                assert_eq!(
                    part.stats.mbr_join.candidates,
                    rstar.stats.mbr_join.candidates
                );
            }
        }
    }
}

#[test]
fn partitioned_backend_flows_through_the_engine() {
    let a = msj::datagen::carto_with_holes(40, 24.0, 611);
    let b = msj::datagen::carto_with_holes(40, 24.0, 612);
    let truth = sorted(ground_truth_join(&a, &b));
    let config = JoinConfig::builder()
        .backend(Backend::PartitionedSweep {
            tiles_per_axis: 8,
            threads: 4,
        })
        .build();
    let engine = SpatialEngine::new(config);
    let (ha, hb) = (engine.register(a), engine.register(b));
    for threads in [1usize, 4] {
        let Ok(Response::Join(result)) = engine.submit(Request::Join {
            a: ha.id(),
            b: hb.id(),
            execution: Some(Execution::Fused { threads }),
        }) else {
            panic!("join request failed");
        };
        assert_eq!(result.pairs, truth, "x{threads}");
        assert_eq!(result.stats.threads_used, threads as u64);
        let summary = result.stats.partition.expect("partition summary");
        assert_eq!(summary.tiles_per_axis, 8);
        assert!(
            (1..=4).contains(&summary.threads),
            "recorded {}",
            summary.threads
        );
    }
}

#[test]
fn partition_stats_surface_per_tile_detail() {
    let a = msj::datagen::small_carto(60, 24.0, 621);
    let b = msj::datagen::small_carto(60, 24.0, 622);
    let items = |rel: &msj::geom::Relation| -> Vec<(msj::geom::Rect, u32)> {
        rel.iter().map(|o| (o.mbr(), o.id)).collect()
    };
    let mut count = 0u64;
    let stats = msj::partition::partition_join(&items(&a), &items(&b), 4, 2, |_, _| count += 1);
    assert_eq!(stats.tile_candidates.len(), 16);
    assert_eq!(stats.tile_candidates.iter().sum::<u64>(), count);
    assert_eq!(stats.candidates(), count);
    assert!(stats.replication_factor() >= 1.0);
}

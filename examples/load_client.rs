//! Load client: N concurrent connections hammering a live `msj-serve`
//! front, then the serving metrics that load produced.
//!
//! Starts an engine + server in-process, drives it from concurrent
//! client threads (pipelined point probes plus joins against an
//! undersized queue so some requests shed), and prints:
//!
//! * the per-status outcome tally (completed / shed / other) with the
//!   first observed `retry_after_ms` backpressure hint;
//! * the queue-depth and shed/timeout counter families from the
//!   server's Prometheus exposition — fetched **over the wire** through
//!   the protocol's `Metrics` request;
//! * the drain report.
//!
//! The process exits nonzero if any request went unanswered or the
//! drain was not clean, so the example doubles as a CI smoke check.
//!
//! ```text
//! cargo run --release --example load_client
//! ```

use std::sync::Arc;
use std::time::{Duration, Instant};

use msj::core::{JoinConfig, SpatialEngine};
use msj::serve::{Client, ResponseBody, ServeConfig, Server, WireRequest, WireStatus};

const CLIENTS: usize = 8;
const POINTS_PER_CLIENT: u64 = 200;
const JOINS_PER_CLIENT: u64 = 8;

fn main() {
    let engine = Arc::new(SpatialEngine::new(JoinConfig::default()));
    let a = engine
        .register(msj::datagen::small_carto(400, 12.0, 7))
        .id();
    let b = engine
        .register(msj::datagen::small_carto(400, 12.0, 8))
        .id();

    // A deliberately tight front: the queue bound is well under the
    // pipelined burst (8 × 208 requests), so the overload machinery
    // engages — most probes coalesce into batches and complete, the
    // overflow sheds with a retry hint.
    let server = Server::start(
        engine.clone(),
        ServeConfig {
            workers: 2,
            queue_bound: 256,
            batch_max: 32,
            ..ServeConfig::default()
        },
    )
    .expect("server start");
    let addr = server.addr();
    println!("serving on {addr} ({CLIENTS} clients incoming)");

    let started = Instant::now();
    let handles: Vec<_> = (0..CLIENTS as u64)
        .map(|c| {
            std::thread::spawn(move || -> (u64, u64, u64, Option<u64>) {
                let mut client =
                    Client::connect_with_timeout(addr, Duration::from_secs(60)).expect("connect");
                let mut sent = 0;
                // Pipelined probes: concurrent same-dataset selections
                // are what the server coalesces into shared descents.
                for i in 0..POINTS_PER_CLIENT {
                    let t = (c * POINTS_PER_CLIENT + i) as f64
                        / (CLIENTS as u64 * POINTS_PER_CLIENT) as f64;
                    client
                        .send(&WireRequest::point(sent, a, t, 1.0 - t))
                        .expect("send");
                    sent += 1;
                }
                for _ in 0..JOINS_PER_CLIENT {
                    client.send(&WireRequest::join(sent, a, b)).expect("send");
                    sent += 1;
                }
                let (mut ok, mut shed, mut other) = (0, 0, 0);
                let mut first_retry_hint = None;
                for _ in 0..sent {
                    let reply = client.recv().expect("reply");
                    match reply.body {
                        ResponseBody::Shed { retry_after_ms, .. } => {
                            shed += 1;
                            first_retry_hint.get_or_insert(retry_after_ms);
                        }
                        ref body if body.status() == WireStatus::Ok => ok += 1,
                        _ => other += 1,
                    }
                }
                (ok, shed, other, first_retry_hint)
            })
        })
        .collect();

    let (mut ok, mut shed, mut other) = (0, 0, 0);
    let mut retry_hint = None;
    for handle in handles {
        let (o, s, x, hint) = handle.join().expect("client thread");
        ok += o;
        shed += s;
        other += x;
        if retry_hint.is_none() {
            retry_hint = hint;
        }
    }
    let elapsed = started.elapsed();
    let total = CLIENTS as u64 * (POINTS_PER_CLIENT + JOINS_PER_CLIENT);
    println!(
        "\n{total} requests in {:.2}s ({:.0} req/s): {ok} completed, {shed} shed, {other} other",
        elapsed.as_secs_f64(),
        total as f64 / elapsed.as_secs_f64(),
    );
    if let Some(ms) = retry_hint {
        println!("first shed carried retry_after_ms = {ms} (§5-derived backpressure)");
    }

    // The serving families, scraped over the wire like any Prometheus
    // client would.
    let mut client = Client::connect(addr).expect("metrics connect");
    let reply = client.call(&WireRequest::metrics(0)).expect("metrics");
    let ResponseBody::Text(exposition) = reply.body else {
        panic!("metrics request must answer text");
    };
    println!("\n--- serving metrics (wire exposition extract) ---");
    for line in exposition.lines() {
        if [
            "msj_queue_depth",
            "msj_request_shed_total",
            "msj_conn_timeouts_total",
            "msj_connections",
            "msj_serve_batch_size_count",
            "msj_queue_wait_nanos{quantile",
        ]
        .iter()
        .any(|family| line.starts_with(family))
        {
            println!("{line}");
        }
    }

    server.shutdown();
    let report = server.join();
    println!("\ndrain report: {report:?}");

    let answered = ok + shed + other;
    if answered != total || !report.clean {
        eprintln!("FAIL: {answered}/{total} answered, clean={}", report.clean);
        std::process::exit(1);
    }
    println!("clean drain; every request answered exactly once");
}

//! The paper's motivating query (§1): *"find all forests which are in a
//! city"* — a spatial join of the relations Forests and Cities with the
//! intersection predicate, comparing all three §5 versions of the join
//! processor on the same data.
//!
//! ```text
//! cargo run --release --example forests_in_cities
//! ```

use msj::core::{figure18_cost, CostModelParams, ExactCostKind, JoinConfig, MultiStepJoin};
use msj::geom::Relation;

fn main() {
    // City districts tile the map; forests are an independent layer that
    // was surveyed separately (different seed, rotated placements).
    let cities: Relation = msj::datagen::small_carto(250, 48.0, 1234);
    let forests: Relation = msj::datagen::small_carto(250, 64.0, 5678);

    println!(
        "Forests ⋈_intersects Cities — {} x {} objects\n",
        forests.len(),
        cities.len()
    );

    let versions = [
        (
            "version 1: no approximations, plane sweep",
            JoinConfig::version1(),
            ExactCostKind::PlaneSweep,
        ),
        (
            "version 2: 5-C + MER, plane sweep",
            JoinConfig::version2(),
            ExactCostKind::PlaneSweep,
        ),
        (
            "version 3: 5-C + MER, TR*-tree (paper's choice)",
            JoinConfig::version3(),
            ExactCostKind::TrStar,
        ),
    ];

    let params = CostModelParams::default();
    let mut reference: Option<Vec<(u32, u32)>> = None;
    for (name, config, cost_kind) in versions {
        let result = MultiStepJoin::new(config).execute(&forests, &cities);
        let cost = figure18_cost(&result.stats, cost_kind, &params);
        println!("{name}");
        println!(
            "  result: {} pairs | candidates {} | filter-identified {} | exact tests {}",
            result.pairs.len(),
            result.stats.mbr_join.candidates,
            result.stats.identified(),
            result.stats.exact_tests,
        );
        println!(
            "  modeled cost: MBR-join {:.2}s + object access {:.2}s + exact {:.2}s = {:.2}s\n",
            cost.mbr_join_s,
            cost.object_access_s,
            cost.exact_test_s,
            cost.total_s()
        );

        // All versions must return the identical response set.
        let mut pairs = result.pairs.clone();
        pairs.sort_unstable();
        match &reference {
            None => reference = Some(pairs),
            Some(r) => assert_eq!(r, &pairs, "versions disagree"),
        }
    }

    let pairs = reference.unwrap();
    println!(
        "every version returns the same {} forest/city pairs — the",
        pairs.len()
    );
    println!("multi-step filters change the cost, never the answer.");
}

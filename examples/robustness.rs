//! Robustness: the engine's failure story, end to end.
//!
//! Walks every hardened path on one resident `SpatialEngine`:
//!
//! * a join submitted with a **deadline** (cooperative cancellation at
//!   batch boundaries) comes back as `DeadlineExceeded` with the elapsed
//!   time and the partial candidate count;
//! * an **explicit cancellation** from another thread stops an in-flight
//!   join with `Cancelled`;
//! * a deterministically **injected worker panic** (seed-driven
//!   `msj-fault` plan) is contained to `WorkerPanicked` — and the *same*
//!   engine then serves the identical request, byte-identically;
//! * an injected **raster corruption** drops the pair to the degraded
//!   filter-only path: correct answers, `msj_degraded_mode_total`
//!   incremented;
//! * the closing Prometheus exposition carries every failure counter.
//!
//! ```text
//! cargo run --release --example robustness
//! ```

use msj::core::{
    CancelToken, EngineError, FaultConfig, FaultKind, JoinConfig, Request, Response, SpatialEngine,
};
use std::time::Duration;

fn pairs(engine: &SpatialEngine, request: Request) -> Vec<(u32, u32)> {
    match engine.submit(request) {
        Ok(Response::Join(join)) => join.pairs,
        other => panic!("expected a join response, got {other:?}"),
    }
}

fn main() {
    // Small batches so the seed-targeted fault plans land early.
    let faulty = JoinConfig::builder()
        .batch_pairs(64)
        .fault(FaultConfig::seeded(42, FaultKind::WorkerPanic))
        .build();
    let engine = SpatialEngine::new(faulty);
    let a = engine.register(msj::datagen::small_carto(400, 32.0, 5));
    let b = engine.register(msj::datagen::small_carto(400, 32.0, 6));
    let request = Request::Join {
        a: a.id(),
        b: b.id(),
        execution: None,
    };

    // 1. Injected worker panic: contained, reported, not sticky.
    match engine.submit(request) {
        Err(EngineError::WorkerPanicked { worker, message }) => {
            println!("worker panic contained: worker {worker}: {message}");
        }
        other => panic!("expected WorkerPanicked, got {other:?}"),
    }
    let recovered = pairs(&engine, request);
    println!(
        "same engine, same request, clean answer: {} pairs\n",
        recovered.len()
    );

    // 2. Deadline: an impossible budget trips cooperatively at the first
    // batch boundary.
    let token = CancelToken::with_deadline(Duration::ZERO);
    match engine.submit_with_cancel(request, &token) {
        Err(EngineError::DeadlineExceeded {
            elapsed,
            partial_candidates,
        }) => println!(
            "deadline exceeded after {elapsed:?} with {partial_candidates} partial candidates"
        ),
        other => panic!("expected DeadlineExceeded, got {other:?}"),
    }

    // 3. Explicit cancellation: cancel before submitting (a second
    // thread holding a clone of the token works the same way).
    let token = CancelToken::new();
    token.cancel();
    match engine.submit_with_cancel(request, &token) {
        Err(EngineError::Cancelled { .. }) => println!("explicit cancellation honoured\n"),
        other => panic!("expected Cancelled, got {other:?}"),
    }

    // 4. Injected raster corruption: the pair degrades to the
    // filter-only path and the answers stay correct.
    let degraded_engine = SpatialEngine::new(
        JoinConfig::builder()
            .fault(FaultConfig::seeded(7, FaultKind::RasterCorrupt))
            .build(),
    );
    let da = degraded_engine.register(msj::datagen::small_carto(400, 32.0, 5));
    let db = degraded_engine.register(msj::datagen::small_carto(400, 32.0, 6));
    let degraded = pairs(
        &degraded_engine,
        Request::Join {
            a: da.id(),
            b: db.id(),
            execution: None,
        },
    );
    assert_eq!(degraded, recovered, "degraded mode changed answers");
    println!(
        "raster corruption degraded the pair to filter-only: {} pairs, unchanged",
        degraded.len()
    );

    // 5. Everything above is on the scrape.
    println!("\n=== Prometheus exposition (failure families) ===");
    for line in engine.metrics().render_prometheus().lines().filter(|l| {
        [
            "msj_worker_panics_total",
            "msj_deadline_exceeded_total",
            "msj_request_cancelled_total",
            "msj_request_errors_total",
            "msj_fault_injected_total",
        ]
        .iter()
        .any(|f| l.contains(f))
    }) {
        println!("{line}");
    }
    print!(
        "{}",
        degraded_engine
            .metrics()
            .render_prometheus()
            .lines()
            .filter(|l| l.contains("msj_degraded_mode_total"))
            .map(|l| format!("{l}\n"))
            .collect::<String>()
    );
}

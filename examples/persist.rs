//! Persistence: the Step-0 artifact store, end to end.
//!
//! Walks the `msj-store` lifecycle on one workload:
//!
//! * **write-through** — registering datasets on a store-armed engine
//!   serializes every Step-0 artifact (R*-tree arena, approximation
//!   columns, TR* representations) into page-aligned, per-section
//!   FNV-checksummed segment files; the first join adds the pair's
//!   raster signatures;
//! * **cold start** — the engine is dropped and reopened with
//!   `SpatialEngine::open`: artifacts come back from the segments with
//!   zero re-parsing, and every request answers byte-identically
//!   (asserted — the example exits non-zero on divergence);
//! * **eviction** — an undersized residency byte-budget keeps evicting
//!   cold datasets; touches reload from disk and still answer
//!   identically while `msj_store_evictions_total` climbs;
//! * the closing Prometheus exposition carries the store families.
//!
//! ```text
//! cargo run --release --example persist
//! ```

use msj::core::{JoinConfig, Request, Response, SpatialEngine, StoreConfig};

fn run(engine: &SpatialEngine, requests: &[Request]) -> Vec<Vec<u64>> {
    engine
        .submit_batch(requests.iter().cloned())
        .into_iter()
        .map(|r| match r.expect("request failed") {
            Response::Join(join) => join
                .pairs
                .into_iter()
                .map(|(x, y)| (u64::from(x) << 32) | u64::from(y))
                .collect(),
            Response::Selection(sel) => sel.ids.into_iter().map(u64::from).collect(),
        })
        .collect()
}

fn main() {
    let dir = std::env::temp_dir().join(format!("msj-example-persist-{}", std::process::id()));
    let a = msj::datagen::small_carto(400, 32.0, 5);
    let b = msj::datagen::small_carto(400, 32.0, 6);
    let config = JoinConfig::default();
    let point = a.iter().nth(9).expect("relation").mbr().center();
    let requests = [
        Request::Join {
            a: 0,
            b: 1,
            execution: None,
        },
        Request::Point { dataset: 0, point },
    ];

    // 1. Write-through registration + the reference answers.
    let reference = {
        let engine = SpatialEngine::new(config)
            .with_store(StoreConfig::new(&dir))
            .expect("arm store");
        engine.register(a.clone());
        engine.register(b.clone());
        let reference = run(&engine, &requests);
        println!(
            "registered 2 datasets through {:?}; segments on disk:",
            dir.file_name().expect("dir name")
        );
        let mut names: Vec<String> = std::fs::read_dir(&dir)
            .expect("store dir")
            .map(|e| {
                let e = e.expect("dir entry");
                format!(
                    "  {} ({} B)",
                    e.file_name().to_string_lossy(),
                    e.metadata().map_or(0, |m| m.len())
                )
            })
            .collect();
        names.sort();
        println!("{}", names.join("\n"));
        reference
    }; // engine dropped — only the segment files survive

    // 2. Cold start: identical answers from the persisted segments.
    let reopened = SpatialEngine::open(config, StoreConfig::new(&dir)).expect("cold start");
    assert_eq!(reopened.num_datasets(), 2, "both datasets restored");
    let cold = run(&reopened, &requests);
    assert_eq!(cold, reference, "cold start changed answers");
    println!(
        "\ncold start restored both datasets: {} join pairs, {} point hits — identical",
        cold[0].len(),
        cold[1].len()
    );
    drop(reopened);

    // 3. Undersized byte budget: every touch evicts and reloads, and the
    // answers never change.
    let squeezed = SpatialEngine::open(config, StoreConfig::new(&dir).with_byte_budget(4096))
        .expect("open with budget");
    for round in 0..3 {
        let again = run(&squeezed, &requests);
        assert_eq!(again, reference, "eviction round {round} changed answers");
    }
    let prom = squeezed.metrics().render_prometheus();
    let evictions = prom
        .lines()
        .find_map(|l| l.strip_prefix("msj_store_evictions_total "))
        .and_then(|v| v.trim().parse::<u64>().ok())
        .expect("evictions counter");
    assert!(evictions > 0, "undersized budget never evicted");
    println!("undersized 4 KiB budget served 3 rounds correctly ({evictions} evictions)");

    // 4. The store families are on the scrape.
    println!("\n=== Prometheus exposition (store families) ===");
    for line in prom.lines().filter(|l| {
        [
            "msj_store_bytes",
            "msj_store_load_nanos_count",
            "msj_store_evictions_total",
            "msj_store_checksum_failures_total",
        ]
        .iter()
        .any(|f| l.contains(f))
    }) {
        println!("{line}");
    }
    std::fs::remove_dir_all(&dir).ok();
}

//! WKT workflow: the path a real adopter takes — export maps as WKT,
//! load them back (as you would load your own data), run the multi-step
//! join on the loaded relations, and render the result as an SVG overlay.
//!
//! ```text
//! cargo run --release --example wkt_workflow [-- outdir]
//! ```

use msj::core::{JoinConfig, MultiStepJoin};
use msj::geom::{read_relation, write_relation, Style, SvgCanvas};
use std::io::BufWriter;
use std::path::PathBuf;

fn main() {
    let outdir = PathBuf::from(std::env::args().nth(1).unwrap_or_else(|| ".".into()));

    // 1. Produce two map layers and persist them as WKT (the exchange
    //    format a GIS would hand us).
    let layer_a = msj::datagen::small_carto(150, 36.0, 2001);
    let layer_b = msj::datagen::carto_with_holes(150, 36.0, 2002);
    let path_a = outdir.join("layer_a.wkt");
    let path_b = outdir.join("layer_b.wkt");
    for (path, rel) in [(&path_a, &layer_a), (&path_b, &layer_b)] {
        let mut w = BufWriter::new(std::fs::File::create(path).expect("create wkt"));
        write_relation(&mut w, rel).expect("write wkt");
    }
    println!("wrote {} and {}", path_a.display(), path_b.display());

    // 2. Load them back — this is the entry point for user data.
    let loaded_a = read_relation(std::io::BufReader::new(
        std::fs::File::open(&path_a).expect("open"),
    ))
    .expect("parse layer_a");
    let loaded_b = read_relation(std::io::BufReader::new(
        std::fs::File::open(&path_b).expect("open"),
    ))
    .expect("parse layer_b");
    assert_eq!(loaded_a.len(), layer_a.len());
    assert_eq!(loaded_b.len(), layer_b.len());

    // 3. Join the loaded relations with the paper's configuration.
    let result = MultiStepJoin::new(JoinConfig::default()).execute(&loaded_a, &loaded_b);
    println!(
        "join: {} pairs from {} candidates ({} decided by the filter)",
        result.pairs.len(),
        result.stats.mbr_join.candidates,
        result.stats.identified()
    );

    // 4. Render the overlay: layer A in blue, layer B in orange, joined
    //    pairs highlighted.
    let world = loaded_a
        .bounding_rect()
        .unwrap()
        .union(&loaded_b.bounding_rect().unwrap())
        .inflated(10.0);
    let mut canvas = SvgCanvas::new(world, 1400.0);
    canvas.relation(
        &loaded_a,
        &Style {
            fill: "#d9e4f1".into(),
            stroke: "#4a6785".into(),
            stroke_width: 0.7,
        },
    );
    canvas.relation(
        &loaded_b,
        &Style {
            fill: "none".into(),
            stroke: "#c9741a".into(),
            stroke_width: 0.9,
        },
    );
    // Highlight the MBRs of the first joined pairs.
    for &(a, b) in result.pairs.iter().take(40) {
        let joint = loaded_a.object(a).mbr().union(&loaded_b.object(b).mbr());
        canvas.rect(&joint, &Style::outline("#c02020", 0.6));
    }
    let svg_path = outdir.join("join_overlay.svg");
    std::fs::write(&svg_path, canvas.finish()).expect("write svg");
    println!("wrote {}", svg_path.display());
}

//! Join tuning: sweep the configuration space of the multi-step join
//! (conservative kind × progressive kind × exact algorithm) on one
//! workload and rank the combinations by modeled total cost — the
//! experiment a practitioner would run to pick a configuration for their
//! data.
//!
//! ```text
//! cargo run --release --example join_tuning
//! ```

use msj::approx::{ConservativeKind, ProgressiveKind};
use msj::core::{figure18_cost, CostModelParams, ExactCostKind, JoinConfig, MultiStepJoin};
use msj::exact::ExactAlgorithm;

fn main() {
    let a = msj::datagen::small_carto(150, 40.0, 2024);
    let b = msj::datagen::small_carto(150, 40.0, 2025);
    println!(
        "workload: {} x {} objects, avg {:.0} vertices\n",
        a.len(),
        b.len(),
        a.vertex_stats().0
    );

    let conservatives = [
        None,
        Some(ConservativeKind::Rmbr),
        Some(ConservativeKind::FiveCorner),
        Some(ConservativeKind::ConvexHull),
    ];
    let progressives = [None, Some(ProgressiveKind::Mec), Some(ProgressiveKind::Mer)];
    let exacts = [
        (
            ExactAlgorithm::PlaneSweep { restrict: true },
            ExactCostKind::PlaneSweep,
        ),
        (
            ExactAlgorithm::TrStar { max_entries: 3 },
            ExactCostKind::TrStar,
        ),
    ];

    let params = CostModelParams::default();
    let mut rows: Vec<(f64, String, u64, u64)> = Vec::new();
    let mut reference: Option<usize> = None;
    for conservative in conservatives {
        for progressive in progressives {
            for (exact, cost_kind) in exacts {
                let config = JoinConfig::builder()
                    .conservative(conservative)
                    .progressive(progressive)
                    .exact(exact)
                    .build();
                let result = MultiStepJoin::new(config).execute(&a, &b);
                match reference {
                    None => reference = Some(result.pairs.len()),
                    Some(r) => {
                        assert_eq!(r, result.pairs.len(), "result must not depend on config")
                    }
                }
                let cost = figure18_cost(&result.stats, cost_kind, &params).total_s();
                let name = format!(
                    "{:<5} + {:<4} + {}",
                    conservative.map_or("none", |k| k.name()),
                    progressive.map_or("none", |k| k.name()),
                    exact.name(),
                );
                rows.push((
                    cost,
                    name,
                    result.stats.identified(),
                    result.stats.exact_tests,
                ));
            }
        }
    }

    rows.sort_by(|x, y| x.0.partial_cmp(&y.0).expect("finite"));
    println!(
        "{:<40} {:>12} {:>12} {:>12}",
        "configuration", "cost (s)", "identified", "exact tests"
    );
    for (cost, name, identified, exact_tests) in &rows {
        println!("{name:<40} {cost:>12.2} {identified:>12} {exact_tests:>12}");
    }
    println!(
        "\nbest: {} — the paper's §3.6 recommendation (a tight conservative\n\
         approximation plus a progressive one, exact step on TR*-trees) should\n\
         rank at or near the top.",
        rows[0].1
    );
}

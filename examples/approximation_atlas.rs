//! Approximation atlas: computes all seven conservative and both
//! progressive approximations of one complex object (the paper's Figure
//! 3/7 content) and renders them as an SVG for inspection.
//!
//! ```text
//! cargo run --release --example approximation_atlas [-- output.svg]
//! ```

use msj::approx::{Conservative, ConservativeKind, Progressive, ProgressiveKind};
use msj::geom::{Point, Rect};
use std::fmt::Write as _;

fn main() {
    let path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "approximation_atlas.svg".into());
    let europe = msj::datagen::europe_like(1);
    let obj = europe
        .iter()
        .max_by_key(|o| o.num_vertices())
        .expect("non-empty")
        .clone();
    println!(
        "showcase object: id {}, {} vertices, area {:.1}, MBR false area {:.2}",
        obj.id,
        obj.num_vertices(),
        obj.area(),
        (obj.mbr().area() - obj.area()) / obj.area()
    );

    let kinds = [
        ConservativeKind::Mbr,
        ConservativeKind::Rmbr,
        ConservativeKind::ConvexHull,
        ConservativeKind::FourCorner,
        ConservativeKind::FiveCorner,
        ConservativeKind::Mbc,
        ConservativeKind::Mbe,
    ];

    println!("\n{:<6} {:>10} {:>16}", "kind", "params", "false area");
    let mut panels: Vec<(String, Vec<Point>)> = Vec::new();
    for kind in kinds {
        let a = Conservative::compute(kind, &obj);
        println!(
            "{:<6} {:>10} {:>15.1}%",
            kind.name(),
            a.param_count(),
            100.0 * msj::approx::normalized_false_area(&obj, &a)
        );
        panels.push((kind.name().to_string(), a.to_ring(96)));
    }
    for kind in ProgressiveKind::ALL {
        let p = Progressive::compute(kind, &obj);
        println!(
            "{:<6} {:>10} {:>14.1}% (of object area, enclosed)",
            kind.name(),
            p.param_count(),
            100.0 * msj::approx::progressive_quality(&obj, &p)
        );
        let ring = match p {
            Progressive::Mec(c) => c.polygonize(96),
            Progressive::Mer(r) => r.corners().to_vec(),
            Progressive::Empty => vec![],
        };
        panels.push((kind.name().to_string(), ring));
    }

    let svg = render_svg(obj.region.outer().vertices(), &panels, obj.mbr());
    std::fs::write(&path, svg).expect("write svg");
    println!("\nwrote {path} — one panel per approximation, object in grey.");
}

/// Renders a grid of panels: the object plus one approximation each.
fn render_svg(object: &[Point], panels: &[(String, Vec<Point>)], mbr: Rect) -> String {
    let cols = 3usize;
    let rows = panels.len().div_ceil(cols);
    let cell = 220.0;
    let pad = 10.0;
    let width = cols as f64 * cell;
    let height = rows as f64 * cell;
    let scale = (cell - 2.0 * pad) / mbr.width().max(mbr.height());

    let mut svg = String::new();
    let _ = writeln!(
        svg,
        r#"<svg xmlns="http://www.w3.org/2000/svg" width="{width}" height="{height}" viewBox="0 0 {width} {height}">"#
    );
    let to_panel = |p: Point, col: usize, row: usize| -> (f64, f64) {
        let x = col as f64 * cell + pad + (p.x - mbr.xmin()) * scale;
        let y = row as f64 * cell + pad + (mbr.ymax() - p.y) * scale;
        (x, y)
    };
    let ring_path = |ring: &[Point], col: usize, row: usize| -> String {
        let mut d = String::new();
        for (i, &p) in ring.iter().enumerate() {
            let (x, y) = to_panel(p, col, row);
            let _ = write!(d, "{}{x:.1},{y:.1} ", if i == 0 { "M" } else { "L" });
        }
        d.push('Z');
        d
    };
    for (i, (name, ring)) in panels.iter().enumerate() {
        let (col, row) = (i % cols, i / cols);
        let _ = writeln!(
            svg,
            r##"<path d="{}" fill="#d0d0d0" stroke="#707070" stroke-width="0.7"/>"##,
            ring_path(object, col, row)
        );
        if !ring.is_empty() {
            let _ = writeln!(
                svg,
                r##"<path d="{}" fill="none" stroke="#c02020" stroke-width="1.4"/>"##,
                ring_path(ring, col, row)
            );
        }
        let _ = writeln!(
            svg,
            r#"<text x="{:.1}" y="{:.1}" font-family="monospace" font-size="13">{name}</text>"#,
            col as f64 * cell + pad,
            row as f64 * cell + cell - 4.0
        );
    }
    svg.push_str("</svg>\n");
    svg
}

//! Serving: a resident `SpatialEngine` under mixed query traffic.
//!
//! Registers two map layers once (Step 0 — trees, approximation stores,
//! TR* representations — owned by the engine behind `Arc`), then:
//!
//! * serves a batch of mixed requests (join + point + window) through
//!   the unified `Request`/`Response` surface;
//! * shares the owned `PreparedJoin` across worker threads via `Arc`;
//! * demonstrates §5 cost-model admission control refusing a join whose
//!   modeled cost exceeds the configured budget;
//! * dumps what the engine observed about all of the above: the
//!   Prometheus-style exposition, the schema-versioned JSON snapshot
//!   and the most recent request trace.
//!
//! ```text
//! cargo run --release --example serving
//! ```

use msj::core::{Execution, JoinConfig, ObsConfig, RasterConfig, Request, Response, SpatialEngine};
use msj::geom::{Point, Rect};
use std::sync::Arc;

fn main() {
    // The builder is the way to assemble a non-preset configuration:
    // fused execution across 4 workers, auto-sized raster pre-filter,
    // metrics plus a ring of the 16 most recent request traces.
    let config = JoinConfig::builder()
        .execution(Execution::Fused { threads: 4 })
        .raster(RasterConfig::auto())
        .obs(ObsConfig::with_traces(16))
        .build();

    let engine = Arc::new(SpatialEngine::new(config));
    let forests = engine.register(msj::datagen::small_carto(300, 40.0, 7));
    let cities = engine.register(msj::datagen::small_carto(300, 40.0, 8));
    println!(
        "registered {} datasets ({} + {} objects); step 0 paid once: {:.1} ms + {:.1} ms",
        engine.num_datasets(),
        forests.len(),
        cities.len(),
        forests.step0_nanos() as f64 / 1e6,
        cities.step0_nanos() as f64 / 1e6,
    );

    // --- Batched mixed traffic through the unified surface ---
    let world = forests.relation().bounding_rect().unwrap();
    let center = Point::new(
        world.xmin() + world.width() * 0.5,
        world.ymin() + world.height() * 0.5,
    );
    let responses = engine.submit_batch([
        Request::Join {
            a: forests.id(),
            b: cities.id(),
            execution: None,
        },
        Request::Point {
            dataset: forests.id(),
            point: center,
        },
        Request::Window {
            dataset: cities.id(),
            window: Rect::from_bounds(
                center.x,
                center.y,
                center.x + world.width() * 0.05,
                center.y + world.height() * 0.05,
            ),
        },
    ]);
    for (i, response) in responses.iter().enumerate() {
        match response {
            Ok(Response::Join(join)) => println!(
                "request {i}: join -> {} pairs; modeled {:.3}s (yield observed {:.0}%)",
                join.pairs.len(),
                join.admission.cost.total_s(),
                100.0 * join.admission.cost.filter_yield_observed,
            ),
            Ok(Response::Selection(sel)) => println!(
                "request {i}: selection -> {} objects ({} candidates, {} exact tests)",
                sel.ids.len(),
                sel.stats.candidates,
                sel.stats.exact_tests,
            ),
            Err(e) => println!("request {i}: refused ({e})"),
        }
    }

    // --- The owned PreparedJoin shared across threads ---
    let prepared = engine.prepare_join(&forests, &cities);
    let reference = prepared.run().pairs;
    let worker_counts: Vec<usize> = std::thread::scope(|scope| {
        // Spawn all workers before joining any, so the runs overlap.
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let shared = Arc::clone(&prepared);
                scope.spawn(move || shared.run().pairs.len())
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    println!(
        "\nprepared join shared across 4 threads: {} pairs from every worker (reference {})",
        worker_counts[0],
        reference.len(),
    );
    assert!(worker_counts.iter().all(|&n| n == reference.len()));

    // --- Admission control ---
    let strict = SpatialEngine::new(config).with_admission_limit(1e-9);
    let (fa, fb) = (
        strict.register(forests.relation().clone()),
        strict.register(cities.relation().clone()),
    );
    match strict.submit(Request::Join {
        a: fa.id(),
        b: fb.id(),
        execution: None,
    }) {
        Err(e) => println!("strict engine: {e}"),
        Ok(_) => unreachable!("a 1ns budget admits nothing"),
    }
    println!(
        "strict engine shed {} of {} join submissions",
        strict
            .metrics()
            .snapshot()
            .counter("msj_admission_shed_total"),
        1,
    );

    // --- Observability: what the engine saw while doing all of that ---
    // Everything above was recorded as it ran — per-kind latency
    // histograms, per-step time, admission and cache counters, worker
    // lanes — at a cost low enough to leave on in production.
    println!("\n=== Prometheus exposition (scrape of the serving engine) ===");
    print!("{}", engine.metrics().render_prometheus());

    println!("=== JSON snapshot (schema-versioned, diffable) ===");
    println!("{}", engine.metrics().snapshot_json());

    let traces = engine.recent_traces();
    let last = traces.last().expect("tracing is on and traffic was served");
    println!("=== most recent of {} retained traces ===", traces.len());
    println!(
        "seq {} kind {} datasets ({}, {}) admitted {} estimated {:.4}s \
         latency {:.3} ms candidates {} results {}",
        last.seq,
        last.kind,
        last.datasets.0,
        last.datasets.1,
        last.admitted,
        last.estimated_s,
        last.latency_nanos as f64 / 1e6,
        last.candidates,
        last.results,
    );
    println!(
        "  steps: step0 {:.3} ms | step1 {:.3} ms | step2a {:.3} ms | \
         step2 {:.3} ms | step3 {:.3} ms",
        last.steps.step0_nanos as f64 / 1e6,
        last.steps.step1_nanos as f64 / 1e6,
        last.steps.step2a_nanos as f64 / 1e6,
        last.steps.step2_nanos as f64 / 1e6,
        last.steps.step3_nanos as f64 / 1e6,
    );
}

//! Quickstart: stand up a resident engine, register two synthetic map
//! layers, and serve the paper's recommended multi-step join — then
//! inspect the per-step statistics and the §5 cost accounting attached
//! to the response.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use msj::core::{JoinConfig, Request, Response, SpatialEngine};

fn main() {
    // Two seeded synthetic "map layers" with cartography-like polygons
    // (≈ 40 vertices each). Any two `msj::geom::Relation`s work the same
    // way — this is exactly the paper's Forests ⋈ Cities example shape.
    let forests = msj::datagen::small_carto(120, 40.0, 42);
    let cities = msj::datagen::small_carto(120, 40.0, 43);
    println!(
        "relations: {} forests, {} cities (avg {:.0} vertices)",
        forests.len(),
        cities.len(),
        forests.vertex_stats().0
    );

    // The paper's §5 "version 3" — 5-corner + MER approximations stored
    // in addition to the MBR, TR*-trees (M = 3) for the exact geometry
    // step — applied by a resident engine. Registration runs Step 0 once
    // per relation and the engine owns the result.
    let engine = SpatialEngine::new(JoinConfig::default());
    let forests_handle = engine.register(forests.clone());
    let cities_handle = engine.register(cities.clone());

    let Ok(Response::Join(result)) = engine.submit(Request::Join {
        a: forests_handle.id(),
        b: cities_handle.id(),
        execution: None,
    }) else {
        panic!("join request failed");
    };

    let s = &result.stats;
    println!("\n--- three-step execution ---");
    println!(
        "step 1 (MBR-join):        {} candidate pairs, {} physical page reads",
        s.mbr_join.candidates, s.mbr_join.io.physical
    );
    println!(
        "step 2 (geometric filter): {} false hits + {} hits identified ({} of candidates)",
        s.raster_drops + s.filter_false_hits,
        s.raster_hits + s.filter_hits_progressive + s.filter_hits_false_area,
        format_args!("{:.0}%", 100.0 * s.identified_fraction()),
    );
    println!(
        "step 3 (exact geometry):   {} pairs tested, {} confirmed",
        s.exact_tests, s.exact_hits
    );
    println!("\nresponse set: {} intersecting pairs", result.pairs.len());
    println!(
        "§5 accounting: modeled {:.3}s; filter yield assumed {:.0}% vs observed {:.0}%",
        result.admission.cost.total_s(),
        100.0 * result.admission.cost.filter_yield_estimated,
        100.0 * result.admission.cost.filter_yield_observed,
    );

    // Every pair in the response set truly intersects — verify a sample
    // against the quadratic reference.
    let mut counts = msj::exact::OpCounts::new();
    for &(a, b) in result.pairs.iter().take(5) {
        let ok = msj::exact::quadratic_intersects(
            &forests.object(a).region,
            &cities.object(b).region,
            &mut counts,
        );
        println!("verify forests[{a}] x cities[{b}]: {ok}");
        assert!(ok);
    }
}

//! Quickstart: run the paper's recommended multi-step join on a pair of
//! synthetic map layers and inspect the per-step statistics.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use msj::core::{JoinConfig, MultiStepJoin};

fn main() {
    // Two seeded synthetic "map layers" with cartography-like polygons
    // (≈ 40 vertices each). Any two `msj::geom::Relation`s work the same
    // way — this is exactly the paper's Forests ⋈ Cities example shape.
    let forests = msj::datagen::small_carto(120, 40.0, 42);
    let cities = msj::datagen::small_carto(120, 40.0, 43);
    println!(
        "relations: {} forests, {} cities (avg {:.0} vertices)",
        forests.len(),
        cities.len(),
        forests.vertex_stats().0
    );

    // The paper's §5 "version 3": 5-corner + MER approximations stored in
    // addition to the MBR, TR*-trees (M = 3) for the exact geometry step.
    let config = JoinConfig::default();
    let result = MultiStepJoin::new(config).execute(&forests, &cities);

    let s = &result.stats;
    println!("\n--- three-step execution ---");
    println!(
        "step 1 (MBR-join):        {} candidate pairs, {} physical page reads",
        s.mbr_join.candidates, s.mbr_join.io.physical
    );
    println!(
        "step 2 (geometric filter): {} false hits + {} hits identified ({} of candidates)",
        s.filter_false_hits,
        s.filter_hits_progressive + s.filter_hits_false_area,
        format_args!("{:.0}%", 100.0 * s.identified_fraction()),
    );
    println!(
        "step 3 (exact geometry):   {} pairs tested, {} confirmed",
        s.exact_tests, s.exact_hits
    );
    println!("\nresponse set: {} intersecting pairs", result.pairs.len());

    // Every pair in the response set truly intersects — verify a sample
    // against the quadratic reference.
    let mut counts = msj::exact::OpCounts::new();
    for &(a, b) in result.pairs.iter().take(5) {
        let ok = msj::exact::quadratic_intersects(
            &forests.object(a).region,
            &cities.object(b).region,
            &mut counts,
        );
        println!("verify forests[{a}] x cities[{b}]: {ok}");
        assert!(ok);
    }
}

//! String strategies from regex-like patterns.
//!
//! Upstream proptest interprets `&str` strategies as full regexes. This
//! stand-in supports the subset the workspace's tests use:
//!
//! * literal characters;
//! * character classes `[abc]` (no ranges, no negation — escapes `\\`,
//!   `\]` allowed);
//! * the class shorthand `\PC` ("any printable character"): printable
//!   ASCII plus a few multi-byte code points to stress UTF-8 handling;
//! * bounded repetition `{m,n}` after an atom.

use crate::strategy::Strategy;
use rand::rngs::StdRng;
use rand::Rng;

/// Extra code points mixed into `\PC` beyond printable ASCII.
const NON_ASCII: [char; 6] = ['é', 'ß', '→', '∂', '測', '🗺'];

#[derive(Debug, Clone)]
enum Atom {
    Literal(char),
    Class(Vec<char>),
    AnyPrintable,
}

#[derive(Debug, Clone)]
struct Piece {
    atom: Atom,
    min: usize,
    max: usize,
}

/// A compiled pattern (sequence of repeated atoms).
#[derive(Debug, Clone)]
pub struct StringStrategy {
    pieces: Vec<Piece>,
}

fn parse(pattern: &str) -> StringStrategy {
    let mut chars = pattern.chars().peekable();
    let mut pieces = Vec::new();
    while let Some(c) = chars.next() {
        let atom = match c {
            '\\' => match chars.next() {
                Some('P') => {
                    // `\PC`: anything not in the Unicode "other" category;
                    // we generate printable characters.
                    let tag = chars.next();
                    assert_eq!(tag, Some('C'), "unsupported \\P class in {pattern:?}");
                    Atom::AnyPrintable
                }
                Some(escaped) => Atom::Literal(escaped),
                None => panic!("dangling escape in pattern {pattern:?}"),
            },
            '[' => {
                let mut members = Vec::new();
                loop {
                    match chars.next() {
                        Some(']') => break,
                        Some('\\') => members.push(
                            chars
                                .next()
                                .unwrap_or_else(|| panic!("dangling escape in {pattern:?}")),
                        ),
                        Some(m) => members.push(m),
                        None => panic!("unterminated class in pattern {pattern:?}"),
                    }
                }
                assert!(!members.is_empty(), "empty class in pattern {pattern:?}");
                Atom::Class(members)
            }
            other => Atom::Literal(other),
        };
        let (min, max) = if chars.peek() == Some(&'{') {
            chars.next();
            let mut spec = String::new();
            loop {
                match chars.next() {
                    Some('}') => break,
                    Some(d) => spec.push(d),
                    None => panic!("unterminated repetition in pattern {pattern:?}"),
                }
            }
            let (lo, hi) = spec
                .split_once(',')
                .unwrap_or_else(|| panic!("unsupported repetition {{{spec}}} in {pattern:?}"));
            (
                lo.trim().parse().expect("repetition lower bound"),
                hi.trim().parse().expect("repetition upper bound"),
            )
        } else {
            (1, 1)
        };
        assert!(min <= max, "bad repetition bounds in pattern {pattern:?}");
        pieces.push(Piece { atom, min, max });
    }
    StringStrategy { pieces }
}

fn sample_atom(atom: &Atom, rng: &mut StdRng) -> char {
    match atom {
        Atom::Literal(c) => *c,
        Atom::Class(members) => members[rng.gen_range(0..members.len())],
        Atom::AnyPrintable => {
            if rng.gen_bool(0.08) {
                NON_ASCII[rng.gen_range(0..NON_ASCII.len())]
            } else {
                char::from(rng.gen_range(0x20u8..0x7F))
            }
        }
    }
}

impl Strategy for StringStrategy {
    type Value = String;

    fn generate(&self, rng: &mut StdRng) -> Option<String> {
        let mut out = String::new();
        for piece in &self.pieces {
            let count = rng.gen_range(piece.min..=piece.max);
            for _ in 0..count {
                out.push(sample_atom(&piece.atom, rng));
            }
        }
        Some(out)
    }
}

impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut StdRng) -> Option<String> {
        parse(self).generate(rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn printable_pattern_respects_length() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..100 {
            let s = "\\PC{0,120}".generate(&mut rng).unwrap();
            assert!(s.chars().count() <= 120);
            assert!(s.chars().all(|c| !c.is_control()));
        }
    }

    #[test]
    fn class_pattern_draws_only_members() {
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..100 {
            let s = "[(), ]{0,16}".generate(&mut rng).unwrap();
            assert!(s.chars().count() <= 16);
            assert!(s.chars().all(|c| "(), ".contains(c)), "{s:?}");
        }
    }

    #[test]
    fn literals_and_fixed_atoms() {
        let mut rng = StdRng::seed_from_u64(5);
        let s = "ab\\{c".generate(&mut rng).unwrap();
        assert_eq!(s, "ab{c");
    }
}

//! The minimal test runner: configuration, case errors, and the draw
//! loop used by the `proptest!` expansion.

use crate::strategy::Strategy;
use rand::rngs::StdRng;

/// How many consecutive rejections (filtered samples) abort a test.
const MAX_REJECTS: u32 = 65_536;

/// Runner configuration. Only `cases` is consulted; the remaining knobs
/// of the upstream crate (shrinking, forking, persistence) do not exist
/// here.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of successful cases required for the test to pass.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// A failed (or rejected) test case.
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Marks the current case as failed with the given message.
    pub fn fail<M: std::fmt::Display>(message: M) -> Self {
        TestCaseError {
            message: message.to_string(),
        }
    }

    /// Upstream-compatible alias of [`TestCaseError::fail`].
    pub fn reject<M: std::fmt::Display>(message: M) -> Self {
        TestCaseError::fail(message)
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for TestCaseError {}

/// Deterministic per-test seed from the fully qualified test name (FNV-1a
/// over the name), so every test owns a stable, independent stream.
pub fn derive_seed(test_name: &str) -> u64 {
    let mut hash: u64 = 0xCBF2_9CE4_8422_2325;
    for b in test_name.bytes() {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

/// Draws one value, redrawing on strategy rejection.
///
/// Panics after [`MAX_REJECTS`] consecutive rejections, mirroring the
/// upstream "too many global rejects" failure.
pub fn draw<S: Strategy>(strategy: &S, rng: &mut StdRng) -> S::Value {
    for _ in 0..MAX_REJECTS {
        if let Some(value) = strategy.generate(rng) {
            return value;
        }
    }
    panic!("strategy rejected {MAX_REJECTS} consecutive samples");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeds_are_stable_and_distinct() {
        assert_eq!(derive_seed("a::b"), derive_seed("a::b"));
        assert_ne!(derive_seed("a::b"), derive_seed("a::c"));
    }

    #[test]
    fn config_defaults() {
        assert_eq!(ProptestConfig::default().cases, 256);
        assert_eq!(ProptestConfig::with_cases(7).cases, 7);
    }
}

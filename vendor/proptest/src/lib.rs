//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so this vendored
//! crate implements the subset of proptest's API that the workspace's
//! property tests use: the [`Strategy`] trait with `prop_map` /
//! `prop_filter` / `prop_filter_map` / `boxed`, range and tuple
//! strategies, [`collection::vec`], `Just`, `any::<T>()`, regex-like
//! string strategies (character classes, `\PC`, `{m,n}` repetition),
//! the [`prop_oneof!`] union macro, and the [`proptest!`] runner macro
//! with `prop_assert!` / `prop_assert_eq!` and `ProptestConfig`.
//!
//! Differences from upstream: failing cases are **not shrunk** — the
//! failure message reports the case number and seed so a failure is
//! reproducible (cases derive deterministically from the test name), and
//! the generated values are printed by the assertion that failed.

pub mod collection;
pub mod string;
pub mod test_runner;

// Re-exported so the `proptest!` expansion can name the generator without
// requiring `rand` in the caller's dependency list.
pub use rand;

pub mod strategy {
    use rand::rngs::StdRng;
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// A generator of test values.
    ///
    /// `generate` returns `None` when the strategy rejects the drawn
    /// sample (e.g. `prop_filter_map` produced nothing); the runner
    /// redraws with fresh entropy.
    pub trait Strategy {
        type Value;

        fn generate(&self, rng: &mut StdRng) -> Option<Self::Value>;

        /// Transforms every generated value.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Keeps only values satisfying the predicate.
        fn prop_filter<F>(self, reason: &'static str, f: F) -> Filter<Self, F>
        where
            Self: Sized,
            F: Fn(&Self::Value) -> bool,
        {
            Filter {
                inner: self,
                f,
                _reason: reason,
            }
        }

        /// Transforms values, rejecting those mapped to `None`.
        fn prop_filter_map<O, F>(self, reason: &'static str, f: F) -> FilterMap<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> Option<O>,
        {
            FilterMap {
                inner: self,
                f,
                _reason: reason,
            }
        }

        /// Type-erases the strategy (used by [`prop_oneof!`]).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Box::new(self))
        }
    }

    /// A type-erased strategy.
    pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut StdRng) -> Option<T> {
            self.0.generate(rng)
        }
    }

    /// Always produces a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut StdRng) -> Option<T> {
            Some(self.0.clone())
        }
    }

    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut StdRng) -> Option<O> {
            self.inner.generate(rng).map(&self.f)
        }
    }

    pub struct Filter<S, F> {
        inner: S,
        f: F,
        _reason: &'static str,
    }

    impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
        type Value = S::Value;
        fn generate(&self, rng: &mut StdRng) -> Option<S::Value> {
            self.inner.generate(rng).filter(|v| (self.f)(v))
        }
    }

    pub struct FilterMap<S, F> {
        inner: S,
        f: F,
        _reason: &'static str,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> Option<O>> Strategy for FilterMap<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut StdRng) -> Option<O> {
            self.inner.generate(rng).and_then(&self.f)
        }
    }

    /// Uniform choice among type-erased alternatives ([`prop_oneof!`]).
    pub struct Union<T>(Vec<BoxedStrategy<T>>);

    impl<T> Union<T> {
        pub fn new(alternatives: Vec<BoxedStrategy<T>>) -> Self {
            assert!(
                !alternatives.is_empty(),
                "prop_oneof! needs at least one arm"
            );
            Union(alternatives)
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut StdRng) -> Option<T> {
            let i = rng.gen_range(0..self.0.len());
            self.0[i].generate(rng)
        }
    }

    // Numeric ranges are strategies (uniform over the range).
    macro_rules! range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> Option<$t> {
                    Some(rng.gen_range(self.clone()))
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> Option<$t> {
                    Some(rng.gen_range(self.clone()))
                }
            }
        )*};
    }

    range_strategy!(f32, f64, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    // Tuples of strategies generate tuples of values.
    macro_rules! tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut StdRng) -> Option<Self::Value> {
                    let ($($name,)+) = self;
                    Some(($($name.generate(rng)?,)+))
                }
            }
        };
    }

    tuple_strategy!(A);
    tuple_strategy!(A, B);
    tuple_strategy!(A, B, C);
    tuple_strategy!(A, B, C, D);
    tuple_strategy!(A, B, C, D, E);
    tuple_strategy!(A, B, C, D, E, F);
    tuple_strategy!(A, B, C, D, E, F, G);
    tuple_strategy!(A, B, C, D, E, F, G, H);
    tuple_strategy!(A, B, C, D, E, F, G, H, I);
    tuple_strategy!(A, B, C, D, E, F, G, H, I, J);
    tuple_strategy!(A, B, C, D, E, F, G, H, I, J, K);
    tuple_strategy!(A, B, C, D, E, F, G, H, I, J, K, L);
}

pub mod arbitrary {
    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// Types with a canonical whole-domain strategy (`any::<T>()`).
    pub trait Arbitrary: Sized {
        fn arbitrary_value(rng: &mut StdRng) -> Self;
    }

    pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

    impl<T: Arbitrary> Strategy for AnyStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut StdRng) -> Option<T> {
            Some(T::arbitrary_value(rng))
        }
    }

    /// The canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
        AnyStrategy(std::marker::PhantomData)
    }

    impl Arbitrary for bool {
        fn arbitrary_value(rng: &mut StdRng) -> Self {
            rng.gen_bool(0.5)
        }
    }

    macro_rules! arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary_value(rng: &mut StdRng) -> Self {
                    rng.gen_range(<$t>::MIN..=<$t>::MAX)
                }
            }
        )*};
    }

    arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);
}

pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Uniform choice among strategy alternatives with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

/// Property assertion: fails the current case without panicking inside
/// generated-value context (the runner reports case number and seed).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Property equality assertion.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let l = $left;
        let r = $right;
        if !(l == r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                    stringify!($left), stringify!($right), l, r),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let l = $left;
        let r = $right;
        if !(l == r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("{}\n  left: {:?}\n right: {:?}", format!($($fmt)*), l, r),
            ));
        }
    }};
}

/// Property inequality assertion.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let l = $left;
        let r = $right;
        if l == r {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {} != {}\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                l
            )));
        }
    }};
}

/// The property-test runner macro.
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///
///     #[test]
///     fn name(x in 0u64..100, v in collection::vec(0.0f64..1.0, 1..10)) {
///         prop_assert!(x < 100);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (@munch [$config:expr]) => {};
    (@munch [$config:expr]
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        #[test]
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $config;
            let __seed = $crate::test_runner::derive_seed(concat!(module_path!(), "::", stringify!($name)));
            let mut __rng = <$crate::rand::rngs::StdRng as $crate::rand::SeedableRng>::seed_from_u64(__seed);
            let __strategies = ($($strategy,)+);
            for __case in 0..__config.cases {
                let ($($arg,)+) = $crate::test_runner::draw(&__strategies, &mut __rng);
                let __outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                if let ::std::result::Result::Err(e) = __outcome {
                    panic!(
                        "proptest case {}/{} failed (seed {:#x}): {}",
                        __case + 1, __config.cases, __seed, e
                    );
                }
            }
        }
        $crate::proptest!(@munch [$config] $($rest)*);
    };
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::proptest!(@munch [$config] $($rest)*);
    };
    (
        $($rest:tt)*
    ) => {
        $crate::proptest!(@munch [$crate::test_runner::ProptestConfig::default()] $($rest)*);
    };
}

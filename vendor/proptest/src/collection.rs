//! Collection strategies (`proptest::collection::vec`).

use crate::strategy::Strategy;
use rand::rngs::StdRng;
use rand::Rng;
use std::ops::Range;

/// Generates `Vec`s whose length is uniform in `size` and whose elements
/// come from `element`.
pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
    assert!(size.start < size.end, "empty vec size range {size:?}");
    VecStrategy { element, size }
}

pub struct VecStrategy<S> {
    element: S,
    size: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut StdRng) -> Option<Vec<S::Value>> {
        let len = rng.gen_range(self.size.clone());
        let mut out = Vec::with_capacity(len);
        for _ in 0..len {
            // Give each slot a few retries before rejecting the whole
            // vector, so sparse element strategies still make progress.
            let mut produced = None;
            for _ in 0..16 {
                if let Some(v) = self.element.generate(rng) {
                    produced = Some(v);
                    break;
                }
            }
            out.push(produced?);
        }
        Some(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn respects_size_range() {
        let strategy = vec(0u32..10, 2..5);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..200 {
            let v = strategy.generate(&mut rng).unwrap();
            assert!((2..5).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 10));
        }
    }
}

//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this vendored
//! crate provides exactly the subset of the `rand 0.8` API the workspace
//! uses: [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], and the
//! [`Rng`] extension methods `gen_range` (over half-open and inclusive
//! integer/float ranges) and `gen_bool`.
//!
//! The generator is xoshiro256++ seeded through SplitMix64. Streams are
//! deterministic per seed and stable across platforms, which is the only
//! property the workspace relies on (every dataset and experiment is
//! keyed by an explicit seed). The streams do **not** match upstream
//! `StdRng` (ChaCha12); swapping the real crate back in changes the
//! synthetic datasets but no correctness property.

use std::ops::{Range, RangeInclusive};

/// A random number generator: the single source of entropy.
pub trait RngCore {
    /// The next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly distributed bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// A generator constructible from a seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed (the only constructor the
    /// workspace uses).
    fn seed_from_u64(state: u64) -> Self;
}

/// Extension methods over any [`RngCore`], mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Uniform sample from a range (`lo..hi` or `lo..=hi`).
    ///
    /// Panics on empty ranges, like the upstream crate.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool p out of range: {p}");
        unit_f64(self.next_u64()) < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// A range that can produce a uniform sample.
///
/// Like upstream, this is blanket-implemented over [`SampleUniform`]
/// element types so that `gen_range(-1.0..1.0)` unifies the literal's
/// float type with the surrounding expression.
pub trait SampleRange<T> {
    fn sample_single<G: RngCore + ?Sized>(self, rng: &mut G) -> T;
}

/// Element types with a uniform sampler.
pub trait SampleUniform: PartialOrd + Copy + std::fmt::Debug {
    /// Uniform sample in `[lo, hi)` (`inclusive = false`) or `[lo, hi]`.
    fn sample_in<G: RngCore + ?Sized>(lo: Self, hi: Self, inclusive: bool, rng: &mut G) -> Self;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<G: RngCore + ?Sized>(self, rng: &mut G) -> T {
        assert!(
            self.start < self.end,
            "empty range {:?}..{:?}",
            self.start,
            self.end
        );
        T::sample_in(self.start, self.end, false, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<G: RngCore + ?Sized>(self, rng: &mut G) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "empty range {lo:?}..={hi:?}");
        T::sample_in(lo, hi, true, rng)
    }
}

/// Maps 64 random bits to the unit interval `[0, 1)` with 53-bit
/// precision.
#[inline]
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

macro_rules! uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_in<G: RngCore + ?Sized>(lo: Self, hi: Self, inclusive: bool, rng: &mut G) -> Self {
                let v = lo + (hi - lo) * unit_f64(rng.next_u64()) as $t;
                // Floating rounding may land exactly on `hi`; fold back
                // into the half-open interval.
                if !inclusive && v >= hi {
                    <$t>::max(lo, hi - (hi - lo) * <$t>::EPSILON)
                } else {
                    v
                }
            }
        }
    )*};
}

uniform_float!(f32, f64);

macro_rules! uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_in<G: RngCore + ?Sized>(lo: Self, hi: Self, inclusive: bool, rng: &mut G) -> Self {
                let span = (hi as i128 - lo as i128) as u128 + u128::from(inclusive);
                let offset = (rng.next_u64() as u128 % span) as i128;
                (lo as i128 + offset) as $t
            }
        }
    )*};
}

uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        fn from_state(mut state: u64) -> Self {
            // SplitMix64 expansion of the 64-bit seed into 256 bits of
            // state, as recommended by the xoshiro authors.
            let mut next = || {
                state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            StdRng { s }
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            StdRng::from_state(state)
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
        let mut c = StdRng::seed_from_u64(43);
        let same = (0..100)
            .filter(|_| a.gen_range(0u64..1_000_000) == c.gen_range(0u64..1_000_000))
            .count();
        assert!(
            same < 5,
            "different seeds should diverge, {same} collisions"
        );
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = rng.gen_range(-3.5f64..2.5);
            assert!((-3.5..2.5).contains(&x));
            let n = rng.gen_range(2..=3);
            assert!((2..=3).contains(&n));
            let u = rng.gen_range(5usize..8);
            assert!((5..8).contains(&u));
            let i = rng.gen_range(-10i64..-2);
            assert!((-10..-2).contains(&i));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(9);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "got {hits}");
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn unit_interval_is_half_open() {
        assert!(super::unit_f64(u64::MAX) < 1.0);
        assert_eq!(super::unit_f64(0), 0.0);
    }
}

//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no access to crates.io, so this vendored
//! crate provides the subset of criterion's API the workspace's benches
//! use — `Criterion::benchmark_group`, `BenchmarkGroup::{sample_size,
//! bench_function, bench_with_input, finish}`, `BenchmarkId`, `Bencher::
//! iter`, and the `criterion_group!`/`criterion_main!` macros — backed by
//! a simple wall-clock harness: a warm-up pass sizes the iteration count
//! to roughly [`TARGET_SAMPLE`], then `sample_size` samples are timed and
//! min/mean/max per-iteration times are printed.
//!
//! There is no statistical analysis, outlier detection, or HTML report;
//! numbers are indicative. The repo's authoritative throughput figures
//! come from the `repro` binary's experiments.

use std::fmt::Display;
use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Target wall-clock duration of one measured sample.
const TARGET_SAMPLE: Duration = Duration::from_millis(40);

/// Re-export of `std::hint::black_box` under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// A benchmark identifier: function name plus parameter tag.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    pub fn new<S: Into<String>, P: Display>(function_name: S, parameter: P) -> Self {
        BenchmarkId {
            label: format!("{}/{}", function_name.into(), parameter),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            label: s.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { label: s }
    }
}

/// The timing loop handed to each benchmark closure.
pub struct Bencher {
    sample_size: usize,
    /// (min, mean, max) nanoseconds per iteration, filled by `iter`.
    result: Option<(f64, f64, f64)>,
}

impl Bencher {
    /// Times `routine`, storing per-iteration statistics.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up and calibration: how many iterations fit the target
        // sample duration?
        let calibration_start = Instant::now();
        std_black_box(routine());
        let once = calibration_start.elapsed().max(Duration::from_nanos(1));
        let iters_per_sample =
            (TARGET_SAMPLE.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u64;

        let mut per_iter_ns: Vec<f64> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                std_black_box(routine());
            }
            per_iter_ns.push(start.elapsed().as_nanos() as f64 / iters_per_sample as f64);
        }
        let min = per_iter_ns.iter().copied().fold(f64::INFINITY, f64::min);
        let max = per_iter_ns.iter().copied().fold(0.0, f64::max);
        let mean = per_iter_ns.iter().sum::<f64>() / per_iter_ns.len() as f64;
        self.result = Some((min, mean, max));
    }
}

fn human(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

fn run_and_report(label: &str, sample_size: usize, f: impl FnOnce(&mut Bencher)) {
    let mut bencher = Bencher {
        sample_size,
        result: None,
    };
    f(&mut bencher);
    match bencher.result {
        Some((min, mean, max)) => println!(
            "{label:<48} time: [{} {} {}]",
            human(min),
            human(mean),
            human(max)
        ),
        None => println!("{label:<48} (no measurement: Bencher::iter never called)"),
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark (minimum 2).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    pub fn bench_function<I: Into<BenchmarkId>, F: FnMut(&mut Bencher)>(
        &mut self,
        id: I,
        mut f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.into().label);
        run_and_report(&label, self.sample_size, |b| f(b));
        self
    }

    pub fn bench_with_input<I: Into<BenchmarkId>, T: ?Sized, F: FnMut(&mut Bencher, &T)>(
        &mut self,
        id: I,
        input: &T,
        mut f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.into().label);
        run_and_report(&label, self.sample_size, |b| f(b, input));
        self
    }

    pub fn finish(&mut self) {}
}

/// The benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("group: {name}");
        BenchmarkGroup {
            name,
            sample_size: 10,
            _criterion: self,
        }
    }

    pub fn bench_function<I: Into<BenchmarkId>, F: FnMut(&mut Bencher)>(
        &mut self,
        id: I,
        mut f: F,
    ) -> &mut Self {
        run_and_report(&id.into().label, 10, |b| f(b));
        self
    }

    pub fn final_summary(&mut self) {}
}

/// Declares a group runner function over the listed benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::default();
            $($group(&mut c);)+
            c.final_summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut b = Bencher {
            sample_size: 3,
            result: None,
        };
        b.iter(|| black_box(41u64) + 1);
        let (min, mean, max) = b.result.unwrap();
        assert!(min > 0.0 && min <= mean && mean <= max);
    }

    #[test]
    fn ids_render_with_parameter() {
        assert_eq!(BenchmarkId::new("insert", 500).label, "insert/500");
    }

    #[test]
    fn group_api_compiles_and_runs() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(2);
        group.bench_with_input(BenchmarkId::new("x", 1), &7u64, |b, &n| {
            b.iter(|| black_box(n) * 2)
        });
        group.finish();
    }
}

//! Deletion tests: the R*-tree must stay structurally valid and
//! query-correct through arbitrary interleavings of inserts and deletes.

use msj_geom::{ObjectId, Point, Rect};
use msj_sam::{LruBuffer, PageLayout, RStarTree};
use proptest::prelude::*;

fn grid_items(n_side: usize) -> Vec<(Rect, ObjectId)> {
    let mut items = Vec::new();
    for i in 0..n_side {
        for j in 0..n_side {
            let x = i as f64 * 10.0;
            let y = j as f64 * 10.0;
            items.push((
                Rect::from_bounds(x, y, x + 8.0, y + 8.0),
                (i * n_side + j) as u32,
            ));
        }
    }
    items
}

#[test]
fn delete_removes_exactly_the_entry() {
    let items = grid_items(10);
    let layout = PageLayout {
        page_size: 256,
        leaf_entry_bytes: 48,
        dir_entry_bytes: 20,
    };
    let mut tree = RStarTree::insert_all(layout, items.iter().copied());
    let (rect, id) = items[37];
    assert!(tree.delete(rect, id));
    assert_eq!(tree.len(), 99);
    tree.check_invariants().unwrap();
    let mut buffer = LruBuffer::new(1024);
    let hits = tree.point_query(rect.center(), &mut buffer);
    assert!(!hits.contains(&id));
    // Deleting again fails.
    assert!(!tree.delete(rect, id));
    assert_eq!(tree.len(), 99);
}

#[test]
fn delete_everything_empties_the_tree() {
    let items = grid_items(8);
    let layout = PageLayout {
        page_size: 256,
        leaf_entry_bytes: 48,
        dir_entry_bytes: 20,
    };
    let mut tree = RStarTree::insert_all(layout, items.iter().copied());
    for &(rect, id) in &items {
        assert!(tree.delete(rect, id), "missing ({rect:?}, {id})");
        tree.check_invariants().unwrap();
    }
    assert!(tree.is_empty());
    assert_eq!(tree.height(), 1);
    // The empty tree accepts fresh inserts.
    tree.insert(Rect::from_bounds(0.0, 0.0, 1.0, 1.0), 7);
    let mut buffer = LruBuffer::new(64);
    assert_eq!(tree.point_query(Point::new(0.5, 0.5), &mut buffer), vec![7]);
}

#[test]
fn delete_missing_entry_is_noop() {
    let items = grid_items(5);
    let mut tree = RStarTree::insert_all(PageLayout::baseline(512), items.iter().copied());
    assert!(!tree.delete(Rect::from_bounds(500.0, 500.0, 501.0, 501.0), 0));
    // Same rect, wrong id.
    assert!(!tree.delete(items[0].0, 9999));
    assert_eq!(tree.len(), 25);
    tree.check_invariants().unwrap();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Random interleavings of inserts and deletes keep the tree valid
    /// and equivalent to a HashMap model.
    #[test]
    fn insert_delete_model_equivalence(
        ops in proptest::collection::vec(
            (any::<bool>(), 0u32..60, -50.0f64..50.0, -50.0f64..50.0, 0.5f64..15.0, 0.5f64..15.0),
            1..120,
        ),
    ) {
        let layout = PageLayout { page_size: 384, leaf_entry_bytes: 48, dir_entry_bytes: 20 };
        let mut tree = RStarTree::new(layout);
        let mut model: Vec<(Rect, ObjectId)> = Vec::new();
        for (is_insert, id, x, y, w, h) in ops {
            let rect = Rect::from_bounds(x, y, x + w, y + h);
            if is_insert {
                tree.insert(rect, id);
                model.push((rect, id));
            } else if let Some(pos) = model.iter().position(|&(_, i)| i == id) {
                let (r, i) = model.swap_remove(pos);
                prop_assert!(tree.delete(r, i));
            } else {
                // Nothing with this id in the model; tree must agree
                // unless another id shares the rect (ids are not unique
                // keys in this model, so just skip).
            }
        }
        prop_assert_eq!(tree.len(), model.len());
        tree.check_invariants().map_err(TestCaseError::fail)?;
        // Window query equivalence over the whole space.
        let mut buffer = LruBuffer::new(1 << 14);
        let mut got = tree.window_query(Rect::from_bounds(-100.0, -100.0, 100.0, 100.0), &mut buffer);
        let mut expect: Vec<ObjectId> = model.iter().map(|&(_, i)| i).collect();
        got.sort_unstable();
        expect.sort_unstable();
        prop_assert_eq!(got, expect);
    }
}

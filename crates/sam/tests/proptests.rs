//! Property tests for the R*-tree: queries and the tree join must agree
//! with linear-scan references on arbitrary rectangle sets, and the
//! structural invariants must survive any insertion sequence.

use msj_geom::{ObjectId, Point, Rect};
use msj_sam::{nested_loops_join, tree_join, LruBuffer, PageLayout, RStarTree};
use proptest::prelude::*;

fn rect_strategy() -> impl Strategy<Value = Rect> {
    (
        -100.0f64..100.0,
        -100.0f64..100.0,
        0.1f64..30.0,
        0.1f64..30.0,
    )
        .prop_map(|(x, y, w, h)| Rect::from_bounds(x, y, x + w, y + h))
}

fn items_strategy(max: usize) -> impl Strategy<Value = Vec<(Rect, ObjectId)>> {
    proptest::collection::vec(rect_strategy(), 1..max).prop_map(|rects| {
        rects
            .into_iter()
            .enumerate()
            .map(|(i, r)| (r, i as u32))
            .collect()
    })
}

fn layout_strategy() -> impl Strategy<Value = PageLayout> {
    (256usize..2048, 48usize..128).prop_map(|(page, leaf)| PageLayout {
        page_size: page,
        leaf_entry_bytes: leaf,
        dir_entry_bytes: 20,
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn invariants_hold_for_any_insertion_order(
        items in items_strategy(300),
        layout in layout_strategy(),
    ) {
        let tree = RStarTree::insert_all(layout, items.iter().copied());
        prop_assert_eq!(tree.len(), items.len());
        tree.check_invariants().map_err(TestCaseError::fail)?;
    }

    #[test]
    fn window_query_equals_linear_scan(
        items in items_strategy(200),
        layout in layout_strategy(),
        window in rect_strategy(),
    ) {
        let tree = RStarTree::insert_all(layout, items.iter().copied());
        let mut buffer = LruBuffer::new(1 << 16);
        let mut got = tree.window_query(window, &mut buffer);
        got.sort_unstable();
        let mut expect: Vec<ObjectId> = items
            .iter()
            .filter(|(r, _)| r.intersects(&window))
            .map(|(_, id)| *id)
            .collect();
        expect.sort_unstable();
        prop_assert_eq!(got, expect);
    }

    #[test]
    fn point_query_equals_linear_scan(
        items in items_strategy(200),
        layout in layout_strategy(),
        x in -110.0f64..140.0,
        y in -110.0f64..140.0,
    ) {
        let tree = RStarTree::insert_all(layout, items.iter().copied());
        let mut buffer = LruBuffer::new(1 << 16);
        let p = Point::new(x, y);
        let mut got = tree.point_query(p, &mut buffer);
        got.sort_unstable();
        let mut expect: Vec<ObjectId> = items
            .iter()
            .filter(|(r, _)| r.contains_point(p))
            .map(|(_, id)| *id)
            .collect();
        expect.sort_unstable();
        prop_assert_eq!(got, expect);
    }

    #[test]
    fn tree_join_equals_nested_loops(
        items_a in items_strategy(120),
        items_b in items_strategy(120),
        layout_a in layout_strategy(),
        layout_b in layout_strategy(),
    ) {
        let ta = RStarTree::insert_all(layout_a, items_a.iter().copied());
        let tb = RStarTree::insert_all(layout_b, items_b.iter().copied());
        let mut buffer = LruBuffer::new(1 << 16);
        let mut got = Vec::new();
        tree_join(&ta, &tb, &mut buffer, |a, b| got.push((a, b)));
        let mut expect = Vec::new();
        nested_loops_join(&items_a, &items_b, |a, b| expect.push((a, b)));
        got.sort_unstable();
        expect.sort_unstable();
        prop_assert_eq!(got, expect);
    }

    #[test]
    fn bulk_load_invariants_hold_for_any_input(
        items in items_strategy(300),
        layout in layout_strategy(),
    ) {
        let tree = RStarTree::bulk_load(layout, items.iter().copied());
        prop_assert_eq!(tree.len(), items.len());
        tree.check_invariants().map_err(TestCaseError::fail)?;
        // STR packs pages: never more than the incremental build, and at
        // most ⌈N / cap⌉ leaves.
        let incremental = RStarTree::insert_all(layout, items.iter().copied());
        prop_assert!(tree.num_pages() <= incremental.num_pages());
    }

    #[test]
    fn bulk_load_queries_equal_incremental_insertion(
        items in items_strategy(200),
        layout in layout_strategy(),
        window in rect_strategy(),
        x in -110.0f64..140.0,
        y in -110.0f64..140.0,
    ) {
        let packed = RStarTree::bulk_load(layout, items.iter().copied());
        let incremental = RStarTree::insert_all(layout, items.iter().copied());
        let mut b1 = LruBuffer::new(1 << 16);
        let mut b2 = LruBuffer::new(1 << 16);
        let mut got = packed.window_query(window, &mut b1);
        let mut expect = incremental.window_query(window, &mut b2);
        got.sort_unstable();
        expect.sort_unstable();
        prop_assert_eq!(got, expect);
        let p = Point::new(x, y);
        let mut got = packed.point_query(p, &mut b1);
        let mut expect = incremental.point_query(p, &mut b2);
        got.sort_unstable();
        expect.sort_unstable();
        prop_assert_eq!(got, expect);
    }

    #[test]
    fn bulk_load_join_equals_incremental_join(
        items_a in items_strategy(120),
        items_b in items_strategy(120),
        layout in layout_strategy(),
    ) {
        let mut packed = Vec::new();
        {
            let ta = RStarTree::bulk_load(layout, items_a.iter().copied());
            let tb = RStarTree::bulk_load(layout, items_b.iter().copied());
            let mut buffer = LruBuffer::new(1 << 16);
            tree_join(&ta, &tb, &mut buffer, |a, b| packed.push((a, b)));
        }
        let mut incremental = Vec::new();
        {
            let ta = RStarTree::insert_all(layout, items_a.iter().copied());
            let tb = RStarTree::insert_all(layout, items_b.iter().copied());
            let mut buffer = LruBuffer::new(1 << 16);
            tree_join(&ta, &tb, &mut buffer, |a, b| incremental.push((a, b)));
        }
        packed.sort_unstable();
        incremental.sort_unstable();
        prop_assert_eq!(packed, incremental);
    }

    #[test]
    fn join_candidates_are_symmetric(
        items_a in items_strategy(80),
        items_b in items_strategy(80),
    ) {
        let layout = PageLayout::baseline(512);
        let ta = RStarTree::insert_all(layout, items_a.iter().copied());
        let tb = RStarTree::insert_all(layout, items_b.iter().copied());
        let mut buffer = LruBuffer::new(1 << 16);
        let mut ab = Vec::new();
        tree_join(&ta, &tb, &mut buffer, |a, b| ab.push((a, b)));
        let mut ba = Vec::new();
        tree_join(&tb, &ta, &mut buffer, |b, a| ba.push((a, b)));
        ab.sort_unstable();
        ba.sort_unstable();
        prop_assert_eq!(ab, ba);
    }
}

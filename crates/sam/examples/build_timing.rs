//! Build-cost probe: times R*-tree construction at experiment scale for
//! both Step-0 loaders — incremental R* insertion vs STR bulk loading.
//!
//! ```text
//! cargo run -p msj-sam --release --example build_timing [-- COUNT]
//! ```

use msj_geom::Rect;
use msj_sam::{PageLayout, RStarTree};
use std::time::Instant;

fn report(label: &str, tree: &RStarTree, elapsed: std::time::Duration) {
    println!(
        "{label}: built {} objects in {:?}: {} pages, height {}, avg leaf fill {:.2}",
        tree.len(),
        elapsed,
        tree.num_pages(),
        tree.height(),
        tree.avg_leaf_fill()
    );
    tree.check_invariants().expect("invariants after build");
}

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(20_000);
    let side = (n as f64).sqrt().ceil() as usize;
    let items: Vec<(Rect, u32)> = (0..n)
        .map(|i| {
            let x = (i % side) as f64 * 10.0;
            let y = (i / side) as f64 * 10.0;
            (Rect::from_bounds(x, y, x + 12.0, y + 12.0), i as u32)
        })
        .collect();
    let t0 = Instant::now();
    let incremental = RStarTree::insert_all(PageLayout::baseline(4096), items.iter().copied());
    let incremental_elapsed = t0.elapsed();
    report("incremental", &incremental, incremental_elapsed);
    let t1 = Instant::now();
    let packed = RStarTree::bulk_load(PageLayout::baseline(4096), items.iter().copied());
    let packed_elapsed = t1.elapsed();
    report("STR bulk load", &packed, packed_elapsed);
    println!(
        "STR speedup: {:.1}x, page reduction: {:.0}%",
        incremental_elapsed.as_secs_f64() / packed_elapsed.as_secs_f64().max(1e-12),
        100.0 * (1.0 - packed.num_pages() as f64 / incremental.num_pages() as f64)
    );
}

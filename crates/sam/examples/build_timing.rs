//! Build-cost probe: times R*-tree construction at experiment scale
//! (used when tuning the insertion heuristics).
//!
//! ```text
//! cargo run -p msj-sam --release --example build_timing [-- COUNT]
//! ```

use msj_geom::Rect;
use msj_sam::{PageLayout, RStarTree};
use std::time::Instant;

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(20_000);
    let side = (n as f64).sqrt().ceil() as usize;
    let items: Vec<(Rect, u32)> = (0..n)
        .map(|i| {
            let x = (i % side) as f64 * 10.0;
            let y = (i / side) as f64 * 10.0;
            (Rect::from_bounds(x, y, x + 12.0, y + 12.0), i as u32)
        })
        .collect();
    let t0 = Instant::now();
    let tree = RStarTree::bulk_insert(PageLayout::baseline(4096), items.iter().copied());
    println!(
        "built {} objects in {:?}: {} pages, height {}, avg leaf fill {:.2}",
        tree.len(),
        t0.elapsed(),
        tree.num_pages(),
        tree.height(),
        tree.avg_leaf_fill()
    );
    tree.check_invariants()
        .expect("invariants after bulk build");
}

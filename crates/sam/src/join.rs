//! The MBR-join (§2.4): a spatial join on the minimum bounding rectangles
//! of two relations, computed by synchronized R*-tree traversal following
//! [BKS 93a] with its two CPU optimizations — *restricting the search
//! space* to the intersection of the node rectangles and *plane-sweep
//! order* for matching entries within a node pair.

use crate::buffer::{IoStats, LruBuffer};
use crate::rstar::{Entry, RStarTree};
use msj_geom::kernels::{self, KernelDispatch};
use msj_geom::{CancelToken, ObjectId};

/// Statistics of one MBR-join execution.
#[derive(Debug, Clone, Copy, Default)]
pub struct JoinStats {
    /// Candidate pairs produced (intersecting leaf MBR pairs).
    pub candidates: u64,
    /// Rectangle predicate tests on entry pairs (the paper keeps this
    /// "very low" via restriction + sweeping).
    pub mbr_tests: u64,
    /// Entry-vs-window tests performed by the search-space restriction.
    pub restriction_tests: u64,
    /// Buffer statistics for the whole join.
    pub io: IoStats,
}

/// Computes the MBR-join of two R*-trees.
///
/// `on_pair` receives every candidate pair `(id_a, id_b)` immediately —
/// candidates are streamed to the next step, never materialized (§2.4
/// "the sets of candidates are not stored as intermediate results").
pub fn tree_join<F: FnMut(ObjectId, ObjectId)>(
    a: &RStarTree,
    b: &RStarTree,
    buffer: &mut LruBuffer,
    on_pair: F,
) -> JoinStats {
    tree_join_with(KernelDispatch::auto(), a, b, buffer, on_pair)
}

/// [`tree_join`] with an explicit kernel dispatch path. The candidate
/// stream and every statistic are byte-identical across paths; only the
/// instruction mix differs.
pub fn tree_join_with<F: FnMut(ObjectId, ObjectId)>(
    dispatch: KernelDispatch,
    a: &RStarTree,
    b: &RStarTree,
    buffer: &mut LruBuffer,
    on_pair: F,
) -> JoinStats {
    tree_join_cancellable_with(dispatch, a, b, buffer, None, on_pair)
}

/// [`tree_join_with`] with a cooperative [`CancelToken`]: the traversal
/// polls the token once per node pair (one page's worth of sweep work)
/// and, once cancelled, unwinds the recursion without visiting further
/// nodes. Pairs already streamed stay streamed; the returned stats cover
/// exactly the work performed. `None` is the zero-overhead path.
pub fn tree_join_cancellable_with<F: FnMut(ObjectId, ObjectId)>(
    dispatch: KernelDispatch,
    a: &RStarTree,
    b: &RStarTree,
    buffer: &mut LruBuffer,
    cancel: Option<&CancelToken>,
    mut on_pair: F,
) -> JoinStats {
    let mut stats = JoinStats::default();
    let start = buffer.stats();
    if a.is_empty() || b.is_empty() || !a.root_rect().intersects(&b.root_rect()) {
        return stats;
    }
    let mut ctx = TraversalCtx {
        dispatch,
        cancel,
        hits: Vec::new(),
        ax: Vec::new(),
        ay0: Vec::new(),
        ay1: Vec::new(),
        axm: Vec::new(),
        bx: Vec::new(),
        by0: Vec::new(),
        by1: Vec::new(),
        bxm: Vec::new(),
    };
    join_nodes(
        &mut ctx,
        a,
        a.root_page(),
        b,
        b.root_page(),
        buffer,
        &mut stats,
        &mut on_pair,
    );
    let end = buffer.stats();
    stats.io = IoStats {
        logical: end.logical - start.logical,
        physical: end.physical - start.physical,
    };
    stats
}

/// Reusable scratch for the kernel-driven traversal: the hit-index list
/// and the x-sorted entry columns of the current node pair (xmin, ymin,
/// ymax, xmax per side). One allocation set serves the whole join.
struct TraversalCtx<'c> {
    dispatch: KernelDispatch,
    /// Polled once per node pair; `Some` + cancelled unwinds the
    /// recursion at the next node boundary.
    cancel: Option<&'c CancelToken>,
    hits: Vec<u32>,
    ax: Vec<f64>,
    ay0: Vec<f64>,
    ay1: Vec<f64>,
    axm: Vec<f64>,
    bx: Vec<f64>,
    by0: Vec<f64>,
    by1: Vec<f64>,
    bxm: Vec<f64>,
}

#[allow(clippy::too_many_arguments)]
fn join_nodes<F: FnMut(ObjectId, ObjectId)>(
    ctx: &mut TraversalCtx<'_>,
    a: &RStarTree,
    pa: u32,
    b: &RStarTree,
    pb: u32,
    buffer: &mut LruBuffer,
    stats: &mut JoinStats,
    on_pair: &mut F,
) {
    // The cooperative cancellation point: one relaxed load per node pair
    // keeps an over-deadline join within one page of extra sweep work.
    if ctx.cancel.is_some_and(|c| c.is_cancelled()) {
        return;
    }
    let la = a.node_level(pa);
    let lb = b.node_level(pb);

    // Unequal levels (trees of different height): descend the deeper side
    // against the whole other node. Directory nodes hold only `Dir`
    // entries (a tree invariant), so pruning runs branchless over the
    // node's SoA columns and every entry counts as one MBR test.
    if la > lb {
        buffer.access(a.page_id(pa));
        let rect_b = b.node_rect(pb);
        let (xmin, ymin, xmax, ymax) = a.entry_soa().node_columns(pa);
        stats.mbr_tests += xmin.len() as u64;
        let mut hits = std::mem::take(&mut ctx.hits);
        hits.clear();
        kernels::rects_vs_rect(ctx.dispatch, &rect_b, xmin, ymin, xmax, ymax, &mut hits);
        let entries = a.node_entries(pa);
        for &k in &hits {
            let Entry::Dir { child, .. } = entries[k as usize] else {
                continue;
            };
            join_nodes(ctx, a, child, b, pb, buffer, stats, on_pair);
        }
        ctx.hits = hits;
        return;
    }
    if lb > la {
        buffer.access(b.page_id(pb));
        let rect_a = a.node_rect(pa);
        let (xmin, ymin, xmax, ymax) = b.entry_soa().node_columns(pb);
        stats.mbr_tests += xmin.len() as u64;
        let mut hits = std::mem::take(&mut ctx.hits);
        hits.clear();
        kernels::rects_vs_rect(ctx.dispatch, &rect_a, xmin, ymin, xmax, ymax, &mut hits);
        let entries = b.node_entries(pb);
        for &k in &hits {
            let Entry::Dir { child, .. } = entries[k as usize] else {
                continue;
            };
            join_nodes(ctx, a, pa, b, child, buffer, stats, on_pair);
        }
        ctx.hits = hits;
        return;
    }

    // Equal levels: fetch both pages, restrict to the common window, and
    // sweep-match the remaining entries.
    buffer.access(a.page_id(pa));
    buffer.access(b.page_id(pb));
    let Some(window) = a.node_rect(pa).intersection(&b.node_rect(pb)) else {
        return;
    };

    // Search-space restriction (one window test per entry), wide over the
    // per-node SoA columns; the surviving indices select the entries.
    let entries_a = a.node_entries(pa);
    let (xmin, ymin, xmax, ymax) = a.entry_soa().node_columns(pa);
    stats.restriction_tests += xmin.len() as u64;
    ctx.hits.clear();
    kernels::rects_vs_rect(ctx.dispatch, &window, xmin, ymin, xmax, ymax, &mut ctx.hits);
    let mut ea: Vec<&Entry> = ctx.hits.iter().map(|&k| &entries_a[k as usize]).collect();

    let entries_b = b.node_entries(pb);
    let (xmin, ymin, xmax, ymax) = b.entry_soa().node_columns(pb);
    stats.restriction_tests += xmin.len() as u64;
    ctx.hits.clear();
    kernels::rects_vs_rect(ctx.dispatch, &window, xmin, ymin, xmax, ymax, &mut ctx.hits);
    let mut eb: Vec<&Entry> = ctx.hits.iter().map(|&k| &entries_b[k as usize]).collect();

    // Plane-sweep order: sort by xmin, then match x-overlapping runs and
    // test only the y-axis.
    ea.sort_by(|p, q| {
        p.rect()
            .xmin()
            .partial_cmp(&q.rect().xmin())
            .expect("finite")
    });
    eb.sort_by(|p, q| {
        p.rect()
            .xmin()
            .partial_cmp(&q.rect().xmin())
            .expect("finite")
    });

    // Repack both sorted sides into sweep columns so the inner runs are
    // a wide scan instead of per-entry pointer chasing.
    ctx.ax.clear();
    ctx.ay0.clear();
    ctx.ay1.clear();
    ctx.axm.clear();
    for e in &ea {
        let r = e.rect();
        ctx.ax.push(r.xmin());
        ctx.ay0.push(r.ymin());
        ctx.ay1.push(r.ymax());
        ctx.axm.push(r.xmax());
    }
    ctx.bx.clear();
    ctx.by0.clear();
    ctx.by1.clear();
    ctx.bxm.clear();
    for e in &eb {
        let r = e.rect();
        ctx.bx.push(r.xmin());
        ctx.by0.push(r.ymin());
        ctx.by1.push(r.ymax());
        ctx.bxm.push(r.xmax());
    }

    let mut i = 0;
    let mut j = 0;
    let mut matches: Vec<(Entry, Entry)> = Vec::new();
    while i < ea.len() && j < eb.len() {
        if ctx.ax[i] <= ctx.bx[j] {
            ctx.hits.clear();
            stats.mbr_tests += kernels::sweep_scan(
                ctx.dispatch,
                ctx.axm[i],
                ctx.ay0[i],
                ctx.ay1[i],
                &ctx.bx,
                &ctx.by0,
                &ctx.by1,
                j,
                &mut ctx.hits,
            );
            for &k in &ctx.hits {
                matches.push((*ea[i], *eb[k as usize]));
            }
            i += 1;
        } else {
            ctx.hits.clear();
            stats.mbr_tests += kernels::sweep_scan(
                ctx.dispatch,
                ctx.bxm[j],
                ctx.by0[j],
                ctx.by1[j],
                &ctx.ax,
                &ctx.ay0,
                &ctx.ay1,
                i,
                &mut ctx.hits,
            );
            for &k in &ctx.hits {
                matches.push((*ea[k as usize], *eb[j]));
            }
            j += 1;
        }
    }
    drop(ea);
    drop(eb);

    if la == 0 {
        for (x, y) in matches {
            let (Entry::Leaf { id: ida, .. }, Entry::Leaf { id: idb, .. }) = (x, y) else {
                continue;
            };
            stats.candidates += 1;
            on_pair(ida, idb);
        }
    } else {
        for (x, y) in matches {
            let (Entry::Dir { child: ca, .. }, Entry::Dir { child: cb, .. }) = (x, y) else {
                continue;
            };
            join_nodes(ctx, a, ca, b, cb, buffer, stats, on_pair);
        }
    }
}

/// Computes the MBR-join of two R*-trees, delivering candidates in owned
/// chunks of at most `chunk_capacity` pairs instead of one at a time.
///
/// This is the producer half of the fused execution engine: the traversal
/// itself is inherently serial (its I/O accounting needs one buffer), but
/// chunked delivery lets the caller hand whole chunks to downstream
/// worker threads — e.g. over bounded channels — without re-buffering.
/// Every chunk is non-empty, chunks arrive in traversal order, and the
/// concatenation of all chunks equals the [`tree_join`] stream. At most
/// `chunk_capacity` pairs are ever buffered inside this function.
pub fn tree_join_chunked<F: FnMut(Vec<(ObjectId, ObjectId)>)>(
    a: &RStarTree,
    b: &RStarTree,
    buffer: &mut LruBuffer,
    chunk_capacity: usize,
    on_chunk: F,
) -> JoinStats {
    tree_join_chunked_observed(a, b, buffer, chunk_capacity, None, on_chunk)
}

/// [`tree_join_chunked`] with producer-side telemetry: when `lane` is
/// given, every emitted chunk is counted into it (pairs produced,
/// chunks flushed, largest chunk as the buffered peak) — the per-worker
/// view fused-execution imbalance diagnostics read.
pub fn tree_join_chunked_observed<F: FnMut(Vec<(ObjectId, ObjectId)>)>(
    a: &RStarTree,
    b: &RStarTree,
    buffer: &mut LruBuffer,
    chunk_capacity: usize,
    lane: Option<&msj_obs::WorkerLane>,
    on_chunk: F,
) -> JoinStats {
    tree_join_chunked_observed_with(
        KernelDispatch::auto(),
        a,
        b,
        buffer,
        chunk_capacity,
        lane,
        None,
        on_chunk,
    )
}

/// [`tree_join_chunked_observed`] with an explicit kernel dispatch path
/// and an optional cooperative [`CancelToken`]. Cancellation stops the
/// traversal at the next node boundary and suppresses the trailing
/// partial chunk — a cancelled join's candidates are discarded anyway,
/// so no downstream work is queued for them.
#[allow(clippy::too_many_arguments)]
pub fn tree_join_chunked_observed_with<F: FnMut(Vec<(ObjectId, ObjectId)>)>(
    dispatch: KernelDispatch,
    a: &RStarTree,
    b: &RStarTree,
    buffer: &mut LruBuffer,
    chunk_capacity: usize,
    lane: Option<&msj_obs::WorkerLane>,
    cancel: Option<&CancelToken>,
    mut on_chunk: F,
) -> JoinStats {
    let chunk_capacity = chunk_capacity.max(1);
    let mut emit = |chunk: Vec<(ObjectId, ObjectId)>| {
        if let Some(lane) = lane {
            lane.add_pairs(chunk.len() as u64);
            lane.inc_batches();
            lane.record_buffered(chunk.len() as u64);
        }
        on_chunk(chunk);
    };
    let mut chunk: Vec<(ObjectId, ObjectId)> = Vec::with_capacity(chunk_capacity);
    let stats = tree_join_cancellable_with(dispatch, a, b, buffer, cancel, |id_a, id_b| {
        chunk.push((id_a, id_b));
        if chunk.len() == chunk_capacity {
            let full = std::mem::replace(&mut chunk, Vec::with_capacity(chunk_capacity));
            emit(full);
        }
    });
    if !chunk.is_empty() && !cancel.is_some_and(|c| c.is_cancelled()) {
        emit(chunk);
    }
    stats
}

/// Reference nested-loops MBR join (§2.3) for correctness checks and the
/// Figure 18 baseline narrative: O(n·m) rectangle tests, no index.
pub fn nested_loops_join<F: FnMut(ObjectId, ObjectId)>(
    a: &[(msj_geom::Rect, ObjectId)],
    b: &[(msj_geom::Rect, ObjectId)],
    mut on_pair: F,
) -> u64 {
    let mut tests = 0;
    for (ra, ida) in a {
        for (rb, idb) in b {
            tests += 1;
            if ra.intersects(rb) {
                on_pair(*ida, *idb);
            }
        }
    }
    tests
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rstar::PageLayout;
    use msj_geom::Rect;

    fn grid_items(n_side: usize, offset: f64) -> Vec<(Rect, ObjectId)> {
        let mut items = Vec::new();
        let mut id = 0u32;
        for i in 0..n_side {
            for j in 0..n_side {
                let x = i as f64 * 10.0 + offset;
                let y = j as f64 * 10.0 + offset;
                items.push((Rect::from_bounds(x, y, x + 8.0, y + 8.0), id));
                id += 1;
            }
        }
        items
    }

    fn build(items: &[(Rect, ObjectId)], page: usize) -> RStarTree {
        RStarTree::insert_all(
            PageLayout {
                page_size: page,
                leaf_entry_bytes: 48,
                dir_entry_bytes: 20,
            },
            items.iter().copied(),
        )
    }

    #[test]
    fn join_matches_nested_loops_reference() {
        let ia = grid_items(9, 0.0);
        let ib = grid_items(9, 4.0);
        let ta = build(&ia, 384);
        let tb = build(&ib, 512); // different page sizes → different heights
        let mut buffer = LruBuffer::new(4096);
        let mut got = Vec::new();
        tree_join(&ta, &tb, &mut buffer, |x, y| got.push((x, y)));
        let mut expect = Vec::new();
        nested_loops_join(&ia, &ib, |x, y| expect.push((x, y)));
        got.sort_unstable();
        expect.sort_unstable();
        assert_eq!(got, expect);
    }

    #[test]
    fn chunked_join_concatenates_to_the_streamed_join() {
        let ia = grid_items(9, 0.0);
        let ib = grid_items(9, 4.0);
        let ta = build(&ia, 384);
        let tb = build(&ib, 512);
        let mut buffer = LruBuffer::new(4096);
        let mut streamed = Vec::new();
        let streamed_stats = tree_join(&ta, &tb, &mut buffer, |x, y| streamed.push((x, y)));
        for chunk_capacity in [1usize, 7, 64, 100_000] {
            let mut buffer = LruBuffer::new(4096);
            let mut chunked = Vec::new();
            let stats = tree_join_chunked(&ta, &tb, &mut buffer, chunk_capacity, |chunk| {
                assert!(!chunk.is_empty(), "chunks are never empty");
                assert!(chunk.len() <= chunk_capacity, "chunk overflows capacity");
                chunked.extend(chunk);
            });
            assert_eq!(chunked, streamed, "capacity {chunk_capacity}");
            assert_eq!(stats.candidates, streamed_stats.candidates);
        }
        // Zero capacity is clamped, not a panic or an infinite loop.
        let mut buffer = LruBuffer::new(4096);
        let mut n = 0u64;
        tree_join_chunked(&ta, &tb, &mut buffer, 0, |chunk| n += chunk.len() as u64);
        assert_eq!(n, streamed.len() as u64);
        // The observed variant records the producer lane without
        // changing the delivered stream.
        let telemetry = msj_obs::WorkerTelemetry::new(1);
        let mut buffer = LruBuffer::new(4096);
        let mut observed = Vec::new();
        let mut chunks = 0u64;
        tree_join_chunked_observed(
            &ta,
            &tb,
            &mut buffer,
            7,
            Some(telemetry.backend_lane(0)),
            |chunk| {
                chunks += 1;
                observed.extend(chunk);
            },
        );
        assert_eq!(observed, streamed);
        let lane = telemetry.snapshot()[0];
        assert_eq!(lane.pairs, streamed.len() as u64);
        assert_eq!(lane.batches, chunks);
        assert!(lane.peak_buffered >= 1 && lane.peak_buffered <= 7);
    }

    #[test]
    fn cancelled_traversal_stops_within_one_chunk() {
        let ia = grid_items(12, 0.0);
        let ib = grid_items(12, 4.0);
        let ta = build(&ia, 384);
        let tb = build(&ib, 512);
        let mut buffer = LruBuffer::new(4096);
        let mut full = Vec::new();
        tree_join(&ta, &tb, &mut buffer, |x, y| full.push((x, y)));
        assert!(full.len() > 64);

        // Cancel after the second chunk: delivery stops, the stream so
        // far is a prefix of the full stream, and the trailing partial
        // chunk is suppressed.
        let token = CancelToken::new();
        let mut got = Vec::new();
        let mut chunks = 0;
        let mut buffer = LruBuffer::new(4096);
        let stats = tree_join_chunked_observed_with(
            KernelDispatch::auto(),
            &ta,
            &tb,
            &mut buffer,
            16,
            None,
            Some(&token),
            |chunk| {
                chunks += 1;
                got.extend(chunk);
                if chunks == 2 {
                    token.cancel();
                }
            },
        );
        assert_eq!(chunks, 2, "no chunks delivered after cancellation");
        assert_eq!(got, full[..got.len()], "prefix of the full stream");
        assert!(got.len() < full.len());
        assert!(
            stats.candidates < full.len() as u64,
            "traversal stopped early"
        );

        // A pre-cancelled token yields no pairs at all.
        let token = CancelToken::new();
        token.cancel();
        let mut buffer = LruBuffer::new(4096);
        tree_join_cancellable_with(
            KernelDispatch::auto(),
            &ta,
            &tb,
            &mut buffer,
            Some(&token),
            |_, _| panic!("no pairs expected"),
        );
    }

    #[test]
    fn join_stats_are_populated() {
        let ia = grid_items(8, 0.0);
        let ib = grid_items(8, 5.0);
        let ta = build(&ia, 512);
        let tb = build(&ib, 512);
        let mut buffer = LruBuffer::new(4096);
        let stats = tree_join(&ta, &tb, &mut buffer, |_, _| {});
        assert!(stats.candidates > 0);
        assert!(stats.mbr_tests > 0);
        assert!(stats.restriction_tests > 0);
        assert!(stats.io.logical > 0);
        assert!(stats.io.physical > 0);
        assert!(stats.io.physical <= stats.io.logical);
    }

    #[test]
    fn join_of_disjoint_data_spaces_is_empty_and_cheap() {
        let ia = grid_items(6, 0.0);
        let ib: Vec<(Rect, ObjectId)> = grid_items(6, 0.0)
            .into_iter()
            .map(|(r, id)| (r.translated(msj_geom::Point::new(1000.0, 1000.0)), id))
            .collect();
        let ta = build(&ia, 512);
        let tb = build(&ib, 512);
        let mut buffer = LruBuffer::new(4096);
        let stats = tree_join(&ta, &tb, &mut buffer, |_, _| panic!("no pairs expected"));
        assert_eq!(stats.candidates, 0);
        assert_eq!(stats.io.logical, 0, "root rect pretest avoids all I/O");
    }

    #[test]
    fn self_join_contains_identity_pairs() {
        let ia = grid_items(5, 0.0);
        let ta = build(&ia, 512);
        let tb = build(&ia, 512);
        let mut buffer = LruBuffer::new(4096);
        let mut pairs = Vec::new();
        tree_join(&ta, &tb, &mut buffer, |x, y| pairs.push((x, y)));
        for id in 0..25u32 {
            assert!(pairs.contains(&(id, id)), "missing identity pair {id}");
        }
    }

    #[test]
    fn sweep_keeps_mbr_tests_well_below_quadratic() {
        // Within each node pair, the sweep should test far fewer pairs
        // than |A|·|B| of the nodes.
        let ia = grid_items(12, 0.0);
        let ib = grid_items(12, 4.0);
        let ta = build(&ia, 1024);
        let tb = build(&ib, 1024);
        let mut buffer = LruBuffer::new(4096);
        let stats = tree_join(&ta, &tb, &mut buffer, |_, _| {});
        let quadratic = (ia.len() * ib.len()) as u64;
        assert!(
            stats.mbr_tests * 5 < quadratic,
            "mbr tests {} vs quadratic {}",
            stats.mbr_tests,
            quadratic
        );
    }

    #[test]
    fn every_dispatch_path_streams_identical_candidates_and_stats() {
        let ia = grid_items(9, 0.0);
        let ib = grid_items(9, 4.0);
        let ta = build(&ia, 384);
        let tb = build(&ib, 512); // unequal heights exercise dir pruning
        type Cell = (Vec<(ObjectId, ObjectId)>, u64, u64, u64);
        let mut reference: Option<Cell> = None;
        for d in KernelDispatch::all_available() {
            let mut buffer = LruBuffer::new(4096);
            let mut got = Vec::new();
            let stats = tree_join_with(d, &ta, &tb, &mut buffer, |x, y| got.push((x, y)));
            let cell = (
                got,
                stats.candidates,
                stats.mbr_tests,
                stats.restriction_tests,
            );
            match &reference {
                None => reference = Some(cell),
                Some(want) => assert_eq!(&cell, want, "dispatch {}", d.label()),
            }
        }
    }

    #[test]
    fn small_buffer_causes_more_physical_reads() {
        let ia = grid_items(10, 0.0);
        let ib = grid_items(10, 4.0);
        let ta = build(&ia, 256);
        let tb = build(&ib, 256);
        let mut big = LruBuffer::new(4096);
        let s_big = tree_join(&ta, &tb, &mut big, |_, _| {});
        let mut small = LruBuffer::new(4);
        let s_small = tree_join(&ta, &tb, &mut small, |_, _| {});
        assert_eq!(s_big.candidates, s_small.candidates);
        assert!(s_small.io.physical > s_big.io.physical);
    }
}

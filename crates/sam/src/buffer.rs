//! Simulated page buffer with LRU replacement and I/O accounting.
//!
//! The paper's experiments hold the R*-tree on "disk" behind an LRU buffer
//! (128 KB in §3.4, 32 pages in §5) and report *physical page accesses*.
//! This module reproduces that counting model: every node visit is a
//! logical access; it becomes a physical access when the page is not
//! resident.

use std::collections::HashMap;

/// Identifier of a page (node) in the simulated store.
pub type PageId = u64;

/// Access statistics of a buffer.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IoStats {
    /// Node visits.
    pub logical: u64,
    /// Buffer misses = simulated disk reads.
    pub physical: u64,
}

impl IoStats {
    /// Buffer hit ratio in `[0, 1]`; 1.0 when nothing was accessed.
    pub fn hit_ratio(&self) -> f64 {
        if self.logical == 0 {
            1.0
        } else {
            1.0 - self.physical as f64 / self.logical as f64
        }
    }
}

/// An LRU page buffer of fixed capacity.
#[derive(Debug, Clone)]
pub struct LruBuffer {
    capacity: usize,
    clock: u64,
    resident: HashMap<PageId, u64>,
    stats: IoStats,
}

impl LruBuffer {
    /// A buffer holding `capacity` pages (at least 1).
    pub fn new(capacity: usize) -> Self {
        LruBuffer {
            capacity: capacity.max(1),
            clock: 0,
            resident: HashMap::with_capacity(capacity + 1),
            stats: IoStats::default(),
        }
    }

    /// A buffer of `bytes` total size for the given page size.
    pub fn with_bytes(bytes: usize, page_size: usize) -> Self {
        LruBuffer::new((bytes / page_size.max(1)).max(1))
    }

    /// Touches `page`: counts a logical access and, on a miss, a physical
    /// access with LRU eviction.
    pub fn access(&mut self, page: PageId) {
        self.clock += 1;
        self.stats.logical += 1;
        if self.resident.contains_key(&page) {
            self.resident.insert(page, self.clock);
            return;
        }
        self.stats.physical += 1;
        if self.resident.len() >= self.capacity {
            // Evict the least recently used page (linear scan: buffers in
            // the reproduced experiments hold at most a few dozen pages).
            if let Some((&victim, _)) = self.resident.iter().min_by_key(|(_, &t)| t) {
                self.resident.remove(&victim);
            }
        }
        self.resident.insert(page, self.clock);
    }

    /// Number of currently resident pages.
    pub fn resident_pages(&self) -> usize {
        self.resident.len()
    }

    pub fn capacity(&self) -> usize {
        self.capacity
    }

    pub fn stats(&self) -> IoStats {
        self.stats
    }

    /// Clears residency and statistics (used between experiment phases).
    pub fn reset(&mut self) {
        self.resident.clear();
        self.stats = IoStats::default();
        self.clock = 0;
    }

    /// Clears statistics but keeps the resident set (warm buffer).
    pub fn reset_stats(&mut self) {
        self.stats = IoStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn repeated_access_hits_the_buffer() {
        let mut b = LruBuffer::new(4);
        b.access(1);
        b.access(1);
        b.access(1);
        assert_eq!(b.stats().logical, 3);
        assert_eq!(b.stats().physical, 1);
        assert!((b.stats().hit_ratio() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn lru_evicts_the_oldest() {
        let mut b = LruBuffer::new(2);
        b.access(1);
        b.access(2);
        b.access(1); // 1 is now more recent than 2
        b.access(3); // evicts 2
        assert_eq!(b.stats().physical, 3);
        b.access(1); // still resident
        assert_eq!(b.stats().physical, 3);
        b.access(2); // was evicted: miss
        assert_eq!(b.stats().physical, 4);
    }

    #[test]
    fn capacity_from_bytes() {
        let b = LruBuffer::with_bytes(128 * 1024, 4 * 1024);
        assert_eq!(b.capacity(), 32);
        let b2 = LruBuffer::with_bytes(128 * 1024, 2 * 1024);
        assert_eq!(b2.capacity(), 64);
        // Degenerate sizes still give a 1-page buffer.
        assert_eq!(LruBuffer::with_bytes(0, 4096).capacity(), 1);
    }

    #[test]
    fn reset_variants() {
        let mut b = LruBuffer::new(2);
        b.access(1);
        b.access(2);
        b.reset_stats();
        assert_eq!(b.stats().logical, 0);
        assert_eq!(b.resident_pages(), 2);
        b.access(1); // warm: no physical read
        assert_eq!(b.stats().physical, 0);
        b.reset();
        assert_eq!(b.resident_pages(), 0);
        b.access(1);
        assert_eq!(b.stats().physical, 1);
    }

    #[test]
    fn working_set_larger_than_buffer_thrashes() {
        let mut b = LruBuffer::new(3);
        for round in 0..5 {
            for page in 0..6 {
                b.access(page);
            }
            let _ = round;
        }
        // Cyclic access through 6 pages with 3 slots under LRU misses
        // every time.
        assert_eq!(b.stats().physical, 30);
    }
}

//! # msj-sam — the spatial access method substrate
//!
//! Step one of the multi-step join runs on a spatial access method. This
//! crate provides:
//!
//! * a paged [`RStarTree`] ([BKSS 90]) whose node capacity derives from a
//!   byte-level [`PageLayout`] (page size, leaf/directory entry sizes) so
//!   that storing approximations *in addition to the MBR* (§3.4, approach
//!   2) costs fanout exactly as in the paper;
//! * a simulated [`LruBuffer`] counting logical and physical page
//!   accesses — the I/O metric of §3.4/§5;
//! * point and window queries;
//! * the [BKS 93a] [`tree_join`]: synchronized R*-tree traversal with
//!   search-space restriction and plane-sweep entry matching, streaming
//!   candidate pairs to the next step.

pub mod buffer;
pub mod inl;
pub mod join;
pub mod rstar;

pub use buffer::{IoStats, LruBuffer, PageId};
pub use inl::index_nested_loop_join;
pub use join::{
    nested_loops_join, tree_join, tree_join_cancellable_with, tree_join_chunked,
    tree_join_chunked_observed, tree_join_chunked_observed_with, tree_join_with, JoinStats,
};
pub use rstar::{Entry, PageLayout, RStarTree, TreeExport};

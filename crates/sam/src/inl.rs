//! Index nested-loop join: the classic alternative to the synchronized
//! tree join — scan one relation and probe the other's R*-tree with a
//! window query per object. [BKS 93a] uses this as a baseline; it loses
//! to the tree join because the probed tree is traversed once per outer
//! object instead of once overall.

use crate::buffer::{IoStats, LruBuffer};
use crate::join::JoinStats;
use crate::rstar::RStarTree;
use msj_geom::{ObjectId, Rect};

/// Computes the MBR-join by probing `inner_tree` with one window query
/// per outer rectangle.
///
/// Emits the same candidate pairs as [`crate::join::tree_join`] (possibly
/// in a different order); the [`JoinStats::mbr_tests`] count covers the
/// leaf-entry window tests performed inside the probes.
pub fn index_nested_loop_join<F: FnMut(ObjectId, ObjectId)>(
    outer: &[(Rect, ObjectId)],
    inner_tree: &RStarTree,
    buffer: &mut LruBuffer,
    mut on_pair: F,
) -> JoinStats {
    let mut stats = JoinStats::default();
    let start = buffer.stats();
    for &(rect, outer_id) in outer {
        let matches = inner_tree.window_query(rect, buffer);
        stats.mbr_tests += (inner_tree.len() as u64).min(matches.len() as u64 + 1);
        for inner_id in matches {
            stats.candidates += 1;
            on_pair(outer_id, inner_id);
        }
    }
    let end = buffer.stats();
    stats.io = IoStats {
        logical: end.logical - start.logical,
        physical: end.physical - start.physical,
    };
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::join::{nested_loops_join, tree_join};
    use crate::rstar::PageLayout;

    fn grid_items(n_side: usize, offset: f64) -> Vec<(Rect, ObjectId)> {
        let mut items = Vec::new();
        for i in 0..n_side {
            for j in 0..n_side {
                let x = i as f64 * 10.0 + offset;
                let y = j as f64 * 10.0 + offset;
                items.push((
                    Rect::from_bounds(x, y, x + 8.0, y + 8.0),
                    (i * n_side + j) as u32,
                ));
            }
        }
        items
    }

    #[test]
    fn inl_join_matches_nested_loops() {
        let ia = grid_items(9, 0.0);
        let ib = grid_items(9, 4.0);
        let layout = PageLayout {
            page_size: 384,
            leaf_entry_bytes: 48,
            dir_entry_bytes: 20,
        };
        let tb = RStarTree::insert_all(layout, ib.iter().copied());
        let mut buffer = LruBuffer::new(1 << 14);
        let mut got = Vec::new();
        index_nested_loop_join(&ia, &tb, &mut buffer, |a, b| got.push((a, b)));
        let mut expect = Vec::new();
        nested_loops_join(&ia, &ib, |a, b| expect.push((a, b)));
        got.sort_unstable();
        expect.sort_unstable();
        assert_eq!(got, expect);
    }

    #[test]
    fn tree_join_beats_inl_join_on_io() {
        // With a small buffer, re-traversing the inner tree per outer
        // object costs more physical reads than one synchronized pass.
        let ia = grid_items(14, 0.0);
        let ib = grid_items(14, 4.0);
        let layout = PageLayout {
            page_size: 256,
            leaf_entry_bytes: 48,
            dir_entry_bytes: 20,
        };
        let ta = RStarTree::insert_all(layout, ia.iter().copied());
        let tb = RStarTree::insert_all(layout, ib.iter().copied());

        let mut b1 = LruBuffer::new(8);
        let tree = tree_join(&ta, &tb, &mut b1, |_, _| {});
        let mut b2 = LruBuffer::new(8);
        let inl = index_nested_loop_join(&ia, &tb, &mut b2, |_, _| {});
        assert_eq!(tree.candidates, inl.candidates);
        assert!(
            tree.io.physical < inl.io.physical,
            "tree join {} vs INL {} physical reads",
            tree.io.physical,
            inl.io.physical
        );
    }

    #[test]
    fn empty_outer_or_inner() {
        let ib = grid_items(4, 0.0);
        let tb = RStarTree::insert_all(PageLayout::baseline(512), ib.iter().copied());
        let mut buffer = LruBuffer::new(64);
        let stats = index_nested_loop_join(&[], &tb, &mut buffer, |_, _| panic!("no pairs"));
        assert_eq!(stats.candidates, 0);
        let te = RStarTree::new(PageLayout::baseline(512));
        let ia = grid_items(3, 0.0);
        let mut n = 0;
        index_nested_loop_join(&ia, &te, &mut buffer, |_, _| n += 1);
        assert_eq!(n, 0);
    }
}

//! A paged R*-tree ([BKSS 90]) with the byte-level storage model of the
//! paper.
//!
//! The tree simulates secondary storage: every node is a page whose
//! capacity derives from the page size and the entry byte size. Queries
//! route node visits through an external [`LruBuffer`], which yields the
//! physical-page-access counts the paper reports (§3.4, §5). Insertion
//! implements the R* heuristics: overlap-minimizing subtree choice at the
//! leaf level, margin-driven split-axis selection, and forced reinsert.

use crate::buffer::{LruBuffer, PageId};
use msj_geom::{ObjectId, Point, Rect};
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::OnceLock;

/// Page / entry byte layout (§3.4: "each description of an object stored
/// in an R*-tree needs 16 Byte for the MBR, ... and 32 Byte for additional
/// information"; directory entries hold a rectangle and a child pointer).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PageLayout {
    /// Page size in bytes (2 KB and 4 KB in the paper).
    pub page_size: usize,
    /// Bytes per leaf entry: key + object info + stored approximations.
    pub leaf_entry_bytes: usize,
    /// Bytes per directory entry: 16 B rectangle + 4 B child pointer.
    pub dir_entry_bytes: usize,
}

impl PageLayout {
    /// The baseline layout: MBR key (16 B) + object info (32 B).
    pub fn baseline(page_size: usize) -> Self {
        PageLayout {
            page_size,
            leaf_entry_bytes: 48,
            dir_entry_bytes: 20,
        }
    }

    /// A layout with `extra` approximation bytes per leaf entry.
    pub fn with_extra_bytes(page_size: usize, extra: usize) -> Self {
        PageLayout {
            page_size,
            leaf_entry_bytes: 48 + extra,
            dir_entry_bytes: 20,
        }
    }

    /// Maximum leaf entries per page (at least 2).
    pub fn max_leaf_entries(&self) -> usize {
        (self.page_size / self.leaf_entry_bytes).max(2)
    }

    /// Maximum directory entries per page (at least 2).
    pub fn max_dir_entries(&self) -> usize {
        (self.page_size / self.dir_entry_bytes).max(2)
    }
}

/// An entry of a node: a leaf object reference or a child page reference.
#[derive(Debug, Clone, Copy)]
pub enum Entry {
    Leaf { rect: Rect, id: ObjectId },
    Dir { rect: Rect, child: u32 },
}

impl Entry {
    #[inline]
    pub fn rect(&self) -> Rect {
        match self {
            Entry::Leaf { rect, .. } | Entry::Dir { rect, .. } => *rect,
        }
    }
}

#[derive(Debug, Clone)]
struct Node {
    level: u32,
    rect: Rect,
    entries: Vec<Entry>,
}

impl Node {
    fn recompute_rect(&mut self) {
        self.rect = self
            .entries
            .iter()
            .map(|e| e.rect())
            .reduce(|a, b| a.union(&b))
            .unwrap_or(Rect::from_bounds(0.0, 0.0, 0.0, 0.0));
    }
}

static TREE_TAG: AtomicU32 = AtomicU32::new(1);

/// The paged R*-tree.
#[derive(Debug, Clone)]
pub struct RStarTree {
    layout: PageLayout,
    nodes: Vec<Node>,
    /// In-memory parent pointers (bookkeeping only — not part of the
    /// simulated page content; real pages do not store them either).
    parents: Vec<Option<u32>>,
    root: u32,
    len: usize,
    /// Globally unique tag namespacing this tree's pages in shared
    /// buffers.
    tag: u32,
    /// Lazily built per-node SoA repack of the entry MBRs, consumed by the
    /// wide join kernels. Invalidated on every mutation; rebuilding is one
    /// linear pass over the arena.
    soa: OnceLock<EntrySoa>,
}

/// Structure-of-arrays view of every node's entry rectangles: four f64
/// columns per node (xmin/ymin/xmax/ymax), sliced by node via `offsets`.
/// The column order within a node matches the node's entry order, so a
/// column index is directly an index into [`RStarTree::node_entries`].
#[derive(Debug, Clone, Default)]
pub(crate) struct EntrySoa {
    offsets: Vec<u32>,
    xmin: Vec<f64>,
    ymin: Vec<f64>,
    xmax: Vec<f64>,
    ymax: Vec<f64>,
}

impl EntrySoa {
    fn build(nodes: &[Node]) -> Self {
        let total: usize = nodes.iter().map(|n| n.entries.len()).sum();
        let mut soa = EntrySoa {
            offsets: Vec::with_capacity(nodes.len() + 1),
            xmin: Vec::with_capacity(total),
            ymin: Vec::with_capacity(total),
            xmax: Vec::with_capacity(total),
            ymax: Vec::with_capacity(total),
        };
        soa.offsets.push(0);
        for n in nodes {
            for e in &n.entries {
                let r = e.rect();
                soa.xmin.push(r.xmin());
                soa.ymin.push(r.ymin());
                soa.xmax.push(r.xmax());
                soa.ymax.push(r.ymax());
            }
            soa.offsets.push(soa.xmin.len() as u32);
        }
        soa
    }

    /// The four MBR columns of one node, in entry order.
    pub(crate) fn node_columns(&self, node: u32) -> (&[f64], &[f64], &[f64], &[f64]) {
        let lo = self.offsets[node as usize] as usize;
        let hi = self.offsets[node as usize + 1] as usize;
        (
            &self.xmin[lo..hi],
            &self.ymin[lo..hi],
            &self.xmax[lo..hi],
            &self.ymax[lo..hi],
        )
    }
}

impl RStarTree {
    /// An empty tree with the given layout.
    pub fn new(layout: PageLayout) -> Self {
        RStarTree {
            layout,
            nodes: vec![Node {
                level: 0,
                rect: Rect::from_bounds(0.0, 0.0, 0.0, 0.0),
                entries: Vec::new(),
            }],
            parents: vec![None],
            root: 0,
            len: 0,
            tag: TREE_TAG.fetch_add(1, Ordering::Relaxed),
            soa: OnceLock::new(),
        }
    }

    /// Builds a tree by inserting `(rect, id)` pairs one at a time, in
    /// order — N top-down R* insertions, exactly as a dynamic workload
    /// would produce them (splits, forced reinserts and all).
    ///
    /// This is **not** a bulk loader: pages end up ~70 % full and the
    /// build costs N · O(log N) node traversals. When the whole relation
    /// is available up front, use [`RStarTree::bulk_load`] instead.
    pub fn insert_all<I: IntoIterator<Item = (Rect, ObjectId)>>(
        layout: PageLayout,
        items: I,
    ) -> Self {
        let mut tree = RStarTree::new(layout);
        for (rect, id) in items {
            tree.insert(rect, id);
        }
        tree
    }

    /// Builds a tree by **sort-tile-recursive (STR) bulk loading**
    /// (Leutenegger et al. 1997): sort the keys by x-center, cut them
    /// into ⌈√P⌉ vertical slices (P = pages needed), sort each slice by
    /// y-center, and pack consecutive runs into completely filled pages;
    /// repeat one level up until a single root remains.
    ///
    /// Compared with [`RStarTree::insert_all`] the build is one sort plus
    /// a linear packing pass per level, every page except the last per
    /// level is 100 % full (fewer pages → fewer I/Os per query/join), and
    /// the result is deterministic in the input order of ties. The tree
    /// is a regular [`RStarTree`] afterwards: inserts and deletes work,
    /// queries and joins are answered identically to an incrementally
    /// built tree (only page boundaries — and therefore I/O counts and
    /// candidate *order* — differ).
    pub fn bulk_load<I: IntoIterator<Item = (Rect, ObjectId)>>(
        layout: PageLayout,
        items: I,
    ) -> Self {
        let mut items: Vec<(Rect, ObjectId)> = items.into_iter().collect();
        let len = items.len();
        let leaf_cap = layout.max_leaf_entries();
        if len <= leaf_cap {
            // Single leaf root; also covers the empty tree.
            let mut tree = RStarTree::new(layout);
            tree.nodes[0].entries = items
                .iter()
                .map(|&(rect, id)| Entry::Leaf { rect, id })
                .collect();
            tree.nodes[0].recompute_rect();
            tree.len = len;
            return tree;
        }

        let mut tree = RStarTree {
            layout,
            nodes: Vec::new(),
            parents: Vec::new(),
            root: 0,
            len,
            tag: TREE_TAG.fetch_add(1, Ordering::Relaxed),
            soa: OnceLock::new(),
        };

        // Pack the leaf level from the raw keys.
        let mut level_nodes: Vec<u32> = Vec::new();
        str_tile(&mut items, leaf_cap, |run| {
            let idx = tree.nodes.len() as u32;
            let mut node = Node {
                level: 0,
                rect: Rect::from_bounds(0.0, 0.0, 0.0, 0.0),
                entries: run
                    .iter()
                    .map(|&(rect, id)| Entry::Leaf { rect, id })
                    .collect(),
            };
            node.recompute_rect();
            tree.nodes.push(node);
            tree.parents.push(None);
            level_nodes.push(idx);
        });

        // Pack directory levels until one node remains.
        let dir_cap = layout.max_dir_entries();
        let mut level = 0u32;
        while level_nodes.len() > 1 {
            level += 1;
            let mut children: Vec<(Rect, u32)> = level_nodes
                .iter()
                .map(|&idx| (tree.nodes[idx as usize].rect, idx))
                .collect();
            let mut next_level: Vec<u32> = Vec::new();
            str_tile(&mut children, dir_cap, |run| {
                let idx = tree.nodes.len() as u32;
                let mut node = Node {
                    level,
                    rect: Rect::from_bounds(0.0, 0.0, 0.0, 0.0),
                    entries: run
                        .iter()
                        .map(|&(rect, child)| Entry::Dir { rect, child })
                        .collect(),
                };
                node.recompute_rect();
                tree.nodes.push(node);
                tree.parents.push(None);
                for &(_, child) in run {
                    tree.parents[child as usize] = Some(idx);
                }
                next_level.push(idx);
            });
            level_nodes = next_level;
        }
        tree.root = level_nodes[0];
        tree
    }

    pub fn layout(&self) -> PageLayout {
        self.layout
    }

    /// Number of stored objects.
    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of pages (nodes).
    pub fn num_pages(&self) -> usize {
        self.nodes.len()
    }

    /// Tree height (1 = root is a leaf).
    pub fn height(&self) -> u32 {
        self.nodes[self.root as usize].level + 1
    }

    /// The root page id within this tree.
    pub fn root_page(&self) -> u32 {
        self.root
    }

    /// The root MBR covering all keys.
    pub fn root_rect(&self) -> Rect {
        self.nodes[self.root as usize].rect
    }

    /// Average leaf fill factor (entries / capacity).
    pub fn avg_leaf_fill(&self) -> f64 {
        let cap = self.layout.max_leaf_entries() as f64;
        let leaves: Vec<&Node> = self.nodes.iter().filter(|n| n.level == 0).collect();
        if leaves.is_empty() {
            return 0.0;
        }
        leaves
            .iter()
            .map(|n| n.entries.len() as f64 / cap)
            .sum::<f64>()
            / leaves.len() as f64
    }

    /// Namespaced page id for buffer accounting.
    #[inline]
    pub fn page_id(&self, node: u32) -> PageId {
        ((self.tag as u64) << 32) | node as u64
    }

    fn max_entries(&self, level: u32) -> usize {
        if level == 0 {
            self.layout.max_leaf_entries()
        } else {
            self.layout.max_dir_entries()
        }
    }

    fn min_entries(&self, level: u32) -> usize {
        (self.max_entries(level) * 2 / 5).max(1)
    }

    /// Inserts one object key.
    pub fn insert(&mut self, rect: Rect, id: ObjectId) {
        self.soa = OnceLock::new();
        let mut reinserted = [false; 32];
        self.insert_entry(Entry::Leaf { rect, id }, 0, &mut reinserted);
        self.len += 1;
    }

    /// Deletes the entry `(rect, id)` from the tree (R-tree deletion with
    /// underflow reinsertion, [Gut 84] §3.3 adapted to the R* variant).
    ///
    /// Returns `true` when the entry existed. Underfull nodes on the
    /// deletion path are dissolved and their surviving entries reinserted
    /// at their original level; a root with a single directory entry is
    /// shortened.
    pub fn delete(&mut self, rect: Rect, id: ObjectId) -> bool {
        self.soa = OnceLock::new();
        let Some(leaf) = self.find_leaf(self.root, rect, id) else {
            return false;
        };
        let node = &mut self.nodes[leaf as usize];
        let idx = node
            .entries
            .iter()
            .position(|e| matches!(e, Entry::Leaf { rect: r, id: i } if *i == id && *r == rect))
            .expect("find_leaf returned a leaf containing the entry");
        node.entries.swap_remove(idx);
        self.len -= 1;
        self.condense_path(leaf);
        self.shorten_root();
        true
    }

    /// Locates the leaf containing the exact entry `(rect, id)`.
    fn find_leaf(&self, node: u32, rect: Rect, id: ObjectId) -> Option<u32> {
        let n = &self.nodes[node as usize];
        if n.level == 0 {
            return n
                .entries
                .iter()
                .any(|e| matches!(e, Entry::Leaf { rect: r, id: i } if *i == id && *r == rect))
                .then_some(node);
        }
        for e in &n.entries {
            if let Entry::Dir { rect: crect, child } = e {
                if crect.contains_rect(&rect) {
                    if let Some(found) = self.find_leaf(*child, rect, id) {
                        return Some(found);
                    }
                }
            }
        }
        None
    }

    /// Walks from `node` to the root, dissolving underfull nodes and
    /// recomputing rectangles; dissolved subtrees are reinserted.
    fn condense_path(&mut self, node: u32) {
        let mut current = node;
        // Entries to reinsert, tagged with their level.
        let mut orphans: Vec<(Entry, u32)> = Vec::new();
        loop {
            let parent = self.find_parent(current);
            let level = self.nodes[current as usize].level;
            let underfull = self.nodes[current as usize].entries.len() < self.min_entries(level)
                && current != self.root;
            if underfull {
                let parent = parent.expect("non-root node has a parent");
                // Detach `current` from its parent and orphan its entries.
                let entries = std::mem::take(&mut self.nodes[current as usize].entries);
                for e in entries {
                    orphans.push((e, level));
                }
                self.nodes[parent as usize]
                    .entries
                    .retain(|e| !matches!(e, Entry::Dir { child, .. } if *child == current));
                self.nodes[parent as usize].recompute_rect();
                // (The empty node stays in the arena as garbage; the
                // simulated store does not reuse pages.)
                current = parent;
            } else {
                // Recompute this node's rect and fix the parent entry.
                self.nodes[current as usize].recompute_rect();
                match parent {
                    Some(p) => {
                        let rect = self.nodes[current as usize].rect;
                        for e in self.nodes[p as usize].entries.iter_mut() {
                            if let Entry::Dir { rect: r, child } = e {
                                if *child == current {
                                    *r = rect;
                                }
                            }
                        }
                        current = p;
                    }
                    None => break,
                }
            }
        }
        // Reinsert orphans at their original levels (leaf entries re-add
        // objects; directory entries re-add whole subtrees).
        for (entry, level) in orphans {
            let mut reinserted = [false; 32];
            self.insert_entry(entry, level, &mut reinserted);
        }
    }

    /// Shrinks the root while it is a directory node with one child.
    fn shorten_root(&mut self) {
        while self.nodes[self.root as usize].level > 0
            && self.nodes[self.root as usize].entries.len() == 1
        {
            let Entry::Dir { child, .. } = self.nodes[self.root as usize].entries[0] else {
                unreachable!("directory node holds dir entries");
            };
            self.root = child;
            self.parents[child as usize] = None;
        }
        if self.nodes[self.root as usize].entries.is_empty() {
            // Tree became empty: reset to a fresh leaf root.
            self.nodes[self.root as usize].level = 0;
            self.nodes[self.root as usize].rect = Rect::from_bounds(0.0, 0.0, 0.0, 0.0);
        }
    }

    fn insert_entry(&mut self, entry: Entry, level: u32, reinserted: &mut [bool; 32]) {
        let target = self.choose_subtree(entry.rect(), level);
        self.nodes[target as usize].entries.push(entry);
        if let Entry::Dir { child, .. } = entry {
            // Reinserted subtrees move: keep the parent pointer current.
            self.parents[child as usize] = Some(target);
        }
        if self.nodes[target as usize].entries.len() == 1 {
            self.nodes[target as usize].rect = entry.rect();
        } else {
            let r = self.nodes[target as usize].rect.union(&entry.rect());
            self.nodes[target as usize].rect = r;
        }
        self.adjust_path_rects(target);
        if self.nodes[target as usize].entries.len() > self.max_entries(level) {
            self.overflow(target, reinserted);
        }
    }

    /// R* choose-subtree descending to `level`.
    ///
    /// Directly above the leaves the R* overlap-enlargement criterion is
    /// applied; following the original paper's optimization, only the 32
    /// entries with the least area enlargement are examined for overlap.
    fn choose_subtree(&self, rect: Rect, level: u32) -> u32 {
        let mut node = self.root;
        while self.nodes[node as usize].level > level {
            let n = &self.nodes[node as usize];
            let child_level = n.level - 1;
            let mut best = u32::MAX;
            let mut best_key = (f64::INFINITY, f64::INFINITY, f64::INFINITY);
            if child_level == 0 && n.entries.len() > 2 {
                // Rank children by area enlargement, examine the top 32.
                let mut ranked: Vec<(f64, f64, Rect, u32)> = n
                    .entries
                    .iter()
                    .filter_map(|e| match e {
                        Entry::Dir { rect: crect, child } => {
                            Some((crect.enlargement(&rect), crect.area(), *crect, *child))
                        }
                        Entry::Leaf { .. } => None,
                    })
                    .collect();
                ranked.sort_by(|a, b| (a.0, a.1).partial_cmp(&(b.0, b.1)).expect("finite"));
                ranked.truncate(32);
                for &(enlargement, area, crect, child) in &ranked {
                    let grown = crect.union(&rect);
                    let mut delta = 0.0;
                    for e in &n.entries {
                        let Entry::Dir {
                            rect: srect,
                            child: sc,
                        } = e
                        else {
                            continue;
                        };
                        if *sc == child {
                            continue;
                        }
                        delta += grown.intersection_area(srect) - crect.intersection_area(srect);
                    }
                    let key = (delta, enlargement, area);
                    if key < best_key {
                        best_key = key;
                        best = child;
                    }
                }
            } else {
                for e in &n.entries {
                    let Entry::Dir { rect: crect, child } = e else {
                        continue;
                    };
                    let key = (0.0, crect.enlargement(&rect), crect.area());
                    if key < best_key {
                        best_key = key;
                        best = *child;
                    }
                }
            }
            node = best;
        }
        node
    }

    /// Recomputes the rectangles from `node` up to the root.
    fn adjust_path_rects(&mut self, node: u32) {
        let mut current = node;
        while let Some(parent) = self.find_parent(current) {
            let child_rect = self.nodes[current as usize].rect;
            for e in self.nodes[parent as usize].entries.iter_mut() {
                if let Entry::Dir { rect, child } = e {
                    if *child == current {
                        *rect = child_rect;
                    }
                }
            }
            self.nodes[parent as usize].recompute_rect();
            current = parent;
        }
    }

    /// Parent lookup via the maintained in-memory pointer.
    fn find_parent(&self, node: u32) -> Option<u32> {
        self.parents[node as usize]
    }

    /// Points the parent pointers of `node`'s direct children at `node`.
    fn reparent_children(&mut self, node: u32) {
        if self.nodes[node as usize].level == 0 {
            return;
        }
        let children: Vec<u32> = self.nodes[node as usize]
            .entries
            .iter()
            .filter_map(|e| match e {
                Entry::Dir { child, .. } => Some(*child),
                Entry::Leaf { .. } => None,
            })
            .collect();
        for c in children {
            self.parents[c as usize] = Some(node);
        }
    }

    /// R* overflow treatment: forced reinsert once per level per
    /// insertion, then splits.
    fn overflow(&mut self, node: u32, reinserted: &mut [bool; 32]) {
        let level = self.nodes[node as usize].level as usize;
        if node != self.root && level < reinserted.len() && !reinserted[level] {
            reinserted[level] = true;
            self.reinsert(node, reinserted);
        } else {
            self.split(node, reinserted);
        }
    }

    /// Forced reinsert: remove the 30 % of entries whose centers are
    /// farthest from the node center and insert them again (far-first).
    fn reinsert(&mut self, node: u32, reinserted: &mut [bool; 32]) {
        let level = self.nodes[node as usize].level;
        let center = self.nodes[node as usize].rect.center();
        let mut entries = std::mem::take(&mut self.nodes[node as usize].entries);
        entries.sort_by(|a, b| {
            let da = a.rect().center().dist_sq(center);
            let db = b.rect().center().dist_sq(center);
            db.partial_cmp(&da).expect("finite")
        });
        let p = (entries.len() * 3 / 10).max(1);
        let removed: Vec<Entry> = entries.drain(..p).collect();
        self.nodes[node as usize].entries = entries;
        self.nodes[node as usize].recompute_rect();
        self.adjust_path_rects(node);
        for e in removed {
            self.insert_entry(e, level, reinserted);
        }
    }

    /// R* split: margin-minimal axis, overlap-minimal distribution.
    fn split(&mut self, node: u32, reinserted: &mut [bool; 32]) {
        let level = self.nodes[node as usize].level;
        let entries = std::mem::take(&mut self.nodes[node as usize].entries);
        let m = self.min_entries(level);
        let (group_a, group_b) = split_entries(&entries, m);

        let rect_a = group_rect(&group_a);
        let rect_b = group_rect(&group_b);

        if node == self.root {
            let a_idx = self.nodes.len() as u32;
            self.nodes.push(Node {
                level,
                rect: rect_a,
                entries: group_a,
            });
            self.parents.push(Some(node));
            let b_idx = self.nodes.len() as u32;
            self.nodes.push(Node {
                level,
                rect: rect_b,
                entries: group_b,
            });
            self.parents.push(Some(node));
            for idx in [a_idx, b_idx] {
                self.reparent_children(idx);
            }
            self.nodes[node as usize] = Node {
                level: level + 1,
                rect: rect_a.union(&rect_b),
                entries: vec![
                    Entry::Dir {
                        rect: rect_a,
                        child: a_idx,
                    },
                    Entry::Dir {
                        rect: rect_b,
                        child: b_idx,
                    },
                ],
            };
        } else {
            let parent = self.find_parent(node).expect("non-root parent");
            self.nodes[node as usize].entries = group_a;
            self.nodes[node as usize].rect = rect_a;
            let b_idx = self.nodes.len() as u32;
            self.nodes.push(Node {
                level,
                rect: rect_b,
                entries: group_b,
            });
            self.parents.push(Some(parent));
            self.reparent_children(b_idx);
            // Fix the parent's entry for `node` and add the new sibling.
            for e in self.nodes[parent as usize].entries.iter_mut() {
                if let Entry::Dir { rect, child } = e {
                    if *child == node {
                        *rect = rect_a;
                    }
                }
            }
            self.nodes[parent as usize].entries.push(Entry::Dir {
                rect: rect_b,
                child: b_idx,
            });
            self.nodes[parent as usize].recompute_rect();
            self.adjust_path_rects(parent);
            if self.nodes[parent as usize].entries.len() > self.max_entries(level + 1) {
                self.overflow(parent, reinserted);
            }
        }
    }

    /// Point query: ids of all leaf entries whose rectangles contain `p`.
    /// Every node visit goes through `buffer`.
    pub fn point_query(&self, p: Point, buffer: &mut LruBuffer) -> Vec<ObjectId> {
        let mut result = Vec::new();
        let mut stack = vec![self.root];
        while let Some(cur) = stack.pop() {
            buffer.access(self.page_id(cur));
            let n = &self.nodes[cur as usize];
            for e in &n.entries {
                match e {
                    Entry::Leaf { rect, id } => {
                        if rect.contains_point(p) {
                            result.push(*id);
                        }
                    }
                    Entry::Dir { rect, child } => {
                        if rect.contains_point(p) {
                            stack.push(*child);
                        }
                    }
                }
            }
        }
        result
    }

    /// Window query: ids of all leaf entries intersecting `window`.
    pub fn window_query(&self, window: Rect, buffer: &mut LruBuffer) -> Vec<ObjectId> {
        let mut result = Vec::new();
        let mut stack = vec![self.root];
        while let Some(cur) = stack.pop() {
            buffer.access(self.page_id(cur));
            let n = &self.nodes[cur as usize];
            for e in &n.entries {
                match e {
                    Entry::Leaf { rect, id } => {
                        if rect.intersects(&window) {
                            result.push(*id);
                        }
                    }
                    Entry::Dir { rect, child } => {
                        if rect.intersects(&window) {
                            stack.push(*child);
                        }
                    }
                }
            }
        }
        result
    }

    /// Internal access for the join module.
    pub(crate) fn node_level(&self, node: u32) -> u32 {
        self.nodes[node as usize].level
    }

    pub(crate) fn node_rect(&self, node: u32) -> Rect {
        self.nodes[node as usize].rect
    }

    pub(crate) fn node_entries(&self, node: u32) -> &[Entry] {
        &self.nodes[node as usize].entries
    }

    /// The lazily built SoA repack of all entry MBRs (see [`EntrySoa`]).
    /// First call after a mutation pays one linear rebuild pass.
    pub(crate) fn entry_soa(&self) -> &EntrySoa {
        self.soa.get_or_init(|| EntrySoa::build(&self.nodes))
    }

    /// Structural invariant checks (used by tests): entry capacities,
    /// rectangle containment, level consistency, and object count.
    pub fn check_invariants(&self) -> Result<(), String> {
        let mut seen = 0usize;
        let mut stack = vec![self.root];
        while let Some(cur) = stack.pop() {
            let n = &self.nodes[cur as usize];
            if cur != self.root && n.entries.is_empty() {
                return Err(format!("empty non-root node {cur}"));
            }
            if n.entries.len() > self.max_entries(n.level) {
                return Err(format!(
                    "node {cur} over capacity: {} > {}",
                    n.entries.len(),
                    self.max_entries(n.level)
                ));
            }
            for e in &n.entries {
                if !n.rect.contains_rect(&e.rect()) {
                    return Err(format!("node {cur} rect does not cover an entry"));
                }
                match e {
                    Entry::Leaf { .. } => {
                        if n.level != 0 {
                            return Err(format!("leaf entry in level-{} node", n.level));
                        }
                        seen += 1;
                    }
                    Entry::Dir { rect, child } => {
                        if n.level == 0 {
                            return Err("dir entry in leaf".into());
                        }
                        let c = &self.nodes[*child as usize];
                        if c.level + 1 != n.level {
                            return Err(format!("child level {} under level {}", c.level, n.level));
                        }
                        if *rect != c.rect {
                            return Err(format!("stale dir rect for child {child}"));
                        }
                        stack.push(*child);
                    }
                }
            }
        }
        if seen != self.len {
            return Err(format!("object count mismatch: {seen} != {}", self.len));
        }
        Ok(())
    }

    /// Flattens the node arena into a serialization-ready [`TreeExport`]:
    /// per-node levels and rectangles plus one offset-indexed entry
    /// column. Entry kind is implied by the owning node's level (level 0
    /// holds leaf entries, higher levels hold directory entries), so the
    /// value column packs object ids and child pointers into one `u32`
    /// lane. Parent pointers, the buffer tag and the SoA repack are
    /// derived state and are not exported.
    pub fn export(&self) -> TreeExport {
        let n = self.nodes.len();
        let total: usize = self.nodes.iter().map(|nd| nd.entries.len()).sum();
        let mut e = TreeExport {
            page_size: self.layout.page_size as u64,
            leaf_entry_bytes: self.layout.leaf_entry_bytes as u64,
            dir_entry_bytes: self.layout.dir_entry_bytes as u64,
            root: self.root,
            len: self.len as u64,
            node_levels: Vec::with_capacity(n),
            node_rects: Vec::with_capacity(4 * n),
            entry_offsets: Vec::with_capacity(n + 1),
            entry_rects: Vec::with_capacity(4 * total),
            entry_vals: Vec::with_capacity(total),
        };
        e.entry_offsets.push(0);
        for node in &self.nodes {
            e.node_levels.push(node.level);
            push_rect(&mut e.node_rects, node.rect);
            for entry in &node.entries {
                push_rect(&mut e.entry_rects, entry.rect());
                e.entry_vals.push(match entry {
                    Entry::Leaf { id, .. } => *id,
                    Entry::Dir { child, .. } => *child,
                });
            }
            e.entry_offsets.push(e.entry_vals.len() as u32);
        }
        e
    }

    /// Reconstructs a tree from an export — a linear pass over the
    /// arrays, no STR repacking or reinsertion. Parent pointers are
    /// rebuilt from the directory entries, and the tree receives a fresh
    /// buffer tag and an empty SoA cache (both are process-local state).
    /// Structural validation rejects malformed images; the result
    /// traverses identically to the exported tree.
    pub fn from_export(e: TreeExport) -> Result<Self, String> {
        let n = e.node_levels.len();
        if n == 0 {
            return Err("tree export has no nodes".into());
        }
        if e.node_rects.len() != 4 * n {
            return Err("node rect column length mismatch".into());
        }
        if e.entry_offsets.len() != n + 1 || e.entry_offsets[0] != 0 {
            return Err("entry offset table malformed".into());
        }
        let total = e.entry_vals.len();
        if e.entry_offsets[n] as usize != total || e.entry_rects.len() != 4 * total {
            return Err("entry column length mismatch".into());
        }
        if e.root as usize >= n {
            return Err("root out of range".into());
        }
        if e.page_size == 0 || e.leaf_entry_bytes == 0 || e.dir_entry_bytes == 0 {
            return Err("degenerate page layout".into());
        }
        let mut nodes = Vec::with_capacity(n);
        let mut parents: Vec<Option<u32>> = vec![None; n];
        let mut leaf_entries = 0usize;
        for i in 0..n {
            let level = e.node_levels[i];
            let lo = e.entry_offsets[i] as usize;
            let hi = e.entry_offsets[i + 1] as usize;
            if lo > hi || hi > total {
                return Err("entry offsets not monotonic".into());
            }
            let mut entries = Vec::with_capacity(hi - lo);
            for j in lo..hi {
                let rect = read_rect(&e.entry_rects, j);
                let val = e.entry_vals[j];
                if level == 0 {
                    entries.push(Entry::Leaf { rect, id: val });
                    leaf_entries += 1;
                } else {
                    let child = val as usize;
                    if child >= n {
                        return Err("child pointer out of range".into());
                    }
                    if e.node_levels[child] + 1 != level {
                        return Err("child level inconsistent".into());
                    }
                    parents[child] = Some(i as u32);
                    entries.push(Entry::Dir { rect, child: val });
                }
            }
            nodes.push(Node {
                level,
                rect: read_rect(&e.node_rects, i),
                entries,
            });
        }
        if leaf_entries != e.len as usize {
            return Err(format!(
                "object count mismatch: {leaf_entries} leaf entries, len {}",
                e.len
            ));
        }
        Ok(RStarTree {
            layout: PageLayout {
                page_size: e.page_size as usize,
                leaf_entry_bytes: e.leaf_entry_bytes as usize,
                dir_entry_bytes: e.dir_entry_bytes as usize,
            },
            nodes,
            parents,
            root: e.root,
            len: e.len as usize,
            tag: TREE_TAG.fetch_add(1, Ordering::Relaxed),
            soa: OnceLock::new(),
        })
    }
}

/// Flat image of an [`RStarTree`] — the unit `msj-store` serializes.
/// Column layout mirrors the in-memory arena: rectangles are 4 `f64`s
/// (xmin, ymin, xmax, ymax) per element, entries of node `i` live at
/// `entry_offsets[i]..entry_offsets[i + 1]`.
#[derive(Debug, Clone, PartialEq)]
pub struct TreeExport {
    pub page_size: u64,
    pub leaf_entry_bytes: u64,
    pub dir_entry_bytes: u64,
    pub root: u32,
    pub len: u64,
    pub node_levels: Vec<u32>,
    pub node_rects: Vec<f64>,
    pub entry_offsets: Vec<u32>,
    pub entry_rects: Vec<f64>,
    pub entry_vals: Vec<u32>,
}

#[inline]
fn push_rect(col: &mut Vec<f64>, r: Rect) {
    col.extend_from_slice(&[r.xmin(), r.ymin(), r.xmax(), r.ymax()]);
}

#[inline]
fn read_rect(col: &[f64], i: usize) -> Rect {
    Rect::from_bounds(col[4 * i], col[4 * i + 1], col[4 * i + 2], col[4 * i + 3])
}

/// One STR tiling pass: sorts `(rect, payload)` items by x-center, cuts
/// them into ⌈√P⌉ vertical slices of whole pages (P = ⌈N / cap⌉), sorts
/// each slice by y-center, and emits consecutive runs of at most `cap`
/// items (every run except possibly the last is exactly `cap` long).
///
/// Sorting is *stable* in the input order, so the packing — and with it
/// the whole bulk-loaded tree — is deterministic.
fn str_tile<T: Copy>(items: &mut [(Rect, T)], cap: usize, mut emit: impl FnMut(&[(Rect, T)])) {
    let center_x = |r: &Rect| r.xmin() + r.xmax();
    let center_y = |r: &Rect| r.ymin() + r.ymax();
    let pages = items.len().div_ceil(cap);
    let slices = ((pages as f64).sqrt().ceil() as usize).max(1);
    let slice_len = pages.div_ceil(slices) * cap;
    items.sort_by(|a, b| center_x(&a.0).partial_cmp(&center_x(&b.0)).expect("finite"));
    for slice in items.chunks_mut(slice_len) {
        slice.sort_by(|a, b| center_y(&a.0).partial_cmp(&center_y(&b.0)).expect("finite"));
        for run in slice.chunks(cap) {
            emit(run);
        }
    }
}

/// MBR of an entry group.
fn group_rect(group: &[Entry]) -> Rect {
    group
        .iter()
        .map(|e| e.rect())
        .reduce(|a, b| a.union(&b))
        .expect("non-empty group")
}

/// R* split of an entry set: choose the axis with minimal margin sum over
/// all distributions, then the distribution with minimal overlap (ties:
/// minimal area).
fn split_entries(entries: &[Entry], m: usize) -> (Vec<Entry>, Vec<Entry>) {
    let n = entries.len();
    let m = m.min((n - 1) / 2).max(1);

    let mut best: Option<(f64, f64, Vec<Entry>, Vec<Entry>)> = None;
    for axis in 0..2 {
        // R* considers sorts by lower and by upper bound.
        for by_upper in [false, true] {
            let mut order: Vec<usize> = (0..n).collect();
            order.sort_by(|&i, &j| {
                let key = |k: usize| {
                    let r = entries[k].rect();
                    match (axis, by_upper) {
                        (0, false) => (r.xmin(), r.xmax()),
                        (0, true) => (r.xmax(), r.xmin()),
                        (1, false) => (r.ymin(), r.ymax()),
                        (_, _) => (r.ymax(), r.ymin()),
                    }
                };
                key(i).partial_cmp(&key(j)).expect("finite")
            });
            for k in m..=(n - m) {
                let left: Vec<Entry> = order[..k].iter().map(|&i| entries[i]).collect();
                let right: Vec<Entry> = order[k..].iter().map(|&i| entries[i]).collect();
                let rl = group_rect(&left);
                let rr = group_rect(&right);
                let overlap = rl.intersection_area(&rr);
                let area = rl.area() + rr.area();
                if best
                    .as_ref()
                    .is_none_or(|(bo, ba, _, _)| (overlap, area) < (*bo, *ba))
                {
                    best = Some((overlap, area, left, right));
                }
            }
        }
    }
    let (_, _, a, b) = best.expect("at least one split");
    (a, b)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid_tree(n_side: usize, layout: PageLayout) -> RStarTree {
        let mut tree = RStarTree::new(layout);
        let mut id = 0u32;
        for i in 0..n_side {
            for j in 0..n_side {
                let x = i as f64 * 10.0;
                let y = j as f64 * 10.0;
                tree.insert(Rect::from_bounds(x, y, x + 8.0, y + 8.0), id);
                id += 1;
            }
        }
        tree
    }

    #[test]
    fn layout_capacities() {
        let l = PageLayout::baseline(4096);
        assert_eq!(l.max_leaf_entries(), 4096 / 48);
        assert_eq!(l.max_dir_entries(), 4096 / 20);
        let l2 = PageLayout::with_extra_bytes(2048, 40 + 16); // 5-C + MER
        assert_eq!(l2.leaf_entry_bytes, 104);
        assert_eq!(l2.max_leaf_entries(), 2048 / 104);
    }

    #[test]
    fn invariants_hold_after_many_inserts() {
        // A small page size forces many splits and reinserts.
        let layout = PageLayout {
            page_size: 256,
            leaf_entry_bytes: 48,
            dir_entry_bytes: 20,
        };
        let tree = grid_tree(20, layout);
        assert_eq!(tree.len(), 400);
        tree.check_invariants().expect("invariants");
        assert!(tree.height() >= 2);
        assert!(tree.num_pages() > 10);
    }

    #[test]
    fn point_queries_find_exactly_the_covering_objects() {
        let layout = PageLayout {
            page_size: 256,
            leaf_entry_bytes: 48,
            dir_entry_bytes: 20,
        };
        let tree = grid_tree(10, layout);
        let mut buffer = LruBuffer::new(1024);
        // Inside cell (3, 4): object id 3*10+4 = 34.
        let hits = tree.point_query(Point::new(34.0, 44.0), &mut buffer);
        assert_eq!(hits, vec![34]);
        // In the gap between cells: nothing.
        let misses = tree.point_query(Point::new(9.0, 9.0), &mut buffer);
        assert!(misses.is_empty());
        assert!(buffer.stats().logical >= 2);
    }

    #[test]
    fn window_query_matches_linear_scan() {
        let layout = PageLayout {
            page_size: 512,
            leaf_entry_bytes: 48,
            dir_entry_bytes: 20,
        };
        let tree = grid_tree(12, layout);
        let mut buffer = LruBuffer::new(1024);
        let window = Rect::from_bounds(15.0, 25.0, 47.0, 58.0);
        let mut hits = tree.window_query(window, &mut buffer);
        hits.sort_unstable();
        // Linear reference.
        let mut expect = Vec::new();
        for i in 0..12u32 {
            for j in 0..12u32 {
                let r = Rect::from_bounds(
                    i as f64 * 10.0,
                    j as f64 * 10.0,
                    i as f64 * 10.0 + 8.0,
                    j as f64 * 10.0 + 8.0,
                );
                if r.intersects(&window) {
                    expect.push(i * 12 + j);
                }
            }
        }
        expect.sort_unstable();
        assert_eq!(hits, expect);
    }

    #[test]
    fn smaller_pages_make_taller_trees() {
        let small = grid_tree(
            16,
            PageLayout {
                page_size: 256,
                leaf_entry_bytes: 48,
                dir_entry_bytes: 20,
            },
        );
        let large = grid_tree(
            16,
            PageLayout {
                page_size: 4096,
                leaf_entry_bytes: 48,
                dir_entry_bytes: 20,
            },
        );
        assert!(small.height() > large.height());
        assert!(small.num_pages() > large.num_pages());
    }

    #[test]
    fn bigger_leaf_entries_reduce_fanout_and_increase_pages() {
        // Approach-2 storage (extra approximation bytes) must cost pages.
        let slim = grid_tree(16, PageLayout::baseline(512));
        let fat = grid_tree(16, PageLayout::with_extra_bytes(512, 56));
        assert!(fat.num_pages() > slim.num_pages());
    }

    #[test]
    fn buffer_counts_fewer_physical_reads_when_warm() {
        let layout = PageLayout {
            page_size: 512,
            leaf_entry_bytes: 48,
            dir_entry_bytes: 20,
        };
        let tree = grid_tree(12, layout);
        let mut buffer = LruBuffer::new(1024);
        let w = Rect::from_bounds(0.0, 0.0, 120.0, 120.0);
        tree.window_query(w, &mut buffer);
        let cold = buffer.stats().physical;
        buffer.reset_stats();
        tree.window_query(w, &mut buffer);
        let warm = buffer.stats().physical;
        assert!(warm == 0, "warm physical reads {warm}");
        assert!(cold > 0);
    }

    #[test]
    fn avg_leaf_fill_is_reasonable() {
        let layout = PageLayout {
            page_size: 512,
            leaf_entry_bytes: 48,
            dir_entry_bytes: 20,
        };
        let tree = grid_tree(16, layout);
        let fill = tree.avg_leaf_fill();
        assert!(fill > 0.4 && fill <= 1.0, "fill {fill}");
    }

    #[test]
    fn empty_and_single_entry_trees() {
        let layout = PageLayout::baseline(4096);
        let empty = RStarTree::new(layout);
        assert!(empty.is_empty());
        assert_eq!(empty.height(), 1);
        let mut one = RStarTree::new(layout);
        one.insert(Rect::from_bounds(0.0, 0.0, 1.0, 1.0), 7);
        let mut buffer = LruBuffer::new(8);
        assert_eq!(one.point_query(Point::new(0.5, 0.5), &mut buffer), vec![7]);
        one.check_invariants().unwrap();
    }

    fn grid_items(n_side: usize) -> Vec<(Rect, ObjectId)> {
        let mut items = Vec::new();
        let mut id = 0u32;
        for i in 0..n_side {
            for j in 0..n_side {
                let x = i as f64 * 10.0;
                let y = j as f64 * 10.0;
                items.push((Rect::from_bounds(x, y, x + 8.0, y + 8.0), id));
                id += 1;
            }
        }
        items
    }

    #[test]
    fn bulk_load_satisfies_invariants_and_packs_pages() {
        let layout = PageLayout {
            page_size: 256,
            leaf_entry_bytes: 48,
            dir_entry_bytes: 20,
        };
        let items = grid_items(20);
        let packed = RStarTree::bulk_load(layout, items.iter().copied());
        packed.check_invariants().expect("packed invariants");
        assert_eq!(packed.len(), 400);
        let incremental = RStarTree::insert_all(layout, items.iter().copied());
        // STR packs pages full; incremental insertion cannot do better.
        assert!(packed.avg_leaf_fill() > incremental.avg_leaf_fill());
        assert!(packed.avg_leaf_fill() > 0.9, "{}", packed.avg_leaf_fill());
        assert!(packed.num_pages() < incremental.num_pages());
    }

    #[test]
    fn bulk_load_answers_queries_like_incremental_insertion() {
        let layout = PageLayout {
            page_size: 384,
            leaf_entry_bytes: 48,
            dir_entry_bytes: 20,
        };
        let items = grid_items(13);
        let packed = RStarTree::bulk_load(layout, items.iter().copied());
        let incremental = RStarTree::insert_all(layout, items.iter().copied());
        let mut b1 = LruBuffer::new(4096);
        let mut b2 = LruBuffer::new(4096);
        for window in [
            Rect::from_bounds(15.0, 25.0, 47.0, 58.0),
            Rect::from_bounds(-10.0, -10.0, 5.0, 5.0),
            Rect::from_bounds(0.0, 0.0, 130.0, 130.0),
        ] {
            let mut a = packed.window_query(window, &mut b1);
            let mut b = incremental.window_query(window, &mut b2);
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b);
        }
        let p = Point::new(34.0, 44.0);
        assert_eq!(
            packed.point_query(p, &mut b1),
            incremental.point_query(p, &mut b2)
        );
    }

    #[test]
    fn bulk_load_edge_cases() {
        let layout = PageLayout::baseline(4096);
        let empty = RStarTree::bulk_load(layout, std::iter::empty());
        assert!(empty.is_empty());
        assert_eq!(empty.height(), 1);
        empty.check_invariants().unwrap();

        let one = RStarTree::bulk_load(layout, [(Rect::from_bounds(0.0, 0.0, 1.0, 1.0), 7u32)]);
        assert_eq!(one.len(), 1);
        one.check_invariants().unwrap();
        let mut buffer = LruBuffer::new(8);
        assert_eq!(one.point_query(Point::new(0.5, 0.5), &mut buffer), vec![7]);

        // Exactly one page, one page + 1, and a capacity boundary.
        let cap = layout.max_leaf_entries();
        for n in [cap, cap + 1, cap * cap] {
            let items: Vec<(Rect, ObjectId)> = (0..n)
                .map(|i| {
                    let x = (i % 97) as f64;
                    let y = (i / 97) as f64;
                    (Rect::from_bounds(x, y, x + 0.5, y + 0.5), i as u32)
                })
                .collect();
            let tree = RStarTree::bulk_load(layout, items.iter().copied());
            assert_eq!(tree.len(), n);
            tree.check_invariants()
                .unwrap_or_else(|e| panic!("n={n}: {e}"));
        }
    }

    #[test]
    fn bulk_load_is_deterministic() {
        let layout = PageLayout {
            page_size: 512,
            leaf_entry_bytes: 48,
            dir_entry_bytes: 20,
        };
        let items = grid_items(15);
        let t1 = RStarTree::bulk_load(layout, items.iter().copied());
        let t2 = RStarTree::bulk_load(layout, items.iter().copied());
        assert_eq!(t1.num_pages(), t2.num_pages());
        let mut b1 = LruBuffer::new(4096);
        let mut b2 = LruBuffer::new(4096);
        let w = Rect::from_bounds(0.0, 0.0, 160.0, 160.0);
        // Identical packing → identical traversal order, not just set.
        assert_eq!(t1.window_query(w, &mut b1), t2.window_query(w, &mut b2));
    }

    #[test]
    fn bulk_loaded_trees_accept_inserts_and_deletes() {
        let layout = PageLayout {
            page_size: 256,
            leaf_entry_bytes: 48,
            dir_entry_bytes: 20,
        };
        let items = grid_items(12);
        let mut tree = RStarTree::bulk_load(layout, items.iter().copied());
        // Delete a third of the objects, insert them back shifted.
        for &(rect, id) in items.iter().step_by(3) {
            assert!(tree.delete(rect, id), "delete {id}");
        }
        tree.check_invariants().expect("after deletes");
        for &(rect, id) in items.iter().step_by(3) {
            tree.insert(rect.translated(Point::new(1.0, 1.0)), id);
        }
        tree.check_invariants().expect("after reinserts");
        assert_eq!(tree.len(), 144);
    }

    #[test]
    fn page_ids_are_namespaced_per_tree() {
        let layout = PageLayout::baseline(4096);
        let t1 = RStarTree::new(layout);
        let t2 = RStarTree::new(layout);
        assert_ne!(t1.page_id(0), t2.page_id(0));
    }
}

//! The partitioned MBR join: per-tile plane sweeps executed in parallel
//! over scoped threads, delivered either funneled onto the calling thread
//! ([`partition_join`]) or straight to caller-supplied per-worker sinks
//! ([`partition_join_workers`] — the fused execution path).

use crate::grid::Grid;
use crate::stats::PartitionStats;
use msj_geom::kernels::{self, KernelDispatch};
use msj_geom::{
    panic_message, resolve_threads, CancelToken, ObjectId, PairBatchBuffer, PairConsumer, Rect,
    WorkerPanic,
};
use msj_obs::{WorkerLane, WorkerTelemetry};
use std::thread::ScopedJoinHandle;

/// Joins every scoped worker, isolating panics: all workers are drained
/// (no thread leak, deterministic teardown), then the *first* panic is
/// re-raised as a structured [`WorkerPanic`] carrying the worker index —
/// the engine layer catches it at the join boundary and fails the request
/// instead of the process.
fn join_isolating_panics<T>(handles: Vec<ScopedJoinHandle<'_, T>>, mut on_ok: impl FnMut(T)) {
    let mut panicked: Option<WorkerPanic> = None;
    for (worker, handle) in handles.into_iter().enumerate() {
        match handle.join() {
            Ok(value) => on_ok(value),
            Err(payload) => {
                if panicked.is_none() {
                    panicked = Some(WorkerPanic {
                        worker,
                        message: panic_message(payload.as_ref()),
                    });
                }
            }
        }
    }
    if let Some(panic) = panicked {
        std::panic::resume_unwind(Box::new(panic));
    }
}

/// What one tile's mini-join produced.
#[derive(Debug, Default)]
struct TileResult {
    pairs: Vec<(ObjectId, ObjectId)>,
    pair_tests: u64,
    dedup_skipped: u64,
}

/// Per-tile accounting of one worker-delivered tile sweep (the pairs went
/// to the worker's sink, so only the counters travel back).
#[derive(Debug, Clone, Copy)]
struct TileOutcome {
    tile: usize,
    candidates: u64,
    pair_tests: u64,
    dedup_skipped: u64,
}

/// Reusable sweep scratch: the wide-kernel hit list and the x-sorted
/// rectangle columns of the current tile. One instance serves a whole
/// tile loop (one per worker), so repacking never reallocates in steady
/// state.
#[derive(Debug, Default)]
pub struct SweepScratch {
    hits: Vec<u32>,
    ax: Vec<f64>,
    ay0: Vec<f64>,
    ay1: Vec<f64>,
    axm: Vec<f64>,
    bx: Vec<f64>,
    by0: Vec<f64>,
    by1: Vec<f64>,
    bxm: Vec<f64>,
}

impl SweepScratch {
    fn repack(&mut self, side_a: &[(Rect, ObjectId)], side_b: &[(Rect, ObjectId)]) {
        self.ax.clear();
        self.ay0.clear();
        self.ay1.clear();
        self.axm.clear();
        for (r, _) in side_a {
            self.ax.push(r.xmin());
            self.ay0.push(r.ymin());
            self.ay1.push(r.ymax());
            self.axm.push(r.xmax());
        }
        self.bx.clear();
        self.by0.clear();
        self.by1.clear();
        self.bxm.clear();
        for (r, _) in side_b {
            self.bx.push(r.xmin());
            self.by0.push(r.ymin());
            self.by1.push(r.ymax());
            self.bxm.push(r.xmax());
        }
    }
}

/// Forward plane sweep over one tile's two rectangle lists (already
/// bucketed; sorted here by `xmin`), reporting intersecting pairs whose
/// reference point lies in `tile`.
///
/// Exposed for tests and benches; [`partition_join`] drives it per tile
/// via [`tile_sweep_with`].
pub fn tile_sweep(
    grid: &Grid,
    tile: usize,
    side_a: &mut [(Rect, ObjectId)],
    side_b: &mut [(Rect, ObjectId)],
    on_pair: &mut impl FnMut(ObjectId, ObjectId),
) -> (u64, u64) {
    let mut scratch = SweepScratch::default();
    tile_sweep_with(
        KernelDispatch::auto(),
        grid,
        tile,
        side_a,
        side_b,
        &mut scratch,
        on_pair,
    )
}

/// [`tile_sweep`] with an explicit kernel dispatch path and caller-owned
/// scratch. After sorting, both sides are repacked into SoA columns and
/// the inner x-overlapping runs execute as wide scans; the emitted pairs,
/// their order, and both counters are byte-identical across paths.
pub fn tile_sweep_with(
    dispatch: KernelDispatch,
    grid: &Grid,
    tile: usize,
    side_a: &mut [(Rect, ObjectId)],
    side_b: &mut [(Rect, ObjectId)],
    scratch: &mut SweepScratch,
    on_pair: &mut impl FnMut(ObjectId, ObjectId),
) -> (u64, u64) {
    let mut pair_tests = 0u64;
    let mut dedup_skipped = 0u64;
    side_a.sort_unstable_by(|p, q| p.0.xmin().partial_cmp(&q.0.xmin()).expect("finite xmin"));
    side_b.sort_unstable_by(|p, q| p.0.xmin().partial_cmp(&q.0.xmin()).expect("finite xmin"));
    scratch.repack(side_a, side_b);

    // The kernel handles the x-break and the y-band test of each run; the
    // reference-point dedup (the pair is replicated into every tile both
    // rectangles overlap, but counts only where the lower-left corner of
    // their intersection falls) stays scalar over the few survivors.
    let mut i = 0;
    let mut j = 0;
    while i < side_a.len() && j < side_b.len() {
        if scratch.ax[i] <= scratch.bx[j] {
            let (ra, ida) = side_a[i];
            scratch.hits.clear();
            pair_tests += kernels::sweep_scan(
                dispatch,
                scratch.axm[i],
                scratch.ay0[i],
                scratch.ay1[i],
                &scratch.bx,
                &scratch.by0,
                &scratch.by1,
                j,
                &mut scratch.hits,
            );
            for &k in &scratch.hits {
                let (rb, idb) = side_b[k as usize];
                if grid.reference_tile(&ra, &rb) == tile {
                    on_pair(ida, idb);
                } else {
                    dedup_skipped += 1;
                }
            }
            i += 1;
        } else {
            let (rb, idb) = side_b[j];
            scratch.hits.clear();
            pair_tests += kernels::sweep_scan(
                dispatch,
                scratch.bxm[j],
                scratch.by0[j],
                scratch.by1[j],
                &scratch.ax,
                &scratch.ay0,
                &scratch.ay1,
                i,
                &mut scratch.hits,
            );
            for &k in &scratch.hits {
                let (ra, ida) = side_a[k as usize];
                if grid.reference_tile(&ra, &rb) == tile {
                    on_pair(ida, idb);
                } else {
                    dedup_skipped += 1;
                }
            }
            j += 1;
        }
    }
    (pair_tests, dedup_skipped)
}

/// Below this many total tile assignments [`partition_join`]'s sweeps run
/// on the calling thread regardless of the requested `threads` — spawn
/// cost would dominate the sub-millisecond sweep work.
/// [`PartitionStats::threads`] records the worker count actually used.
/// ([`partition_join_workers`] does *not* apply this threshold: its
/// workers also run the downstream filter + exact steps, which dwarf the
/// spawn cost.)
pub const PARALLEL_THRESHOLD: u64 = 4096;

/// The bucketed grid both join drivers share: universe grid, per-tile
/// rectangle lists for both sides, assignment counts.
struct Prepared {
    grid: Grid,
    buckets_a: Vec<Vec<(Rect, ObjectId)>>,
    buckets_b: Vec<Vec<(Rect, ObjectId)>>,
    assignments_a: u64,
    assignments_b: u64,
}

/// Builds the grid and buckets; `None` when either side is empty (no
/// candidates can exist).
fn prepare(
    a: &[(Rect, ObjectId)],
    b: &[(Rect, ObjectId)],
    tiles_per_axis: usize,
) -> Option<Prepared> {
    if a.is_empty() || b.is_empty() {
        return None;
    }
    let grid = Grid::covering(a, b, tiles_per_axis)?;
    let (buckets_a, assignments_a) = grid.assign(a);
    let (buckets_b, assignments_b) = grid.assign(b);
    Some(Prepared {
        grid,
        buckets_a,
        buckets_b,
        assignments_a,
        assignments_b,
    })
}

fn base_stats(prep: &Prepared, a_len: usize, b_len: usize, workers: usize) -> PartitionStats {
    PartitionStats {
        tiles_per_axis: prep.grid.tiles_per_axis(),
        threads: workers,
        assignments_a: prep.assignments_a,
        assignments_b: prep.assignments_b,
        items_a: a_len as u64,
        items_b: b_len as u64,
        pair_tests: 0,
        dedup_skipped: 0,
        tile_candidates: Vec::with_capacity(prep.grid.tile_count()),
    }
}

/// The partitioned parallel MBR join, funneled onto the calling thread.
///
/// Every intersecting `(a, b)` MBR pair is streamed to `on_pair` exactly
/// once, in deterministic tile-major order independent of `threads`.
/// `threads == 0` uses the machine's available parallelism; inputs below
/// [`PARALLEL_THRESHOLD`] assignments run serially either way. Tile
/// sweeps run on scoped worker threads; the sink runs on the calling
/// thread, so downstream steps need no synchronization.
pub fn partition_join<F: FnMut(ObjectId, ObjectId)>(
    a: &[(Rect, ObjectId)],
    b: &[(Rect, ObjectId)],
    tiles_per_axis: usize,
    threads: usize,
    on_pair: F,
) -> PartitionStats {
    partition_join_with(
        KernelDispatch::auto(),
        a,
        b,
        tiles_per_axis,
        threads,
        on_pair,
    )
}

/// [`partition_join`] with an explicit kernel dispatch path.
pub fn partition_join_with<F: FnMut(ObjectId, ObjectId)>(
    dispatch: KernelDispatch,
    a: &[(Rect, ObjectId)],
    b: &[(Rect, ObjectId)],
    tiles_per_axis: usize,
    threads: usize,
    on_pair: F,
) -> PartitionStats {
    partition_join_cancellable_with(dispatch, a, b, tiles_per_axis, threads, None, on_pair)
}

/// [`partition_join_with`] with a cooperative [`CancelToken`], polled at
/// every tile boundary (sweep side and replay side). Once cancelled, no
/// further tiles are swept and no further pairs are replayed; the stats
/// cover exactly the tiles that ran. `None` is the zero-overhead path.
pub fn partition_join_cancellable_with<F: FnMut(ObjectId, ObjectId)>(
    dispatch: KernelDispatch,
    a: &[(Rect, ObjectId)],
    b: &[(Rect, ObjectId)],
    tiles_per_axis: usize,
    threads: usize,
    cancel: Option<&CancelToken>,
    mut on_pair: F,
) -> PartitionStats {
    let threads = resolve_threads(threads);
    let Some(mut prep) = prepare(a, b, tiles_per_axis) else {
        // One side (or both) is empty: no tiles ran, no workers spawned.
        return PartitionStats::empty(tiles_per_axis, 1);
    };
    let tile_count = prep.grid.tile_count();

    // Tiles are handed to workers round-robin (tile t → worker t mod W) so
    // spatially clustered hot tiles spread across workers; each worker
    // writes into its own slot of the per-tile result table.
    let workers = if prep.assignments_a + prep.assignments_b < PARALLEL_THRESHOLD {
        1
    } else {
        threads.min(tile_count).max(1)
    };
    let mut results: Vec<TileResult> = Vec::with_capacity(tile_count);
    results.resize_with(tile_count, TileResult::default);

    if workers <= 1 {
        let mut scratch = SweepScratch::default();
        for (tile, result) in results.iter_mut().enumerate() {
            if cancel.is_some_and(|c| c.is_cancelled()) {
                break; // tile boundary: stop sweeping, replay what ran
            }
            run_tile(
                dispatch,
                &prep.grid,
                tile,
                &mut prep.buckets_a[tile],
                &mut prep.buckets_b[tile],
                &mut scratch,
                result,
            );
        }
    } else {
        // Split the per-tile slots round-robin into one work list per
        // worker (tile t → worker t mod W).
        let mut per_worker: Vec<Vec<(usize, &mut TileResult, _, _)>> =
            (0..workers).map(|_| Vec::new()).collect();
        let slots = results
            .iter_mut()
            .zip(prep.buckets_a.iter_mut())
            .zip(prep.buckets_b.iter_mut())
            .enumerate()
            .map(|(tile, ((res, ba), bb))| (tile, res, ba, bb));
        for slot in slots {
            per_worker[slot.0 % workers].push(slot);
        }
        let grid = &prep.grid;
        std::thread::scope(|scope| {
            let handles: Vec<_> = per_worker
                .into_iter()
                .map(|own| {
                    scope.spawn(move || {
                        let mut scratch = SweepScratch::default();
                        for (tile, result, bucket_a, bucket_b) in own {
                            if cancel.is_some_and(|c| c.is_cancelled()) {
                                break; // tile boundary: drop remaining tiles
                            }
                            run_tile(
                                dispatch,
                                grid,
                                tile,
                                bucket_a,
                                bucket_b,
                                &mut scratch,
                                result,
                            );
                        }
                    })
                })
                .collect();
            join_isolating_panics(handles, |()| {});
        });
    }

    // Deterministic merge: replay pairs in tile-major order on the
    // calling thread.
    let mut stats = base_stats(&prep, a.len(), b.len(), workers);
    for result in results {
        if cancel.is_some_and(|c| c.is_cancelled()) {
            break; // tile boundary: stop replaying delivered pairs
        }
        stats.pair_tests += result.pair_tests;
        stats.dedup_skipped += result.dedup_skipped;
        stats.tile_candidates.push(result.pairs.len() as u64);
        for (id_a, id_b) in result.pairs {
            on_pair(id_a, id_b);
        }
    }
    stats
}

/// The partitioned parallel MBR join delivered to caller-supplied
/// workers: each worker thread attaches its own sink on `consumer` and
/// the tile sweeps stream their pairs into it *on the worker thread* —
/// no funnel, no intermediate pair buffer. This is the Step-1 producer of
/// the fused execution engine: the consumer typically runs the geometric
/// filter and the exact step right in the sink.
///
/// `workers == 0` uses the machine's available parallelism; the count is
/// clamped to the tile count (a tile is the unit of work). Each worker
/// processes tiles `w, w + W, w + 2W, …` in increasing order, so every
/// worker's pair stream — and therefore any per-worker accumulation — is
/// deterministic for a fixed worker count. Pairs are emitted exactly once
/// (reference-point deduplication, as with [`partition_join`]); the
/// *union* across workers equals [`partition_join`]'s stream as a set.
///
/// Pairs are delivered in runs of up to `batch` through
/// [`msj_geom::PairSink::consume_batch`] (a caller-side
/// [`PairBatchBuffer`] per worker, flushed at every tile boundary), so a
/// consumer pays one dispatch — and can run one batched classification —
/// per run instead of per pair. Order within a worker is unchanged.
pub fn partition_join_workers(
    a: &[(Rect, ObjectId)],
    b: &[(Rect, ObjectId)],
    tiles_per_axis: usize,
    workers: usize,
    batch: usize,
    consumer: &dyn PairConsumer,
) -> PartitionStats {
    partition_join_workers_observed(a, b, tiles_per_axis, workers, batch, consumer, None)
}

/// Records one tile's outcome into the worker's backend lane: pairs
/// swept, one batch per tile flushed, the busiest tile as the peak.
#[inline]
fn observe_tile(lane: Option<&WorkerLane>, outcome: &TileOutcome) {
    if let Some(lane) = lane {
        lane.add_pairs(outcome.candidates);
        lane.inc_batches();
        lane.record_buffered(outcome.candidates);
    }
}

/// [`partition_join_workers`] with optional per-worker telemetry: worker
/// `w` records into `telemetry.backend_lane(w)` the candidate pairs it
/// swept, the tile flushes it performed, and its busiest tile's
/// candidate count. `None` is the zero-overhead path the plain driver
/// delegates to.
pub fn partition_join_workers_observed(
    a: &[(Rect, ObjectId)],
    b: &[(Rect, ObjectId)],
    tiles_per_axis: usize,
    workers: usize,
    batch: usize,
    consumer: &dyn PairConsumer,
    telemetry: Option<&WorkerTelemetry>,
) -> PartitionStats {
    partition_join_workers_observed_with(
        KernelDispatch::auto(),
        a,
        b,
        tiles_per_axis,
        workers,
        batch,
        consumer,
        telemetry,
        None,
    )
}

/// [`partition_join_workers_observed`] with an explicit kernel dispatch
/// path and an optional cooperative [`CancelToken`], polled by every
/// worker at each tile boundary: once cancelled, workers stop sweeping
/// their remaining tiles, flush nothing further, and tear down normally.
/// A worker that *panics* is isolated: the other workers drain, then the
/// panic is re-raised as a structured [`WorkerPanic`] for the engine
/// layer to catch.
#[allow(clippy::too_many_arguments)]
pub fn partition_join_workers_observed_with(
    dispatch: KernelDispatch,
    a: &[(Rect, ObjectId)],
    b: &[(Rect, ObjectId)],
    tiles_per_axis: usize,
    workers: usize,
    batch: usize,
    consumer: &dyn PairConsumer,
    telemetry: Option<&WorkerTelemetry>,
    cancel: Option<&CancelToken>,
) -> PartitionStats {
    let workers = resolve_threads(workers);
    let Some(mut prep) = prepare(a, b, tiles_per_axis) else {
        return PartitionStats::empty(tiles_per_axis, 1);
    };
    let tile_count = prep.grid.tile_count();
    let workers = workers.min(tile_count).max(1);

    let mut outcomes: Vec<TileOutcome> = Vec::with_capacity(tile_count);
    if workers <= 1 {
        let lane = telemetry.map(|t| t.backend_lane(0));
        let mut sink = consumer.attach();
        let mut buffer = PairBatchBuffer::new(&mut *sink, batch);
        let mut scratch = SweepScratch::default();
        for (tile, (bucket_a, bucket_b)) in prep
            .buckets_a
            .iter_mut()
            .zip(prep.buckets_b.iter_mut())
            .enumerate()
        {
            if cancel.is_some_and(|c| c.is_cancelled()) {
                break; // tile boundary: stop sweeping
            }
            let outcome = sweep_into(
                dispatch,
                &prep.grid,
                tile,
                bucket_a,
                bucket_b,
                &mut scratch,
                &mut buffer,
            );
            buffer.flush(); // tile boundary
            observe_tile(lane, &outcome);
            outcomes.push(outcome);
        }
    } else {
        let mut per_worker: Vec<Vec<(usize, _, _)>> = (0..workers).map(|_| Vec::new()).collect();
        let slots = prep
            .buckets_a
            .iter_mut()
            .zip(prep.buckets_b.iter_mut())
            .enumerate()
            .map(|(tile, (ba, bb))| (tile, ba, bb));
        for slot in slots {
            per_worker[slot.0 % workers].push(slot);
        }
        let grid = &prep.grid;
        std::thread::scope(|scope| {
            let handles: Vec<_> = per_worker
                .into_iter()
                .enumerate()
                .map(|(w, own)| {
                    scope.spawn(move || {
                        let lane = telemetry.map(|t| t.backend_lane(w));
                        let mut sink = consumer.attach();
                        let mut buffer = PairBatchBuffer::new(&mut *sink, batch);
                        let mut scratch = SweepScratch::default();
                        let mut done: Vec<TileOutcome> = Vec::with_capacity(own.len());
                        for (tile, bucket_a, bucket_b) in own {
                            if cancel.is_some_and(|c| c.is_cancelled()) {
                                break; // tile boundary: drop remaining tiles
                            }
                            let outcome = sweep_into(
                                dispatch,
                                grid,
                                tile,
                                bucket_a,
                                bucket_b,
                                &mut scratch,
                                &mut buffer,
                            );
                            buffer.flush(); // tile boundary
                            observe_tile(lane, &outcome);
                            done.push(outcome);
                        }
                        done
                    })
                })
                .collect();
            join_isolating_panics(handles, |done| outcomes.extend(done));
        });
    }

    // Stitch the per-worker outcomes back into tile order so the stats —
    // per-tile candidate counts included — are identical to the funneled
    // driver's, independent of the worker count.
    let mut stats = base_stats(&prep, a.len(), b.len(), workers);
    stats.tile_candidates.resize(tile_count, 0);
    for outcome in outcomes {
        stats.pair_tests += outcome.pair_tests;
        stats.dedup_skipped += outcome.dedup_skipped;
        stats.tile_candidates[outcome.tile] = outcome.candidates;
    }
    stats
}

/// Sweeps one tile directly into a worker's sink, returning the tile's
/// counters.
fn sweep_into(
    dispatch: KernelDispatch,
    grid: &Grid,
    tile: usize,
    bucket_a: &mut [(Rect, ObjectId)],
    bucket_b: &mut [(Rect, ObjectId)],
    scratch: &mut SweepScratch,
    sink: &mut dyn msj_geom::PairSink,
) -> TileOutcome {
    let mut candidates = 0u64;
    let (pair_tests, dedup_skipped) = if bucket_a.is_empty() || bucket_b.is_empty() {
        (0, 0)
    } else {
        tile_sweep_with(
            dispatch,
            grid,
            tile,
            bucket_a,
            bucket_b,
            scratch,
            &mut |x, y| {
                candidates += 1;
                sink.pair(x, y);
            },
        )
    };
    TileOutcome {
        tile,
        candidates,
        pair_tests,
        dedup_skipped,
    }
}

/// The funneled driver's per-tile step: [`sweep_into`] with a
/// pair-collecting sink, so both drivers share one sweep-and-account
/// implementation.
fn run_tile(
    dispatch: KernelDispatch,
    grid: &Grid,
    tile: usize,
    bucket_a: &mut [(Rect, ObjectId)],
    bucket_b: &mut [(Rect, ObjectId)],
    scratch: &mut SweepScratch,
    result: &mut TileResult,
) {
    let mut pairs = Vec::new();
    let outcome = sweep_into(
        dispatch,
        grid,
        tile,
        bucket_a,
        bucket_b,
        scratch,
        &mut |x: ObjectId, y: ObjectId| pairs.push((x, y)),
    );
    *result = TileResult {
        pairs,
        pair_tests: outcome.pair_tests,
        dedup_skipped: outcome.dedup_skipped,
    };
}

#[cfg(test)]
mod tests {
    use super::*;
    use msj_geom::FnConsumer;
    use std::sync::Mutex;

    fn grid_items(n_side: usize, offset: f64, size: f64) -> Vec<(Rect, ObjectId)> {
        let mut items = Vec::new();
        let mut id = 0u32;
        for i in 0..n_side {
            for j in 0..n_side {
                let x = i as f64 * 10.0 + offset;
                let y = j as f64 * 10.0 + offset;
                items.push((Rect::from_bounds(x, y, x + size, y + size), id));
                id += 1;
            }
        }
        items
    }

    fn reference(a: &[(Rect, ObjectId)], b: &[(Rect, ObjectId)]) -> Vec<(ObjectId, ObjectId)> {
        let mut out = Vec::new();
        for &(ra, ida) in a {
            for &(rb, idb) in b {
                if ra.intersects(&rb) {
                    out.push((ida, idb));
                }
            }
        }
        out.sort_unstable();
        out
    }

    fn sorted(mut v: Vec<(ObjectId, ObjectId)>) -> Vec<(ObjectId, ObjectId)> {
        v.sort_unstable();
        v
    }

    /// A consumer whose sinks collect into a shared mutex-guarded vec —
    /// enough to observe the union of all workers' pairs.
    struct Collecting {
        pairs: Mutex<Vec<(ObjectId, ObjectId)>>,
        attaches: Mutex<usize>,
    }

    impl Collecting {
        fn new() -> Self {
            Collecting {
                pairs: Mutex::new(Vec::new()),
                attaches: Mutex::new(0),
            }
        }
    }

    impl msj_geom::PairConsumer for Collecting {
        fn attach(&self) -> Box<dyn msj_geom::PairSink + '_> {
            *self.attaches.lock().unwrap() += 1;
            struct Sink<'a> {
                owner: &'a Collecting,
                local: Vec<(ObjectId, ObjectId)>,
            }
            impl msj_geom::PairSink for Sink<'_> {
                fn pair(&mut self, a: ObjectId, b: ObjectId) {
                    self.local.push((a, b));
                }
            }
            impl Drop for Sink<'_> {
                fn drop(&mut self) {
                    self.owner.pairs.lock().unwrap().append(&mut self.local);
                }
            }
            Box::new(Sink {
                owner: self,
                local: Vec::new(),
            })
        }
    }

    #[test]
    fn cancelled_worker_join_stops_at_tile_boundaries() {
        let a = grid_items(10, 0.0, 8.0);
        let b = grid_items(10, 4.0, 8.0);
        let expect = reference(&a, &b);

        // Pre-cancelled: no tiles sweep, no pairs arrive, stats stay
        // well-formed.
        for workers in [1usize, 4] {
            let token = CancelToken::new();
            token.cancel();
            let consumer = Collecting::new();
            let stats = partition_join_workers_observed_with(
                KernelDispatch::auto(),
                &a,
                &b,
                4,
                workers,
                7,
                &consumer,
                None,
                Some(&token),
            );
            assert!(consumer.pairs.into_inner().unwrap().is_empty());
            assert_eq!(stats.candidates(), 0, "workers {workers}");
        }

        // Cancelled mid-run from a sink: the delivered pairs are a
        // subset of the full join (tiles that completed before the poll).
        let token = CancelToken::new();
        struct CancelAfter<'t> {
            token: &'t CancelToken,
            seen: Mutex<Vec<(ObjectId, ObjectId)>>,
        }
        impl msj_geom::PairConsumer for CancelAfter<'_> {
            fn attach(&self) -> Box<dyn msj_geom::PairSink + '_> {
                let token = self.token;
                let seen = &self.seen;
                Box::new(move |x: ObjectId, y: ObjectId| {
                    let mut guard = seen.lock().unwrap();
                    guard.push((x, y));
                    if guard.len() == 8 {
                        token.cancel();
                    }
                })
            }
        }
        let consumer = CancelAfter {
            token: &token,
            seen: Mutex::new(Vec::new()),
        };
        partition_join_workers_observed_with(
            KernelDispatch::auto(),
            &a,
            &b,
            4,
            1,
            7,
            &consumer,
            None,
            Some(&token),
        );
        let got = sorted(consumer.seen.into_inner().unwrap());
        assert!(!got.is_empty());
        assert!(got.len() < expect.len(), "stopped before completion");
        assert!(got.iter().all(|p| expect.binary_search(p).is_ok()));
    }

    #[test]
    fn worker_panic_is_reraised_as_structured_payload() {
        let a = grid_items(10, 0.0, 8.0);
        let b = grid_items(10, 4.0, 8.0);
        struct Exploding;
        impl msj_geom::PairConsumer for Exploding {
            fn attach(&self) -> Box<dyn msj_geom::PairSink + '_> {
                Box::new(|_: ObjectId, _: ObjectId| panic!("sink exploded"))
            }
        }
        let caught = std::panic::catch_unwind(|| {
            partition_join_workers(&a, &b, 4, 4, 7, &Exploding);
        })
        .expect_err("worker panic must propagate");
        let wp = caught
            .downcast_ref::<msj_geom::WorkerPanic>()
            .expect("structured WorkerPanic payload");
        assert!(wp.worker < 4, "worker index in range, got {}", wp.worker);
        assert_eq!(wp.message, "sink exploded");
    }

    #[test]
    fn matches_nested_loops_across_tiles_and_threads() {
        let a = grid_items(9, 0.0, 8.0);
        let b = grid_items(9, 4.0, 8.0);
        let expect = reference(&a, &b);
        assert!(!expect.is_empty());
        for tiles in [1usize, 2, 4, 7] {
            for threads in [1usize, 2, 8] {
                let mut got = Vec::new();
                let stats = partition_join(&a, &b, tiles, threads, |x, y| got.push((x, y)));
                assert_eq!(sorted(got), expect, "tiles {tiles} threads {threads}");
                assert_eq!(stats.candidates(), expect.len() as u64);
                assert_eq!(stats.tile_candidates.len(), tiles * tiles);
            }
        }
    }

    #[test]
    fn worker_delivery_matches_the_funneled_join() {
        let a = grid_items(8, 0.0, 9.5);
        let b = grid_items(8, 3.0, 9.5);
        let mut funneled = Vec::new();
        let funneled_stats = partition_join(&a, &b, 4, 1, |x, y| funneled.push((x, y)));
        for workers in [1usize, 2, 3, 8, 64] {
            let consumer = Collecting::new();
            let stats = partition_join_workers(&a, &b, 4, workers, 7, &consumer);
            let got = consumer.pairs.into_inner().unwrap();
            assert_eq!(sorted(got), sorted(funneled.clone()), "workers {workers}");
            // Stats are worker-count invariant, tile detail included.
            assert_eq!(stats.tile_candidates, funneled_stats.tile_candidates);
            assert_eq!(stats.pair_tests, funneled_stats.pair_tests);
            assert_eq!(stats.dedup_skipped, funneled_stats.dedup_skipped);
            // One sink per worker, clamped to the tile count.
            assert_eq!(stats.threads, workers.min(16));
            assert_eq!(*consumer.attaches.lock().unwrap(), stats.threads);
        }

        // The observed variant accounts every candidate to exactly one
        // backend lane; peaks bound the busiest tile.
        for workers in [1usize, 3, 8] {
            let telemetry = WorkerTelemetry::new(workers);
            let consumer = Collecting::new();
            let stats =
                partition_join_workers_observed(&a, &b, 4, workers, 7, &consumer, Some(&telemetry));
            let lanes = telemetry.snapshot();
            let backend_pairs: u64 = lanes
                .iter()
                .filter(|l| l.role == msj_obs::LaneRole::Backend)
                .map(|l| l.pairs)
                .sum();
            let backend_batches: u64 = lanes
                .iter()
                .filter(|l| l.role == msj_obs::LaneRole::Backend)
                .map(|l| l.batches)
                .sum();
            let peak = lanes.iter().map(|l| l.peak_buffered).max().unwrap();
            assert_eq!(backend_pairs, stats.candidates(), "workers {workers}");
            assert_eq!(backend_batches, stats.tile_candidates.len() as u64);
            assert_eq!(peak, stats.busiest_tile().unwrap().1);
        }
    }

    #[test]
    fn worker_delivery_handles_empty_sides() {
        let a = grid_items(3, 0.0, 8.0);
        let consumer = Collecting::new();
        let stats = partition_join_workers(&a, &[], 4, 4, 16, &consumer);
        assert_eq!(stats.candidates(), 0);
        assert_eq!(stats.threads, 1);
        assert!(consumer.pairs.into_inner().unwrap().is_empty());
    }

    #[test]
    fn worker_delivery_through_fn_consumer_single_worker() {
        let a = grid_items(5, 0.0, 9.0);
        let b = grid_items(5, 4.0, 9.0);
        let mut got = Vec::new();
        let stats = {
            let mut push = |x: ObjectId, y: ObjectId| got.push((x, y));
            let consumer = FnConsumer::new(&mut push);
            partition_join_workers(&a, &b, 3, 1, 4, &consumer)
        };
        assert_eq!(sorted(got), reference(&a, &b));
        assert_eq!(stats.threads, 1);
    }

    #[test]
    fn output_order_is_thread_count_invariant() {
        let a = grid_items(8, 0.0, 9.5);
        let b = grid_items(8, 3.0, 9.5);
        let mut first = Vec::new();
        partition_join(&a, &b, 4, 1, |x, y| first.push((x, y)));
        for threads in [2usize, 3, 8, 16] {
            let mut got = Vec::new();
            partition_join(&a, &b, 4, threads, |x, y| got.push((x, y)));
            assert_eq!(got, first, "threads {threads}");
        }
    }

    #[test]
    fn every_dispatch_path_emits_identical_pairs_and_stats() {
        // Large rectangles force replication + dedup; odd counts hit the
        // kernel tails.
        let a = grid_items(7, 0.0, 23.0);
        let b = grid_items(7, 9.0, 23.0);
        type Cell = (Vec<(ObjectId, ObjectId)>, u64, u64);
        let mut reference: Option<Cell> = None;
        for d in KernelDispatch::all_available() {
            let mut got = Vec::new();
            let stats = partition_join_with(d, &a, &b, 5, 2, |x, y| got.push((x, y)));
            let cell = (got, stats.pair_tests, stats.dedup_skipped);
            match &reference {
                None => reference = Some(cell),
                Some(want) => assert_eq!(&cell, want, "dispatch {}", d.label()),
            }
        }
    }

    #[test]
    fn no_duplicates_despite_replication() {
        // Large rectangles overlapping many tiles stress the dedup.
        let a = grid_items(5, 0.0, 25.0);
        let b = grid_items(5, 7.0, 25.0);
        let mut got = Vec::new();
        let stats = partition_join(&a, &b, 6, 4, |x, y| got.push((x, y)));
        let mut deduped = got.clone();
        deduped.sort_unstable();
        deduped.dedup();
        assert_eq!(got.len(), deduped.len(), "duplicate pairs emitted");
        assert_eq!(sorted(got), reference(&a, &b));
        assert!(
            stats.dedup_skipped > 0,
            "replication should have produced skips"
        );
        assert!(stats.replicated_a() > 0);
    }

    #[test]
    fn empty_sides_yield_empty_join() {
        let a = grid_items(3, 0.0, 8.0);
        let stats = partition_join(&a, &[], 4, 2, |_, _| panic!("no pairs expected"));
        assert_eq!(stats.candidates(), 0);
        let stats = partition_join(&[], &a, 4, 2, |_, _| panic!("no pairs expected"));
        assert_eq!(stats.candidates(), 0);
    }

    #[test]
    fn identical_rectangles_all_pair_up() {
        let r = Rect::from_bounds(1.0, 1.0, 2.0, 2.0);
        let a: Vec<(Rect, ObjectId)> = (0..40).map(|i| (r, i)).collect();
        let mut got = Vec::new();
        let stats = partition_join(&a, &a, 4, 3, |x, y| got.push((x, y)));
        assert_eq!(got.len(), 1600);
        // A degenerate-extent universe still lands everything in one tile.
        assert_eq!(stats.candidates(), 1600);
    }

    #[test]
    fn large_inputs_use_the_requested_threads() {
        let a = grid_items(60, 0.0, 8.0);
        let b = grid_items(60, 4.0, 8.0);
        assert!(a.len() as u64 + b.len() as u64 >= super::PARALLEL_THRESHOLD);
        let mut got = Vec::new();
        let stats = partition_join(&a, &b, 8, 4, |x, y| got.push((x, y)));
        assert_eq!(stats.threads, 4);
        assert_eq!(sorted(got), reference(&a, &b));
    }

    #[test]
    fn tiny_inputs_fall_back_to_serial() {
        let a = grid_items(3, 0.0, 8.0);
        let b = grid_items(3, 4.0, 8.0);
        let stats = partition_join(&a, &b, 2, 8, |_, _| {});
        assert_eq!(stats.threads, 1, "sub-threshold work must not spawn");
    }

    #[test]
    fn zero_threads_uses_available_parallelism() {
        let a = grid_items(6, 0.0, 8.0);
        let b = grid_items(6, 4.0, 8.0);
        let mut got = Vec::new();
        let stats = partition_join(&a, &b, 3, 0, |x, y| got.push((x, y)));
        assert_eq!(sorted(got), reference(&a, &b));
        assert!(stats.threads >= 1);
    }

    #[test]
    fn stats_accounting_identities() {
        let a = grid_items(7, 0.0, 12.0);
        let b = grid_items(7, 5.0, 12.0);
        let mut count = 0u64;
        let stats = partition_join(&a, &b, 4, 2, |_, _| count += 1);
        assert_eq!(stats.candidates(), count);
        assert_eq!(stats.tile_candidates.iter().sum::<u64>(), count);
        // Every item is assigned at least once.
        assert!(stats.assignments_a >= a.len() as u64);
        assert!(stats.assignments_b >= b.len() as u64);
        // Pair tests bound the emitted + skipped matches.
        assert!(stats.pair_tests >= count + stats.dedup_skipped);
        assert!(stats.busiest_tile().is_some());
    }
}

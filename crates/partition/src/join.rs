//! The partitioned MBR join: per-tile plane sweeps executed in parallel
//! over scoped threads, merged deterministically in tile order.

use crate::grid::Grid;
use crate::stats::PartitionStats;
use msj_geom::{ObjectId, Rect};

/// What one tile's mini-join produced.
#[derive(Debug, Default)]
struct TileResult {
    pairs: Vec<(ObjectId, ObjectId)>,
    pair_tests: u64,
    dedup_skipped: u64,
}

/// Forward plane sweep over one tile's two rectangle lists (already
/// bucketed; sorted here by `xmin`), reporting intersecting pairs whose
/// reference point lies in `tile`.
///
/// Exposed for tests and benches; [`partition_join`] drives it per tile.
pub fn tile_sweep(
    grid: &Grid,
    tile: usize,
    side_a: &mut [(Rect, ObjectId)],
    side_b: &mut [(Rect, ObjectId)],
    on_pair: &mut impl FnMut(ObjectId, ObjectId),
) -> (u64, u64) {
    let mut pair_tests = 0u64;
    let mut dedup_skipped = 0u64;
    side_a.sort_unstable_by(|p, q| p.0.xmin().partial_cmp(&q.0.xmin()).expect("finite xmin"));
    side_b.sort_unstable_by(|p, q| p.0.xmin().partial_cmp(&q.0.xmin()).expect("finite xmin"));

    let mut emit = |ra: &Rect, ida: ObjectId, rb: &Rect, idb: ObjectId| {
        // x-overlap is implied by the sweep; test y, then dedup on the
        // reference point (the pair is replicated into every tile both
        // rectangles overlap, but counts only where the lower-left corner
        // of their intersection falls).
        if ra.ymin() <= rb.ymax() && rb.ymin() <= ra.ymax() {
            if grid.reference_tile(ra, rb) == tile {
                on_pair(ida, idb);
            } else {
                dedup_skipped += 1;
            }
        }
    };

    let mut i = 0;
    let mut j = 0;
    while i < side_a.len() && j < side_b.len() {
        if side_a[i].0.xmin() <= side_b[j].0.xmin() {
            let (ra, ida) = side_a[i];
            for &(rb, idb) in side_b[j..].iter() {
                if rb.xmin() > ra.xmax() {
                    break;
                }
                pair_tests += 1;
                emit(&ra, ida, &rb, idb);
            }
            i += 1;
        } else {
            let (rb, idb) = side_b[j];
            for &(ra, ida) in side_a[i..].iter() {
                if ra.xmin() > rb.xmax() {
                    break;
                }
                pair_tests += 1;
                emit(&ra, ida, &rb, idb);
            }
            j += 1;
        }
    }
    (pair_tests, dedup_skipped)
}

/// Below this many total tile assignments the sweeps run on the calling
/// thread regardless of the requested `threads` — spawn cost would
/// dominate the sub-millisecond sweep work. [`PartitionStats::threads`]
/// records the worker count actually used.
pub const PARALLEL_THRESHOLD: u64 = 4096;

/// The partitioned parallel MBR join.
///
/// Every intersecting `(a, b)` MBR pair is streamed to `on_pair` exactly
/// once, in deterministic tile-major order independent of `threads`.
/// `threads == 0` uses the machine's available parallelism; inputs below
/// [`PARALLEL_THRESHOLD`] assignments run serially either way. Tile
/// sweeps run on scoped worker threads; the sink runs on the calling
/// thread, so downstream steps need no synchronization.
pub fn partition_join<F: FnMut(ObjectId, ObjectId)>(
    a: &[(Rect, ObjectId)],
    b: &[(Rect, ObjectId)],
    tiles_per_axis: usize,
    threads: usize,
    mut on_pair: F,
) -> PartitionStats {
    let threads = if threads == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        threads
    };
    let Some(grid) = Grid::covering(a, b, tiles_per_axis) else {
        // One side (or both) is empty: no candidates, an empty grid.
        return PartitionStats::empty(tiles_per_axis, threads);
    };
    if a.is_empty() || b.is_empty() {
        return PartitionStats::empty(tiles_per_axis, threads);
    }

    let (mut buckets_a, assignments_a) = grid.assign(a);
    let (mut buckets_b, assignments_b) = grid.assign(b);
    let tile_count = grid.tile_count();

    // Tiles are handed to workers round-robin (tile t → worker t mod W) so
    // spatially clustered hot tiles spread across workers; each worker
    // writes into its own slot of the per-tile result table.
    let workers = if assignments_a + assignments_b < PARALLEL_THRESHOLD {
        1
    } else {
        threads.min(tile_count).max(1)
    };
    let mut results: Vec<TileResult> = Vec::with_capacity(tile_count);
    results.resize_with(tile_count, TileResult::default);

    if workers <= 1 {
        for (tile, result) in results.iter_mut().enumerate() {
            run_tile(
                &grid,
                tile,
                &mut buckets_a[tile],
                &mut buckets_b[tile],
                result,
            );
        }
    } else {
        // Split the per-tile slots round-robin into one work list per
        // worker (tile t → worker t mod W).
        let mut per_worker: Vec<Vec<(usize, &mut TileResult, _, _)>> =
            (0..workers).map(|_| Vec::new()).collect();
        let slots = results
            .iter_mut()
            .zip(buckets_a.iter_mut())
            .zip(buckets_b.iter_mut())
            .enumerate()
            .map(|(tile, ((res, ba), bb))| (tile, res, ba, bb));
        for slot in slots {
            per_worker[slot.0 % workers].push(slot);
        }
        std::thread::scope(|scope| {
            let handles: Vec<_> = per_worker
                .into_iter()
                .map(|own| {
                    let grid = &grid;
                    scope.spawn(move || {
                        for (tile, result, bucket_a, bucket_b) in own {
                            run_tile(grid, tile, bucket_a, bucket_b, result);
                        }
                    })
                })
                .collect();
            for handle in handles {
                handle.join().expect("tile worker panicked");
            }
        });
    }

    // Deterministic merge: replay pairs in tile-major order on the
    // calling thread.
    let mut stats = PartitionStats {
        tiles_per_axis: grid.tiles_per_axis(),
        threads: workers,
        assignments_a,
        assignments_b,
        items_a: a.len() as u64,
        items_b: b.len() as u64,
        pair_tests: 0,
        dedup_skipped: 0,
        tile_candidates: Vec::with_capacity(tile_count),
    };
    for result in results {
        stats.pair_tests += result.pair_tests;
        stats.dedup_skipped += result.dedup_skipped;
        stats.tile_candidates.push(result.pairs.len() as u64);
        for (id_a, id_b) in result.pairs {
            on_pair(id_a, id_b);
        }
    }
    stats
}

fn run_tile(
    grid: &Grid,
    tile: usize,
    bucket_a: &mut [(Rect, ObjectId)],
    bucket_b: &mut [(Rect, ObjectId)],
    result: &mut TileResult,
) {
    if bucket_a.is_empty() || bucket_b.is_empty() {
        return;
    }
    let mut pairs = Vec::new();
    let (pair_tests, dedup_skipped) = tile_sweep(grid, tile, bucket_a, bucket_b, &mut |x, y| {
        pairs.push((x, y))
    });
    *result = TileResult {
        pairs,
        pair_tests,
        dedup_skipped,
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid_items(n_side: usize, offset: f64, size: f64) -> Vec<(Rect, ObjectId)> {
        let mut items = Vec::new();
        let mut id = 0u32;
        for i in 0..n_side {
            for j in 0..n_side {
                let x = i as f64 * 10.0 + offset;
                let y = j as f64 * 10.0 + offset;
                items.push((Rect::from_bounds(x, y, x + size, y + size), id));
                id += 1;
            }
        }
        items
    }

    fn reference(a: &[(Rect, ObjectId)], b: &[(Rect, ObjectId)]) -> Vec<(ObjectId, ObjectId)> {
        let mut out = Vec::new();
        for &(ra, ida) in a {
            for &(rb, idb) in b {
                if ra.intersects(&rb) {
                    out.push((ida, idb));
                }
            }
        }
        out.sort_unstable();
        out
    }

    fn sorted(mut v: Vec<(ObjectId, ObjectId)>) -> Vec<(ObjectId, ObjectId)> {
        v.sort_unstable();
        v
    }

    #[test]
    fn matches_nested_loops_across_tiles_and_threads() {
        let a = grid_items(9, 0.0, 8.0);
        let b = grid_items(9, 4.0, 8.0);
        let expect = reference(&a, &b);
        assert!(!expect.is_empty());
        for tiles in [1usize, 2, 4, 7] {
            for threads in [1usize, 2, 8] {
                let mut got = Vec::new();
                let stats = partition_join(&a, &b, tiles, threads, |x, y| got.push((x, y)));
                assert_eq!(sorted(got), expect, "tiles {tiles} threads {threads}");
                assert_eq!(stats.candidates(), expect.len() as u64);
                assert_eq!(stats.tile_candidates.len(), tiles * tiles);
            }
        }
    }

    #[test]
    fn output_order_is_thread_count_invariant() {
        let a = grid_items(8, 0.0, 9.5);
        let b = grid_items(8, 3.0, 9.5);
        let mut first = Vec::new();
        partition_join(&a, &b, 4, 1, |x, y| first.push((x, y)));
        for threads in [2usize, 3, 8, 16] {
            let mut got = Vec::new();
            partition_join(&a, &b, 4, threads, |x, y| got.push((x, y)));
            assert_eq!(got, first, "threads {threads}");
        }
    }

    #[test]
    fn no_duplicates_despite_replication() {
        // Large rectangles overlapping many tiles stress the dedup.
        let a = grid_items(5, 0.0, 25.0);
        let b = grid_items(5, 7.0, 25.0);
        let mut got = Vec::new();
        let stats = partition_join(&a, &b, 6, 4, |x, y| got.push((x, y)));
        let mut deduped = got.clone();
        deduped.sort_unstable();
        deduped.dedup();
        assert_eq!(got.len(), deduped.len(), "duplicate pairs emitted");
        assert_eq!(sorted(got), reference(&a, &b));
        assert!(
            stats.dedup_skipped > 0,
            "replication should have produced skips"
        );
        assert!(stats.replicated_a() > 0);
    }

    #[test]
    fn empty_sides_yield_empty_join() {
        let a = grid_items(3, 0.0, 8.0);
        let stats = partition_join(&a, &[], 4, 2, |_, _| panic!("no pairs expected"));
        assert_eq!(stats.candidates(), 0);
        let stats = partition_join(&[], &a, 4, 2, |_, _| panic!("no pairs expected"));
        assert_eq!(stats.candidates(), 0);
    }

    #[test]
    fn identical_rectangles_all_pair_up() {
        let r = Rect::from_bounds(1.0, 1.0, 2.0, 2.0);
        let a: Vec<(Rect, ObjectId)> = (0..40).map(|i| (r, i)).collect();
        let mut got = Vec::new();
        let stats = partition_join(&a, &a, 4, 3, |x, y| got.push((x, y)));
        assert_eq!(got.len(), 1600);
        // A degenerate-extent universe still lands everything in one tile.
        assert_eq!(stats.candidates(), 1600);
    }

    #[test]
    fn large_inputs_use_the_requested_threads() {
        let a = grid_items(60, 0.0, 8.0);
        let b = grid_items(60, 4.0, 8.0);
        assert!(a.len() as u64 + b.len() as u64 >= super::PARALLEL_THRESHOLD);
        let mut got = Vec::new();
        let stats = partition_join(&a, &b, 8, 4, |x, y| got.push((x, y)));
        assert_eq!(stats.threads, 4);
        assert_eq!(sorted(got), reference(&a, &b));
    }

    #[test]
    fn tiny_inputs_fall_back_to_serial() {
        let a = grid_items(3, 0.0, 8.0);
        let b = grid_items(3, 4.0, 8.0);
        let stats = partition_join(&a, &b, 2, 8, |_, _| {});
        assert_eq!(stats.threads, 1, "sub-threshold work must not spawn");
    }

    #[test]
    fn zero_threads_uses_available_parallelism() {
        let a = grid_items(6, 0.0, 8.0);
        let b = grid_items(6, 4.0, 8.0);
        let mut got = Vec::new();
        let stats = partition_join(&a, &b, 3, 0, |x, y| got.push((x, y)));
        assert_eq!(sorted(got), reference(&a, &b));
        assert!(stats.threads >= 1);
    }

    #[test]
    fn stats_accounting_identities() {
        let a = grid_items(7, 0.0, 12.0);
        let b = grid_items(7, 5.0, 12.0);
        let mut count = 0u64;
        let stats = partition_join(&a, &b, 4, 2, |_, _| count += 1);
        assert_eq!(stats.candidates(), count);
        assert_eq!(stats.tile_candidates.iter().sum::<u64>(), count);
        // Every item is assigned at least once.
        assert!(stats.assignments_a >= a.len() as u64);
        assert!(stats.assignments_b >= b.len() as u64);
        // Pair tests bound the emitted + skipped matches.
        assert!(stats.pair_tests >= count + stats.dedup_skipped);
        assert!(stats.busiest_tile().is_some());
    }
}

//! The uniform grid: tile addressing, MBR-to-tile assignment, and the
//! single-relation [`GridIndex`] for selection queries.

use msj_geom::{ObjectId, Point, Rect};

/// A uniform `n × n` tiling of a bounding universe.
///
/// Tiles are half-open on their upper edges (the last row/column closes
/// the universe boundary), so every point of the universe belongs to
/// exactly one tile — the property the reference-point deduplication
/// relies on.
#[derive(Debug, Clone, Copy)]
pub struct Grid {
    universe: Rect,
    tiles_per_axis: usize,
}

impl Grid {
    /// A grid over `universe` with `tiles_per_axis ≥ 1` tiles per side.
    pub fn new(universe: Rect, tiles_per_axis: usize) -> Self {
        Grid {
            universe,
            tiles_per_axis: tiles_per_axis.max(1),
        }
    }

    /// The grid covering the MBRs of both inputs; `None` when both are
    /// empty.
    pub fn covering(
        a: &[(Rect, ObjectId)],
        b: &[(Rect, ObjectId)],
        tiles_per_axis: usize,
    ) -> Option<Self> {
        let universe = a
            .iter()
            .chain(b.iter())
            .map(|(r, _)| *r)
            .reduce(|u, r| u.union(&r))?;
        Some(Grid::new(universe, tiles_per_axis))
    }

    pub fn tiles_per_axis(&self) -> usize {
        self.tiles_per_axis
    }

    /// Total number of tiles (`n²`).
    pub fn tile_count(&self) -> usize {
        self.tiles_per_axis * self.tiles_per_axis
    }

    pub fn universe(&self) -> Rect {
        self.universe
    }

    /// Column index of an x coordinate, clamped into the grid.
    #[inline]
    fn column(&self, x: f64) -> usize {
        let w = self.universe.width();
        if w <= 0.0 {
            return 0;
        }
        let t = (x - self.universe.xmin()) / w * self.tiles_per_axis as f64;
        (t.floor() as i64).clamp(0, self.tiles_per_axis as i64 - 1) as usize
    }

    /// Row index of a y coordinate, clamped into the grid.
    #[inline]
    fn row(&self, y: f64) -> usize {
        let h = self.universe.height();
        if h <= 0.0 {
            return 0;
        }
        let t = (y - self.universe.ymin()) / h * self.tiles_per_axis as f64;
        (t.floor() as i64).clamp(0, self.tiles_per_axis as i64 - 1) as usize
    }

    /// The tile containing a point (clamped into the universe).
    #[inline]
    pub fn tile_of(&self, p: Point) -> usize {
        self.row(p.y) * self.tiles_per_axis + self.column(p.x)
    }

    /// The inclusive `(col_lo, col_hi, row_lo, row_hi)` tile span of a
    /// rectangle.
    #[inline]
    pub fn tile_span(&self, r: &Rect) -> (usize, usize, usize, usize) {
        (
            self.column(r.xmin()),
            self.column(r.xmax()),
            self.row(r.ymin()),
            self.row(r.ymax()),
        )
    }

    /// All tiles a rectangle overlaps, in row-major order.
    pub fn tiles_of(&self, r: &Rect) -> impl Iterator<Item = usize> + '_ {
        let (c0, c1, r0, r1) = self.tile_span(r);
        (r0..=r1).flat_map(move |row| (c0..=c1).map(move |col| row * self.tiles_per_axis + col))
    }

    /// The reference point of an intersecting pair: the lower-left corner
    /// of the MBR intersection. Each pair has exactly one, in exactly one
    /// tile.
    #[inline]
    pub fn reference_tile(&self, a: &Rect, b: &Rect) -> usize {
        self.tile_of(Point::new(a.xmin().max(b.xmin()), a.ymin().max(b.ymin())))
    }

    /// Distributes `(rect, id)` items into per-tile buckets with
    /// replication; returns the buckets plus the total assignment count.
    pub fn assign(&self, items: &[(Rect, ObjectId)]) -> (Vec<Vec<(Rect, ObjectId)>>, u64) {
        let mut buckets: Vec<Vec<(Rect, ObjectId)>> = vec![Vec::new(); self.tile_count()];
        let mut assignments = 0u64;
        for &(rect, id) in items {
            for tile in self.tiles_of(&rect) {
                buckets[tile].push((rect, id));
                assignments += 1;
            }
        }
        (buckets, assignments)
    }
}

/// A grid over one relation's MBRs: the Step-1 candidate index for
/// selection (point / window) queries.
///
/// Candidates are MBR hits exactly as with the R*-tree; the multi-step
/// filter and exact steps downstream are unchanged.
#[derive(Debug, Clone)]
pub struct GridIndex {
    grid: Option<Grid>,
    buckets: Vec<Vec<(Rect, ObjectId)>>,
    /// Total tile assignments (≥ item count; the excess is replication).
    pub assignments: u64,
    len: usize,
}

impl GridIndex {
    /// Builds the index with `tiles_per_axis` tiles per side.
    pub fn build(items: &[(Rect, ObjectId)], tiles_per_axis: usize) -> Self {
        let Some(grid) = Grid::covering(items, &[], tiles_per_axis) else {
            return GridIndex {
                grid: None,
                buckets: Vec::new(),
                assignments: 0,
                len: 0,
            };
        };
        let (buckets, assignments) = grid.assign(items);
        GridIndex {
            grid: Some(grid),
            buckets,
            assignments,
            len: items.len(),
        }
    }

    /// Number of indexed items.
    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Ids whose MBR contains `p`. Exactly one tile is probed (a point
    /// lies in one tile), so no deduplication is needed.
    pub fn point_candidates(&self, p: Point, out: &mut Vec<ObjectId>) -> u64 {
        let Some(grid) = &self.grid else { return 0 };
        if !grid.universe().contains_point(p) {
            return 0;
        }
        let mut tests = 0u64;
        for (rect, id) in &self.buckets[grid.tile_of(p)] {
            tests += 1;
            if rect.contains_point(p) {
                out.push(*id);
            }
        }
        tests
    }

    /// Ids whose MBR intersects `window`. Every overlapping tile is
    /// probed; a replicated rectangle is counted only in the tile holding
    /// the reference point of its intersection with the window.
    pub fn window_candidates(&self, window: Rect, out: &mut Vec<ObjectId>) -> u64 {
        let Some(grid) = &self.grid else { return 0 };
        let Some(clipped) = grid.universe().intersection(&window) else {
            return 0;
        };
        let mut tests = 0u64;
        for tile in grid.tiles_of(&clipped) {
            for (rect, id) in &self.buckets[tile] {
                tests += 1;
                if rect.intersects(&window) && grid.reference_tile(rect, &window) == tile {
                    out.push(*id);
                }
            }
        }
        tests
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn items() -> Vec<(Rect, ObjectId)> {
        let mut v = Vec::new();
        let mut id = 0;
        for i in 0..10 {
            for j in 0..10 {
                let x = i as f64 * 7.0;
                let y = j as f64 * 7.0;
                v.push((Rect::from_bounds(x, y, x + 9.5, y + 9.5), id));
                id += 1;
            }
        }
        v
    }

    #[test]
    fn every_point_lies_in_exactly_one_tile() {
        let grid = Grid::new(Rect::from_bounds(0.0, 0.0, 10.0, 10.0), 4);
        for i in 0..=40 {
            for j in 0..=40 {
                let p = Point::new(i as f64 * 0.25, j as f64 * 0.25);
                let t = grid.tile_of(p);
                assert!(t < grid.tile_count());
                // The tile of p must be among the tiles of any rect
                // containing p.
                let r = Rect::from_bounds(p.x, p.y, p.x, p.y);
                let covering: Vec<usize> = grid.tiles_of(&r).collect();
                assert_eq!(covering, vec![t]);
            }
        }
    }

    #[test]
    fn replication_assigns_to_all_overlapping_tiles() {
        let grid = Grid::new(Rect::from_bounds(0.0, 0.0, 100.0, 100.0), 4);
        // Spans two columns, one row.
        let r = Rect::from_bounds(20.0, 5.0, 30.0, 10.0);
        let tiles: Vec<usize> = grid.tiles_of(&r).collect();
        assert_eq!(tiles, vec![0, 1]);
        // Spans the whole grid.
        let all: Vec<usize> = grid
            .tiles_of(&Rect::from_bounds(0.0, 0.0, 100.0, 100.0))
            .collect();
        assert_eq!(all.len(), 16);
    }

    #[test]
    fn degenerate_universe_uses_single_tile() {
        let grid = Grid::new(Rect::from_bounds(5.0, 5.0, 5.0, 5.0), 8);
        assert_eq!(grid.tile_of(Point::new(5.0, 5.0)), 0);
        let tiles: Vec<usize> = grid
            .tiles_of(&Rect::from_bounds(5.0, 5.0, 5.0, 5.0))
            .collect();
        assert_eq!(tiles, vec![0]);
    }

    #[test]
    fn point_candidates_match_linear_scan() {
        let items = items();
        let index = GridIndex::build(&items, 5);
        for i in 0..30 {
            let p = Point::new((i as f64 * 3.7) % 75.0, (i as f64 * 5.3) % 75.0);
            let mut got = Vec::new();
            index.point_candidates(p, &mut got);
            got.sort_unstable();
            let mut expect: Vec<ObjectId> = items
                .iter()
                .filter(|(r, _)| r.contains_point(p))
                .map(|(_, id)| *id)
                .collect();
            expect.sort_unstable();
            assert_eq!(got, expect, "point {p:?}");
        }
    }

    #[test]
    fn window_candidates_match_linear_scan_without_duplicates() {
        let items = items();
        for tiles in [1, 3, 8] {
            let index = GridIndex::build(&items, tiles);
            for i in 0..25 {
                let x = (i as f64 * 6.1) % 60.0;
                let y = (i as f64 * 4.3) % 60.0;
                let w = Rect::from_bounds(x, y, x + 14.0, y + 11.0);
                let mut got = Vec::new();
                index.window_candidates(w, &mut got);
                let mut deduped = got.clone();
                deduped.sort_unstable();
                deduped.dedup();
                assert_eq!(got.len(), deduped.len(), "duplicates at tiles={tiles}");
                got.sort_unstable();
                let mut expect: Vec<ObjectId> = items
                    .iter()
                    .filter(|(r, _)| r.intersects(&w))
                    .map(|(_, id)| *id)
                    .collect();
                expect.sort_unstable();
                assert_eq!(got, expect, "window {w:?} tiles {tiles}");
            }
        }
    }

    #[test]
    fn empty_index_returns_nothing() {
        let index = GridIndex::build(&[], 4);
        assert!(index.is_empty());
        let mut out = Vec::new();
        assert_eq!(index.point_candidates(Point::new(0.0, 0.0), &mut out), 0);
        assert_eq!(
            index.window_candidates(Rect::from_bounds(0.0, 0.0, 1.0, 1.0), &mut out),
            0
        );
        assert!(out.is_empty());
    }
}

//! # msj-partition — the partitioned parallel MBR join
//!
//! An alternative Step-1 candidate backend for the multi-step pipeline,
//! following the uniform-grid partitioning of Tsitsigkos & Mamoulis
//! (*"Parallel In-Memory Evaluation of Spatial Joins"*, SIGSPATIAL 2019)
//! rather than the paper's synchronized R*-tree traversal:
//!
//! 1. **Partition** — a uniform `n × n` [`Grid`] over the union of both
//!    data spaces; every MBR is assigned to *every* tile it overlaps
//!    (replication), so each tile join is independent;
//! 2. **Per-tile mini-join** — inside each tile, a forward plane sweep
//!    over the two xmin-sorted rectangle lists reports the intersecting
//!    pairs ([`tile_sweep`]);
//! 3. **Deduplication** — replicated pairs are reported exactly once via
//!    the *reference-point* method: a pair counts only in the tile that
//!    contains the lower-left corner of the MBR intersection;
//! 4. **Parallelism** — tiles are distributed round-robin over scoped
//!    worker threads. [`partition_join`] funnels the results onto the
//!    calling thread in tile order (deterministic for every thread
//!    count); [`partition_join_workers`] instead hands each worker its
//!    own sink through the [`msj_geom::PairConsumer`] protocol, so the
//!    fused execution engine can run the downstream filter + exact steps
//!    right where the candidates are produced.
//!
//! [`PartitionStats`] surfaces per-tile candidate counts, replication and
//! dedup counters. [`GridIndex`] reuses the same grid for single-relation
//! point/window candidate lookups, making the grid a complete drop-in for
//! the R*-tree in Step 1 of both joins and selection queries.
//!
//! The candidate *set* is provably identical to any other MBR join: a
//! pair is emitted iff the rectangles intersect, and the reference point
//! of an intersecting pair lies in exactly one tile.

pub mod grid;
pub mod join;
pub mod stats;

pub use grid::{Grid, GridIndex};
pub use join::{
    partition_join, partition_join_cancellable_with, partition_join_with, partition_join_workers,
    partition_join_workers_observed, partition_join_workers_observed_with, tile_sweep,
    tile_sweep_with, SweepScratch,
};
pub use stats::PartitionStats;

//! Execution statistics of one partitioned join.

/// What one [`crate::partition_join`] execution did, including the
/// per-tile candidate counts that expose partitioning skew.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PartitionStats {
    /// Tiles per grid side (the grid has `tiles_per_axis²` tiles).
    pub tiles_per_axis: usize,
    /// Worker threads the tile sweeps actually ran on.
    pub threads: usize,
    /// Total `(rectangle, tile)` assignments of relation A (≥ |A|; the
    /// excess is replication).
    pub assignments_a: u64,
    /// Total `(rectangle, tile)` assignments of relation B.
    pub assignments_b: u64,
    /// |A| — to derive the replication factor.
    pub items_a: u64,
    /// |B|.
    pub items_b: u64,
    /// y-overlap tests across all tile sweeps (x-overlap is implied by
    /// the sweep order).
    pub pair_tests: u64,
    /// Sweep matches suppressed by the reference-point deduplication.
    pub dedup_skipped: u64,
    /// Candidates emitted per tile, in tile-major order.
    pub tile_candidates: Vec<u64>,
}

impl PartitionStats {
    /// Stats of a join over an empty side: no tiles ran.
    pub fn empty(tiles_per_axis: usize, threads: usize) -> Self {
        PartitionStats {
            tiles_per_axis: tiles_per_axis.max(1),
            threads,
            ..PartitionStats::default()
        }
    }

    /// Total candidate pairs emitted.
    pub fn candidates(&self) -> u64 {
        self.tile_candidates.iter().sum()
    }

    /// Tiles that emitted at least one candidate.
    pub fn nonempty_tiles(&self) -> usize {
        self.tile_candidates.iter().filter(|&&c| c > 0).count()
    }

    /// The busiest tile: `(tile index, candidates)`.
    pub fn busiest_tile(&self) -> Option<(usize, u64)> {
        self.tile_candidates
            .iter()
            .copied()
            .enumerate()
            .max_by_key(|&(i, c)| (c, std::cmp::Reverse(i)))
    }

    /// Extra copies of A's rectangles created by replication.
    pub fn replicated_a(&self) -> u64 {
        self.assignments_a.saturating_sub(self.items_a)
    }

    /// Extra copies of B's rectangles created by replication.
    pub fn replicated_b(&self) -> u64 {
        self.assignments_b.saturating_sub(self.items_b)
    }

    /// Mean tile assignments per input rectangle (1.0 = no replication).
    pub fn replication_factor(&self) -> f64 {
        let items = self.items_a + self.items_b;
        if items == 0 {
            1.0
        } else {
            (self.assignments_a + self.assignments_b) as f64 / items as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_quantities() {
        let stats = PartitionStats {
            tiles_per_axis: 2,
            threads: 4,
            assignments_a: 15,
            assignments_b: 12,
            items_a: 10,
            items_b: 12,
            pair_tests: 100,
            dedup_skipped: 5,
            tile_candidates: vec![3, 0, 7, 1],
        };
        assert_eq!(stats.candidates(), 11);
        assert_eq!(stats.nonempty_tiles(), 3);
        assert_eq!(stats.busiest_tile(), Some((2, 7)));
        assert_eq!(stats.replicated_a(), 5);
        assert_eq!(stats.replicated_b(), 0);
        assert!((stats.replication_factor() - 27.0 / 22.0).abs() < 1e-12);
    }

    #[test]
    fn empty_stats_are_sane() {
        let stats = PartitionStats::empty(0, 3);
        assert_eq!(stats.tiles_per_axis, 1);
        assert_eq!(stats.candidates(), 0);
        assert_eq!(stats.busiest_tile(), None);
        assert_eq!(stats.replication_factor(), 1.0);
    }
}

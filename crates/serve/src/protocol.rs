//! The length-prefixed wire protocol and the engine→wire mapping.
//!
//! Every frame is `[u32 len][body]`, little-endian, where `len` counts
//! the bytes after the length field itself.
//!
//! **Request body:** `[u64 request_id][u32 deadline_ms][u8 kind][payload]`
//! — `deadline_ms == 0` means no deadline; a nonzero value arms the
//! engine's cooperative [`msj_core::CancelToken`] the moment the frame
//! is admitted, so queue wait counts against the budget.
//!
//! **Response body:** `[u64 request_id][u8 status][payload]`.
//!
//! The `Ok` payload carries the *deterministic* projection of an engine
//! response: result ids/pairs, filter accounting and exact-geometry
//! operation counts. It deliberately excludes wall-clock nanoseconds
//! and simulated-buffer physical reads — those describe the serving
//! instance's momentary state (a warm LRU buffer reports fewer reads),
//! not the query's answer, and leaving them out is what makes the
//! protocol's headline guarantee testable: a completed response is
//! **byte-identical** however the request was scheduled, batched, or
//! retried. Instance-local measurement stays observable through the
//! engine's metrics registry and traces.

use msj_core::{EngineError, JoinResponse, Response, SelectionResponse};
use msj_exact::OpCounts;

/// Default cap on the size of one *request* frame body. Requests are
/// tiny (tens of bytes); anything larger is a confused or hostile
/// client and is rejected with [`WireStatus::FrameTooLarge`] before the
/// server buffers it.
pub const MAX_REQUEST_FRAME: u32 = 64 * 1024;

/// Cap a client enforces on *response* frames (joins can legitimately
/// carry large pair sets).
pub const MAX_RESPONSE_FRAME: u32 = 64 * 1024 * 1024;

/// Request kinds on the wire.
pub const KIND_JOIN: u8 = 1;
pub const KIND_SELF_JOIN: u8 = 2;
pub const KIND_POINT: u8 = 3;
pub const KIND_WINDOW: u8 = 4;
pub const KIND_METRICS: u8 = 5;

/// One request as it travels on the wire.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WireRequest {
    /// Client-chosen correlation id, echoed verbatim on the response.
    pub request_id: u64,
    /// Client-supplied deadline in milliseconds; `0` = none.
    pub deadline_ms: u32,
    pub body: WireRequestBody,
}

/// The request payload variants.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum WireRequestBody {
    /// Intersection join of two registered datasets.
    Join { a: u32, b: u32 },
    /// Intersection self-join of one dataset.
    SelfJoin { dataset: u32 },
    /// Point selection.
    Point { dataset: u32, x: f64, y: f64 },
    /// Window selection (`bounds = [xmin, ymin, xmax, ymax]`).
    Window { dataset: u32, bounds: [f64; 4] },
    /// Prometheus-style metrics exposition of the serving engine.
    Metrics,
}

impl WireRequest {
    /// A join request (no deadline).
    pub fn join(request_id: u64, a: u32, b: u32) -> Self {
        WireRequest {
            request_id,
            deadline_ms: 0,
            body: WireRequestBody::Join { a, b },
        }
    }

    /// A self-join request (no deadline).
    pub fn self_join(request_id: u64, dataset: u32) -> Self {
        WireRequest {
            request_id,
            deadline_ms: 0,
            body: WireRequestBody::SelfJoin { dataset },
        }
    }

    /// A point-selection request (no deadline).
    pub fn point(request_id: u64, dataset: u32, x: f64, y: f64) -> Self {
        WireRequest {
            request_id,
            deadline_ms: 0,
            body: WireRequestBody::Point { dataset, x, y },
        }
    }

    /// A window-selection request (no deadline).
    pub fn window(request_id: u64, dataset: u32, bounds: [f64; 4]) -> Self {
        WireRequest {
            request_id,
            deadline_ms: 0,
            body: WireRequestBody::Window { dataset, bounds },
        }
    }

    /// A metrics-exposition request.
    pub fn metrics(request_id: u64) -> Self {
        WireRequest {
            request_id,
            deadline_ms: 0,
            body: WireRequestBody::Metrics,
        }
    }

    /// Attaches a client deadline in milliseconds.
    pub fn with_deadline_ms(mut self, deadline_ms: u32) -> Self {
        self.deadline_ms = deadline_ms;
        self
    }

    /// The request-kind label used for metrics.
    pub fn kind_label(&self) -> &'static str {
        match self.body {
            WireRequestBody::Join { .. } => "join",
            WireRequestBody::SelfJoin { .. } => "self_join",
            WireRequestBody::Point { .. } => "point",
            WireRequestBody::Window { .. } => "window",
            WireRequestBody::Metrics => "metrics",
        }
    }
}

/// Response status byte. The numeric values are the wire protocol —
/// append-only, never reordered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum WireStatus {
    /// Completed answer; payload carries the deterministic projection.
    Ok = 0,
    /// 429-style load shed: the request was **not** executed; retry
    /// after the carried hint.
    Shed = 1,
    /// 503-style: the request outlived its deadline; payload carries the
    /// partial-work accounting.
    DeadlineExceeded = 2,
    /// The server is draining; the request was not accepted.
    Draining = 3,
    /// The request was cancelled (e.g. drain-deadline expiry cancelled
    /// in-flight work); payload carries partial-work accounting.
    Cancelled = 4,
    /// The request names a dataset the engine never registered.
    UnknownDataset = 5,
    /// A worker panicked mid-run; the engine stays serviceable.
    WorkerPanicked = 6,
    /// Raster verification failed and degraded mode is disabled.
    DegradedUnavailable = 7,
    /// The frame could not be parsed.
    BadRequest = 8,
    /// The declared frame length exceeds the server's cap.
    FrameTooLarge = 9,
    /// An error the protocol has no dedicated status for (a new engine
    /// error variant lands here rather than hanging the connection).
    Internal = 10,
}

impl WireStatus {
    /// Parses a status byte.
    pub fn from_u8(value: u8) -> Option<WireStatus> {
        Some(match value {
            0 => WireStatus::Ok,
            1 => WireStatus::Shed,
            2 => WireStatus::DeadlineExceeded,
            3 => WireStatus::Draining,
            4 => WireStatus::Cancelled,
            5 => WireStatus::UnknownDataset,
            6 => WireStatus::WorkerPanicked,
            7 => WireStatus::DegradedUnavailable,
            8 => WireStatus::BadRequest,
            9 => WireStatus::FrameTooLarge,
            10 => WireStatus::Internal,
            _ => return None,
        })
    }

    /// The status's stable display name.
    pub fn name(&self) -> &'static str {
        match self {
            WireStatus::Ok => "ok",
            WireStatus::Shed => "shed",
            WireStatus::DeadlineExceeded => "deadline_exceeded",
            WireStatus::Draining => "draining",
            WireStatus::Cancelled => "cancelled",
            WireStatus::UnknownDataset => "unknown_dataset",
            WireStatus::WorkerPanicked => "worker_panicked",
            WireStatus::DegradedUnavailable => "degraded_unavailable",
            WireStatus::BadRequest => "bad_request",
            WireStatus::FrameTooLarge => "frame_too_large",
            WireStatus::Internal => "internal",
        }
    }
}

/// Why a request was shed (carried in the [`ResponseBody::Shed`]
/// payload).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum ShedReason {
    /// The target queue is at its bound.
    QueueFull = 0,
    /// The §5 admission control refused the modeled cost.
    Admission = 1,
    /// The connection is at its in-flight cap.
    ConnCap = 2,
}

impl ShedReason {
    /// Parses a reason byte.
    pub fn from_u8(value: u8) -> Option<ShedReason> {
        Some(match value {
            0 => ShedReason::QueueFull,
            1 => ShedReason::Admission,
            2 => ShedReason::ConnCap,
            _ => return None,
        })
    }

    /// The stable `reason` label of `msj_request_shed_total`.
    pub fn label(&self) -> &'static str {
        match self {
            ShedReason::QueueFull => "queue_full",
            ShedReason::Admission => "admission",
            ShedReason::ConnCap => "conn_cap",
        }
    }
}

/// The deterministic join accounting carried on the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct JoinWireStats {
    pub candidates: u64,
    pub raster_hits: u64,
    pub raster_drops: u64,
    pub raster_inconclusive: u64,
    pub filter_false_hits: u64,
    pub filter_hits_progressive: u64,
    pub filter_hits_false_area: u64,
    pub exact_tests: u64,
    pub exact_hits: u64,
    pub result_pairs: u64,
}

/// The deterministic selection accounting carried on the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SelectionWireStats {
    pub candidates: u64,
    pub filter_false_hits: u64,
    pub filter_hits: u64,
    pub exact_tests: u64,
}

/// A decoded response payload.
#[derive(Debug, Clone, PartialEq)]
pub enum ResponseBody {
    /// Completed join.
    Join {
        pairs: Vec<(u32, u32)>,
        stats: JoinWireStats,
        ops: OpCounts,
    },
    /// Completed selection.
    Selection {
        ids: Vec<u32>,
        stats: SelectionWireStats,
        ops: OpCounts,
    },
    /// Completed text answer (metrics exposition).
    Text(String),
    Shed {
        retry_after_ms: u64,
        reason: ShedReason,
        /// Whether the §5 estimate behind `retry_after_ms` came from
        /// observed run history (`true`) or the a-priori model.
        from_history: bool,
    },
    DeadlineExceeded {
        elapsed_ms: u64,
        partial_candidates: u64,
    },
    Draining,
    Cancelled {
        partial_candidates: u64,
    },
    UnknownDataset {
        id: u32,
    },
    WorkerPanicked {
        worker: u32,
        message: String,
    },
    DegradedUnavailable {
        reason: String,
    },
    BadRequest {
        message: String,
    },
    FrameTooLarge {
        declared: u32,
    },
    Internal {
        message: String,
    },
}

impl ResponseBody {
    /// The status byte this payload travels under.
    pub fn status(&self) -> WireStatus {
        match self {
            ResponseBody::Join { .. } | ResponseBody::Selection { .. } | ResponseBody::Text(_) => {
                WireStatus::Ok
            }
            ResponseBody::Shed { .. } => WireStatus::Shed,
            ResponseBody::DeadlineExceeded { .. } => WireStatus::DeadlineExceeded,
            ResponseBody::Draining => WireStatus::Draining,
            ResponseBody::Cancelled { .. } => WireStatus::Cancelled,
            ResponseBody::UnknownDataset { .. } => WireStatus::UnknownDataset,
            ResponseBody::WorkerPanicked { .. } => WireStatus::WorkerPanicked,
            ResponseBody::DegradedUnavailable { .. } => WireStatus::DegradedUnavailable,
            ResponseBody::BadRequest { .. } => WireStatus::BadRequest,
            ResponseBody::FrameTooLarge { .. } => WireStatus::FrameTooLarge,
            ResponseBody::Internal { .. } => WireStatus::Internal,
        }
    }

    /// Whether this payload is a completed answer (vs. an explicit
    /// refusal or failure).
    pub fn is_ok(&self) -> bool {
        self.status() == WireStatus::Ok
    }
}

// ---------------------------------------------------------------------
// Encoding helpers
// ---------------------------------------------------------------------

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

fn put_ops(out: &mut Vec<u8>, ops: &OpCounts) {
    for v in [
        ops.edge_intersection,
        ops.edge_line,
        ops.position,
        ops.edge_rect,
        ops.rect_rect,
        ops.trapezoid,
        ops.pip_performed,
        ops.pip_skipped,
    ] {
        put_u64(out, v);
    }
}

/// A bounds-checked little-endian reader over one frame body.
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], String> {
        if self.buf.len() - self.pos < n {
            return Err(format!(
                "truncated frame: wanted {n} bytes at offset {}, have {}",
                self.pos,
                self.buf.len() - self.pos
            ));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, String> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, String> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, String> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn f64(&mut self) -> Result<f64, String> {
        Ok(f64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn str(&mut self) -> Result<String, String> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| "invalid utf-8 in frame".to_string())
    }

    fn ops(&mut self) -> Result<OpCounts, String> {
        Ok(OpCounts {
            edge_intersection: self.u64()?,
            edge_line: self.u64()?,
            position: self.u64()?,
            edge_rect: self.u64()?,
            rect_rect: self.u64()?,
            trapezoid: self.u64()?,
            pip_performed: self.u64()?,
            pip_skipped: self.u64()?,
        })
    }

    fn finish(self) -> Result<(), String> {
        if self.pos != self.buf.len() {
            return Err(format!(
                "{} trailing bytes after frame payload",
                self.buf.len() - self.pos
            ));
        }
        Ok(())
    }
}

/// Encodes a request into a complete frame (length prefix included).
pub fn encode_request(req: &WireRequest) -> Vec<u8> {
    let mut body = Vec::with_capacity(32);
    put_u64(&mut body, req.request_id);
    put_u32(&mut body, req.deadline_ms);
    match req.body {
        WireRequestBody::Join { a, b } => {
            body.push(KIND_JOIN);
            put_u32(&mut body, a);
            put_u32(&mut body, b);
        }
        WireRequestBody::SelfJoin { dataset } => {
            body.push(KIND_SELF_JOIN);
            put_u32(&mut body, dataset);
        }
        WireRequestBody::Point { dataset, x, y } => {
            body.push(KIND_POINT);
            put_u32(&mut body, dataset);
            put_f64(&mut body, x);
            put_f64(&mut body, y);
        }
        WireRequestBody::Window { dataset, bounds } => {
            body.push(KIND_WINDOW);
            put_u32(&mut body, dataset);
            for v in bounds {
                put_f64(&mut body, v);
            }
        }
        WireRequestBody::Metrics => body.push(KIND_METRICS),
    }
    let mut frame = Vec::with_capacity(body.len() + 4);
    put_u32(&mut frame, body.len() as u32);
    frame.extend_from_slice(&body);
    frame
}

/// Decodes one request frame body (the bytes after the length prefix).
pub fn decode_request(body: &[u8]) -> Result<WireRequest, String> {
    let mut r = Reader::new(body);
    let request_id = r.u64()?;
    let deadline_ms = r.u32()?;
    let kind = r.u8()?;
    let body = match kind {
        KIND_JOIN => WireRequestBody::Join {
            a: r.u32()?,
            b: r.u32()?,
        },
        KIND_SELF_JOIN => WireRequestBody::SelfJoin { dataset: r.u32()? },
        KIND_POINT => WireRequestBody::Point {
            dataset: r.u32()?,
            x: r.f64()?,
            y: r.f64()?,
        },
        KIND_WINDOW => WireRequestBody::Window {
            dataset: r.u32()?,
            bounds: [r.f64()?, r.f64()?, r.f64()?, r.f64()?],
        },
        KIND_METRICS => WireRequestBody::Metrics,
        other => return Err(format!("unknown request kind {other}")),
    };
    r.finish()?;
    Ok(WireRequest {
        request_id,
        deadline_ms,
        body,
    })
}

/// Encodes a response into a complete frame (length prefix included).
pub fn encode_response(request_id: u64, body: &ResponseBody) -> Vec<u8> {
    let mut payload = Vec::with_capacity(64);
    put_u64(&mut payload, request_id);
    payload.push(body.status() as u8);
    match body {
        ResponseBody::Join { pairs, stats, ops } => {
            payload.push(0); // shape: join
            put_u64(&mut payload, pairs.len() as u64);
            for &(a, b) in pairs {
                put_u32(&mut payload, a);
                put_u32(&mut payload, b);
            }
            for v in [
                stats.candidates,
                stats.raster_hits,
                stats.raster_drops,
                stats.raster_inconclusive,
                stats.filter_false_hits,
                stats.filter_hits_progressive,
                stats.filter_hits_false_area,
                stats.exact_tests,
                stats.exact_hits,
                stats.result_pairs,
            ] {
                put_u64(&mut payload, v);
            }
            put_ops(&mut payload, ops);
        }
        ResponseBody::Selection { ids, stats, ops } => {
            payload.push(1); // shape: selection
            put_u64(&mut payload, ids.len() as u64);
            for &id in ids {
                put_u32(&mut payload, id);
            }
            for v in [
                stats.candidates,
                stats.filter_false_hits,
                stats.filter_hits,
                stats.exact_tests,
            ] {
                put_u64(&mut payload, v);
            }
            put_ops(&mut payload, ops);
        }
        ResponseBody::Text(text) => {
            payload.push(2); // shape: text
            put_str(&mut payload, text);
        }
        ResponseBody::Shed {
            retry_after_ms,
            reason,
            from_history,
        } => {
            put_u64(&mut payload, *retry_after_ms);
            payload.push(*reason as u8);
            payload.push(u8::from(*from_history));
        }
        ResponseBody::DeadlineExceeded {
            elapsed_ms,
            partial_candidates,
        } => {
            put_u64(&mut payload, *elapsed_ms);
            put_u64(&mut payload, *partial_candidates);
        }
        ResponseBody::Draining => {}
        ResponseBody::Cancelled { partial_candidates } => {
            put_u64(&mut payload, *partial_candidates);
        }
        ResponseBody::UnknownDataset { id } => put_u32(&mut payload, *id),
        ResponseBody::WorkerPanicked { worker, message } => {
            put_u32(&mut payload, *worker);
            put_str(&mut payload, message);
        }
        ResponseBody::DegradedUnavailable { reason } => put_str(&mut payload, reason),
        ResponseBody::BadRequest { message } => put_str(&mut payload, message),
        ResponseBody::FrameTooLarge { declared } => put_u32(&mut payload, *declared),
        ResponseBody::Internal { message } => put_str(&mut payload, message),
    }
    let mut frame = Vec::with_capacity(payload.len() + 4);
    put_u32(&mut frame, payload.len() as u32);
    frame.extend_from_slice(&payload);
    frame
}

/// Decodes one response frame body (the bytes after the length prefix).
pub fn decode_response(body: &[u8]) -> Result<(u64, ResponseBody), String> {
    let mut r = Reader::new(body);
    let request_id = r.u64()?;
    let status = WireStatus::from_u8(r.u8()?).ok_or_else(|| "unknown status byte".to_string())?;
    let parsed = match status {
        WireStatus::Ok => match r.u8()? {
            0 => {
                let n = r.u64()? as usize;
                let mut pairs = Vec::with_capacity(n);
                for _ in 0..n {
                    pairs.push((r.u32()?, r.u32()?));
                }
                let stats = JoinWireStats {
                    candidates: r.u64()?,
                    raster_hits: r.u64()?,
                    raster_drops: r.u64()?,
                    raster_inconclusive: r.u64()?,
                    filter_false_hits: r.u64()?,
                    filter_hits_progressive: r.u64()?,
                    filter_hits_false_area: r.u64()?,
                    exact_tests: r.u64()?,
                    exact_hits: r.u64()?,
                    result_pairs: r.u64()?,
                };
                let ops = r.ops()?;
                ResponseBody::Join { pairs, stats, ops }
            }
            1 => {
                let n = r.u64()? as usize;
                let mut ids = Vec::with_capacity(n);
                for _ in 0..n {
                    ids.push(r.u32()?);
                }
                let stats = SelectionWireStats {
                    candidates: r.u64()?,
                    filter_false_hits: r.u64()?,
                    filter_hits: r.u64()?,
                    exact_tests: r.u64()?,
                };
                let ops = r.ops()?;
                ResponseBody::Selection { ids, stats, ops }
            }
            2 => ResponseBody::Text(r.str()?),
            other => return Err(format!("unknown ok-shape byte {other}")),
        },
        WireStatus::Shed => ResponseBody::Shed {
            retry_after_ms: r.u64()?,
            reason: ShedReason::from_u8(r.u8()?)
                .ok_or_else(|| "unknown shed reason".to_string())?,
            from_history: r.u8()? != 0,
        },
        WireStatus::DeadlineExceeded => ResponseBody::DeadlineExceeded {
            elapsed_ms: r.u64()?,
            partial_candidates: r.u64()?,
        },
        WireStatus::Draining => ResponseBody::Draining,
        WireStatus::Cancelled => ResponseBody::Cancelled {
            partial_candidates: r.u64()?,
        },
        WireStatus::UnknownDataset => ResponseBody::UnknownDataset { id: r.u32()? },
        WireStatus::WorkerPanicked => ResponseBody::WorkerPanicked {
            worker: r.u32()?,
            message: r.str()?,
        },
        WireStatus::DegradedUnavailable => ResponseBody::DegradedUnavailable { reason: r.str()? },
        WireStatus::BadRequest => ResponseBody::BadRequest { message: r.str()? },
        WireStatus::FrameTooLarge => ResponseBody::FrameTooLarge { declared: r.u32()? },
        WireStatus::Internal => ResponseBody::Internal { message: r.str()? },
    };
    r.finish()?;
    Ok((request_id, parsed))
}

// ---------------------------------------------------------------------
// Engine → wire mapping
// ---------------------------------------------------------------------

/// The exhaustive [`EngineError::kind`] → [`WireStatus`] table. `None`
/// for a kind this protocol version does not know — the server then
/// answers [`WireStatus::Internal`] (an explicit response, never a hung
/// connection), and the completeness test over
/// [`EngineError::ALL_KINDS`] fails until the table learns the variant.
pub fn wire_status_for_kind(kind: &str) -> Option<WireStatus> {
    Some(match kind {
        "unknown_dataset" => WireStatus::UnknownDataset,
        "admission_denied" => WireStatus::Shed,
        "deadline_exceeded" => WireStatus::DeadlineExceeded,
        "cancelled" => WireStatus::Cancelled,
        "worker_panicked" => WireStatus::WorkerPanicked,
        "degraded_unavailable" => WireStatus::DegradedUnavailable,
        _ => return None,
    })
}

/// The retry-after hint derived from a §5 cost estimate: the modeled
/// seconds of one request, multiplied by how many requests sit ahead of
/// the retry (the queue the client would re-enter), clamped to
/// `[1 ms, 60 s]`.
pub fn retry_after_ms(estimated_s: f64, pending_ahead: u64) -> u64 {
    let per = (estimated_s * 1000.0).ceil().max(1.0) as u64;
    per.saturating_mul(pending_ahead + 1).clamp(1, 60_000)
}

/// The deterministic wire projection of a completed join.
pub fn join_body(resp: &JoinResponse) -> ResponseBody {
    ResponseBody::Join {
        pairs: resp.pairs.clone(),
        stats: JoinWireStats {
            candidates: resp.stats.mbr_join.candidates,
            raster_hits: resp.stats.raster_hits,
            raster_drops: resp.stats.raster_drops,
            raster_inconclusive: resp.stats.raster_inconclusive,
            filter_false_hits: resp.stats.filter_false_hits,
            filter_hits_progressive: resp.stats.filter_hits_progressive,
            filter_hits_false_area: resp.stats.filter_hits_false_area,
            exact_tests: resp.stats.exact_tests,
            exact_hits: resp.stats.exact_hits,
            result_pairs: resp.stats.result_pairs,
        },
        ops: resp.stats.exact_ops,
    }
}

/// The deterministic wire projection of a completed selection.
pub fn selection_body(resp: &SelectionResponse) -> ResponseBody {
    ResponseBody::Selection {
        ids: resp.ids.clone(),
        stats: SelectionWireStats {
            candidates: resp.stats.candidates,
            filter_false_hits: resp.stats.filter_false_hits,
            filter_hits: resp.stats.filter_hits,
            exact_tests: resp.stats.exact_tests,
        },
        ops: resp.exact_ops,
    }
}

/// The canonical engine-result → wire-payload mapping — the byte-identity
/// anchor: tests encode an in-process [`msj_core::SpatialEngine::submit`]
/// result through this function and compare the frames a live server
/// produced against it.
pub fn response_body_for(result: &Result<Response, EngineError>) -> ResponseBody {
    match result {
        Ok(Response::Join(resp)) => join_body(resp),
        Ok(Response::Selection(resp)) => selection_body(resp),
        Err(err) => error_body(err),
    }
}

/// Maps an [`EngineError`] onto its wire payload. Every *known* kind
/// maps per [`wire_status_for_kind`]; an unknown future variant becomes
/// an explicit [`ResponseBody::Internal`] so it can never hang a
/// connection.
pub fn error_body(err: &EngineError) -> ResponseBody {
    match err {
        EngineError::UnknownDataset(id) => ResponseBody::UnknownDataset { id: *id },
        EngineError::AdmissionDenied {
            estimated_s,
            from_history,
            ..
        } => ResponseBody::Shed {
            retry_after_ms: retry_after_ms(*estimated_s, 0),
            reason: ShedReason::Admission,
            from_history: *from_history,
        },
        EngineError::DeadlineExceeded {
            elapsed,
            partial_candidates,
        } => ResponseBody::DeadlineExceeded {
            elapsed_ms: elapsed.as_millis() as u64,
            partial_candidates: *partial_candidates,
        },
        EngineError::Cancelled { partial_candidates } => ResponseBody::Cancelled {
            partial_candidates: *partial_candidates,
        },
        EngineError::WorkerPanicked { worker, message } => ResponseBody::WorkerPanicked {
            worker: *worker as u32,
            message: message.clone(),
        },
        EngineError::DegradedUnavailable { reason } => ResponseBody::DegradedUnavailable {
            reason: (*reason).to_string(),
        },
        // #[non_exhaustive] forward-compatibility seam: a variant this
        // protocol version does not know still gets an explicit,
        // decodable response. The ALL_KINDS completeness test fails
        // until the mapping above (and the status table) learn it.
        other => ResponseBody::Internal {
            message: format!("{}: {other}", other.kind()),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn roundtrip_request(req: WireRequest) {
        let frame = encode_request(&req);
        let len = u32::from_le_bytes(frame[..4].try_into().unwrap()) as usize;
        assert_eq!(len + 4, frame.len());
        let decoded = decode_request(&frame[4..]).expect("decodes");
        assert_eq!(decoded, req);
    }

    #[test]
    fn requests_roundtrip() {
        roundtrip_request(WireRequest::join(1, 0, 1).with_deadline_ms(250));
        roundtrip_request(WireRequest::self_join(u64::MAX, 7));
        roundtrip_request(WireRequest::point(2, 3, 1.5, -2.5));
        roundtrip_request(WireRequest::window(3, 4, [0.0, 1.0, 2.0, 3.0]));
        roundtrip_request(WireRequest::metrics(9));
    }

    #[test]
    fn responses_roundtrip() {
        let bodies = vec![
            ResponseBody::Join {
                pairs: vec![(1, 2), (3, 4)],
                stats: JoinWireStats {
                    candidates: 10,
                    exact_tests: 3,
                    result_pairs: 2,
                    ..JoinWireStats::default()
                },
                ops: OpCounts {
                    edge_intersection: 5,
                    ..OpCounts::default()
                },
            },
            ResponseBody::Selection {
                ids: vec![4, 7, 9],
                stats: SelectionWireStats {
                    candidates: 5,
                    filter_false_hits: 1,
                    filter_hits: 2,
                    exact_tests: 2,
                },
                ops: OpCounts::default(),
            },
            ResponseBody::Text("msj_queue_depth 0\n".to_string()),
            ResponseBody::Shed {
                retry_after_ms: 125,
                reason: ShedReason::QueueFull,
                from_history: true,
            },
            ResponseBody::DeadlineExceeded {
                elapsed_ms: 40,
                partial_candidates: 17,
            },
            ResponseBody::Draining,
            ResponseBody::Cancelled {
                partial_candidates: 3,
            },
            ResponseBody::UnknownDataset { id: 42 },
            ResponseBody::WorkerPanicked {
                worker: 1,
                message: "boom".into(),
            },
            ResponseBody::DegradedUnavailable {
                reason: "raster_checksum".into(),
            },
            ResponseBody::BadRequest {
                message: "unknown request kind 99".into(),
            },
            ResponseBody::FrameTooLarge { declared: 1 << 30 },
            ResponseBody::Internal {
                message: "novel".into(),
            },
        ];
        for body in bodies {
            let frame = encode_response(77, &body);
            let len = u32::from_le_bytes(frame[..4].try_into().unwrap()) as usize;
            assert_eq!(len + 4, frame.len());
            let (id, decoded) = decode_response(&frame[4..]).expect("decodes");
            assert_eq!(id, 77);
            assert_eq!(decoded, body, "roundtrip of {body:?}");
        }
    }

    #[test]
    fn truncated_and_trailing_bytes_are_rejected() {
        let frame = encode_response(1, &ResponseBody::Draining);
        assert!(decode_response(&frame[4..frame.len() - 1]).is_err() || frame.len() == 13);
        let mut padded = frame[4..].to_vec();
        padded.push(0);
        assert!(decode_response(&padded).is_err());
        assert!(decode_request(&[1, 2, 3]).is_err());
    }

    /// Satellite: the mapping table must know **every** `EngineError`
    /// kind. A new `#[non_exhaustive]` variant fails here (its kind is
    /// in `ALL_KINDS`, the table returns `None`) until it is mapped —
    /// it cannot silently become a connection hang.
    #[test]
    fn every_engine_error_kind_is_mapped_to_a_wire_status() {
        for kind in EngineError::ALL_KINDS {
            assert!(
                wire_status_for_kind(kind).is_some(),
                "EngineError kind {kind:?} has no wire-status mapping; \
                 extend wire_status_for_kind and error_body"
            );
        }
        // And the value-level mapping agrees with the table on every
        // constructible variant.
        let samples = vec![
            EngineError::UnknownDataset(3),
            EngineError::AdmissionDenied {
                estimated_s: 1.25,
                limit_s: 0.5,
                from_history: true,
            },
            EngineError::DeadlineExceeded {
                elapsed: Duration::from_millis(30),
                partial_candidates: 11,
            },
            EngineError::Cancelled {
                partial_candidates: 2,
            },
            EngineError::WorkerPanicked {
                worker: 0,
                message: "boom".into(),
            },
            EngineError::DegradedUnavailable {
                reason: "raster_checksum",
            },
        ];
        assert_eq!(samples.len(), EngineError::ALL_KINDS.len());
        for err in samples {
            let body = error_body(&err);
            assert_eq!(
                Some(body.status()),
                wire_status_for_kind(err.kind()),
                "error_body and wire_status_for_kind disagree on {err:?}"
            );
        }
    }

    #[test]
    fn admission_denied_maps_to_shed_with_estimate_derived_retry_after() {
        let err = EngineError::AdmissionDenied {
            estimated_s: 0.125,
            limit_s: 0.01,
            from_history: true,
        };
        match error_body(&err) {
            ResponseBody::Shed {
                retry_after_ms: ms,
                reason,
                from_history,
            } => {
                assert_eq!(ms, 125);
                assert_eq!(reason, ShedReason::Admission);
                assert!(from_history);
            }
            other => panic!("expected Shed, got {other:?}"),
        }
    }

    #[test]
    fn retry_after_scales_with_queue_depth_and_clamps() {
        assert_eq!(retry_after_ms(0.0, 0), 1);
        assert_eq!(retry_after_ms(0.010, 0), 10);
        assert_eq!(retry_after_ms(0.010, 4), 50);
        assert_eq!(retry_after_ms(120.0, 0), 60_000);
        assert_eq!(retry_after_ms(f64::INFINITY, 3), 60_000);
    }
}

//! A small blocking client for the serving protocol — used by the
//! integration tests, the chaos suite, and the load-generator example.
//!
//! The client keeps the **raw response frame** next to the decoded
//! body: byte-identity tests compare that frame against the encoding of
//! an in-process engine submit without re-serializing anything.

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

use crate::protocol::{
    decode_response, encode_request, ResponseBody, WireRequest, MAX_RESPONSE_FRAME,
};

/// One decoded response plus the exact bytes it arrived as.
#[derive(Debug, Clone, PartialEq)]
pub struct WireReply {
    pub request_id: u64,
    pub body: ResponseBody,
    /// The complete frame (length prefix included) as received.
    pub frame: Vec<u8>,
}

/// A blocking connection to a [`crate::Server`].
pub struct Client {
    stream: TcpStream,
}

impl Client {
    /// Connects with a 10-second read timeout — a client must never
    /// hang forever on a dropped reply.
    pub fn connect(addr: SocketAddr) -> io::Result<Client> {
        Client::connect_with_timeout(addr, Duration::from_secs(10))
    }

    /// Connects with an explicit read timeout.
    pub fn connect_with_timeout(addr: SocketAddr, read_timeout: Duration) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_read_timeout(Some(read_timeout))?;
        let _ = stream.set_nodelay(true);
        Ok(Client { stream })
    }

    /// Sends one request frame (does not wait for the reply — pipelining
    /// is how load tests oversubscribe the queues).
    pub fn send(&mut self, request: &WireRequest) -> io::Result<()> {
        self.stream.write_all(&encode_request(request))
    }

    /// Sends arbitrary bytes — protocol-violation tests only.
    pub fn send_raw(&mut self, bytes: &[u8]) -> io::Result<()> {
        self.stream.write_all(bytes)
    }

    /// Reads one response frame. EOF before or inside a frame returns
    /// `UnexpectedEof` — the caller decides whether that was an injected
    /// fault or a real failure.
    pub fn recv(&mut self) -> io::Result<WireReply> {
        let mut len_bytes = [0u8; 4];
        self.stream.read_exact(&mut len_bytes)?;
        let len = u32::from_le_bytes(len_bytes);
        if len > MAX_RESPONSE_FRAME {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("response frame of {len} bytes exceeds the client cap"),
            ));
        }
        let mut body = vec![0u8; len as usize];
        self.stream.read_exact(&mut body)?;
        let (request_id, decoded) =
            decode_response(&body).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
        let mut frame = Vec::with_capacity(4 + body.len());
        frame.extend_from_slice(&len_bytes);
        frame.extend_from_slice(&body);
        Ok(WireReply {
            request_id,
            body: decoded,
            frame,
        })
    }

    /// One request, one reply.
    pub fn call(&mut self, request: &WireRequest) -> io::Result<WireReply> {
        self.send(request)?;
        self.recv()
    }
}

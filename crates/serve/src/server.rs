//! The serving front: a readiness event loop over nonblocking sockets,
//! a bounded-queue admission gate, a worker pool that batches
//! same-dataset probes, and a graceful drain path.
//!
//! One thread owns every socket (accept, read, frame parse, admission,
//! response write); `workers` threads pull admitted jobs from the
//! bounded [`QueueSet`] and run them through the engine. Workers hand
//! fully encoded response frames back through a completion list plus a
//! wake pipe, so the socket thread never blocks on the engine and the
//! engine threads never touch a socket.
//!
//! Admission happens *before* a request costs anything: draining, frame
//! and dataset validation, the per-connection in-flight cap, and the
//! bounded queue are all checked on the event loop, and every refusal
//! is an explicit wire response carrying a §5-derived `retry_after_ms`
//! where retrying makes sense. Nothing is ever silently dropped: every
//! admitted request is answered exactly once, or its connection is
//! closed by an injected fault — never neither.

use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::os::unix::net::UnixStream;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use msj_core::{Request, SpatialEngine};
use msj_fault::{FaultConfig, FaultSession, WireAction};
use msj_geom::{CancelToken, Point, Rect};
use msj_obs::MetricsRegistry;

use crate::poll::{new_poller, Event, Poller};
use crate::protocol::{
    decode_request, encode_response, response_body_for, retry_after_ms, selection_body,
    ResponseBody, ShedReason, WireRequestBody, MAX_REQUEST_FRAME,
};
use crate::queue::{Job, QueueKey, QueueSet};

/// Server tuning knobs. Every field is plain data with a sensible
/// default; construct with struct-update syntax.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address; port 0 picks an ephemeral port (read it back via
    /// [`Server::addr`]).
    pub addr: String,
    /// Engine worker threads pulling from the queues.
    pub workers: usize,
    /// Per-dataset-pair queue bound; a full queue sheds.
    pub queue_bound: usize,
    /// Largest same-kind selection run popped as one shared descent.
    pub batch_max: usize,
    /// Largest accepted request-frame body, in bytes.
    pub max_frame: u32,
    /// Per-connection cap on admitted-but-unanswered requests.
    pub conn_inflight_cap: usize,
    /// How long a partially received frame may stall before the
    /// connection is closed.
    pub read_timeout: Duration,
    /// How long a pending response may go without write progress before
    /// the connection is closed.
    pub write_timeout: Duration,
    /// How long a quiet connection (no pending work either way) is kept.
    pub idle_timeout: Duration,
    /// Budget for [`Server::shutdown`] to complete queued and in-flight
    /// work before queued jobs are answered `Draining` and running ones
    /// are cancelled.
    pub drain_deadline: Duration,
    /// Wire fault plan for chaos tests; when disabled, falls back to
    /// `MSJ_FAULT_PLAN`/`MSJ_FAULT_SEED`.
    pub fault: FaultConfig,
    /// Forces the portable scan poller (also `MSJ_SERVE_POLLER=scan`).
    pub force_scan_poller: bool,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 2,
            queue_bound: 64,
            batch_max: 16,
            max_frame: MAX_REQUEST_FRAME,
            conn_inflight_cap: 64,
            read_timeout: Duration::from_secs(5),
            write_timeout: Duration::from_secs(5),
            idle_timeout: Duration::from_secs(120),
            drain_deadline: Duration::from_secs(10),
            fault: FaultConfig::disabled(),
            force_scan_poller: false,
        }
    }
}

/// What the drain accomplished, reported by [`Server::join`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DrainReport {
    /// Whether every admitted request was answered and flushed within
    /// the drain deadline (plus a short cancellation grace).
    pub clean: bool,
    /// Queued jobs answered `Draining` because the deadline passed.
    pub abandoned_queued: usize,
    /// In-flight requests cancelled when the deadline passed.
    pub cancelled_inflight: usize,
}

/// Extra slack granted after the drain deadline for cancelled work to
/// unwind cooperatively before the loop force-exits.
const DRAIN_GRACE: Duration = Duration::from_secs(5);

/// Poll timeout: bounds wake latency for timeouts and drain checks.
const TICK_MS: i32 = 50;

const TOKEN_LISTENER: u64 = 0;
const TOKEN_WAKE: u64 = 1;
const TOKEN_FIRST_CONN: u64 = 2;

/// One encoded response frame routed back to a connection.
struct Completion {
    conn: u64,
    frame: Vec<u8>,
    /// Admission-time anchor of the e2e latency sample; `None` for
    /// responses synthesized outside the admitted path.
    received: Option<Instant>,
}

/// State shared between the event loop, the workers, and [`Server`]
/// handles.
struct Shared {
    engine: Arc<SpatialEngine>,
    queues: QueueSet,
    completions: Mutex<Vec<Completion>>,
    /// Cancel tokens of requests a worker is executing right now, so the
    /// drain deadline can cancel them through the one token path.
    executing: Mutex<HashMap<u64, CancelToken>>,
    next_exec: AtomicUsize,
    /// Requests admitted and not yet answered (queued + executing +
    /// completion pending).
    inflight: AtomicUsize,
    shutdown: AtomicBool,
    wake: UnixStream,
}

impl Shared {
    fn registry(&self) -> &MetricsRegistry {
        self.engine.metrics()
    }

    fn wake(&self) {
        let _ = (&self.wake).write(&[1]);
    }

    fn publish_depths(&self) {
        let (join, select) = self.queues.depths();
        let reg = self.registry();
        reg.gauge("msj_queue_depth", &[("queue", "join")])
            .set(join as f64);
        reg.gauge("msj_queue_depth", &[("queue", "selection")])
            .set(select as f64);
    }

    fn count_shed(&self, reason: ShedReason) {
        self.registry()
            .counter("msj_request_shed_total", &[("reason", reason.label())])
            .inc();
    }
}

/// A running server. Dropping the handle does **not** stop it; call
/// [`Server::shutdown`] then [`Server::join`].
pub struct Server {
    addr: SocketAddr,
    shared: Arc<Shared>,
    handle: Option<JoinHandle<DrainReport>>,
}

impl Server {
    /// Binds, spawns the event loop and the worker pool, and returns
    /// once the listener is accepting.
    pub fn start(engine: Arc<SpatialEngine>, config: ServeConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let (wake_rx, wake_tx) = UnixStream::pair()?;
        wake_rx.set_nonblocking(true)?;
        wake_tx.set_nonblocking(true)?;

        describe_metrics(engine.metrics());
        let shared = Arc::new(Shared {
            engine,
            queues: QueueSet::new(config.queue_bound, config.batch_max),
            completions: Mutex::new(Vec::new()),
            executing: Mutex::new(HashMap::new()),
            next_exec: AtomicUsize::new(0),
            inflight: AtomicUsize::new(0),
            shutdown: AtomicBool::new(false),
            wake: wake_tx,
        });

        let workers: Vec<JoinHandle<()>> = (0..config.workers.max(1))
            .map(|_| {
                let shared = shared.clone();
                std::thread::spawn(move || worker_loop(&shared))
            })
            .collect();

        let handle = {
            let shared = shared.clone();
            let config = config.clone();
            std::thread::spawn(move || {
                let mut state = EventLoop::new(listener, wake_rx, shared, config, workers);
                state.run()
            })
        };

        Ok(Server {
            addr,
            shared,
            handle: Some(handle),
        })
    }

    /// The bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Starts a graceful drain: the listener closes, queued and
    /// in-flight requests complete, new requests answer `Draining`.
    /// Idempotent; returns immediately.
    pub fn shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::Release);
        self.shared.wake();
    }

    /// Waits for the drain to finish and reports what it took.
    pub fn join(mut self) -> DrainReport {
        let handle = self.handle.take().expect("join called once");
        handle.join().unwrap_or(DrainReport {
            clean: false,
            abandoned_queued: 0,
            cancelled_inflight: 0,
        })
    }
}

/// Pre-registers every serving metric family so the Prometheus
/// exposition shows them (at zero) from the first scrape.
fn describe_metrics(reg: &MetricsRegistry) {
    reg.describe(
        "msj_queue_depth",
        "Requests waiting in the bounded serving queues, by queue kind.",
    );
    reg.describe(
        "msj_queue_wait_nanos",
        "Time admitted requests spent queued before a worker picked them up.",
    );
    reg.describe(
        "msj_request_shed_total",
        "Requests refused with a Shed response, by reason.",
    );
    reg.describe(
        "msj_conn_timeouts_total",
        "Connections closed by the read/write/idle timeout sweeps.",
    );
    reg.describe("msj_connections_total", "Connections ever accepted.");
    reg.describe("msj_connections_open", "Connections open right now.");
    reg.describe(
        "msj_frames_rejected_total",
        "Request frames refused before admission, by reason.",
    );
    reg.describe(
        "msj_serve_batch_size",
        "Jobs dispatched per worker pull (selection runs batch).",
    );
    reg.describe(
        "msj_serve_e2e_nanos",
        "Admission-to-response-enqueue latency per served request.",
    );
    reg.describe(
        "msj_draining_responses_total",
        "Requests answered Draining during shutdown.",
    );
    reg.describe(
        "msj_serve_requests_total",
        "Requests admitted into the serving queues, by kind.",
    );
    for queue in ["join", "selection"] {
        reg.gauge("msj_queue_depth", &[("queue", queue)]).set(0.0);
    }
    reg.histogram("msj_queue_wait_nanos", &[]);
    for reason in ["queue_full", "admission", "conn_cap"] {
        reg.counter("msj_request_shed_total", &[("reason", reason)]);
    }
    for kind in ["read", "write", "idle"] {
        reg.counter("msj_conn_timeouts_total", &[("kind", kind)]);
    }
    reg.counter("msj_connections_total", &[]);
    reg.gauge("msj_connections_open", &[]).set(0.0);
    for reason in ["too_large", "malformed"] {
        reg.counter("msj_frames_rejected_total", &[("reason", reason)]);
    }
    reg.histogram("msj_serve_batch_size", &[]);
    reg.histogram("msj_serve_e2e_nanos", &[]);
    reg.counter("msj_draining_responses_total", &[]);
}

// ---------------------------------------------------------------------
// Worker pool
// ---------------------------------------------------------------------

fn worker_loop(shared: &Shared) {
    let reg = shared.registry();
    let mut batch: Vec<Job> = Vec::new();
    loop {
        batch.clear();
        let Some(key) = shared.queues.pop_batch(&mut batch) else {
            return;
        };
        shared.publish_depths();
        let picked = Instant::now();
        for job in &batch {
            reg.histogram("msj_queue_wait_nanos", &[])
                .record(picked.duration_since(job.received).as_nanos() as u64);
        }
        reg.histogram("msj_serve_batch_size", &[])
            .record(batch.len() as u64);

        let mut done: Vec<Completion> = Vec::with_capacity(batch.len());
        match key {
            QueueKey::Join(..) => {
                let job = batch.pop().expect("join batches hold one job");
                done.push(run_join(shared, job));
            }
            QueueKey::Select(dataset) => {
                run_selection_batch(shared, dataset, &mut batch, &mut done)
            }
        }
        for c in &done {
            if let Some(received) = c.received {
                reg.histogram("msj_serve_e2e_nanos", &[])
                    .record(received.elapsed().as_nanos() as u64);
            }
        }
        shared.completions.lock().expect("completions").extend(done);
        shared.wake();
    }
}

fn run_join(shared: &Shared, job: Job) -> Completion {
    let request = match job.body {
        WireRequestBody::Join { a, b } => Request::Join {
            a,
            b,
            execution: None,
        },
        WireRequestBody::SelfJoin { dataset } => Request::SelfJoin {
            dataset,
            execution: None,
        },
        ref other => unreachable!("join queue held {other:?}"),
    };
    // Park the token where the drain deadline can reach it, run, unpark.
    let slot = shared.next_exec.fetch_add(1, Ordering::Relaxed) as u64;
    shared
        .executing
        .lock()
        .expect("executing")
        .insert(slot, job.cancel.clone());
    let result = shared.engine.submit_with_cancel(request, &job.cancel);
    shared.executing.lock().expect("executing").remove(&slot);

    let body = response_body_for(&result);
    if let ResponseBody::Shed { reason, .. } = body {
        // Engine-side §5 admission refusals surface as wire sheds; keep
        // the shed counter complete across both shed sites.
        shared.count_shed(reason);
    }
    Completion {
        conn: job.conn,
        frame: encode_response(job.request_id, &body),
        received: Some(job.received),
    }
}

fn run_selection_batch(
    shared: &Shared,
    dataset: u32,
    batch: &mut Vec<Job>,
    done: &mut Vec<Completion>,
) {
    // Jobs whose deadline expired while queued answer without touching
    // the engine — the partial-work accounting is zero by construction.
    let mut live: Vec<Job> = Vec::with_capacity(batch.len());
    for job in batch.drain(..) {
        if job.cancel.is_cancelled() {
            let body = match job.cancel.reason() {
                Some(msj_geom::CancelReason::DeadlineExpired) => ResponseBody::DeadlineExceeded {
                    elapsed_ms: job.cancel.elapsed().as_millis() as u64,
                    partial_candidates: 0,
                },
                _ => ResponseBody::Cancelled {
                    partial_candidates: 0,
                },
            };
            done.push(Completion {
                conn: job.conn,
                frame: encode_response(job.request_id, &body),
                received: Some(job.received),
            });
        } else {
            live.push(job);
        }
    }
    if live.is_empty() {
        return;
    }
    let Some(handle) = shared.engine.dataset(dataset) else {
        for job in live {
            done.push(Completion {
                conn: job.conn,
                frame: encode_response(
                    job.request_id,
                    &ResponseBody::UnknownDataset { id: dataset },
                ),
                received: Some(job.received),
            });
        }
        return;
    };
    // One shared descent for the whole same-kind run: the queue
    // guarantees the batch is homogeneous.
    let responses = match live[0].body {
        WireRequestBody::Point { .. } => {
            let points: Vec<Point> = live
                .iter()
                .map(|job| match job.body {
                    WireRequestBody::Point { x, y, .. } => Point::new(x, y),
                    ref other => unreachable!("mixed selection batch: {other:?}"),
                })
                .collect();
            shared.engine.point_query_batch(&handle, &points)
        }
        WireRequestBody::Window { .. } => {
            let windows: Vec<Rect> = live
                .iter()
                .map(|job| match job.body {
                    WireRequestBody::Window { bounds, .. } => Rect::new(
                        Point::new(bounds[0], bounds[1]),
                        Point::new(bounds[2], bounds[3]),
                    ),
                    ref other => unreachable!("mixed selection batch: {other:?}"),
                })
                .collect();
            shared.engine.window_query_batch(&handle, &windows)
        }
        ref other => unreachable!("selection queue held {other:?}"),
    };
    debug_assert_eq!(responses.len(), live.len());
    for (job, response) in live.into_iter().zip(responses) {
        done.push(Completion {
            conn: job.conn,
            frame: encode_response(job.request_id, &selection_body(&response)),
            received: Some(job.received),
        });
    }
}

// ---------------------------------------------------------------------
// Event loop
// ---------------------------------------------------------------------

struct Conn {
    stream: TcpStream,
    inbuf: Vec<u8>,
    outbuf: Vec<u8>,
    out_pos: usize,
    /// Admitted-but-unanswered requests from this connection.
    inflight: usize,
    /// When the currently incomplete inbound frame started arriving.
    frame_started: Option<Instant>,
    /// Last successful socket write while output was pending.
    last_write: Instant,
    last_activity: Instant,
    /// Whether EPOLLOUT interest is currently armed.
    want_write: bool,
    close_after_flush: bool,
}

impl Conn {
    fn new(stream: TcpStream) -> Self {
        let now = Instant::now();
        Conn {
            stream,
            inbuf: Vec::new(),
            outbuf: Vec::new(),
            out_pos: 0,
            inflight: 0,
            frame_started: None,
            last_write: now,
            last_activity: now,
            want_write: false,
            close_after_flush: false,
        }
    }

    fn has_output(&self) -> bool {
        self.out_pos < self.outbuf.len()
    }
}

struct EventLoop {
    listener: Option<TcpListener>,
    wake_rx: UnixStream,
    shared: Arc<Shared>,
    config: ServeConfig,
    workers: Vec<JoinHandle<()>>,
    poller: Box<dyn Poller>,
    conns: HashMap<u64, Conn>,
    next_token: u64,
    fault: FaultSession,
    drain_started: Option<Instant>,
    deadline_fired: bool,
    abandoned_queued: usize,
    cancelled_inflight: usize,
}

impl EventLoop {
    fn new(
        listener: TcpListener,
        wake_rx: UnixStream,
        shared: Arc<Shared>,
        config: ServeConfig,
        workers: Vec<JoinHandle<()>>,
    ) -> Self {
        let mut poller = new_poller(config.force_scan_poller);
        poller.register(listener.as_raw_fd(), TOKEN_LISTENER, true, false);
        poller.register(wake_rx.as_raw_fd(), TOKEN_WAKE, true, false);
        let fault_config = if config.fault.enabled() {
            config.fault
        } else {
            FaultConfig::from_env()
        };
        EventLoop {
            listener: Some(listener),
            wake_rx,
            shared,
            config,
            workers,
            poller,
            conns: HashMap::new(),
            next_token: TOKEN_FIRST_CONN,
            fault: FaultSession::new(fault_config),
            drain_started: None,
            deadline_fired: false,
            abandoned_queued: 0,
            cancelled_inflight: 0,
        }
    }

    fn run(&mut self) -> DrainReport {
        let mut events: Vec<Event> = Vec::new();
        let clean = loop {
            events.clear();
            self.poller.wait(TICK_MS, &mut events);
            for &ev in &events {
                match ev.token {
                    TOKEN_LISTENER => self.accept_ready(),
                    TOKEN_WAKE => self.drain_wake_pipe(),
                    token => self.conn_ready(token, ev),
                }
            }
            self.deliver_completions();
            self.flush_all();
            self.sweep_timeouts();
            self.shared.publish_depths();
            self.shared
                .registry()
                .gauge("msj_connections_open", &[])
                .set(self.conns.len() as f64);
            if let Some(clean) = self.drain_step() {
                break clean;
            }
        };
        // Stop the workers (close wakes any blocked pop), flush what
        // their final completions added, then let sockets close on drop.
        self.shared.queues.close();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        self.deliver_completions();
        self.flush_all();
        self.shared
            .registry()
            .gauge("msj_connections_open", &[])
            .set(0.0);
        DrainReport {
            clean,
            abandoned_queued: self.abandoned_queued,
            cancelled_inflight: self.cancelled_inflight,
        }
    }

    fn draining(&self) -> bool {
        self.shared.shutdown.load(Ordering::Acquire)
    }

    /// Advances the drain state machine; `Some(clean)` exits the loop.
    fn drain_step(&mut self) -> Option<bool> {
        if !self.draining() {
            return None;
        }
        let now = Instant::now();
        let started = *self.drain_started.get_or_insert(now);
        if let Some(listener) = self.listener.take() {
            self.poller.deregister(listener.as_raw_fd());
        }
        // Drain the sockets before judging settlement: frames already
        // received — including bytes still in the kernel buffer that no
        // readiness event has surfaced yet — must be answered (admission
        // converts them to `Draining`). Exiting with unread input would
        // reset the connection and silently discard those requests.
        let tokens: Vec<u64> = self.conns.keys().copied().collect();
        for token in tokens {
            match self.read_frames(token) {
                Ok(true) | Err(_) => self.close_conn(token),
                Ok(false) => {}
            }
        }
        let settled = self.shared.queues.is_empty()
            && self.shared.inflight.load(Ordering::Acquire) == 0
            && self.conns.values().all(|c| !c.has_output());
        if settled {
            return Some(!self.deadline_fired);
        }
        if now.duration_since(started) >= self.config.drain_deadline {
            if !self.deadline_fired {
                self.deadline_fired = true;
                // Queued work gets an explicit Draining each (never a
                // silent drop); running work is cancelled through its
                // own token and will answer Cancelled.
                for job in self.shared.queues.drain_all() {
                    self.abandoned_queued += 1;
                    self.shared
                        .registry()
                        .counter("msj_draining_responses_total", &[])
                        .inc();
                    self.shared.inflight.fetch_sub(1, Ordering::AcqRel);
                    if let Some(conn) = self.conns.get_mut(&job.conn) {
                        conn.inflight = conn.inflight.saturating_sub(1);
                    }
                    let frame = encode_response(job.request_id, &ResponseBody::Draining);
                    self.queue_frame(job.conn, frame);
                }
                let executing = self.shared.executing.lock().expect("executing");
                for token in executing.values() {
                    token.cancel();
                    self.cancelled_inflight += 1;
                }
            }
            if now.duration_since(started) >= self.config.drain_deadline + DRAIN_GRACE {
                return Some(false);
            }
        }
        None
    }

    fn accept_ready(&mut self) {
        loop {
            let Some(listener) = self.listener.as_ref() else {
                return;
            };
            match listener.accept() {
                Ok((stream, _)) => {
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    let _ = stream.set_nodelay(true);
                    let token = self.next_token;
                    self.next_token += 1;
                    self.poller.register(stream.as_raw_fd(), token, true, false);
                    self.conns.insert(token, Conn::new(stream));
                    self.shared
                        .registry()
                        .counter("msj_connections_total", &[])
                        .inc();
                }
                Err(ref e) if e.kind() == io::ErrorKind::WouldBlock => return,
                Err(ref e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => return,
            }
        }
    }

    fn drain_wake_pipe(&mut self) {
        let mut buf = [0u8; 64];
        loop {
            match (&self.wake_rx).read(&mut buf) {
                Ok(0) => return,
                Ok(_) => continue,
                Err(ref e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => return,
            }
        }
    }

    fn conn_ready(&mut self, token: u64, ev: Event) {
        if ev.readable {
            match self.read_frames(token) {
                Ok(true) | Err(_) => {
                    self.close_conn(token);
                    return;
                }
                Ok(false) => {}
            }
        }
        if ev.writable {
            if let Some(conn) = self.conns.get_mut(&token) {
                if flush_conn(conn).is_err() {
                    self.close_conn(token);
                }
            }
        }
    }

    /// Reads what the socket has and handles every complete frame.
    /// `Ok(true)` means EOF.
    fn read_frames(&mut self, token: u64) -> io::Result<bool> {
        let mut eof = false;
        {
            let Some(conn) = self.conns.get_mut(&token) else {
                return Ok(false);
            };
            let mut chunk = [0u8; 16 * 1024];
            loop {
                match conn.stream.read(&mut chunk) {
                    Ok(0) => {
                        eof = true;
                        break;
                    }
                    Ok(n) => {
                        if conn.inbuf.is_empty() {
                            conn.frame_started = Some(Instant::now());
                        }
                        conn.inbuf.extend_from_slice(&chunk[..n]);
                        conn.last_activity = Instant::now();
                    }
                    Err(ref e) if e.kind() == io::ErrorKind::WouldBlock => break,
                    Err(ref e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(e) => return Err(e),
                }
            }
        }
        // Parse complete frames outside the borrow of the connection:
        // admission may synthesize responses onto other queues.
        loop {
            let frame = {
                let Some(conn) = self.conns.get_mut(&token) else {
                    return Ok(false);
                };
                if conn.inbuf.len() < 4 {
                    if conn.inbuf.is_empty() {
                        conn.frame_started = None;
                    }
                    break;
                }
                let declared = u32::from_le_bytes(conn.inbuf[..4].try_into().unwrap());
                if declared > self.config.max_frame {
                    // Cannot resync a stream after refusing to buffer a
                    // frame: answer and close.
                    self.shared
                        .registry()
                        .counter("msj_frames_rejected_total", &[("reason", "too_large")])
                        .inc();
                    conn.close_after_flush = true;
                    conn.inbuf.clear();
                    conn.frame_started = None;
                    let frame = encode_response(0, &ResponseBody::FrameTooLarge { declared });
                    self.queue_frame(token, frame);
                    break;
                }
                let total = 4 + declared as usize;
                if conn.inbuf.len() < total {
                    break;
                }
                let body: Vec<u8> = conn.inbuf[4..total].to_vec();
                conn.inbuf.drain(..total);
                if conn.inbuf.is_empty() {
                    conn.frame_started = None;
                } else {
                    conn.frame_started = Some(Instant::now());
                }
                body
            };
            self.handle_frame(token, &frame);
        }
        Ok(eof)
    }

    /// Admission: every path out of this function is an explicit wire
    /// response or an enqueued job.
    fn handle_frame(&mut self, token: u64, body: &[u8]) {
        let reg = self.shared.registry();
        let request = match decode_request(body) {
            Ok(request) => request,
            Err(message) => {
                reg.counter("msj_frames_rejected_total", &[("reason", "malformed")])
                    .inc();
                let frame = encode_response(0, &ResponseBody::BadRequest { message });
                self.queue_frame(token, frame);
                return;
            }
        };
        if self.draining() {
            reg.counter("msj_draining_responses_total", &[]).inc();
            let frame = encode_response(request.request_id, &ResponseBody::Draining);
            self.queue_frame(token, frame);
            return;
        }
        if matches!(request.body, WireRequestBody::Metrics) {
            let text = reg.render_prometheus();
            let frame = encode_response(request.request_id, &ResponseBody::Text(text));
            self.queue_frame(token, frame);
            return;
        }
        // Validate dataset ids before the request costs a queue slot.
        if let Some(unknown) = self.unknown_dataset(&request.body) {
            let frame = encode_response(
                request.request_id,
                &ResponseBody::UnknownDataset { id: unknown },
            );
            self.queue_frame(token, frame);
            return;
        }
        let key = QueueKey::for_body(&request.body).expect("metrics handled above");
        let inflight_here = self.conns.get(&token).map_or(0, |c| c.inflight);
        if inflight_here >= self.config.conn_inflight_cap {
            self.shared.count_shed(ShedReason::ConnCap);
            let (estimate, from_history) = self.estimate(&request.body);
            let frame = encode_response(
                request.request_id,
                &ResponseBody::Shed {
                    retry_after_ms: retry_after_ms(estimate, inflight_here as u64),
                    reason: ShedReason::ConnCap,
                    from_history,
                },
            );
            self.queue_frame(token, frame);
            return;
        }
        let cancel = if request.deadline_ms > 0 {
            CancelToken::with_deadline(Duration::from_millis(u64::from(request.deadline_ms)))
        } else {
            CancelToken::new()
        };
        let job = Job {
            conn: token,
            request_id: request.request_id,
            body: request.body,
            cancel,
            received: Instant::now(),
        };
        let pending_ahead = self.shared.queues.pending_for(key) as u64;
        match self.shared.queues.try_push(key, job) {
            Ok(()) => {
                self.shared.inflight.fetch_add(1, Ordering::AcqRel);
                if let Some(conn) = self.conns.get_mut(&token) {
                    conn.inflight += 1;
                }
                self.shared
                    .registry()
                    .counter(
                        "msj_serve_requests_total",
                        &[("kind", request.kind_label())],
                    )
                    .inc();
                self.shared.publish_depths();
            }
            Err(job) => {
                // Queue at the bound: 429 now, with the model's guess at
                // when that backlog will have cleared.
                self.shared.count_shed(ShedReason::QueueFull);
                let (estimate, from_history) = self.estimate(&job.body);
                let frame = encode_response(
                    job.request_id,
                    &ResponseBody::Shed {
                        retry_after_ms: retry_after_ms(estimate, pending_ahead),
                        reason: ShedReason::QueueFull,
                        from_history,
                    },
                );
                self.queue_frame(token, frame);
            }
        }
    }

    fn unknown_dataset(&self, body: &WireRequestBody) -> Option<u32> {
        let missing = |id: u32| self.shared.engine.dataset(id).is_none().then_some(id);
        match *body {
            WireRequestBody::Join { a, b } => missing(a).or_else(|| missing(b)),
            WireRequestBody::SelfJoin { dataset }
            | WireRequestBody::Point { dataset, .. }
            | WireRequestBody::Window { dataset, .. } => missing(dataset),
            WireRequestBody::Metrics => None,
        }
    }

    /// The §5 estimate feeding a shed's retry hint — history-informed
    /// when the engine has run the pair before, a-priori otherwise.
    fn estimate(&self, body: &WireRequestBody) -> (f64, bool) {
        let request = match *body {
            WireRequestBody::Join { a, b } => Request::Join {
                a,
                b,
                execution: None,
            },
            WireRequestBody::SelfJoin { dataset } => Request::SelfJoin {
                dataset,
                execution: None,
            },
            WireRequestBody::Point { dataset, x, y } => Request::Point {
                dataset,
                point: Point::new(x, y),
            },
            WireRequestBody::Window { dataset, bounds } => Request::Window {
                dataset,
                window: Rect::new(
                    Point::new(bounds[0], bounds[1]),
                    Point::new(bounds[2], bounds[3]),
                ),
            },
            WireRequestBody::Metrics => return (0.0, false),
        };
        self.shared
            .engine
            .estimate_request(&request)
            .unwrap_or((0.0, false))
    }

    /// Routes one response frame onto a connection's output buffer,
    /// applying the wire fault plan at exactly this seam.
    fn queue_frame(&mut self, token: u64, frame: Vec<u8>) {
        let action = self.fault.on_response();
        if action != WireAction::Proceed {
            if let Some(site) = self.fault.fired() {
                self.shared
                    .registry()
                    .counter("msj_fault_injected_total", &[("site", site)])
                    .inc();
            }
        }
        match action {
            WireAction::Proceed => {}
            WireAction::SlowThenProceed(stall) => {
                // A deliberately slow wire: the response still goes out,
                // later. Blocking the loop is the point — every other
                // connection observes the stall, as with a real
                // head-of-line blocking incident.
                std::thread::sleep(stall);
            }
            WireAction::ConnReset | WireAction::DropBeforeReply => {
                // Computed, then never sent: the client must treat the
                // close as request-failed.
                self.close_conn(token);
                return;
            }
            WireAction::PartialWrite => {
                if let Some(conn) = self.conns.get_mut(&token) {
                    let cut = (frame.len() / 2).max(1);
                    conn.outbuf.extend_from_slice(&frame[..cut]);
                    conn.close_after_flush = true;
                    conn.last_write = Instant::now();
                }
                return;
            }
        }
        if let Some(conn) = self.conns.get_mut(&token) {
            if !conn.has_output() {
                conn.last_write = Instant::now();
            }
            conn.outbuf.extend_from_slice(&frame);
        }
    }

    fn deliver_completions(&mut self) {
        let done: Vec<Completion> = {
            let mut lock = self.shared.completions.lock().expect("completions");
            std::mem::take(&mut *lock)
        };
        for completion in done {
            self.shared.inflight.fetch_sub(1, Ordering::AcqRel);
            if let Some(conn) = self.conns.get_mut(&completion.conn) {
                conn.inflight = conn.inflight.saturating_sub(1);
                self.queue_frame(completion.conn, completion.frame);
            }
            // A vanished connection simply discards the frame — the
            // request was still answered from the engine's perspective.
        }
    }

    fn flush_all(&mut self) {
        let tokens: Vec<u64> = self
            .conns
            .iter()
            .filter(|(_, c)| c.has_output() || c.close_after_flush)
            .map(|(&t, _)| t)
            .collect();
        for token in tokens {
            let Some(conn) = self.conns.get_mut(&token) else {
                continue;
            };
            match flush_conn(conn) {
                Err(_) => self.close_conn(token),
                Ok(flushed) => {
                    if flushed && conn_should_close(self.conns.get(&token)) {
                        self.close_conn(token);
                    } else {
                        self.rearm(token);
                    }
                }
            }
        }
    }

    fn rearm(&mut self, token: u64) {
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        let wants = conn.has_output();
        if wants != conn.want_write {
            conn.want_write = wants;
            self.poller
                .modify(conn.stream.as_raw_fd(), token, true, wants);
        }
    }

    fn sweep_timeouts(&mut self) {
        let now = Instant::now();
        let mut doomed: Vec<(u64, &'static str)> = Vec::new();
        for (&token, conn) in &self.conns {
            if conn.has_output() && now.duration_since(conn.last_write) > self.config.write_timeout
            {
                doomed.push((token, "write"));
            } else if let Some(started) = conn.frame_started {
                if now.duration_since(started) > self.config.read_timeout {
                    doomed.push((token, "read"));
                }
            } else if conn.inflight == 0
                && !conn.has_output()
                && now.duration_since(conn.last_activity) > self.config.idle_timeout
            {
                doomed.push((token, "idle"));
            }
        }
        for (token, kind) in doomed {
            self.shared
                .registry()
                .counter("msj_conn_timeouts_total", &[("kind", kind)])
                .inc();
            self.close_conn(token);
        }
    }

    fn close_conn(&mut self, token: u64) {
        if let Some(conn) = self.conns.remove(&token) {
            self.poller.deregister(conn.stream.as_raw_fd());
            // In-flight jobs of this connection keep running; their
            // completions are discarded on delivery.
        }
    }
}

fn conn_should_close(conn: Option<&Conn>) -> bool {
    conn.is_some_and(|c| c.close_after_flush && !c.has_output())
}

/// Writes as much pending output as the socket accepts.
/// `Ok(true)` = buffer fully flushed.
fn flush_conn(conn: &mut Conn) -> io::Result<bool> {
    while conn.has_output() {
        match conn.stream.write(&conn.outbuf[conn.out_pos..]) {
            Ok(0) => return Err(io::ErrorKind::WriteZero.into()),
            Ok(n) => {
                conn.out_pos += n;
                conn.last_write = Instant::now();
                conn.last_activity = conn.last_write;
            }
            Err(ref e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(false),
            Err(ref e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
    conn.outbuf.clear();
    conn.out_pos = 0;
    Ok(true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::Client;
    use crate::protocol::WireRequest;
    use msj_core::JoinConfig;
    use msj_datagen::small_carto;

    fn engine_with_datasets() -> (Arc<SpatialEngine>, u32, u32) {
        let engine = Arc::new(SpatialEngine::new(JoinConfig::default()));
        let a = engine.register(small_carto(60, 8.0, 11)).id();
        let b = engine.register(small_carto(60, 8.0, 23)).id();
        (engine, a, b)
    }

    fn start(engine: Arc<SpatialEngine>, config: ServeConfig) -> Server {
        Server::start(engine, config).expect("server starts")
    }

    #[test]
    fn serves_selections_and_joins_byte_identically_to_in_process_submits() {
        let (engine, a, b) = engine_with_datasets();
        let server = start(engine.clone(), ServeConfig::default());
        let mut client = Client::connect(server.addr()).expect("connect");

        let requests = vec![
            WireRequest::point(1, a, 0.4, 0.6),
            WireRequest::window(2, b, [0.1, 0.1, 0.5, 0.5]),
            WireRequest::join(3, a, b),
            WireRequest::self_join(4, a),
        ];
        for request in requests {
            let reply = client.call(&request).expect("reply");
            let expected = response_body_for(&engine.submit(to_request(&request.body)));
            let expected_frame = encode_response(request.request_id, &expected);
            assert_eq!(
                reply.frame, expected_frame,
                "wire frame differs from in-process encoding for {request:?}"
            );
        }
        server.shutdown();
        assert!(server.join().clean);
    }

    fn to_request(body: &WireRequestBody) -> Request {
        match *body {
            WireRequestBody::Join { a, b } => Request::Join {
                a,
                b,
                execution: None,
            },
            WireRequestBody::SelfJoin { dataset } => Request::SelfJoin {
                dataset,
                execution: None,
            },
            WireRequestBody::Point { dataset, x, y } => Request::Point {
                dataset,
                point: Point::new(x, y),
            },
            WireRequestBody::Window { dataset, bounds } => Request::Window {
                dataset,
                window: Rect::new(
                    Point::new(bounds[0], bounds[1]),
                    Point::new(bounds[2], bounds[3]),
                ),
            },
            WireRequestBody::Metrics => unreachable!(),
        }
    }

    #[test]
    fn unknown_dataset_and_malformed_frames_answer_explicitly() {
        let (engine, a, _) = engine_with_datasets();
        let server = start(engine, ServeConfig::default());
        let mut client = Client::connect(server.addr()).expect("connect");

        let reply = client
            .call(&WireRequest::point(7, 999, 0.0, 0.0))
            .expect("reply");
        assert_eq!(reply.body, ResponseBody::UnknownDataset { id: 999 });

        let reply = client.call(&WireRequest::join(8, a, 999)).expect("reply");
        assert_eq!(reply.body, ResponseBody::UnknownDataset { id: 999 });

        // A syntactically valid frame with an unknown kind byte.
        let mut raw = Vec::new();
        raw.extend_from_slice(&13u32.to_le_bytes());
        raw.extend_from_slice(&1u64.to_le_bytes());
        raw.extend_from_slice(&0u32.to_le_bytes());
        raw.push(99);
        client.send_raw(&raw).expect("send");
        let reply = client.recv().expect("reply");
        assert!(matches!(reply.body, ResponseBody::BadRequest { .. }));

        server.shutdown();
        server.join();
    }

    #[test]
    fn oversized_frames_are_rejected_and_the_connection_closed() {
        let (engine, _, _) = engine_with_datasets();
        let server = start(
            engine.clone(),
            ServeConfig {
                max_frame: 64,
                ..ServeConfig::default()
            },
        );
        let mut client = Client::connect(server.addr()).expect("connect");
        let mut raw = Vec::new();
        raw.extend_from_slice(&(1u32 << 20).to_le_bytes());
        raw.extend_from_slice(&[0u8; 32]);
        client.send_raw(&raw).expect("send");
        let reply = client.recv().expect("reply");
        assert_eq!(
            reply.body,
            ResponseBody::FrameTooLarge {
                declared: 1u32 << 20
            }
        );
        // The server closes after answering; the next read sees EOF.
        assert!(client.recv().is_err());
        assert_eq!(
            engine
                .metrics()
                .snapshot()
                .counter("msj_frames_rejected_total{reason=\"too_large\"}"),
            1
        );
        server.shutdown();
        server.join();
    }

    #[test]
    fn draining_server_refuses_new_requests_explicitly() {
        let engine = Arc::new(SpatialEngine::new(JoinConfig::default()));
        let a = engine.register(small_carto(250, 8.0, 11)).id();
        let b = engine.register(small_carto(250, 8.0, 23)).id();
        // One worker: the second join queues behind the first, so the
        // drain window is at least one full join wide.
        let server = start(
            engine,
            ServeConfig {
                workers: 1,
                ..ServeConfig::default()
            },
        );
        let mut client = Client::connect(server.addr()).expect("connect");
        client.send(&WireRequest::join(1, a, b)).expect("send");
        client.send(&WireRequest::self_join(2, b)).expect("send");
        std::thread::sleep(Duration::from_millis(20));
        server.shutdown();
        client
            .send(&WireRequest::point(3, a, 0.5, 0.5))
            .expect("send");
        for _ in 0..3 {
            let reply = client.recv().expect("reply");
            if reply.request_id == 3 {
                assert_eq!(reply.body, ResponseBody::Draining);
            } else {
                // The admitted joins still complete during the drain.
                assert!(reply.body.is_ok(), "admitted join failed: {:?}", reply.body);
            }
        }
        assert!(server.join().clean);
    }

    #[test]
    fn metrics_request_exposes_serving_families() {
        let (engine, a, _) = engine_with_datasets();
        let server = start(engine, ServeConfig::default());
        let mut client = Client::connect(server.addr()).expect("connect");
        client
            .call(&WireRequest::point(1, a, 0.5, 0.5))
            .expect("warm");
        let reply = client.call(&WireRequest::metrics(2)).expect("metrics");
        let ResponseBody::Text(text) = reply.body else {
            panic!("expected text body");
        };
        for family in [
            "msj_queue_depth",
            "msj_request_shed_total",
            "msj_conn_timeouts_total",
            "msj_connections_open",
            "msj_serve_batch_size",
        ] {
            assert!(text.contains(family), "exposition lacks {family}:\n{text}");
        }
        server.shutdown();
        server.join();
    }

    #[test]
    fn queue_full_sheds_carry_a_cost_model_retry_hint() {
        let (engine, a, b) = engine_with_datasets();
        // One worker, queue bound 1: the second and later concurrent
        // joins find the queue full while the first executes.
        let server = start(
            engine,
            ServeConfig {
                workers: 1,
                queue_bound: 1,
                ..ServeConfig::default()
            },
        );
        let mut client = Client::connect(server.addr()).expect("connect");
        let mut shed = None;
        for id in 0..24 {
            client
                .send(&WireRequest::join(id, a, b))
                .expect("send join");
        }
        for _ in 0..24 {
            let reply = client.recv().expect("reply");
            if let ResponseBody::Shed {
                retry_after_ms,
                reason,
                ..
            } = reply.body
            {
                assert_eq!(reason, ShedReason::QueueFull);
                assert!(retry_after_ms >= 1);
                shed = Some(retry_after_ms);
            }
        }
        assert!(
            shed.is_some(),
            "no queue-full shed under 24 pipelined joins"
        );
        server.shutdown();
        server.join();
    }

    #[test]
    fn conn_inflight_cap_sheds_excess_pipelining() {
        let (engine, a, b) = engine_with_datasets();
        let server = start(
            engine,
            ServeConfig {
                workers: 1,
                queue_bound: 256,
                conn_inflight_cap: 2,
                ..ServeConfig::default()
            },
        );
        let mut client = Client::connect(server.addr()).expect("connect");
        for id in 0..12 {
            client.send(&WireRequest::join(id, a, b)).expect("send");
        }
        let mut conn_cap_sheds = 0;
        for _ in 0..12 {
            if let ResponseBody::Shed {
                reason: ShedReason::ConnCap,
                ..
            } = client.recv().expect("reply").body
            {
                conn_cap_sheds += 1;
            }
        }
        assert!(conn_cap_sheds > 0, "cap of 2 never shed under 12 pipelined");
        server.shutdown();
        server.join();
    }

    /// Satellite: admission-driven sheds carry a `retry_after_ms`
    /// derived from the §5 estimate, and the payload pins whether that
    /// estimate was history-informed — a-priori for a never-run pair,
    /// history-informed once the pair has produced statistics.
    #[test]
    fn admission_sheds_pin_a_priori_and_history_informed_retry_hints() {
        let (engine, a, b) = engine_with_datasets();
        engine.set_admission_limit(Some(0.0));
        let server = start(engine.clone(), ServeConfig::default());
        let mut client = Client::connect(server.addr()).expect("connect");

        // Never-run pair: the estimate can only be a-priori.
        let reply = client.call(&WireRequest::join(1, a, b)).expect("reply");
        match reply.body {
            ResponseBody::Shed {
                retry_after_ms,
                reason,
                from_history,
            } => {
                assert_eq!(reason, ShedReason::Admission);
                assert!(retry_after_ms >= 1);
                assert!(!from_history, "fresh pair cannot have history");
            }
            other => panic!("expected admission shed, got {other:?}"),
        }

        // Lift the limit, run the pair once, re-tighten: the refusal is
        // now grounded in observed statistics.
        engine.set_admission_limit(None);
        let reply = client.call(&WireRequest::join(2, a, b)).expect("reply");
        assert!(reply.body.is_ok());
        engine.set_admission_limit(Some(0.0));
        let reply = client.call(&WireRequest::join(3, a, b)).expect("reply");
        match reply.body {
            ResponseBody::Shed {
                retry_after_ms,
                reason,
                from_history,
            } => {
                assert_eq!(reason, ShedReason::Admission);
                assert!(retry_after_ms >= 1);
                assert!(from_history, "prepared pair must report history");
            }
            other => panic!("expected admission shed, got {other:?}"),
        }
        let shed_key = "msj_request_shed_total{reason=\"admission\"}";
        assert_eq!(engine.metrics().snapshot().counter(shed_key), 2);
        server.shutdown();
        server.join();
    }

    #[test]
    fn client_deadline_rides_the_engine_token_path() {
        let (engine, a, b) = engine_with_datasets();
        // Zero-millisecond deadline: expired by the time a worker looks.
        let server = start(engine, ServeConfig::default());
        let mut client = Client::connect(server.addr()).expect("connect");
        let reply = client
            .call(&WireRequest::join(5, a, b).with_deadline_ms(1))
            .expect("reply");
        match reply.body {
            ResponseBody::DeadlineExceeded { .. } | ResponseBody::Cancelled { .. } => {}
            // A fast machine can legitimately finish inside 1 ms.
            ref body if body.is_ok() => {}
            other => panic!("unexpected reply {other:?}"),
        }
        server.shutdown();
        server.join();
    }

    #[test]
    fn scan_poller_serves_the_same_protocol() {
        let (engine, a, _) = engine_with_datasets();
        let server = start(
            engine.clone(),
            ServeConfig {
                force_scan_poller: true,
                ..ServeConfig::default()
            },
        );
        let mut client = Client::connect(server.addr()).expect("connect");
        let request = WireRequest::point(1, a, 0.3, 0.3);
        let reply = client.call(&request).expect("reply");
        let expected = response_body_for(&engine.submit(to_request(&request.body)));
        assert_eq!(reply.frame, encode_response(1, &expected));
        server.shutdown();
        assert!(server.join().clean);
    }
}

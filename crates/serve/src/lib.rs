//! Overload-safe network front for the resident spatial engine.
//!
//! `msj-serve` puts a [`msj_core::SpatialEngine`] behind a TCP listener
//! speaking the length-prefixed protocol of [`protocol`], built on a
//! readiness loop over nonblocking `std::net` sockets (raw-syscall
//! `epoll` on Linux/x86-64, a portable scan poller elsewhere — no
//! external dependencies). The design goal is the robustness story of
//! the paper's §5 engineering: a server that **refuses load it cannot
//! carry** instead of degrading for everyone.
//!
//! - **Bounded queues, wire backpressure.** Requests land in bounded
//!   per-dataset-pair queues. A full queue — or a §5 cost estimate over
//!   the admission limit — answers an immediate 429-style
//!   [`protocol::WireStatus::Shed`] whose `retry_after_ms` is derived
//!   from the same cost model that refused the work.
//! - **Client deadlines.** A nonzero `deadline_ms` in the request
//!   header arms the engine's one and only cancellation mechanism
//!   ([`msj_core::CancelToken::with_deadline`]) at admission, so queue
//!   wait spends the budget too; an over-deadline request answers a
//!   503-style [`protocol::WireStatus::DeadlineExceeded`] carrying the
//!   partial-work accounting.
//! - **Connection hardening.** Idle, stalled-read and stalled-write
//!   timeouts; a per-connection in-flight cap; a max-frame guard that
//!   rejects oversized requests before buffering them.
//! - **Graceful drain.** [`Server::shutdown`] closes the listener,
//!   lets queued and in-flight requests complete, answers anything new
//!   with [`protocol::WireStatus::Draining`], and exits within the
//!   configured drain deadline (cancelling still-running work through
//!   the same token path when the deadline passes).
//! - **Cross-request batching.** Concurrent point/window probes against
//!   the same dataset are drained from the queue as one batch and run
//!   through the engine's shared-descent batch path — under load the
//!   served throughput exceeds per-query serving, and every completed
//!   response stays **byte-identical** to its in-process equivalent.
//!
//! ```no_run
//! use std::sync::Arc;
//! use msj_core::{JoinConfig, SpatialEngine};
//! use msj_serve::{Client, ServeConfig, Server, WireRequest};
//!
//! let engine = Arc::new(SpatialEngine::new(JoinConfig::default()));
//! // ... engine.register(...) datasets ...
//! let server = Server::start(engine, ServeConfig::default()).unwrap();
//! let mut client = Client::connect(server.addr()).unwrap();
//! let reply = client.call(&WireRequest::point(1, 0, 0.5, 0.5)).unwrap();
//! assert!(reply.body.is_ok());
//! server.shutdown();
//! server.join();
//! ```

pub mod client;
pub mod poll;
pub mod protocol;
pub mod queue;
pub mod server;

pub use client::{Client, WireReply};
pub use protocol::{
    decode_request, decode_response, encode_request, encode_response, error_body,
    response_body_for, retry_after_ms, wire_status_for_kind, JoinWireStats, ResponseBody,
    SelectionWireStats, ShedReason, WireRequest, WireRequestBody, WireStatus,
};
pub use server::{DrainReport, ServeConfig, Server};

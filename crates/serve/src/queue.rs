//! Bounded per-dataset-pair request queues with round-robin dispatch
//! and same-kind batch draining.
//!
//! Each join pair and each selection target gets its own bounded queue;
//! one saturated pair therefore sheds **its own** traffic while other
//! datasets keep flowing. Workers pop whole same-kind runs of selection
//! probes in one call — that run becomes a single shared-descent batch
//! through the engine, which is where the front's
//! throughput-beyond-per-query-serving comes from.

use std::collections::{HashMap, VecDeque};
use std::sync::{Condvar, Mutex};
use std::time::Instant;

use msj_geom::CancelToken;

use crate::protocol::WireRequestBody;

/// Which bounded queue a request routes to. Join keys are normalized
/// (`a <= b`) so `Join(1, 2)` and `Join(2, 1)` share a bound.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum QueueKey {
    Join(u32, u32),
    Select(u32),
}

impl QueueKey {
    /// The queue a request body routes to.
    pub fn for_body(body: &WireRequestBody) -> Option<QueueKey> {
        Some(match *body {
            WireRequestBody::Join { a, b } => QueueKey::Join(a.min(b), a.max(b)),
            WireRequestBody::SelfJoin { dataset } => QueueKey::Join(dataset, dataset),
            WireRequestBody::Point { dataset, .. } | WireRequestBody::Window { dataset, .. } => {
                QueueKey::Select(dataset)
            }
            WireRequestBody::Metrics => return None,
        })
    }

    /// The `queue` label of `msj_queue_depth`.
    pub fn label(&self) -> &'static str {
        match self {
            QueueKey::Join(..) => "join",
            QueueKey::Select(..) => "selection",
        }
    }
}

/// One admitted request waiting for (or held by) a worker.
#[derive(Debug)]
pub struct Job {
    /// The connection token the response routes back to.
    pub conn: u64,
    pub request_id: u64,
    pub body: WireRequestBody,
    /// The engine's cancellation/deadline token, armed at admission so
    /// queue wait counts against a client deadline.
    pub cancel: CancelToken,
    /// When the frame was admitted (queue-wait measurement anchor).
    pub received: Instant,
}

#[derive(Default)]
struct Inner {
    queues: HashMap<QueueKey, VecDeque<Job>>,
    /// Round-robin rotation of keys with pending work; each key appears
    /// at most once.
    ready: VecDeque<QueueKey>,
    join_depth: usize,
    select_depth: usize,
    closed: bool,
}

impl Inner {
    fn bump(&mut self, key: &QueueKey, delta: isize) {
        let slot = match key {
            QueueKey::Join(..) => &mut self.join_depth,
            QueueKey::Select(..) => &mut self.select_depth,
        };
        *slot = slot.checked_add_signed(delta).expect("depth underflow");
    }
}

/// The bounded queue set shared between the event loop (producer) and
/// the worker pool (consumers).
pub struct QueueSet {
    inner: Mutex<Inner>,
    cond: Condvar,
    bound: usize,
    batch_max: usize,
}

impl QueueSet {
    /// A queue set where every per-key queue holds at most `bound` jobs
    /// and a popped selection batch holds at most `batch_max`.
    pub fn new(bound: usize, batch_max: usize) -> Self {
        QueueSet {
            inner: Mutex::new(Inner::default()),
            cond: Condvar::new(),
            bound: bound.max(1),
            batch_max: batch_max.max(1),
        }
    }

    /// The per-key bound.
    pub fn bound(&self) -> usize {
        self.bound
    }

    /// Enqueues `job` under `key`. `Err(job)` hands the job back when
    /// its queue is at the bound or the set is closed — the caller sheds
    /// it on the wire.
    pub fn try_push(&self, key: QueueKey, job: Job) -> Result<(), Job> {
        let mut inner = self.inner.lock().expect("queue lock poisoned");
        if inner.closed {
            return Err(job);
        }
        let queue = inner.queues.entry(key).or_default();
        if queue.len() >= self.bound {
            return Err(job);
        }
        let was_empty = queue.is_empty();
        queue.push_back(job);
        inner.bump(&key, 1);
        if was_empty {
            inner.ready.push_back(key);
        }
        drop(inner);
        self.cond.notify_one();
        Ok(())
    }

    /// How many jobs wait under `key` right now.
    pub fn pending_for(&self, key: QueueKey) -> usize {
        let inner = self.inner.lock().expect("queue lock poisoned");
        inner.queues.get(&key).map_or(0, VecDeque::len)
    }

    /// Current depths `(join, selection)` for the depth gauges.
    pub fn depths(&self) -> (usize, usize) {
        let inner = self.inner.lock().expect("queue lock poisoned");
        (inner.join_depth, inner.select_depth)
    }

    /// Whether no job is queued anywhere.
    pub fn is_empty(&self) -> bool {
        let inner = self.inner.lock().expect("queue lock poisoned");
        inner.join_depth + inner.select_depth == 0
    }

    /// Blocks for work; fills `out` with the next dispatch unit and
    /// returns its key. Selection keys yield the longest same-kind run
    /// from the queue front (up to the batch cap) — that run becomes one
    /// shared engine descent. Join keys yield a single job. Returns
    /// `None` once the set is closed **and** fully drained.
    pub fn pop_batch(&self, out: &mut Vec<Job>) -> Option<QueueKey> {
        let mut inner = self.inner.lock().expect("queue lock poisoned");
        loop {
            if let Some(key) = inner.ready.pop_front() {
                let batch_max = self.batch_max;
                let queue = inner.queues.get_mut(&key).expect("ready key has queue");
                let take = match key {
                    QueueKey::Join(..) => 1,
                    QueueKey::Select(..) => {
                        let first = discriminant(&queue[0].body);
                        queue
                            .iter()
                            .take(batch_max)
                            .take_while(|job| discriminant(&job.body) == first)
                            .count()
                    }
                };
                for _ in 0..take {
                    out.push(queue.pop_front().expect("counted job present"));
                }
                if !queue.is_empty() {
                    inner.ready.push_back(key);
                }
                inner.bump(&key, -(take as isize));
                return Some(key);
            }
            if inner.closed {
                return None;
            }
            inner = self.cond.wait(inner).expect("queue lock poisoned");
        }
    }

    /// Empties every queue, returning the abandoned jobs (drain-deadline
    /// path: each gets an explicit `Draining` response, never a silent
    /// drop).
    pub fn drain_all(&self) -> Vec<Job> {
        let mut inner = self.inner.lock().expect("queue lock poisoned");
        let mut jobs = Vec::new();
        for (_, queue) in inner.queues.iter_mut() {
            jobs.extend(queue.drain(..));
        }
        inner.ready.clear();
        inner.join_depth = 0;
        inner.select_depth = 0;
        jobs
    }

    /// Closes the set: pushes start failing, and blocked workers return
    /// `None` once the remaining jobs drain.
    pub fn close(&self) {
        self.inner.lock().expect("queue lock poisoned").closed = true;
        self.cond.notify_all();
    }
}

fn discriminant(body: &WireRequestBody) -> u8 {
    match body {
        WireRequestBody::Join { .. } => 0,
        WireRequestBody::SelfJoin { .. } => 1,
        WireRequestBody::Point { .. } => 2,
        WireRequestBody::Window { .. } => 3,
        WireRequestBody::Metrics => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn job(conn: u64, body: WireRequestBody) -> Job {
        Job {
            conn,
            request_id: conn,
            body,
            cancel: CancelToken::new(),
            received: Instant::now(),
        }
    }

    fn point(dataset: u32) -> WireRequestBody {
        WireRequestBody::Point {
            dataset,
            x: 0.0,
            y: 0.0,
        }
    }

    fn window(dataset: u32) -> WireRequestBody {
        WireRequestBody::Window {
            dataset,
            bounds: [0.0, 0.0, 1.0, 1.0],
        }
    }

    #[test]
    fn keys_normalize_join_order_and_route_selections_by_dataset() {
        assert_eq!(
            QueueKey::for_body(&WireRequestBody::Join { a: 2, b: 1 }),
            Some(QueueKey::Join(1, 2))
        );
        assert_eq!(
            QueueKey::for_body(&WireRequestBody::SelfJoin { dataset: 3 }),
            Some(QueueKey::Join(3, 3))
        );
        assert_eq!(QueueKey::for_body(&point(5)), Some(QueueKey::Select(5)));
        assert_eq!(QueueKey::for_body(&window(5)), Some(QueueKey::Select(5)));
        assert_eq!(QueueKey::for_body(&WireRequestBody::Metrics), None);
    }

    #[test]
    fn bound_is_enforced_per_key() {
        let set = QueueSet::new(2, 8);
        let key = QueueKey::Select(1);
        assert!(set.try_push(key, job(1, point(1))).is_ok());
        assert!(set.try_push(key, job(2, point(1))).is_ok());
        let rejected = set.try_push(key, job(3, point(1))).unwrap_err();
        assert_eq!(rejected.conn, 3);
        // Another key still has capacity.
        assert!(set.try_push(QueueKey::Select(2), job(4, point(2))).is_ok());
        assert_eq!(set.depths(), (0, 3));
    }

    #[test]
    fn selection_batches_are_contiguous_same_kind_runs() {
        let set = QueueSet::new(16, 8);
        let key = QueueKey::Select(1);
        for i in 0..3 {
            set.try_push(key, job(i, point(1))).unwrap();
        }
        for i in 3..5 {
            set.try_push(key, job(i, window(1))).unwrap();
        }
        set.try_push(key, job(5, point(1))).unwrap();

        let mut batch = Vec::new();
        assert_eq!(set.pop_batch(&mut batch), Some(key));
        assert_eq!(batch.len(), 3);
        assert!(batch
            .iter()
            .all(|j| matches!(j.body, WireRequestBody::Point { .. })));

        batch.clear();
        assert_eq!(set.pop_batch(&mut batch), Some(key));
        assert_eq!(batch.len(), 2);
        assert!(batch
            .iter()
            .all(|j| matches!(j.body, WireRequestBody::Window { .. })));

        batch.clear();
        assert_eq!(set.pop_batch(&mut batch), Some(key));
        assert_eq!(batch.len(), 1);
        assert!(set.is_empty());
    }

    #[test]
    fn batch_cap_limits_a_long_run() {
        let set = QueueSet::new(64, 4);
        for i in 0..10 {
            set.try_push(QueueKey::Select(1), job(i, point(1))).unwrap();
        }
        let mut batch = Vec::new();
        set.pop_batch(&mut batch);
        assert_eq!(batch.len(), 4);
    }

    #[test]
    fn dispatch_round_robins_between_keys() {
        let set = QueueSet::new(16, 8);
        set.try_push(
            QueueKey::Join(0, 1),
            job(1, WireRequestBody::Join { a: 0, b: 1 }),
        )
        .unwrap();
        set.try_push(
            QueueKey::Join(0, 1),
            job(2, WireRequestBody::Join { a: 0, b: 1 }),
        )
        .unwrap();
        set.try_push(QueueKey::Select(2), job(3, point(2))).unwrap();

        let mut order = Vec::new();
        let mut batch = Vec::new();
        while !set.is_empty() {
            batch.clear();
            order.push(set.pop_batch(&mut batch).unwrap());
        }
        // The second join waits until the selection key had its turn.
        assert_eq!(
            order,
            vec![
                QueueKey::Join(0, 1),
                QueueKey::Select(2),
                QueueKey::Join(0, 1)
            ]
        );
    }

    #[test]
    fn close_unblocks_waiting_workers_and_rejects_pushes() {
        let set = std::sync::Arc::new(QueueSet::new(4, 4));
        let waiter = {
            let set = set.clone();
            std::thread::spawn(move || {
                let mut batch = Vec::new();
                set.pop_batch(&mut batch)
            })
        };
        std::thread::sleep(std::time::Duration::from_millis(20));
        set.close();
        assert_eq!(waiter.join().unwrap(), None);
        assert!(set.try_push(QueueKey::Select(1), job(1, point(1))).is_err());
    }

    #[test]
    fn drain_all_returns_every_abandoned_job() {
        let set = QueueSet::new(8, 4);
        set.try_push(QueueKey::Select(1), job(1, point(1))).unwrap();
        set.try_push(
            QueueKey::Join(0, 1),
            job(2, WireRequestBody::Join { a: 0, b: 1 }),
        )
        .unwrap();
        let jobs = set.drain_all();
        assert_eq!(jobs.len(), 2);
        assert!(set.is_empty());
        assert_eq!(set.depths(), (0, 0));
    }
}

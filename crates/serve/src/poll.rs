//! Readiness polling over raw file descriptors, with no external
//! dependencies.
//!
//! The default on Linux/x86-64 is a real `epoll` instance driven
//! through raw syscalls (`epoll_create1`/`epoll_ctl`/`epoll_wait` via
//! inline assembly — the build has no libc binding crate). Everywhere
//! else — and under `MSJ_SERVE_POLLER=scan` — a portable scan poller
//! stands in: it reports every registered descriptor as ready after a
//! short sleep, which is correct (if less efficient) because all server
//! I/O is nonblocking and treats `WouldBlock` as "not actually ready".

use std::collections::HashMap;
use std::os::fd::RawFd;

/// One readiness event: the token the descriptor registered under plus
/// the directions that are (possibly spuriously) ready.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    pub token: u64,
    pub readable: bool,
    pub writable: bool,
}

/// The poller interface the event loop drives.
pub trait Poller: Send {
    /// Starts watching `fd` under `token` for the given directions.
    fn register(&mut self, fd: RawFd, token: u64, readable: bool, writable: bool);
    /// Rearms `fd`'s interest set.
    fn modify(&mut self, fd: RawFd, token: u64, readable: bool, writable: bool);
    /// Stops watching `fd`.
    fn deregister(&mut self, fd: RawFd);
    /// Blocks up to `timeout_ms` for readiness; appends events to `out`.
    fn wait(&mut self, timeout_ms: i32, out: &mut Vec<Event>);
    /// The poller's name, for diagnostics.
    fn name(&self) -> &'static str;
}

/// Builds the best poller for this platform, honoring
/// `MSJ_SERVE_POLLER=scan` (or `force_scan`) as an override.
pub fn new_poller(force_scan: bool) -> Box<dyn Poller> {
    let env_scan = std::env::var("MSJ_SERVE_POLLER")
        .map(|v| v.eq_ignore_ascii_case("scan"))
        .unwrap_or(false);
    if !(force_scan || env_scan) {
        #[cfg(all(target_os = "linux", target_arch = "x86_64"))]
        if let Some(epoll) = epoll::EpollPoller::new() {
            return Box::new(epoll);
        }
    }
    Box::new(ScanPoller::default())
}

/// The portable fallback: every registered descriptor is reported ready
/// in its interest directions after a short sleep. All consumers do
/// nonblocking I/O, so a spurious "ready" costs one `WouldBlock` and
/// nothing else.
#[derive(Default)]
pub struct ScanPoller {
    interest: HashMap<RawFd, (u64, bool, bool)>,
}

impl Poller for ScanPoller {
    fn register(&mut self, fd: RawFd, token: u64, readable: bool, writable: bool) {
        self.interest.insert(fd, (token, readable, writable));
    }

    fn modify(&mut self, fd: RawFd, token: u64, readable: bool, writable: bool) {
        self.interest.insert(fd, (token, readable, writable));
    }

    fn deregister(&mut self, fd: RawFd) {
        self.interest.remove(&fd);
    }

    fn wait(&mut self, timeout_ms: i32, out: &mut Vec<Event>) {
        // A short fixed sleep bounds the busy-scan rate; the cap keeps
        // shutdown/wake latency low even when callers pass a long
        // timeout.
        let ms = timeout_ms.clamp(0, 5) as u64;
        if ms > 0 {
            std::thread::sleep(std::time::Duration::from_millis(ms));
        }
        for (&_fd, &(token, readable, writable)) in &self.interest {
            if readable || writable {
                out.push(Event {
                    token,
                    readable,
                    writable,
                });
            }
        }
    }

    fn name(&self) -> &'static str {
        "scan"
    }
}

#[cfg(all(target_os = "linux", target_arch = "x86_64"))]
mod epoll {
    use super::{Event, Poller};
    use std::os::fd::RawFd;

    const SYS_CLOSE: usize = 3;
    const SYS_EPOLL_WAIT: usize = 232;
    const SYS_EPOLL_CTL: usize = 233;
    const SYS_EPOLL_CREATE1: usize = 291;

    const EPOLL_CLOEXEC: usize = 0x80000;
    const EPOLL_CTL_ADD: usize = 1;
    const EPOLL_CTL_DEL: usize = 2;
    const EPOLL_CTL_MOD: usize = 3;

    const EPOLLIN: u32 = 0x001;
    const EPOLLOUT: u32 = 0x004;
    const EPOLLERR: u32 = 0x008;
    const EPOLLHUP: u32 = 0x010;
    const EPOLLRDHUP: u32 = 0x2000;

    const EINTR: isize = -4;

    /// The x86-64 kernel ABI lays `epoll_event` out packed (64-bit data
    /// at offset 4).
    #[repr(C, packed)]
    #[derive(Clone, Copy)]
    struct EpollEvent {
        events: u32,
        data: u64,
    }

    #[inline]
    unsafe fn syscall4(n: usize, a: usize, b: usize, c: usize, d: usize) -> isize {
        let ret: isize;
        std::arch::asm!(
            "syscall",
            inlateout("rax") n as isize => ret,
            in("rdi") a,
            in("rsi") b,
            in("rdx") c,
            in("r10") d,
            lateout("rcx") _,
            lateout("r11") _,
            options(nostack),
        );
        ret
    }

    pub struct EpollPoller {
        epfd: RawFd,
        buf: Vec<EpollEvent>,
    }

    impl EpollPoller {
        pub fn new() -> Option<Self> {
            let epfd = unsafe { syscall4(SYS_EPOLL_CREATE1, EPOLL_CLOEXEC, 0, 0, 0) };
            if epfd < 0 {
                return None;
            }
            Some(EpollPoller {
                epfd: epfd as RawFd,
                buf: vec![EpollEvent { events: 0, data: 0 }; 128],
            })
        }

        fn ctl(&self, op: usize, fd: RawFd, token: u64, readable: bool, writable: bool) {
            let mut events = EPOLLRDHUP;
            if readable {
                events |= EPOLLIN;
            }
            if writable {
                events |= EPOLLOUT;
            }
            let ev = EpollEvent {
                events,
                data: token,
            };
            // Registration failures (e.g. a fd closed by the peer in the
            // same tick) surface as missing readiness; the timeout sweep
            // reaps such connections, so this is deliberately non-fatal.
            unsafe {
                syscall4(
                    SYS_EPOLL_CTL,
                    self.epfd as usize,
                    op,
                    fd as usize,
                    &ev as *const EpollEvent as usize,
                );
            }
        }
    }

    impl Poller for EpollPoller {
        fn register(&mut self, fd: RawFd, token: u64, readable: bool, writable: bool) {
            self.ctl(EPOLL_CTL_ADD, fd, token, readable, writable);
        }

        fn modify(&mut self, fd: RawFd, token: u64, readable: bool, writable: bool) {
            self.ctl(EPOLL_CTL_MOD, fd, token, readable, writable);
        }

        fn deregister(&mut self, fd: RawFd) {
            self.ctl(EPOLL_CTL_DEL, fd, 0, false, false);
        }

        fn wait(&mut self, timeout_ms: i32, out: &mut Vec<Event>) {
            let n = unsafe {
                syscall4(
                    SYS_EPOLL_WAIT,
                    self.epfd as usize,
                    self.buf.as_mut_ptr() as usize,
                    self.buf.len(),
                    timeout_ms as usize,
                )
            };
            if n == EINTR || n < 0 {
                return;
            }
            for ev in &self.buf[..n as usize] {
                let events = ev.events;
                let hangup = events & (EPOLLERR | EPOLLHUP | EPOLLRDHUP) != 0;
                out.push(Event {
                    token: ev.data,
                    // Hangups surface as readable so the connection's
                    // next read observes EOF and closes cleanly.
                    readable: events & EPOLLIN != 0 || hangup,
                    writable: events & EPOLLOUT != 0,
                });
            }
        }

        fn name(&self) -> &'static str {
            "epoll"
        }
    }

    impl Drop for EpollPoller {
        fn drop(&mut self) {
            unsafe {
                syscall4(SYS_CLOSE, self.epfd as usize, 0, 0, 0);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::os::fd::AsRawFd;

    fn exercise(mut poller: Box<dyn Poller>) {
        let (mut a, mut b) = std::os::unix::net::UnixStream::pair().expect("socketpair");
        a.set_nonblocking(true).unwrap();
        b.set_nonblocking(true).unwrap();
        poller.register(a.as_raw_fd(), 7, true, false);

        // Nothing pending: epoll reports nothing; the scan poller may
        // spuriously report readiness, which consumers absorb as
        // WouldBlock — so only the positive direction is asserted.
        b.write_all(b"x").unwrap();
        let mut events = Vec::new();
        for _ in 0..100 {
            poller.wait(10, &mut events);
            if events.iter().any(|e| e.token == 7 && e.readable) {
                break;
            }
            events.clear();
        }
        assert!(
            events.iter().any(|e| e.token == 7 && e.readable),
            "{} poller never reported readability",
            poller.name()
        );
        let mut buf = [0u8; 8];
        assert_eq!(a.read(&mut buf).unwrap(), 1);
        poller.deregister(a.as_raw_fd());
    }

    #[test]
    fn scan_poller_reports_registered_fds() {
        exercise(Box::new(ScanPoller::default()));
    }

    #[cfg(all(target_os = "linux", target_arch = "x86_64"))]
    #[test]
    fn epoll_poller_reports_readability() {
        let poller = epoll::EpollPoller::new().expect("epoll_create1");
        exercise(Box::new(poller));
    }

    #[test]
    fn default_poller_selection_honors_force_scan() {
        assert_eq!(new_poller(true).name(), "scan");
        #[cfg(all(target_os = "linux", target_arch = "x86_64"))]
        if std::env::var("MSJ_SERVE_POLLER").is_err() {
            assert_eq!(new_poller(false).name(), "epoll");
        }
    }
}

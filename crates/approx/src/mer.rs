//! Maximum enclosed rectangle (MER) — the progressive rectangle
//! approximation (§3.3).
//!
//! The paper restricts the search to rectangles that (1) intersect the
//! longest enclosed horizontal connection starting in a vertex and (2)
//! have coordinates drawn from the vertex coordinates. We implement the
//! same anchored band search; our rectangles' x-extents come from exact
//! edge/band contact (a superset of the vertex-coordinate grid that is
//! still strictly enclosed), and for very complex polygons the candidate
//! y-levels are quantile-capped (DESIGN.md §3).

use msj_geom::{Point, PolygonWithHoles, Rect, Segment};

/// The longest enclosed horizontal segment that starts at a vertex of the
/// region ("the anchor"). Returns `None` for degenerate regions where no
/// vertex admits a horizontal extension.
pub fn longest_horizontal_chord(region: &PolygonWithHoles) -> Option<Segment> {
    let edges: Vec<Segment> = region.edges().collect();
    let mut best: Option<Segment> = None;
    let mut best_len = 0.0f64;

    let vertices: Vec<Point> = region
        .outer()
        .vertices()
        .iter()
        .chain(region.holes().iter().flat_map(|h| h.vertices().iter()))
        .copied()
        .collect();

    for &v in &vertices {
        // Collect crossing abscissae of the horizontal line y = v.y.
        let mut xs: Vec<f64> = Vec::new();
        for e in &edges {
            let (y1, y2) = (e.a.y, e.b.y);
            if (y1 - v.y) * (y2 - v.y) < 0.0 {
                // Proper crossing.
                let t = (v.y - y1) / (y2 - y1);
                xs.push(e.a.x + t * (e.b.x - e.a.x));
            } else if y1 == v.y && y2 != v.y {
                xs.push(e.a.x);
            }
            // (Edges lying entirely on the line contribute their endpoints
            // via the adjacent edges.)
        }
        xs.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        // Extend right: nearest crossing right of v.
        for &x in xs.iter() {
            if x > v.x + 1e-12 {
                let candidate = Segment::new(v, Point::new(x, v.y));
                let mid = candidate.a.midpoint(candidate.b);
                if region.contains_point(mid) && candidate.len() > best_len {
                    best_len = candidate.len();
                    best = Some(candidate);
                }
                break;
            }
        }
        // Extend left: nearest crossing left of v.
        for &x in xs.iter().rev() {
            if x < v.x - 1e-12 {
                let candidate = Segment::new(Point::new(x, v.y), v);
                let mid = candidate.a.midpoint(candidate.b);
                if region.contains_point(mid) && candidate.len() > best_len {
                    best_len = candidate.len();
                    best = Some(candidate);
                }
                break;
            }
        }
    }
    best
}

/// Computes the paper-style maximum enclosed rectangle.
///
/// `max_levels` caps the candidate y-levels per side of the anchor
/// (quantile selection); 0 means the library default of 48. Returns `None`
/// when no positive-area enclosed rectangle intersecting the anchor
/// exists (never the case for the generated datasets).
pub fn max_enclosed_rect(region: &PolygonWithHoles, max_levels: usize) -> Option<Rect> {
    let anchor = longest_horizontal_chord(region)?;
    let y_a = anchor.a.y;
    let (ax1, ax2) = (anchor.a.x.min(anchor.b.x), anchor.a.x.max(anchor.b.x));
    let max_levels = if max_levels == 0 { 48 } else { max_levels };

    let edges: Vec<Segment> = region.edges().collect();

    // Candidate y levels from vertex coordinates, split around the anchor.
    let mut ys: Vec<f64> = region
        .outer()
        .vertices()
        .iter()
        .chain(region.holes().iter().flat_map(|h| h.vertices().iter()))
        .map(|p| p.y)
        .collect();
    // Supplement sparse vertex grids (low-complexity polygons) with evenly
    // spaced levels so an enclosed rectangle always exists; for the
    // paper's many-vertex cartography objects the vertex levels dominate.
    let mbr = region.mbr();
    for i in 1..16 {
        ys.push(mbr.ymin() + mbr.height() * i as f64 / 16.0);
    }
    ys.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    ys.dedup_by(|a, b| (*a - *b).abs() < 1e-12);
    let lows: Vec<f64> = quantile_cap(
        ys.iter().copied().filter(|&y| y <= y_a).collect(),
        max_levels,
    );
    let highs: Vec<f64> = quantile_cap(
        ys.iter().copied().filter(|&y| y >= y_a).collect(),
        max_levels,
    );

    let mut best: Option<Rect> = None;
    let mut best_area = 0.0f64;
    let mut blocked: Vec<(f64, f64)> = Vec::new();

    for &ylo in &lows {
        for &yhi in &highs {
            if yhi - ylo <= 1e-12 {
                continue;
            }
            // Upper bound check: even the full MBR width cannot beat best.
            let mbr = region.mbr();
            if (yhi - ylo) * mbr.width() <= best_area {
                continue;
            }
            blocked.clear();
            collect_blocked_intervals(&edges, ylo, yhi, &mut blocked);
            blocked.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite"));

            // Walk the gaps between blocked intervals.
            let mut x_cursor = f64::NEG_INFINITY;
            let mut idx = 0;
            loop {
                // Merge all intervals starting before the cursor.
                let mut gap_end = f64::INFINITY;
                while idx < blocked.len() && blocked[idx].0 <= x_cursor {
                    x_cursor = x_cursor.max(blocked[idx].1);
                    idx += 1;
                }
                if idx < blocked.len() {
                    gap_end = blocked[idx].0;
                }
                // Free interval is (x_cursor, gap_end).
                if x_cursor.is_finite() && gap_end > x_cursor {
                    let x1 = x_cursor;
                    let x2 = if gap_end.is_finite() {
                        gap_end
                    } else {
                        x_cursor
                    };
                    if x2 > x1 {
                        consider_rect(
                            region,
                            x1,
                            x2,
                            ylo,
                            yhi,
                            y_a,
                            ax1,
                            ax2,
                            &mut best,
                            &mut best_area,
                        );
                    }
                }
                if idx >= blocked.len() {
                    break;
                }
                x_cursor = blocked[idx].1.max(x_cursor);
                idx += 1;
            }
        }
    }
    best
}

/// Keeps at most `cap` values, evenly spread over the sorted input.
fn quantile_cap(values: Vec<f64>, cap: usize) -> Vec<f64> {
    if values.len() <= cap {
        return values;
    }
    let n = values.len();
    (0..cap).map(|i| values[i * (n - 1) / (cap - 1)]).collect()
}

/// For the horizontal band `(ylo, yhi)`, appends for every edge crossing
/// the band's open interior its x-extent within the band.
fn collect_blocked_intervals(edges: &[Segment], ylo: f64, yhi: f64, out: &mut Vec<(f64, f64)>) {
    for e in edges {
        let (ey_min, ey_max) = (e.a.y.min(e.b.y), e.a.y.max(e.b.y));
        // Edge must pass through the open band interior.
        if ey_max <= ylo || ey_min >= yhi {
            continue;
        }
        // Clip edge to the band.
        let x_at = |y: f64| -> f64 {
            if (e.b.y - e.a.y).abs() < 1e-300 {
                e.a.x
            } else {
                e.a.x + (y - e.a.y) / (e.b.y - e.a.y) * (e.b.x - e.a.x)
            }
        };
        let y1 = ey_min.max(ylo);
        let y2 = ey_max.min(yhi);
        if ey_min == ey_max {
            // Horizontal edge strictly inside the band blocks its span.
            out.push((e.a.x.min(e.b.x), e.a.x.max(e.b.x)));
        } else {
            let xa = x_at(y1);
            let xb = x_at(y2);
            out.push((xa.min(xb), xa.max(xb)));
        }
    }
}

/// Registers the rectangle `[x1,x2]×[ylo,yhi]` if it is enclosed,
/// anchor-intersecting and larger than the current best.
#[allow(clippy::too_many_arguments)]
fn consider_rect(
    region: &PolygonWithHoles,
    x1: f64,
    x2: f64,
    ylo: f64,
    yhi: f64,
    y_a: f64,
    ax1: f64,
    ax2: f64,
    best: &mut Option<Rect>,
    best_area: &mut f64,
) {
    // Must overlap the anchor segment (band already spans y_a by
    // construction, but guard anyway).
    if y_a < ylo || y_a > yhi {
        return;
    }
    if x2 < ax1 || x1 > ax2 {
        return;
    }
    let area = (x2 - x1) * (yhi - ylo);
    if area <= *best_area {
        return;
    }
    // Final containment check: the band gap logic guarantees no edge
    // crosses the rect interior; one interior sample decides in/out.
    let mid = Point::new(0.5 * (x1 + x2), 0.5 * (ylo + yhi));
    if region.contains_point(mid) {
        *best = Some(Rect::from_bounds(x1, ylo, x2, yhi));
        *best_area = area;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use msj_geom::Polygon;

    fn poly(coords: &[(f64, f64)]) -> PolygonWithHoles {
        Polygon::new(coords.iter().map(|&(x, y)| Point::new(x, y)).collect())
            .unwrap()
            .into()
    }

    /// Samples rectangle points and asserts each is in the region.
    fn assert_enclosed(region: &PolygonWithHoles, r: &Rect) {
        for i in 0..=8 {
            for j in 0..=8 {
                let p = Point::new(
                    r.xmin() + (r.width()) * i as f64 / 8.0,
                    r.ymin() + (r.height()) * j as f64 / 8.0,
                );
                // Shrink towards center a hair to dodge boundary rounding.
                let q = p.lerp(r.center(), 1e-9);
                assert!(region.contains_point(q), "{q:?} outside region");
            }
        }
    }

    #[test]
    fn square_mer_is_the_square() {
        let sq = poly(&[(0.0, 0.0), (4.0, 0.0), (4.0, 4.0), (0.0, 4.0)]);
        let r = max_enclosed_rect(&sq, 0).unwrap();
        assert!((r.area() - 16.0).abs() < 1e-9, "area {}", r.area());
    }

    #[test]
    fn anchor_of_square_is_full_side() {
        let sq = poly(&[(0.0, 0.0), (4.0, 0.0), (4.0, 4.0), (0.0, 4.0)]);
        let a = longest_horizontal_chord(&sq).unwrap();
        assert!((a.len() - 4.0).abs() < 1e-9);
    }

    #[test]
    fn l_shape_mer_is_larger_arm() {
        // L-shape with a wide bottom arm [0,6]×[0,2] and tall left arm
        // [0,2]×[0,6].
        let l = poly(&[
            (0.0, 0.0),
            (6.0, 0.0),
            (6.0, 2.0),
            (2.0, 2.0),
            (2.0, 6.0),
            (0.0, 6.0),
        ]);
        let r = max_enclosed_rect(&l, 0).unwrap();
        assert_enclosed(&l, &r);
        assert!(
            (r.area() - 12.0).abs() < 1e-6,
            "area {} rect {:?}",
            r.area(),
            r
        );
    }

    #[test]
    fn mer_avoids_holes() {
        let outer = Polygon::new(
            [(0.0, 0.0), (8.0, 0.0), (8.0, 4.0), (0.0, 4.0)]
                .iter()
                .map(|&(x, y)| Point::new(x, y))
                .collect(),
        )
        .unwrap();
        let hole = Polygon::new(
            [(3.5, 1.0), (4.5, 1.0), (4.5, 3.0), (3.5, 3.0)]
                .iter()
                .map(|&(x, y)| Point::new(x, y))
                .collect(),
        )
        .unwrap();
        let region = PolygonWithHoles::new(outer, vec![hole]);
        let r = max_enclosed_rect(&region, 0).unwrap();
        assert_enclosed(&region, &r);
        // Best full-height rect left of the hole is [0,3.5]×[0,4] = 14.
        assert!(r.area() >= 13.9, "area {}", r.area());
        // It must not cover the hole.
        assert!(!r.contains_point(Point::new(4.0, 2.0)));
    }

    #[test]
    fn mer_of_triangle_is_enclosed_and_substantial() {
        let tri = poly(&[(0.0, 0.0), (8.0, 0.0), (0.0, 8.0)]);
        let r = max_enclosed_rect(&tri, 0).unwrap();
        assert_enclosed(&tri, &r);
        // Optimal inscribed axis-parallel rectangle of a right triangle
        // has half the triangle's area (16); the vertex-anchored variant
        // finds a large fraction of that.
        assert!(r.area() > 8.0, "area {}", r.area());
    }

    #[test]
    fn quantile_cap_limits_and_keeps_extremes() {
        let vals: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let capped = quantile_cap(vals, 10);
        assert_eq!(capped.len(), 10);
        assert_eq!(capped[0], 0.0);
        assert_eq!(*capped.last().unwrap(), 99.0);
        let small = quantile_cap(vec![1.0, 2.0], 10);
        assert_eq!(small.len(), 2);
    }

    #[test]
    fn concave_blob_mer_enclosed() {
        let blob = poly(&[
            (0.0, 0.0),
            (5.0, -1.0),
            (9.0, 1.0),
            (8.0, 4.0),
            (5.0, 3.0),
            (3.0, 6.0),
            (-1.0, 4.0),
            (-2.0, 1.0),
        ]);
        let r = max_enclosed_rect(&blob, 0).unwrap();
        assert!(r.area() > 0.0);
        assert_enclosed(&blob, &r);
    }
}

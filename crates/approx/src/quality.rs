//! Approximation quality metrics (§3.1, §3.2, §3.4).
//!
//! * **normalized false area** (Table 1): `(area(appr) − area(obj)) /
//!   area(obj)`;
//! * **MBR-based false area** (Figure 4): the approximation is first
//!   intersected with the MBR (which is always tested first), then the
//!   false area of that intersection is normalized to the object area;
//! * **area extension** (Figure 9 / §3.4): x-extension · y-extension of
//!   the approximation's own bounding box, which governs R*-tree page
//!   regions when the approximation replaces the MBR as the key;
//! * **progressive quality** (Figure 8): `area(prog) / area(obj)`.

use crate::false_area::AREA_RESOLUTION;
use crate::kinds::{Conservative, Progressive};
use msj_geom::{clip_convex, ring_area, SpatialObject};

/// `(area(appr) − area(obj)) / area(obj)` — Table 1's measure.
pub fn normalized_false_area(object: &SpatialObject, approx: &Conservative) -> f64 {
    let a = object.area();
    (approx.area() - a) / a
}

/// The MBR-based false area of Figure 4, normalized to the object area:
/// `(area(appr ∩ MBR) − area(obj)) / area(obj)`.
///
/// Clamped at 0 from below: the clipped approximation always contains the
/// object, so a negative value can only arise from polygonization
/// round-off.
pub fn mbr_based_false_area(object: &SpatialObject, approx: &Conservative) -> f64 {
    let mbr_ring = object.mbr().corners().to_vec();
    let appr_ring = approx.to_ring(AREA_RESOLUTION);
    let clipped_area = if appr_ring.len() < 3 {
        0.0
    } else {
        ring_area(&clip_convex(&appr_ring, &mbr_ring))
    };
    let a = object.area();
    ((clipped_area - a) / a).max(0.0)
}

/// Area extension: the area of the approximation's own axis-parallel
/// bounding box (`x-extension · y-extension`, §3.4).
pub fn area_extension(approx: &Conservative) -> f64 {
    approx.aabb().area()
}

/// Relative area-extension overhead versus the MBR:
/// `area_extension(appr) / area(MBR) − 1` (the +21 % / +44 % / +51 % /
/// +22 % numbers of §3.4).
pub fn area_extension_overhead(object: &SpatialObject, approx: &Conservative) -> f64 {
    area_extension(approx) / object.mbr().area() - 1.0
}

/// `area(prog) / area(obj)` — Figure 8's measure (≈ 0.42 for MEC,
/// ≈ 0.44 for MER in the paper).
pub fn progressive_quality(object: &SpatialObject, prog: &Progressive) -> f64 {
    prog.area() / object.area()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kinds::{ConservativeKind, ProgressiveKind};
    use msj_geom::{Point, Polygon, SpatialObject};

    fn object(coords: &[(f64, f64)]) -> SpatialObject {
        SpatialObject::new(
            0,
            Polygon::new(coords.iter().map(|&(x, y)| Point::new(x, y)).collect())
                .unwrap()
                .into(),
        )
    }

    /// A cross/plus shape: area 5, MBR area 9 → NFA = 0.8.
    fn plus() -> SpatialObject {
        object(&[
            (1.0, 0.0),
            (2.0, 0.0),
            (2.0, 1.0),
            (3.0, 1.0),
            (3.0, 2.0),
            (2.0, 2.0),
            (2.0, 3.0),
            (1.0, 3.0),
            (1.0, 2.0),
            (0.0, 2.0),
            (0.0, 1.0),
            (1.0, 1.0),
        ])
    }

    #[test]
    fn nfa_of_mbr_on_plus_shape() {
        let p = plus();
        let mbr = Conservative::compute(ConservativeKind::Mbr, &p);
        assert!((normalized_false_area(&p, &mbr) - 0.8).abs() < 1e-9);
    }

    #[test]
    fn nfa_of_square_is_zero() {
        let sq = object(&[(0.0, 0.0), (2.0, 0.0), (2.0, 2.0), (0.0, 2.0)]);
        let mbr = Conservative::compute(ConservativeKind::Mbr, &sq);
        assert!(normalized_false_area(&sq, &mbr).abs() < 1e-12);
    }

    #[test]
    fn mbr_based_false_area_never_exceeds_plain_nfa() {
        // Intersecting with the MBR can only reduce the approximation.
        let p = plus();
        for kind in ConservativeKind::ALL {
            let a = Conservative::compute(kind, &p);
            let plain = normalized_false_area(&p, &a).max(0.0);
            let based = mbr_based_false_area(&p, &a);
            assert!(
                based <= plain + 1e-9,
                "{}: MBR-based {} > plain {}",
                kind.name(),
                based,
                plain
            );
            assert!(based >= 0.0);
        }
    }

    #[test]
    fn figure4_ordering_hull_tightest() {
        let p = plus();
        let ch = mbr_based_false_area(&p, &Conservative::compute(ConservativeKind::ConvexHull, &p));
        let c5 = mbr_based_false_area(&p, &Conservative::compute(ConservativeKind::FiveCorner, &p));
        let mbr = mbr_based_false_area(&p, &Conservative::compute(ConservativeKind::Mbr, &p));
        assert!(ch <= c5 + 1e-9);
        assert!(c5 <= mbr + 1e-9);
    }

    #[test]
    fn area_extension_of_mbr_is_identity() {
        let p = plus();
        let mbr = Conservative::compute(ConservativeKind::Mbr, &p);
        assert!((area_extension(&mbr) - p.mbr().area()).abs() < 1e-12);
        assert!(area_extension_overhead(&p, &mbr).abs() < 1e-12);
    }

    #[test]
    fn area_extension_overhead_nonnegative_for_circumscribed_kinds() {
        // Any conservative approximation's AABB contains the object's MBR.
        let p = plus();
        for kind in ConservativeKind::ALL {
            let a = Conservative::compute(kind, &p);
            assert!(
                area_extension_overhead(&p, &a) >= -1e-9,
                "{} has negative overhead",
                kind.name()
            );
        }
    }

    #[test]
    fn progressive_quality_in_unit_range() {
        let p = plus();
        for kind in ProgressiveKind::ALL {
            let prog = Progressive::compute(kind, &p);
            let q = progressive_quality(&p, &prog);
            assert!(q > 0.0 && q <= 1.0, "{} quality {}", kind.name(), q);
        }
    }

    #[test]
    fn progressive_quality_of_square_is_high() {
        // For a square both MEC and MER are large fractions of the area.
        let sq = object(&[(0.0, 0.0), (4.0, 0.0), (4.0, 4.0), (0.0, 4.0)]);
        let mer = Progressive::compute(ProgressiveKind::Mer, &sq);
        assert!(progressive_quality(&sq, &mer) > 0.99);
        let mec = Progressive::compute(ProgressiveKind::Mec, &sq);
        // Inscribed circle of a square: π/4 ≈ 0.785.
        let q = progressive_quality(&sq, &mec);
        assert!(
            (q - std::f64::consts::FRAC_PI_4).abs() < 0.02,
            "quality {q}"
        );
    }
}

//! Minimum bounding circle (MBC) via Welzl's move-to-front algorithm
//! (expected linear time, as used in the paper via [Wel 91]).

use crate::circle::Circle;
use msj_geom::Point;

/// Computes the minimum enclosing circle of a point set.
///
/// Deterministic variant of Welzl's algorithm: instead of random shuffling
/// it uses the move-to-front heuristic, which has the same expected
/// behaviour on non-adversarial input and keeps the library free of hidden
/// randomness. Returns `None` for an empty set.
pub fn min_bounding_circle(points: &[Point]) -> Option<Circle> {
    if points.is_empty() {
        return None;
    }
    let mut pts: Vec<Point> = points.to_vec();
    let mut circle = Circle::new(pts[0], 0.0);
    for i in 1..pts.len() {
        if circle.contains_point(pts[i]) {
            continue;
        }
        // pts[i] must be on the boundary.
        let mut c1 = Circle::new(pts[i], 0.0);
        for j in 0..i {
            if c1.contains_point(pts[j]) {
                continue;
            }
            // pts[i] and pts[j] on the boundary.
            let mut c2 = circle_from_2(pts[i], pts[j]);
            for k in 0..j {
                if c2.contains_point(pts[k]) {
                    continue;
                }
                c2 = circle_from_3(pts[i], pts[j], pts[k]);
            }
            c1 = c2;
        }
        circle = c1;
        // Move-to-front: keep hard points early.
        pts.swap(0, i);
    }
    Some(circle)
}

/// Smallest circle through two points (diameter circle).
fn circle_from_2(a: Point, b: Point) -> Circle {
    let center = a.midpoint(b);
    Circle::new(center, center.dist(a))
}

/// Circumcircle of three points; falls back to the diametral circle of the
/// farthest pair when (numerically) collinear.
fn circle_from_3(a: Point, b: Point, c: Point) -> Circle {
    let d = 2.0 * (a.x * (b.y - c.y) + b.x * (c.y - a.y) + c.x * (a.y - b.y));
    if d.abs() < 1e-30 {
        // Collinear: take the two farthest apart.
        let (p, q) = farthest_pair(a, b, c);
        return circle_from_2(p, q);
    }
    let ux =
        (a.norm_sq() * (b.y - c.y) + b.norm_sq() * (c.y - a.y) + c.norm_sq() * (a.y - b.y)) / d;
    let uy =
        (a.norm_sq() * (c.x - b.x) + b.norm_sq() * (a.x - c.x) + c.norm_sq() * (b.x - a.x)) / d;
    let center = Point::new(ux, uy);
    let r = center.dist(a).max(center.dist(b)).max(center.dist(c));
    Circle::new(center, r)
}

fn farthest_pair(a: Point, b: Point, c: Point) -> (Point, Point) {
    let ab = a.dist_sq(b);
    let ac = a.dist_sq(c);
    let bc = b.dist_sq(c);
    if ab >= ac && ab >= bc {
        (a, b)
    } else if ac >= bc {
        (a, c)
    } else {
        (b, c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn covers_all(c: &Circle, pts: &[Point]) -> bool {
        pts.iter()
            .all(|&p| c.center.dist(p) <= c.radius * (1.0 + 1e-9) + 1e-12)
    }

    #[test]
    fn empty_and_singleton() {
        assert!(min_bounding_circle(&[]).is_none());
        let c = min_bounding_circle(&[Point::new(3.0, 4.0)]).unwrap();
        assert_eq!(c.center, Point::new(3.0, 4.0));
        assert_eq!(c.radius, 0.0);
    }

    #[test]
    fn two_points_diametral() {
        let c = min_bounding_circle(&[Point::new(0.0, 0.0), Point::new(2.0, 0.0)]).unwrap();
        assert!((c.center.x - 1.0).abs() < 1e-12);
        assert!((c.radius - 1.0).abs() < 1e-12);
    }

    #[test]
    fn equilateral_triangle_uses_circumcircle() {
        let pts = [
            Point::new(0.0, 0.0),
            Point::new(1.0, 0.0),
            Point::new(0.5, 3f64.sqrt() / 2.0),
        ];
        let c = min_bounding_circle(&pts).unwrap();
        // Circumradius of a unit equilateral triangle is 1/√3.
        assert!((c.radius - 1.0 / 3f64.sqrt()).abs() < 1e-9);
        assert!(covers_all(&c, &pts));
    }

    #[test]
    fn obtuse_triangle_uses_diameter() {
        // For an obtuse triangle the MBC is the diametral circle of the
        // longest side.
        let pts = [
            Point::new(0.0, 0.0),
            Point::new(4.0, 0.0),
            Point::new(2.0, 0.1),
        ];
        let c = min_bounding_circle(&pts).unwrap();
        assert!((c.radius - 2.0).abs() < 1e-6);
        assert!(covers_all(&c, &pts));
    }

    #[test]
    fn square_mbc() {
        let pts = [
            Point::new(0.0, 0.0),
            Point::new(2.0, 0.0),
            Point::new(2.0, 2.0),
            Point::new(0.0, 2.0),
        ];
        let c = min_bounding_circle(&pts).unwrap();
        assert!((c.radius - 2f64.sqrt()).abs() < 1e-9);
        assert!((c.center.x - 1.0).abs() < 1e-9);
        assert!(covers_all(&c, &pts));
    }

    #[test]
    fn collinear_points() {
        let pts = [
            Point::new(0.0, 0.0),
            Point::new(1.0, 1.0),
            Point::new(2.0, 2.0),
            Point::new(3.0, 3.0),
        ];
        let c = min_bounding_circle(&pts).unwrap();
        assert!(covers_all(&c, &pts));
        assert!((c.radius - pts[0].dist(pts[3]) / 2.0).abs() < 1e-9);
    }

    #[test]
    fn pseudo_random_points_covered_and_tight() {
        // Deterministic LCG points.
        let mut pts = Vec::new();
        let mut x: u64 = 88172645463325252;
        for _ in 0..300 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let a = (x >> 11) as f64 / (1u64 << 53) as f64 * 20.0 - 10.0;
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let b = (x >> 11) as f64 / (1u64 << 53) as f64 * 20.0 - 10.0;
            pts.push(Point::new(a, b));
        }
        let c = min_bounding_circle(&pts).unwrap();
        assert!(covers_all(&c, &pts));
        // Tightness: at least two points are (nearly) on the boundary.
        let on_boundary = pts
            .iter()
            .filter(|p| (c.center.dist(**p) - c.radius).abs() < 1e-6 * c.radius)
            .count();
        assert!(
            on_boundary >= 2,
            "support points on boundary: {on_boundary}"
        );
    }
}

//! Minimum bounding ellipse (MBE) via Khachiyan's minimum-volume enclosing
//! ellipsoid iteration.
//!
//! The paper uses Welzl's randomized algorithm [Wel 91]; Khachiyan's
//! iteration computes the same (unique) Löwner–John ellipse to a chosen
//! tolerance and is deterministic — see DESIGN.md §3 for the substitution
//! note. We run it on the convex hull only, which leaves the result
//! unchanged and makes the per-iteration cost proportional to the hull
//! size.

use crate::ellipse::Ellipse;
use msj_geom::{convex_hull, Point};

/// Computes the minimum-volume enclosing ellipse of a point set.
///
/// `tolerance` bounds the relative deviation of the Khachiyan weights
/// (1e-7 gives area accuracy far below anything the experiments can
/// resolve). Returns `None` for degenerate inputs (fewer than three
/// non-collinear points).
pub fn min_bounding_ellipse(points: &[Point], tolerance: f64) -> Option<Ellipse> {
    let hull = convex_hull(points);
    if hull.len() < 3 {
        return None;
    }
    let n = hull.len();
    let d = 2.0f64;

    // Khachiyan's algorithm on the "lifted" 3D points (x, y, 1).
    let mut u = vec![1.0 / n as f64; n];
    let max_iter = 10_000;
    for _ in 0..max_iter {
        // X = Σ u_i q_i q_iᵀ  (3x3 symmetric), q = (x, y, 1).
        let mut x = [[0.0f64; 3]; 3];
        for (i, p) in hull.iter().enumerate() {
            let q = [p.x, p.y, 1.0];
            for r in 0..3 {
                for c in 0..3 {
                    x[r][c] += u[i] * q[r] * q[c];
                }
            }
        }
        let xinv = invert3(&x)?;
        // M_i = q_iᵀ X⁻¹ q_i
        let mut max_m = f64::NEG_INFINITY;
        let mut max_i = 0;
        for (i, p) in hull.iter().enumerate() {
            let q = [p.x, p.y, 1.0];
            let mut m = 0.0;
            for r in 0..3 {
                for c in 0..3 {
                    m += q[r] * xinv[r][c] * q[c];
                }
            }
            if m > max_m {
                max_m = m;
                max_i = i;
            }
        }
        let step = (max_m - d - 1.0) / ((d + 1.0) * (max_m - 1.0));
        if step <= tolerance {
            break;
        }
        for w in u.iter_mut() {
            *w *= 1.0 - step;
        }
        u[max_i] += step;
    }

    // Center c = Σ u_i p_i.
    let mut center = Point::ORIGIN;
    for (i, p) in hull.iter().enumerate() {
        center = center + *p * u[i];
    }
    // A = (1/d) (Σ u_i p_i p_iᵀ - c cᵀ)⁻¹ defines (x-c)ᵀ A (x-c) ≤ 1.
    let mut s = [[0.0f64; 2]; 2];
    for (i, p) in hull.iter().enumerate() {
        s[0][0] += u[i] * p.x * p.x;
        s[0][1] += u[i] * p.x * p.y;
        s[1][1] += u[i] * p.y * p.y;
    }
    s[0][0] -= center.x * center.x;
    s[0][1] -= center.x * center.y;
    s[1][1] -= center.y * center.y;
    s[1][0] = s[0][1];
    let det = s[0][0] * s[1][1] - s[0][1] * s[1][0];
    if det <= 0.0 || !det.is_finite() {
        return None;
    }
    // A = S⁻¹ / d.
    let a_mat = [
        [s[1][1] / (det * d), -s[0][1] / (det * d)],
        [-s[1][0] / (det * d), s[0][0] / (det * d)],
    ];
    ellipse_from_matrix(center, a_mat).map(|e| inflate_to_cover(e, &hull))
}

/// Converts the quadratic form `(x-c)ᵀ A (x-c) ≤ 1` into axis/angle form
/// via the eigendecomposition of the symmetric 2×2 matrix `A`.
fn ellipse_from_matrix(center: Point, a: [[f64; 2]; 2]) -> Option<Ellipse> {
    let (m11, m12, m22) = (a[0][0], a[0][1], a[1][1]);
    let tr = m11 + m22;
    let disc = ((m11 - m22).powi(2) + 4.0 * m12 * m12).sqrt();
    let l1 = 0.5 * (tr + disc); // larger eigenvalue → minor axis
    let l2 = 0.5 * (tr - disc); // smaller eigenvalue → major axis
    if l1 <= 0.0 || l2 <= 0.0 || !l1.is_finite() || !l2.is_finite() {
        return None;
    }
    // Eigenvector for l2 (major axis direction).
    let v = if m12.abs() > 1e-300 {
        Point::new(l2 - m22, m12)
    } else if m11 <= m22 {
        Point::new(1.0, 0.0)
    } else {
        Point::new(0.0, 1.0)
    };
    let angle = v.y.atan2(v.x);
    Some(Ellipse::new(
        center,
        1.0 / l2.sqrt(),
        1.0 / l1.sqrt(),
        angle,
    ))
}

/// Scales the ellipse minimally so it covers every hull point — absorbs
/// the finite Khachiyan tolerance so the result is strictly conservative.
fn inflate_to_cover(e: Ellipse, hull: &[Point]) -> Ellipse {
    let mut max_r: f64 = 1.0;
    for &p in hull {
        max_r = max_r.max(e.whiten(p).norm());
    }
    let f = max_r * (1.0 + 1e-12);
    Ellipse::new(e.center, e.a * f, e.b * f, e.angle)
}

/// Inverts a 3×3 matrix; `None` when singular.
fn invert3(m: &[[f64; 3]; 3]) -> Option<[[f64; 3]; 3]> {
    let det = m[0][0] * (m[1][1] * m[2][2] - m[1][2] * m[2][1])
        - m[0][1] * (m[1][0] * m[2][2] - m[1][2] * m[2][0])
        + m[0][2] * (m[1][0] * m[2][1] - m[1][1] * m[2][0]);
    if det.abs() < 1e-300 || !det.is_finite() {
        return None;
    }
    let inv_det = 1.0 / det;
    let mut inv = [[0.0f64; 3]; 3];
    inv[0][0] = (m[1][1] * m[2][2] - m[1][2] * m[2][1]) * inv_det;
    inv[0][1] = (m[0][2] * m[2][1] - m[0][1] * m[2][2]) * inv_det;
    inv[0][2] = (m[0][1] * m[1][2] - m[0][2] * m[1][1]) * inv_det;
    inv[1][0] = (m[1][2] * m[2][0] - m[1][0] * m[2][2]) * inv_det;
    inv[1][1] = (m[0][0] * m[2][2] - m[0][2] * m[2][0]) * inv_det;
    inv[1][2] = (m[0][2] * m[1][0] - m[0][0] * m[1][2]) * inv_det;
    inv[2][0] = (m[1][0] * m[2][1] - m[1][1] * m[2][0]) * inv_det;
    inv[2][1] = (m[0][1] * m[2][0] - m[0][0] * m[2][1]) * inv_det;
    inv[2][2] = (m[0][0] * m[1][1] - m[0][1] * m[1][0]) * inv_det;
    Some(inv)
}

#[cfg(test)]
mod tests {
    use super::*;

    const TOL: f64 = 1e-7;

    fn covers(e: &Ellipse, pts: &[Point]) -> bool {
        pts.iter().all(|&p| e.whiten(p).norm_sq() <= 1.0 + 1e-6)
    }

    #[test]
    fn degenerate_inputs() {
        assert!(min_bounding_ellipse(&[], TOL).is_none());
        assert!(min_bounding_ellipse(&[Point::new(1.0, 1.0)], TOL).is_none());
        let collinear = [
            Point::new(0.0, 0.0),
            Point::new(1.0, 1.0),
            Point::new(2.0, 2.0),
        ];
        assert!(min_bounding_ellipse(&collinear, TOL).is_none());
    }

    #[test]
    fn ellipse_of_symmetric_rectangle() {
        // MVEE of a w×h rectangle is the ellipse with semi-axes
        // (w/√2, h/√2) at its center.
        let pts = [
            Point::new(-2.0, -1.0),
            Point::new(2.0, -1.0),
            Point::new(2.0, 1.0),
            Point::new(-2.0, 1.0),
        ];
        let e = min_bounding_ellipse(&pts, TOL).unwrap();
        assert!((e.center.norm()) < 1e-6);
        assert!((e.a - 2.0 * 2f64.sqrt()).abs() < 1e-3, "a = {}", e.a);
        assert!((e.b - 2f64.sqrt()).abs() < 1e-3, "b = {}", e.b);
        assert!(covers(&e, &pts));
    }

    #[test]
    fn ellipse_covers_blob_points() {
        // Deterministic wavy ring of points.
        let pts: Vec<Point> = (0..80)
            .map(|i| {
                let t = i as f64 / 80.0 * std::f64::consts::TAU;
                let r = 3.0 + (3.0 * t).sin() + 0.5 * (7.0 * t).cos();
                Point::new(r * t.cos() * 1.8 + 5.0, r * t.sin() - 2.0)
            })
            .collect();
        let e = min_bounding_ellipse(&pts, TOL).unwrap();
        assert!(covers(&e, &pts));
    }

    #[test]
    fn ellipse_beats_circle_on_elongated_sets() {
        let pts: Vec<Point> = (0..40)
            .map(|i| {
                let t = i as f64 / 40.0 * std::f64::consts::TAU;
                Point::new(5.0 * t.cos(), 1.0 * t.sin())
            })
            .collect();
        let e = min_bounding_ellipse(&pts, TOL).unwrap();
        let c = crate::mbc::min_bounding_circle(&pts).unwrap();
        assert!(covers(&e, &pts));
        assert!(
            e.area() < 0.5 * c.area(),
            "MBE {} vs MBC {}",
            e.area(),
            c.area()
        );
    }

    #[test]
    fn ellipse_is_near_minimal_for_a_known_ellipse() {
        // Points on an ellipse with semi-axes 4 and 2 rotated by 0.6 rad:
        // the MVEE should approach that ellipse itself.
        let truth = Ellipse::new(Point::new(1.0, -3.0), 4.0, 2.0, 0.6);
        let pts: Vec<Point> = (0..64)
            .map(|i| truth.boundary_point(i as f64 / 64.0 * std::f64::consts::TAU))
            .collect();
        let e = min_bounding_ellipse(&pts, 1e-9).unwrap();
        assert!(covers(&e, &pts));
        assert!(
            (e.area() - truth.area()).abs() / truth.area() < 0.02,
            "area {} vs {}",
            e.area(),
            truth.area()
        );
    }

    #[test]
    fn rotation_invariance_of_area() {
        let base: Vec<Point> = (0..24)
            .map(|i| {
                let t = i as f64 / 24.0 * std::f64::consts::TAU;
                Point::new(3.0 * t.cos() + 0.4 * (2.0 * t).sin(), t.sin())
            })
            .collect();
        let a0 = min_bounding_ellipse(&base, TOL).unwrap().area();
        let rot: Vec<Point> = base.iter().map(|p| p.rotated(1.1)).collect();
        let a1 = min_bounding_ellipse(&rot, TOL).unwrap().area();
        assert!((a0 - a1).abs() / a0 < 1e-3);
    }
}

//! Per-relation approximation storage — **columnar** (struct-of-arrays).
//!
//! The paper stores approximations *in addition to the MBR* inside the
//! data pages of the spatial access method (§3.4, approach 2). This module
//! precomputes approximations for whole relations and provides the
//! byte-size model used for page-capacity calculations.
//!
//! ## Layout
//!
//! A store holds one approximation *kind* for every object of one
//! relation, and the geometric filter classifies millions of candidate
//! pairs against it. The former array-of-structs layout
//! (`Vec<FalseAreaEntry>` → `Conservative` enum → per-object `Vec<Point>`
//! heap ring) paid an enum dispatch plus a pointer chase per candidate.
//! The columnar layout separates:
//!
//! * the **payload columns** — one homogeneous, contiguous column per
//!   kind (a flat vertex arena with an offset table for the convex
//!   kinds; plain `Vec<Rect>` / `Vec<Circle>` / `Vec<Ellipse>` for the
//!   closed-form kinds), read through the borrow-only
//!   [`ConsView`];
//! * the **false-area column** — a bare `Vec<f64>` touched only by the
//!   (optional) false-area test, so the common "conservative test says
//!   disjoint, die early" path never loads it.
//!
//! Progressive stores use the same idea with a NaN sentinel for
//! degenerate (`Progressive::Empty`) approximations: every closed
//! intersection comparison against NaN is `false`, so an empty
//! approximation never identifies a hit — without a per-pair branch.

use crate::circle::Circle;
use crate::ellipse::Ellipse;
use crate::false_area::view_intersection_area;
use crate::kinds::{ConsView, Conservative, ConservativeKind, Progressive, ProgressiveKind};
use msj_geom::{ObjectId, Point, Rect, Relation};

/// Byte size of a stored conservative approximation, following §3.4/§5:
/// MBR 16 B, RMBR 20 B, 5-C 40 B; the others scale by parameter count at
/// 4 bytes per parameter.
pub fn conservative_bytes(kind: ConservativeKind, approx: Option<&Conservative>) -> usize {
    match kind {
        ConservativeKind::Mbr => 16,
        ConservativeKind::Mbc => 12,
        ConservativeKind::Mbe => 20,
        ConservativeKind::Rmbr => 20,
        ConservativeKind::FourCorner => 32,
        ConservativeKind::FiveCorner => 40,
        // Hull storage varies per object.
        ConservativeKind::ConvexHull => approx.map_or(0, |a| 4 * a.param_count()),
    }
}

/// Byte size of a stored progressive approximation (MEC 12 B, MER 16 B,
/// matching the paper's 16 B for the MER).
pub fn progressive_bytes(kind: ProgressiveKind) -> usize {
    match kind {
        ProgressiveKind::Mec => 12,
        ProgressiveKind::Mer => 16,
    }
}

/// The homogeneous payload columns of a [`ConservativeStore`].
#[derive(Debug, Clone)]
enum ConsColumns {
    /// `Mbr`: the keys themselves.
    Rects(Vec<Rect>),
    /// `Mbc`, when no entry degenerated.
    Circles(Vec<Circle>),
    /// `Mbe`, when no entry degenerated.
    Ellipses(Vec<Ellipse>),
    /// The convex kinds (RMBR / 4-C / 5-C / hull): ring `i` is
    /// `points[offsets[i] as usize..offsets[i + 1] as usize]` in one flat
    /// arena. MBR fallbacks are boxed into their 4-corner rings, so the
    /// column stays homogeneous.
    Convex {
        offsets: Vec<u32>,
        points: Vec<Point>,
    },
    /// Rare escape hatch: a curved kind (MBC/MBE) whose computation
    /// degenerated to an MBR fallback for at least one object.
    Mixed(Vec<Conservative>),
}

/// Borrowed offsets + arena of a convex column — the raw material of the
/// monomorphized filter plans (`msj-core`).
#[derive(Debug, Clone, Copy)]
pub struct ConvexSlices<'a> {
    offsets: &'a [u32],
    points: &'a [Point],
}

impl<'a> ConvexSlices<'a> {
    /// The vertex ring of object `id`.
    #[inline]
    pub fn ring(&self, id: ObjectId) -> &'a [Point] {
        let i = id as usize;
        &self.points[self.offsets[i] as usize..self.offsets[i + 1] as usize]
    }
}

/// Precomputed approximations of one kind for every object of a relation,
/// in columnar layout (see the module docs).
#[derive(Debug, Clone)]
pub struct ConservativeStore {
    pub kind: ConservativeKind,
    cols: ConsColumns,
    /// `area(approx) − area(object)` per object — only the false-area
    /// test reads this column.
    false_area: Vec<f64>,
    /// Total stored bytes across all objects under the §3.4 byte model,
    /// computed at build time from the per-object approximations (before
    /// MBR fallbacks are boxed into rings, so fallbacks keep their 16-B
    /// MBR price).
    total_bytes: usize,
}

impl ConservativeStore {
    /// Computes the approximation of `kind` (plus its false area, enabling
    /// the false-area test) for every object.
    pub fn build(kind: ConservativeKind, relation: &Relation) -> Self {
        let approxes: Vec<Conservative> = relation
            .iter()
            .map(|o| Conservative::compute(kind, o))
            .collect();
        let false_area: Vec<f64> = approxes
            .iter()
            .zip(relation.iter())
            .map(|(a, o)| (a.area() - o.area()).max(0.0))
            .collect();
        let total_bytes = match kind {
            // Hull storage varies per object (16 B for MBR fallbacks).
            ConservativeKind::ConvexHull => approxes
                .iter()
                .map(|a| conservative_bytes(kind, Some(a)))
                .sum(),
            kind => approxes.len() * conservative_bytes(kind, None),
        };
        let cols = match kind {
            ConservativeKind::Mbr => ConsColumns::Rects(
                approxes
                    .iter()
                    .map(|a| match a {
                        Conservative::Mbr(r) => *r,
                        _ => unreachable!("Mbr kind computes Mbr"),
                    })
                    .collect(),
            ),
            ConservativeKind::Rmbr
            | ConservativeKind::FourCorner
            | ConservativeKind::FiveCorner
            | ConservativeKind::ConvexHull => {
                let mut offsets = Vec::with_capacity(approxes.len() + 1);
                let mut points = Vec::new();
                offsets.push(0u32);
                for a in &approxes {
                    match a {
                        Conservative::Convex(_, ring) => points.extend_from_slice(ring),
                        // Degenerate geometry fell back to the MBR: box it
                        // into its corner ring to keep the column
                        // homogeneous (same closed semantics — the ring
                        // *is* the rectangle).
                        Conservative::Mbr(r) => points.extend_from_slice(&r.corners()),
                        _ => unreachable!("convex kinds compute rings or MBR fallbacks"),
                    }
                    offsets.push(points.len() as u32);
                }
                ConsColumns::Convex { offsets, points }
            }
            ConservativeKind::Mbc => {
                if approxes.iter().all(|a| matches!(a, Conservative::Mbc(_))) {
                    ConsColumns::Circles(
                        approxes
                            .iter()
                            .map(|a| match a {
                                Conservative::Mbc(c) => *c,
                                _ => unreachable!(),
                            })
                            .collect(),
                    )
                } else {
                    ConsColumns::Mixed(approxes)
                }
            }
            ConservativeKind::Mbe => {
                if approxes.iter().all(|a| matches!(a, Conservative::Mbe(_))) {
                    ConsColumns::Ellipses(
                        approxes
                            .iter()
                            .map(|a| match a {
                                Conservative::Mbe(e) => *e,
                                _ => unreachable!(),
                            })
                            .collect(),
                    )
                } else {
                    ConsColumns::Mixed(approxes)
                }
            }
        };
        ConservativeStore {
            kind,
            cols,
            false_area,
            total_bytes,
        }
    }

    /// The stored approximation of object `id`, as a borrow-only view.
    #[inline]
    pub fn view(&self, id: ObjectId) -> ConsView<'_> {
        let i = id as usize;
        match &self.cols {
            ConsColumns::Rects(rects) => ConsView::Rect(&rects[i]),
            ConsColumns::Circles(circles) => ConsView::Circle(&circles[i]),
            ConsColumns::Ellipses(ellipses) => ConsView::Ellipse(&ellipses[i]),
            ConsColumns::Convex { offsets, points } => {
                ConsView::Convex(&points[offsets[i] as usize..offsets[i + 1] as usize])
            }
            ConsColumns::Mixed(approxes) => approxes[i].as_view(),
        }
    }

    /// The false-area column entry of object `id`.
    #[inline]
    pub fn false_area(&self, id: ObjectId) -> f64 {
        self.false_area[id as usize]
    }

    /// The false-area test (§3.3) between `id` here and `other_id` in
    /// `other`: `true` means the objects certainly intersect.
    pub fn false_area_test_with(&self, id: ObjectId, other: &Self, other_id: ObjectId) -> bool {
        let inter = view_intersection_area(&self.view(id), &other.view(other_id));
        inter > self.false_area(id) + other.false_area(other_id)
    }

    /// The convex column, when this store's kind packs vertex rings —
    /// the monomorphized filter plans build on this.
    #[inline]
    pub fn convex_slices(&self) -> Option<ConvexSlices<'_>> {
        match &self.cols {
            ConsColumns::Convex { offsets, points } => Some(ConvexSlices { offsets, points }),
            _ => None,
        }
    }

    /// The false-area column (parallel to the object ids).
    #[inline]
    pub fn false_area_column(&self) -> &[f64] {
        &self.false_area
    }

    pub fn len(&self) -> usize {
        self.false_area.len()
    }

    pub fn is_empty(&self) -> bool {
        self.false_area.is_empty()
    }

    /// Average stored bytes per object for this kind (precomputed at
    /// build time, so hull stores keep the 16-B price of MBR fallbacks
    /// even after the fallback is boxed into its corner ring).
    pub fn avg_bytes(&self) -> f64 {
        if self.is_empty() {
            return 0.0;
        }
        self.total_bytes as f64 / self.len() as f64
    }
}

/// The homogeneous payload column of a [`ProgressiveStore`].
///
/// `Progressive::Empty` entries are stored as all-NaN slots: every closed
/// intersection comparison against NaN is `false`, so an empty
/// approximation never claims a hit — no per-pair emptiness branch.
#[derive(Debug, Clone)]
enum ProgColumns {
    Mers(Vec<Rect>),
    Mecs(Vec<Circle>),
}

fn nan_rect() -> Rect {
    Rect::from_bounds(f64::NAN, f64::NAN, f64::NAN, f64::NAN)
}

fn nan_circle() -> Circle {
    Circle::new(Point::new(f64::NAN, f64::NAN), f64::NAN)
}

/// Precomputed progressive approximations for every object of a relation,
/// in columnar layout.
#[derive(Debug, Clone)]
pub struct ProgressiveStore {
    pub kind: ProgressiveKind,
    cols: ProgColumns,
}

impl ProgressiveStore {
    pub fn build(kind: ProgressiveKind, relation: &Relation) -> Self {
        let cols = match kind {
            ProgressiveKind::Mer => ProgColumns::Mers(
                relation
                    .iter()
                    .map(|o| match Progressive::compute(kind, o) {
                        Progressive::Mer(r) => r,
                        Progressive::Empty => nan_rect(),
                        Progressive::Mec(_) => unreachable!("Mer kind computes Mer"),
                    })
                    .collect(),
            ),
            ProgressiveKind::Mec => ProgColumns::Mecs(
                relation
                    .iter()
                    .map(|o| match Progressive::compute(kind, o) {
                        Progressive::Mec(c) => c,
                        Progressive::Empty => nan_circle(),
                        Progressive::Mer(_) => unreachable!("Mec kind computes Mec"),
                    })
                    .collect(),
            ),
        };
        ProgressiveStore { kind, cols }
    }

    /// The stored approximation of object `id` (`Progressive` is `Copy`;
    /// NaN slots decode back to [`Progressive::Empty`]).
    #[inline]
    pub fn get(&self, id: ObjectId) -> Progressive {
        match &self.cols {
            ProgColumns::Mers(rects) => {
                let r = rects[id as usize];
                if r.xmin().is_nan() {
                    Progressive::Empty
                } else {
                    Progressive::Mer(r)
                }
            }
            ProgColumns::Mecs(circles) => {
                let c = circles[id as usize];
                if c.radius.is_nan() {
                    Progressive::Empty
                } else {
                    Progressive::Mec(c)
                }
            }
        }
    }

    /// The raw MER column (NaN slots = empty), when this store holds MERs.
    #[inline]
    pub fn mer_column(&self) -> Option<&[Rect]> {
        match &self.cols {
            ProgColumns::Mers(rects) => Some(rects),
            ProgColumns::Mecs(_) => None,
        }
    }

    /// The raw MEC column (NaN slots = empty), when this store holds MECs.
    #[inline]
    pub fn mec_column(&self) -> Option<&[Circle]> {
        match &self.cols {
            ProgColumns::Mecs(circles) => Some(circles),
            ProgColumns::Mers(_) => None,
        }
    }

    pub fn len(&self) -> usize {
        match &self.cols {
            ProgColumns::Mers(rects) => rects.len(),
            ProgColumns::Mecs(circles) => circles.len(),
        }
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Flat, serialization-ready image of a [`ConservativeStore`] — the unit
/// `msj-store` persists. The column shape follows the kind: MBR packs 4
/// scalars per object, MBC 3, MBE 5, the convex kinds a point arena (2
/// scalars per point) indexed by `offsets`. All `f64`s round-trip
/// bit-exactly (the store encodes them via `to_bits`).
#[derive(Debug, Clone, PartialEq)]
pub struct ConsExport {
    pub kind: ConservativeKind,
    /// Convex ring offsets (`len + 1` entries, in points); empty for the
    /// fixed-width kinds.
    pub offsets: Vec<u32>,
    /// The payload column, flattened to scalars.
    pub scalars: Vec<f64>,
    /// The per-object false-area column.
    pub false_area: Vec<f64>,
    /// §3.4 byte-model total, carried through so a reloaded store reports
    /// the same storage accounting as the built one.
    pub total_bytes: u64,
}

/// Scalars per object for the fixed-width conservative columns (`None`
/// for the variable convex kinds).
fn cons_stride(kind: ConservativeKind) -> Option<usize> {
    match kind {
        ConservativeKind::Mbr => Some(4),
        ConservativeKind::Mbc => Some(3),
        ConservativeKind::Mbe => Some(5),
        ConservativeKind::Rmbr
        | ConservativeKind::FourCorner
        | ConservativeKind::FiveCorner
        | ConservativeKind::ConvexHull => None,
    }
}

impl ConservativeStore {
    /// Flattens the columns into a [`ConsExport`]. Returns `None` for the
    /// rare `Mixed` escape hatch (a curved kind that degenerated to MBR
    /// fallbacks on some objects) — those stores are rebuilt from the
    /// relation on load instead of persisted.
    pub fn export(&self) -> Option<ConsExport> {
        let (offsets, scalars) = match &self.cols {
            ConsColumns::Rects(rects) => {
                let mut s = Vec::with_capacity(4 * rects.len());
                for r in rects {
                    s.extend_from_slice(&[r.xmin(), r.ymin(), r.xmax(), r.ymax()]);
                }
                (Vec::new(), s)
            }
            ConsColumns::Circles(circles) => {
                let mut s = Vec::with_capacity(3 * circles.len());
                for c in circles {
                    s.extend_from_slice(&[c.center.x, c.center.y, c.radius]);
                }
                (Vec::new(), s)
            }
            ConsColumns::Ellipses(ellipses) => {
                let mut s = Vec::with_capacity(5 * ellipses.len());
                for e in ellipses {
                    s.extend_from_slice(&[e.center.x, e.center.y, e.a, e.b, e.angle]);
                }
                (Vec::new(), s)
            }
            ConsColumns::Convex { offsets, points } => {
                let mut s = Vec::with_capacity(2 * points.len());
                for p in points {
                    s.extend_from_slice(&[p.x, p.y]);
                }
                (offsets.clone(), s)
            }
            ConsColumns::Mixed(_) => return None,
        };
        Some(ConsExport {
            kind: self.kind,
            offsets,
            scalars,
            false_area: self.false_area.clone(),
            total_bytes: self.total_bytes as u64,
        })
    }

    /// Reconstructs a store from an export — a linear repack of the
    /// scalar columns, no hull/ellipse/circle recomputation. The result
    /// is column-identical to the exported store.
    pub fn from_export(e: ConsExport) -> Result<Self, String> {
        let n = e.false_area.len();
        let cols = match cons_stride(e.kind) {
            Some(stride) => {
                if e.scalars.len() != stride * n || !e.offsets.is_empty() {
                    return Err("conservative column shape mismatch".into());
                }
                match e.kind {
                    ConservativeKind::Mbr => ConsColumns::Rects(
                        (0..n)
                            .map(|i| {
                                let s = &e.scalars[4 * i..4 * i + 4];
                                Rect::from_bounds(s[0], s[1], s[2], s[3])
                            })
                            .collect(),
                    ),
                    ConservativeKind::Mbc => ConsColumns::Circles(
                        (0..n)
                            .map(|i| {
                                let s = &e.scalars[3 * i..3 * i + 3];
                                Circle::new(Point::new(s[0], s[1]), s[2])
                            })
                            .collect(),
                    ),
                    ConservativeKind::Mbe => ConsColumns::Ellipses(
                        (0..n)
                            .map(|i| {
                                let s = &e.scalars[5 * i..5 * i + 5];
                                Ellipse {
                                    center: Point::new(s[0], s[1]),
                                    a: s[2],
                                    b: s[3],
                                    angle: s[4],
                                }
                            })
                            .collect(),
                    ),
                    _ => unreachable!("stride implies fixed-width kind"),
                }
            }
            None => {
                if e.offsets.len() != n + 1 || e.offsets.first() != Some(&0) {
                    return Err("convex offset table malformed".into());
                }
                if e.offsets.windows(2).any(|w| w[0] > w[1]) {
                    return Err("convex offsets not monotonic".into());
                }
                let total = e.offsets[n] as usize;
                if e.scalars.len() != 2 * total {
                    return Err("convex point arena length mismatch".into());
                }
                let points = (0..total)
                    .map(|i| Point::new(e.scalars[2 * i], e.scalars[2 * i + 1]))
                    .collect();
                ConsColumns::Convex {
                    offsets: e.offsets,
                    points,
                }
            }
        };
        Ok(ConservativeStore {
            kind: e.kind,
            cols,
            false_area: e.false_area,
            total_bytes: e.total_bytes as usize,
        })
    }
}

/// Flat image of a [`ProgressiveStore`]: 4 scalars per object for MER, 3
/// for MEC. NaN sentinel slots (empty approximations) round-trip
/// bit-exactly.
#[derive(Debug, Clone, PartialEq)]
pub struct ProgExport {
    pub kind: ProgressiveKind,
    pub scalars: Vec<f64>,
}

impl ProgressiveStore {
    /// Flattens the column into a [`ProgExport`].
    pub fn export(&self) -> ProgExport {
        let scalars = match &self.cols {
            ProgColumns::Mers(rects) => {
                let mut s = Vec::with_capacity(4 * rects.len());
                for r in rects {
                    s.extend_from_slice(&[r.xmin(), r.ymin(), r.xmax(), r.ymax()]);
                }
                s
            }
            ProgColumns::Mecs(circles) => {
                let mut s = Vec::with_capacity(3 * circles.len());
                for c in circles {
                    s.extend_from_slice(&[c.center.x, c.center.y, c.radius]);
                }
                s
            }
        };
        ProgExport {
            kind: self.kind,
            scalars,
        }
    }

    /// Reconstructs a store from an export, column-identical to the
    /// exported one.
    pub fn from_export(e: ProgExport) -> Result<Self, String> {
        let stride = match e.kind {
            ProgressiveKind::Mer => 4,
            ProgressiveKind::Mec => 3,
        };
        if !e.scalars.len().is_multiple_of(stride) {
            return Err("progressive column shape mismatch".into());
        }
        let n = e.scalars.len() / stride;
        let cols = match e.kind {
            ProgressiveKind::Mer => ProgColumns::Mers(
                (0..n)
                    .map(|i| {
                        let s = &e.scalars[4 * i..4 * i + 4];
                        Rect::from_bounds(s[0], s[1], s[2], s[3])
                    })
                    .collect(),
            ),
            ProgressiveKind::Mec => ProgColumns::Mecs(
                (0..n)
                    .map(|i| {
                        let s = &e.scalars[3 * i..3 * i + 3];
                        Circle::new(Point::new(s[0], s[1]), s[2])
                    })
                    .collect(),
            ),
        };
        Ok(ProgressiveStore { kind: e.kind, cols })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use msj_geom::{Point, Polygon, Relation, SpatialObject};

    fn small_relation() -> Relation {
        let mk = |coords: &[(f64, f64)]| {
            Polygon::new(coords.iter().map(|&(x, y)| Point::new(x, y)).collect())
                .unwrap()
                .into()
        };
        Relation::new(vec![
            SpatialObject::new(0, mk(&[(0.0, 0.0), (2.0, 0.0), (2.0, 2.0), (0.0, 2.0)])),
            SpatialObject::new(1, mk(&[(1.0, 1.0), (4.0, 1.5), (3.0, 4.0)])),
            SpatialObject::new(
                2,
                mk(&[
                    (5.0, 5.0),
                    (8.0, 5.0),
                    (8.0, 6.0),
                    (6.0, 6.0),
                    (6.0, 8.0),
                    (5.0, 8.0),
                ]),
            ),
        ])
    }

    #[test]
    fn conservative_store_builds_all_entries() {
        let rel = small_relation();
        for kind in ConservativeKind::ALL {
            let store = ConservativeStore::build(kind, &rel);
            assert_eq!(store.len(), 3);
            for id in 0..3u32 {
                assert!(store.false_area(id) >= 0.0);
                assert!(store.view(id).area() >= rel.object(id).area() * (1.0 - 1e-9));
            }
        }
    }

    #[test]
    fn columnar_views_agree_with_per_object_computation() {
        let rel = small_relation();
        for kind in ConservativeKind::ALL {
            let store = ConservativeStore::build(kind, &rel);
            for id in 0..3u32 {
                let direct = Conservative::compute(kind, rel.object(id));
                let view = store.view(id);
                assert!(
                    (view.area() - direct.area()).abs() <= 1e-12 * direct.area().max(1.0),
                    "{} object {id}: area diverged",
                    kind.name()
                );
                for other in 0..3u32 {
                    let direct_other = Conservative::compute(kind, rel.object(other));
                    assert_eq!(
                        view.intersects(&store.view(other)),
                        direct.intersects(&direct_other),
                        "{} {id} vs {other}",
                        kind.name()
                    );
                }
            }
        }
    }

    #[test]
    fn convex_kinds_pack_one_flat_arena() {
        let rel = small_relation();
        for kind in [
            ConservativeKind::Rmbr,
            ConservativeKind::FourCorner,
            ConservativeKind::FiveCorner,
            ConservativeKind::ConvexHull,
        ] {
            let store = ConservativeStore::build(kind, &rel);
            let slices = store.convex_slices().expect("convex column");
            for id in 0..3u32 {
                assert!(slices.ring(id).len() >= 3, "{} ring {id}", kind.name());
                match store.view(id) {
                    ConsView::Convex(ring) => assert_eq!(ring, slices.ring(id)),
                    other => panic!("{}: non-convex view {other:?}", kind.name()),
                }
            }
        }
        // Closed-form kinds expose no convex column.
        assert!(ConservativeStore::build(ConservativeKind::Mbr, &rel)
            .convex_slices()
            .is_none());
    }

    #[test]
    fn progressive_store_builds_all_entries() {
        let rel = small_relation();
        for kind in ProgressiveKind::ALL {
            let store = ProgressiveStore::build(kind, &rel);
            assert_eq!(store.len(), 3);
            for id in 0..3u32 {
                assert!(store.get(id).area() > 0.0, "{} degenerate", kind.name());
            }
        }
    }

    #[test]
    fn nan_sentinel_never_intersects() {
        let empty_rect = nan_rect();
        let real = Rect::from_bounds(-1e12, -1e12, 1e12, 1e12);
        assert!(!empty_rect.intersects(&real));
        assert!(!real.intersects(&empty_rect));
        assert!(!empty_rect.intersects(&empty_rect));
        let empty_circle = nan_circle();
        let unit = Circle::new(Point::new(0.0, 0.0), 1.0);
        assert!(!empty_circle.intersects_circle(&unit));
        assert!(!unit.intersects_circle(&empty_circle));
        assert!(!empty_circle.intersects_circle(&empty_circle));
    }

    #[test]
    fn byte_model_matches_paper_constants() {
        assert_eq!(conservative_bytes(ConservativeKind::Mbr, None), 16);
        assert_eq!(conservative_bytes(ConservativeKind::Rmbr, None), 20);
        assert_eq!(conservative_bytes(ConservativeKind::FiveCorner, None), 40);
        assert_eq!(conservative_bytes(ConservativeKind::FourCorner, None), 32);
        assert_eq!(progressive_bytes(ProgressiveKind::Mer), 16);
        assert_eq!(progressive_bytes(ProgressiveKind::Mec), 12);
    }

    #[test]
    fn hull_bytes_vary_per_object() {
        let rel = small_relation();
        let store = ConservativeStore::build(ConservativeKind::ConvexHull, &rel);
        // Triangle hull: 3 vertices → 6 params → 24 bytes.
        match store.view(1) {
            ConsView::Convex(ring) => assert_eq!(8 * ring.len(), 24),
            other => panic!("hull view {other:?}"),
        }
        assert!(store.avg_bytes() > 0.0);
    }

    #[test]
    fn fixed_kind_avg_bytes_is_constant() {
        let rel = small_relation();
        let store = ConservativeStore::build(ConservativeKind::FiveCorner, &rel);
        assert_eq!(store.avg_bytes(), 40.0);
    }
}

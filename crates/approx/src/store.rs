//! Per-relation approximation storage.
//!
//! The paper stores approximations *in addition to the MBR* inside the
//! data pages of the spatial access method (§3.4, approach 2). This module
//! precomputes approximations for whole relations and provides the
//! byte-size model used for page-capacity calculations.

use crate::false_area::FalseAreaEntry;
use crate::kinds::{Conservative, ConservativeKind, Progressive, ProgressiveKind};
use msj_geom::{ObjectId, Relation};

/// Byte size of a stored conservative approximation, following §3.4/§5:
/// MBR 16 B, RMBR 20 B, 5-C 40 B; the others scale by parameter count at
/// 4 bytes per parameter.
pub fn conservative_bytes(kind: ConservativeKind, approx: Option<&Conservative>) -> usize {
    match kind {
        ConservativeKind::Mbr => 16,
        ConservativeKind::Mbc => 12,
        ConservativeKind::Mbe => 20,
        ConservativeKind::Rmbr => 20,
        ConservativeKind::FourCorner => 32,
        ConservativeKind::FiveCorner => 40,
        // Hull storage varies per object.
        ConservativeKind::ConvexHull => approx.map_or(0, |a| 4 * a.param_count()),
    }
}

/// Byte size of a stored progressive approximation (MEC 12 B, MER 16 B,
/// matching the paper's 16 B for the MER).
pub fn progressive_bytes(kind: ProgressiveKind) -> usize {
    match kind {
        ProgressiveKind::Mec => 12,
        ProgressiveKind::Mer => 16,
    }
}

/// Precomputed approximations of one kind for every object of a relation.
#[derive(Debug, Clone)]
pub struct ConservativeStore {
    pub kind: ConservativeKind,
    entries: Vec<FalseAreaEntry>,
}

impl ConservativeStore {
    /// Computes the approximation of `kind` (plus its false area, enabling
    /// the false-area test) for every object.
    pub fn build(kind: ConservativeKind, relation: &Relation) -> Self {
        let entries = relation
            .iter()
            .map(|o| FalseAreaEntry::new(Conservative::compute(kind, o), o.area()))
            .collect();
        ConservativeStore { kind, entries }
    }

    #[inline]
    pub fn get(&self, id: ObjectId) -> &FalseAreaEntry {
        &self.entries[id as usize]
    }

    #[inline]
    pub fn approx(&self, id: ObjectId) -> &Conservative {
        &self.entries[id as usize].approx
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Average stored bytes per object for this kind.
    pub fn avg_bytes(&self) -> f64 {
        if self.entries.is_empty() {
            return 0.0;
        }
        let total: usize = self
            .entries
            .iter()
            .map(|e| conservative_bytes(self.kind, Some(&e.approx)))
            .sum();
        total as f64 / self.entries.len() as f64
    }
}

/// Precomputed progressive approximations for every object of a relation.
#[derive(Debug, Clone)]
pub struct ProgressiveStore {
    pub kind: ProgressiveKind,
    entries: Vec<Progressive>,
}

impl ProgressiveStore {
    pub fn build(kind: ProgressiveKind, relation: &Relation) -> Self {
        let entries = relation
            .iter()
            .map(|o| Progressive::compute(kind, o))
            .collect();
        ProgressiveStore { kind, entries }
    }

    #[inline]
    pub fn get(&self, id: ObjectId) -> &Progressive {
        &self.entries[id as usize]
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use msj_geom::{Point, Polygon, Relation, SpatialObject};

    fn small_relation() -> Relation {
        let mk = |coords: &[(f64, f64)]| {
            Polygon::new(coords.iter().map(|&(x, y)| Point::new(x, y)).collect())
                .unwrap()
                .into()
        };
        Relation::new(vec![
            SpatialObject::new(0, mk(&[(0.0, 0.0), (2.0, 0.0), (2.0, 2.0), (0.0, 2.0)])),
            SpatialObject::new(1, mk(&[(1.0, 1.0), (4.0, 1.5), (3.0, 4.0)])),
            SpatialObject::new(
                2,
                mk(&[
                    (5.0, 5.0),
                    (8.0, 5.0),
                    (8.0, 6.0),
                    (6.0, 6.0),
                    (6.0, 8.0),
                    (5.0, 8.0),
                ]),
            ),
        ])
    }

    #[test]
    fn conservative_store_builds_all_entries() {
        let rel = small_relation();
        for kind in ConservativeKind::ALL {
            let store = ConservativeStore::build(kind, &rel);
            assert_eq!(store.len(), 3);
            for id in 0..3u32 {
                let e = store.get(id);
                assert!(e.false_area >= 0.0);
                assert!(e.approx.area() >= rel.object(id).area() * (1.0 - 1e-9));
            }
        }
    }

    #[test]
    fn progressive_store_builds_all_entries() {
        let rel = small_relation();
        for kind in ProgressiveKind::ALL {
            let store = ProgressiveStore::build(kind, &rel);
            assert_eq!(store.len(), 3);
            for id in 0..3u32 {
                assert!(store.get(id).area() > 0.0, "{} degenerate", kind.name());
            }
        }
    }

    #[test]
    fn byte_model_matches_paper_constants() {
        assert_eq!(conservative_bytes(ConservativeKind::Mbr, None), 16);
        assert_eq!(conservative_bytes(ConservativeKind::Rmbr, None), 20);
        assert_eq!(conservative_bytes(ConservativeKind::FiveCorner, None), 40);
        assert_eq!(conservative_bytes(ConservativeKind::FourCorner, None), 32);
        assert_eq!(progressive_bytes(ProgressiveKind::Mer), 16);
        assert_eq!(progressive_bytes(ProgressiveKind::Mec), 12);
    }

    #[test]
    fn hull_bytes_vary_per_object() {
        let rel = small_relation();
        let store = ConservativeStore::build(ConservativeKind::ConvexHull, &rel);
        // Triangle hull: 3 vertices → 6 params → 24 bytes.
        assert_eq!(
            conservative_bytes(ConservativeKind::ConvexHull, Some(store.approx(1))),
            24
        );
        assert!(store.avg_bytes() > 0.0);
    }

    #[test]
    fn fixed_kind_avg_bytes_is_constant() {
        let rel = small_relation();
        let store = ConservativeStore::build(ConservativeKind::FiveCorner, &rel);
        assert_eq!(store.avg_bytes(), 40.0);
    }
}

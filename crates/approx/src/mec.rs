//! Maximum enclosed circle (MEC) — the progressive circle approximation
//! (§3.3).
//!
//! The paper computes the MEC from the Voronoi diagram of the polygon
//! edges. We use the "polylabel" quadtree refinement of the pole of
//! inaccessibility instead: both find the interior point maximizing the
//! distance to the boundary; polylabel converges to any requested
//! precision without a full medial-axis construction (DESIGN.md §3).

use crate::circle::Circle;
use msj_geom::{Point, PolygonWithHoles, Segment};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Signed distance of `p` to the region boundary: positive inside,
/// negative outside.
fn signed_dist(region: &PolygonWithHoles, edges: &[Segment], p: Point) -> f64 {
    let mut d = f64::INFINITY;
    for e in edges {
        d = d.min(e.dist_to_point(p));
    }
    if region.contains_point(p) {
        d
    } else {
        -d
    }
}

/// A search cell: center, half size and its maximum achievable distance.
struct Cell {
    center: Point,
    half: f64,
    dist: f64,
    potential: f64,
}

impl Cell {
    fn new(region: &PolygonWithHoles, edges: &[Segment], center: Point, half: f64) -> Cell {
        let dist = signed_dist(region, edges, center);
        Cell {
            center,
            half,
            dist,
            potential: dist + half * std::f64::consts::SQRT_2,
        }
    }
}

impl PartialEq for Cell {
    fn eq(&self, other: &Self) -> bool {
        self.potential == other.potential
    }
}
impl Eq for Cell {}
impl PartialOrd for Cell {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Cell {
    fn cmp(&self, other: &Self) -> Ordering {
        self.potential
            .partial_cmp(&other.potential)
            .unwrap_or(Ordering::Equal)
    }
}

/// Computes the maximum enclosed circle of a polygonal region.
///
/// `precision_frac` is the termination precision as a fraction of the
/// larger MBR extent (default 1e-3 when ≤ 0 is passed). The returned
/// circle's center is the pole of inaccessibility; the radius is its
/// boundary distance (to within the precision).
pub fn max_enclosed_circle(region: &PolygonWithHoles, precision_frac: f64) -> Circle {
    let mbr = region.mbr();
    let precision_frac = if precision_frac <= 0.0 {
        1e-3
    } else {
        precision_frac
    };
    let precision = precision_frac * mbr.width().max(mbr.height());
    let edges: Vec<Segment> = region.edges().collect();

    let cell_size = mbr.width().min(mbr.height());
    let half = 0.5 * cell_size;
    let mut heap: BinaryHeap<Cell> = BinaryHeap::new();

    // Seed the heap with a grid over the MBR.
    let mut y = mbr.ymin() + half;
    while y < mbr.ymax() + half {
        let mut x = mbr.xmin() + half;
        while x < mbr.xmax() + half {
            heap.push(Cell::new(region, &edges, Point::new(x, y), half));
            x += cell_size;
        }
        y += cell_size;
    }

    // Two informed guesses: the centroid and the MBR center.
    let mut best = Cell::new(region, &edges, region.outer().centroid(), 0.0);
    let alt = Cell::new(region, &edges, mbr.center(), 0.0);
    if alt.dist > best.dist {
        best = alt;
    }

    while let Some(cell) = heap.pop() {
        if cell.dist > best.dist {
            best = Cell {
                center: cell.center,
                half: 0.0,
                dist: cell.dist,
                potential: cell.dist,
            };
        }
        // Prune cells that cannot beat the current best.
        if cell.potential - best.dist <= precision {
            continue;
        }
        let h = 0.5 * cell.half;
        for (dx, dy) in [(-1.0, -1.0), (1.0, -1.0), (-1.0, 1.0), (1.0, 1.0)] {
            heap.push(Cell::new(
                region,
                &edges,
                cell.center + Point::new(dx * h, dy * h),
                h,
            ));
        }
    }

    Circle::new(best.center, best.dist.max(0.0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use msj_geom::Polygon;

    fn poly(coords: &[(f64, f64)]) -> PolygonWithHoles {
        Polygon::new(coords.iter().map(|&(x, y)| Point::new(x, y)).collect())
            .unwrap()
            .into()
    }

    #[test]
    fn square_mec_is_inscribed_circle() {
        let sq = poly(&[(0.0, 0.0), (4.0, 0.0), (4.0, 4.0), (0.0, 4.0)]);
        let c = max_enclosed_circle(&sq, 1e-4);
        assert!((c.radius - 2.0).abs() < 1e-2, "radius {}", c.radius);
        assert!((c.center.x - 2.0).abs() < 2e-2);
        assert!((c.center.y - 2.0).abs() < 2e-2);
    }

    #[test]
    fn rectangle_mec_radius_is_half_height() {
        let r = poly(&[(0.0, 0.0), (10.0, 0.0), (10.0, 2.0), (0.0, 2.0)]);
        let c = max_enclosed_circle(&r, 1e-4);
        assert!((c.radius - 1.0).abs() < 1e-2, "radius {}", c.radius);
        assert!((c.center.y - 1.0).abs() < 2e-2);
    }

    #[test]
    fn l_shape_pole_in_thick_part() {
        // L-shape: thick square arm [0,4]² minus the notch [2,4]×[2,4].
        let l = poly(&[
            (0.0, 0.0),
            (4.0, 0.0),
            (4.0, 2.0),
            (2.0, 2.0),
            (2.0, 4.0),
            (0.0, 4.0),
        ]);
        let c = max_enclosed_circle(&l, 1e-4);
        // Largest inscribed circle sits in the corner where the arms meet:
        // center (c, c) with radius c = 4 - 2√2 ≈ 1.1716, limited by the
        // two outer walls and the reflex corner (2, 2).
        let expect = 4.0 - 2.0 * 2f64.sqrt();
        assert!((c.radius - expect).abs() < 2e-2, "radius {}", c.radius);
        // Its center must be inside the region.
        assert!(l.contains_point(c.center));
    }

    #[test]
    fn mec_circle_is_enclosed() {
        let blob = poly(&[
            (0.0, 0.0),
            (6.0, -1.0),
            (9.0, 2.0),
            (7.0, 6.0),
            (3.0, 7.0),
            (-1.0, 4.0),
        ]);
        let c = max_enclosed_circle(&blob, 1e-4);
        assert!(c.radius > 0.0);
        // Sample circle boundary points — all inside the region (tolerance
        // one precision step).
        for i in 0..32 {
            let t = i as f64 / 32.0 * std::f64::consts::TAU;
            let p = c.center + Point::new(t.cos(), t.sin()) * (c.radius * 0.999);
            assert!(blob.contains_point(p), "boundary point {p:?} escaped");
        }
    }

    #[test]
    fn mec_respects_holes() {
        let outer = Polygon::new(
            [(0.0, 0.0), (8.0, 0.0), (8.0, 8.0), (0.0, 8.0)]
                .iter()
                .map(|&(x, y)| Point::new(x, y))
                .collect(),
        )
        .unwrap();
        // A central hole forces the pole off-center.
        let hole = Polygon::new(
            [(3.0, 3.0), (5.0, 3.0), (5.0, 5.0), (3.0, 5.0)]
                .iter()
                .map(|&(x, y)| Point::new(x, y))
                .collect(),
        )
        .unwrap();
        let region = PolygonWithHoles::new(outer, vec![hole]);
        let c = max_enclosed_circle(&region, 1e-4);
        // Without the hole the radius would be 4; with it the best disk
        // nestles into a corner quadrant, limited by two outer walls and
        // the nearest hole corner: radius 3(2 - √2) ≈ 1.757.
        let expect = 3.0 * (2.0 - 2f64.sqrt());
        assert!((c.radius - expect).abs() < 5e-2, "radius {}", c.radius);
        assert!(region.contains_point(c.center));
    }

    #[test]
    fn default_precision_kicks_in() {
        let sq = poly(&[(0.0, 0.0), (1.0, 0.0), (1.0, 1.0), (0.0, 1.0)]);
        let c = max_enclosed_circle(&sq, 0.0);
        assert!((c.radius - 0.5).abs() < 1e-2);
    }
}

//! Minimum bounding m-corner (4-C, 5-C): a convex circumscribing polygon
//! with a fixed number of edges (§3.2).
//!
//! The paper cites Dori & Ben-Bassat [DB 83]. We implement the standard
//! greedy edge-elimination variant: starting from the convex hull, the
//! edge whose removal (extending its two neighbours to their intersection)
//! adds the least area is removed until `m` edges remain. The result is a
//! convex superset of the hull with exactly `m` vertices (fewer if the
//! hull already has fewer).

use msj_geom::{convex_hull, orient2d_raw, Point, Segment};

/// Computes the minimum bounding `m`-corner of a point set.
///
/// Returns the CCW vertex ring of a convex polygon with at most `m`
/// vertices that contains every input point, or `None` when the hull is
/// degenerate (fewer than 3 non-collinear points) or `m < 3`.
pub fn min_bounding_corner(points: &[Point], m: usize) -> Option<Vec<Point>> {
    if m < 3 {
        return None;
    }
    let hull = convex_hull(points);
    if hull.len() < 3 {
        return None;
    }
    let mut ring = hull;
    while ring.len() > m {
        let n = ring.len();
        let mut best: Option<(usize, Point, f64)> = None;
        for i in 0..n {
            if let Some((q, cost)) = edge_removal(&ring, i) {
                if best.is_none_or(|(_, _, c)| cost < c) {
                    best = Some((i, q, cost));
                }
            }
        }
        match best {
            Some((i, q, _)) => {
                // Remove edge i (between ring[i] and ring[i+1]); replace
                // the two endpoints with the intersection point q.
                let n = ring.len();
                let j = (i + 1) % n;
                if j > i {
                    ring[i] = q;
                    ring.remove(j);
                } else {
                    // i is the last index, j == 0.
                    ring[i] = q;
                    ring.remove(0);
                }
            }
            // No edge is removable (pathological parallel neighbours):
            // stop early with the current ring, which is still a valid
            // conservative approximation.
            None => break,
        }
    }
    Some(ring)
}

/// Tries to remove edge `i` (from `ring[i]` to `ring[i+1]`): extends the
/// previous edge and the next edge until they meet at `q`. Returns the
/// intersection point and the added area, or `None` when the neighbour
/// edges do not converge outside the polygon.
fn edge_removal(ring: &[Point], i: usize) -> Option<(Point, f64)> {
    let n = ring.len();
    let a = ring[(i + n - 1) % n]; // previous vertex
    let b = ring[i]; // edge start
    let c = ring[(i + 1) % n]; // edge end
    let d = ring[(i + 2) % n]; // next vertex
    let q = Segment::new(a, b).line_intersection(&Segment::new(d, c))?;
    // q must lie beyond b on the ray a->b, and beyond c on the ray d->c;
    // otherwise the neighbours diverge and removal is impossible.
    let t1 = (q - a).dot(b - a);
    let len1 = (b - a).norm_sq();
    let t2 = (q - d).dot(c - d);
    let len2 = (c - d).norm_sq();
    if t1 <= len1 || t2 <= len2 {
        return None;
    }
    // Added area = triangle (b, q, c); for a CCW ring q lies right of the
    // directed edge b->c (outside), making the signed area negative — take
    // the absolute value.
    let cost = 0.5 * orient2d_raw(b, c, q).abs();
    Some((q, cost))
}

#[cfg(test)]
mod tests {
    use super::*;
    use msj_geom::{convex_contains_point, ring_area};

    fn regular_ngon(n: usize, r: f64) -> Vec<Point> {
        (0..n)
            .map(|i| {
                let t = i as f64 / n as f64 * std::f64::consts::TAU;
                Point::new(r * t.cos(), r * t.sin())
            })
            .collect()
    }

    #[test]
    fn m_less_than_three_is_none() {
        assert!(min_bounding_corner(&regular_ngon(8, 1.0), 2).is_none());
    }

    #[test]
    fn degenerate_hull_is_none() {
        let collinear = [
            Point::new(0.0, 0.0),
            Point::new(1.0, 0.0),
            Point::new(2.0, 0.0),
        ];
        assert!(min_bounding_corner(&collinear, 5).is_none());
    }

    #[test]
    fn hull_smaller_than_m_is_returned_unchanged() {
        let tri = regular_ngon(3, 1.0);
        let c5 = min_bounding_corner(&tri, 5).unwrap();
        assert_eq!(c5.len(), 3);
    }

    #[test]
    fn octagon_reduces_to_5_and_4_corners() {
        let oct = regular_ngon(8, 1.0);
        let c5 = min_bounding_corner(&oct, 5).unwrap();
        assert_eq!(c5.len(), 5);
        let c4 = min_bounding_corner(&oct, 4).unwrap();
        assert_eq!(c4.len(), 4);
        // Areas grow as vertices shrink but stay below the bounding box of
        // the circumscribed square (side 2·cos(π/8) for an octagon).
        let a8 = ring_area(&oct);
        let a5 = ring_area(&c5);
        let a4 = ring_area(&c4);
        assert!(a5 >= a8 && a4 >= a5, "areas {a8} {a5} {a4}");
    }

    #[test]
    fn corner_contains_all_points() {
        // A wavy blob of deterministic points.
        let pts: Vec<Point> = (0..150)
            .map(|i| {
                let t = i as f64 / 150.0 * std::f64::consts::TAU;
                let r = 5.0 + 1.5 * (3.0 * t).sin() + 0.8 * (9.0 * t).cos();
                Point::new(r * t.cos() * 1.4 + 2.0, r * t.sin() - 1.0)
            })
            .collect();
        for m in [4usize, 5, 6, 8] {
            let ring = min_bounding_corner(&pts, m).unwrap();
            assert!(ring.len() <= m);
            for &p in &pts {
                assert!(convex_contains_point(&ring, p), "m={m}: {p:?} escaped");
            }
        }
    }

    #[test]
    fn corner_is_convex_and_ccw() {
        let pts = regular_ngon(12, 2.0);
        let ring = min_bounding_corner(&pts, 5).unwrap();
        let n = ring.len();
        for i in 0..n {
            let o = orient2d_raw(ring[i], ring[(i + 1) % n], ring[(i + 2) % n]);
            assert!(o > 0.0, "non-convex corner at {i}");
        }
    }

    #[test]
    fn five_corner_tighter_than_four_corner() {
        // On average (and for a regular 12-gon certainly) the 5-corner has
        // less false area than the 4-corner.
        let pts = regular_ngon(12, 2.0);
        let a5 = ring_area(&min_bounding_corner(&pts, 5).unwrap());
        let a4 = ring_area(&min_bounding_corner(&pts, 4).unwrap());
        assert!(a5 < a4);
    }

    #[test]
    fn square_4corner_is_square_itself() {
        let sq = vec![
            Point::new(0.0, 0.0),
            Point::new(2.0, 0.0),
            Point::new(2.0, 2.0),
            Point::new(0.0, 2.0),
        ];
        let c4 = min_bounding_corner(&sq, 4).unwrap();
        assert_eq!(c4.len(), 4);
        assert!((ring_area(&c4) - 4.0).abs() < 1e-12);
    }
}

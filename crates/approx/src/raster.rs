//! Raster-interval object approximations — the **Step-2a signature
//! stage** of the multi-step join.
//!
//! Each object is rasterized onto a `2^k × 2^k` grid laid over the joint
//! workspace of both relations. Grid cells intersecting the object are
//! classified:
//!
//! * **FULL** — the cell lies entirely inside the object's closed region
//!   (a *progressive* signal: anything touching this cell touches the
//!   object);
//! * **PARTIAL** — the object's boundary passes through the cell (a
//!   *conservative* signal: the cell certainly contains at least one
//!   object point — the boundary belongs to the closed region — but may
//!   not be covered by it).
//!
//! The classified cells are stored as **sorted Hilbert-order cell-ID
//! intervals** with a per-interval class bit, one flat interval arena plus
//! a per-object offset table (the same struct-of-arrays discipline as
//! [`crate::store`]). Two signatures are compared by a merge-intersect of
//! their sorted interval lists ([`raster_decide`]):
//!
//! * an overlapping cell run where either side is FULL proves the objects
//!   **intersect** (FULL ∩ any ≠ ∅: the cell is covered by one object and
//!   touched by the other);
//! * an empty intersection proves the objects are **disjoint** (the cell
//!   sets cover the objects entirely);
//! * PARTIAL-only overlap is **inconclusive** and falls through to the
//!   conservative/progressive chain.
//!
//! This is the raster-interval technique of Georgiadis, Tzirita
//! Zacharatou & Mamoulis ("Raster Interval Object Approximations for
//! Spatial Intersection Joins"), adapted to this workspace's columnar
//! stores and batch protocol.

use msj_geom::{KernelDispatch, ObjectId, Point, PolygonWithHoles, Rect, Relation, Segment};

/// Smallest sensible grid resolution (`2^2 = 4` cells per axis).
pub const MIN_GRID_BITS: u32 = 2;
/// Largest supported grid resolution (`2^12 = 4096` cells per axis; the
/// Hilbert index then spans 24 bits, leaving the class bit and headroom
/// in a `u32`).
pub const MAX_GRID_BITS: u32 = 12;

/// The raster grid: a `2^bits × 2^bits` partition of the workspace
/// rectangle into closed cells. Both relations of a join must be
/// rasterized on the **same** grid for signatures to be comparable.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RasterGrid {
    origin: Point,
    cell_w: f64,
    cell_h: f64,
    bits: u32,
}

impl RasterGrid {
    /// A grid of `2^bits × 2^bits` cells covering `workspace` exactly
    /// (degenerate extents are padded so every cell has positive area).
    pub fn new(workspace: Rect, bits: u32) -> Self {
        let bits = bits.clamp(MIN_GRID_BITS, MAX_GRID_BITS);
        let n = (1u32 << bits) as f64;
        // Pad zero/degenerate extents to a unit span (and keep cells out
        // of the subnormal range) so cell geometry stays sound.
        let w = pad_extent(workspace.width()).max(f64::MIN_POSITIVE * n);
        let h = pad_extent(workspace.height()).max(f64::MIN_POSITIVE * n);
        RasterGrid {
            origin: workspace.lo(),
            cell_w: w / n,
            cell_h: h / n,
            bits,
        }
    }

    /// The shared grid of a join: `2^bits` cells per axis over the union
    /// of both relations' bounding rectangles. `None` when both relations
    /// are empty (no workspace to cover).
    pub fn covering(rel_a: &Relation, rel_b: &Relation, bits: u32) -> Option<Self> {
        Some(RasterGrid::new(join_workspace(rel_a, rel_b)?, bits))
    }

    /// `log2` of the cells per axis.
    #[inline]
    pub fn bits(&self) -> u32 {
        self.bits
    }

    /// Cells per axis (`2^bits`).
    #[inline]
    pub fn cells_per_axis(&self) -> u32 {
        1 << self.bits
    }

    /// The closed rectangle of cell `(cx, cy)`. Shared boundaries are
    /// computed identically for both neighbors (pure multiplication), so
    /// adjacent cells tile the workspace without gaps.
    #[inline]
    pub fn cell_rect(&self, cx: u32, cy: u32) -> Rect {
        Rect::from_bounds(
            self.origin.x + cx as f64 * self.cell_w,
            self.origin.y + cy as f64 * self.cell_h,
            self.origin.x + (cx + 1) as f64 * self.cell_w,
            self.origin.y + (cy + 1) as f64 * self.cell_h,
        )
    }

    /// The cell column of coordinate `x`, clamped to the grid.
    #[inline]
    fn col(&self, x: f64) -> u32 {
        let n = self.cells_per_axis();
        let i = ((x - self.origin.x) / self.cell_w).floor();
        (i.max(0.0) as u32).min(n - 1)
    }

    /// The cell row of coordinate `y`, clamped to the grid.
    #[inline]
    fn row(&self, y: f64) -> u32 {
        let n = self.cells_per_axis();
        let i = ((y - self.origin.y) / self.cell_h).floor();
        (i.max(0.0) as u32).min(n - 1)
    }

    /// Inclusive cell range `(cx0, cy0, cx1, cy1)` covering `r`.
    #[inline]
    pub fn cell_range(&self, r: &Rect) -> (u32, u32, u32, u32) {
        (
            self.col(r.xmin()),
            self.row(r.ymin()),
            self.col(r.xmax()),
            self.row(r.ymax()),
        )
    }
}

/// Maps cell coordinates to their index on the Hilbert curve of order
/// `bits` (the classic `xy2d` construction). Hilbert order keeps
/// spatially adjacent cells numerically adjacent, so contiguous object
/// areas collapse into few intervals.
pub fn hilbert_index(bits: u32, mut x: u32, mut y: u32) -> u32 {
    let n = 1u32 << bits;
    let mut d = 0u32;
    let mut s = n >> 1;
    while s > 0 {
        let rx = u32::from(x & s > 0);
        let ry = u32::from(y & s > 0);
        d += s * s * ((3 * rx) ^ ry);
        // Rotate the quadrant so the curve connects.
        if ry == 0 {
            if rx == 1 {
                x = n.wrapping_sub(1).wrapping_sub(x);
                y = n.wrapping_sub(1).wrapping_sub(y);
            }
            std::mem::swap(&mut x, &mut y);
        }
        s >>= 1;
    }
    d
}

/// Class of a rasterized cell (see the module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CellClass {
    /// Cell entirely inside the closed region.
    Full,
    /// The region boundary passes through the cell.
    Partial,
}

/// One run of consecutive Hilbert cell IDs sharing a class, packed into
/// 8 bytes: the class bit lives in the top bit of the exclusive end
/// (Hilbert indexes use at most `2 * MAX_GRID_BITS = 24` bits).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(C)]
pub struct RasterInterval {
    start: u32,
    end_class: u32,
}

const FULL_BIT: u32 = 1 << 31;

impl RasterInterval {
    /// An interval covering cells `start..end` of class `class`.
    #[inline]
    pub fn new(start: u32, end: u32, class: CellClass) -> Self {
        debug_assert!(start < end && end < FULL_BIT);
        RasterInterval {
            start,
            end_class: end
                | if class == CellClass::Full {
                    FULL_BIT
                } else {
                    0
                },
        }
    }

    /// First covered Hilbert cell ID.
    #[inline]
    pub fn start(&self) -> u32 {
        self.start
    }

    /// One past the last covered Hilbert cell ID.
    #[inline]
    pub fn end(&self) -> u32 {
        self.end_class & !FULL_BIT
    }

    /// Whether every cell of the interval is FULL.
    #[inline]
    pub fn is_full(&self) -> bool {
        self.end_class & FULL_BIT != 0
    }
}

/// Borrow-only view of one object's signature: its sorted,
/// non-overlapping intervals in the flat arena.
#[derive(Debug, Clone, Copy)]
pub struct RasterSignature<'a> {
    intervals: &'a [RasterInterval],
}

impl<'a> RasterSignature<'a> {
    /// A view over an externally held interval slice — must be sorted
    /// and non-overlapping, as produced by [`rasterize`].
    pub fn from_intervals(intervals: &'a [RasterInterval]) -> Self {
        RasterSignature { intervals }
    }

    /// The sorted interval run.
    #[inline]
    pub fn intervals(&self) -> &'a [RasterInterval] {
        self.intervals
    }

    /// Number of intervals (0 for an object that rasterized to nothing —
    /// cannot happen for constructed polygons, which have positive area).
    #[inline]
    pub fn len(&self) -> usize {
        self.intervals.len()
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.intervals.is_empty()
    }
}

/// Outcome of comparing two raster signatures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RasterDecision {
    /// Some shared cell is FULL on at least one side → the objects
    /// certainly intersect.
    Hit,
    /// The cell sets are disjoint → the objects certainly are too.
    Drop,
    /// Only PARTIAL cells overlap: the exact relationship is open.
    Inconclusive,
}

/// Merge-intersect of two sorted interval lists: the whole Step-2a test,
/// branch-light and allocation-free. This is the scalar reference;
/// [`raster_decide_with`] selects a wide path that evaluates the same
/// decision predicate four interval endpoints at a time.
pub fn raster_decide(a: RasterSignature<'_>, b: RasterSignature<'_>) -> RasterDecision {
    let (xs, ys) = (a.intervals, b.intervals);
    let (mut i, mut j) = (0usize, 0usize);
    let mut overlapped = false;
    while i < xs.len() && j < ys.len() {
        let x = xs[i];
        let y = ys[j];
        let lo = x.start().max(y.start());
        let hi = x.end().min(y.end());
        if lo < hi {
            if x.is_full() || y.is_full() {
                return RasterDecision::Hit;
            }
            overlapped = true;
        }
        // Advance whichever run ends first.
        if x.end() <= y.end() {
            i += 1;
        } else {
            j += 1;
        }
    }
    if overlapped {
        RasterDecision::Inconclusive
    } else {
        RasterDecision::Drop
    }
}

/// [`raster_decide`] under an explicit [`KernelDispatch`]: the decision
/// is a pure existential predicate over overlapping interval pairs
/// (*any* overlap with a FULL side → `Hit`; *any* overlap → at least
/// `Inconclusive`; none → `Drop`), so evaluation order cannot change the
/// outcome and the wide paths are decision-identical to the scalar
/// merge by construction (and by test).
///
/// The wide paths walk the shorter-signature side `x` and scan the
/// partner's candidate window four intervals at a time: a
/// `#[repr(C)]` [`RasterInterval`] is a `(start, end|class)` `u32`
/// pair, so a 4-interval block is eight lanes deinterleaved into a
/// start vector and an end vector; the FULL class bit (bit 31) is an
/// arithmetic-shift mask applied vectorwise, and all compares are
/// signed 32-bit (Hilbert indexes use at most 24 bits).
pub fn raster_decide_with(
    d: KernelDispatch,
    a: RasterSignature<'_>,
    b: RasterSignature<'_>,
) -> RasterDecision {
    match d {
        KernelDispatch::Scalar => raster_decide(a, b),
        #[cfg(target_arch = "x86_64")]
        KernelDispatch::Sse2 | KernelDispatch::Avx2 => raster_decide_wide(a, b),
        #[cfg(not(target_arch = "x86_64"))]
        _ => raster_decide(a, b),
    }
}

/// Block-scanning evaluation of the Step-2a predicate (see
/// [`raster_decide_with`]). Outer loop over `a`'s intervals with a
/// rolling lower bound into `b`; the 4-wide SSE2 inner block test works
/// on every x86-64 (SSE2 is baseline), so both wide dispatch paths
/// share it.
#[cfg(target_arch = "x86_64")]
fn raster_decide_wide(a: RasterSignature<'_>, b: RasterSignature<'_>) -> RasterDecision {
    use std::arch::x86_64::*;
    let (xs, ys) = (a.intervals, b.intervals);
    if xs.is_empty() || ys.is_empty() {
        return RasterDecision::Drop;
    }
    let mut overlapped = false;
    // Rolling start of y's candidate window: ys are sorted and
    // non-overlapping, and xs only move right, so the window start is
    // monotone.
    let mut j0 = 0usize;
    unsafe {
        for x in xs {
            let (x_start, x_end, x_full) = (x.start() as i32, x.end() as i32, x.is_full());
            while j0 < ys.len() && (ys[j0].end() as i32) <= x_start {
                j0 += 1;
            }
            if j0 == ys.len() {
                break;
            }
            let xs_start = _mm_set1_epi32(x_start);
            let xs_end = _mm_set1_epi32(x_end);
            let mut j = j0;
            loop {
                if j + 4 <= ys.len() {
                    // Deinterleave 4 intervals: [s0 e0 s1 e1 | s2 e2 s3 e3]
                    // → starts [s0..s3], raw ends [e0..e3].
                    let v0 = _mm_loadu_si128(ys.as_ptr().add(j) as *const __m128i);
                    let v1 = _mm_loadu_si128(ys.as_ptr().add(j + 2) as *const __m128i);
                    let p0 = _mm_shuffle_epi32::<0b11_01_10_00>(v0);
                    let p1 = _mm_shuffle_epi32::<0b11_01_10_00>(v1);
                    let starts = _mm_unpacklo_epi64(p0, p1);
                    let ends_raw = _mm_unpackhi_epi64(p0, p1);
                    // FULL lanes: the class bit is bit 31, so an
                    // arithmetic shift turns it into an all-ones mask.
                    let full = _mm_srai_epi32::<31>(ends_raw);
                    let ends = _mm_andnot_si128(_mm_set1_epi32(i32::MIN), ends_raw);
                    // Overlap of non-empty runs: y.start < x.end  ∧
                    // x.start < y.end.
                    let ov = _mm_and_si128(
                        _mm_cmplt_epi32(starts, xs_end),
                        _mm_cmpgt_epi32(ends, xs_start),
                    );
                    let ov_bits = _mm_movemask_epi8(ov);
                    if ov_bits != 0 {
                        if x_full || _mm_movemask_epi8(_mm_and_si128(ov, full)) != 0 {
                            return RasterDecision::Hit;
                        }
                        overlapped = true;
                    }
                    // Every later y starts at or beyond this block's last
                    // start; if that is already past x, x is done.
                    if ys[j + 3].start() as i32 >= x_end {
                        break;
                    }
                    j += 4;
                } else {
                    // Scalar tail of the window.
                    while j < ys.len() {
                        let y = ys[j];
                        if y.start() as i32 >= x_end {
                            break;
                        }
                        if (y.end() as i32) > x_start {
                            if x_full || y.is_full() {
                                return RasterDecision::Hit;
                            }
                            overlapped = true;
                        }
                        j += 1;
                    }
                    break;
                }
            }
        }
    }
    if overlapped {
        RasterDecision::Inconclusive
    } else {
        RasterDecision::Drop
    }
}

/// Rasterizes one region on `grid`: every cell intersecting the closed
/// region appears in the result, classified FULL or PARTIAL, merged into
/// sorted Hilbert-order intervals.
///
/// Two passes over the cell block of the region's MBR:
///
/// 1. **boundary** — each edge walks its cell rows and, per row, only
///    the columns its segment's y-band clip can touch (±1 column of
///    float slack; the closed segment-rectangle test remains the
///    arbiter), marking intersected cells PARTIAL — the cost tracks the
///    cells the boundary actually crosses, not the edge-MBR block area
///    (a diagonal needle visits O(cells per axis) cells, not their
///    square);
/// 2. **interior** — per cell row, one even–odd scanline through the row
///    center collects the crossings of all rings; unmarked cells with an
///    interior center are FULL. A cell untouched by any edge is entirely
///    inside or entirely outside, so the center decides exactly.
pub fn rasterize(grid: &RasterGrid, region: &PolygonWithHoles) -> Vec<RasterInterval> {
    let (cx0, cy0, cx1, cy1) = grid.cell_range(&region.mbr());
    let w = (cx1 - cx0 + 1) as usize;
    let h = (cy1 - cy0 + 1) as usize;
    // 0 = outside, 1 = PARTIAL, 2 = FULL.
    let mut classes = vec![0u8; w * h];

    // Pass 1: boundary cells, by per-row band clipping of each edge.
    for edge in region.edges() {
        let (ex0, ey0, ex1, ey1) = grid.cell_range(&edge.mbr());
        for cy in ey0.max(cy0)..=ey1.min(cy1) {
            // The x-extent of the segment within this row's y-band; x is
            // linear in t, so clamping t to the band endpoints bounds it.
            let band = grid.cell_rect(ex0, cy);
            let (sx0, sx1) = if edge.a.y == edge.b.y {
                (edge.a.x.min(edge.b.x), edge.a.x.max(edge.b.x))
            } else {
                let t0 = ((band.ymin() - edge.a.y) / (edge.b.y - edge.a.y)).clamp(0.0, 1.0);
                let t1 = ((band.ymax() - edge.a.y) / (edge.b.y - edge.a.y)).clamp(0.0, 1.0);
                let x0 = edge.a.x + t0 * (edge.b.x - edge.a.x);
                let x1 = edge.a.x + t1 * (edge.b.x - edge.a.x);
                (x0.min(x1), x0.max(x1))
            };
            let lo = grid.col(sx0).saturating_sub(1).max(ex0.max(cx0));
            let hi = (grid.col(sx1) + 1).min(ex1.min(cx1));
            for cx in lo..=hi {
                let slot = &mut classes[(cy - cy0) as usize * w + (cx - cx0) as usize];
                if *slot == 0 && edge.intersects_rect(&grid.cell_rect(cx, cy)) {
                    *slot = 1;
                }
            }
        }
    }

    // Pass 2: interior fill by scanline parity at row centers.
    let mut crossings: Vec<f64> = Vec::new();
    let edges: Vec<Segment> = region.edges().collect();
    for cy in cy0..=cy1 {
        let row = (cy - cy0) as usize;
        if classes[row * w..(row + 1) * w].iter().all(|&c| c != 0) {
            continue; // fully boundary-marked row
        }
        let y = grid.cell_rect(cx0, cy).center().y;
        crossings.clear();
        for e in &edges {
            // Half-open rule, identical to the point-in-polygon test.
            if (e.a.y > y) != (e.b.y > y) {
                crossings.push(e.a.x + (y - e.a.y) / (e.b.y - e.a.y) * (e.b.x - e.a.x));
            }
        }
        crossings.sort_unstable_by(f64::total_cmp);
        // Walk the row once; parity = crossings strictly left of the
        // center. An unmarked cell's center is never on the boundary
        // (the edge would intersect the cell), so the parity is exact.
        let mut k = 0usize;
        for cx in cx0..=cx1 {
            let slot = &mut classes[row * w + (cx - cx0) as usize];
            let x = grid.cell_rect(cx, cy).center().x;
            while k < crossings.len() && crossings[k] < x {
                k += 1;
            }
            if *slot == 0 && k % 2 == 1 {
                *slot = 2;
            }
        }
    }

    // Collect classified cells in Hilbert order and merge runs.
    let mut cells: Vec<(u32, CellClass)> = Vec::new();
    for cy in cy0..=cy1 {
        for cx in cx0..=cx1 {
            match classes[(cy - cy0) as usize * w + (cx - cx0) as usize] {
                0 => {}
                1 => cells.push((hilbert_index(grid.bits, cx, cy), CellClass::Partial)),
                _ => cells.push((hilbert_index(grid.bits, cx, cy), CellClass::Full)),
            }
        }
    }
    cells.sort_unstable_by_key(|&(d, _)| d);
    let mut intervals: Vec<RasterInterval> = Vec::new();
    for (d, class) in cells {
        match intervals.last_mut() {
            Some(last) if last.end() == d && last.is_full() == (class == CellClass::Full) => {
                *last = RasterInterval::new(last.start(), d + 1, class);
            }
            _ => intervals.push(RasterInterval::new(d, d + 1, class)),
        }
    }
    intervals
}

/// Per-relation raster signatures in columnar layout: one flat interval
/// arena plus a per-object offset table. Built once in Step 0 and shared
/// read-only across all workers.
#[derive(Debug, Clone)]
pub struct RasterStore {
    grid: RasterGrid,
    offsets: Vec<u32>,
    intervals: Vec<RasterInterval>,
}

impl RasterStore {
    /// Rasterizes every object of `relation` on `grid`.
    pub fn build(grid: &RasterGrid, relation: &Relation) -> Self {
        let mut offsets = Vec::with_capacity(relation.len() + 1);
        let mut intervals = Vec::new();
        offsets.push(0u32);
        for o in relation.iter() {
            intervals.extend(rasterize(grid, &o.region));
            offsets
                .push(u32::try_from(intervals.len()).expect("interval arena exceeds u32 offsets"));
        }
        RasterStore {
            grid: *grid,
            offsets,
            intervals,
        }
    }

    /// The grid all signatures of this store live on.
    #[inline]
    pub fn grid(&self) -> &RasterGrid {
        &self.grid
    }

    /// The signature of object `id` (borrow-only view into the arena).
    #[inline]
    pub fn signature(&self, id: ObjectId) -> RasterSignature<'_> {
        let i = id as usize;
        RasterSignature {
            intervals: &self.intervals[self.offsets[i] as usize..self.offsets[i + 1] as usize],
        }
    }

    /// Number of objects.
    pub fn len(&self) -> usize {
        self.offsets.len() - 1
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total intervals across all objects (the arena length — 8 bytes
    /// each, the storage cost of the stage).
    pub fn interval_count(&self) -> usize {
        self.intervals.len()
    }

    /// FNV-1a checksum over the whole store — grid geometry, offset
    /// table, and interval arena. Recorded when the store is built and
    /// re-verified before a join trusts the Step-2a pre-filter; a
    /// mismatch means corrupted signatures, and the engine falls back to
    /// the filter-only path rather than risk wrong join answers.
    pub fn checksum(&self) -> u64 {
        const OFFSET: u64 = 0xcbf29ce484222325;
        const PRIME: u64 = 0x100000001b3;
        let mut h = OFFSET;
        let mut byte = |b: u8| {
            h ^= u64::from(b);
            h = h.wrapping_mul(PRIME);
        };
        for word in [self.grid.bits() as u64, self.offsets.len() as u64] {
            for b in word.to_le_bytes() {
                byte(b);
            }
        }
        for &off in &self.offsets {
            for b in off.to_le_bytes() {
                byte(b);
            }
        }
        for iv in &self.intervals {
            for b in iv.start().to_le_bytes() {
                byte(b);
            }
            for b in iv.end().to_le_bytes() {
                byte(b);
            }
            byte(iv.is_full() as u8);
        }
        h
    }

    /// Flattens the store into a serialization-ready [`RasterExport`]:
    /// grid geometry as raw scalars, the offset table, and the interval
    /// arena as `(start, end_class)` word pairs — the packed class bit
    /// included, so signatures round-trip bit-exactly.
    pub fn export(&self) -> RasterExport {
        let mut words = Vec::with_capacity(2 * self.intervals.len());
        for iv in &self.intervals {
            words.push(iv.start);
            words.push(iv.end_class);
        }
        RasterExport {
            origin_x: self.grid.origin.x,
            origin_y: self.grid.origin.y,
            cell_w: self.grid.cell_w,
            cell_h: self.grid.cell_h,
            bits: self.grid.bits,
            offsets: self.offsets.clone(),
            intervals: words,
        }
    }

    /// Reconstructs a store from an export without re-rasterizing. The
    /// grid is restored verbatim (no re-clamping — the exported values
    /// came from a validly constructed grid), so [`RasterStore::checksum`]
    /// of the result equals the exported store's.
    pub fn from_export(e: RasterExport) -> Result<Self, String> {
        if e.bits < MIN_GRID_BITS || e.bits > MAX_GRID_BITS {
            return Err("raster grid bits out of range".into());
        }
        if !(e.cell_w > 0.0 && e.cell_h > 0.0 && e.origin_x.is_finite() && e.origin_y.is_finite()) {
            return Err("raster grid geometry malformed".into());
        }
        if !e.intervals.len().is_multiple_of(2) {
            return Err("raster interval arena truncated".into());
        }
        let count = e.intervals.len() / 2;
        if e.offsets.first() != Some(&0)
            || e.offsets.last().copied() != Some(count as u32)
            || e.offsets.windows(2).any(|w| w[0] > w[1])
        {
            return Err("raster offset table malformed".into());
        }
        let intervals = (0..count)
            .map(|i| RasterInterval {
                start: e.intervals[2 * i],
                end_class: e.intervals[2 * i + 1],
            })
            .collect();
        Ok(RasterStore {
            grid: RasterGrid {
                origin: Point::new(e.origin_x, e.origin_y),
                cell_w: e.cell_w,
                cell_h: e.cell_h,
                bits: e.bits,
            },
            offsets: e.offsets,
            intervals,
        })
    }
}

/// Flat image of a [`RasterStore`] — the unit `msj-store` persists for
/// each side of a prepared join pair.
#[derive(Debug, Clone, PartialEq)]
pub struct RasterExport {
    pub origin_x: f64,
    pub origin_y: f64,
    pub cell_w: f64,
    pub cell_h: f64,
    pub bits: u32,
    /// Per-object interval offsets (`len + 1` entries).
    pub offsets: Vec<u32>,
    /// The interval arena as raw `(start, end_class)` word pairs.
    pub intervals: Vec<u32>,
}

/// Auto-sizes `grid_bits` from the workload, following the §5 cost-model
/// tradeoff: finer grids decide more candidates (fewer exact-geometry
/// object accesses) but signature storage and Step-0 build cost grow with
/// `4^bits`. Sizing the cell near a quarter of the *mean object extent*
/// puts ~4 cells across an average object — enough for most objects to
/// own FULL cells (the progressive signal) while signatures stay a few
/// intervals long. Returns a value in
/// [`MIN_GRID_BITS`]`..=`[`MAX_GRID_BITS`].
pub fn auto_grid_bits(rel_a: &Relation, rel_b: &Relation) -> u32 {
    let Some(workspace) = join_workspace(rel_a, rel_b) else {
        return MIN_GRID_BITS;
    };
    let n = rel_a.len() + rel_b.len();
    if n == 0 {
        return MIN_GRID_BITS;
    }
    let mean_extent: f64 = rel_a
        .iter()
        .chain(rel_b.iter())
        .map(|o| o.mbr().width().max(o.mbr().height()))
        .sum::<f64>()
        / n as f64;
    // Geometric-mean workspace extent (degenerate axes padded like the
    // grid constructor pads them).
    let extent = (pad_extent(workspace.width()) * pad_extent(workspace.height())).sqrt();
    if mean_extent <= 0.0 || !mean_extent.is_finite() {
        return MIN_GRID_BITS;
    }
    // cell ≈ mean_extent / 4  ⇒  bits ≈ log2(workspace / mean_extent) + 2.
    let bits = (extent / mean_extent).log2().ceil() as i64 + 2;
    (bits.clamp(MIN_GRID_BITS as i64, MAX_GRID_BITS as i64)) as u32
}

/// The joint workspace rectangle of a join (`None` when both relations
/// are empty).
fn join_workspace(rel_a: &Relation, rel_b: &Relation) -> Option<Rect> {
    Rect::bounding_rects(rel_a.iter().chain(rel_b.iter()).map(|o| o.mbr()))
}

/// A positive, finite extent (zero/degenerate axes padded to a unit
/// span, matching [`RasterGrid::new`]).
fn pad_extent(e: f64) -> f64 {
    if e > 0.0 && e.is_finite() {
        e
    } else {
        1.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use msj_geom::Polygon;

    fn poly(coords: &[(f64, f64)]) -> PolygonWithHoles {
        Polygon::new(coords.iter().map(|&(x, y)| Point::new(x, y)).collect())
            .unwrap()
            .into()
    }

    fn rel(regions: Vec<PolygonWithHoles>) -> Relation {
        Relation::from_regions(regions)
    }

    /// Oracle for `cell ⊆ region`: no boundary edge enters the cell's
    /// *interior* (grazing contact along the cell boundary is fine — the
    /// closed region still covers it) and the closed cell's corners and
    /// center are inside.
    fn cell_inside(region: &PolygonWithHoles, cell: &Rect) -> bool {
        let ex = cell.width() * 1e-9;
        let ey = cell.height() * 1e-9;
        let interior = Rect::from_bounds(
            cell.xmin() + ex,
            cell.ymin() + ey,
            cell.xmax() - ex,
            cell.ymax() - ey,
        );
        !region.edges().any(|e| e.intersects_rect(&interior))
            && region.contains_point(cell.center())
            && cell.corners().iter().all(|&c| region.contains_point(c))
    }

    /// Expands a signature back into `(cx, cy, class)` cells.
    fn cells_of(grid: &RasterGrid, sig: RasterSignature<'_>) -> Vec<(u32, u32, CellClass)> {
        let n = grid.cells_per_axis();
        let mut map = std::collections::HashMap::new();
        for cy in 0..n {
            for cx in 0..n {
                map.insert(hilbert_index(grid.bits(), cx, cy), (cx, cy));
            }
        }
        let mut out = Vec::new();
        for iv in sig.intervals() {
            for d in iv.start()..iv.end() {
                let (cx, cy) = map[&d];
                let class = if iv.is_full() {
                    CellClass::Full
                } else {
                    CellClass::Partial
                };
                out.push((cx, cy, class));
            }
        }
        out
    }

    #[test]
    fn hilbert_is_a_bijection_with_unit_steps() {
        for bits in [1u32, 2, 3, 4] {
            let n = 1u32 << bits;
            let mut seen = vec![false; (n * n) as usize];
            for y in 0..n {
                for x in 0..n {
                    let d = hilbert_index(bits, x, y);
                    assert!(d < n * n, "index out of range");
                    assert!(!seen[d as usize], "duplicate index {d}");
                    seen[d as usize] = true;
                }
            }
            // Consecutive indexes are grid neighbors (the defining
            // property that makes interval runs spatially coherent).
            let mut pos = vec![(0u32, 0u32); (n * n) as usize];
            for y in 0..n {
                for x in 0..n {
                    pos[hilbert_index(bits, x, y) as usize] = (x, y);
                }
            }
            for d in 1..(n * n) as usize {
                let (x0, y0) = pos[d - 1];
                let (x1, y1) = pos[d];
                assert_eq!(
                    x0.abs_diff(x1) + y0.abs_diff(y1),
                    1,
                    "bits {bits}: step {d} not a neighbor"
                );
            }
        }
    }

    #[test]
    fn square_rasterizes_to_full_interior_and_partial_rim() {
        let region = poly(&[(0.0, 0.0), (8.0, 0.0), (8.0, 8.0), (0.0, 8.0)]);
        let grid = RasterGrid::new(Rect::from_bounds(0.0, 0.0, 8.0, 8.0), 3);
        let sig_intervals = rasterize(&grid, &region);
        let store = RasterStore::build(&grid, &rel(vec![region.clone()]));
        assert_eq!(store.signature(0).intervals(), &sig_intervals[..]);
        let cells = cells_of(&grid, store.signature(0));
        // The square covers the whole workspace: all 64 cells appear.
        assert_eq!(cells.len(), 64);
        for (cx, cy, class) in cells {
            if class == CellClass::Full {
                assert!(
                    cell_inside(&region, &grid.cell_rect(cx, cy)),
                    "cell ({cx},{cy}) marked FULL but not inside"
                );
            } else {
                // PARTIAL is exactly the boundary rim here.
                assert!(
                    cx == 0 || cx == 7 || cy == 0 || cy == 7,
                    "interior cell ({cx},{cy}) downgraded to PARTIAL"
                );
            }
        }
    }

    #[test]
    fn hole_interior_is_not_covered() {
        let outer = Polygon::new(vec![
            Point::new(0.0, 0.0),
            Point::new(8.0, 0.0),
            Point::new(8.0, 8.0),
            Point::new(0.0, 8.0),
        ])
        .unwrap();
        let hole = Polygon::new(vec![
            Point::new(2.0, 2.0),
            Point::new(6.0, 2.0),
            Point::new(6.0, 6.0),
            Point::new(2.0, 6.0),
        ])
        .unwrap();
        let region = PolygonWithHoles::new(outer, vec![hole]);
        let grid = RasterGrid::new(Rect::from_bounds(0.0, 0.0, 8.0, 8.0), 3);
        let cells = cells_of(
            &grid,
            RasterStore::build(&grid, &rel(vec![region.clone()])).signature(0),
        );
        // Cells strictly inside the hole (3..5 × 3..5 at cell size 1)
        // must not appear at all.
        for (cx, cy, _) in &cells {
            assert!(
                !(((3..5).contains(cx)) && ((3..5).contains(cy))),
                "hole-interior cell ({cx},{cy}) stored"
            );
        }
        // FULL cells are truly inside the holed region.
        for (cx, cy, class) in cells {
            if class == CellClass::Full {
                assert!(cell_inside(&region, &grid.cell_rect(cx, cy)));
            }
        }
    }

    #[test]
    fn decide_hit_drop_inconclusive() {
        let grid = RasterGrid::new(Rect::from_bounds(0.0, 0.0, 16.0, 16.0), 4);
        let store = RasterStore::build(
            &grid,
            &rel(vec![
                // Fat square owning FULL cells.
                poly(&[(1.0, 1.0), (7.0, 1.0), (7.0, 7.0), (1.0, 7.0)]),
                // Overlapping fat square.
                poly(&[(4.0, 4.0), (10.0, 4.0), (10.0, 10.0), (4.0, 10.0)]),
                // Far-away square: disjoint cells.
                poly(&[(12.0, 12.0), (15.0, 12.0), (15.0, 15.0), (12.0, 15.0)]),
            ]),
        );
        assert_eq!(
            raster_decide(store.signature(0), store.signature(1)),
            RasterDecision::Hit
        );
        assert_eq!(
            raster_decide(store.signature(0), store.signature(2)),
            RasterDecision::Drop
        );
        // Two thin diagonals crossing: PARTIAL everywhere on a coarse
        // grid → inconclusive.
        let thin = RasterStore::build(
            &grid,
            &rel(vec![
                poly(&[(0.0, 0.1), (16.0, 15.9), (16.0, 16.0), (0.0, 0.2)]),
                poly(&[(0.0, 15.9), (16.0, 0.1), (16.0, 0.2), (0.0, 16.0)]),
            ]),
        );
        assert!(thin.signature(0).intervals().iter().all(|i| !i.is_full()));
        assert_eq!(
            raster_decide(thin.signature(0), thin.signature(1)),
            RasterDecision::Inconclusive
        );
    }

    /// The wide merge-intersect must produce the identical decision as
    /// the scalar two-pointer reference on every signature pair —
    /// including interval counts at every lane boundary (len % 4 ∈
    /// {0,1,2,3}) and hand-built adversarial lists.
    #[test]
    fn raster_decide_with_matches_scalar_reference() {
        // Real signatures from rasterized workloads.
        let grid = RasterGrid::new(Rect::from_bounds(0.0, 0.0, 32.0, 32.0), 6);
        let rel_a = msj_datagen::small_carto(40, 30.0, 9301);
        let rel_b = msj_datagen::skewed_carto(40, 30.0, 9302);
        let sa = RasterStore::build(&grid, &rel_a);
        let sb = RasterStore::build(&grid, &rel_b);
        for d in KernelDispatch::all_available() {
            for i in 0..rel_a.len() as u32 {
                for j in 0..rel_b.len() as u32 {
                    assert_eq!(
                        raster_decide_with(d, sa.signature(i), sb.signature(j)),
                        raster_decide(sa.signature(i), sb.signature(j)),
                        "{d:?} diverged on pair ({i},{j})"
                    );
                }
            }
        }
        // Synthetic lists at every block length and class mix.
        let mk = |runs: &[(u32, u32, bool)]| -> Vec<RasterInterval> {
            runs.iter()
                .map(|&(s, e, full)| {
                    RasterInterval::new(
                        s,
                        e,
                        if full {
                            CellClass::Full
                        } else {
                            CellClass::Partial
                        },
                    )
                })
                .collect()
        };
        let mut lists: Vec<Vec<RasterInterval>> = vec![
            vec![],
            mk(&[(0, 1, false)]),
            mk(&[(5, 9, true)]),
            mk(&[(0, 2, false), (4, 6, true), (8, 10, false)]),
        ];
        // Lengths 1..=9 alternating classes, gapped and adjacent runs.
        for n in 1..=9u32 {
            lists.push(
                (0..n)
                    .map(|k| {
                        RasterInterval::new(
                            3 * k,
                            3 * k + 2,
                            if k % 2 == 0 {
                                CellClass::Partial
                            } else {
                                CellClass::Full
                            },
                        )
                    })
                    .collect(),
            );
            lists.push(
                (0..n)
                    .map(|k| RasterInterval::new(2 * k + 1, 2 * k + 2, CellClass::Partial))
                    .collect(),
            );
        }
        for d in KernelDispatch::all_available() {
            for xs in &lists {
                for ys in &lists {
                    let a = RasterSignature::from_intervals(xs);
                    let b = RasterSignature::from_intervals(ys);
                    assert_eq!(
                        raster_decide_with(d, a, b),
                        raster_decide(a, b),
                        "{d:?} diverged on {xs:?} vs {ys:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn interval_packing_round_trips() {
        let iv = RasterInterval::new(17, 42, CellClass::Full);
        assert_eq!(iv.start(), 17);
        assert_eq!(iv.end(), 42);
        assert!(iv.is_full());
        let iv = RasterInterval::new(0, 1, CellClass::Partial);
        assert!(!iv.is_full());
        assert_eq!((iv.start(), iv.end()), (0, 1));
        assert_eq!(std::mem::size_of::<RasterInterval>(), 8);
    }

    #[test]
    fn signatures_are_sorted_and_disjoint() {
        let region = poly(&[(0.5, 0.5), (11.0, 2.0), (9.0, 10.5), (2.0, 9.0)]);
        let grid = RasterGrid::new(Rect::from_bounds(0.0, 0.0, 12.0, 12.0), 5);
        let ivs = rasterize(&grid, &region);
        assert!(!ivs.is_empty());
        for pair in ivs.windows(2) {
            assert!(pair[0].end() <= pair[1].start(), "unsorted/overlapping");
            // Adjacent same-class runs must have been merged.
            assert!(
                pair[0].end() < pair[1].start() || pair[0].is_full() != pair[1].is_full(),
                "unmerged adjacent runs"
            );
        }
    }

    #[test]
    fn auto_bits_are_bounded_and_scale_with_density() {
        let coarse = rel(vec![poly(&[
            (0.0, 0.0),
            (8.0, 0.0),
            (8.0, 8.0),
            (0.0, 8.0),
        ])]);
        let b = auto_grid_bits(&coarse, &coarse.clone());
        assert!((MIN_GRID_BITS..=MAX_GRID_BITS).contains(&b));
        // Many small objects in a big workspace → finer grid than one
        // object filling the workspace.
        let dense = Relation::from_regions((0..64).map(|i| {
            let x = (i % 8) as f64 * 16.0;
            let y = (i / 8) as f64 * 16.0;
            poly(&[(x, y), (x + 1.0, y), (x + 1.0, y + 1.0), (x, y + 1.0)])
        }));
        let fine = auto_grid_bits(&dense, &dense.clone());
        assert!(
            fine > b,
            "denser workload must refine the grid ({fine} vs {b})"
        );
        assert!(fine <= MAX_GRID_BITS);
        // Empty relations fall back to the floor.
        assert_eq!(
            auto_grid_bits(&Relation::default(), &Relation::default()),
            MIN_GRID_BITS
        );
    }

    #[test]
    fn grid_covering_unions_both_relations() {
        let a = rel(vec![poly(&[
            (0.0, 0.0),
            (2.0, 0.0),
            (2.0, 2.0),
            (0.0, 2.0),
        ])]);
        let b = rel(vec![poly(&[
            (10.0, 10.0),
            (12.0, 10.0),
            (12.0, 12.0),
            (10.0, 12.0),
        ])]);
        let g = RasterGrid::covering(&a, &b, 4).expect("workspace");
        let (cx0, cy0, cx1, cy1) = g.cell_range(&Rect::from_bounds(0.0, 0.0, 12.0, 12.0));
        assert_eq!((cx0, cy0), (0, 0));
        assert_eq!((cx1, cy1), (g.cells_per_axis() - 1, g.cells_per_axis() - 1));
        assert!(RasterGrid::covering(&Relation::default(), &Relation::default(), 4).is_none());
    }
}

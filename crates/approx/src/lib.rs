//! # msj-approx — conservative and progressive polygon approximations
//!
//! Implementation of §3 of *"Multi-Step Processing of Spatial Joins"*: the
//! geometric-filter toolbox of the multi-step join processor.
//!
//! **Conservative approximations** (contain the object; disjoint
//! approximations prove a *false hit*):
//! * [`ConservativeKind::Mbr`] — minimum bounding rectangle (4 params);
//! * [`ConservativeKind::Rmbr`] — rotated MBR via rotating calipers (5);
//! * [`ConservativeKind::ConvexHull`] — the convex hull (variable);
//! * [`ConservativeKind::FourCorner`] / [`ConservativeKind::FiveCorner`] —
//!   minimum bounding m-corner by greedy hull-edge elimination (8 / 10);
//! * [`ConservativeKind::Mbc`] — minimum bounding circle, Welzl (3);
//! * [`ConservativeKind::Mbe`] — minimum bounding ellipse, Khachiyan (5).
//!
//! **Progressive approximations** (contained in the object; intersecting
//! approximations prove a *hit*):
//! * [`ProgressiveKind::Mec`] — maximum enclosed circle (pole of
//!   inaccessibility refinement);
//! * [`ProgressiveKind::Mer`] — maximum enclosed rectangle (anchored band
//!   search following the paper's restricted definition).
//!
//! Plus the [`false_area::false_area_test`] (§3.3), the quality metrics of
//! Figures 4/8/9 ([`quality`]), per-relation stores with the byte-level
//! storage model of §3.4 ([`store`]), and the **raster-interval
//! signatures** of the Step-2a pre-filter ([`raster`]): Hilbert-order
//! FULL/PARTIAL cell intervals decided by a merge-intersect, combining a
//! conservative and a progressive test in one bitwise-cheap stage.

pub mod circle;
pub mod ellipse;
pub mod false_area;
pub mod kinds;
pub mod mbc;
pub mod mbe;
pub mod mcorner;
pub mod mec;
pub mod mer;
pub mod quality;
pub mod raster;
pub mod store;

pub use circle::Circle;
pub use ellipse::Ellipse;
pub use false_area::{
    conservative_intersection_area, false_area_test, view_intersection_area, FalseAreaEntry,
    AREA_RESOLUTION,
};
pub use kinds::{
    is_conservative_for, ConsView, Conservative, ConservativeKind, Progressive, ProgressiveKind,
};
pub use mbc::min_bounding_circle;
pub use mbe::min_bounding_ellipse;
pub use mcorner::min_bounding_corner;
pub use mec::max_enclosed_circle;
pub use mer::{longest_horizontal_chord, max_enclosed_rect};
pub use quality::{
    area_extension, area_extension_overhead, mbr_based_false_area, normalized_false_area,
    progressive_quality,
};
pub use raster::{
    auto_grid_bits, hilbert_index, raster_decide, raster_decide_with, rasterize, CellClass,
    RasterDecision, RasterExport, RasterGrid, RasterInterval, RasterSignature, RasterStore,
    MAX_GRID_BITS, MIN_GRID_BITS,
};
pub use store::{
    conservative_bytes, progressive_bytes, ConsExport, ConservativeStore, ConvexSlices, ProgExport,
    ProgressiveStore,
};

//! Circles: the shape behind the minimum bounding circle (MBC) and the
//! maximum enclosed circle (MEC).

use msj_geom::{Point, Rect};

/// A circle given by center and radius (3 parameters, the cheapest
//  approximation the paper considers).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Circle {
    pub center: Point,
    pub radius: f64,
}

impl Circle {
    pub fn new(center: Point, radius: f64) -> Self {
        Circle { center, radius }
    }

    /// Enclosed area.
    #[inline]
    pub fn area(&self) -> f64 {
        std::f64::consts::PI * self.radius * self.radius
    }

    /// Whether `p` lies in the closed disk.
    #[inline]
    pub fn contains_point(&self, p: Point) -> bool {
        // Small tolerance: miniball support points must test as contained.
        self.center.dist_sq(p) <= self.radius * self.radius * (1.0 + 1e-12) + 1e-30
    }

    /// Closed disk-disk intersection test.
    #[inline]
    pub fn intersects_circle(&self, other: &Circle) -> bool {
        let d = self.center.dist(other.center);
        d <= self.radius + other.radius
    }

    /// Closed disk vs axis-parallel rectangle intersection test.
    pub fn intersects_rect(&self, rect: &Rect) -> bool {
        rect.dist_to_point(self.center) <= self.radius
    }

    /// Closed disk vs convex polygon (CCW ring) intersection test.
    pub fn intersects_convex(&self, ring: &[Point]) -> bool {
        if ring.is_empty() {
            return false;
        }
        if msj_geom::convex_contains_point(ring, self.center) {
            return true;
        }
        let n = ring.len();
        (0..n).any(|i| {
            msj_geom::Segment::new(ring[i], ring[(i + 1) % n]).dist_to_point(self.center)
                <= self.radius
        })
    }

    /// The axis-parallel bounding rectangle of the circle.
    pub fn mbr(&self) -> Rect {
        Rect::from_bounds(
            self.center.x - self.radius,
            self.center.y - self.radius,
            self.center.x + self.radius,
            self.center.y + self.radius,
        )
    }

    /// Inscribed regular `n`-gon (vertices on the circle). Because it is
    /// inscribed, its area under-approximates the disk — the safe direction
    /// for the hit-identifying false-area test.
    pub fn polygonize(&self, n: usize) -> Vec<Point> {
        let n = n.max(3);
        (0..n)
            .map(|i| {
                let t = i as f64 / n as f64 * std::f64::consts::TAU;
                self.center + Point::new(t.cos(), t.sin()) * self.radius
            })
            .collect()
    }

    /// Area of the intersection of two disks (closed form).
    pub fn intersection_area(&self, other: &Circle) -> f64 {
        let d = self.center.dist(other.center);
        let (r1, r2) = (self.radius, other.radius);
        if d >= r1 + r2 {
            return 0.0;
        }
        if d <= (r1 - r2).abs() {
            let r = r1.min(r2);
            return std::f64::consts::PI * r * r;
        }
        let alpha = ((d * d + r1 * r1 - r2 * r2) / (2.0 * d * r1))
            .clamp(-1.0, 1.0)
            .acos();
        let beta = ((d * d + r2 * r2 - r1 * r1) / (2.0 * d * r2))
            .clamp(-1.0, 1.0)
            .acos();
        r1 * r1 * (alpha - alpha.sin() * alpha.cos()) + r2 * r2 * (beta - beta.sin() * beta.cos())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn containment_and_area() {
        let c = Circle::new(Point::new(1.0, 1.0), 2.0);
        assert!(c.contains_point(Point::new(1.0, 1.0)));
        assert!(c.contains_point(Point::new(3.0, 1.0))); // on boundary
        assert!(!c.contains_point(Point::new(3.5, 1.0)));
        assert!((c.area() - std::f64::consts::PI * 4.0).abs() < 1e-12);
    }

    #[test]
    fn circle_circle_intersection() {
        let a = Circle::new(Point::new(0.0, 0.0), 1.0);
        assert!(a.intersects_circle(&Circle::new(Point::new(1.5, 0.0), 1.0)));
        assert!(a.intersects_circle(&Circle::new(Point::new(2.0, 0.0), 1.0))); // tangent
        assert!(!a.intersects_circle(&Circle::new(Point::new(2.1, 0.0), 1.0)));
        // Containment counts.
        assert!(a.intersects_circle(&Circle::new(Point::new(0.1, 0.0), 0.2)));
    }

    #[test]
    fn circle_rect_intersection() {
        let c = Circle::new(Point::new(0.0, 0.0), 1.0);
        assert!(c.intersects_rect(&Rect::from_bounds(0.5, -0.5, 2.0, 0.5)));
        assert!(c.intersects_rect(&Rect::from_bounds(1.0, -0.5, 2.0, 0.5))); // tangent
        assert!(!c.intersects_rect(&Rect::from_bounds(1.1, -0.5, 2.0, 0.5)));
        // Circle inside rect.
        assert!(c.intersects_rect(&Rect::from_bounds(-5.0, -5.0, 5.0, 5.0)));
        // Rect corner barely outside reach.
        assert!(!c.intersects_rect(&Rect::from_bounds(0.8, 0.8, 2.0, 2.0)));
    }

    #[test]
    fn circle_convex_intersection() {
        let c = Circle::new(Point::new(0.0, 0.0), 1.0);
        let tri = vec![
            Point::new(0.5, 0.0),
            Point::new(3.0, 0.0),
            Point::new(0.5, 3.0),
        ];
        assert!(c.intersects_convex(&tri)); // vertex inside disk
        let far = vec![
            Point::new(5.0, 0.0),
            Point::new(6.0, 0.0),
            Point::new(5.0, 1.0),
        ];
        assert!(!c.intersects_convex(&far));
        // Disk center inside polygon.
        let big = vec![
            Point::new(-10.0, -10.0),
            Point::new(10.0, -10.0),
            Point::new(10.0, 10.0),
            Point::new(-10.0, 10.0),
        ];
        assert!(c.intersects_convex(&big));
    }

    #[test]
    fn polygonize_is_inscribed() {
        let c = Circle::new(Point::new(2.0, -1.0), 3.0);
        let ring = c.polygonize(64);
        assert_eq!(ring.len(), 64);
        for &p in &ring {
            assert!((p.dist(c.center) - 3.0).abs() < 1e-12);
        }
        let poly_area = msj_geom::ring_area(&ring);
        assert!(poly_area < c.area());
        assert!(poly_area > 0.99 * c.area());
    }

    #[test]
    fn intersection_area_cases() {
        let a = Circle::new(Point::new(0.0, 0.0), 1.0);
        // Disjoint.
        assert_eq!(
            a.intersection_area(&Circle::new(Point::new(3.0, 0.0), 1.0)),
            0.0
        );
        // Contained.
        let small = Circle::new(Point::new(0.2, 0.0), 0.3);
        assert!((a.intersection_area(&small) - small.area()).abs() < 1e-12);
        // Same circle.
        assert!((a.intersection_area(&a) - a.area()).abs() < 1e-12);
        // Half-overlap sanity: symmetric lens, monotone in distance.
        let l1 = a.intersection_area(&Circle::new(Point::new(0.5, 0.0), 1.0));
        let l2 = a.intersection_area(&Circle::new(Point::new(1.0, 0.0), 1.0));
        assert!(l1 > l2 && l2 > 0.0);
    }

    #[test]
    fn mbr_of_circle() {
        let c = Circle::new(Point::new(1.0, 2.0), 0.5);
        assert_eq!(c.mbr(), Rect::from_bounds(0.5, 1.5, 1.5, 2.5));
    }
}

//! The false-area test (§3.3): a hit-identifying test on *conservative*
//! approximations.
//!
//! For conservative approximations `Appr(obj)` define the false area
//! `fa(obj) = area(Appr(obj)) − area(obj)`. If
//!
//! ```text
//! area(Appr(obj1) ∩ Appr(obj2)) > fa(obj1) + fa(obj2)
//! ```
//!
//! then the objects themselves must intersect: the intersection of the
//! approximations is too large to consist of false area alone.

use crate::kinds::{ConsView, Conservative};
use msj_geom::{clip_convex, ring_area};

/// Resolution used when a curved approximation (circle / ellipse) must be
/// polygonized for an area computation. Inscribed polygonization
/// under-approximates the area, which keeps the test sound.
pub const AREA_RESOLUTION: usize = 96;

/// Area of the intersection of two conservative approximations.
///
/// Exact for the polygonal kinds (MBR, RMBR, m-corner, hull); for circles
/// and ellipses an inscribed 96-gon is clipped, under-approximating by
/// < 0.3 %, in the sound direction.
pub fn conservative_intersection_area(a: &Conservative, b: &Conservative) -> f64 {
    view_intersection_area(&a.as_view(), &b.as_view())
}

/// [`conservative_intersection_area`] on columnar store views.
pub fn view_intersection_area(a: &ConsView, b: &ConsView) -> f64 {
    if let (ConsView::Circle(c1), ConsView::Circle(c2)) = (a, b) {
        return c1.intersection_area(c2); // closed form
    }
    if let (ConsView::Rect(r1), ConsView::Rect(r2)) = (a, b) {
        return r1.intersection_area(r2);
    }
    let ra = a.to_ring(AREA_RESOLUTION);
    let rb = b.to_ring(AREA_RESOLUTION);
    if ra.len() < 3 || rb.len() < 3 {
        return 0.0;
    }
    ring_area(&clip_convex(&ra, &rb))
}

/// The stored per-object input of the false-area test.
#[derive(Debug, Clone)]
pub struct FalseAreaEntry {
    pub approx: Conservative,
    /// `area(approx) − area(object)` — one extra stored parameter.
    pub false_area: f64,
}

impl FalseAreaEntry {
    pub fn new(approx: Conservative, object_area: f64) -> Self {
        let false_area = (approx.area() - object_area).max(0.0);
        FalseAreaEntry { approx, false_area }
    }
}

/// The false-area test: `true` means the objects certainly intersect.
/// `false` is inconclusive.
pub fn false_area_test(a: &FalseAreaEntry, b: &FalseAreaEntry) -> bool {
    let inter = conservative_intersection_area(&a.approx, &b.approx);
    inter > a.false_area + b.false_area
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kinds::ConservativeKind;
    use msj_geom::{Point, Polygon, Rect, SpatialObject};

    fn object(coords: &[(f64, f64)]) -> SpatialObject {
        SpatialObject::new(
            0,
            Polygon::new(coords.iter().map(|&(x, y)| Point::new(x, y)).collect())
                .unwrap()
                .into(),
        )
    }

    #[test]
    fn identical_squares_pass_with_mbr() {
        // Two identical squares: MBR = object, false area 0, intersection
        // area = full square > 0 → definite hit.
        let a = object(&[(0.0, 0.0), (2.0, 0.0), (2.0, 2.0), (0.0, 2.0)]);
        let ea = FalseAreaEntry::new(Conservative::compute(ConservativeKind::Mbr, &a), a.area());
        assert_eq!(ea.false_area, 0.0);
        assert!(false_area_test(&ea, &ea.clone()));
    }

    #[test]
    fn thin_diagonal_objects_fail_with_mbr() {
        // Two thin diagonal strips in the same bounding square: MBRs
        // overlap fully, but the false areas are huge → inconclusive.
        let a = object(&[(0.0, 0.0), (0.2, 0.0), (4.0, 3.8), (3.8, 4.0)]);
        let b = object(&[(4.0, 0.2), (3.8, 0.0), (0.0, 3.8), (0.2, 4.0)]);
        let ea = FalseAreaEntry::new(Conservative::compute(ConservativeKind::Mbr, &a), a.area());
        let eb = FalseAreaEntry::new(Conservative::compute(ConservativeKind::Mbr, &b), b.area());
        // The strips do cross, but the test cannot see it.
        assert!(!false_area_test(&ea, &eb));
    }

    #[test]
    fn tighter_approximation_identifies_more() {
        // A convex object equals its hull: false area 0 → deep overlap is
        // identified by the hull but not necessarily by the MBR.
        let a = object(&[(0.0, 0.0), (4.0, 0.0), (2.0, 3.0)]);
        let b = object(&[(0.0, 1.0), (4.0, 1.0), (2.0, -2.0)]);
        let hull_a = FalseAreaEntry::new(
            Conservative::compute(ConservativeKind::ConvexHull, &a),
            a.area(),
        );
        let hull_b = FalseAreaEntry::new(
            Conservative::compute(ConservativeKind::ConvexHull, &b),
            b.area(),
        );
        assert!(hull_a.false_area < 1e-9);
        assert!(false_area_test(&hull_a, &hull_b));
    }

    #[test]
    fn soundness_on_disjoint_objects() {
        // Disjoint objects must never be claimed as hits, whatever the
        // approximation.
        let a = object(&[(0.0, 0.0), (1.0, 0.0), (1.0, 1.0), (0.0, 1.0)]);
        let b = object(&[(5.0, 5.0), (6.0, 5.0), (6.0, 6.0), (5.0, 6.0)]);
        for kind in ConservativeKind::ALL {
            let ea = FalseAreaEntry::new(Conservative::compute(kind, &a), a.area());
            let eb = FalseAreaEntry::new(Conservative::compute(kind, &b), b.area());
            assert!(
                !false_area_test(&ea, &eb),
                "{} falsely claims a hit",
                kind.name()
            );
        }
    }

    #[test]
    fn intersection_area_of_circles_uses_closed_form() {
        use crate::circle::Circle;
        let c1 = Conservative::Mbc(Circle::new(Point::new(0.0, 0.0), 1.0));
        let c2 = Conservative::Mbc(Circle::new(Point::new(0.0, 0.0), 1.0));
        let a = conservative_intersection_area(&c1, &c2);
        assert!((a - std::f64::consts::PI).abs() < 1e-12);
    }

    #[test]
    fn intersection_area_of_rects_is_exact() {
        let r1 = Conservative::Mbr(Rect::from_bounds(0.0, 0.0, 2.0, 2.0));
        let r2 = Conservative::Mbr(Rect::from_bounds(1.0, 1.0, 3.0, 3.0));
        assert_eq!(conservative_intersection_area(&r1, &r2), 1.0);
    }

    #[test]
    fn mixed_kind_intersection_area() {
        use crate::circle::Circle;
        // Unit disk inside a large square: intersection ≈ disk area
        // (slightly less due to inscribed polygonization).
        let c = Conservative::Mbc(Circle::new(Point::new(2.0, 2.0), 1.0));
        let r = Conservative::Mbr(Rect::from_bounds(0.0, 0.0, 4.0, 4.0));
        let a = conservative_intersection_area(&c, &r);
        assert!(a <= std::f64::consts::PI);
        assert!(a > 0.99 * std::f64::consts::PI);
    }
}

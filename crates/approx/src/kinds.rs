//! Unified approximation types and their intersection tests.
//!
//! A *conservative* approximation contains every point of the object: if
//! two conservative approximations are disjoint, the objects are disjoint
//! (false-hit detection). A *progressive* approximation is contained in
//! the object: if two progressive approximations intersect, the objects
//! intersect (hit detection).

use crate::circle::Circle;
use crate::ellipse::Ellipse;
use crate::mbc::min_bounding_circle;
use crate::mbe::min_bounding_ellipse;
use crate::mcorner::min_bounding_corner;
use crate::mec::max_enclosed_circle;
use crate::mer::max_enclosed_rect;
use msj_geom::{
    convex_hull, convex_intersect, min_area_rect, Point, PolygonWithHoles, Rect, SpatialObject,
};

/// The conservative approximation kinds of §3.2, in the paper's order of
/// increasing accuracy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ConservativeKind {
    /// Minimum bounding rectangle (4 parameters).
    Mbr,
    /// Minimum bounding circle (3 parameters).
    Mbc,
    /// Minimum bounding ellipse (5 parameters).
    Mbe,
    /// Rotated minimum bounding rectangle (5 parameters).
    Rmbr,
    /// Minimum bounding 4-corner (8 parameters).
    FourCorner,
    /// Minimum bounding 5-corner (10 parameters).
    FiveCorner,
    /// Convex hull (variable parameters).
    ConvexHull,
}

impl ConservativeKind {
    /// All kinds in the order used by the paper's tables.
    pub const ALL: [ConservativeKind; 7] = [
        ConservativeKind::Mbc,
        ConservativeKind::Mbe,
        ConservativeKind::Rmbr,
        ConservativeKind::FourCorner,
        ConservativeKind::FiveCorner,
        ConservativeKind::ConvexHull,
        ConservativeKind::Mbr,
    ];

    /// Short display name matching the paper ("5-C", "MBC", ...).
    pub fn name(self) -> &'static str {
        match self {
            ConservativeKind::Mbr => "MBR",
            ConservativeKind::Mbc => "MBC",
            ConservativeKind::Mbe => "MBE",
            ConservativeKind::Rmbr => "RMBR",
            ConservativeKind::FourCorner => "4-C",
            ConservativeKind::FiveCorner => "5-C",
            ConservativeKind::ConvexHull => "CH",
        }
    }

    /// Stable on-disk code for the persistent store. Inverse of
    /// [`ConservativeKind::from_code`]; never renumber existing codes.
    pub fn code(self) -> u8 {
        match self {
            ConservativeKind::Mbr => 0,
            ConservativeKind::Mbc => 1,
            ConservativeKind::Mbe => 2,
            ConservativeKind::Rmbr => 3,
            ConservativeKind::FourCorner => 4,
            ConservativeKind::FiveCorner => 5,
            ConservativeKind::ConvexHull => 6,
        }
    }

    /// Decodes an on-disk kind code.
    pub fn from_code(code: u8) -> Option<Self> {
        Some(match code {
            0 => ConservativeKind::Mbr,
            1 => ConservativeKind::Mbc,
            2 => ConservativeKind::Mbe,
            3 => ConservativeKind::Rmbr,
            4 => ConservativeKind::FourCorner,
            5 => ConservativeKind::FiveCorner,
            6 => ConservativeKind::ConvexHull,
            _ => return None,
        })
    }
}

/// The progressive approximation kinds of §3.3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ProgressiveKind {
    /// Maximum enclosed circle (3 parameters).
    Mec,
    /// Maximum enclosed rectangle (4 parameters).
    Mer,
}

impl ProgressiveKind {
    pub const ALL: [ProgressiveKind; 2] = [ProgressiveKind::Mec, ProgressiveKind::Mer];

    pub fn name(self) -> &'static str {
        match self {
            ProgressiveKind::Mec => "MEC",
            ProgressiveKind::Mer => "MER",
        }
    }

    /// Stable on-disk code for the persistent store.
    pub fn code(self) -> u8 {
        match self {
            ProgressiveKind::Mec => 0,
            ProgressiveKind::Mer => 1,
        }
    }

    /// Decodes an on-disk kind code.
    pub fn from_code(code: u8) -> Option<Self> {
        Some(match code {
            0 => ProgressiveKind::Mec,
            1 => ProgressiveKind::Mer,
            _ => return None,
        })
    }
}

/// A computed conservative approximation.
#[derive(Debug, Clone, PartialEq)]
pub enum Conservative {
    Mbr(Rect),
    Mbc(Circle),
    Mbe(Ellipse),
    /// RMBR / m-corner / convex hull: a convex CCW vertex ring.
    Convex(ConservativeKind, Vec<Point>),
}

impl Conservative {
    /// Computes the approximation of `kind` for an object.
    ///
    /// Falls back to the MBR for degenerate geometry (collinear hulls),
    /// which keeps the approximation conservative.
    pub fn compute(kind: ConservativeKind, object: &SpatialObject) -> Conservative {
        let pts = object.region.outer().vertices();
        match kind {
            ConservativeKind::Mbr => Conservative::Mbr(object.mbr()),
            ConservativeKind::Mbc => min_bounding_circle(pts)
                .map(Conservative::Mbc)
                .unwrap_or(Conservative::Mbr(object.mbr())),
            ConservativeKind::Mbe => min_bounding_ellipse(pts, 1e-7)
                .map(Conservative::Mbe)
                .unwrap_or(Conservative::Mbr(object.mbr())),
            ConservativeKind::Rmbr => min_area_rect(pts)
                .map(|r| Conservative::Convex(kind, r.corners().to_vec()))
                .unwrap_or(Conservative::Mbr(object.mbr())),
            ConservativeKind::FourCorner => min_bounding_corner(pts, 4)
                .map(|ring| Conservative::Convex(kind, ring))
                .unwrap_or(Conservative::Mbr(object.mbr())),
            ConservativeKind::FiveCorner => min_bounding_corner(pts, 5)
                .map(|ring| Conservative::Convex(kind, ring))
                .unwrap_or(Conservative::Mbr(object.mbr())),
            ConservativeKind::ConvexHull => {
                let hull = convex_hull(pts);
                if hull.len() >= 3 {
                    Conservative::Convex(kind, hull)
                } else {
                    Conservative::Mbr(object.mbr())
                }
            }
        }
    }

    /// Number of stored parameters (floats) — the storage measure of
    /// Figure 3. The MBR costs 4, RMBR 5, 4-C 8, 5-C 10, MBC 3, MBE 5;
    /// hulls vary (2 per vertex).
    pub fn param_count(&self) -> usize {
        match self {
            Conservative::Mbr(_) => 4,
            Conservative::Mbc(_) => 3,
            Conservative::Mbe(_) => 5,
            Conservative::Convex(kind, ring) => match kind {
                ConservativeKind::Rmbr => 5,
                ConservativeKind::FourCorner => 8,
                ConservativeKind::FiveCorner => 10,
                _ => 2 * ring.len(),
            },
        }
    }

    /// Enclosed area of the approximation.
    pub fn area(&self) -> f64 {
        match self {
            Conservative::Mbr(r) => r.area(),
            Conservative::Mbc(c) => c.area(),
            Conservative::Mbe(e) => e.area(),
            Conservative::Convex(_, ring) => msj_geom::ring_area(ring),
        }
    }

    /// Axis-parallel bounding rectangle of the approximation (for the
    /// "area extension" analysis of §3.4).
    pub fn aabb(&self) -> Rect {
        match self {
            Conservative::Mbr(r) => *r,
            Conservative::Mbc(c) => c.mbr(),
            Conservative::Mbe(e) => e.mbr(),
            Conservative::Convex(_, ring) => {
                Rect::bounding(ring.iter().copied()).expect("non-empty ring")
            }
        }
    }

    /// Whether `p` lies in the closed approximation region.
    pub fn contains_point(&self, p: Point) -> bool {
        match self {
            Conservative::Mbr(r) => r.contains_point(p),
            Conservative::Mbc(c) => c.contains_point(p),
            Conservative::Mbe(e) => e.contains_point(p),
            Conservative::Convex(_, ring) => msj_geom::convex_contains_point(ring, p),
        }
    }

    /// A polygonal ring for area computations. Curved shapes are inscribed
    /// (`resolution`-gon), so derived areas under-approximate — the safe
    /// direction for the hit-identifying false-area test.
    pub fn to_ring(&self, resolution: usize) -> Vec<Point> {
        match self {
            Conservative::Mbr(r) => r.corners().to_vec(),
            Conservative::Mbc(c) => c.polygonize(resolution),
            Conservative::Mbe(e) => e.polygonize(resolution),
            Conservative::Convex(_, ring) => ring.clone(),
        }
    }

    /// Closed intersection test between two conservative approximations.
    pub fn intersects(&self, other: &Conservative) -> bool {
        use Conservative::*;
        match (self, other) {
            (Mbr(a), Mbr(b)) => a.intersects(b),
            (Mbc(a), Mbc(b)) => a.intersects_circle(b),
            (Mbe(a), Mbe(b)) => a.intersects_ellipse(b),
            (Convex(_, a), Convex(_, b)) => convex_intersect(a, b),
            (Mbr(a), Mbc(b)) | (Mbc(b), Mbr(a)) => b.intersects_rect(a),
            (Mbr(a), Mbe(b)) | (Mbe(b), Mbr(a)) => b.intersects_convex(&a.corners()),
            (Mbr(a), Convex(_, b)) | (Convex(_, b), Mbr(a)) => convex_intersect(&a.corners(), b),
            (Mbc(a), Mbe(b)) | (Mbe(b), Mbc(a)) => b.intersects_circle(a),
            (Mbc(a), Convex(_, b)) | (Convex(_, b), Mbc(a)) => a.intersects_convex(b),
            (Mbe(a), Convex(_, b)) | (Convex(_, b), Mbe(a)) => a.intersects_convex(b),
        }
    }
}

/// A borrowed, dispatch-light view of one stored conservative
/// approximation — what the columnar [`crate::ConservativeStore`] hands
/// out instead of `&Conservative`.
///
/// The payload behind a view lives in a contiguous per-kind column (a
/// flat vertex arena for the convex kinds), so reading one approximation
/// touches exactly its own bytes: no per-object heap allocation, no
/// `Vec<Point>` pointer chase. The intersection dispatch is identical to
/// [`Conservative::intersects`], with one deliberate normalization: MBR
/// *fallbacks* inside a convex-kind store are stored as their 4-corner
/// rings (see [`crate::ConservativeStore::build`]).
#[derive(Debug, Clone, Copy)]
pub enum ConsView<'a> {
    Rect(&'a Rect),
    Circle(&'a Circle),
    Ellipse(&'a Ellipse),
    /// A convex CCW vertex ring (RMBR / m-corner / hull / boxed MBR).
    Convex(&'a [Point]),
}

impl ConsView<'_> {
    /// Closed intersection test, mirroring [`Conservative::intersects`].
    pub fn intersects(&self, other: &ConsView) -> bool {
        use ConsView::*;
        match (self, other) {
            (Rect(a), Rect(b)) => a.intersects(b),
            (Circle(a), Circle(b)) => a.intersects_circle(b),
            (Ellipse(a), Ellipse(b)) => a.intersects_ellipse(b),
            (Convex(a), Convex(b)) => convex_intersect(a, b),
            (Rect(a), Circle(b)) | (Circle(b), Rect(a)) => b.intersects_rect(a),
            (Rect(a), Ellipse(b)) | (Ellipse(b), Rect(a)) => b.intersects_convex(&a.corners()),
            (Rect(a), Convex(b)) | (Convex(b), Rect(a)) => convex_intersect(&a.corners(), b),
            (Circle(a), Ellipse(b)) | (Ellipse(b), Circle(a)) => b.intersects_circle(a),
            (Circle(a), Convex(b)) | (Convex(b), Circle(a)) => a.intersects_convex(b),
            (Ellipse(a), Convex(b)) | (Convex(b), Ellipse(a)) => a.intersects_convex(b),
        }
    }

    /// Whether `p` lies in the closed approximation region.
    pub fn contains_point(&self, p: Point) -> bool {
        match self {
            ConsView::Rect(r) => r.contains_point(p),
            ConsView::Circle(c) => c.contains_point(p),
            ConsView::Ellipse(e) => e.contains_point(p),
            ConsView::Convex(ring) => msj_geom::convex_contains_point(ring, p),
        }
    }

    /// Axis-parallel bounding rectangle of the approximation.
    pub fn aabb(&self) -> Rect {
        match self {
            ConsView::Rect(r) => **r,
            ConsView::Circle(c) => c.mbr(),
            ConsView::Ellipse(e) => e.mbr(),
            ConsView::Convex(ring) => Rect::bounding(ring.iter().copied()).expect("non-empty ring"),
        }
    }

    /// A polygonal ring for area computations (see
    /// [`Conservative::to_ring`]).
    pub fn to_ring(&self, resolution: usize) -> Vec<Point> {
        match self {
            ConsView::Rect(r) => r.corners().to_vec(),
            ConsView::Circle(c) => c.polygonize(resolution),
            ConsView::Ellipse(e) => e.polygonize(resolution),
            ConsView::Convex(ring) => ring.to_vec(),
        }
    }

    /// Enclosed area of the approximation.
    pub fn area(&self) -> f64 {
        match self {
            ConsView::Rect(r) => r.area(),
            ConsView::Circle(c) => c.area(),
            ConsView::Ellipse(e) => e.area(),
            ConsView::Convex(ring) => msj_geom::ring_area(ring),
        }
    }
}

impl Conservative {
    /// This approximation as a [`ConsView`].
    pub fn as_view(&self) -> ConsView<'_> {
        match self {
            Conservative::Mbr(r) => ConsView::Rect(r),
            Conservative::Mbc(c) => ConsView::Circle(c),
            Conservative::Mbe(e) => ConsView::Ellipse(e),
            Conservative::Convex(_, ring) => ConsView::Convex(ring),
        }
    }
}

/// A computed progressive approximation.
///
/// `Empty` marks objects whose progressive approximation degenerated (no
/// enclosed rectangle/circle found); it never identifies a hit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Progressive {
    Mec(Circle),
    Mer(Rect),
    Empty,
}

impl Progressive {
    /// Computes the progressive approximation of `kind` for an object.
    pub fn compute(kind: ProgressiveKind, object: &SpatialObject) -> Progressive {
        match kind {
            ProgressiveKind::Mec => {
                let c = max_enclosed_circle(&object.region, 1e-3);
                if c.radius > 0.0 {
                    Progressive::Mec(c)
                } else {
                    Progressive::Empty
                }
            }
            ProgressiveKind::Mer => max_enclosed_rect(&object.region, 0)
                .map(Progressive::Mer)
                .unwrap_or(Progressive::Empty),
        }
    }

    /// Number of stored parameters (MEC 3, MER 4).
    pub fn param_count(&self) -> usize {
        match self {
            Progressive::Mec(_) => 3,
            Progressive::Mer(_) => 4,
            Progressive::Empty => 0,
        }
    }

    /// Enclosed area.
    pub fn area(&self) -> f64 {
        match self {
            Progressive::Mec(c) => c.area(),
            Progressive::Mer(r) => r.area(),
            Progressive::Empty => 0.0,
        }
    }

    /// Closed intersection test between two progressive approximations.
    /// `Empty` never intersects anything (no hit can be claimed).
    pub fn intersects(&self, other: &Progressive) -> bool {
        use Progressive::*;
        match (self, other) {
            (Mec(a), Mec(b)) => a.intersects_circle(b),
            (Mer(a), Mer(b)) => a.intersects(b),
            (Mec(a), Mer(b)) | (Mer(b), Mec(a)) => a.intersects_rect(b),
            (Empty, _) | (_, Empty) => false,
        }
    }
}

/// Verifies conservativeness on the object's own vertices (used by tests
/// and debug assertions): every vertex must lie in the approximation.
pub fn is_conservative_for(approx: &Conservative, region: &PolygonWithHoles) -> bool {
    region
        .outer()
        .vertices()
        .iter()
        .all(|&v| approx.contains_point(v))
}

#[cfg(test)]
mod tests {
    use super::*;
    use msj_geom::Polygon;

    fn object(coords: &[(f64, f64)]) -> SpatialObject {
        SpatialObject::new(
            0,
            Polygon::new(coords.iter().map(|&(x, y)| Point::new(x, y)).collect())
                .unwrap()
                .into(),
        )
    }

    fn blobby() -> SpatialObject {
        let pts: Vec<(f64, f64)> = (0..40)
            .map(|i| {
                let t = i as f64 / 40.0 * std::f64::consts::TAU;
                let r = 4.0 + 1.5 * (3.0 * t).sin() + 0.7 * (8.0 * t).cos();
                (r * t.cos() * 1.5, r * t.sin())
            })
            .collect();
        object(&pts)
    }

    #[test]
    fn every_conservative_kind_contains_the_object() {
        let obj = blobby();
        for kind in ConservativeKind::ALL {
            let a = Conservative::compute(kind, &obj);
            assert!(
                is_conservative_for(&a, &obj.region),
                "{} is not conservative",
                kind.name()
            );
        }
    }

    #[test]
    fn param_counts_match_figure3() {
        let obj = blobby();
        assert_eq!(
            Conservative::compute(ConservativeKind::Mbr, &obj).param_count(),
            4
        );
        assert_eq!(
            Conservative::compute(ConservativeKind::Mbc, &obj).param_count(),
            3
        );
        assert_eq!(
            Conservative::compute(ConservativeKind::Mbe, &obj).param_count(),
            5
        );
        assert_eq!(
            Conservative::compute(ConservativeKind::Rmbr, &obj).param_count(),
            5
        );
        assert_eq!(
            Conservative::compute(ConservativeKind::FourCorner, &obj).param_count(),
            8
        );
        assert_eq!(
            Conservative::compute(ConservativeKind::FiveCorner, &obj).param_count(),
            10
        );
        let ch = Conservative::compute(ConservativeKind::ConvexHull, &obj);
        assert!(ch.param_count() >= 6); // at least a triangle
    }

    #[test]
    fn accuracy_ordering_on_average_shape() {
        // Figure 4's ordering: CH ≤ 5-C ≤ 4-C and all ≤ MBR-sized shapes.
        let obj = blobby();
        let ch = Conservative::compute(ConservativeKind::ConvexHull, &obj).area();
        let c5 = Conservative::compute(ConservativeKind::FiveCorner, &obj).area();
        let c4 = Conservative::compute(ConservativeKind::FourCorner, &obj).area();
        let mbr = Conservative::compute(ConservativeKind::Mbr, &obj).area();
        assert!(ch <= c5 + 1e-9);
        assert!(c5 <= c4 + 1e-9);
        assert!(ch < mbr);
    }

    #[test]
    fn conservative_cross_type_intersections() {
        let a = object(&[(0.0, 0.0), (2.0, 0.0), (2.0, 2.0), (0.0, 2.0)]);
        let b = object(&[(1.0, 1.0), (3.0, 1.0), (3.0, 3.0), (1.0, 3.0)]);
        let far = object(&[(10.0, 10.0), (12.0, 10.0), (12.0, 12.0), (10.0, 12.0)]);
        for ka in ConservativeKind::ALL {
            for kb in ConservativeKind::ALL {
                let ca = Conservative::compute(ka, &a);
                let cb = Conservative::compute(kb, &b);
                let cf = Conservative::compute(kb, &far);
                assert!(
                    ca.intersects(&cb),
                    "{} vs {} should intersect (objects overlap)",
                    ka.name(),
                    kb.name()
                );
                assert!(
                    !ca.intersects(&cf) || ca.aabb().intersects(&cf.aabb()),
                    "{} vs {} spurious intersection",
                    ka.name(),
                    kb.name()
                );
            }
        }
    }

    #[test]
    fn conservative_test_symmetry() {
        let a = blobby();
        let b = object(&[(3.0, 3.0), (9.0, 4.0), (8.0, 9.0), (2.0, 8.0)]);
        for ka in ConservativeKind::ALL {
            for kb in ConservativeKind::ALL {
                let ca = Conservative::compute(ka, &a);
                let cb = Conservative::compute(kb, &b);
                assert_eq!(
                    ca.intersects(&cb),
                    cb.intersects(&ca),
                    "{} vs {} asymmetric",
                    ka.name(),
                    kb.name()
                );
            }
        }
    }

    #[test]
    fn progressive_kinds_are_enclosed() {
        let obj = blobby();
        for kind in ProgressiveKind::ALL {
            let p = Progressive::compute(kind, &obj);
            match p {
                Progressive::Mec(c) => {
                    for i in 0..24 {
                        let t = i as f64 / 24.0 * std::f64::consts::TAU;
                        let q = c.center + Point::new(t.cos(), t.sin()) * (c.radius * 0.995);
                        assert!(obj.region.contains_point(q), "MEC point escaped");
                    }
                }
                Progressive::Mer(r) => {
                    for i in 0..=4 {
                        for j in 0..=4 {
                            let q = Point::new(
                                r.xmin() + r.width() * i as f64 / 4.0,
                                r.ymin() + r.height() * j as f64 / 4.0,
                            )
                            .lerp(r.center(), 1e-6);
                            assert!(obj.region.contains_point(q), "MER point escaped");
                        }
                    }
                }
                Progressive::Empty => panic!("progressive approximation degenerated"),
            }
        }
    }

    #[test]
    fn progressive_intersection_tests() {
        let a = Progressive::Mer(Rect::from_bounds(0.0, 0.0, 2.0, 2.0));
        let b = Progressive::Mer(Rect::from_bounds(1.0, 1.0, 3.0, 3.0));
        let c = Progressive::Mec(Circle::new(Point::new(5.0, 1.0), 1.0));
        assert!(a.intersects(&b));
        assert!(!a.intersects(&c));
        assert!(b.intersects(&b));
        // Circle touching rect.
        let d = Progressive::Mec(Circle::new(Point::new(3.0, 1.0), 1.0));
        assert!(a.intersects(&d));
        // Empty never intersects.
        assert!(!Progressive::Empty.intersects(&a));
        assert!(!a.intersects(&Progressive::Empty));
    }

    #[test]
    fn progressive_area_below_object_area() {
        let obj = blobby();
        let area = obj.area();
        for kind in ProgressiveKind::ALL {
            let p = Progressive::compute(kind, &obj);
            assert!(p.area() > 0.0);
            assert!(p.area() <= area, "{} exceeds object", kind.name());
        }
    }
}

//! Ellipses: the shape behind the minimum bounding ellipse (MBE).

use crate::circle::Circle;
use msj_geom::{Point, Rect};

/// An ellipse given by center, semi-axes and rotation (5 parameters, like
/// the paper's MBE).
///
/// The region is `{ c + R(angle)·(a·cosθ·e₁ + b·sinθ·e₂) }` with `a ≥ b`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Ellipse {
    pub center: Point,
    /// Major semi-axis length.
    pub a: f64,
    /// Minor semi-axis length.
    pub b: f64,
    /// Rotation of the major axis, radians CCW.
    pub angle: f64,
}

impl Ellipse {
    pub fn new(center: Point, a: f64, b: f64, angle: f64) -> Self {
        if a >= b {
            Ellipse {
                center,
                a,
                b,
                angle,
            }
        } else {
            Ellipse {
                center,
                a: b,
                b: a,
                angle: angle + std::f64::consts::FRAC_PI_2,
            }
        }
    }

    /// A circle as the special case `a = b`.
    pub fn from_circle(c: Circle) -> Self {
        Ellipse::new(c.center, c.radius, c.radius, 0.0)
    }

    /// Enclosed area `π a b`.
    #[inline]
    pub fn area(&self) -> f64 {
        std::f64::consts::PI * self.a * self.b
    }

    /// Maps a point into the ellipse's *whitened* frame, where the ellipse
    /// becomes the unit disk at the origin.
    #[inline]
    pub fn whiten(&self, p: Point) -> Point {
        let d = (p - self.center).rotated(-self.angle);
        Point::new(d.x / self.a, d.y / self.b)
    }

    /// Inverse of [`Ellipse::whiten`].
    #[inline]
    pub fn unwhiten(&self, q: Point) -> Point {
        self.center + Point::new(q.x * self.a, q.y * self.b).rotated(self.angle)
    }

    /// Whether `p` lies in the closed elliptical region.
    #[inline]
    pub fn contains_point(&self, p: Point) -> bool {
        self.whiten(p).norm_sq() <= 1.0 + 1e-9
    }

    /// The boundary point at ellipse parameter `t`.
    #[inline]
    pub fn boundary_point(&self, t: f64) -> Point {
        self.unwhiten(Point::new(t.cos(), t.sin()))
    }

    /// Inscribed `n`-gon (vertices on the boundary).
    pub fn polygonize(&self, n: usize) -> Vec<Point> {
        let n = n.max(3);
        (0..n)
            .map(|i| self.boundary_point(i as f64 / n as f64 * std::f64::consts::TAU))
            .collect()
    }

    /// Axis-parallel bounding rectangle (closed form).
    pub fn mbr(&self) -> Rect {
        let (s, c) = self.angle.sin_cos();
        let ex = ((self.a * c).powi(2) + (self.b * s).powi(2)).sqrt();
        let ey = ((self.a * s).powi(2) + (self.b * c).powi(2)).sqrt();
        Rect::from_bounds(
            self.center.x - ex,
            self.center.y - ey,
            self.center.x + ex,
            self.center.y + ey,
        )
    }

    /// Minimum Euclidean norm over the boundary image of another ellipse in
    /// this ellipse's whitened frame: used for the ellipse-ellipse test.
    fn min_whitened_dist_to(&self, other: &Ellipse) -> f64 {
        // Dense scan plus golden-section refinement of |whiten(other(t))|².
        let f = |t: f64| self.whiten(other.boundary_point(t)).norm_sq();
        let samples = 96;
        let tau = std::f64::consts::TAU;
        let mut best_t = 0.0;
        let mut best = f64::INFINITY;
        for i in 0..samples {
            let t = i as f64 / samples as f64 * tau;
            let v = f(t);
            if v < best {
                best = v;
                best_t = t;
            }
        }
        // Golden-section search in the bracket around the best sample.
        let step = tau / samples as f64;
        let (mut lo, mut hi) = (best_t - step, best_t + step);
        let phi = 0.618_033_988_749_894_9;
        for _ in 0..60 {
            let m1 = hi - phi * (hi - lo);
            let m2 = lo + phi * (hi - lo);
            if f(m1) <= f(m2) {
                hi = m2;
            } else {
                lo = m1;
            }
        }
        f(0.5 * (lo + hi)).min(best).sqrt()
    }

    /// Closed ellipse-ellipse intersection test.
    ///
    /// Exact up to the 1D numeric minimization (tolerance ≪ 1e-9 of the
    /// whitened radius); ties are resolved toward "intersecting", which is
    /// the safe direction for a conservative filter.
    pub fn intersects_ellipse(&self, other: &Ellipse) -> bool {
        // Centers inside each other → certainly intersecting.
        if self.contains_point(other.center) || other.contains_point(self.center) {
            return true;
        }
        // Otherwise the regions intersect iff the other boundary reaches
        // the unit disk in the whitened frame (or vice versa).
        self.min_whitened_dist_to(other) <= 1.0 + 1e-9
            || other.min_whitened_dist_to(self) <= 1.0 + 1e-9
    }

    /// Closed ellipse-circle intersection test.
    pub fn intersects_circle(&self, c: &Circle) -> bool {
        self.intersects_ellipse(&Ellipse::from_circle(*c))
    }

    /// Closed ellipse vs convex polygon test via fine polygonization of the
    /// ellipse (128-gon inscribed + tolerance biased toward intersecting).
    pub fn intersects_convex(&self, ring: &[Point]) -> bool {
        if ring.is_empty() {
            return false;
        }
        // Whiten the polygon: ellipse becomes unit disk.
        let wring: Vec<Point> = ring.iter().map(|&p| self.whiten(p)).collect();
        Circle::new(Point::ORIGIN, 1.0).intersects_convex(&wring)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn axis_normalization() {
        let e = Ellipse::new(Point::ORIGIN, 1.0, 2.0, 0.0);
        assert!(e.a >= e.b);
        assert!((e.a - 2.0).abs() < 1e-12);
        // Region unchanged: point on original minor axis still on boundary.
        assert!(e.contains_point(Point::new(1.0, 0.0)));
        assert!(e.contains_point(Point::new(0.0, 2.0)));
        assert!(!e.contains_point(Point::new(1.1, 0.0)));
    }

    #[test]
    fn containment_rotated() {
        let e = Ellipse::new(Point::new(1.0, 1.0), 2.0, 1.0, std::f64::consts::FRAC_PI_4);
        // Along the rotated major axis.
        let d = Point::new(1.0, 1.0) + Point::new(2.0, 0.0).rotated(std::f64::consts::FRAC_PI_4);
        assert!(e.contains_point(d));
        assert!(e.contains_point(e.center));
        assert!(!e.contains_point(Point::new(3.5, 1.0)));
    }

    #[test]
    fn area_and_mbr() {
        let e = Ellipse::new(Point::ORIGIN, 3.0, 1.0, 0.0);
        assert!((e.area() - 3.0 * std::f64::consts::PI).abs() < 1e-12);
        let m = e.mbr();
        assert!((m.width() - 6.0).abs() < 1e-12);
        assert!((m.height() - 2.0).abs() < 1e-12);
        // Rotated by 90°, the MBR flips.
        let r = Ellipse::new(Point::ORIGIN, 3.0, 1.0, std::f64::consts::FRAC_PI_2);
        let mr = r.mbr();
        assert!((mr.width() - 2.0).abs() < 1e-9);
        assert!((mr.height() - 6.0).abs() < 1e-9);
    }

    #[test]
    fn mbr_bounds_polygonization() {
        let e = Ellipse::new(Point::new(2.0, -1.0), 3.0, 1.5, 0.77);
        let m = e.mbr();
        for p in e.polygonize(256) {
            assert!(m.contains_point(p));
        }
    }

    #[test]
    fn ellipse_ellipse_disjoint_and_touching() {
        let e1 = Ellipse::new(Point::ORIGIN, 2.0, 1.0, 0.0);
        let e2 = Ellipse::new(Point::new(5.0, 0.0), 2.0, 1.0, 0.0);
        assert!(!e1.intersects_ellipse(&e2));
        // Tangent along the x axis: centers 4 apart, semi-major 2 each.
        let e3 = Ellipse::new(Point::new(4.0, 0.0), 2.0, 1.0, 0.0);
        assert!(e1.intersects_ellipse(&e3));
        // Overlapping.
        let e4 = Ellipse::new(Point::new(3.0, 0.0), 2.0, 1.0, 0.0);
        assert!(e1.intersects_ellipse(&e4));
    }

    #[test]
    fn ellipse_ellipse_containment() {
        let big = Ellipse::new(Point::ORIGIN, 5.0, 4.0, 0.3);
        let small = Ellipse::new(Point::new(0.5, 0.5), 1.0, 0.5, 1.0);
        assert!(big.intersects_ellipse(&small));
        assert!(small.intersects_ellipse(&big));
    }

    #[test]
    fn thin_rotated_ellipses_near_miss() {
        // Two thin ellipses, perpendicular, offset so they miss.
        let e1 = Ellipse::new(Point::ORIGIN, 3.0, 0.2, 0.0);
        let e2 = Ellipse::new(Point::new(0.0, 2.0), 3.0, 0.2, 0.0);
        assert!(!e1.intersects_ellipse(&e2));
        // Crossing at right angles through each other's center region.
        let e3 = Ellipse::new(Point::new(0.0, 0.5), 3.0, 0.2, std::f64::consts::FRAC_PI_2);
        assert!(e1.intersects_ellipse(&e3));
    }

    #[test]
    fn ellipse_circle_and_convex() {
        let e = Ellipse::new(Point::ORIGIN, 2.0, 1.0, 0.0);
        assert!(e.intersects_circle(&Circle::new(Point::new(2.5, 0.0), 0.6)));
        assert!(!e.intersects_circle(&Circle::new(Point::new(3.0, 0.0), 0.5)));
        let sq = vec![
            Point::new(1.5, -0.5),
            Point::new(3.0, -0.5),
            Point::new(3.0, 0.5),
            Point::new(1.5, 0.5),
        ];
        assert!(e.intersects_convex(&sq));
        let far = vec![
            Point::new(4.0, 4.0),
            Point::new(5.0, 4.0),
            Point::new(5.0, 5.0),
        ];
        assert!(!e.intersects_convex(&far));
    }

    #[test]
    fn whiten_roundtrip() {
        let e = Ellipse::new(Point::new(1.0, 2.0), 3.0, 0.5, 0.9);
        let p = Point::new(2.5, 2.2);
        let q = e.unwhiten(e.whiten(p));
        assert!((q - p).norm() < 1e-12);
    }
}

//! Property tests: the containment invariants that make the geometric
//! filter *sound* must hold on arbitrary generated shapes.

use msj_approx::{
    false_area_test, is_conservative_for, Conservative, ConservativeKind, FalseAreaEntry,
    Progressive, ProgressiveKind,
};
use msj_datagen::{blob, BlobParams};
use msj_geom::{Point, SpatialObject};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Builds a deterministic blob object from a proptest-chosen seed.
fn blob_object(seed: u64, vertices: usize, cx: f64, cy: f64) -> SpatialObject {
    let params = BlobParams {
        vertices,
        radius: 3.0,
        ..BlobParams::default()
    };
    let mut rng = StdRng::seed_from_u64(seed);
    SpatialObject::new(0, blob(&mut rng, Point::new(cx, cy), &params).into())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn conservative_kinds_contain_all_vertices(
        seed in 0u64..5000,
        vertices in 8usize..64,
    ) {
        let obj = blob_object(seed, vertices, 0.0, 0.0);
        for kind in ConservativeKind::ALL {
            let a = Conservative::compute(kind, &obj);
            prop_assert!(
                is_conservative_for(&a, &obj.region),
                "{} not conservative (seed {seed})", kind.name()
            );
            // Conservative area is at least the object area.
            prop_assert!(a.area() >= obj.area() * (1.0 - 1e-9));
        }
    }

    #[test]
    fn progressive_kinds_stay_inside(seed in 0u64..5000, vertices in 8usize..48) {
        let obj = blob_object(seed, vertices, 0.0, 0.0);
        for kind in ProgressiveKind::ALL {
            match Progressive::compute(kind, &obj) {
                Progressive::Mec(c) => {
                    for i in 0..16 {
                        let t = i as f64 / 16.0 * std::f64::consts::TAU;
                        let p = c.center + Point::new(t.cos(), t.sin()) * (c.radius * 0.99);
                        prop_assert!(obj.region.contains_point(p), "MEC escaped (seed {seed})");
                    }
                }
                Progressive::Mer(r) => {
                    for i in 0..=3 {
                        for j in 0..=3 {
                            let p = Point::new(
                                r.xmin() + r.width() * i as f64 / 3.0,
                                r.ymin() + r.height() * j as f64 / 3.0,
                            ).lerp(r.center(), 1e-7);
                            prop_assert!(obj.region.contains_point(p), "MER escaped (seed {seed})");
                        }
                    }
                }
                Progressive::Empty => {} // permissible degenerate outcome
            }
        }
    }

    /// Soundness of the conservative filter: when the conservative test
    /// reports "disjoint approximations", the *objects* must be disjoint.
    /// We check the contrapositive on pairs with a known shared point.
    #[test]
    fn conservative_test_never_separates_overlapping_objects(
        seed in 0u64..2000,
        vertices in 8usize..40,
        dx in -1.0f64..1.0,
        dy in -1.0f64..1.0,
    ) {
        let a = blob_object(seed, vertices, 0.0, 0.0);
        // Small offset: the blobs (radius ~3) certainly overlap.
        let b = blob_object(seed.wrapping_add(1), vertices, dx, dy);
        // Verify overlap via a shared sample point (centroid of one inside
        // the other, or midpoint inside both); skip inconclusive cases.
        let witness = [
            a.region.outer().centroid(),
            b.region.outer().centroid(),
            Point::new(0.5 * dx, 0.5 * dy),
        ]
        .into_iter()
        .find(|&p| a.region.contains_point(p) && b.region.contains_point(p));
        if witness.is_some() {
            for kind in ConservativeKind::ALL {
                let ca = Conservative::compute(kind, &a);
                let cb = Conservative::compute(kind, &b);
                prop_assert!(
                    ca.intersects(&cb),
                    "{} separated overlapping objects (seed {seed})", kind.name()
                );
            }
        }
    }

    /// Soundness of the progressive test: if progressive approximations
    /// intersect, a shared point exists inside both objects.
    #[test]
    fn progressive_hit_implies_true_intersection(
        seed in 0u64..2000,
        vertices in 8usize..40,
        dx in -8.0f64..8.0,
        dy in -8.0f64..8.0,
    ) {
        let a = blob_object(seed, vertices, 0.0, 0.0);
        let b = blob_object(seed.wrapping_add(7), vertices, dx, dy);
        for kind in ProgressiveKind::ALL {
            let pa = Progressive::compute(kind, &a);
            let pb = Progressive::compute(kind, &b);
            if pa.intersects(&pb) {
                // The progressive regions are inside the objects; any
                // point of their (non-empty) intersection witnesses an
                // object intersection. Sample one.
                let witness = match (pa, pb) {
                    (Progressive::Mec(c1), Progressive::Mec(c2)) => {
                        let d = c2.center - c1.center;
                        let dist = d.norm();
                        if dist > 0.0 { c1.center + d * (c1.radius / (c1.radius + c2.radius).max(1e-12)).min(1.0) } else { c1.center }
                    }
                    (Progressive::Mer(r1), Progressive::Mer(r2)) => {
                        r1.intersection(&r2).map(|r| r.center()).unwrap_or(r1.center())
                    }
                    _ => unreachable!("same-kind comparison"),
                };
                prop_assert!(
                    a.region.contains_point(witness) || b.region.contains_point(witness),
                    "{} hit without witness (seed {seed})", kind.name()
                );
            }
        }
    }

    /// Soundness of the false-area test: a claimed hit implies the objects
    /// really do share area (checked by sampling the approximation
    /// intersection region).
    #[test]
    fn false_area_test_soundness(seed in 0u64..1500, dx in -2.0f64..2.0, dy in -2.0f64..2.0) {
        let a = blob_object(seed, 24, 0.0, 0.0);
        let b = blob_object(seed.wrapping_add(3), 24, dx, dy);
        for kind in [ConservativeKind::FiveCorner, ConservativeKind::ConvexHull, ConservativeKind::Mbr] {
            let ea = FalseAreaEntry::new(Conservative::compute(kind, &a), a.area());
            let eb = FalseAreaEntry::new(Conservative::compute(kind, &b), b.area());
            if false_area_test(&ea, &eb) {
                // Dense-sample the overlap of the two MBRs for a shared
                // interior point.
                let overlap = a.mbr().intersection(&b.mbr());
                prop_assert!(overlap.is_some(), "{}: hit without MBR overlap", kind.name());
                let r = overlap.unwrap();
                let mut found = false;
                'outer: for i in 0..=24 {
                    for j in 0..=24 {
                        let p = Point::new(
                            r.xmin() + r.width() * i as f64 / 24.0,
                            r.ymin() + r.height() * j as f64 / 24.0,
                        );
                        if a.region.contains_point(p) && b.region.contains_point(p) {
                            found = true;
                            break 'outer;
                        }
                    }
                }
                prop_assert!(found, "{}: false-area hit refuted by sampling (seed {seed})", kind.name());
            }
        }
    }

    /// The approximation-quality ordering of Figure 4 holds per object:
    /// hull ⊆ 5-corner ⊆ 4-corner (by area).
    #[test]
    fn corner_hierarchy_ordering(seed in 0u64..5000, vertices in 10usize..64) {
        let obj = blob_object(seed, vertices, 0.0, 0.0);
        let ch = Conservative::compute(ConservativeKind::ConvexHull, &obj).area();
        let c5 = Conservative::compute(ConservativeKind::FiveCorner, &obj).area();
        let c4 = Conservative::compute(ConservativeKind::FourCorner, &obj).area();
        prop_assert!(ch <= c5 * (1.0 + 1e-9));
        prop_assert!(c5 <= c4 * (1.0 + 1e-9));
    }
}

//! Property tests for the raster-interval signatures: the two invariants
//! that make the Step-2a decisions *sound* must hold on arbitrary
//! generated shapes —
//!
//! * **FULL soundness** — every FULL cell is contained in the closed
//!   region (otherwise a raster Hit could claim an intersection that
//!   does not exist);
//! * **coverage** — every region point lies in a stored (FULL ∪ PARTIAL)
//!   cell (otherwise a raster Drop could discard an intersecting pair).
//!
//! Exercised on cartographic blobs, holed regions, slivers, and
//! polygons with collinear vertex runs.

use msj_approx::raster::{
    hilbert_index, rasterize, RasterGrid, RasterSignature, MAX_GRID_BITS, MIN_GRID_BITS,
};
use msj_datagen::{blob, BlobParams};
use msj_geom::{Point, Polygon, PolygonWithHoles, Rect};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashSet;

/// Deterministic blob region from a proptest-chosen seed.
fn blob_region(seed: u64, vertices: usize) -> PolygonWithHoles {
    let params = BlobParams {
        vertices,
        radius: 3.0,
        ..BlobParams::default()
    };
    let mut rng = StdRng::seed_from_u64(seed);
    blob(&mut rng, Point::new(0.0, 0.0), &params).into()
}

/// A holed region from the holed-workload generator.
fn holed_region(seed: u64) -> PolygonWithHoles {
    let rel = msj_datagen::carto_with_holes(4, 20.0, seed);
    rel.object(0).region.clone()
}

/// A thin sliver: a needle quad with aspect ratio ~1e3.
fn sliver_region(seed: u64) -> PolygonWithHoles {
    let mut rng = StdRng::seed_from_u64(seed);
    let angle: f64 = rng.gen_range(0.0..std::f64::consts::TAU);
    let len: f64 = rng.gen_range(2.0..10.0);
    let along = Point::new(angle.cos(), angle.sin()) * len;
    let across = Point::new(-angle.sin(), angle.cos()) * (len * 1e-3);
    let origin = Point::new(rng.gen_range(-3.0..3.0), rng.gen_range(-3.0..3.0));
    Polygon::new(vec![
        origin,
        origin + along,
        origin + along + across,
        origin + across,
    ])
    .unwrap()
    .into()
}

/// A rectangle with collinear vertex runs on two edges (the constructor
/// rejects fully collinear rings; runs inside a valid ring must still
/// rasterize soundly).
fn collinear_region(seed: u64) -> PolygonWithHoles {
    let s = 1.0 + (seed % 7) as f64;
    Polygon::new(vec![
        Point::new(0.0, 0.0),
        Point::new(s, 0.0),
        Point::new(2.0 * s, 0.0),
        Point::new(3.0 * s, 0.0),
        Point::new(3.0 * s, s),
        Point::new(1.5 * s, s),
        Point::new(0.0, s),
    ])
    .unwrap()
    .into()
}

/// The grid a join would lay over this region plus some margin slack, at
/// a proptest-chosen resolution.
fn grid_for(region: &PolygonWithHoles, bits: u32, pad: f64) -> RasterGrid {
    let mbr = region.mbr();
    RasterGrid::new(
        Rect::from_bounds(
            mbr.xmin() - pad,
            mbr.ymin() - pad,
            mbr.xmax() + pad,
            mbr.ymax() + pad,
        ),
        bits,
    )
}

/// Cell ids of a signature, with per-cell class.
fn signature_cells(sig: RasterSignature<'_>) -> Vec<(u32, bool)> {
    let mut out = Vec::new();
    for iv in sig.intervals() {
        for d in iv.start()..iv.end() {
            out.push((d, iv.is_full()));
        }
    }
    out
}

/// Oracle for `cell ⊆ region`: no boundary edge enters the cell's
/// interior (grazing contact along the cell boundary keeps the closed
/// cell covered) and center + corners are inside.
fn cell_inside(region: &PolygonWithHoles, cell: &Rect) -> bool {
    let ex = cell.width() * 1e-9;
    let ey = cell.height() * 1e-9;
    let interior = Rect::from_bounds(
        cell.xmin() + ex,
        cell.ymin() + ey,
        cell.xmax() - ex,
        cell.ymax() - ey,
    );
    !region.edges().any(|e| e.intersects_rect(&interior))
        && region.contains_point(cell.center())
        && cell.corners().iter().all(|&c| region.contains_point(c))
}

/// Asserts both soundness invariants for one region on one grid.
fn assert_sound(
    region: &PolygonWithHoles,
    grid: &RasterGrid,
    seed: u64,
) -> Result<(), TestCaseError> {
    let intervals = rasterize(grid, region);
    prop_assert!(
        !intervals.is_empty(),
        "positive-area region rasterized to nothing"
    );
    let sig = RasterSignatureOwned { intervals };
    let cells = signature_cells(sig.view());
    let stored: HashSet<u32> = cells.iter().map(|&(d, _)| d).collect();
    prop_assert_eq!(stored.len(), cells.len(), "duplicate cells in signature");

    // FULL soundness.
    let n = grid.cells_per_axis();
    let mut pos = std::collections::HashMap::new();
    for cy in 0..n {
        for cx in 0..n {
            pos.insert(hilbert_index(grid.bits(), cx, cy), (cx, cy));
        }
    }
    for &(d, full) in &cells {
        if full {
            let (cx, cy) = pos[&d];
            prop_assert!(
                cell_inside(region, &grid.cell_rect(cx, cy)),
                "FULL cell ({cx},{cy}) escapes the region (seed {seed})"
            );
        }
    }

    // Coverage: boundary vertices and sampled interior points must map
    // to stored cells.
    let cell_of = |p: Point| {
        let (cx0, cy0, cx1, cy1) = grid.cell_range(&Rect::new(p, p));
        prop_assert_eq!((cx0, cy0), (cx1, cy1));
        Ok(hilbert_index(grid.bits(), cx0, cy0))
    };
    for e in region.edges() {
        for t in [0.0, 0.37, 1.0] {
            let p = e.a + (e.b - e.a) * t;
            prop_assert!(
                stored.contains(&cell_of(p)?),
                "boundary point {p:?} in no stored cell (seed {seed})"
            );
        }
    }
    let mbr = region.mbr();
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5eed);
    let mut sampled = 0;
    for _ in 0..256 {
        let p = Point::new(
            rng.gen_range(mbr.xmin()..=mbr.xmax()),
            rng.gen_range(mbr.ymin()..=mbr.ymax()),
        );
        if region.contains_point(p) {
            sampled += 1;
            prop_assert!(
                stored.contains(&cell_of(p)?),
                "interior point {p:?} in no stored cell (seed {seed})"
            );
        }
    }
    prop_assert!(sampled > 0 || region.area() < mbr.area() * 0.05);
    Ok(())
}

/// Owning wrapper so the helper can hand out a borrow-only view.
struct RasterSignatureOwned {
    intervals: Vec<msj_approx::raster::RasterInterval>,
}

impl RasterSignatureOwned {
    fn view(&self) -> RasterSignature<'_> {
        // Round-trip through a store to honor the public borrow-only API.
        RasterSignature::from_intervals(&self.intervals)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn blob_signatures_are_sound(
        seed in 0u64..4000,
        vertices in 8usize..48,
        bits in MIN_GRID_BITS..=7u32,
    ) {
        let region = blob_region(seed, vertices);
        assert_sound(&region, &grid_for(&region, bits, 0.5), seed)?;
    }

    #[test]
    fn holed_signatures_are_sound(seed in 0u64..2000, bits in 3u32..=7) {
        let region = holed_region(seed);
        assert_sound(&region, &grid_for(&region, bits, 0.5), seed)?;
    }

    #[test]
    fn sliver_signatures_are_sound(seed in 0u64..2000, bits in 3u32..=8) {
        let region = sliver_region(seed);
        assert_sound(&region, &grid_for(&region, bits, 0.25), seed)?;
    }

    #[test]
    fn collinear_signatures_are_sound(seed in 0u64..64, bits in 3u32..=7) {
        let region = collinear_region(seed);
        assert_sound(&region, &grid_for(&region, bits, 0.25), seed)?;
    }

    #[test]
    fn grids_clamp_to_supported_resolutions(bits in 0u32..=20) {
        let g = RasterGrid::new(Rect::from_bounds(0.0, 0.0, 1.0, 1.0), bits);
        prop_assert!(g.bits() >= MIN_GRID_BITS && g.bits() <= MAX_GRID_BITS);
    }
}

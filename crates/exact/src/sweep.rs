//! The plane-sweep intersection test (§4.1): Shamos–Hoey segment
//! intersection detection between the edges of two polygonal regions,
//! optionally *restricting the search space* to the intersection rectangle
//! of the two MBRs.

use crate::containment::intersect_by_containment;
use crate::cost::OpCounts;
use msj_geom::{PolygonWithHoles, Segment};

/// An edge in the event queue, normalized left-to-right, tagged with its
/// owning region (0 or 1).
#[derive(Debug, Clone, Copy)]
struct SweepEdge {
    seg: Segment,
    owner: u8,
}

/// Closed-region intersection via plane sweep.
///
/// With `restrict` set, edges not intersecting the MBR-intersection window
/// are excluded by a linear pre-scan (one *edge-rectangle test*, weight
/// 28, per edge) — the paper reports this saves ≈ 40 % of the sweep cost.
/// Position tests (weight 36) are counted per y-ordering comparison and
/// edge intersection tests (weight 15) per neighbour test. Vertex sorting
/// is treated as preprocessing and not counted, following §4.3.
pub fn sweep_intersects(
    a: &PolygonWithHoles,
    b: &PolygonWithHoles,
    restrict: bool,
    counts: &mut OpCounts,
) -> bool {
    let mut edges: Vec<SweepEdge> = Vec::with_capacity(a.num_vertices() + b.num_vertices());
    collect_edges(a, 0, &mut edges);
    collect_edges(b, 1, &mut edges);

    if restrict {
        match a.mbr().intersection(&b.mbr()) {
            Some(window) => {
                edges.retain(|e| {
                    counts.edge_rect += 1;
                    e.seg.intersects_rect(&window)
                });
            }
            // Disjoint MBRs: disjoint regions (no sweep needed).
            None => return false,
        }
    }

    if boundary_intersection_sweep(&edges, counts) {
        return true;
    }
    intersect_by_containment(a, b, counts)
}

fn collect_edges(region: &PolygonWithHoles, owner: u8, out: &mut Vec<SweepEdge>) {
    for e in region.edges() {
        if e.is_degenerate() {
            continue;
        }
        // Normalize left-to-right (ties resolved bottom-to-top).
        let seg = if (e.a.x, e.a.y) <= (e.b.x, e.b.y) {
            e
        } else {
            Segment::new(e.b, e.a)
        };
        out.push(SweepEdge { seg, owner });
    }
}

/// Core Shamos–Hoey sweep over tagged edges; returns `true` on the first
/// cross-owner edge intersection.
fn boundary_intersection_sweep(edges: &[SweepEdge], counts: &mut OpCounts) -> bool {
    #[derive(Clone, Copy)]
    struct Event {
        x: f64,
        /// 0 = insert, 1 = remove (inserts first at equal x so touching
        /// configurations coexist in the status).
        kind: u8,
        edge: usize,
    }
    let mut events: Vec<Event> = Vec::with_capacity(2 * edges.len());
    for (i, e) in edges.iter().enumerate() {
        events.push(Event {
            x: e.seg.a.x,
            kind: 0,
            edge: i,
        });
        events.push(Event {
            x: e.seg.b.x,
            kind: 1,
            edge: i,
        });
    }
    // Preprocessing sort (not counted, per §4.3).
    events.sort_by(|p, q| {
        p.x.partial_cmp(&q.x)
            .expect("finite coordinates")
            .then(p.kind.cmp(&q.kind))
    });

    // Sweep status: edge indices ordered by y at the sweep position.
    let mut status: Vec<usize> = Vec::new();

    for ev in events {
        let e = &edges[ev.edge];
        if ev.kind == 0 {
            // Binary search for the insertion position; each comparison is
            // a position test. Edges sharing the y value at the sweep
            // position (e.g. polygon edges fanning out of a common left
            // vertex) are ordered by slope — the order that holds just
            // right of the sweep line.
            let y_new = e.seg.a.y; // y at its left endpoint = y at sweep x
            let slope_new = slope(&e.seg);
            let mut lo = 0usize;
            let mut hi = status.len();
            while lo < hi {
                let mid = (lo + hi) / 2;
                counts.position += 1;
                let mid_seg = &edges[status[mid]].seg;
                let y_mid = mid_seg.y_at(ev.x);
                let mid_below = if y_mid == y_new {
                    slope(mid_seg) < slope_new
                } else {
                    y_mid < y_new
                };
                if mid_below {
                    lo = mid + 1;
                } else {
                    hi = mid;
                }
            }
            status.insert(lo, ev.edge);
            // Test the new edge against its neighbours.
            if lo > 0 && test_pair(edges, status[lo - 1], ev.edge, counts) {
                return true;
            }
            if lo + 1 < status.len() && test_pair(edges, status[lo + 1], ev.edge, counts) {
                return true;
            }
        } else {
            // Locate and remove (bookkeeping, not a counted operation).
            if let Some(idx) = status.iter().position(|&s| s == ev.edge) {
                status.remove(idx);
                // Former neighbours become adjacent.
                if idx > 0
                    && idx < status.len()
                    && test_pair(edges, status[idx - 1], status[idx], counts)
                {
                    return true;
                }
            }
        }
    }
    false
}

/// Slope of a left-to-right normalized segment; vertical segments order
/// above everything emanating from the same point.
fn slope(s: &Segment) -> f64 {
    let dx = s.b.x - s.a.x;
    if dx <= 0.0 {
        f64::INFINITY
    } else {
        (s.b.y - s.a.y) / dx
    }
}

/// Tests two status edges for intersection when they belong to different
/// regions; same-region neighbours cannot properly intersect (simple
/// polygons) and are skipped.
fn test_pair(edges: &[SweepEdge], i: usize, j: usize, counts: &mut OpCounts) -> bool {
    let (ei, ej) = (&edges[i], &edges[j]);
    if ei.owner == ej.owner {
        return false;
    }
    counts.edge_intersection += 1;
    ei.seg.intersects(&ej.seg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quadratic::quadratic_intersects;
    use msj_geom::{Point, Polygon};

    fn region(coords: &[(f64, f64)]) -> PolygonWithHoles {
        Polygon::new(coords.iter().map(|&(x, y)| Point::new(x, y)).collect())
            .unwrap()
            .into()
    }

    fn sq(x: f64, y: f64, s: f64) -> PolygonWithHoles {
        region(&[(x, y), (x + s, y), (x + s, y + s), (x, y + s)])
    }

    #[test]
    fn overlapping_squares() {
        let mut c = OpCounts::new();
        assert!(sweep_intersects(
            &sq(0.0, 0.0, 2.0),
            &sq(1.0, 1.0, 2.0),
            true,
            &mut c
        ));
        assert!(c.edge_rect > 0, "restriction pre-scan must run");
    }

    #[test]
    fn disjoint_squares_with_overlapping_mbrs() {
        // Two triangles whose MBRs overlap but shapes do not.
        let a = region(&[(0.0, 0.0), (4.0, 0.0), (0.0, 4.0)]);
        let b = region(&[(4.0, 4.0), (4.0, 1.5), (1.5, 4.0)]);
        let mut c = OpCounts::new();
        assert!(!sweep_intersects(&a, &b, true, &mut c));
        assert!(!sweep_intersects(&a, &b, false, &mut c));
    }

    #[test]
    fn containment_found_without_boundary_crossing() {
        let mut c = OpCounts::new();
        assert!(sweep_intersects(
            &sq(0.0, 0.0, 10.0),
            &sq(3.0, 3.0, 1.0),
            true,
            &mut c
        ));
        assert!(c.pip_performed >= 1);
    }

    #[test]
    fn disjoint_mbrs_shortcut() {
        let mut c = OpCounts::new();
        assert!(!sweep_intersects(
            &sq(0.0, 0.0, 1.0),
            &sq(5.0, 5.0, 1.0),
            true,
            &mut c
        ));
        assert_eq!(c.position, 0, "no sweep should run");
    }

    #[test]
    fn restriction_reduces_work() {
        // Two large polygons overlapping only in a small corner window.
        let a = region(&[
            (0.0, 0.0),
            (10.0, 0.0),
            (10.0, 1.0),
            (1.0, 1.0),
            (1.0, 9.0),
            (10.0, 9.0),
            (10.0, 10.0),
            (0.0, 10.0),
        ]);
        let b = a.translated(Point::new(9.5, 9.5));
        let mut unrestricted = OpCounts::new();
        let r1 = sweep_intersects(&a, &b, false, &mut unrestricted);
        let mut restricted = OpCounts::new();
        let r2 = sweep_intersects(&a, &b, true, &mut restricted);
        assert_eq!(r1, r2);
        assert!(
            restricted.position < unrestricted.position,
            "restricted {} vs unrestricted {}",
            restricted.position,
            unrestricted.position
        );
    }

    #[test]
    fn agrees_with_quadratic_on_fixed_cases() {
        let cases = [
            (sq(0.0, 0.0, 2.0), sq(1.0, 1.0, 2.0)),
            (sq(0.0, 0.0, 2.0), sq(2.0, 0.0, 2.0)), // touching edge
            (sq(0.0, 0.0, 2.0), sq(3.0, 0.0, 2.0)), // disjoint
            (sq(0.0, 0.0, 8.0), sq(3.0, 3.0, 1.0)), // containment
            (
                region(&[(0.0, 0.0), (4.0, 0.0), (0.0, 4.0)]),
                region(&[(4.0, 4.0), (4.0, 1.5), (1.5, 4.0)]),
            ),
            (
                region(&[(0.0, 0.0), (6.0, 1.0), (5.0, 5.0), (1.0, 4.0)]),
                region(&[(2.0, 2.0), (8.0, 2.5), (7.0, 6.0)]),
            ),
        ];
        for (i, (a, b)) in cases.iter().enumerate() {
            let mut c1 = OpCounts::new();
            let mut c2 = OpCounts::new();
            let q = quadratic_intersects(a, b, &mut c1);
            let s = sweep_intersects(a, b, true, &mut c2);
            assert_eq!(q, s, "case {i} disagrees");
        }
    }

    #[test]
    fn vertical_edges_are_handled() {
        // Rectangles meeting exactly along a vertical edge.
        let a = sq(0.0, 0.0, 2.0);
        let b = sq(2.0, 0.5, 2.0);
        let mut c = OpCounts::new();
        assert!(sweep_intersects(&a, &b, false, &mut c));
    }

    #[test]
    fn donut_and_inner_square_disjoint() {
        let outer = Polygon::new(
            [(0.0, 0.0), (10.0, 0.0), (10.0, 10.0), (0.0, 10.0)]
                .iter()
                .map(|&(x, y)| Point::new(x, y))
                .collect(),
        )
        .unwrap();
        let hole = Polygon::new(
            [(3.0, 3.0), (7.0, 3.0), (7.0, 7.0), (3.0, 7.0)]
                .iter()
                .map(|&(x, y)| Point::new(x, y))
                .collect(),
        )
        .unwrap();
        let donut = PolygonWithHoles::new(outer, vec![hole]);
        let inner = sq(4.0, 4.0, 2.0);
        let mut c = OpCounts::new();
        assert!(!sweep_intersects(&donut, &inner, false, &mut c));
        assert!(sweep_intersects(&donut, &sq(4.0, 4.0, 5.0), false, &mut c));
    }
}

//! # msj-exact — exact geometry processors for the spatial join
//!
//! Implementation of §4 of *"Multi-Step Processing of Spatial Joins"*: the
//! third join step, which decides the join predicate on the exact polygon
//! geometry for every candidate surviving the geometric filter.
//!
//! Three interchangeable algorithms (compared in Table 7 / Figure 16):
//!
//! * [`quadratic::quadratic_intersects`] — brute-force all-pairs edge
//!   test with MBR-pretested point-in-polygon containment fallback;
//! * [`sweep::sweep_intersects`] — Shamos–Hoey plane sweep with optional
//!   *search-space restriction* to the MBR intersection window (§4.1);
//! * [`trstar`] — the paper's proposal: trapezoid decomposition
//!   ([`trapezoid::decompose`]) organized per object in a main-memory
//!   [`trstar::TrStarTree`] with tiny node capacity, intersected by a
//!   dual-tree traversal.
//!
//! All three implement the same *closed-region* predicate (touching and
//! containment count as intersection); a cross-algorithm agreement
//! property test enforces this. Costs are accounted by counting the
//! geometric operations of Table 6 ([`cost::OpCounts`]) and weighting them
//! with the paper's microsecond constants ([`cost::Weights`]).

pub mod containment;
pub mod cost;
pub mod processor;
pub mod quadratic;
pub mod sweep;
pub mod trapezoid;
pub mod trstar;
pub mod window;

pub use containment::{intersect_by_containment, point_in_region_counted};
pub use cost::{OpCounts, Weights};
pub use processor::{ExactAlgorithm, ExactProcessor};
pub use quadratic::quadratic_intersects;
pub use sweep::sweep_intersects;
pub use trapezoid::{decompose, Trapezoid};
pub use trstar::{trees_intersect, TrStarExport, TrStarStore, TrStarTree};
pub use window::{region_contains_point, region_intersects_rect};

//! The exact geometry processor: a uniform front-end over the three
//! algorithms compared in §4.3.

use crate::cost::OpCounts;
use crate::quadratic::quadratic_intersects;
use crate::sweep::sweep_intersects;
use crate::trstar::{trees_intersect, TrStarStore};
use msj_geom::{ObjectId, RelHandle, Relation};
use std::sync::Arc;

/// Which exact intersection algorithm to run (Table 7's three rows).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExactAlgorithm {
    /// Brute-force all-pairs edge test.
    Quadratic,
    /// Shamos–Hoey plane sweep; `restrict` enables the search-space
    /// restriction to the MBR intersection window (§4.1).
    PlaneSweep { restrict: bool },
    /// TR*-tree dual traversal with node capacity `max_entries` (§4.2).
    TrStar { max_entries: usize },
}

impl ExactAlgorithm {
    pub fn name(&self) -> String {
        match self {
            ExactAlgorithm::Quadratic => "quadratic".into(),
            ExactAlgorithm::PlaneSweep { restrict: true } => "plane-sweep".into(),
            ExactAlgorithm::PlaneSweep { restrict: false } => "plane-sweep (no restrict)".into(),
            ExactAlgorithm::TrStar { max_entries } => format!("TR*-tree (M={max_entries})"),
        }
    }
}

/// Prepared per-relation state for the exact step.
///
/// The TR*-tree algorithm shifts work to preprocessing ("time and storage
/// is invested in the representation of the spatial objects", §4.2): trees
/// are built once per relation and reused for every candidate pair. The
/// stores sit behind [`Arc`] so a resident engine can build them once per
/// registered dataset and share them across every prepared join; relations
/// are held through [`RelHandle`], so an `ExactProcessor<'static>` owns
/// its inputs outright.
pub struct ExactProcessor<'a> {
    algorithm: ExactAlgorithm,
    rel_a: RelHandle<'a>,
    rel_b: RelHandle<'a>,
    trees_a: Option<Arc<TrStarStore>>,
    trees_b: Option<Arc<TrStarStore>>,
}

impl<'a> ExactProcessor<'a> {
    /// Prepares the processor (builds TR*-trees when required).
    pub fn new(algorithm: ExactAlgorithm, rel_a: &'a Relation, rel_b: &'a Relation) -> Self {
        Self::with_handles(algorithm, rel_a.into(), rel_b.into())
    }

    /// Prepares the processor over explicit relation handles (borrowed or
    /// `Arc`-shared).
    pub fn with_handles(
        algorithm: ExactAlgorithm,
        rel_a: RelHandle<'a>,
        rel_b: RelHandle<'a>,
    ) -> Self {
        let (trees_a, trees_b) = match algorithm {
            ExactAlgorithm::TrStar { max_entries } => (
                Some(Arc::new(TrStarStore::build(&rel_a, max_entries))),
                Some(Arc::new(TrStarStore::build(&rel_b, max_entries))),
            ),
            _ => (None, None),
        };
        ExactProcessor {
            algorithm,
            rel_a,
            rel_b,
            trees_a,
            trees_b,
        }
    }

    /// Assembles a processor from pre-built shared TR*-tree stores (the
    /// resident engine builds one store per registered dataset and reuses
    /// it across prepared joins). The stores must be `Some` exactly when
    /// `algorithm` is [`ExactAlgorithm::TrStar`] and must have been built
    /// over the handed relations with the same `max_entries`.
    pub fn from_shared(
        algorithm: ExactAlgorithm,
        rel_a: RelHandle<'a>,
        rel_b: RelHandle<'a>,
        trees_a: Option<Arc<TrStarStore>>,
        trees_b: Option<Arc<TrStarStore>>,
    ) -> Self {
        debug_assert_eq!(
            matches!(algorithm, ExactAlgorithm::TrStar { .. }),
            trees_a.is_some() && trees_b.is_some(),
            "TR*-tree stores must match the configured algorithm"
        );
        ExactProcessor {
            algorithm,
            rel_a,
            rel_b,
            trees_a,
            trees_b,
        }
    }

    pub fn algorithm(&self) -> ExactAlgorithm {
        self.algorithm
    }

    /// The prepared TR*-tree stores (present only for `TrStar`).
    pub fn tree_stores(&self) -> Option<(&TrStarStore, &TrStarStore)> {
        self.trees_a.as_deref().zip(self.trees_b.as_deref())
    }

    /// Tests one candidate pair on the exact geometry, accumulating the
    /// weighted operation counts into `counts`.
    pub fn intersects(&self, id_a: ObjectId, id_b: ObjectId, counts: &mut OpCounts) -> bool {
        match self.algorithm {
            ExactAlgorithm::Quadratic => quadratic_intersects(
                &self.rel_a.object(id_a).region,
                &self.rel_b.object(id_b).region,
                counts,
            ),
            ExactAlgorithm::PlaneSweep { restrict } => sweep_intersects(
                &self.rel_a.object(id_a).region,
                &self.rel_b.object(id_b).region,
                restrict,
                counts,
            ),
            ExactAlgorithm::TrStar { .. } => {
                let ta = self.trees_a.as_ref().expect("prepared").get(id_a);
                let tb = self.trees_b.as_ref().expect("prepared").get(id_b);
                trees_intersect(ta, tb, counts)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use msj_geom::{Point, Polygon, SpatialObject};

    fn blob_rel(seedlike: u64, count: usize, spacing: f64) -> Relation {
        let mut objs = Vec::new();
        for i in 0..count {
            let phase = (seedlike as f64) * 0.37 + i as f64;
            let n = 16 + ((i * 7 + seedlike as usize) % 24);
            let cx = (i % 4) as f64 * spacing;
            let cy = (i / 4) as f64 * spacing;
            let coords: Vec<Point> = (0..n)
                .map(|k| {
                    let t = k as f64 / n as f64 * std::f64::consts::TAU;
                    let r = 3.0 + 1.2 * (3.0 * t + phase).sin() + 0.5 * (5.0 * t).cos();
                    Point::new(cx + r * t.cos(), cy + r * t.sin())
                })
                .collect();
            objs.push(SpatialObject::new(
                i as u32,
                Polygon::new(coords).unwrap().into(),
            ));
        }
        Relation::new(objs)
    }

    #[test]
    fn all_algorithms_agree_on_all_pairs() {
        let ra = blob_rel(1, 12, 4.5);
        let rb = blob_rel(2, 12, 4.5);
        let algos = [
            ExactAlgorithm::Quadratic,
            ExactAlgorithm::PlaneSweep { restrict: true },
            ExactAlgorithm::PlaneSweep { restrict: false },
            ExactAlgorithm::TrStar { max_entries: 3 },
            ExactAlgorithm::TrStar { max_entries: 5 },
        ];
        let processors: Vec<ExactProcessor> = algos
            .iter()
            .map(|&alg| ExactProcessor::new(alg, &ra, &rb))
            .collect();
        let mut disagreements = Vec::new();
        for a in 0..ra.len() as u32 {
            for b in 0..rb.len() as u32 {
                let mut counts = OpCounts::new();
                let reference = processors[0].intersects(a, b, &mut counts);
                for p in &processors[1..] {
                    let mut c = OpCounts::new();
                    if p.intersects(a, b, &mut c) != reference {
                        disagreements.push((p.algorithm().name(), a, b, reference));
                    }
                }
            }
        }
        assert!(disagreements.is_empty(), "disagreements: {disagreements:?}");
    }

    #[test]
    fn trstar_is_cheapest_on_false_hits() {
        // A *false hit* — disjoint objects with overlapping MBRs — is the
        // expensive case: the quadratic algorithm must scan every edge
        // pair, while the TR*-tree prunes by directory rectangles
        // (Table 7's headline effect).
        // A wavy "U" with ~110 edges; the square sits in its cavity.
        let mut coords = vec![
            Point::new(0.0, 0.0),
            Point::new(10.0, 0.0),
            Point::new(10.0, 10.0),
            Point::new(9.0, 10.0),
        ];
        for k in 0..50 {
            let y = 10.0 - 9.0 * (k as f64 + 1.0) / 51.0;
            coords.push(Point::new(9.0 - 0.2 * (k as f64 * 0.7).sin().abs(), y));
        }
        coords.push(Point::new(1.0, 1.0));
        for k in 0..50 {
            let y = 1.0 + 9.0 * (k as f64 + 1.0) / 51.0;
            coords.push(Point::new(1.0 + 0.2 * (k as f64 * 0.9).sin().abs(), y));
        }
        coords.push(Point::new(0.0, 10.0));
        let ra = Relation::new(vec![SpatialObject::new(
            0,
            Polygon::new(coords).unwrap().into(),
        )]);
        let rb = Relation::new(vec![SpatialObject::new(
            0,
            Polygon::new(vec![
                Point::new(3.0, 5.0),
                Point::new(7.0, 5.0),
                Point::new(7.0, 8.0),
                Point::new(3.0, 8.0),
            ])
            .unwrap()
            .into(),
        )]);
        assert!(ra.object(0).mbr().intersects(&rb.object(0).mbr()));
        let w = crate::cost::Weights::default();
        let mut cq = OpCounts::new();
        let q = ExactProcessor::new(ExactAlgorithm::Quadratic, &ra, &rb).intersects(0, 0, &mut cq);
        let mut ct = OpCounts::new();
        let t = ExactProcessor::new(ExactAlgorithm::TrStar { max_entries: 3 }, &ra, &rb)
            .intersects(0, 0, &mut ct);
        assert!(!q && !t, "pair must be a false hit");
        assert!(
            ct.cost_ms(&w) < cq.cost_ms(&w),
            "TR* {} ms vs quadratic {} ms",
            ct.cost_ms(&w),
            cq.cost_ms(&w)
        );
    }

    #[test]
    fn processor_reports_algorithm_names() {
        assert_eq!(ExactAlgorithm::Quadratic.name(), "quadratic");
        assert_eq!(
            ExactAlgorithm::PlaneSweep { restrict: true }.name(),
            "plane-sweep"
        );
        assert_eq!(
            ExactAlgorithm::TrStar { max_entries: 3 }.name(),
            "TR*-tree (M=3)"
        );
    }
}

//! The TR*-tree (§4.2, [SK 91]): a main-memory R*-tree variant that
//! organizes the trapezoids of *one* decomposed object, with a very small
//! maximum node capacity (the paper finds M = 3 optimal).
//!
//! The intersection test between two objects walks both trees in tandem:
//! directory rectangles prune subtree pairs (rectangle intersection tests,
//! weight 28), and leaf trapezoid pairs decide (trapezoid intersection
//! tests, weight 38).

use crate::cost::OpCounts;
use crate::trapezoid::{decompose, Trapezoid};
use msj_geom::{ObjectId, Point, PolygonWithHoles, Rect, Relation};

/// A node of the TR*-tree. Children are indices into the tree's node
/// arena; leaves hold trapezoid indices.
#[derive(Debug, Clone)]
struct Node {
    rect: Rect,
    /// Height above the leaves (0 = leaf).
    level: u32,
    children: Vec<u32>,
}

/// A main-memory TR*-tree over the trapezoids of one object.
#[derive(Debug, Clone)]
pub struct TrStarTree {
    nodes: Vec<Node>,
    traps: Vec<Trapezoid>,
    /// In-memory parent pointers (construction bookkeeping only).
    parents: Vec<Option<u32>>,
    root: u32,
    max_entries: usize,
    min_entries: usize,
}

impl TrStarTree {
    /// Builds the tree for a region with maximum node capacity
    /// `max_entries` (the paper's M; 3–5 are sensible, 3 is best).
    pub fn build(region: &PolygonWithHoles, max_entries: usize) -> Self {
        let traps = decompose(region);
        Self::from_trapezoids(traps, max_entries)
    }

    /// Builds the tree from precomputed trapezoids.
    pub fn from_trapezoids(traps: Vec<Trapezoid>, max_entries: usize) -> Self {
        let max_entries = max_entries.max(2);
        let min_entries = (max_entries / 2).max(1);
        let mut tree = TrStarTree {
            nodes: vec![Node {
                rect: Rect::from_bounds(0.0, 0.0, 0.0, 0.0),
                level: 0,
                children: Vec::new(),
            }],
            traps: Vec::with_capacity(traps.len()),
            parents: vec![None],
            root: 0,
            max_entries,
            min_entries,
        };
        for t in traps {
            tree.insert(t);
        }
        tree
    }

    /// Number of trapezoids stored.
    pub fn num_trapezoids(&self) -> usize {
        self.traps.len()
    }

    /// Tree height in levels (1 = a single leaf node).
    pub fn height(&self) -> u32 {
        self.nodes[self.root as usize].level + 1
    }

    /// The root MBR (covers the whole object).
    pub fn root_rect(&self) -> Rect {
        self.nodes[self.root as usize].rect
    }

    /// The stored trapezoids.
    pub fn trapezoids(&self) -> &[Trapezoid] {
        &self.traps
    }

    fn insert(&mut self, t: Trapezoid) {
        let trap_idx = self.traps.len() as u32;
        let rect = t.mbr();
        self.traps.push(t);
        if self.traps.len() == 1 {
            // First entry initializes the root rect.
            self.nodes[self.root as usize].rect = rect;
        }
        self.place_trapezoid(trap_idx, rect, true);
    }

    /// Routes a trapezoid into a leaf. On overflow the R* *forced
    /// reinsert* runs once per insertion (leaf level only, as in the
    /// original heuristic's dominant case); afterwards the node splits.
    fn place_trapezoid(&mut self, trap_idx: u32, rect: Rect, allow_reinsert: bool) {
        let leaf = self.choose_leaf(rect);
        self.nodes[leaf as usize].children.push(trap_idx);
        self.nodes[leaf as usize].rect = if self.nodes[leaf as usize].children.len() == 1 {
            rect
        } else {
            self.nodes[leaf as usize].rect.union(&rect)
        };
        self.adjust_upward(leaf, rect);
        if self.nodes[leaf as usize].children.len() > self.max_entries {
            if allow_reinsert && leaf != self.root {
                self.forced_reinsert(leaf);
            } else {
                self.split(leaf);
            }
        }
    }

    /// Removes the 30 % of the leaf's trapezoids farthest from its center
    /// and re-routes them (far-first), shrinking the node's region before
    /// a split becomes necessary.
    fn forced_reinsert(&mut self, leaf: u32) {
        let center = self.nodes[leaf as usize].rect.center();
        let mut entries = std::mem::take(&mut self.nodes[leaf as usize].children);
        entries.sort_by(|&a, &b| {
            let da = self.traps[a as usize].mbr().center().dist_sq(center);
            let db = self.traps[b as usize].mbr().center().dist_sq(center);
            db.partial_cmp(&da).expect("finite")
        });
        let p = (entries.len() * 3 / 10).max(1);
        let removed: Vec<u32> = entries.drain(..p).collect();
        self.nodes[leaf as usize].children = entries;
        self.recompute_rects_upward(leaf);
        for trap_idx in removed {
            let rect = self.traps[trap_idx as usize].mbr();
            self.place_trapezoid(trap_idx, rect, false);
        }
    }

    /// Recomputes this node's rectangle from its children and propagates
    /// the (possibly shrunken) rectangles to the root.
    fn recompute_rects_upward(&mut self, node: u32) {
        let mut current = node;
        loop {
            let n = &self.nodes[current as usize];
            let rect = if n.level == 0 {
                n.children
                    .iter()
                    .map(|&t| self.traps[t as usize].mbr())
                    .reduce(|a, b| a.union(&b))
            } else {
                n.children
                    .iter()
                    .map(|&c| self.nodes[c as usize].rect)
                    .reduce(|a, b| a.union(&b))
            };
            if let Some(rect) = rect {
                self.nodes[current as usize].rect = rect;
            }
            match self.parent_of(current) {
                Some(p) => current = p,
                None => break,
            }
        }
    }

    /// R* choose-subtree: descend minimizing overlap enlargement at the
    /// level above the leaves and area enlargement elsewhere.
    fn choose_leaf(&self, rect: Rect) -> u32 {
        let mut node = self.root;
        loop {
            let n = &self.nodes[node as usize];
            if n.level == 0 {
                return node;
            }
            let mut best_child = n.children[0];
            let mut best_key = (f64::INFINITY, f64::INFINITY, f64::INFINITY);
            for &c in &n.children {
                let crect = self.nodes[c as usize].rect;
                let enlargement = crect.enlargement(&rect);
                let overlap_delta = if n.level == 1 {
                    // Overlap enlargement against siblings.
                    let grown = crect.union(&rect);
                    let mut before = 0.0;
                    let mut after = 0.0;
                    for &s in &n.children {
                        if s == c {
                            continue;
                        }
                        let srect = self.nodes[s as usize].rect;
                        before += crect.intersection_area(&srect);
                        after += grown.intersection_area(&srect);
                    }
                    after - before
                } else {
                    0.0
                };
                let key = (overlap_delta, enlargement, crect.area());
                if key < best_key {
                    best_key = key;
                    best_child = c;
                }
            }
            node = best_child;
        }
    }

    /// Recomputes ancestor rectangles after an insertion into `node`.
    fn adjust_upward(&mut self, node: u32, rect: Rect) {
        let mut current = node;
        while let Some(parent) = self.parent_of(current) {
            self.nodes[parent as usize].rect = self.nodes[parent as usize].rect.union(&rect);
            current = parent;
        }
    }

    /// Parent lookup via the maintained in-memory pointer.
    fn parent_of(&self, node: u32) -> Option<u32> {
        self.parents[node as usize]
    }

    /// Points the parent pointers of `node`'s direct child nodes at it.
    fn reparent_children(&mut self, node: u32) {
        if self.nodes[node as usize].level == 0 {
            return; // leaf children are trapezoid indices
        }
        let children = self.nodes[node as usize].children.clone();
        for c in children {
            self.parents[c as usize] = Some(node);
        }
    }

    /// R*-style split: choose the axis with minimal margin sum, then the
    /// distribution with minimal overlap (ties: minimal total area).
    fn split(&mut self, node: u32) {
        let level = self.nodes[node as usize].level;
        let children = std::mem::take(&mut self.nodes[node as usize].children);
        let rects: Vec<Rect> = children
            .iter()
            .map(|&c| self.child_rect(level, c))
            .collect();

        let (group_a, group_b) = self.best_split(&children, &rects);

        let rect_of = |group: &[u32], this: &TrStarTree| -> Rect {
            group
                .iter()
                .map(|&c| this.child_rect(level, c))
                .reduce(|a, b| a.union(&b))
                .expect("non-empty split group")
        };
        let rect_a = rect_of(&group_a, self);
        let rect_b = rect_of(&group_b, self);

        if node == self.root {
            // Grow the tree: new root above two fresh nodes.
            let a_idx = self.nodes.len() as u32;
            self.nodes.push(Node {
                rect: rect_a,
                level,
                children: group_a,
            });
            self.parents.push(Some(node));
            let b_idx = self.nodes.len() as u32;
            self.nodes.push(Node {
                rect: rect_b,
                level,
                children: group_b,
            });
            self.parents.push(Some(node));
            let root_rect = rect_a.union(&rect_b);
            self.nodes[node as usize] = Node {
                rect: root_rect,
                level: level + 1,
                children: vec![a_idx, b_idx],
            };
            self.reparent_children(a_idx);
            self.reparent_children(b_idx);
        } else {
            let parent = self.parent_of(node).expect("non-root has a parent");
            self.nodes[node as usize].rect = rect_a;
            self.nodes[node as usize].children = group_a;
            let b_idx = self.nodes.len() as u32;
            self.nodes.push(Node {
                rect: rect_b,
                level,
                children: group_b,
            });
            self.parents.push(Some(parent));
            self.reparent_children(node);
            self.reparent_children(b_idx);
            self.nodes[parent as usize].children.push(b_idx);
            // Parent rect unchanged (children cover the same entries).
            if self.nodes[parent as usize].children.len() > self.max_entries {
                self.split(parent);
            }
        }
    }

    /// MBR of a child reference: a trapezoid for leaves, a node otherwise.
    fn child_rect(&self, level: u32, child: u32) -> Rect {
        if level == 0 {
            self.traps[child as usize].mbr()
        } else {
            self.nodes[child as usize].rect
        }
    }

    /// Chooses the split distribution (R* axis + index selection,
    /// simplified to the m..M-m prefix distributions on both axes).
    fn best_split(&self, children: &[u32], rects: &[Rect]) -> (Vec<u32>, Vec<u32>) {
        let m = self.min_entries;
        let n = children.len();
        let mut best: Option<(f64, f64, Vec<u32>, Vec<u32>)> = None;

        for axis in 0..2 {
            let mut order: Vec<usize> = (0..n).collect();
            order.sort_by(|&i, &j| {
                let (ki, kj) = if axis == 0 {
                    (
                        (rects[i].xmin(), rects[i].xmax()),
                        (rects[j].xmin(), rects[j].xmax()),
                    )
                } else {
                    (
                        (rects[i].ymin(), rects[i].ymax()),
                        (rects[j].ymin(), rects[j].ymax()),
                    )
                };
                ki.partial_cmp(&kj).expect("finite")
            });
            for k in m..=(n - m) {
                let left: Vec<usize> = order[..k].to_vec();
                let right: Vec<usize> = order[k..].to_vec();
                let rect_l = left
                    .iter()
                    .map(|&i| rects[i])
                    .reduce(|a, b| a.union(&b))
                    .unwrap();
                let rect_r = right
                    .iter()
                    .map(|&i| rects[i])
                    .reduce(|a, b| a.union(&b))
                    .unwrap();
                let overlap = rect_l.intersection_area(&rect_r);
                let area = rect_l.area() + rect_r.area();
                if best
                    .as_ref()
                    .is_none_or(|(bo, ba, _, _)| (overlap, area) < (*bo, *ba))
                {
                    best = Some((
                        overlap,
                        area,
                        left.iter().map(|&i| children[i]).collect(),
                        right.iter().map(|&i| children[i]).collect(),
                    ));
                }
            }
        }
        let (_, _, a, b) = best.expect("at least one distribution");
        (a, b)
    }

    /// Counted point query: does any trapezoid contain `p`? Each directory
    /// rectangle probe counts as a rectangle test, each leaf probe as a
    /// trapezoid test.
    pub fn contains_point(&self, p: Point, counts: &mut OpCounts) -> bool {
        let mut stack = vec![self.root];
        while let Some(cur) = stack.pop() {
            let n = &self.nodes[cur as usize];
            counts.rect_rect += 1;
            if !n.rect.contains_point(p) {
                continue;
            }
            if n.level == 0 {
                for &t in &n.children {
                    counts.trapezoid += 1;
                    if self.traps[t as usize].contains_point(p) {
                        return true;
                    }
                }
            } else {
                stack.extend(n.children.iter().copied());
            }
        }
        false
    }
}

/// Dual-tree intersection test between two decomposed objects (§4.2):
/// returns `true` iff some trapezoid of `t1` intersects some trapezoid of
/// `t2`. Because the trapezoids cover the closed regions, containment is
/// detected without a separate point-in-polygon step.
pub fn trees_intersect(t1: &TrStarTree, t2: &TrStarTree, counts: &mut OpCounts) -> bool {
    if t1.traps.is_empty() || t2.traps.is_empty() {
        return false;
    }
    // Root-level pretest.
    counts.rect_rect += 1;
    if !t1.root_rect().intersects(&t2.root_rect()) {
        return false;
    }
    let mut stack: Vec<(u32, u32)> = vec![(t1.root, t2.root)];
    while let Some((a, b)) = stack.pop() {
        let na = &t1.nodes[a as usize];
        let nb = &t2.nodes[b as usize];
        match (na.level, nb.level) {
            (0, 0) => {
                for &ta in &na.children {
                    let trap_a = &t1.traps[ta as usize];
                    let rect_a = trap_a.mbr();
                    for &tb in &nb.children {
                        let trap_b = &t2.traps[tb as usize];
                        // MBR pretest on trapezoid pairs.
                        counts.rect_rect += 1;
                        if !rect_a.intersects(&trap_b.mbr()) {
                            continue;
                        }
                        counts.trapezoid += 1;
                        if trap_a.intersects(trap_b) {
                            return true;
                        }
                    }
                }
            }
            (la, lb) => {
                // Descend the taller tree (or t1 on ties).
                if la >= lb {
                    for &c in &na.children {
                        counts.rect_rect += 1;
                        if t1.nodes[c as usize].rect.intersects(&nb.rect) {
                            stack.push((c, b));
                        }
                    }
                } else {
                    for &c in &nb.children {
                        counts.rect_rect += 1;
                        if na.rect.intersects(&t2.nodes[c as usize].rect) {
                            stack.push((a, c));
                        }
                    }
                }
            }
        }
    }
    false
}

/// Precomputed TR*-trees for every object of a relation — the paper's
/// decomposed object representation, built once at "insertion time".
#[derive(Debug, Clone)]
pub struct TrStarStore {
    trees: Vec<TrStarTree>,
    max_entries: usize,
}

impl TrStarStore {
    pub fn build(relation: &Relation, max_entries: usize) -> Self {
        TrStarStore {
            trees: relation
                .iter()
                .map(|o| TrStarTree::build(&o.region, max_entries))
                .collect(),
            max_entries,
        }
    }

    #[inline]
    pub fn get(&self, id: ObjectId) -> &TrStarTree {
        &self.trees[id as usize]
    }

    pub fn len(&self) -> usize {
        self.trees.len()
    }

    pub fn is_empty(&self) -> bool {
        self.trees.is_empty()
    }

    pub fn max_entries(&self) -> usize {
        self.max_entries
    }

    /// Average tree height — the paper relates cost ratios to the ratio of
    /// average heights (7.6 / 5.0 for BW / Europe).
    pub fn avg_height(&self) -> f64 {
        if self.trees.is_empty() {
            return 0.0;
        }
        self.trees.iter().map(|t| t.height() as f64).sum::<f64>() / self.trees.len() as f64
    }

    /// Average number of trapezoids per object.
    pub fn avg_trapezoids(&self) -> f64 {
        if self.trees.is_empty() {
            return 0.0;
        }
        self.trees
            .iter()
            .map(|t| t.num_trapezoids() as f64)
            .sum::<f64>()
            / self.trees.len() as f64
    }

    /// Flattens every per-object tree into one serialization-ready
    /// [`TrStarExport`]: concatenated node / trapezoid / child arenas
    /// with per-tree offset tables. Child pointers stay tree-local (leaf
    /// children index the tree's trapezoids, directory children its
    /// nodes). Parent pointers are construction bookkeeping and are not
    /// exported.
    pub fn export(&self) -> TrStarExport {
        let total_nodes: usize = self.trees.iter().map(|t| t.nodes.len()).sum();
        let total_traps: usize = self.trees.iter().map(|t| t.traps.len()).sum();
        let mut e = TrStarExport {
            max_entries: self.max_entries as u64,
            tree_node_offsets: Vec::with_capacity(self.trees.len() + 1),
            tree_trap_offsets: Vec::with_capacity(self.trees.len() + 1),
            tree_roots: Vec::with_capacity(self.trees.len()),
            node_levels: Vec::with_capacity(total_nodes),
            node_rects: Vec::with_capacity(4 * total_nodes),
            child_offsets: Vec::with_capacity(total_nodes + 1),
            children: Vec::new(),
            traps: Vec::with_capacity(6 * total_traps),
        };
        e.tree_node_offsets.push(0);
        e.tree_trap_offsets.push(0);
        e.child_offsets.push(0);
        for tree in &self.trees {
            e.tree_roots.push(tree.root);
            for node in &tree.nodes {
                e.node_levels.push(node.level);
                let r = node.rect;
                e.node_rects
                    .extend_from_slice(&[r.xmin(), r.ymin(), r.xmax(), r.ymax()]);
                e.children.extend_from_slice(&node.children);
                e.child_offsets.push(e.children.len() as u32);
            }
            for t in &tree.traps {
                e.traps
                    .extend_from_slice(&[t.y_lo, t.y_hi, t.x_lo.0, t.x_lo.1, t.x_hi.0, t.x_hi.1]);
            }
            e.tree_node_offsets.push(e.node_levels.len() as u32);
            e.tree_trap_offsets.push((e.traps.len() / 6) as u32);
        }
        e
    }

    /// Reconstructs a store from an export — a linear repack of the
    /// arenas, no trapezoid decomposition and no R*-style reinsertion
    /// (unlike [`TrStarTree::from_trapezoids`], which rebuilds). Parent
    /// pointers are rebuilt from the directory children; the result
    /// traverses identically to the exported store.
    pub fn from_export(e: TrStarExport) -> Result<Self, String> {
        let num_trees = e.tree_roots.len();
        if e.tree_node_offsets.len() != num_trees + 1
            || e.tree_trap_offsets.len() != num_trees + 1
            || e.tree_node_offsets[0] != 0
            || e.tree_trap_offsets[0] != 0
        {
            return Err("tree offset tables malformed".into());
        }
        let total_nodes = e.node_levels.len();
        if e.node_rects.len() != 4 * total_nodes
            || e.child_offsets.len() != total_nodes + 1
            || e.child_offsets[0] != 0
            || e.tree_node_offsets[num_trees] as usize != total_nodes
            || e.child_offsets[total_nodes] as usize != e.children.len()
        {
            return Err("node column lengths mismatch".into());
        }
        if !e.traps.len().is_multiple_of(6)
            || e.tree_trap_offsets[num_trees] as usize != e.traps.len() / 6
        {
            return Err("trapezoid arena length mismatch".into());
        }
        let max_entries = (e.max_entries as usize).max(2);
        let min_entries = (max_entries / 2).max(1);
        let mut trees = Vec::with_capacity(num_trees);
        for t in 0..num_trees {
            let n_lo = e.tree_node_offsets[t] as usize;
            let n_hi = e.tree_node_offsets[t + 1] as usize;
            let t_lo = e.tree_trap_offsets[t] as usize;
            let t_hi = e.tree_trap_offsets[t + 1] as usize;
            if n_lo > n_hi || n_hi > total_nodes || t_lo > t_hi {
                return Err("tree offsets not monotonic".into());
            }
            let n = n_hi - n_lo;
            let num_traps = t_hi - t_lo;
            if n == 0 || e.tree_roots[t] as usize >= n {
                return Err("tree root out of range".into());
            }
            let mut nodes = Vec::with_capacity(n);
            let mut parents: Vec<Option<u32>> = vec![None; n];
            for i in 0..n {
                let g = n_lo + i;
                let level = e.node_levels[g];
                let c_lo = e.child_offsets[g] as usize;
                let c_hi = e.child_offsets[g + 1] as usize;
                if c_lo > c_hi || c_hi > e.children.len() {
                    return Err("child offsets not monotonic".into());
                }
                let children = e.children[c_lo..c_hi].to_vec();
                for &c in &children {
                    if level == 0 {
                        if c as usize >= num_traps {
                            return Err("leaf child out of range".into());
                        }
                    } else {
                        if c as usize >= n {
                            return Err("dir child out of range".into());
                        }
                        parents[c as usize] = Some(i as u32);
                    }
                }
                let r = &e.node_rects[4 * g..4 * g + 4];
                nodes.push(Node {
                    rect: Rect::from_bounds(r[0], r[1], r[2], r[3]),
                    level,
                    children,
                });
            }
            let traps = (t_lo..t_hi)
                .map(|j| {
                    let s = &e.traps[6 * j..6 * j + 6];
                    Trapezoid {
                        y_lo: s[0],
                        y_hi: s[1],
                        x_lo: (s[2], s[3]),
                        x_hi: (s[4], s[5]),
                    }
                })
                .collect();
            trees.push(TrStarTree {
                nodes,
                traps,
                parents,
                root: e.tree_roots[t],
                max_entries,
                min_entries,
            });
        }
        Ok(TrStarStore { trees, max_entries })
    }
}

/// Flat image of a [`TrStarStore`] — the unit `msj-store` persists.
/// Arenas are concatenated across the per-object trees; the
/// `tree_*_offsets` tables (one entry per object plus a sentinel) slice
/// them back apart. Trapezoids are 6 scalars each (`y_lo`, `y_hi`,
/// bottom x-interval, top x-interval).
#[derive(Debug, Clone, PartialEq)]
pub struct TrStarExport {
    pub max_entries: u64,
    pub tree_node_offsets: Vec<u32>,
    pub tree_trap_offsets: Vec<u32>,
    pub tree_roots: Vec<u32>,
    pub node_levels: Vec<u32>,
    pub node_rects: Vec<f64>,
    pub child_offsets: Vec<u32>,
    pub children: Vec<u32>,
    pub traps: Vec<f64>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quadratic::quadratic_intersects;
    use msj_geom::Polygon;

    fn region(coords: &[(f64, f64)]) -> PolygonWithHoles {
        Polygon::new(coords.iter().map(|&(x, y)| Point::new(x, y)).collect())
            .unwrap()
            .into()
    }

    fn blob(n: usize, cx: f64, cy: f64, phase: f64) -> PolygonWithHoles {
        let coords: Vec<(f64, f64)> = (0..n)
            .map(|i| {
                let t = i as f64 / n as f64 * std::f64::consts::TAU;
                let r = 3.0 + 1.2 * (3.0 * t + phase).sin() + 0.5 * (7.0 * t).cos();
                (cx + r * t.cos(), cy + r * t.sin())
            })
            .collect();
        region(&coords)
    }

    #[test]
    fn tree_covers_all_trapezoids() {
        let b = blob(40, 0.0, 0.0, 0.0);
        let tree = TrStarTree::build(&b, 3);
        assert!(tree.num_trapezoids() > 10);
        let root = tree.root_rect();
        for t in tree.trapezoids() {
            assert!(root.contains_rect(&t.mbr()));
        }
    }

    #[test]
    fn height_grows_logarithmically() {
        let small = TrStarTree::build(&blob(12, 0.0, 0.0, 0.0), 3);
        let large = TrStarTree::build(&blob(200, 0.0, 0.0, 0.0), 3);
        assert!(large.height() > small.height());
        // log3-ish bound: a 200-vertex blob has ≤ ~400 trapezoids; height
        // stays well under 14 even at M = 3 (min fill 1).
        assert!(large.height() <= 14, "height {}", large.height());
    }

    #[test]
    fn point_queries_match_region_membership() {
        let b = blob(60, 1.0, -2.0, 0.7);
        let tree = TrStarTree::build(&b, 3);
        let mbr = b.mbr().inflated(0.5);
        let mut counts = OpCounts::new();
        for i in 0..25 {
            for j in 0..25 {
                let p = Point::new(
                    mbr.xmin() + mbr.width() * i as f64 / 24.0,
                    mbr.ymin() + mbr.height() * j as f64 / 24.0,
                );
                // Skip points within a hair of the boundary: decomposition
                // cuts introduce rounding exactly there.
                let in_region = b.contains_point(p);
                let in_tree = tree.contains_point(p, &mut counts);
                if in_region != in_tree {
                    let near_boundary = b.edges().any(|e| e.dist_to_point(p) < 1e-9 * mbr.width());
                    assert!(near_boundary, "mismatch at {p:?} not near boundary");
                }
            }
        }
        assert!(counts.rect_rect > 0 && counts.trapezoid > 0);
    }

    #[test]
    fn tree_intersection_agrees_with_quadratic() {
        let cases = [
            (blob(30, 0.0, 0.0, 0.0), blob(30, 2.0, 1.0, 1.0), true),
            (blob(30, 0.0, 0.0, 0.0), blob(30, 20.0, 0.0, 1.0), false),
            // Containment: big blob vs tiny square inside.
            (
                blob(30, 0.0, 0.0, 0.0),
                region(&[(-0.3, -0.3), (0.3, -0.3), (0.3, 0.3), (-0.3, 0.3)]),
                true,
            ),
        ];
        for (i, (a, b, expect)) in cases.iter().enumerate() {
            let ta = TrStarTree::build(a, 3);
            let tb = TrStarTree::build(b, 3);
            let mut c1 = OpCounts::new();
            let mut c2 = OpCounts::new();
            assert_eq!(
                trees_intersect(&ta, &tb, &mut c1),
                *expect,
                "case {i} (tr*)"
            );
            assert_eq!(
                quadratic_intersects(a, b, &mut c2),
                *expect,
                "case {i} (quad)"
            );
        }
    }

    #[test]
    fn containment_needs_no_pip() {
        // Unlike edge-based algorithms, containment shows up as trapezoid
        // overlap directly.
        let big = blob(40, 0.0, 0.0, 0.0);
        let small = region(&[(-0.2, -0.2), (0.2, -0.2), (0.2, 0.2), (-0.2, 0.2)]);
        let tbig = TrStarTree::build(&big, 3);
        let tsmall = TrStarTree::build(&small, 3);
        let mut c = OpCounts::new();
        assert!(trees_intersect(&tbig, &tsmall, &mut c));
        assert_eq!(c.pip_performed, 0);
        assert_eq!(c.edge_line, 0);
    }

    #[test]
    fn disjoint_roots_cost_one_rect_test() {
        let a = TrStarTree::build(&blob(20, 0.0, 0.0, 0.0), 3);
        let b = TrStarTree::build(&blob(20, 100.0, 100.0, 0.0), 3);
        let mut c = OpCounts::new();
        assert!(!trees_intersect(&a, &b, &mut c));
        assert_eq!(c.rect_rect, 1);
        assert_eq!(c.trapezoid, 0);
    }

    #[test]
    fn store_builds_per_object_trees() {
        let rel = Relation::from_regions(vec![
            blob(20, 0.0, 0.0, 0.0),
            blob(40, 10.0, 0.0, 1.0),
            blob(60, 0.0, 10.0, 2.0),
        ]);
        let store = TrStarStore::build(&rel, 3);
        assert_eq!(store.len(), 3);
        assert!(store.avg_height() >= 1.0);
        assert!(store.avg_trapezoids() > 10.0);
        assert_eq!(store.max_entries(), 3);
    }

    #[test]
    fn node_capacity_is_respected() {
        let b = blob(100, 0.0, 0.0, 0.3);
        for m in [3usize, 4, 5] {
            let tree = TrStarTree::build(&b, m);
            for node in &tree.nodes {
                assert!(node.children.len() <= m, "node over capacity {m}");
            }
        }
    }

    #[test]
    fn donut_vs_hole_filler() {
        let outer = Polygon::new(
            [(0.0, 0.0), (10.0, 0.0), (10.0, 10.0), (0.0, 10.0)]
                .iter()
                .map(|&(x, y)| Point::new(x, y))
                .collect(),
        )
        .unwrap();
        let hole = Polygon::new(
            [(3.0, 3.0), (7.0, 3.0), (7.0, 7.0), (3.0, 7.0)]
                .iter()
                .map(|&(x, y)| Point::new(x, y))
                .collect(),
        )
        .unwrap();
        let donut = PolygonWithHoles::new(outer, vec![hole]);
        let inside_hole = region(&[(4.0, 4.0), (6.0, 4.0), (6.0, 6.0), (4.0, 6.0)]);
        let td = TrStarTree::build(&donut, 3);
        let ti = TrStarTree::build(&inside_hole, 3);
        let mut c = OpCounts::new();
        assert!(!trees_intersect(&td, &ti, &mut c));
        let poking = region(&[(4.0, 4.0), (9.0, 4.0), (9.0, 6.0), (4.0, 6.0)]);
        let tp = TrStarTree::build(&poking, 3);
        assert!(trees_intersect(&td, &tp, &mut c));
    }
}

//! The operation-counting cost model of §4.3.
//!
//! The paper compares exact-geometry algorithms by counting their
//! characteristic geometric operations and weighting them with times
//! measured on an HP720 workstation (Table 6). We count the identical
//! operations and apply the identical weights, so our Table 7 / Figure 16
//! comparisons are like-for-like with the paper.

/// Operation weights in units of 10⁻⁶ seconds (Table 6).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Weights {
    /// Edge intersection test.
    pub edge_intersection: f64,
    /// Edge vs auxiliary horizontal line test (point-in-polygon ray cast).
    pub edge_line: f64,
    /// Plane-sweep position test (y-ordering of an edge at the sweep line).
    pub position: f64,
    /// Edge vs rectangle test (search-space restriction).
    pub edge_rect: f64,
    /// Rectangle intersection test (TR*-tree directory).
    pub rect_rect: f64,
    /// Trapezoid intersection test (TR*-tree leaves).
    pub trapezoid: f64,
}

impl Default for Weights {
    /// The published Table 6 weights.
    fn default() -> Self {
        Weights {
            edge_intersection: 15.0,
            edge_line: 18.0,
            position: 36.0,
            edge_rect: 28.0,
            rect_rect: 28.0,
            trapezoid: 38.0,
        }
    }
}

/// Counters for the six weighted operations plus auxiliary statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OpCounts {
    pub edge_intersection: u64,
    pub edge_line: u64,
    pub position: u64,
    pub edge_rect: u64,
    pub rect_rect: u64,
    pub trapezoid: u64,
    /// Point-in-polygon tests actually performed (after the MBR pretest).
    pub pip_performed: u64,
    /// Point-in-polygon tests omitted thanks to the MBR pretest (§4: the
    /// pretest omits 75–93 % of them).
    pub pip_skipped: u64,
}

impl OpCounts {
    pub fn new() -> Self {
        OpCounts::default()
    }

    /// Weighted cost in **milliseconds** (the unit of Table 7).
    pub fn cost_ms(&self, w: &Weights) -> f64 {
        let micros = self.edge_intersection as f64 * w.edge_intersection
            + self.edge_line as f64 * w.edge_line
            + self.position as f64 * w.position
            + self.edge_rect as f64 * w.edge_rect
            + self.rect_rect as f64 * w.rect_rect
            + self.trapezoid as f64 * w.trapezoid;
        micros / 1000.0
    }

    /// Weighted cost in seconds.
    pub fn cost_secs(&self, w: &Weights) -> f64 {
        self.cost_ms(w) / 1000.0
    }

    /// Component-wise sum.
    pub fn merge(&mut self, other: &OpCounts) {
        self.edge_intersection += other.edge_intersection;
        self.edge_line += other.edge_line;
        self.position += other.position;
        self.edge_rect += other.edge_rect;
        self.rect_rect += other.rect_rect;
        self.trapezoid += other.trapezoid;
        self.pip_performed += other.pip_performed;
        self.pip_skipped += other.pip_skipped;
    }

    /// Total number of weighted operations.
    pub fn total_ops(&self) -> u64 {
        self.edge_intersection
            + self.edge_line
            + self.position
            + self.edge_rect
            + self.rect_rect
            + self.trapezoid
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_weights_match_table6() {
        let w = Weights::default();
        assert_eq!(w.edge_intersection, 15.0);
        assert_eq!(w.edge_line, 18.0);
        assert_eq!(w.position, 36.0);
        assert_eq!(w.edge_rect, 28.0);
        assert_eq!(w.rect_rect, 28.0);
        assert_eq!(w.trapezoid, 38.0);
    }

    #[test]
    fn cost_accumulates_in_milliseconds() {
        let mut c = OpCounts::new();
        c.edge_intersection = 1000; // 1000 × 15 µs = 15 ms
        c.trapezoid = 500; // 500 × 38 µs = 19 ms
        let w = Weights::default();
        assert!((c.cost_ms(&w) - 34.0).abs() < 1e-9);
        assert!((c.cost_secs(&w) - 0.034).abs() < 1e-12);
    }

    #[test]
    fn merge_sums_componentwise() {
        let mut a = OpCounts {
            edge_intersection: 1,
            position: 2,
            ..OpCounts::new()
        };
        let b = OpCounts {
            edge_intersection: 10,
            edge_line: 5,
            pip_performed: 3,
            pip_skipped: 7,
            ..OpCounts::new()
        };
        a.merge(&b);
        assert_eq!(a.edge_intersection, 11);
        assert_eq!(a.position, 2);
        assert_eq!(a.edge_line, 5);
        assert_eq!(a.pip_performed, 3);
        assert_eq!(a.pip_skipped, 7);
        assert_eq!(a.total_ops(), 11 + 2 + 5);
    }
}

//! Trapezoid decomposition (§4.2).
//!
//! Objects are decomposed once, at insertion time, into simple components;
//! the paper chooses trapezoids because "single trapezoids as well as sets
//! of trapezoids can accurately be approximated by MBRs". We use the
//! horizontal-band decomposition: the region is cut at every distinct
//! vertex y-coordinate, producing trapezoids with horizontal top/bottom
//! sides (triangles appear as degenerate trapezoids). Holes are handled by
//! the even–odd pairing of band crossings. See DESIGN.md §3 for the
//! relation to the minimum partition of [AA 83].

use msj_geom::{convex_intersect, Point, PolygonWithHoles, Rect};

/// A trapezoid with horizontal bottom (`y_lo`) and top (`y_hi`) sides.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Trapezoid {
    pub y_lo: f64,
    pub y_hi: f64,
    /// x-interval on the bottom side.
    pub x_lo: (f64, f64),
    /// x-interval on the top side.
    pub x_hi: (f64, f64),
}

impl Trapezoid {
    /// The MBR of the trapezoid.
    pub fn mbr(&self) -> Rect {
        Rect::from_bounds(
            self.x_lo.0.min(self.x_hi.0),
            self.y_lo,
            self.x_lo.1.max(self.x_hi.1),
            self.y_hi,
        )
    }

    /// Area of the trapezoid.
    pub fn area(&self) -> f64 {
        0.5 * ((self.x_lo.1 - self.x_lo.0) + (self.x_hi.1 - self.x_hi.0)) * (self.y_hi - self.y_lo)
    }

    /// The corner ring (CCW): bottom-left, bottom-right, top-right,
    /// top-left. Degenerate sides (triangles) repeat a corner, which the
    /// SAT intersection test tolerates.
    pub fn ring(&self) -> [Point; 4] {
        [
            Point::new(self.x_lo.0, self.y_lo),
            Point::new(self.x_lo.1, self.y_lo),
            Point::new(self.x_hi.1, self.y_hi),
            Point::new(self.x_hi.0, self.y_hi),
        ]
    }

    /// Closed trapezoid-trapezoid intersection — the *trapezoid
    /// intersection test* of Table 6 (weight 38). The caller counts it.
    pub fn intersects(&self, other: &Trapezoid) -> bool {
        convex_intersect(&self.ring(), &other.ring())
    }

    /// Whether `p` lies in the closed trapezoid.
    pub fn contains_point(&self, p: Point) -> bool {
        if p.y < self.y_lo || p.y > self.y_hi {
            return false;
        }
        let t = if self.y_hi > self.y_lo {
            (p.y - self.y_lo) / (self.y_hi - self.y_lo)
        } else {
            0.0
        };
        let xl = self.x_lo.0 + t * (self.x_hi.0 - self.x_lo.0);
        let xr = self.x_lo.1 + t * (self.x_hi.1 - self.x_lo.1);
        let tol = 1e-12 * (xr - xl).abs().max(1.0);
        xl - tol <= p.x && p.x <= xr + tol
    }
}

/// Decomposes a polygonal region into trapezoids by horizontal bands.
///
/// Every distinct vertex y becomes a cut line. Within a band no vertex
/// occurs strictly inside, so every non-horizontal edge either spans the
/// band or misses it; spanning edges sorted by x pair up even–odd into the
/// interior trapezoids. Trapezoids of consecutive bands bounded by the
/// *same* pair of edges are merged vertically (a region between two
/// straight edges across several bands is still one trapezoid), which
/// brings the output size close to the minimal partition of [AA 83].
pub fn decompose(region: &PolygonWithHoles) -> Vec<Trapezoid> {
    let mut ys: Vec<f64> = region
        .outer()
        .vertices()
        .iter()
        .chain(region.holes().iter().flat_map(|h| h.vertices().iter()))
        .map(|p| p.y)
        .collect();
    ys.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    ys.dedup_by(|a, b| (*a - *b).abs() < 1e-12);

    // Collect all edges once.
    let edges: Vec<(Point, Point)> = region.edges().map(|e| (e.a, e.b)).collect();

    let mut traps: Vec<Trapezoid> = Vec::with_capacity(2 * edges.len());
    // Open trapezoids from the previous band: (left edge id, right edge
    // id, index into `traps`). The trapezoid at that index still ends at
    // the previous band's top and can be extended.
    let mut open: Vec<(usize, usize, usize)> = Vec::new();
    let mut next_open: Vec<(usize, usize, usize)> = Vec::new();
    let mut spans: Vec<(f64, f64, f64, usize)> = Vec::new(); // x@y1, x@y2, x@mid, edge id

    for w in ys.windows(2) {
        let (y1, y2) = (w[0], w[1]);
        if y2 - y1 <= 1e-12 {
            continue;
        }
        let ymid = 0.5 * (y1 + y2);
        spans.clear();
        for (idx, &(a, b)) in edges.iter().enumerate() {
            let (elo, ehi) = (a.y.min(b.y), a.y.max(b.y));
            // Edge must span the band: elo <= y1 and ehi >= y2 (no vertex
            // lies strictly inside a band).
            if elo <= y1 + 1e-12 && ehi >= y2 - 1e-12 && ehi - elo > 1e-12 {
                let x_at = |y: f64| a.x + (y - a.y) / (b.y - a.y) * (b.x - a.x);
                spans.push((x_at(y1), x_at(y2), x_at(ymid), idx));
            }
        }
        spans.sort_by(|p, q| p.2.partial_cmp(&q.2).expect("finite"));
        // Even-odd pairing: spans 0-1, 2-3, ... bound interior trapezoids.
        next_open.clear();
        let mut i = 0;
        while i + 1 < spans.len() {
            let left = spans[i];
            let right = spans[i + 1];
            // Extend the previous band's trapezoid when the same edge
            // pair bounds it (the bounding lines are straight, so the
            // union stays a trapezoid).
            if let Some(&(_, _, t_idx)) =
                open.iter().find(|&&(l, r, _)| l == left.3 && r == right.3)
            {
                traps[t_idx].y_hi = y2;
                traps[t_idx].x_hi = (left.1, right.1);
                next_open.push((left.3, right.3, t_idx));
            } else {
                traps.push(Trapezoid {
                    y_lo: y1,
                    y_hi: y2,
                    x_lo: (left.0, right.0),
                    x_hi: (left.1, right.1),
                });
                next_open.push((left.3, right.3, traps.len() - 1));
            }
            i += 2;
        }
        std::mem::swap(&mut open, &mut next_open);
    }
    traps
}

#[cfg(test)]
mod tests {
    use super::*;
    use msj_geom::Polygon;

    fn region(coords: &[(f64, f64)]) -> PolygonWithHoles {
        Polygon::new(coords.iter().map(|&(x, y)| Point::new(x, y)).collect())
            .unwrap()
            .into()
    }

    fn total_area(traps: &[Trapezoid]) -> f64 {
        traps.iter().map(|t| t.area()).sum()
    }

    #[test]
    fn square_decomposes_into_itself() {
        let sq = region(&[(0.0, 0.0), (4.0, 0.0), (4.0, 4.0), (0.0, 4.0)]);
        let traps = decompose(&sq);
        assert_eq!(traps.len(), 1);
        assert!((total_area(&traps) - 16.0).abs() < 1e-9);
    }

    #[test]
    fn triangle_decomposes_with_correct_area() {
        let tri = region(&[(0.0, 0.0), (4.0, 0.0), (2.0, 3.0)]);
        let traps = decompose(&tri);
        assert!((total_area(&traps) - 6.0).abs() < 1e-9);
    }

    #[test]
    fn concave_polygon_area_is_preserved() {
        let c = region(&[
            (0.0, 0.0),
            (4.0, 0.0),
            (4.0, 1.0),
            (1.0, 1.0),
            (1.0, 3.0),
            (4.0, 3.0),
            (4.0, 4.0),
            (0.0, 4.0),
        ]);
        let traps = decompose(&c);
        assert!((total_area(&traps) - c.area()).abs() < 1e-9);
        // All trapezoid interiors are inside the region (sample centers).
        for t in &traps {
            let center = Point::new(
                0.25 * (t.x_lo.0 + t.x_lo.1 + t.x_hi.0 + t.x_hi.1),
                0.5 * (t.y_lo + t.y_hi),
            );
            assert!(c.contains_point(center), "{center:?} outside");
        }
    }

    #[test]
    fn region_with_hole_decomposes_around_it() {
        let outer = Polygon::new(
            [(0.0, 0.0), (6.0, 0.0), (6.0, 6.0), (0.0, 6.0)]
                .iter()
                .map(|&(x, y)| Point::new(x, y))
                .collect(),
        )
        .unwrap();
        let hole = Polygon::new(
            [(2.0, 2.0), (4.0, 2.0), (4.0, 4.0), (2.0, 4.0)]
                .iter()
                .map(|&(x, y)| Point::new(x, y))
                .collect(),
        )
        .unwrap();
        let donut = PolygonWithHoles::new(outer, vec![hole]);
        let traps = decompose(&donut);
        assert!((total_area(&traps) - donut.area()).abs() < 1e-9);
        // No trapezoid may cover the hole center.
        for t in &traps {
            assert!(!t.contains_point(Point::new(3.0, 3.0)) || t.area() == 0.0);
        }
    }

    #[test]
    fn trapezoid_count_is_linear_in_vertices() {
        // A zig-zag with many vertices.
        let mut coords = Vec::new();
        for i in 0..20 {
            coords.push((i as f64, if i % 2 == 0 { 0.0 } else { 0.5 }));
        }
        coords.push((19.0, 5.0));
        coords.push((0.0, 5.0));
        let z = region(&coords);
        let traps = decompose(&z);
        assert!((total_area(&traps) - z.area()).abs() < 1e-9);
        assert!(traps.len() <= 4 * z.num_vertices());
    }

    #[test]
    fn trapezoid_geometry_helpers() {
        let t = Trapezoid {
            y_lo: 0.0,
            y_hi: 2.0,
            x_lo: (0.0, 4.0),
            x_hi: (1.0, 3.0),
        };
        assert_eq!(t.mbr(), Rect::from_bounds(0.0, 0.0, 4.0, 2.0));
        assert!((t.area() - 6.0).abs() < 1e-12);
        assert!(t.contains_point(Point::new(2.0, 1.0)));
        assert!(t.contains_point(Point::new(0.5, 0.0)));
        assert!(!t.contains_point(Point::new(0.2, 1.9)));
        assert!(!t.contains_point(Point::new(2.0, 2.1)));
    }

    #[test]
    fn trapezoid_intersection_tests() {
        let a = Trapezoid {
            y_lo: 0.0,
            y_hi: 2.0,
            x_lo: (0.0, 2.0),
            x_hi: (0.0, 2.0),
        };
        let b = Trapezoid {
            y_lo: 1.0,
            y_hi: 3.0,
            x_lo: (1.0, 3.0),
            x_hi: (1.0, 3.0),
        };
        let c = Trapezoid {
            y_lo: 5.0,
            y_hi: 6.0,
            x_lo: (0.0, 1.0),
            x_hi: (0.0, 1.0),
        };
        assert!(a.intersects(&b));
        assert!(b.intersects(&a));
        assert!(!a.intersects(&c));
        // Touching along an edge counts (closed semantics).
        let d = Trapezoid {
            y_lo: 2.0,
            y_hi: 3.0,
            x_lo: (0.0, 2.0),
            x_hi: (0.0, 2.0),
        };
        assert!(a.intersects(&d));
        // Degenerate (triangle) trapezoid.
        let tri = Trapezoid {
            y_lo: 0.0,
            y_hi: 1.0,
            x_lo: (0.0, 2.0),
            x_hi: (1.0, 1.0),
        };
        assert!(tri.intersects(&a));
    }

    #[test]
    fn blob_decomposition_roundtrip_area() {
        // A star-shaped blob with 40 vertices.
        let coords: Vec<(f64, f64)> = (0..40)
            .map(|i| {
                let t = i as f64 / 40.0 * std::f64::consts::TAU;
                let r = 3.0 + 1.2 * (3.0 * t).sin() + 0.5 * (7.0 * t).cos();
                (r * t.cos(), r * t.sin())
            })
            .collect();
        let blob = region(&coords);
        let traps = decompose(&blob);
        assert!(
            (total_area(&traps) - blob.area()).abs() < 1e-6 * blob.area(),
            "area mismatch: {} vs {}",
            total_area(&traps),
            blob.area()
        );
    }
}

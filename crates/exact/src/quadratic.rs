//! The brute-force quadratic intersection test (§4, "a straightforward
//! approach"): test every edge of one region against every edge of the
//! other; fall back to the containment test when no edges cross.

use crate::containment::intersect_by_containment;
use crate::cost::OpCounts;
use msj_geom::PolygonWithHoles;

/// Closed-region intersection via the quadratic edge test.
///
/// Counts one *edge intersection test* (weight 15) per edge pair examined;
/// stops at the first intersecting pair.
pub fn quadratic_intersects(
    a: &PolygonWithHoles,
    b: &PolygonWithHoles,
    counts: &mut OpCounts,
) -> bool {
    for ea in a.edges() {
        for eb in b.edges() {
            counts.edge_intersection += 1;
            if ea.intersects(&eb) {
                return true;
            }
        }
    }
    intersect_by_containment(a, b, counts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use msj_geom::{Point, Polygon};

    fn region(coords: &[(f64, f64)]) -> PolygonWithHoles {
        Polygon::new(coords.iter().map(|&(x, y)| Point::new(x, y)).collect())
            .unwrap()
            .into()
    }

    fn sq(x: f64, y: f64, s: f64) -> PolygonWithHoles {
        region(&[(x, y), (x + s, y), (x + s, y + s), (x, y + s)])
    }

    #[test]
    fn overlapping_squares_intersect() {
        let mut c = OpCounts::new();
        assert!(quadratic_intersects(
            &sq(0.0, 0.0, 2.0),
            &sq(1.0, 1.0, 2.0),
            &mut c
        ));
        assert!(c.edge_intersection >= 1);
    }

    #[test]
    fn disjoint_squares_cost_full_quadratic() {
        let mut c = OpCounts::new();
        assert!(!quadratic_intersects(
            &sq(0.0, 0.0, 1.0),
            &sq(5.0, 5.0, 1.0),
            &mut c
        ));
        // All 4x4 edge pairs tested.
        assert_eq!(c.edge_intersection, 16);
    }

    #[test]
    fn containment_is_intersection() {
        let mut c = OpCounts::new();
        assert!(quadratic_intersects(
            &sq(0.0, 0.0, 10.0),
            &sq(4.0, 4.0, 1.0),
            &mut c
        ));
        assert!(c.pip_performed >= 1);
    }

    #[test]
    fn touching_edges_intersect() {
        let mut c = OpCounts::new();
        assert!(quadratic_intersects(
            &sq(0.0, 0.0, 2.0),
            &sq(2.0, 0.0, 2.0),
            &mut c
        ));
    }

    #[test]
    fn object_inside_hole_is_disjoint() {
        let outer = Polygon::new(
            [(0.0, 0.0), (10.0, 0.0), (10.0, 10.0), (0.0, 10.0)]
                .iter()
                .map(|&(x, y)| Point::new(x, y))
                .collect(),
        )
        .unwrap();
        let hole = Polygon::new(
            [(3.0, 3.0), (7.0, 3.0), (7.0, 7.0), (3.0, 7.0)]
                .iter()
                .map(|&(x, y)| Point::new(x, y))
                .collect(),
        )
        .unwrap();
        let donut = PolygonWithHoles::new(outer, vec![hole]);
        let inner = sq(4.0, 4.0, 2.0);
        let mut c = OpCounts::new();
        assert!(!quadratic_intersects(&donut, &inner, &mut c));
        // But a square poking out of the hole does intersect.
        let poking = sq(4.0, 4.0, 5.0);
        assert!(quadratic_intersects(&donut, &poking, &mut c));
    }

    #[test]
    fn early_exit_costs_less_than_full_scan() {
        // First edges already cross: far fewer than 16 tests.
        let a = sq(0.0, 0.0, 2.0);
        let b = sq(1.0, -1.0, 2.0); // crosses a's bottom edge
        let mut c = OpCounts::new();
        assert!(quadratic_intersects(&a, &b, &mut c));
        assert!(c.edge_intersection < 16);
    }
}

//! Exact region-vs-window tests for multi-step point and window queries
//! (§2: the window query is the other fundamental operation the spatial
//! query processor of [BHKS 93] serves; the paper's Figure 10 measures
//! both on the same storage organizations).

use crate::containment::point_in_region_counted;
use crate::cost::OpCounts;
use msj_geom::{Point, PolygonWithHoles, Rect};

/// Closed intersection test between a polygonal region and an
/// axis-parallel query window.
///
/// Counted operations: one *edge-rectangle test* (weight 28) per boundary
/// edge examined, plus point-in-region probes (edge-line tests) for the
/// containment cases.
pub fn region_intersects_rect(
    region: &PolygonWithHoles,
    window: &Rect,
    counts: &mut OpCounts,
) -> bool {
    // MBR pretest.
    counts.rect_rect += 1;
    if !region.mbr().intersects(window) {
        return false;
    }
    // Any boundary edge crossing the window proves intersection.
    for e in region.edges() {
        counts.edge_rect += 1;
        if e.intersects_rect(window) {
            return true;
        }
    }
    // No boundary contact: either the window is strictly inside the
    // region, or the region is strictly inside the window, or they are
    // disjoint (window inside a hole also lands here and correctly fails
    // the point probe).
    if region.mbr().contains_rect(window) {
        counts.pip_performed += 1;
        return point_in_region_counted(region, window.center(), counts);
    }
    counts.pip_skipped += 1;
    // Region inside window: its MBR would be contained.
    window.contains_rect(&region.mbr())
}

/// Counted point-in-region test for the exact step of a multi-step point
/// query.
pub fn region_contains_point(region: &PolygonWithHoles, p: Point, counts: &mut OpCounts) -> bool {
    counts.rect_rect += 1;
    if !region.mbr().contains_point(p) {
        return false;
    }
    // Boundary membership counts (closed semantics): probe the edges
    // first, then ray-cast.
    for e in region.edges() {
        counts.edge_line += 1;
        if e.contains_point(p) {
            return true;
        }
    }
    point_in_region_counted(region, p, counts)
}

/// Reference (uncounted) window predicate used by tests.
pub fn region_intersects_rect_reference(region: &PolygonWithHoles, window: &Rect) -> bool {
    if !region.mbr().intersects(window) {
        return false;
    }
    if region.edges().any(|e| e.intersects_rect(window)) {
        return true;
    }
    region.contains_point(window.center()) || window.contains_rect(&region.mbr())
}

/// A window as a degenerate region (for reuse of polygon-polygon paths in
/// tests).
pub fn rect_to_region(window: &Rect) -> PolygonWithHoles {
    msj_geom::Polygon::new(window.corners().to_vec())
        .expect("rect corners form a polygon")
        .into()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quadratic::quadratic_intersects;
    use msj_geom::Polygon;

    fn region(coords: &[(f64, f64)]) -> PolygonWithHoles {
        Polygon::new(coords.iter().map(|&(x, y)| Point::new(x, y)).collect())
            .unwrap()
            .into()
    }

    fn donut() -> PolygonWithHoles {
        let outer = Polygon::new(
            [(0.0, 0.0), (10.0, 0.0), (10.0, 10.0), (0.0, 10.0)]
                .iter()
                .map(|&(x, y)| Point::new(x, y))
                .collect(),
        )
        .unwrap();
        let hole = Polygon::new(
            [(3.0, 3.0), (7.0, 3.0), (7.0, 7.0), (3.0, 7.0)]
                .iter()
                .map(|&(x, y)| Point::new(x, y))
                .collect(),
        )
        .unwrap();
        PolygonWithHoles::new(outer, vec![hole])
    }

    #[test]
    fn window_cases() {
        let tri = region(&[(0.0, 0.0), (8.0, 0.0), (0.0, 8.0)]);
        let mut c = OpCounts::new();
        // Crossing the boundary.
        assert!(region_intersects_rect(
            &tri,
            &Rect::from_bounds(-1.0, -1.0, 1.0, 1.0),
            &mut c
        ));
        // Fully inside.
        assert!(region_intersects_rect(
            &tri,
            &Rect::from_bounds(1.0, 1.0, 2.0, 2.0),
            &mut c
        ));
        // Region inside a huge window.
        assert!(region_intersects_rect(
            &tri,
            &Rect::from_bounds(-10.0, -10.0, 20.0, 20.0),
            &mut c
        ));
        // MBR overlap but disjoint (beyond the hypotenuse).
        assert!(!region_intersects_rect(
            &tri,
            &Rect::from_bounds(6.0, 6.0, 7.0, 7.0),
            &mut c
        ));
        // Fully outside MBR.
        assert!(!region_intersects_rect(
            &tri,
            &Rect::from_bounds(20.0, 0.0, 21.0, 1.0),
            &mut c
        ));
        assert!(c.edge_rect > 0 && c.rect_rect > 0);
    }

    #[test]
    fn window_inside_hole_is_disjoint() {
        let d = donut();
        let mut c = OpCounts::new();
        assert!(!region_intersects_rect(
            &d,
            &Rect::from_bounds(4.0, 4.0, 6.0, 6.0),
            &mut c
        ));
        // Window bridging hole and ring intersects.
        assert!(region_intersects_rect(
            &d,
            &Rect::from_bounds(4.0, 4.0, 8.0, 6.0),
            &mut c
        ));
    }

    #[test]
    fn window_agrees_with_polygonized_quadratic() {
        // The window test must agree with treating the window as a
        // 4-vertex region and running the polygon-polygon test.
        let shapes = [
            region(&[(0.0, 0.0), (8.0, 0.0), (0.0, 8.0)]),
            donut(),
            region(&[
                (0.0, 0.0),
                (4.0, 1.0),
                (8.0, 0.0),
                (7.0, 5.0),
                (4.0, 3.0),
                (1.0, 5.0),
            ]),
        ];
        let windows = [
            Rect::from_bounds(-1.0, -1.0, 0.5, 0.5),
            Rect::from_bounds(2.0, 2.0, 3.0, 3.0),
            Rect::from_bounds(4.0, 4.0, 6.0, 6.0),
            Rect::from_bounds(-5.0, -5.0, 15.0, 15.0),
            Rect::from_bounds(7.5, 7.5, 9.0, 9.0),
            Rect::from_bounds(20.0, 20.0, 30.0, 30.0),
        ];
        for (si, s) in shapes.iter().enumerate() {
            for (wi, w) in windows.iter().enumerate() {
                let mut c1 = OpCounts::new();
                let mut c2 = OpCounts::new();
                let direct = region_intersects_rect(s, w, &mut c1);
                let viapoly = quadratic_intersects(s, &rect_to_region(w), &mut c2);
                assert_eq!(direct, viapoly, "shape {si} window {wi}");
            }
        }
    }

    #[test]
    fn point_test_counts_and_agrees() {
        let d = donut();
        let mut c = OpCounts::new();
        assert!(region_contains_point(&d, Point::new(1.0, 1.0), &mut c));
        assert!(!region_contains_point(&d, Point::new(5.0, 5.0), &mut c)); // hole
        assert!(region_contains_point(&d, Point::new(3.0, 5.0), &mut c)); // hole edge
        assert!(!region_contains_point(&d, Point::new(11.0, 5.0), &mut c));
        assert!(c.edge_line > 0);
        for probe in [
            Point::new(1.0, 1.0),
            Point::new(5.0, 5.0),
            Point::new(0.0, 0.0),
            Point::new(-1.0, 2.0),
        ] {
            let mut c = OpCounts::new();
            assert_eq!(
                region_contains_point(&d, probe, &mut c),
                d.contains_point(probe),
                "{probe:?}"
            );
        }
    }
}

//! Counted point-in-region tests and the containment fallback shared by
//! the quadratic and plane-sweep algorithms.
//!
//! When no pair of boundary edges intersects, the regions intersect iff
//! one contains the other. The paper accelerates the polygon-in-polygon
//! test with an *MBR pretest*: only if `MBR(b) ⊆ MBR(a)` can `a` contain
//! `b` (§4: the pretest omits 75–93 % of the point-in-polygon tests).

use crate::cost::OpCounts;
use msj_geom::{Point, Polygon, PolygonWithHoles};

/// Ray-casting point-in-ring test that counts one *edge-line intersection
/// test* (Table 6, weight 18) per polygon edge examined.
pub fn point_in_ring_counted(ring: &Polygon, p: Point, counts: &mut OpCounts) -> bool {
    let vertices = ring.vertices();
    let n = vertices.len();
    let mut inside = false;
    let mut j = n - 1;
    for i in 0..n {
        counts.edge_line += 1;
        let vi = vertices[i];
        let vj = vertices[j];
        if (vi.y > p.y) != (vj.y > p.y) {
            let x_cross = vj.x + (p.y - vj.y) / (vi.y - vj.y) * (vi.x - vj.x);
            if p.x < x_cross {
                inside = !inside;
            }
        }
        j = i;
    }
    inside
}

/// Counted closed point-in-region test (outer ring minus open hole
/// interiors). Assumes `p` is not exactly on the boundary — callers use it
/// for containment decisions after establishing that boundaries do not
/// cross, where a vertex of one region on the other's boundary would have
/// been reported as an edge intersection already.
pub fn point_in_region_counted(region: &PolygonWithHoles, p: Point, counts: &mut OpCounts) -> bool {
    if !point_in_ring_counted(region.outer(), p, counts) {
        return false;
    }
    for hole in region.holes() {
        if point_in_ring_counted(hole, p, counts) {
            return false;
        }
    }
    true
}

/// Containment fallback: given that no boundary edges of `a` and `b`
/// cross, decides whether one region contains (part of) the other.
///
/// Performs the MBR pretest before each point-in-polygon probe and tracks
/// performed/omitted probes in `counts`.
pub fn intersect_by_containment(
    a: &PolygonWithHoles,
    b: &PolygonWithHoles,
    counts: &mut OpCounts,
) -> bool {
    // a contains b? Only possible if MBR(a) covers MBR(b).
    if a.mbr().contains_rect(&b.mbr()) {
        counts.pip_performed += 1;
        if point_in_region_counted(a, b.outer().vertices()[0], counts) {
            return true;
        }
    } else {
        counts.pip_skipped += 1;
    }
    // b contains a?
    if b.mbr().contains_rect(&a.mbr()) {
        counts.pip_performed += 1;
        if point_in_region_counted(b, a.outer().vertices()[0], counts) {
            return true;
        }
    } else {
        counts.pip_skipped += 1;
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use msj_geom::Polygon;

    fn poly(coords: &[(f64, f64)]) -> Polygon {
        Polygon::new(coords.iter().map(|&(x, y)| Point::new(x, y)).collect()).unwrap()
    }

    fn region(coords: &[(f64, f64)]) -> PolygonWithHoles {
        poly(coords).into()
    }

    #[test]
    fn counted_ray_cast_matches_uncounted() {
        let p = poly(&[
            (0.0, 0.0),
            (4.0, 0.0),
            (4.0, 1.0),
            (1.0, 1.0),
            (1.0, 3.0),
            (4.0, 3.0),
            (4.0, 4.0),
            (0.0, 4.0),
        ]);
        let mut counts = OpCounts::new();
        for (x, y, expect) in [
            (0.5, 2.0, true),
            (2.5, 2.0, false),
            (2.5, 0.5, true),
            (5.0, 5.0, false),
        ] {
            let pt = Point::new(x, y);
            assert_eq!(point_in_ring_counted(&p, pt, &mut counts), expect, "{pt:?}");
            assert_eq!(p.contains_point_strict(pt), expect);
        }
        // One edge-line test per edge per probe.
        assert_eq!(counts.edge_line, 4 * p.len() as u64);
    }

    #[test]
    fn region_test_respects_holes() {
        let outer = poly(&[(0.0, 0.0), (10.0, 0.0), (10.0, 10.0), (0.0, 10.0)]);
        let hole = poly(&[(4.0, 4.0), (6.0, 4.0), (6.0, 6.0), (4.0, 6.0)]);
        let r = PolygonWithHoles::new(outer, vec![hole]);
        let mut counts = OpCounts::new();
        assert!(point_in_region_counted(
            &r,
            Point::new(1.0, 1.0),
            &mut counts
        ));
        assert!(!point_in_region_counted(
            &r,
            Point::new(5.0, 5.0),
            &mut counts
        ));
        assert!(counts.edge_line > 0);
    }

    #[test]
    fn containment_detects_nested_regions() {
        let big = region(&[(0.0, 0.0), (10.0, 0.0), (10.0, 10.0), (0.0, 10.0)]);
        let small = region(&[(2.0, 2.0), (3.0, 2.0), (3.0, 3.0), (2.0, 3.0)]);
        let mut counts = OpCounts::new();
        assert!(intersect_by_containment(&big, &small, &mut counts));
        assert!(intersect_by_containment(&small, &big, &mut counts));
        assert!(counts.pip_performed >= 1);
    }

    #[test]
    fn containment_rejects_disjoint_regions_cheaply() {
        let a = region(&[(0.0, 0.0), (1.0, 0.0), (1.0, 1.0), (0.0, 1.0)]);
        let b = region(&[(5.0, 5.0), (6.0, 5.0), (6.0, 6.0), (5.0, 6.0)]);
        let mut counts = OpCounts::new();
        assert!(!intersect_by_containment(&a, &b, &mut counts));
        // MBR pretest skips both probes.
        assert_eq!(counts.pip_performed, 0);
        assert_eq!(counts.pip_skipped, 2);
        assert_eq!(counts.edge_line, 0);
    }

    #[test]
    fn object_inside_hole_does_not_intersect() {
        let outer = poly(&[(0.0, 0.0), (10.0, 0.0), (10.0, 10.0), (0.0, 10.0)]);
        let hole = poly(&[(3.0, 3.0), (7.0, 3.0), (7.0, 7.0), (3.0, 7.0)]);
        let a = PolygonWithHoles::new(outer, vec![hole]);
        let b = region(&[(4.0, 4.0), (6.0, 4.0), (6.0, 6.0), (4.0, 6.0)]);
        let mut counts = OpCounts::new();
        assert!(!intersect_by_containment(&a, &b, &mut counts));
    }
}

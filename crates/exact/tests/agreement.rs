//! Cross-algorithm agreement: the quadratic test, the plane sweep (with
//! and without restriction) and the TR*-tree must implement the *same*
//! closed-region intersection predicate on arbitrary generated shapes.

use msj_datagen::{blob, BlobParams};
use msj_exact::{quadratic_intersects, sweep_intersects, trees_intersect, OpCounts, TrStarTree};
use msj_geom::{Point, PolygonWithHoles};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn blob_region(seed: u64, vertices: usize, cx: f64, cy: f64) -> PolygonWithHoles {
    let params = BlobParams {
        vertices,
        radius: 3.0,
        ..BlobParams::default()
    };
    let mut rng = StdRng::seed_from_u64(seed);
    blob(&mut rng, Point::new(cx, cy), &params).into()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(150))]

    #[test]
    fn all_exact_algorithms_agree(
        seed1 in 0u64..10_000,
        seed2 in 0u64..10_000,
        n1 in 6usize..80,
        n2 in 6usize..80,
        dx in -12.0f64..12.0,
        dy in -12.0f64..12.0,
    ) {
        let a = blob_region(seed1, n1, 0.0, 0.0);
        let b = blob_region(seed2, n2, dx, dy);

        let mut c = OpCounts::new();
        let quad = quadratic_intersects(&a, &b, &mut c);
        let sweep_r = sweep_intersects(&a, &b, true, &mut c);
        let sweep_u = sweep_intersects(&a, &b, false, &mut c);
        let ta = TrStarTree::build(&a, 3);
        let tb = TrStarTree::build(&b, 3);
        let tr = trees_intersect(&ta, &tb, &mut c);

        prop_assert_eq!(quad, sweep_r, "quadratic vs restricted sweep (seeds {} {})", seed1, seed2);
        prop_assert_eq!(quad, sweep_u, "quadratic vs unrestricted sweep (seeds {} {})", seed1, seed2);
        prop_assert_eq!(quad, tr, "quadratic vs TR* (seeds {} {})", seed1, seed2);
    }

    #[test]
    fn scaled_containment_agreement(
        seed in 0u64..10_000,
        n in 8usize..60,
        factor in 0.05f64..0.45,
    ) {
        // A shrunk copy inside the original: always an intersection
        // (containment), and the hard case for edge-based algorithms.
        let a = blob_region(seed, n, 0.0, 0.0);
        let centroid = a.outer().centroid();
        if !a.contains_point(centroid) {
            // Concave blob whose centroid is outside: skip (the shrunk
            // copy is not guaranteed to be contained).
            return Ok(());
        }
        let b = a.scaled_about(centroid, factor);
        let mut c = OpCounts::new();
        let quad = quadratic_intersects(&a, &b, &mut c);
        let sweep = sweep_intersects(&a, &b, true, &mut c);
        let ta = TrStarTree::build(&a, 3);
        let tb = TrStarTree::build(&b, 3);
        let tr = trees_intersect(&ta, &tb, &mut c);
        prop_assert_eq!(quad, sweep, "containment: quad vs sweep (seed {})", seed);
        prop_assert_eq!(quad, tr, "containment: quad vs TR* (seed {})", seed);
    }

    #[test]
    fn trstar_m_variants_agree(
        seed1 in 0u64..5_000,
        seed2 in 0u64..5_000,
        dx in -10.0f64..10.0,
    ) {
        let a = blob_region(seed1, 30, 0.0, 0.0);
        let b = blob_region(seed2, 30, dx, 1.0);
        let mut expected = None;
        for m in [3usize, 4, 5, 8] {
            let ta = TrStarTree::build(&a, m);
            let tb = TrStarTree::build(&b, m);
            let mut c = OpCounts::new();
            let r = trees_intersect(&ta, &tb, &mut c);
            match expected {
                None => expected = Some(r),
                Some(e) => prop_assert_eq!(e, r, "M={} disagrees (seeds {} {})", m, seed1, seed2),
            }
        }
    }

    #[test]
    fn far_apart_blobs_never_intersect(
        seed1 in 0u64..5_000,
        seed2 in 0u64..5_000,
    ) {
        // Blob radius is bounded by 4·elongation·r ≈ 20; distance 100
        // guarantees disjointness. All algorithms must say "no".
        let a = blob_region(seed1, 24, 0.0, 0.0);
        let b = blob_region(seed2, 24, 100.0, 100.0);
        let mut c = OpCounts::new();
        prop_assert!(!quadratic_intersects(&a, &b, &mut c));
        prop_assert!(!sweep_intersects(&a, &b, true, &mut c));
        let ta = TrStarTree::build(&a, 3);
        let tb = TrStarTree::build(&b, 3);
        prop_assert!(!trees_intersect(&ta, &tb, &mut c));
    }
}

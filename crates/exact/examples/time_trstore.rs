//! Preprocessing-cost probe: times TR*-tree construction for the BW-like
//! relation and reports decomposition statistics (compare the paper's
//! §4.2 discussion of preprocessing cost and its §4.3 height figures).
//!
//! ```text
//! cargo run -p msj-exact --release --example time_trstore
//! ```

use std::time::Instant;

fn main() {
    let bw = msj_datagen::bw_like(1);
    let t0 = Instant::now();
    let store = msj_exact::TrStarStore::build(&bw, 3);
    println!(
        "BW TrStarStore (M=3): {:?} for {} objects; avg trapezoids {:.0}, avg height {:.1} (paper: 7.6)",
        t0.elapsed(),
        store.len(),
        store.avg_trapezoids(),
        store.avg_height()
    );
}

//! Property-based tests for the geometry kernel invariants.

use msj_geom::{
    clip_convex, convex_contains_point, convex_hull, convex_intersect, convex_intersection_area,
    is_simple, min_area_rect, ring_area, Point, Polygon, Rect, Segment,
};
use proptest::prelude::*;

/// Strategy: a finite point in a bounded box.
fn point_strategy() -> impl Strategy<Value = Point> {
    (-100.0f64..100.0, -100.0f64..100.0).prop_map(|(x, y)| Point::new(x, y))
}

/// Strategy: a set of 3..40 points.
fn points_strategy() -> impl Strategy<Value = Vec<Point>> {
    proptest::collection::vec(point_strategy(), 3..40)
}

/// Strategy: a star-shaped (hence simple) polygon built from radii sorted
/// by angle around a center.
fn star_polygon_strategy() -> impl Strategy<Value = Polygon> {
    (
        proptest::collection::vec((0.2f64..10.0, 0.0f64..1.0), 3..30),
        point_strategy(),
    )
        .prop_filter_map("degenerate star", |(radii, center)| {
            let n = radii.len();
            let vertices: Vec<Point> = radii
                .iter()
                .enumerate()
                .map(|(i, &(r, jitter))| {
                    let angle = (i as f64 + 0.45 * jitter) / n as f64 * std::f64::consts::TAU;
                    center + Point::new(angle.cos(), angle.sin()) * r
                })
                .collect();
            Polygon::new(vertices).ok()
        })
}

proptest! {
    #[test]
    fn hull_contains_every_input_point(pts in points_strategy()) {
        let hull = convex_hull(&pts);
        for &p in &pts {
            prop_assert!(convex_contains_point(&hull, p));
        }
    }

    #[test]
    fn hull_is_convex(pts in points_strategy()) {
        let hull = convex_hull(&pts);
        if hull.len() >= 3 {
            let n = hull.len();
            for i in 0..n {
                let a = hull[i];
                let b = hull[(i + 1) % n];
                let c = hull[(i + 2) % n];
                prop_assert!(msj_geom::orient2d_raw(a, b, c) >= 0.0);
            }
        }
    }

    #[test]
    fn min_rect_covers_points_and_beats_aabb(pts in points_strategy()) {
        if let Some(r) = min_area_rect(&pts) {
            for &p in &pts {
                prop_assert!(r.contains_point(p));
            }
            let aabb = Rect::bounding(pts.iter().copied()).unwrap();
            prop_assert!(r.area() <= aabb.area() + 1e-6 * aabb.area().max(1.0));
        }
    }

    #[test]
    fn segment_intersection_is_symmetric(
        a in point_strategy(), b in point_strategy(),
        c in point_strategy(), d in point_strategy(),
    ) {
        let s1 = Segment::new(a, b);
        let s2 = Segment::new(c, d);
        prop_assert_eq!(s1.intersects(&s2), s2.intersects(&s1));
    }

    #[test]
    fn clip_area_bounded_by_operands(pts1 in points_strategy(), pts2 in points_strategy()) {
        let h1 = convex_hull(&pts1);
        let h2 = convex_hull(&pts2);
        if h1.len() >= 3 && h2.len() >= 3 {
            let ia = convex_intersection_area(&h1, &h2);
            prop_assert!(ia <= ring_area(&h1) + 1e-6);
            prop_assert!(ia <= ring_area(&h2) + 1e-6);
            prop_assert!(ia >= 0.0);
        }
    }

    #[test]
    fn positive_clip_area_implies_sat_intersection(
        pts1 in points_strategy(), pts2 in points_strategy(),
    ) {
        let h1 = convex_hull(&pts1);
        let h2 = convex_hull(&pts2);
        if h1.len() >= 3 && h2.len() >= 3 {
            let ia = convex_intersection_area(&h1, &h2);
            if ia > 1e-9 {
                prop_assert!(convex_intersect(&h1, &h2));
            }
        }
    }

    #[test]
    fn sat_agrees_with_mbr_prefilter(pts1 in points_strategy(), pts2 in points_strategy()) {
        let h1 = convex_hull(&pts1);
        let h2 = convex_hull(&pts2);
        if h1.len() >= 3 && h2.len() >= 3 && convex_intersect(&h1, &h2) {
            // Convex intersection implies MBR intersection.
            let m1 = Rect::bounding(h1.iter().copied()).unwrap();
            let m2 = Rect::bounding(h2.iter().copied()).unwrap();
            prop_assert!(m1.intersects(&m2));
        }
    }

    #[test]
    fn star_polygons_are_simple(poly in star_polygon_strategy()) {
        prop_assert!(is_simple(&poly));
    }

    #[test]
    fn polygon_area_invariant_under_rigid_motion(
        poly in star_polygon_strategy(),
        dx in -50.0f64..50.0, dy in -50.0f64..50.0,
        angle in 0.0f64..std::f64::consts::TAU,
    ) {
        let a0 = poly.area();
        let moved = poly.translated(Point::new(dx, dy)).rotated_about(poly.centroid(), angle);
        prop_assert!((moved.area() - a0).abs() <= 1e-6 * a0.max(1.0));
    }

    #[test]
    fn polygon_centroid_inside_mbr(poly in star_polygon_strategy()) {
        // The area centroid always lies in the MBR (not necessarily in a
        // concave polygon itself).
        prop_assert!(poly.mbr().contains_point(poly.centroid()));
    }

    #[test]
    fn contains_point_respects_mbr(poly in star_polygon_strategy(), p in point_strategy()) {
        if poly.contains_point(p) {
            prop_assert!(poly.mbr().contains_point(p));
        }
    }

    #[test]
    fn clipping_by_own_hull_is_identity_area(pts in points_strategy()) {
        let h = convex_hull(&pts);
        if h.len() >= 3 {
            let clipped = clip_convex(&h, &h);
            prop_assert!((ring_area(&clipped) - ring_area(&h)).abs() <= 1e-6 * ring_area(&h).max(1.0));
        }
    }

    #[test]
    fn rect_intersection_consistent_with_area(
        a in point_strategy(), b in point_strategy(),
        c in point_strategy(), d in point_strategy(),
    ) {
        let r1 = Rect::new(a, b);
        let r2 = Rect::new(c, d);
        prop_assert_eq!(r1.intersects(&r2), r1.intersection(&r2).is_some());
        if r1.intersection_area(&r2) > 0.0 {
            prop_assert!(r1.intersects(&r2));
        }
        // Union contains both.
        let u = r1.union(&r2);
        prop_assert!(u.contains_rect(&r1));
        prop_assert!(u.contains_rect(&r2));
    }

    #[test]
    fn segment_rect_test_matches_sampled_points(
        a in point_strategy(), b in point_strategy(),
        c in point_strategy(), d in point_strategy(),
    ) {
        let seg = Segment::new(a, b);
        let rect = Rect::new(c, d);
        // If any sampled point of the segment is in the rect, the test must
        // report an intersection.
        for i in 0..=16 {
            let p = a.lerp(b, i as f64 / 16.0);
            if rect.contains_point(p) {
                prop_assert!(seg.intersects_rect(&rect));
                break;
            }
        }
    }
}

/// Strategy: an f64 that is usually finite but sometimes NaN, ±inf,
/// zero, or subnormal — the adversarial coordinate pool for the
/// branchless-`intersects` agreement test.
fn weird_f64_strategy() -> impl Strategy<Value = f64> {
    prop_oneof![
        -50.0f64..50.0,
        -2.0f64..2.0,
        Just(f64::NAN),
        Just(f64::INFINITY),
        Just(f64::NEG_INFINITY),
        Just(0.0f64),
        Just(-0.0f64),
        Just(f64::MIN_POSITIVE / 2.0),
    ]
}

proptest! {
    /// The branchless `Rect::intersects` (non-short-circuiting `&`) must
    /// agree with the old short-circuit `&&` chain on every input the
    /// type can represent — NaN-sentinel, infinite, degenerate and
    /// inverted-then-normalized bounds included. This is the scalar seed
    /// the wide kernels are checked against.
    #[test]
    fn branchless_intersects_agrees_with_short_circuit_form(
        ax0 in weird_f64_strategy(), ay0 in weird_f64_strategy(),
        ax1 in weird_f64_strategy(), ay1 in weird_f64_strategy(),
        bx0 in weird_f64_strategy(), by0 in weird_f64_strategy(),
        bx1 in weird_f64_strategy(), by1 in weird_f64_strategy(),
    ) {
        // `from_bounds` accepts inverted corners (it normalizes them) and
        // passes NaN through, so the constructed rects cover the
        // NaN-sentinel and degenerate cases the filter columns contain.
        let a = Rect::from_bounds(ax0, ay0, ax1, ay1);
        let b = Rect::from_bounds(bx0, by0, bx1, by1);
        let reference = a.xmin() <= b.xmax()
            && b.xmin() <= a.xmax()
            && a.ymin() <= b.ymax()
            && b.ymin() <= a.ymax();
        prop_assert_eq!(a.intersects(&b), reference);
        prop_assert_eq!(b.intersects(&a), reference);
        // A NaN-poisoned rect intersects nothing, itself included.
        if ax0.is_nan() && ax1.is_nan() {
            prop_assert!(!a.intersects(&a));
        }
    }
}

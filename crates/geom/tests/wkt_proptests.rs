//! Property tests for the WKT parser/serializer: roundtrip fidelity on
//! arbitrary generated polygons and no-panic robustness on junk input.

use msj_geom::{parse_polygon, parse_regions, to_wkt, Point, Polygon, PolygonWithHoles};
use proptest::prelude::*;

/// Star-shaped polygon from radii (always valid and simple).
fn star_polygon_strategy() -> impl Strategy<Value = Polygon> {
    (
        proptest::collection::vec(0.2f64..10.0, 3..24),
        -1000.0f64..1000.0,
        -1000.0f64..1000.0,
    )
        .prop_filter_map("degenerate", |(radii, cx, cy)| {
            let n = radii.len();
            Polygon::new(
                radii
                    .iter()
                    .enumerate()
                    .map(|(i, &r)| {
                        let t = i as f64 / n as f64 * std::f64::consts::TAU;
                        Point::new(cx + r * t.cos(), cy + r * t.sin())
                    })
                    .collect(),
            )
            .ok()
        })
}

proptest! {
    #[test]
    fn roundtrip_preserves_vertices_exactly(poly in star_polygon_strategy()) {
        let region: PolygonWithHoles = poly.into();
        let wkt = to_wkt(&region);
        let back = parse_polygon(&wkt).expect("roundtrip parse");
        // `{}` float formatting is lossless for f64, and orientation
        // normalization is idempotent, so vertices match bit for bit.
        prop_assert_eq!(region.outer().vertices(), back.outer().vertices());
    }

    #[test]
    fn parser_never_panics_on_junk(s in "\\PC{0,120}") {
        let _ = parse_polygon(&s);
        let _ = parse_regions(&s);
    }

    #[test]
    fn parser_never_panics_on_wkt_like_junk(
        body in proptest::collection::vec((-1e6f64..1e6, -1e6f64..1e6), 0..8),
        garbage in "[(), ]{0,16}",
    ) {
        let coords: Vec<String> = body.iter().map(|(x, y)| format!("{x} {y}")).collect();
        let s = format!("POLYGON (({})){garbage}", coords.join(", "));
        let _ = parse_polygon(&s);
    }

    #[test]
    fn multipolygon_roundtrip_counts(polys in proptest::collection::vec(star_polygon_strategy(), 1..5)) {
        let parts: Vec<String> = polys
            .iter()
            .map(|p| {
                let w = to_wkt(&PolygonWithHoles::simple(p.clone()));
                w.strip_prefix("POLYGON ").unwrap().to_string()
            })
            .collect();
        let multi = format!("MULTIPOLYGON ({})", parts.join(", "));
        let regions = parse_regions(&multi).expect("multipolygon parse");
        prop_assert_eq!(regions.len(), polys.len());
        for (r, p) in regions.iter().zip(&polys) {
            prop_assert!((r.area() - p.area()).abs() <= 1e-9 * p.area().max(1.0));
        }
    }
}

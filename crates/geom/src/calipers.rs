//! Minimum-area oriented bounding rectangles ("rotating calipers").
//!
//! The paper's RMBR (rotated minimum bounding rectangle, §3.2) is the
//! minimum-area rectangle over all orientations; it is classically found by
//! checking only orientations aligned with convex hull edges.

use crate::hull::convex_hull;
use crate::point::Point;
use crate::rect::Rect;

/// An oriented rectangle: center, edge direction (unit vector), and half
/// extents along the direction and its perpendicular.
///
/// Five parameters, matching the paper's RMBR storage cost (the MBR's four
/// plus one rotation angle).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OrientedRect {
    pub center: Point,
    /// Unit direction of the rectangle's "width" axis.
    pub axis: Point,
    /// Half extent along `axis`.
    pub half_w: f64,
    /// Half extent along `axis.perp()`.
    pub half_h: f64,
}

impl OrientedRect {
    /// Rectangle area.
    #[inline]
    pub fn area(&self) -> f64 {
        4.0 * self.half_w * self.half_h
    }

    /// The rotation angle of the width axis in radians, in `(-π/2, π/2]`.
    pub fn angle(&self) -> f64 {
        let mut a = self.axis.y.atan2(self.axis.x);
        if a <= -std::f64::consts::FRAC_PI_2 {
            a += std::f64::consts::PI;
        } else if a > std::f64::consts::FRAC_PI_2 {
            a -= std::f64::consts::PI;
        }
        a
    }

    /// The four corners in counter-clockwise order.
    pub fn corners(&self) -> [Point; 4] {
        let u = self.axis * self.half_w;
        let v = self.axis.perp() * self.half_h;
        [
            self.center - u - v,
            self.center + u - v,
            self.center + u + v,
            self.center - u + v,
        ]
    }

    /// Whether `p` lies in the closed rectangle.
    pub fn contains_point(&self, p: Point) -> bool {
        let d = p - self.center;
        let tol = 1e-9 * (self.half_w + self.half_h + 1.0);
        d.dot(self.axis).abs() <= self.half_w + tol
            && d.dot(self.axis.perp()).abs() <= self.half_h + tol
    }

    /// The axis-parallel MBR of this oriented rectangle.
    pub fn mbr(&self) -> Rect {
        Rect::bounding(self.corners()).expect("four corners")
    }
}

/// Minimum-area oriented bounding rectangle of a point set.
///
/// Evaluates, for every convex hull edge, the rectangle aligned with that
/// edge (one of them is optimal by the classic rotating-calipers argument).
/// `O(h²)` over the hull size `h`, which is tiny compared to the object
/// sizes the paper studies.
///
/// Returns `None` for point sets whose hull is degenerate (all points
/// collinear or coincident).
pub fn min_area_rect(points: &[Point]) -> Option<OrientedRect> {
    let hull = convex_hull(points);
    if hull.len() < 3 {
        return None;
    }
    let mut best: Option<OrientedRect> = None;
    let n = hull.len();
    for i in 0..n {
        let dir = (hull[(i + 1) % n] - hull[i]).normalized()?;
        let perp = dir.perp();
        let mut umin = f64::INFINITY;
        let mut umax = f64::NEG_INFINITY;
        let mut vmin = f64::INFINITY;
        let mut vmax = f64::NEG_INFINITY;
        for &p in &hull {
            let u = p.dot(dir);
            let v = p.dot(perp);
            umin = umin.min(u);
            umax = umax.max(u);
            vmin = vmin.min(v);
            vmax = vmax.max(v);
        }
        let half_w = 0.5 * (umax - umin);
        let half_h = 0.5 * (vmax - vmin);
        let center = dir * (0.5 * (umin + umax)) + perp * (0.5 * (vmin + vmax));
        let cand = OrientedRect {
            center,
            axis: dir,
            half_w,
            half_h,
        };
        if best.is_none_or(|b| cand.area() < b.area()) {
            best = Some(cand);
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn axis_aligned_square_is_its_own_min_rect() {
        let pts = [
            Point::new(0.0, 0.0),
            Point::new(2.0, 0.0),
            Point::new(2.0, 2.0),
            Point::new(0.0, 2.0),
        ];
        let r = min_area_rect(&pts).unwrap();
        assert!((r.area() - 4.0).abs() < 1e-12);
        assert!((r.center.x - 1.0).abs() < 1e-12);
        assert!((r.center.y - 1.0).abs() < 1e-12);
    }

    #[test]
    fn rotated_rectangle_recovers_true_area() {
        // A 4x1 rectangle rotated by 30 degrees: its axis-aligned MBR is
        // much bigger, the oriented rect must find area 4.
        let base = [
            Point::new(0.0, 0.0),
            Point::new(4.0, 0.0),
            Point::new(4.0, 1.0),
            Point::new(0.0, 1.0),
        ];
        let ang = 30f64.to_radians();
        let pts: Vec<Point> = base.iter().map(|p| p.rotated(ang)).collect();
        let r = min_area_rect(&pts).unwrap();
        assert!((r.area() - 4.0).abs() < 1e-9);
        let aabb = Rect::bounding(pts.iter().copied()).unwrap();
        assert!(aabb.area() > r.area() * 1.5);
    }

    #[test]
    fn min_rect_contains_all_points() {
        let pts: Vec<Point> = (0..50)
            .map(|i| {
                let t = i as f64 * 0.7;
                Point::new(t.sin() * 3.0 + 0.1 * t, t.cos() * 1.5)
            })
            .collect();
        let r = min_area_rect(&pts).unwrap();
        for &p in &pts {
            assert!(r.contains_point(p), "{p:?} outside oriented rect");
        }
        // And it is never larger than the AABB.
        let aabb = Rect::bounding(pts.iter().copied()).unwrap();
        assert!(r.area() <= aabb.area() + 1e-9);
    }

    #[test]
    fn degenerate_input_returns_none() {
        assert!(min_area_rect(&[Point::new(0.0, 0.0), Point::new(1.0, 1.0)]).is_none());
        let collinear = [
            Point::new(0.0, 0.0),
            Point::new(1.0, 1.0),
            Point::new(2.0, 2.0),
        ];
        assert!(min_area_rect(&collinear).is_none());
    }

    #[test]
    fn angle_is_normalized() {
        let pts = [
            Point::new(0.0, 0.0),
            Point::new(2.0, 0.0),
            Point::new(2.0, 1.0),
            Point::new(0.0, 1.0),
        ];
        let r = min_area_rect(&pts).unwrap();
        let a = r.angle();
        assert!(a > -std::f64::consts::FRAC_PI_2 - 1e-12);
        assert!(a <= std::f64::consts::FRAC_PI_2 + 1e-12);
    }

    #[test]
    fn corners_form_ccw_rectangle() {
        let pts = [
            Point::new(0.0, 0.0),
            Point::new(3.0, 1.0),
            Point::new(2.0, 4.0),
            Point::new(-1.0, 2.0),
        ];
        let r = min_area_rect(&pts).unwrap();
        let c = r.corners();
        let area2: f64 = (0..4).map(|i| c[i].cross(c[(i + 1) % 4])).sum();
        assert!(area2 > 0.0);
        assert!((0.5 * area2 - r.area()).abs() < 1e-9);
    }
}

//! Two-dimensional points and the vector operations used throughout the
//! geometry kernel.

use std::ops::{Add, Div, Mul, Neg, Sub};

/// A point (or free vector) in the two-dimensional data space.
///
/// Coordinates are `f64`. The kernel treats points and vectors uniformly;
/// operators are defined so that `b - a` is the vector from `a` to `b`.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
#[repr(C)]
pub struct Point {
    pub x: f64,
    pub y: f64,
}

impl Point {
    /// Creates a point from its coordinates.
    #[inline]
    pub const fn new(x: f64, y: f64) -> Self {
        Point { x, y }
    }

    /// The origin `(0, 0)`.
    pub const ORIGIN: Point = Point { x: 0.0, y: 0.0 };

    /// Two-dimensional cross product (`self.x * other.y - self.y * other.x`).
    ///
    /// Positive when `other` lies counter-clockwise of `self`.
    #[inline]
    pub fn cross(self, other: Point) -> f64 {
        self.x * other.y - self.y * other.x
    }

    /// Dot product.
    #[inline]
    pub fn dot(self, other: Point) -> f64 {
        self.x * other.x + self.y * other.y
    }

    /// Euclidean norm of the vector.
    #[inline]
    pub fn norm(self) -> f64 {
        self.x.hypot(self.y)
    }

    /// Squared Euclidean norm (avoids the square root).
    #[inline]
    pub fn norm_sq(self) -> f64 {
        self.x * self.x + self.y * self.y
    }

    /// Euclidean distance to `other`.
    #[inline]
    pub fn dist(self, other: Point) -> f64 {
        (self - other).norm()
    }

    /// Squared Euclidean distance to `other`.
    #[inline]
    pub fn dist_sq(self, other: Point) -> f64 {
        (self - other).norm_sq()
    }

    /// The vector rotated by 90° counter-clockwise.
    #[inline]
    pub fn perp(self) -> Point {
        Point::new(-self.y, self.x)
    }

    /// The vector rotated by `angle` radians counter-clockwise about the origin.
    #[inline]
    pub fn rotated(self, angle: f64) -> Point {
        let (s, c) = angle.sin_cos();
        Point::new(c * self.x - s * self.y, s * self.x + c * self.y)
    }

    /// The unit vector in the same direction; `None` for the zero vector.
    pub fn normalized(self) -> Option<Point> {
        let n = self.norm();
        (n > 0.0).then(|| self / n)
    }

    /// Component-wise minimum (lower-left corner of the pair).
    #[inline]
    pub fn min(self, other: Point) -> Point {
        Point::new(self.x.min(other.x), self.y.min(other.y))
    }

    /// Component-wise maximum (upper-right corner of the pair).
    #[inline]
    pub fn max(self, other: Point) -> Point {
        Point::new(self.x.max(other.x), self.y.max(other.y))
    }

    /// Midpoint of the segment `self..other`.
    #[inline]
    pub fn midpoint(self, other: Point) -> Point {
        Point::new(0.5 * (self.x + other.x), 0.5 * (self.y + other.y))
    }

    /// Linear interpolation: `self + t * (other - self)`.
    #[inline]
    pub fn lerp(self, other: Point, t: f64) -> Point {
        Point::new(
            self.x + t * (other.x - self.x),
            self.y + t * (other.y - self.y),
        )
    }

    /// Whether both coordinates are finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.x.is_finite() && self.y.is_finite()
    }
}

impl Add for Point {
    type Output = Point;
    #[inline]
    fn add(self, rhs: Point) -> Point {
        Point::new(self.x + rhs.x, self.y + rhs.y)
    }
}

impl Sub for Point {
    type Output = Point;
    #[inline]
    fn sub(self, rhs: Point) -> Point {
        Point::new(self.x - rhs.x, self.y - rhs.y)
    }
}

impl Mul<f64> for Point {
    type Output = Point;
    #[inline]
    fn mul(self, rhs: f64) -> Point {
        Point::new(self.x * rhs, self.y * rhs)
    }
}

impl Mul<Point> for f64 {
    type Output = Point;
    #[inline]
    fn mul(self, rhs: Point) -> Point {
        rhs * self
    }
}

impl Div<f64> for Point {
    type Output = Point;
    #[inline]
    fn div(self, rhs: f64) -> Point {
        Point::new(self.x / rhs, self.y / rhs)
    }
}

impl Neg for Point {
    type Output = Point;
    #[inline]
    fn neg(self) -> Point {
        Point::new(-self.x, -self.y)
    }
}

impl From<(f64, f64)> for Point {
    #[inline]
    fn from((x, y): (f64, f64)) -> Self {
        Point::new(x, y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vector_arithmetic() {
        let a = Point::new(1.0, 2.0);
        let b = Point::new(3.0, -1.0);
        assert_eq!(a + b, Point::new(4.0, 1.0));
        assert_eq!(b - a, Point::new(2.0, -3.0));
        assert_eq!(a * 2.0, Point::new(2.0, 4.0));
        assert_eq!(2.0 * a, a * 2.0);
        assert_eq!(a / 2.0, Point::new(0.5, 1.0));
        assert_eq!(-a, Point::new(-1.0, -2.0));
    }

    #[test]
    fn cross_sign_follows_orientation() {
        let e1 = Point::new(1.0, 0.0);
        let e2 = Point::new(0.0, 1.0);
        assert!(e1.cross(e2) > 0.0);
        assert!(e2.cross(e1) < 0.0);
        assert_eq!(e1.cross(e1), 0.0);
    }

    #[test]
    fn dot_and_norms() {
        let a = Point::new(3.0, 4.0);
        assert_eq!(a.dot(a), 25.0);
        assert_eq!(a.norm(), 5.0);
        assert_eq!(a.norm_sq(), 25.0);
        assert_eq!(Point::ORIGIN.dist(a), 5.0);
        assert_eq!(Point::ORIGIN.dist_sq(a), 25.0);
    }

    #[test]
    fn perp_is_ccw_quarter_turn() {
        let a = Point::new(2.0, 1.0);
        let p = a.perp();
        assert_eq!(a.dot(p), 0.0);
        assert!(a.cross(p) > 0.0);
    }

    #[test]
    fn rotation_by_right_angle() {
        let a = Point::new(1.0, 0.0);
        let r = a.rotated(std::f64::consts::FRAC_PI_2);
        assert!((r.x - 0.0).abs() < 1e-12);
        assert!((r.y - 1.0).abs() < 1e-12);
    }

    #[test]
    fn normalized_zero_vector_is_none() {
        assert!(Point::ORIGIN.normalized().is_none());
        let u = Point::new(0.0, 2.0).normalized().unwrap();
        assert!((u.norm() - 1.0).abs() < 1e-15);
    }

    #[test]
    fn lerp_endpoints_and_midpoint() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(2.0, 4.0);
        assert_eq!(a.lerp(b, 0.0), a);
        assert_eq!(a.lerp(b, 1.0), b);
        assert_eq!(a.lerp(b, 0.5), a.midpoint(b));
    }

    #[test]
    fn component_min_max() {
        let a = Point::new(1.0, 5.0);
        let b = Point::new(3.0, 2.0);
        assert_eq!(a.min(b), Point::new(1.0, 2.0));
        assert_eq!(a.max(b), Point::new(3.0, 5.0));
    }
}

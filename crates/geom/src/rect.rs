//! Axis-parallel rectangles — the minimum bounding rectangle (MBR) used as
//! the geometric key of the spatial access method and as the cheapest
//! conservative approximation.

use crate::point::Point;

/// An axis-parallel (rectilinear) rectangle, stored as its lower-left and
/// upper-right corners.
///
/// `Rect` is the MBR of the paper: four parameters, closed region semantics
/// (boundary points are contained). An empty rectangle cannot be
/// constructed through the public API; degenerate (zero-extent) rectangles
/// are allowed because points and horizontal/vertical segments have such
/// MBRs.
#[derive(Debug, Clone, Copy, PartialEq)]
#[repr(C)]
pub struct Rect {
    lo: Point,
    hi: Point,
}

impl Rect {
    /// Creates a rectangle from two opposite corners (in any order).
    #[inline]
    pub fn new(a: Point, b: Point) -> Self {
        Rect {
            lo: a.min(b),
            hi: a.max(b),
        }
    }

    /// Creates a rectangle from coordinate bounds.
    #[inline]
    pub fn from_bounds(xmin: f64, ymin: f64, xmax: f64, ymax: f64) -> Self {
        Rect::new(Point::new(xmin, ymin), Point::new(xmax, ymax))
    }

    /// The MBR of a non-empty point set; `None` for an empty iterator.
    pub fn bounding<I: IntoIterator<Item = Point>>(points: I) -> Option<Self> {
        let mut it = points.into_iter();
        let first = it.next()?;
        let mut lo = first;
        let mut hi = first;
        for p in it {
            lo = lo.min(p);
            hi = hi.max(p);
        }
        Some(Rect { lo, hi })
    }

    /// The smallest rectangle covering a non-empty set of rectangles;
    /// `None` for an empty iterator. This is the *workspace* rectangle of
    /// grid-based structures (partitioning, rasterization).
    pub fn bounding_rects<I: IntoIterator<Item = Rect>>(rects: I) -> Option<Self> {
        rects.into_iter().reduce(|a, b| a.union(&b))
    }

    /// Lower-left corner.
    #[inline]
    pub fn lo(&self) -> Point {
        self.lo
    }

    /// Upper-right corner.
    #[inline]
    pub fn hi(&self) -> Point {
        self.hi
    }

    #[inline]
    pub fn xmin(&self) -> f64 {
        self.lo.x
    }

    #[inline]
    pub fn ymin(&self) -> f64 {
        self.lo.y
    }

    #[inline]
    pub fn xmax(&self) -> f64 {
        self.hi.x
    }

    #[inline]
    pub fn ymax(&self) -> f64 {
        self.hi.y
    }

    /// Extent along the x axis.
    #[inline]
    pub fn width(&self) -> f64 {
        self.hi.x - self.lo.x
    }

    /// Extent along the y axis.
    #[inline]
    pub fn height(&self) -> f64 {
        self.hi.y - self.lo.y
    }

    /// Area (`width * height`). This is the paper's "area extension" of the
    /// MBR itself.
    #[inline]
    pub fn area(&self) -> f64 {
        self.width() * self.height()
    }

    /// Half the perimeter, the *margin* used by the R*-tree split heuristic.
    #[inline]
    pub fn margin(&self) -> f64 {
        self.width() + self.height()
    }

    /// Center point.
    #[inline]
    pub fn center(&self) -> Point {
        self.lo.midpoint(self.hi)
    }

    /// The four corners in counter-clockwise order starting at the
    /// lower-left.
    pub fn corners(&self) -> [Point; 4] {
        [
            self.lo,
            Point::new(self.hi.x, self.lo.y),
            self.hi,
            Point::new(self.lo.x, self.hi.y),
        ]
    }

    /// Closed-region intersection test (shared boundary counts).
    ///
    /// This is the fundamental *rectangle intersection test* counted by the
    /// exact-geometry cost model (Table 6, weight 28).
    ///
    /// Branchless on purpose: all four comparisons are evaluated and
    /// combined with non-short-circuiting `&`, so the compiled form is
    /// four compares and three ANDs with no data-dependent branches —
    /// the scalar seed the wide kernels in [`crate::kernels`] are
    /// checked against. Each `<=` is `false` on NaN operands, so a
    /// NaN-sentinel rectangle intersects nothing in either form.
    #[inline]
    pub fn intersects(&self, other: &Rect) -> bool {
        (self.lo.x <= other.hi.x)
            & (other.lo.x <= self.hi.x)
            & (self.lo.y <= other.hi.y)
            & (other.lo.y <= self.hi.y)
    }

    /// Whether `p` lies in the closed rectangle (the *point-in-MBR test*).
    #[inline]
    pub fn contains_point(&self, p: Point) -> bool {
        self.lo.x <= p.x && p.x <= self.hi.x && self.lo.y <= p.y && p.y <= self.hi.y
    }

    /// Whether `other` is fully contained (closed semantics).
    #[inline]
    pub fn contains_rect(&self, other: &Rect) -> bool {
        self.lo.x <= other.lo.x
            && self.lo.y <= other.lo.y
            && other.hi.x <= self.hi.x
            && other.hi.y <= self.hi.y
    }

    /// The intersection rectangle, or `None` when disjoint.
    ///
    /// Used by the plane-sweep algorithm to *restrict the search space* to
    /// the MBR intersection of the two polygons (paper §4.1).
    pub fn intersection(&self, other: &Rect) -> Option<Rect> {
        if !self.intersects(other) {
            return None;
        }
        Some(Rect {
            lo: self.lo.max(other.lo),
            hi: self.hi.min(other.hi),
        })
    }

    /// The smallest rectangle covering both operands.
    #[inline]
    pub fn union(&self, other: &Rect) -> Rect {
        Rect {
            lo: self.lo.min(other.lo),
            hi: self.hi.max(other.hi),
        }
    }

    /// Area of the intersection with `other` (0 when disjoint).
    pub fn intersection_area(&self, other: &Rect) -> f64 {
        let w = (self.hi.x.min(other.hi.x) - self.lo.x.max(other.lo.x)).max(0.0);
        let h = (self.hi.y.min(other.hi.y) - self.lo.y.max(other.lo.y)).max(0.0);
        w * h
    }

    /// By how much the area grows when `other` is merged in
    /// (R*-tree *area enlargement*).
    #[inline]
    pub fn enlargement(&self, other: &Rect) -> f64 {
        self.union(other).area() - self.area()
    }

    /// Rectangle grown by `d` on every side.
    pub fn inflated(&self, d: f64) -> Rect {
        Rect::new(
            Point::new(self.lo.x - d, self.lo.y - d),
            Point::new(self.hi.x + d, self.hi.y + d),
        )
    }

    /// Rectangle translated by the vector `v`.
    pub fn translated(&self, v: Point) -> Rect {
        Rect {
            lo: self.lo + v,
            hi: self.hi + v,
        }
    }

    /// Minimum distance from `p` to the closed rectangle (0 when inside).
    pub fn dist_to_point(&self, p: Point) -> f64 {
        let dx = (self.lo.x - p.x).max(0.0).max(p.x - self.hi.x);
        let dy = (self.lo.y - p.y).max(0.0).max(p.y - self.hi.y);
        dx.hypot(dy)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(x0: f64, y0: f64, x1: f64, y1: f64) -> Rect {
        Rect::from_bounds(x0, y0, x1, y1)
    }

    #[test]
    fn construction_normalizes_corners() {
        let a = Rect::new(Point::new(3.0, 4.0), Point::new(1.0, 2.0));
        assert_eq!(a, r(1.0, 2.0, 3.0, 4.0));
        assert_eq!(a.width(), 2.0);
        assert_eq!(a.height(), 2.0);
        assert_eq!(a.area(), 4.0);
        assert_eq!(a.margin(), 4.0);
        assert_eq!(a.center(), Point::new(2.0, 3.0));
    }

    #[test]
    fn bounding_of_points() {
        let pts = [
            Point::new(1.0, 5.0),
            Point::new(-2.0, 0.5),
            Point::new(4.0, 2.0),
        ];
        let b = Rect::bounding(pts).unwrap();
        assert_eq!(b, r(-2.0, 0.5, 4.0, 5.0));
        assert!(Rect::bounding(std::iter::empty()).is_none());
    }

    #[test]
    fn intersection_cases() {
        let a = r(0.0, 0.0, 2.0, 2.0);
        assert!(a.intersects(&r(1.0, 1.0, 3.0, 3.0)));
        // Shared edge counts as intersecting (closed semantics).
        assert!(a.intersects(&r(2.0, 0.0, 3.0, 1.0)));
        // Shared corner counts too.
        assert!(a.intersects(&r(2.0, 2.0, 3.0, 3.0)));
        assert!(!a.intersects(&r(2.1, 0.0, 3.0, 1.0)));
        assert_eq!(
            a.intersection(&r(1.0, -1.0, 3.0, 1.0)),
            Some(r(1.0, 0.0, 2.0, 1.0))
        );
        assert_eq!(a.intersection(&r(5.0, 5.0, 6.0, 6.0)), None);
        assert_eq!(a.intersection_area(&r(1.0, 1.0, 3.0, 3.0)), 1.0);
        assert_eq!(a.intersection_area(&r(5.0, 5.0, 6.0, 6.0)), 0.0);
    }

    #[test]
    fn containment() {
        let a = r(0.0, 0.0, 4.0, 4.0);
        assert!(a.contains_rect(&r(1.0, 1.0, 2.0, 2.0)));
        assert!(a.contains_rect(&a));
        assert!(!a.contains_rect(&r(1.0, 1.0, 5.0, 2.0)));
        assert!(a.contains_point(Point::new(0.0, 0.0)));
        assert!(a.contains_point(Point::new(4.0, 4.0)));
        assert!(!a.contains_point(Point::new(4.0001, 1.0)));
    }

    #[test]
    fn union_and_enlargement() {
        let a = r(0.0, 0.0, 1.0, 1.0);
        let b = r(2.0, 2.0, 3.0, 3.0);
        assert_eq!(a.union(&b), r(0.0, 0.0, 3.0, 3.0));
        assert_eq!(a.enlargement(&b), 9.0 - 1.0);
        assert_eq!(a.enlargement(&r(0.2, 0.2, 0.8, 0.8)), 0.0);
    }

    #[test]
    fn point_distance() {
        let a = r(0.0, 0.0, 2.0, 2.0);
        assert_eq!(a.dist_to_point(Point::new(1.0, 1.0)), 0.0);
        assert_eq!(a.dist_to_point(Point::new(5.0, 1.0)), 3.0);
        assert_eq!(a.dist_to_point(Point::new(5.0, 6.0)), 5.0);
    }

    #[test]
    fn degenerate_rect_is_usable() {
        let p = Point::new(1.0, 1.0);
        let a = Rect::new(p, p);
        assert_eq!(a.area(), 0.0);
        assert!(a.contains_point(p));
        assert!(a.intersects(&r(0.0, 0.0, 2.0, 2.0)));
    }
}

//! Simple polygons and polygons with holes — the extended spatial objects
//! the paper's join operates on (§2.1).

use crate::point::Point;
use crate::rect::Rect;
use crate::segment::Segment;

/// Errors raised when constructing a polygon from a vertex sequence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PolygonError {
    /// Fewer than three vertices.
    TooFewVertices,
    /// A vertex has a NaN or infinite coordinate.
    NonFiniteVertex,
    /// The vertex sequence has (numerically) zero area.
    ZeroArea,
}

impl std::fmt::Display for PolygonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PolygonError::TooFewVertices => write!(f, "polygon needs at least 3 vertices"),
            PolygonError::NonFiniteVertex => write!(f, "polygon vertex is not finite"),
            PolygonError::ZeroArea => write!(f, "polygon has zero area"),
        }
    }
}

impl std::error::Error for PolygonError {}

/// A simple polygon given by its boundary vertex sequence (no implicit
/// closing vertex: the edge from the last to the first vertex is implied).
///
/// The constructor normalizes orientation to counter-clockwise, so
/// [`Polygon::signed_area`] is always positive for constructed polygons.
/// Simplicity (non-self-intersection) is *not* enforced here because the
/// check is quadratic; use [`crate::validate::is_simple`] where needed.
#[derive(Debug, Clone, PartialEq)]
pub struct Polygon {
    vertices: Vec<Point>,
    mbr: Rect,
}

impl Polygon {
    /// Builds a polygon, normalizing the vertex order to counter-clockwise.
    pub fn new(mut vertices: Vec<Point>) -> Result<Self, PolygonError> {
        if vertices.len() < 3 {
            return Err(PolygonError::TooFewVertices);
        }
        if vertices.iter().any(|p| !p.is_finite()) {
            return Err(PolygonError::NonFiniteVertex);
        }
        let area2 = shoelace_sum(&vertices);
        if area2 == 0.0 {
            return Err(PolygonError::ZeroArea);
        }
        if area2 < 0.0 {
            vertices.reverse();
        }
        let mbr = Rect::bounding(vertices.iter().copied()).expect("non-empty");
        Ok(Polygon { vertices, mbr })
    }

    /// The boundary vertices in counter-clockwise order.
    #[inline]
    pub fn vertices(&self) -> &[Point] {
        &self.vertices
    }

    /// Number of vertices (equals the number of edges).
    #[inline]
    pub fn len(&self) -> usize {
        self.vertices.len()
    }

    /// Always false: constructed polygons have ≥ 3 vertices.
    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The precomputed minimum bounding rectangle.
    #[inline]
    pub fn mbr(&self) -> Rect {
        self.mbr
    }

    /// Iterator over the boundary edges, including the closing edge.
    pub fn edges(&self) -> impl Iterator<Item = Segment> + '_ {
        let n = self.vertices.len();
        (0..n).map(move |i| Segment::new(self.vertices[i], self.vertices[(i + 1) % n]))
    }

    /// Signed area (positive — vertices are stored counter-clockwise).
    pub fn signed_area(&self) -> f64 {
        0.5 * shoelace_sum(&self.vertices)
    }

    /// Absolute enclosed area.
    #[inline]
    pub fn area(&self) -> f64 {
        self.signed_area().abs()
    }

    /// Boundary length.
    pub fn perimeter(&self) -> f64 {
        self.edges().map(|e| e.len()).sum()
    }

    /// Area centroid.
    pub fn centroid(&self) -> Point {
        let mut cx = 0.0;
        let mut cy = 0.0;
        let mut a2 = 0.0;
        for e in self.edges() {
            let w = e.shoelace();
            cx += (e.a.x + e.b.x) * w;
            cy += (e.a.y + e.b.y) * w;
            a2 += w;
        }
        if a2 == 0.0 {
            return self.mbr.center();
        }
        Point::new(cx / (3.0 * a2), cy / (3.0 * a2))
    }

    /// Whether `p` lies in the closed polygon region (boundary included).
    ///
    /// Even–odd crossing test with an explicit boundary pre-check, so the
    /// result is deterministic for points on edges and vertices.
    pub fn contains_point(&self, p: Point) -> bool {
        if !self.mbr.contains_point(p) {
            return false;
        }
        if self.edges().any(|e| e.contains_point(p)) {
            return true;
        }
        point_in_ring_interior(&self.vertices, p)
    }

    /// Whether `p` lies strictly inside (boundary excluded).
    pub fn contains_point_strict(&self, p: Point) -> bool {
        if !self.mbr.contains_point(p) {
            return false;
        }
        if self.edges().any(|e| e.contains_point(p)) {
            return false;
        }
        point_in_ring_interior(&self.vertices, p)
    }

    /// Polygon translated by `v`.
    pub fn translated(&self, v: Point) -> Polygon {
        Polygon {
            vertices: self.vertices.iter().map(|&p| p + v).collect(),
            mbr: self.mbr.translated(v),
        }
    }

    /// Polygon rotated by `angle` radians counter-clockwise about `c`.
    pub fn rotated_about(&self, c: Point, angle: f64) -> Polygon {
        let vertices: Vec<Point> = self
            .vertices
            .iter()
            .map(|&p| c + (p - c).rotated(angle))
            .collect();
        let mbr = Rect::bounding(vertices.iter().copied()).expect("non-empty");
        Polygon { vertices, mbr }
    }

    /// Polygon scaled by `factor` about `c`.
    pub fn scaled_about(&self, c: Point, factor: f64) -> Polygon {
        let vertices: Vec<Point> = self
            .vertices
            .iter()
            .map(|&p| c + (p - c) * factor)
            .collect();
        let mbr = Rect::bounding(vertices.iter().copied()).expect("non-empty");
        Polygon { vertices, mbr }
    }
}

/// Twice the signed area of a vertex ring.
fn shoelace_sum(vertices: &[Point]) -> f64 {
    let n = vertices.len();
    let mut s = 0.0;
    for i in 0..n {
        s += vertices[i].cross(vertices[(i + 1) % n]);
    }
    s
}

/// Even–odd crossing test for a point strictly against a ring's interior.
/// Assumes the boundary case has been handled by the caller.
fn point_in_ring_interior(vertices: &[Point], p: Point) -> bool {
    let n = vertices.len();
    let mut inside = false;
    let mut j = n - 1;
    for i in 0..n {
        let vi = vertices[i];
        let vj = vertices[j];
        if (vi.y > p.y) != (vj.y > p.y) {
            let x_cross = vj.x + (p.y - vj.y) / (vi.y - vj.y) * (vi.x - vj.x);
            if p.x < x_cross {
                inside = !inside;
            }
        }
        j = i;
    }
    inside
}

/// A polygon with an arbitrary number of holes cut out of it (§2.1: "the
/// holes might represent areas such as lakes").
///
/// The closed region is the closed outer polygon minus the *open interiors*
/// of the holes — points on a hole's boundary still belong to the region.
#[derive(Debug, Clone, PartialEq)]
pub struct PolygonWithHoles {
    outer: Polygon,
    holes: Vec<Polygon>,
}

impl PolygonWithHoles {
    /// Builds the region. Callers are responsible for holes lying inside
    /// the outer ring and being pairwise disjoint (the data generator
    /// guarantees this; the validator can check it).
    pub fn new(outer: Polygon, holes: Vec<Polygon>) -> Self {
        PolygonWithHoles { outer, holes }
    }

    /// A hole-free region.
    pub fn simple(outer: Polygon) -> Self {
        PolygonWithHoles {
            outer,
            holes: Vec::new(),
        }
    }

    #[inline]
    pub fn outer(&self) -> &Polygon {
        &self.outer
    }

    #[inline]
    pub fn holes(&self) -> &[Polygon] {
        &self.holes
    }

    /// The MBR (determined by the outer ring alone).
    #[inline]
    pub fn mbr(&self) -> Rect {
        self.outer.mbr()
    }

    /// Total number of vertices across all rings — the paper's object
    /// complexity measure `m`.
    pub fn num_vertices(&self) -> usize {
        self.outer.len() + self.holes.iter().map(|h| h.len()).sum::<usize>()
    }

    /// Region area: outer area minus hole areas.
    pub fn area(&self) -> f64 {
        self.outer.area() - self.holes.iter().map(|h| h.area()).sum::<f64>()
    }

    /// All boundary edges (outer ring followed by hole rings).
    pub fn edges(&self) -> impl Iterator<Item = Segment> + '_ {
        self.outer
            .edges()
            .chain(self.holes.iter().flat_map(|h| h.edges()))
    }

    /// Closed-region membership: inside the outer ring and not strictly
    /// inside any hole.
    pub fn contains_point(&self, p: Point) -> bool {
        self.outer.contains_point(p) && !self.holes.iter().any(|h| h.contains_point_strict(p))
    }

    /// Region translated by `v`.
    pub fn translated(&self, v: Point) -> PolygonWithHoles {
        PolygonWithHoles {
            outer: self.outer.translated(v),
            holes: self.holes.iter().map(|h| h.translated(v)).collect(),
        }
    }

    /// Region rotated by `angle` about `c`.
    pub fn rotated_about(&self, c: Point, angle: f64) -> PolygonWithHoles {
        PolygonWithHoles {
            outer: self.outer.rotated_about(c, angle),
            holes: self
                .holes
                .iter()
                .map(|h| h.rotated_about(c, angle))
                .collect(),
        }
    }

    /// Region scaled by `factor` about `c`.
    pub fn scaled_about(&self, c: Point, factor: f64) -> PolygonWithHoles {
        PolygonWithHoles {
            outer: self.outer.scaled_about(c, factor),
            holes: self
                .holes
                .iter()
                .map(|h| h.scaled_about(c, factor))
                .collect(),
        }
    }
}

impl From<Polygon> for PolygonWithHoles {
    fn from(outer: Polygon) -> Self {
        PolygonWithHoles::simple(outer)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn square() -> Polygon {
        Polygon::new(vec![
            Point::new(0.0, 0.0),
            Point::new(2.0, 0.0),
            Point::new(2.0, 2.0),
            Point::new(0.0, 2.0),
        ])
        .unwrap()
    }

    #[test]
    fn construction_errors() {
        assert_eq!(
            Polygon::new(vec![Point::new(0.0, 0.0), Point::new(1.0, 0.0)]),
            Err(PolygonError::TooFewVertices)
        );
        assert_eq!(
            Polygon::new(vec![
                Point::new(0.0, 0.0),
                Point::new(1.0, f64::NAN),
                Point::new(1.0, 1.0)
            ]),
            Err(PolygonError::NonFiniteVertex)
        );
        assert_eq!(
            Polygon::new(vec![
                Point::new(0.0, 0.0),
                Point::new(1.0, 0.0),
                Point::new(2.0, 0.0)
            ]),
            Err(PolygonError::ZeroArea)
        );
    }

    #[test]
    fn orientation_is_normalized() {
        // Clockwise input gets reversed.
        let p = Polygon::new(vec![
            Point::new(0.0, 0.0),
            Point::new(0.0, 2.0),
            Point::new(2.0, 2.0),
            Point::new(2.0, 0.0),
        ])
        .unwrap();
        assert!(p.signed_area() > 0.0);
        assert_eq!(p.area(), 4.0);
    }

    #[test]
    fn area_perimeter_centroid_of_square() {
        let p = square();
        assert_eq!(p.area(), 4.0);
        assert_eq!(p.perimeter(), 8.0);
        let c = p.centroid();
        assert!((c.x - 1.0).abs() < 1e-12 && (c.y - 1.0).abs() < 1e-12);
        assert_eq!(p.mbr(), Rect::from_bounds(0.0, 0.0, 2.0, 2.0));
    }

    #[test]
    fn point_containment_closed_semantics() {
        let p = square();
        assert!(p.contains_point(Point::new(1.0, 1.0)));
        assert!(p.contains_point(Point::new(0.0, 0.0))); // vertex
        assert!(p.contains_point(Point::new(1.0, 0.0))); // edge
        assert!(!p.contains_point(Point::new(3.0, 1.0)));
        assert!(!p.contains_point(Point::new(-0.001, 1.0)));
        assert!(p.contains_point_strict(Point::new(1.0, 1.0)));
        assert!(!p.contains_point_strict(Point::new(1.0, 0.0)));
    }

    #[test]
    fn concave_containment() {
        // A "C" shape: the notch must be outside.
        let p = Polygon::new(vec![
            Point::new(0.0, 0.0),
            Point::new(4.0, 0.0),
            Point::new(4.0, 1.0),
            Point::new(1.0, 1.0),
            Point::new(1.0, 3.0),
            Point::new(4.0, 3.0),
            Point::new(4.0, 4.0),
            Point::new(0.0, 4.0),
        ])
        .unwrap();
        assert!(p.contains_point(Point::new(0.5, 2.0)));
        assert!(!p.contains_point(Point::new(2.5, 2.0))); // in the notch
        assert!(p.contains_point(Point::new(2.5, 0.5)));
    }

    #[test]
    fn edge_count_matches_vertex_count() {
        let p = square();
        assert_eq!(p.edges().count(), 4);
        assert_eq!(p.len(), 4);
    }

    #[test]
    fn transforms_preserve_area() {
        let p = square();
        let t = p.translated(Point::new(5.0, -3.0));
        assert!((t.area() - 4.0).abs() < 1e-12);
        assert_eq!(t.mbr(), Rect::from_bounds(5.0, -3.0, 7.0, -1.0));
        let r = p.rotated_about(p.centroid(), 0.7);
        assert!((r.area() - 4.0).abs() < 1e-9);
        let s = p.scaled_about(p.centroid(), 2.0);
        assert!((s.area() - 16.0).abs() < 1e-9);
    }

    #[test]
    fn holes_reduce_area_and_containment() {
        let outer = square();
        let hole = Polygon::new(vec![
            Point::new(0.5, 0.5),
            Point::new(1.5, 0.5),
            Point::new(1.5, 1.5),
            Point::new(0.5, 1.5),
        ])
        .unwrap();
        let region = PolygonWithHoles::new(outer, vec![hole]);
        assert_eq!(region.area(), 3.0);
        assert_eq!(region.num_vertices(), 8);
        assert!(!region.contains_point(Point::new(1.0, 1.0))); // in the hole
        assert!(region.contains_point(Point::new(0.25, 0.25)));
        assert!(region.contains_point(Point::new(0.5, 1.0))); // on hole boundary
        assert!(region.contains_point(Point::new(0.0, 0.0)));
        assert_eq!(region.edges().count(), 8);
    }

    #[test]
    fn simple_region_from_polygon() {
        let region: PolygonWithHoles = square().into();
        assert_eq!(region.area(), 4.0);
        assert!(region.holes().is_empty());
    }
}

//! The spatial object and spatial relation model (§2.2).
//!
//! A spatial relation is a collection of spatial objects; for the
//! intersection join only the geometric attribute matters, so an object is
//! an identifier plus a polygonal region.

use crate::polygon::PolygonWithHoles;
use crate::rect::Rect;

/// Identifier of a spatial object within its relation.
pub type ObjectId = u32;

/// A spatial object: identifier plus polygonal region (possibly with
/// holes). The MBR comes precomputed from the region.
#[derive(Debug, Clone)]
pub struct SpatialObject {
    pub id: ObjectId,
    pub region: PolygonWithHoles,
}

impl SpatialObject {
    pub fn new(id: ObjectId, region: PolygonWithHoles) -> Self {
        SpatialObject { id, region }
    }

    /// The object's minimum bounding rectangle.
    #[inline]
    pub fn mbr(&self) -> Rect {
        self.region.mbr()
    }

    /// Number of vertices — the complexity measure `m` of the paper.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.region.num_vertices()
    }

    /// Region area.
    #[inline]
    pub fn area(&self) -> f64 {
        self.region.area()
    }
}

/// A spatial relation: a vector of spatial objects indexed by their id.
#[derive(Debug, Clone, Default)]
pub struct Relation {
    objects: Vec<SpatialObject>,
}

impl Relation {
    pub fn new(objects: Vec<SpatialObject>) -> Self {
        Relation { objects }
    }

    /// Builds a relation from regions, assigning sequential ids.
    pub fn from_regions<I: IntoIterator<Item = PolygonWithHoles>>(regions: I) -> Self {
        Relation {
            objects: regions
                .into_iter()
                .enumerate()
                .map(|(i, r)| SpatialObject::new(i as ObjectId, r))
                .collect(),
        }
    }

    #[inline]
    pub fn len(&self) -> usize {
        self.objects.len()
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.objects.is_empty()
    }

    /// Object lookup by id (`None` when out of range).
    #[inline]
    pub fn get(&self, id: ObjectId) -> Option<&SpatialObject> {
        self.objects.get(id as usize)
    }

    /// Object lookup by id; panics when out of range.
    #[inline]
    pub fn object(&self, id: ObjectId) -> &SpatialObject {
        &self.objects[id as usize]
    }

    pub fn iter(&self) -> impl Iterator<Item = &SpatialObject> {
        self.objects.iter()
    }

    /// Vertex-count statistics `(mean, min, max)` — the `m∅`, `mmin`,
    /// `mmax` columns of the paper's Figure 2.
    pub fn vertex_stats(&self) -> (f64, usize, usize) {
        let mut sum = 0usize;
        let mut min = usize::MAX;
        let mut max = 0usize;
        for o in &self.objects {
            let m = o.num_vertices();
            sum += m;
            min = min.min(m);
            max = max.max(m);
        }
        if self.objects.is_empty() {
            (0.0, 0, 0)
        } else {
            (sum as f64 / self.objects.len() as f64, min, max)
        }
    }

    /// The MBR of the whole relation (the data space extent actually used).
    pub fn bounding_rect(&self) -> Option<Rect> {
        let mut it = self.objects.iter();
        let first = it.next()?.mbr();
        Some(it.fold(first, |acc, o| acc.union(&o.mbr())))
    }

    /// Sum of all object areas (used by generation strategy B).
    pub fn total_area(&self) -> f64 {
        self.objects.iter().map(|o| o.area()).sum()
    }
}

impl std::ops::Index<ObjectId> for Relation {
    type Output = SpatialObject;
    fn index(&self, id: ObjectId) -> &SpatialObject {
        &self.objects[id as usize]
    }
}

/// A relation either borrowed for the duration of one scoped execution or
/// co-owned behind [`Arc`](std::sync::Arc) for resident, shareable state.
///
/// Every prepared component (candidate sources, exact processors, query
/// state) stores its relations through this handle, so the same code path
/// serves both the classic borrow-based API
/// (`RelHandle::from(&relation)`, lifetime `'a`) and the resident engine
/// (`RelHandle::from(arc)`, lifetime `'static` — the shape an owned
/// `PreparedJoin` needs to be cached and shared across threads).
#[derive(Debug, Clone)]
pub enum RelHandle<'a> {
    /// Borrowed for a scoped execution.
    Borrowed(&'a Relation),
    /// Co-owned, resident state (the engine's registered datasets).
    Shared(std::sync::Arc<Relation>),
}

impl std::ops::Deref for RelHandle<'_> {
    type Target = Relation;

    #[inline]
    fn deref(&self) -> &Relation {
        match self {
            RelHandle::Borrowed(r) => r,
            RelHandle::Shared(r) => r,
        }
    }
}

impl<'a> From<&'a Relation> for RelHandle<'a> {
    fn from(relation: &'a Relation) -> Self {
        RelHandle::Borrowed(relation)
    }
}

impl From<std::sync::Arc<Relation>> for RelHandle<'static> {
    fn from(relation: std::sync::Arc<Relation>) -> Self {
        RelHandle::Shared(relation)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::point::Point;
    use crate::polygon::Polygon;

    fn sq(x: f64, y: f64, s: f64) -> PolygonWithHoles {
        Polygon::new(vec![
            Point::new(x, y),
            Point::new(x + s, y),
            Point::new(x + s, y + s),
            Point::new(x, y + s),
        ])
        .unwrap()
        .into()
    }

    #[test]
    fn relation_from_regions_assigns_ids() {
        let rel = Relation::from_regions(vec![sq(0.0, 0.0, 1.0), sq(2.0, 0.0, 2.0)]);
        assert_eq!(rel.len(), 2);
        assert_eq!(rel.object(0).id, 0);
        assert_eq!(rel.object(1).id, 1);
        assert_eq!(rel[1].area(), 4.0);
        assert!(rel.get(2).is_none());
    }

    #[test]
    fn vertex_stats_and_bounds() {
        let rel = Relation::from_regions(vec![sq(0.0, 0.0, 1.0), sq(2.0, 0.0, 2.0)]);
        let (mean, min, max) = rel.vertex_stats();
        assert_eq!(mean, 4.0);
        assert_eq!((min, max), (4, 4));
        assert_eq!(
            rel.bounding_rect().unwrap(),
            Rect::from_bounds(0.0, 0.0, 4.0, 2.0)
        );
        assert_eq!(rel.total_area(), 5.0);
    }

    #[test]
    fn empty_relation() {
        let rel = Relation::default();
        assert!(rel.is_empty());
        assert!(rel.bounding_rect().is_none());
        assert_eq!(rel.vertex_stats(), (0.0, 0, 0));
    }
}

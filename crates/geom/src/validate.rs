//! Structural validation of polygons and regions.
//!
//! The join algorithms assume simple (non-self-intersecting) rings and
//! well-nested holes. Validation is quadratic and intended for tests,
//! data-generator assertions and debug builds — not for the hot path.

use crate::point::Point;
use crate::polygon::{Polygon, PolygonWithHoles};
use crate::predicates::{orient2d, Orientation};
use crate::segment::Segment;

/// Whether the polygon's boundary is simple: no two non-adjacent edges
/// share any point, and adjacent edges share exactly their common vertex.
pub fn is_simple(polygon: &Polygon) -> bool {
    let edges: Vec<Segment> = polygon.edges().collect();
    let n = edges.len();
    for i in 0..n {
        if edges[i].is_degenerate() {
            return false;
        }
        for j in (i + 1)..n {
            let adjacent = j == i + 1 || (i == 0 && j == n - 1);
            if adjacent {
                // Adjacent edges must only meet in the shared vertex: they
                // must not be collinear with overlap (a "spike").
                let shared = if j == i + 1 { edges[i].b } else { edges[i].a };
                let prev = if j == i + 1 { edges[i].a } else { edges[i].b };
                let next = if j == i + 1 { edges[j].b } else { edges[j].a };
                if orient2d(prev, shared, next) == Orientation::Collinear {
                    // Collinear neighbours are a spike if they fold back.
                    let d1 = shared - prev;
                    let d2 = next - shared;
                    if d1.dot(d2) < 0.0 {
                        return false;
                    }
                }
            } else if edges[i].intersects(&edges[j]) {
                return false;
            }
        }
    }
    true
}

/// Whether ring `inner` lies strictly inside polygon `outer`: every vertex
/// of `inner` is strictly interior and no pair of edges crosses.
pub fn ring_strictly_inside(inner: &Polygon, outer: &Polygon) -> bool {
    if !inner
        .vertices()
        .iter()
        .all(|&v| outer.contains_point_strict(v))
    {
        return false;
    }
    for ei in inner.edges() {
        for eo in outer.edges() {
            if ei.intersects(&eo) {
                return false;
            }
        }
    }
    true
}

/// Whether two polygons are completely disjoint (no edge contact, no
/// containment either way).
pub fn polygons_disjoint(a: &Polygon, b: &Polygon) -> bool {
    if !a.mbr().intersects(&b.mbr()) {
        return true;
    }
    for ea in a.edges() {
        for eb in b.edges() {
            if ea.intersects(&eb) {
                return false;
            }
        }
    }
    !a.contains_point(b.vertices()[0]) && !b.contains_point(a.vertices()[0])
}

/// Full structural validity of a region: simple outer ring, simple holes,
/// every hole strictly inside the outer ring, holes pairwise disjoint.
pub fn region_is_valid(region: &PolygonWithHoles) -> bool {
    if !is_simple(region.outer()) {
        return false;
    }
    let holes = region.holes();
    for (i, h) in holes.iter().enumerate() {
        if !is_simple(h) || !ring_strictly_inside(h, region.outer()) {
            return false;
        }
        for other in &holes[i + 1..] {
            if !polygons_disjoint(h, other) {
                return false;
            }
        }
    }
    true
}

/// Convenience constructor for tests: polygon from coordinate pairs.
pub fn poly(coords: &[(f64, f64)]) -> Polygon {
    Polygon::new(coords.iter().map(|&(x, y)| Point::new(x, y)).collect())
        .expect("valid test polygon")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn square_is_simple() {
        assert!(is_simple(&poly(&[
            (0.0, 0.0),
            (1.0, 0.0),
            (1.0, 1.0),
            (0.0, 1.0)
        ])));
    }

    #[test]
    fn bowtie_is_not_simple() {
        // Self-crossing "bowtie" (asymmetric so the signed area is nonzero
        // and construction succeeds).
        assert!(!is_simple(&poly(&[
            (0.0, 0.0),
            (3.0, 3.0),
            (3.0, 0.0),
            (0.0, 2.0)
        ])));
    }

    #[test]
    fn spike_is_not_simple() {
        // The boundary folds back on itself along an edge.
        let p = Polygon::new(vec![
            Point::new(0.0, 0.0),
            Point::new(2.0, 0.0),
            Point::new(3.0, 0.0),
            Point::new(2.5, 0.0),
            Point::new(2.5, 2.0),
            Point::new(0.0, 2.0),
        ])
        .unwrap();
        assert!(!is_simple(&p));
    }

    #[test]
    fn collinear_straight_through_vertex_is_fine() {
        // A redundant collinear vertex does not break simplicity.
        assert!(is_simple(&poly(&[
            (0.0, 0.0),
            (1.0, 0.0),
            (2.0, 0.0),
            (2.0, 2.0),
            (0.0, 2.0)
        ])));
    }

    #[test]
    fn concave_polygon_is_simple() {
        assert!(is_simple(&poly(&[
            (0.0, 0.0),
            (4.0, 0.0),
            (4.0, 1.0),
            (1.0, 1.0),
            (1.0, 3.0),
            (4.0, 3.0),
            (4.0, 4.0),
            (0.0, 4.0)
        ])));
    }

    #[test]
    fn hole_nesting() {
        let outer = poly(&[(0.0, 0.0), (10.0, 0.0), (10.0, 10.0), (0.0, 10.0)]);
        let hole = poly(&[(2.0, 2.0), (4.0, 2.0), (4.0, 4.0), (2.0, 4.0)]);
        assert!(ring_strictly_inside(&hole, &outer));
        assert!(!ring_strictly_inside(&outer, &hole));
        let crossing = poly(&[(8.0, 8.0), (12.0, 8.0), (12.0, 12.0), (8.0, 12.0)]);
        assert!(!ring_strictly_inside(&crossing, &outer));
    }

    #[test]
    fn region_validity() {
        let outer = poly(&[(0.0, 0.0), (10.0, 0.0), (10.0, 10.0), (0.0, 10.0)]);
        let h1 = poly(&[(1.0, 1.0), (3.0, 1.0), (3.0, 3.0), (1.0, 3.0)]);
        let h2 = poly(&[(5.0, 5.0), (7.0, 5.0), (7.0, 7.0), (5.0, 7.0)]);
        assert!(region_is_valid(&PolygonWithHoles::new(
            outer.clone(),
            vec![h1.clone(), h2.clone()]
        )));
        // Overlapping holes are invalid.
        let h3 = poly(&[(2.0, 2.0), (6.0, 2.0), (6.0, 6.0), (2.0, 6.0)]);
        assert!(!region_is_valid(&PolygonWithHoles::new(
            outer.clone(),
            vec![h1.clone(), h3]
        )));
        // Hole outside the outer ring is invalid.
        let h4 = poly(&[(20.0, 20.0), (21.0, 20.0), (21.0, 21.0), (20.0, 21.0)]);
        assert!(!region_is_valid(&PolygonWithHoles::new(outer, vec![h4])));
    }

    #[test]
    fn disjointness() {
        let a = poly(&[(0.0, 0.0), (1.0, 0.0), (1.0, 1.0), (0.0, 1.0)]);
        let b = poly(&[(5.0, 5.0), (6.0, 5.0), (6.0, 6.0), (5.0, 6.0)]);
        assert!(polygons_disjoint(&a, &b));
        let c = poly(&[(0.5, 0.5), (6.0, 0.5), (6.0, 6.0), (0.5, 6.0)]);
        assert!(!polygons_disjoint(&a, &c));
        // Containment is not disjoint.
        let outer = poly(&[(-1.0, -1.0), (2.0, -1.0), (2.0, 2.0), (-1.0, 2.0)]);
        assert!(!polygons_disjoint(&a, &outer));
    }
}

//! Execution plumbing shared by every join path: the `Sync` pair-consumer
//! protocol that lets a Step-1 candidate producer feed multiple downstream
//! worker threads, and the one shared thread-count resolution helper.
//!
//! The protocol lives here — in the lowest common dependency — because
//! both the candidate backends (`msj-sam`, `msj-partition`) and the
//! execution engine (`msj-core`) speak it: a producer that runs its own
//! worker threads (the partitioned sweep) calls [`PairConsumer::attach`]
//! once *per worker thread* and streams that worker's pairs into the
//! returned [`PairSink`]; a serial producer attaches a single sink on the
//! calling thread. Consumers decide what a sink does with each pair —
//! the fused engine in `msj-core` runs the geometric filter and the exact
//! step right there, on the producing thread.

use crate::object::ObjectId;
use std::any::Any;
use std::sync::{Mutex, MutexGuard};

/// The structured payload a Step-1 backend re-raises when one of its
/// worker threads panicked: which worker, and the panic message it died
/// with. The execution engine (`msj-core`) catches this at the join
/// boundary and converts it into a structured `WorkerPanicked` error, so
/// a panic in one tile/chunk worker fails *the request*, not the engine.
#[derive(Debug)]
pub struct WorkerPanic {
    /// 0-based index of the worker thread that panicked.
    pub worker: usize,
    /// The panic payload rendered as text (see [`panic_message`]).
    pub message: String,
}

/// Renders a caught panic payload as text: `&str` and `String` payloads
/// (what `panic!` produces) pass through; anything else gets a
/// placeholder. Also unwraps an already-structured [`WorkerPanic`] so
/// nested catch/re-raise layers don't stack placeholders.
pub fn panic_message(payload: &(dyn Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else if let Some(wp) = payload.downcast_ref::<WorkerPanic>() {
        wp.message.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

/// Resolves a requested worker-thread count: `0` means "use the machine's
/// available parallelism". Shared by every execution path (the fused
/// engine, the partitioned sweep, the parallel-join compatibility shim) so
/// the resolution rule cannot drift between them.
pub fn resolve_threads(threads: usize) -> usize {
    if threads == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        threads
    }
}

/// One worker's private end of a [`PairConsumer`]: receives that worker's
/// candidate pairs, one at a time or in batches. Not `Sync` — each worker
/// owns its sink exclusively, so implementations need no per-pair
/// synchronization.
pub trait PairSink {
    /// Delivers one candidate pair `(id_a, id_b)`.
    fn pair(&mut self, id_a: ObjectId, id_b: ObjectId);

    /// Delivers a run of candidate pairs at once, in stream order.
    ///
    /// Semantically identical to calling [`pair`](PairSink::pair) for each
    /// element (that is the default implementation); producers batch at
    /// natural boundaries (a partition tile, a traversal chunk) so
    /// consumers can amortize per-pair costs — one virtual dispatch per
    /// batch, and batch-wide classification in the fused engine
    /// (`msj-core`'s `classify_batch`).
    fn consume_batch(&mut self, pairs: &[(ObjectId, ObjectId)]) {
        for &(id_a, id_b) in pairs {
            self.pair(id_a, id_b);
        }
    }
}

/// Every closure is a sink.
impl<F: FnMut(ObjectId, ObjectId)> PairSink for F {
    fn pair(&mut self, id_a: ObjectId, id_b: ObjectId) {
        self(id_a, id_b)
    }
}

/// A caller-side batching adapter: buffers pairs into a fixed-capacity
/// vector and forwards full buffers through
/// [`PairSink::consume_batch`] — the producer-side half of the batched
/// protocol. Producers create one per worker, feed it per-pair, call
/// [`flush`](PairBatchBuffer::flush) at natural boundaries (tile / chunk
/// ends), and let `Drop` flush whatever remains.
///
/// Pair order is preserved exactly; only the granularity of sink calls
/// changes.
pub struct PairBatchBuffer<'a, 'b> {
    sink: &'a mut (dyn PairSink + 'b),
    buf: Vec<(ObjectId, ObjectId)>,
    capacity: usize,
}

impl<'a, 'b> PairBatchBuffer<'a, 'b> {
    /// A buffer of `capacity` pairs (clamped to at least 1) over `sink`.
    pub fn new(sink: &'a mut (dyn PairSink + 'b), capacity: usize) -> Self {
        let capacity = capacity.max(1);
        PairBatchBuffer {
            sink,
            buf: Vec::with_capacity(capacity),
            capacity,
        }
    }

    /// Buffers one pair, forwarding the batch when the buffer fills.
    #[inline]
    pub fn pair(&mut self, id_a: ObjectId, id_b: ObjectId) {
        self.buf.push((id_a, id_b));
        if self.buf.len() == self.capacity {
            self.flush();
        }
    }

    /// Forwards the buffered pairs (if any) to the sink.
    pub fn flush(&mut self) {
        if !self.buf.is_empty() {
            self.sink.consume_batch(&self.buf);
            self.buf.clear();
        }
    }
}

impl Drop for PairBatchBuffer<'_, '_> {
    fn drop(&mut self) {
        // Never re-enter the sink while this thread is unwinding: the
        // sink is what panicked, and a second panic would abort the
        // process. A cancelled/panicked worker's buffered pairs are
        // discarded with the run.
        if !std::thread::panicking() {
            self.flush();
        }
    }
}

/// The buffer is itself a sink, so producers written against
/// `&mut dyn PairSink` can be batched by interposition.
impl PairSink for PairBatchBuffer<'_, '_> {
    fn pair(&mut self, id_a: ObjectId, id_b: ObjectId) {
        PairBatchBuffer::pair(self, id_a, id_b);
    }

    fn consume_batch(&mut self, pairs: &[(ObjectId, ObjectId)]) {
        // Already-batched input passes through; flush first so the
        // stream order is preserved.
        self.flush();
        self.sink.consume_batch(pairs);
    }
}

/// A pair consumer that can serve multiple producer worker threads
/// concurrently.
///
/// Contract: a producer calls [`attach`](PairConsumer::attach) exactly
/// once on each of its worker threads (or once on the calling thread when
/// it runs serially), streams pairs into the returned sink, and drops the
/// sink when the worker is done. Dropping the sink is the worker's
/// "flush" — consumers that accumulate per-worker state publish it there.
pub trait PairConsumer: Sync {
    /// Creates the calling worker thread's sink.
    fn attach(&self) -> Box<dyn PairSink + '_>;
}

/// Adapts a plain `FnMut` closure into a **single-worker** consumer — the
/// bridge between the parallel-capable protocol and callers that just
/// want to stream candidates on one thread (tests, benches, reports).
///
/// Only one sink may be attached at a time; a second concurrent
/// [`attach`](PairConsumer::attach) panics rather than deadlocks, so a
/// producer misconfigured with multiple workers fails loudly.
pub struct FnConsumer<'a> {
    sink: Mutex<&'a mut (dyn FnMut(ObjectId, ObjectId) + Send)>,
}

impl<'a> FnConsumer<'a> {
    pub fn new(sink: &'a mut (dyn FnMut(ObjectId, ObjectId) + Send)) -> Self {
        FnConsumer {
            sink: Mutex::new(sink),
        }
    }
}

struct FnSink<'a, 'b>(MutexGuard<'a, &'b mut (dyn FnMut(ObjectId, ObjectId) + Send)>);

impl PairSink for FnSink<'_, '_> {
    fn pair(&mut self, id_a: ObjectId, id_b: ObjectId) {
        (self.0)(id_a, id_b)
    }
}

impl PairConsumer for FnConsumer<'_> {
    fn attach(&self) -> Box<dyn PairSink + '_> {
        Box::new(FnSink(
            self.sink
                .try_lock()
                .expect("FnConsumer serves a single worker"),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn resolve_threads_maps_zero_to_available_parallelism() {
        assert!(resolve_threads(0) >= 1);
        assert_eq!(resolve_threads(1), 1);
        assert_eq!(resolve_threads(7), 7);
    }

    #[test]
    fn batch_buffer_preserves_order_and_flushes_on_drop() {
        struct Recording {
            pairs: Vec<(ObjectId, ObjectId)>,
            batches: Vec<usize>,
        }
        impl PairSink for Recording {
            fn pair(&mut self, a: ObjectId, b: ObjectId) {
                self.pairs.push((a, b));
            }
            fn consume_batch(&mut self, pairs: &[(ObjectId, ObjectId)]) {
                self.batches.push(pairs.len());
                self.pairs.extend_from_slice(pairs);
            }
        }
        let mut sink = Recording {
            pairs: Vec::new(),
            batches: Vec::new(),
        };
        {
            let mut buffer = PairBatchBuffer::new(&mut sink, 3);
            for i in 0..7u32 {
                buffer.pair(i, i + 100);
            }
            buffer.flush();
            buffer.pair(7, 107);
            // The trailing pair flushes on drop.
        }
        let expect: Vec<(ObjectId, ObjectId)> = (0..8u32).map(|i| (i, i + 100)).collect();
        assert_eq!(sink.pairs, expect);
        assert_eq!(sink.batches, vec![3, 3, 1, 1]);
    }

    #[test]
    fn default_consume_batch_forwards_per_pair() {
        let mut got = Vec::new();
        {
            let mut push = |a: ObjectId, b: ObjectId| got.push((a, b));
            let consumer = FnConsumer::new(&mut push);
            consumer.attach().consume_batch(&[(1, 2), (3, 4)]);
        }
        assert_eq!(got, vec![(1, 2), (3, 4)]);
    }

    #[test]
    fn zero_capacity_batch_buffer_is_clamped() {
        let mut got = Vec::new();
        {
            let mut sink = |a: ObjectId, b: ObjectId| got.push((a, b));
            let mut buffer = PairBatchBuffer::new(&mut sink, 0);
            buffer.pair(9, 9);
        }
        assert_eq!(got, vec![(9, 9)]);
    }

    #[test]
    fn fn_consumer_streams_to_the_wrapped_closure() {
        let mut got = Vec::new();
        {
            let mut push = |a: ObjectId, b: ObjectId| got.push((a, b));
            let consumer = FnConsumer::new(&mut push);
            {
                let mut sink = consumer.attach();
                sink.pair(1, 2);
                sink.pair(3, 4);
            }
            // Re-attach after the first sink is dropped: allowed.
            consumer.attach().pair(5, 6);
        }
        assert_eq!(got, vec![(1, 2), (3, 4), (5, 6)]);
    }

    #[test]
    #[should_panic(expected = "single worker")]
    fn fn_consumer_rejects_concurrent_workers() {
        let mut ignore = |_: ObjectId, _: ObjectId| {};
        let consumer = FnConsumer::new(&mut ignore);
        let _first = consumer.attach();
        let _second = consumer.attach();
    }

    /// A counting consumer usable from many threads at once — the shape
    /// the fused engine relies on.
    struct Counting {
        total: AtomicU64,
    }

    impl PairConsumer for Counting {
        fn attach(&self) -> Box<dyn PairSink + '_> {
            Box::new(move |_: ObjectId, _: ObjectId| {
                self.total.fetch_add(1, Ordering::Relaxed);
            })
        }
    }

    #[test]
    fn consumers_serve_multiple_worker_threads() {
        let consumer = Counting {
            total: AtomicU64::new(0),
        };
        std::thread::scope(|scope| {
            for t in 0..4u32 {
                let consumer = &consumer;
                scope.spawn(move || {
                    let mut sink = consumer.attach();
                    for i in 0..100 {
                        sink.pair(t, i);
                    }
                });
            }
        });
        assert_eq!(consumer.total.load(Ordering::Relaxed), 400);
    }
}

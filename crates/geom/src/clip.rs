//! Convex polygon clipping and convex intersection tests.
//!
//! The geometric filter needs two operations on convex approximations:
//! a boolean intersection *test* (to identify false hits, §3.2) and the
//! *area* of the intersection (for the false-area test, §3.3). Both are
//! provided here for convex polygons; circles and ellipses are handled in
//! the approximation crate by analytic tests and fine polygonization.

use crate::point::Point;
use crate::predicates::orient2d_raw;

/// Clips polygon `subject` against the half-plane to the left of the
/// directed line `a -> b` (Sutherland–Hodgman step).
fn clip_halfplane(subject: &[Point], a: Point, b: Point) -> Vec<Point> {
    let mut out = Vec::with_capacity(subject.len() + 4);
    let n = subject.len();
    if n == 0 {
        return out;
    }
    for i in 0..n {
        let cur = subject[i];
        let prev = subject[(i + n - 1) % n];
        let side_cur = orient2d_raw(a, b, cur);
        let side_prev = orient2d_raw(a, b, prev);
        let cur_in = side_cur >= 0.0;
        let prev_in = side_prev >= 0.0;
        if cur_in {
            if !prev_in {
                if let Some(x) = line_param_intersection(prev, cur, a, b) {
                    out.push(x);
                }
            }
            out.push(cur);
        } else if prev_in {
            if let Some(x) = line_param_intersection(prev, cur, a, b) {
                out.push(x);
            }
        }
    }
    out
}

/// Intersection of segment `p..q` with the line through `a..b`, computed by
/// linear interpolation of the signed distances (numerically stable for the
/// crossing case Sutherland–Hodgman feeds it).
fn line_param_intersection(p: Point, q: Point, a: Point, b: Point) -> Option<Point> {
    let dp = orient2d_raw(a, b, p);
    let dq = orient2d_raw(a, b, q);
    let denom = dp - dq;
    if denom == 0.0 {
        return None;
    }
    let t = dp / denom;
    Some(p.lerp(q, t))
}

/// Clips a polygon against a *convex* clip polygon given in CCW order.
///
/// For a convex subject the result is the exact intersection polygon. (For
/// concave subjects Sutherland–Hodgman may produce degenerate bridging
/// edges; the multi-step join only clips convex approximations.)
pub fn clip_convex(subject: &[Point], clip: &[Point]) -> Vec<Point> {
    let mut out = subject.to_vec();
    let n = clip.len();
    for i in 0..n {
        if out.is_empty() {
            break;
        }
        out = clip_halfplane(&out, clip[i], clip[(i + 1) % n]);
    }
    out
}

/// Area of a vertex ring (absolute shoelace).
pub fn ring_area(ring: &[Point]) -> f64 {
    let n = ring.len();
    if n < 3 {
        return 0.0;
    }
    let mut s = 0.0;
    for i in 0..n {
        s += ring[i].cross(ring[(i + 1) % n]);
    }
    0.5 * s.abs()
}

/// Area of the intersection of two convex polygons (CCW vertex rings).
pub fn convex_intersection_area(a: &[Point], b: &[Point]) -> f64 {
    ring_area(&clip_convex(a, b))
}

/// Closed intersection test between two convex polygons via the separating
/// axis theorem. Touching boundaries count as intersecting.
///
/// Degenerate "polygons" with one or two vertices (points / segments) are
/// handled as their closed convex hulls.
pub fn convex_intersect(a: &[Point], b: &[Point]) -> bool {
    if a.is_empty() || b.is_empty() {
        return false;
    }
    !has_separating_axis(a, b) && !has_separating_axis(b, a)
}

/// Whether any edge normal of `a` separates `a` from `b` strictly.
fn has_separating_axis(a: &[Point], b: &[Point]) -> bool {
    let n = a.len();
    if n == 1 {
        return false; // A point has no edges; the other polygon decides.
    }
    for i in 0..n {
        let p = a[i];
        let q = a[(i + 1) % n];
        if p == q {
            continue;
        }
        let axis = (q - p).perp();
        let (a_min, a_max) = project(a, axis);
        let (b_min, b_max) = project(b, axis);
        // Strict separation with a relative tolerance so touching counts
        // as intersecting.
        let scale = (a_max - a_min).abs() + (b_max - b_min).abs() + 1.0;
        if a_max < b_min - 1e-12 * scale || b_max < a_min - 1e-12 * scale {
            return true;
        }
    }
    false
}

fn project(ring: &[Point], axis: Point) -> (f64, f64) {
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    for &p in ring {
        let v = p.dot(axis);
        lo = lo.min(v);
        hi = hi.max(v);
    }
    (lo, hi)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn square(x0: f64, y0: f64, s: f64) -> Vec<Point> {
        vec![
            Point::new(x0, y0),
            Point::new(x0 + s, y0),
            Point::new(x0 + s, y0 + s),
            Point::new(x0, y0 + s),
        ]
    }

    #[test]
    fn clip_overlapping_squares() {
        let a = square(0.0, 0.0, 2.0);
        let b = square(1.0, 1.0, 2.0);
        let inter = clip_convex(&a, &b);
        assert!((ring_area(&inter) - 1.0).abs() < 1e-12);
        assert!((convex_intersection_area(&a, &b) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn clip_contained_polygon() {
        let a = square(0.5, 0.5, 1.0);
        let b = square(0.0, 0.0, 4.0);
        assert!((convex_intersection_area(&a, &b) - 1.0).abs() < 1e-12);
        assert!((convex_intersection_area(&b, &a) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn clip_disjoint_is_empty() {
        let a = square(0.0, 0.0, 1.0);
        let b = square(5.0, 5.0, 1.0);
        assert_eq!(convex_intersection_area(&a, &b), 0.0);
        assert!(clip_convex(&a, &b).is_empty());
    }

    #[test]
    fn clip_triangle_and_square() {
        let tri = vec![
            Point::new(0.0, 0.0),
            Point::new(4.0, 0.0),
            Point::new(0.0, 4.0),
        ];
        let sq = square(0.0, 0.0, 2.0);
        // The part of the square under the line x + y = 4 is the whole
        // square (corner (2,2) is exactly on the line).
        assert!((convex_intersection_area(&sq, &tri) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn intersection_area_is_symmetric() {
        let a = vec![
            Point::new(0.0, 0.0),
            Point::new(3.0, 1.0),
            Point::new(1.0, 3.0),
        ];
        let b = square(0.5, 0.5, 1.5);
        let ab = convex_intersection_area(&a, &b);
        let ba = convex_intersection_area(&b, &a);
        assert!((ab - ba).abs() < 1e-12);
        assert!(ab > 0.0);
    }

    #[test]
    fn sat_disjoint_and_touching() {
        let a = square(0.0, 0.0, 1.0);
        let b = square(2.0, 0.0, 1.0);
        assert!(!convex_intersect(&a, &b));
        // Shared edge: touching counts.
        let c = square(1.0, 0.0, 1.0);
        assert!(convex_intersect(&a, &c));
        // Shared corner.
        let d = square(1.0, 1.0, 1.0);
        assert!(convex_intersect(&a, &d));
    }

    #[test]
    fn sat_separated_by_diagonal_axis() {
        // A triangle and a square whose AABBs overlap but which are
        // separated by the triangle's hypotenuse normal.
        let tri = vec![
            Point::new(0.0, 0.0),
            Point::new(3.0, 0.0),
            Point::new(0.0, 3.0),
        ];
        let sq = square(1.8, 1.8, 1.0);
        // AABBs overlap:
        assert!(crate::rect::Rect::bounding(tri.iter().copied())
            .unwrap()
            .intersects(&crate::rect::Rect::bounding(sq.iter().copied()).unwrap()));
        // But the convex shapes do not intersect:
        assert!(!convex_intersect(&tri, &sq));
        assert!(!convex_intersect(&sq, &tri));
    }

    #[test]
    fn sat_containment_counts_as_intersection() {
        let outer = square(0.0, 0.0, 10.0);
        let inner = square(4.0, 4.0, 1.0);
        assert!(convex_intersect(&outer, &inner));
        assert!(convex_intersect(&inner, &outer));
    }

    #[test]
    fn sat_segment_degenerate() {
        let seg = vec![Point::new(0.0, 0.0), Point::new(2.0, 2.0)];
        let sq = square(0.5, 0.5, 1.0);
        assert!(convex_intersect(&seg, &sq));
        let far = vec![Point::new(5.0, 5.0), Point::new(6.0, 6.0)];
        assert!(!convex_intersect(&far, &sq));
    }

    #[test]
    fn clip_area_never_exceeds_operands() {
        let a = vec![
            Point::new(0.0, 0.0),
            Point::new(5.0, 1.0),
            Point::new(6.0, 4.0),
            Point::new(2.0, 6.0),
            Point::new(-1.0, 3.0),
        ];
        let b = square(1.0, 1.0, 3.0);
        let ia = convex_intersection_area(&a, &b);
        assert!(ia <= ring_area(&a) + 1e-9);
        assert!(ia <= ring_area(&b) + 1e-9);
    }
}

//! Runtime-dispatched wide kernels for the engine's hot loops.
//!
//! Four kernels cover the inner loops of the Step 1 → 2a → 2 spine:
//!
//! * [`sweep_scan`] — the forward plane-sweep inner run (`msj-partition`
//!   tile sweeps, `msj-sam` equal-level node sweeps): scan a window of
//!   x-sorted entries, stop at the first `xmin > bound`, emit the
//!   indices whose y-extent overlaps the query band;
//! * [`rects_vs_rect`] — one query rectangle against SoA MBR columns
//!   (R*-tree directory pruning and window restriction over per-node
//!   repacked entry columns);
//! * [`rect_pairs_intersect`] — id-gathered rectangle-pair overlap over
//!   two `Rect` columns (the MER fast-accept of the compiled filter
//!   plan);
//! * [`rects_contain_point`] / [`rects_intersect_query`] — id-gathered
//!   point-in-rect and window-vs-rect masks (resident point/window
//!   probes).
//!
//! Each kernel has three implementations selected by [`KernelDispatch`]:
//! a portable scalar loop (the semantic reference), an SSE2 path and an
//! AVX2 path (`core::arch::x86_64` behind `is_x86_feature_detected!`).
//! The wide paths are outcome-identical to the scalar reference for
//! *arbitrary* inputs, including NaN lanes:
//!
//! * every wide comparison uses an **ordered** predicate (`_CMP_LE_OQ`,
//!   `_CMP_GT_OQ`), which is `false` when either operand is NaN —
//!   exactly like the scalar `<=` / `>` it replaces;
//! * the sweep stop test is `xmin > bound` (break) in both paths, so a
//!   NaN `xmin` lane *continues* the scan in both;
//! * NaN-sentinel rectangles (empty progressive MERs) never intersect
//!   and never contain a point in either path.
//!
//! Dispatch is chosen **once per join** ([`KernelDispatch::select`]) and
//! threaded through every call site; `force_scalar` (config) or the
//! `MSJ_FORCE_SCALAR` environment variable pin the reference path.

#[cfg(target_arch = "x86_64")]
use std::arch::x86_64 as x86;

use crate::{Point, Rect};

/// Environment variable that pins every kernel to the scalar reference
/// path, overriding runtime CPU feature detection (any non-empty value
/// other than `0`).
pub const FORCE_SCALAR_ENV: &str = "MSJ_FORCE_SCALAR";

/// The kernel implementation family, chosen once per join (or probe
/// session) and threaded through every hot loop under it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum KernelDispatch {
    /// Portable scalar loops — the semantic reference every wide path is
    /// checked against.
    Scalar,
    /// 2-wide `f64` lanes via `core::arch::x86_64` SSE2.
    Sse2,
    /// 4-wide `f64` lanes (with id gathers) via `core::arch::x86_64`
    /// AVX2.
    Avx2,
}

impl KernelDispatch {
    /// The widest path this CPU supports, by runtime feature detection.
    /// Non-x86-64 targets always get [`KernelDispatch::Scalar`].
    pub fn detect() -> Self {
        #[cfg(target_arch = "x86_64")]
        {
            if std::arch::is_x86_feature_detected!("avx2") {
                return KernelDispatch::Avx2;
            }
            if std::arch::is_x86_feature_detected!("sse2") {
                return KernelDispatch::Sse2;
            }
        }
        KernelDispatch::Scalar
    }

    /// The dispatch a join should run with: the scalar reference when
    /// `force_scalar` is set (configuration knob) or the
    /// [`FORCE_SCALAR_ENV`] environment variable is present and not `0`,
    /// otherwise the detected widest path.
    pub fn select(force_scalar: bool) -> Self {
        if force_scalar || env_force_scalar() {
            KernelDispatch::Scalar
        } else {
            KernelDispatch::detect()
        }
    }

    /// [`KernelDispatch::select`] with only the environment override —
    /// what call sites without a configuration handle use.
    pub fn auto() -> Self {
        KernelDispatch::select(false)
    }

    /// Stable label for metrics and reports.
    pub fn label(&self) -> &'static str {
        match self {
            KernelDispatch::Scalar => "scalar",
            KernelDispatch::Sse2 => "sse2",
            KernelDispatch::Avx2 => "avx2",
        }
    }

    /// Every dispatch this CPU can actually run, scalar first — the
    /// matrix agreement tests and the bench iterate over this.
    pub fn all_available() -> Vec<KernelDispatch> {
        let mut all = vec![KernelDispatch::Scalar];
        #[cfg(target_arch = "x86_64")]
        {
            if std::arch::is_x86_feature_detected!("sse2") {
                all.push(KernelDispatch::Sse2);
            }
            if std::arch::is_x86_feature_detected!("avx2") {
                all.push(KernelDispatch::Avx2);
            }
        }
        all
    }
}

fn env_force_scalar() -> bool {
    std::env::var_os(FORCE_SCALAR_ENV).is_some_and(|v| !v.is_empty() && v != *"0")
}

// ---------------------------------------------------------------------
// Kernel 1: forward-sweep inner run over x-sorted SoA columns.
// ---------------------------------------------------------------------

/// Scans `from..` of the x-sorted columns, stopping at the first entry
/// with `xmin[k] > bound_x` (the plane-sweep break), and pushes the
/// index of every scanned entry whose y-extent overlaps the query band
/// (`q_ymin <= ymax[k] && ymin[k] <= q_ymax`). Returns the number of
/// entries scanned before the break — the `pair_tests` / `mbr_tests`
/// statistic of the callers, which must stay byte-identical across
/// dispatch paths.
///
/// Indices are pushed in ascending order, exactly like the scalar loop.
#[allow(clippy::too_many_arguments)]
pub fn sweep_scan(
    d: KernelDispatch,
    bound_x: f64,
    q_ymin: f64,
    q_ymax: f64,
    xmin: &[f64],
    ymin: &[f64],
    ymax: &[f64],
    from: usize,
    hits: &mut Vec<u32>,
) -> u64 {
    debug_assert!(xmin.len() == ymin.len() && xmin.len() == ymax.len());
    match d {
        KernelDispatch::Scalar => {
            sweep_scan_scalar(bound_x, q_ymin, q_ymax, xmin, ymin, ymax, from, hits)
        }
        #[cfg(target_arch = "x86_64")]
        KernelDispatch::Sse2 => unsafe {
            sweep_scan_sse2(bound_x, q_ymin, q_ymax, xmin, ymin, ymax, from, hits)
        },
        #[cfg(target_arch = "x86_64")]
        KernelDispatch::Avx2 => unsafe {
            sweep_scan_avx2(bound_x, q_ymin, q_ymax, xmin, ymin, ymax, from, hits)
        },
        #[cfg(not(target_arch = "x86_64"))]
        _ => sweep_scan_scalar(bound_x, q_ymin, q_ymax, xmin, ymin, ymax, from, hits),
    }
}

/// The reference loop. NaN `xmin` never satisfies `> bound_x`, so the
/// scan continues past it; NaN y-extents never satisfy the band test.
#[allow(clippy::too_many_arguments)]
fn sweep_scan_scalar(
    bound_x: f64,
    q_ymin: f64,
    q_ymax: f64,
    xmin: &[f64],
    ymin: &[f64],
    ymax: &[f64],
    from: usize,
    hits: &mut Vec<u32>,
) -> u64 {
    let mut tests = 0u64;
    for k in from..xmin.len() {
        if xmin[k] > bound_x {
            break;
        }
        tests += 1;
        if (q_ymin <= ymax[k]) & (ymin[k] <= q_ymax) {
            hits.push(k as u32);
        }
    }
    tests
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
#[allow(clippy::too_many_arguments)]
unsafe fn sweep_scan_avx2(
    bound_x: f64,
    q_ymin: f64,
    q_ymax: f64,
    xmin: &[f64],
    ymin: &[f64],
    ymax: &[f64],
    from: usize,
    hits: &mut Vec<u32>,
) -> u64 {
    use x86::*;
    let n = xmin.len();
    let bound = _mm256_set1_pd(bound_x);
    let band_lo = _mm256_set1_pd(q_ymin);
    let band_hi = _mm256_set1_pd(q_ymax);
    let mut tests = 0u64;
    let mut k = from;
    while k + 4 <= n {
        let xs = _mm256_loadu_pd(xmin.as_ptr().add(k));
        // Stop lanes: xmin > bound (ordered: NaN lanes keep scanning,
        // like the scalar break test).
        let stop = _mm256_movemask_pd(_mm256_cmp_pd::<{ _CMP_GT_OQ }>(xs, bound)) as u32;
        let live = if stop == 0 {
            4
        } else {
            stop.trailing_zeros() as usize
        };
        if live > 0 {
            let ylo = _mm256_loadu_pd(ymin.as_ptr().add(k));
            let yhi = _mm256_loadu_pd(ymax.as_ptr().add(k));
            let c1 = _mm256_cmp_pd::<{ _CMP_LE_OQ }>(band_lo, yhi);
            let c2 = _mm256_cmp_pd::<{ _CMP_LE_OQ }>(ylo, band_hi);
            let mut m = (_mm256_movemask_pd(_mm256_and_pd(c1, c2)) as u32) & ((1u32 << live) - 1);
            while m != 0 {
                let lane = m.trailing_zeros() as usize;
                hits.push((k + lane) as u32);
                m &= m - 1;
            }
            tests += live as u64;
        }
        if live < 4 {
            return tests;
        }
        k += 4;
    }
    tests + sweep_scan_scalar(bound_x, q_ymin, q_ymax, xmin, ymin, ymax, k, hits)
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "sse2")]
#[allow(clippy::too_many_arguments)]
unsafe fn sweep_scan_sse2(
    bound_x: f64,
    q_ymin: f64,
    q_ymax: f64,
    xmin: &[f64],
    ymin: &[f64],
    ymax: &[f64],
    from: usize,
    hits: &mut Vec<u32>,
) -> u64 {
    use x86::*;
    let n = xmin.len();
    let bound = _mm_set1_pd(bound_x);
    let band_lo = _mm_set1_pd(q_ymin);
    let band_hi = _mm_set1_pd(q_ymax);
    let mut tests = 0u64;
    let mut k = from;
    while k + 2 <= n {
        let xs = _mm_loadu_pd(xmin.as_ptr().add(k));
        let stop = _mm_movemask_pd(_mm_cmpgt_pd(xs, bound)) as u32;
        let live = if stop == 0 {
            2
        } else {
            stop.trailing_zeros() as usize
        };
        if live > 0 {
            let ylo = _mm_loadu_pd(ymin.as_ptr().add(k));
            let yhi = _mm_loadu_pd(ymax.as_ptr().add(k));
            let c = _mm_and_pd(_mm_cmple_pd(band_lo, yhi), _mm_cmple_pd(ylo, band_hi));
            let mut m = (_mm_movemask_pd(c) as u32) & ((1u32 << live) - 1);
            while m != 0 {
                let lane = m.trailing_zeros() as usize;
                hits.push((k + lane) as u32);
                m &= m - 1;
            }
            tests += live as u64;
        }
        if live < 2 {
            return tests;
        }
        k += 2;
    }
    tests + sweep_scan_scalar(bound_x, q_ymin, q_ymax, xmin, ymin, ymax, k, hits)
}

// ---------------------------------------------------------------------
// Kernel 2: one query rectangle vs SoA MBR columns (full scan).
// ---------------------------------------------------------------------

/// Pushes the index of every column entry whose rectangle intersects
/// `q` (closed semantics, [`Rect::intersects`]), in ascending order.
/// The R*-tree directory-pruning and window-restriction loops run this
/// over per-node repacked entry columns.
pub fn rects_vs_rect(
    d: KernelDispatch,
    q: &Rect,
    xmin: &[f64],
    ymin: &[f64],
    xmax: &[f64],
    ymax: &[f64],
    hits: &mut Vec<u32>,
) {
    debug_assert!(xmin.len() == ymin.len() && xmin.len() == xmax.len() && xmin.len() == ymax.len());
    match d {
        KernelDispatch::Scalar => rects_vs_rect_scalar(q, xmin, ymin, xmax, ymax, 0, hits),
        #[cfg(target_arch = "x86_64")]
        KernelDispatch::Sse2 => unsafe { rects_vs_rect_sse2(q, xmin, ymin, xmax, ymax, hits) },
        #[cfg(target_arch = "x86_64")]
        KernelDispatch::Avx2 => unsafe { rects_vs_rect_avx2(q, xmin, ymin, xmax, ymax, hits) },
        #[cfg(not(target_arch = "x86_64"))]
        _ => rects_vs_rect_scalar(q, xmin, ymin, xmax, ymax, 0, hits),
    }
}

fn rects_vs_rect_scalar(
    q: &Rect,
    xmin: &[f64],
    ymin: &[f64],
    xmax: &[f64],
    ymax: &[f64],
    from: usize,
    hits: &mut Vec<u32>,
) {
    let (qx0, qy0, qx1, qy1) = (q.xmin(), q.ymin(), q.xmax(), q.ymax());
    for k in from..xmin.len() {
        if (xmin[k] <= qx1) & (qx0 <= xmax[k]) & (ymin[k] <= qy1) & (qy0 <= ymax[k]) {
            hits.push(k as u32);
        }
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn rects_vs_rect_avx2(
    q: &Rect,
    xmin: &[f64],
    ymin: &[f64],
    xmax: &[f64],
    ymax: &[f64],
    hits: &mut Vec<u32>,
) {
    use x86::*;
    let n = xmin.len();
    let qx0 = _mm256_set1_pd(q.xmin());
    let qy0 = _mm256_set1_pd(q.ymin());
    let qx1 = _mm256_set1_pd(q.xmax());
    let qy1 = _mm256_set1_pd(q.ymax());
    let mut k = 0usize;
    while k + 4 <= n {
        let c1 = _mm256_cmp_pd::<{ _CMP_LE_OQ }>(_mm256_loadu_pd(xmin.as_ptr().add(k)), qx1);
        let c2 = _mm256_cmp_pd::<{ _CMP_LE_OQ }>(qx0, _mm256_loadu_pd(xmax.as_ptr().add(k)));
        let c3 = _mm256_cmp_pd::<{ _CMP_LE_OQ }>(_mm256_loadu_pd(ymin.as_ptr().add(k)), qy1);
        let c4 = _mm256_cmp_pd::<{ _CMP_LE_OQ }>(qy0, _mm256_loadu_pd(ymax.as_ptr().add(k)));
        let m = _mm256_and_pd(_mm256_and_pd(c1, c2), _mm256_and_pd(c3, c4));
        let mut bits = _mm256_movemask_pd(m) as u32;
        while bits != 0 {
            let lane = bits.trailing_zeros() as usize;
            hits.push((k + lane) as u32);
            bits &= bits - 1;
        }
        k += 4;
    }
    rects_vs_rect_scalar(q, xmin, ymin, xmax, ymax, k, hits);
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "sse2")]
unsafe fn rects_vs_rect_sse2(
    q: &Rect,
    xmin: &[f64],
    ymin: &[f64],
    xmax: &[f64],
    ymax: &[f64],
    hits: &mut Vec<u32>,
) {
    use x86::*;
    let n = xmin.len();
    let qx0 = _mm_set1_pd(q.xmin());
    let qy0 = _mm_set1_pd(q.ymin());
    let qx1 = _mm_set1_pd(q.xmax());
    let qy1 = _mm_set1_pd(q.ymax());
    let mut k = 0usize;
    while k + 2 <= n {
        let c1 = _mm_cmple_pd(_mm_loadu_pd(xmin.as_ptr().add(k)), qx1);
        let c2 = _mm_cmple_pd(qx0, _mm_loadu_pd(xmax.as_ptr().add(k)));
        let c3 = _mm_cmple_pd(_mm_loadu_pd(ymin.as_ptr().add(k)), qy1);
        let c4 = _mm_cmple_pd(qy0, _mm_loadu_pd(ymax.as_ptr().add(k)));
        let m = _mm_and_pd(_mm_and_pd(c1, c2), _mm_and_pd(c3, c4));
        let mut bits = _mm_movemask_pd(m) as u32;
        while bits != 0 {
            let lane = bits.trailing_zeros() as usize;
            hits.push((k + lane) as u32);
            bits &= bits - 1;
        }
        k += 2;
    }
    rects_vs_rect_scalar(q, xmin, ymin, xmax, ymax, k, hits);
}

// ---------------------------------------------------------------------
// Kernel 3: id-gathered rectangle-pair overlap (MER fast-accept).
// ---------------------------------------------------------------------

/// For every `(id_a, id_b)` pair pushes whether
/// `rects_a[id_a].intersects(&rects_b[id_b])` — the MER fast-accept of
/// the compiled `ConvexMer` filter plan. NaN-sentinel rectangles
/// (empty MERs) produce `false` in every path.
///
/// `Rect` is `#[repr(C)]` over `[xmin, ymin, xmax, ymax]`, so the AVX2
/// path gathers the four columns of four pairs at a time by object id.
pub fn rect_pairs_intersect(
    d: KernelDispatch,
    rects_a: &[Rect],
    rects_b: &[Rect],
    pairs: &[(u32, u32)],
    out: &mut Vec<bool>,
) {
    match d {
        KernelDispatch::Scalar => rect_pairs_scalar(rects_a, rects_b, pairs, out),
        // Random-index pair gathering defeats 4-lane gathers (the
        // `kernels` bench measured `vgatherdpd` at ~0.5x scalar here),
        // so the widest path also runs the 2-lane direct-load form —
        // each pair's two rects are contiguous 32-byte loads.
        #[cfg(target_arch = "x86_64")]
        KernelDispatch::Sse2 | KernelDispatch::Avx2 => unsafe {
            rect_pairs_sse2(rects_a, rects_b, pairs, out)
        },
        #[cfg(not(target_arch = "x86_64"))]
        _ => rect_pairs_scalar(rects_a, rects_b, pairs, out),
    }
}

fn rect_pairs_scalar(
    rects_a: &[Rect],
    rects_b: &[Rect],
    pairs: &[(u32, u32)],
    out: &mut Vec<bool>,
) {
    out.extend(
        pairs
            .iter()
            .map(|&(a, b)| rects_a[a as usize].intersects(&rects_b[b as usize])),
    );
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "sse2")]
unsafe fn rect_pairs_sse2(
    rects_a: &[Rect],
    rects_b: &[Rect],
    pairs: &[(u32, u32)],
    out: &mut Vec<bool>,
) {
    use x86::*;
    for &(a, b) in pairs {
        let ra = rects_a.as_ptr().add(a as usize) as *const f64;
        let rb = rects_b.as_ptr().add(b as usize) as *const f64;
        let a_lo = _mm_loadu_pd(ra);
        let a_hi = _mm_loadu_pd(ra.add(2));
        let b_lo = _mm_loadu_pd(rb);
        let b_hi = _mm_loadu_pd(rb.add(2));
        let m = _mm_and_pd(_mm_cmple_pd(a_lo, b_hi), _mm_cmple_pd(b_lo, a_hi));
        out.push(_mm_movemask_pd(m) == 0b11);
    }
}

// ---------------------------------------------------------------------
// Kernel 4: id-gathered point-in-rect / window-vs-rect masks.
// ---------------------------------------------------------------------

/// For every id pushes whether `rects[id].contains_point(p)` (closed
/// semantics). NaN-sentinel rectangles contain nothing in every path.
pub fn rects_contain_point(
    d: KernelDispatch,
    rects: &[Rect],
    ids: &[u32],
    p: Point,
    out: &mut Vec<bool>,
) {
    match d {
        KernelDispatch::Scalar => rects_contain_point_scalar(rects, ids, p, out),
        #[cfg(target_arch = "x86_64")]
        KernelDispatch::Sse2 => unsafe { rects_contain_point_sse2(rects, ids, p, out) },
        #[cfg(target_arch = "x86_64")]
        KernelDispatch::Avx2 => unsafe { rects_contain_point_avx2(rects, ids, p, out) },
        #[cfg(not(target_arch = "x86_64"))]
        _ => rects_contain_point_scalar(rects, ids, p, out),
    }
}

fn rects_contain_point_scalar(rects: &[Rect], ids: &[u32], p: Point, out: &mut Vec<bool>) {
    out.extend(ids.iter().map(|&id| rects[id as usize].contains_point(p)));
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn rects_contain_point_avx2(rects: &[Rect], ids: &[u32], p: Point, out: &mut Vec<bool>) {
    use x86::*;
    let base = rects.as_ptr() as *const f64;
    let px = _mm256_set1_pd(p.x);
    let py = _mm256_set1_pd(p.y);
    let mut k = 0usize;
    while k + 4 <= ids.len() {
        let idx = _mm_slli_epi32::<2>(_mm_set_epi32(
            ids[k + 3] as i32,
            ids[k + 2] as i32,
            ids[k + 1] as i32,
            ids[k] as i32,
        ));
        let x0 = _mm256_i32gather_pd::<8>(base, idx);
        let y0 = _mm256_i32gather_pd::<8>(base.add(1), idx);
        let x1 = _mm256_i32gather_pd::<8>(base.add(2), idx);
        let y1 = _mm256_i32gather_pd::<8>(base.add(3), idx);
        let c1 = _mm256_cmp_pd::<{ _CMP_LE_OQ }>(x0, px);
        let c2 = _mm256_cmp_pd::<{ _CMP_LE_OQ }>(px, x1);
        let c3 = _mm256_cmp_pd::<{ _CMP_LE_OQ }>(y0, py);
        let c4 = _mm256_cmp_pd::<{ _CMP_LE_OQ }>(py, y1);
        let bits =
            _mm256_movemask_pd(_mm256_and_pd(_mm256_and_pd(c1, c2), _mm256_and_pd(c3, c4))) as u32;
        for lane in 0..4 {
            out.push(bits & (1 << lane) != 0);
        }
        k += 4;
    }
    rects_contain_point_scalar(rects, &ids[k..], p, out);
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "sse2")]
unsafe fn rects_contain_point_sse2(rects: &[Rect], ids: &[u32], p: Point, out: &mut Vec<bool>) {
    use x86::*;
    let pv = _mm_set_pd(p.y, p.x);
    for &id in ids {
        let r = rects.as_ptr().add(id as usize) as *const f64;
        let lo = _mm_loadu_pd(r);
        let hi = _mm_loadu_pd(r.add(2));
        let m = _mm_and_pd(_mm_cmple_pd(lo, pv), _mm_cmple_pd(pv, hi));
        out.push(_mm_movemask_pd(m) == 0b11);
    }
}

/// For every id pushes whether `rects[id].intersects(q)` (closed
/// semantics) — the window-probe companion of
/// [`rects_contain_point`].
pub fn rects_intersect_query(
    d: KernelDispatch,
    rects: &[Rect],
    ids: &[u32],
    q: &Rect,
    out: &mut Vec<bool>,
) {
    match d {
        KernelDispatch::Scalar => rects_intersect_query_scalar(rects, ids, q, out),
        #[cfg(target_arch = "x86_64")]
        KernelDispatch::Sse2 => unsafe { rects_intersect_query_sse2(rects, ids, q, out) },
        #[cfg(target_arch = "x86_64")]
        KernelDispatch::Avx2 => unsafe { rects_intersect_query_avx2(rects, ids, q, out) },
        #[cfg(not(target_arch = "x86_64"))]
        _ => rects_intersect_query_scalar(rects, ids, q, out),
    }
}

fn rects_intersect_query_scalar(rects: &[Rect], ids: &[u32], q: &Rect, out: &mut Vec<bool>) {
    out.extend(ids.iter().map(|&id| rects[id as usize].intersects(q)));
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn rects_intersect_query_avx2(rects: &[Rect], ids: &[u32], q: &Rect, out: &mut Vec<bool>) {
    use x86::*;
    let base = rects.as_ptr() as *const f64;
    let qx0 = _mm256_set1_pd(q.xmin());
    let qy0 = _mm256_set1_pd(q.ymin());
    let qx1 = _mm256_set1_pd(q.xmax());
    let qy1 = _mm256_set1_pd(q.ymax());
    let mut k = 0usize;
    while k + 4 <= ids.len() {
        let idx = _mm_slli_epi32::<2>(_mm_set_epi32(
            ids[k + 3] as i32,
            ids[k + 2] as i32,
            ids[k + 1] as i32,
            ids[k] as i32,
        ));
        let x0 = _mm256_i32gather_pd::<8>(base, idx);
        let y0 = _mm256_i32gather_pd::<8>(base.add(1), idx);
        let x1 = _mm256_i32gather_pd::<8>(base.add(2), idx);
        let y1 = _mm256_i32gather_pd::<8>(base.add(3), idx);
        let c1 = _mm256_cmp_pd::<{ _CMP_LE_OQ }>(x0, qx1);
        let c2 = _mm256_cmp_pd::<{ _CMP_LE_OQ }>(qx0, x1);
        let c3 = _mm256_cmp_pd::<{ _CMP_LE_OQ }>(y0, qy1);
        let c4 = _mm256_cmp_pd::<{ _CMP_LE_OQ }>(qy0, y1);
        let bits =
            _mm256_movemask_pd(_mm256_and_pd(_mm256_and_pd(c1, c2), _mm256_and_pd(c3, c4))) as u32;
        for lane in 0..4 {
            out.push(bits & (1 << lane) != 0);
        }
        k += 4;
    }
    rects_intersect_query_scalar(rects, &ids[k..], q, out);
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "sse2")]
unsafe fn rects_intersect_query_sse2(rects: &[Rect], ids: &[u32], q: &Rect, out: &mut Vec<bool>) {
    use x86::*;
    let q_lo = _mm_set_pd(q.ymin(), q.xmin());
    let q_hi = _mm_set_pd(q.ymax(), q.xmax());
    for &id in ids {
        let r = rects.as_ptr().add(id as usize) as *const f64;
        let lo = _mm_loadu_pd(r);
        let hi = _mm_loadu_pd(r.add(2));
        let m = _mm_and_pd(_mm_cmple_pd(lo, q_hi), _mm_cmple_pd(q_lo, hi));
        out.push(_mm_movemask_pd(m) == 0b11);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nan_rect() -> Rect {
        Rect::from_bounds(f64::NAN, f64::NAN, f64::NAN, f64::NAN)
    }

    #[test]
    fn repr_c_rect_is_four_doubles() {
        assert_eq!(std::mem::size_of::<Rect>(), 4 * 8);
        assert_eq!(std::mem::size_of::<Point>(), 2 * 8);
        let r = Rect::from_bounds(1.0, 2.0, 3.0, 4.0);
        let view = unsafe { std::slice::from_raw_parts(&r as *const Rect as *const f64, 4) };
        assert_eq!(view, &[1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn dispatch_selection_honors_force_scalar() {
        assert_eq!(KernelDispatch::select(true), KernelDispatch::Scalar);
        assert!(KernelDispatch::all_available().contains(&KernelDispatch::auto()));
        assert_eq!(KernelDispatch::all_available()[0], KernelDispatch::Scalar);
        for d in KernelDispatch::all_available() {
            assert!(!d.label().is_empty());
        }
    }

    /// Deterministic pseudo-random f64 in a small range, with occasional
    /// NaN lanes when `with_nan`.
    fn gen_vals(seed: u64, n: usize, with_nan: bool) -> Vec<f64> {
        let mut s = seed.wrapping_mul(0x9e3779b97f4a7c15).wrapping_add(1);
        (0..n)
            .map(|_| {
                s = s
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let u = (s >> 33) as f64 / (1u64 << 31) as f64;
                if with_nan && (s >> 7).is_multiple_of(11) {
                    f64::NAN
                } else {
                    u * 20.0 - 10.0
                }
            })
            .collect()
    }

    /// Every kernel must agree with the scalar reference at every lane
    /// boundary (`len % 4 ∈ {0,1,2,3}`, and smaller), with NaN lanes
    /// mixed in.
    #[test]
    fn sweep_scan_matches_scalar_at_lane_boundaries() {
        for n in 0..=13usize {
            for with_nan in [false, true] {
                for seed in 1..=6u64 {
                    let mut xmin = gen_vals(seed, n, with_nan);
                    // Mostly sorted like real input, but leave NaNs and
                    // occasional disorder in place: the kernel contract
                    // is agreement on *arbitrary* input.
                    xmin.sort_unstable_by(|a, b| {
                        a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal)
                    });
                    let ymin = gen_vals(seed + 100, n, with_nan);
                    let ymax = gen_vals(seed + 200, n, with_nan);
                    for from in [0usize, 1, n / 2, n.saturating_sub(1)] {
                        for bound in [-5.0, 0.0, 5.0, f64::NAN] {
                            let mut want = Vec::new();
                            let t0 = sweep_scan_scalar(
                                bound, -3.0, 4.0, &xmin, &ymin, &ymax, from, &mut want,
                            );
                            for d in KernelDispatch::all_available() {
                                let mut got = Vec::new();
                                let t = sweep_scan(
                                    d, bound, -3.0, 4.0, &xmin, &ymin, &ymax, from, &mut got,
                                );
                                assert_eq!(got, want, "{d:?} n={n} from={from} bound={bound}");
                                assert_eq!(t, t0, "{d:?} pair-test count diverged");
                            }
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn rects_vs_rect_matches_scalar_at_lane_boundaries() {
        let q = Rect::from_bounds(-2.0, -2.0, 3.0, 3.0);
        for n in 0..=11usize {
            for with_nan in [false, true] {
                let xmin = gen_vals(7, n, with_nan);
                let ymin = gen_vals(8, n, with_nan);
                let xmax: Vec<f64> = xmin.iter().map(|v| v + 2.0).collect();
                let ymax: Vec<f64> = ymin.iter().map(|v| v + 2.0).collect();
                let mut want = Vec::new();
                rects_vs_rect_scalar(&q, &xmin, &ymin, &xmax, &ymax, 0, &mut want);
                for d in KernelDispatch::all_available() {
                    let mut got = Vec::new();
                    rects_vs_rect(d, &q, &xmin, &ymin, &xmax, &ymax, &mut got);
                    assert_eq!(got, want, "{d:?} n={n} nan={with_nan}");
                }
            }
        }
    }

    #[test]
    fn rect_pairs_match_scalar_including_nan_sentinels() {
        let mut rects_a: Vec<Rect> = (0..9)
            .map(|i| Rect::from_bounds(i as f64, 0.0, i as f64 + 2.0, 2.0))
            .collect();
        let mut rects_b: Vec<Rect> = (0..9)
            .map(|i| Rect::from_bounds(0.5 * i as f64, 1.0, 0.5 * i as f64 + 1.5, 3.0))
            .collect();
        rects_a[3] = nan_rect();
        rects_b[5] = nan_rect();
        for n in 0..=9usize {
            let pairs: Vec<(u32, u32)> = (0..n).map(|i| (i as u32, (n - 1 - i) as u32)).collect();
            let mut want = Vec::new();
            rect_pairs_scalar(&rects_a, &rects_b, &pairs, &mut want);
            // NaN sentinel lanes never accept.
            for (i, &(a, b)) in pairs.iter().enumerate() {
                if a == 3 || b == 5 {
                    assert!(!want[i], "NaN sentinel must not intersect");
                }
            }
            for d in KernelDispatch::all_available() {
                let mut got = Vec::new();
                rect_pairs_intersect(d, &rects_a, &rects_b, &pairs, &mut got);
                assert_eq!(got, want, "{d:?} n={n}");
            }
        }
    }

    #[test]
    fn point_and_window_masks_match_scalar() {
        let mut rects: Vec<Rect> = (0..10)
            .map(|i| Rect::from_bounds(i as f64 - 4.0, -1.0, i as f64 - 2.0, 1.0))
            .collect();
        rects[2] = nan_rect();
        let p = Point::new(0.0, 0.0);
        let q = Rect::from_bounds(-1.0, -0.5, 1.0, 0.5);
        for n in 0..=10usize {
            let ids: Vec<u32> = (0..n).map(|i| ((i * 7) % 10) as u32).collect();
            let mut want_p = Vec::new();
            rects_contain_point_scalar(&rects, &ids, p, &mut want_p);
            let mut want_q = Vec::new();
            rects_intersect_query_scalar(&rects, &ids, &q, &mut want_q);
            for (i, &id) in ids.iter().enumerate() {
                if id == 2 {
                    assert!(!want_p[i] && !want_q[i], "NaN sentinel accepted");
                }
            }
            for d in KernelDispatch::all_available() {
                let mut got_p = Vec::new();
                rects_contain_point(d, &rects, &ids, p, &mut got_p);
                assert_eq!(got_p, want_p, "{d:?} point n={n}");
                let mut got_q = Vec::new();
                rects_intersect_query(d, &rects, &ids, &q, &mut got_q);
                assert_eq!(got_q, want_q, "{d:?} window n={n}");
            }
        }
    }
}

//! # msj-geom — geometry kernel for the multi-step spatial join
//!
//! This crate provides the planar geometry substrate shared by the
//! reproduction of *"Multi-Step Processing of Spatial Joins"* (Brinkhoff,
//! Kriegel, Schneider, Seeger; SIGMOD 1994):
//!
//! * [`Point`], [`Rect`] (the minimum bounding rectangle), [`Segment`];
//! * orientation predicates with a numeric collinearity band
//!   ([`predicates`]);
//! * simple [`Polygon`]s and [`PolygonWithHoles`] regions with closed-region
//!   membership semantics;
//! * convex hulls ([`hull`]), minimum-area oriented rectangles
//!   ([`calipers`]), and convex clipping / SAT intersection tests
//!   ([`clip`]);
//! * structural validators ([`validate`]) used by tests and the data
//!   generator;
//! * the execution plumbing shared by every join path ([`exec`]): the
//!   `Sync` pair-consumer protocol and thread-count resolution, plus the
//!   cooperative [`CancelToken`] every backend polls at batch boundaries
//!   ([`cancel`]);
//! * runtime-dispatched wide kernels for the hot loops ([`kernels`]):
//!   SoA MBR scans, MER fast-accept and probe masks, with a scalar
//!   reference path selectable via [`KernelDispatch`].
//!
//! All coordinates are `f64`. Every region predicate in this workspace uses
//! *closed* semantics: touching boundaries intersect and containment counts
//! as intersection, matching the intersection join of the paper.

pub mod bytes;
pub mod calipers;
pub mod cancel;
pub mod clip;
pub mod exec;
pub mod hull;
pub mod kernels;
pub mod object;
pub mod point;
pub mod polygon;
pub mod predicates;
pub mod rect;
pub mod segment;
pub mod svg;
pub mod validate;
pub mod wkt;

pub use bytes::{fnv1a64, fnv1a64_update, AlignedBuf, PAGE_SIZE};
pub use calipers::{min_area_rect, OrientedRect};
pub use cancel::{CancelReason, CancelToken};
pub use clip::{clip_convex, convex_intersect, convex_intersection_area, ring_area};
pub use exec::{
    panic_message, resolve_threads, FnConsumer, PairBatchBuffer, PairConsumer, PairSink,
    WorkerPanic,
};
pub use hull::{convex_contains_point, convex_hull};
pub use kernels::KernelDispatch;
pub use object::{ObjectId, RelHandle, Relation, SpatialObject};
pub use point::Point;
pub use polygon::{Polygon, PolygonError, PolygonWithHoles};
pub use predicates::{collinear, orient2d, orient2d_raw, Orientation};
pub use rect::Rect;
pub use segment::Segment;
pub use svg::{Style, SvgCanvas};
pub use validate::{is_simple, region_is_valid};
pub use wkt::{parse_polygon, parse_regions, read_relation, to_wkt, write_relation, WktError};

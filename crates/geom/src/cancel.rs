//! Cooperative cancellation shared by every join path.
//!
//! A [`CancelToken`] is a cheaply clonable handle over one shared flag
//! plus an optional wall-clock deadline. Producers and sinks poll it at
//! *batch* boundaries — a partition tile, a traversal chunk, one
//! `batch_pairs` classification run — so an over-deadline join stops
//! within one batch of work rather than running to completion. The token
//! lives here, in the lowest common dependency, because both Step-1
//! backends (`msj-sam`, `msj-partition`) and the execution engine
//! (`msj-core`) poll the same token.
//!
//! Polling is a single relaxed atomic load when no deadline is armed;
//! with a deadline the poll also compares `Instant::now()` against the
//! precomputed expiry and latches the flag on first expiry, so later
//! polls are back to the one load.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Why a cancelled token was cancelled: an explicit [`CancelToken::cancel`]
/// call, or an armed deadline that expired.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CancelReason {
    /// [`CancelToken::cancel`] was called.
    Explicit,
    /// The armed deadline elapsed before the work finished.
    DeadlineExpired,
}

#[derive(Debug)]
struct Shared {
    cancelled: AtomicBool,
    /// Set (once) when the cancellation came from deadline expiry rather
    /// than an explicit `cancel()` call.
    expired: AtomicBool,
    /// Wall-clock instant the token was created — failure reporting
    /// measures elapsed time against this.
    started: Instant,
    deadline: Option<Instant>,
}

/// A shared cancellation handle: one atomic flag plus an optional
/// deadline. Clones observe the same state.
#[derive(Debug, Clone)]
pub struct CancelToken {
    shared: Arc<Shared>,
}

impl Default for CancelToken {
    fn default() -> Self {
        CancelToken::new()
    }
}

impl CancelToken {
    /// A fresh token with no deadline; cancels only via [`cancel`](Self::cancel).
    pub fn new() -> Self {
        CancelToken {
            shared: Arc::new(Shared {
                cancelled: AtomicBool::new(false),
                expired: AtomicBool::new(false),
                started: Instant::now(),
                deadline: None,
            }),
        }
    }

    /// A fresh token whose deadline is `timeout` from now.
    pub fn with_deadline(timeout: Duration) -> Self {
        let now = Instant::now();
        CancelToken {
            shared: Arc::new(Shared {
                cancelled: AtomicBool::new(false),
                expired: AtomicBool::new(false),
                started: now,
                deadline: Some(now + timeout),
            }),
        }
    }

    /// Requests cancellation. Idempotent; visible to every clone.
    pub fn cancel(&self) {
        self.shared.cancelled.store(true, Ordering::Release);
    }

    /// Polls the token: `true` once cancellation was requested or the
    /// deadline expired. This is the batch-boundary check — one relaxed
    /// load on the fast path.
    #[inline]
    pub fn is_cancelled(&self) -> bool {
        if self.shared.cancelled.load(Ordering::Relaxed) {
            return true;
        }
        if let Some(deadline) = self.shared.deadline {
            if Instant::now() >= deadline {
                // Latch, so subsequent polls skip the clock read and the
                // reason is distinguishable from an explicit cancel.
                self.shared.expired.store(true, Ordering::Relaxed);
                self.shared.cancelled.store(true, Ordering::Release);
                return true;
            }
        }
        false
    }

    /// Why the token is cancelled, or `None` while it is live. Call after
    /// [`is_cancelled`](Self::is_cancelled) returned `true`.
    pub fn reason(&self) -> Option<CancelReason> {
        if !self.shared.cancelled.load(Ordering::Acquire) {
            return None;
        }
        if self.shared.expired.load(Ordering::Relaxed) {
            Some(CancelReason::DeadlineExpired)
        } else {
            Some(CancelReason::Explicit)
        }
    }

    /// Wall-clock time since the token was created.
    pub fn elapsed(&self) -> Duration {
        self.shared.started.elapsed()
    }

    /// The armed deadline's remaining budget, if any (zero once expired).
    pub fn remaining(&self) -> Option<Duration> {
        self.shared
            .deadline
            .map(|d| d.saturating_duration_since(Instant::now()))
    }

    /// Whether a deadline is armed on this token.
    pub fn has_deadline(&self) -> bool {
        self.shared.deadline.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_token_is_live() {
        let token = CancelToken::new();
        assert!(!token.is_cancelled());
        assert_eq!(token.reason(), None);
        assert!(!token.has_deadline());
        assert_eq!(token.remaining(), None);
    }

    #[test]
    fn explicit_cancel_is_visible_to_clones() {
        let token = CancelToken::new();
        let clone = token.clone();
        token.cancel();
        assert!(clone.is_cancelled());
        assert_eq!(clone.reason(), Some(CancelReason::Explicit));
    }

    #[test]
    fn zero_deadline_expires_immediately() {
        let token = CancelToken::with_deadline(Duration::ZERO);
        assert!(token.has_deadline());
        assert!(token.is_cancelled());
        assert_eq!(token.reason(), Some(CancelReason::DeadlineExpired));
    }

    #[test]
    fn generous_deadline_stays_live() {
        let token = CancelToken::with_deadline(Duration::from_secs(3600));
        assert!(!token.is_cancelled());
        assert!(token.remaining().expect("deadline armed") > Duration::from_secs(3000));
    }

    #[test]
    fn explicit_cancel_wins_over_pending_deadline() {
        let token = CancelToken::with_deadline(Duration::from_secs(3600));
        token.cancel();
        assert!(token.is_cancelled());
        assert_eq!(token.reason(), Some(CancelReason::Explicit));
    }
}

//! Well-Known Text (WKT) import/export for polygons and relations.
//!
//! The paper's datasets are cartographic; anyone adopting this library
//! will want to load their own maps. The subset implemented here covers
//! what the join consumes: `POLYGON` (with holes) and `MULTIPOLYGON`
//! (read as one region per polygon), plus serialization back to WKT.
//!
//! The parser is hand-rolled (no dependencies), case-insensitive, and
//! tolerant of arbitrary whitespace. Rings are re-oriented on load by
//! [`Polygon::new`]'s normalization, so either winding convention works.

use crate::point::Point;
use crate::polygon::{Polygon, PolygonError, PolygonWithHoles};
use std::fmt::Write as _;

/// Errors raised while parsing WKT.
#[derive(Debug, Clone, PartialEq)]
pub enum WktError {
    /// Expected a token (e.g. a keyword or parenthesis) that was missing.
    Expected(&'static str, usize),
    /// A coordinate failed to parse as a float.
    BadNumber(usize),
    /// The geometry type is not supported.
    UnsupportedType(String),
    /// A ring was structurally invalid.
    BadRing(PolygonError),
    /// Trailing garbage after the geometry.
    TrailingInput(usize),
}

impl std::fmt::Display for WktError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WktError::Expected(what, pos) => write!(f, "expected {what} at byte {pos}"),
            WktError::BadNumber(pos) => write!(f, "malformed number at byte {pos}"),
            WktError::UnsupportedType(t) => write!(f, "unsupported WKT type {t:?}"),
            WktError::BadRing(e) => write!(f, "invalid ring: {e}"),
            WktError::TrailingInput(pos) => write!(f, "trailing input at byte {pos}"),
        }
    }
}

impl std::error::Error for WktError {}

struct Cursor<'a> {
    src: &'a str,
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(src: &'a str) -> Self {
        Cursor { src, pos: 0 }
    }

    fn skip_ws(&mut self) {
        while self.src[self.pos..].starts_with(|c: char| c.is_ascii_whitespace()) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, token: char) -> bool {
        self.skip_ws();
        if self.src[self.pos..].starts_with(token) {
            self.pos += token.len_utf8();
            true
        } else {
            false
        }
    }

    fn keyword(&mut self) -> String {
        self.skip_ws();
        let start = self.pos;
        while self.src[self.pos..].starts_with(|c: char| c.is_ascii_alphabetic()) {
            self.pos += 1;
        }
        self.src[start..self.pos].to_ascii_uppercase()
    }

    fn number(&mut self) -> Result<f64, WktError> {
        self.skip_ws();
        let start = self.pos;
        while self.src[self.pos..].starts_with(|c: char| c.is_ascii_digit() || "+-.eE".contains(c))
        {
            self.pos += 1;
        }
        self.src[start..self.pos]
            .parse()
            .map_err(|_| WktError::BadNumber(start))
    }

    fn done(&mut self) -> bool {
        self.skip_ws();
        self.pos >= self.src.len()
    }
}

/// Parses one `POLYGON ((...), (...))` body (after the keyword).
fn parse_polygon_body(c: &mut Cursor) -> Result<PolygonWithHoles, WktError> {
    if !c.eat('(') {
        return Err(WktError::Expected("'('", c.pos));
    }
    let mut rings: Vec<Polygon> = Vec::new();
    loop {
        if !c.eat('(') {
            return Err(WktError::Expected("'(' starting a ring", c.pos));
        }
        let mut pts: Vec<Point> = Vec::new();
        loop {
            let x = c.number()?;
            let y = c.number()?;
            pts.push(Point::new(x, y));
            if !c.eat(',') {
                break;
            }
        }
        if !c.eat(')') {
            return Err(WktError::Expected("')' closing a ring", c.pos));
        }
        // WKT closes rings explicitly; drop the repeated last point.
        if pts.len() >= 2 && pts.first() == pts.last() {
            pts.pop();
        }
        rings.push(Polygon::new(pts).map_err(WktError::BadRing)?);
        if !c.eat(',') {
            break;
        }
    }
    if !c.eat(')') {
        return Err(WktError::Expected("')' closing the polygon", c.pos));
    }
    let mut it = rings.into_iter();
    let outer = it.next().expect("at least one ring parsed");
    Ok(PolygonWithHoles::new(outer, it.collect()))
}

/// Parses a single `POLYGON` WKT string into a region.
pub fn parse_polygon(src: &str) -> Result<PolygonWithHoles, WktError> {
    let mut c = Cursor::new(src);
    let kw = c.keyword();
    if kw != "POLYGON" {
        return Err(WktError::UnsupportedType(kw));
    }
    let region = parse_polygon_body(&mut c)?;
    if !c.done() {
        return Err(WktError::TrailingInput(c.pos));
    }
    Ok(region)
}

/// Parses a `POLYGON` or `MULTIPOLYGON` into a list of regions (one per
/// polygon).
pub fn parse_regions(src: &str) -> Result<Vec<PolygonWithHoles>, WktError> {
    let mut c = Cursor::new(src);
    let kw = c.keyword();
    match kw.as_str() {
        "POLYGON" => {
            let r = parse_polygon_body(&mut c)?;
            if !c.done() {
                return Err(WktError::TrailingInput(c.pos));
            }
            Ok(vec![r])
        }
        "MULTIPOLYGON" => {
            if !c.eat('(') {
                return Err(WktError::Expected("'('", c.pos));
            }
            let mut out = Vec::new();
            loop {
                out.push(parse_polygon_body(&mut c)?);
                if !c.eat(',') {
                    break;
                }
            }
            if !c.eat(')') {
                return Err(WktError::Expected("')' closing the multipolygon", c.pos));
            }
            if !c.done() {
                return Err(WktError::TrailingInput(c.pos));
            }
            Ok(out)
        }
        other => Err(WktError::UnsupportedType(other.to_string())),
    }
}

fn write_ring(out: &mut String, ring: &Polygon) {
    out.push('(');
    for (i, p) in ring.vertices().iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        let _ = write!(out, "{} {}", p.x, p.y);
    }
    // Close the ring explicitly, as WKT requires.
    let first = ring.vertices()[0];
    let _ = write!(out, ", {} {}", first.x, first.y);
    out.push(')');
}

/// Serializes a region to `POLYGON` WKT.
pub fn to_wkt(region: &PolygonWithHoles) -> String {
    let mut out = String::from("POLYGON (");
    write_ring(&mut out, region.outer());
    for hole in region.holes() {
        out.push_str(", ");
        write_ring(&mut out, hole);
    }
    out.push(')');
    out
}

/// Reads a relation from line-oriented WKT: one `POLYGON`/`MULTIPOLYGON`
/// per non-empty line (ids assigned sequentially; a multipolygon
/// contributes one object per polygon). Lines starting with `#` are
/// comments.
pub fn read_relation<R: std::io::BufRead>(reader: R) -> Result<crate::object::Relation, WktError> {
    let mut regions = Vec::new();
    for line in reader.lines() {
        let line = line.map_err(|_| WktError::Expected("readable input", 0))?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        regions.extend(parse_regions(trimmed)?);
    }
    Ok(crate::object::Relation::from_regions(regions))
}

/// Writes a relation as line-oriented WKT (one `POLYGON` per object).
pub fn write_relation<W: std::io::Write>(
    writer: &mut W,
    relation: &crate::object::Relation,
) -> std::io::Result<()> {
    for o in relation.iter() {
        writeln!(writer, "{}", to_wkt(&o.region))?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_simple_polygon() {
        let r = parse_polygon("POLYGON ((0 0, 4 0, 4 4, 0 4, 0 0))").unwrap();
        assert_eq!(r.area(), 16.0);
        assert_eq!(r.num_vertices(), 4);
        assert!(r.holes().is_empty());
    }

    #[test]
    fn parse_polygon_with_hole() {
        let r = parse_polygon("polygon((0 0, 10 0, 10 10, 0 10, 0 0), (3 3, 7 3, 7 7, 3 7, 3 3))")
            .unwrap();
        assert_eq!(r.area(), 100.0 - 16.0);
        assert_eq!(r.holes().len(), 1);
        assert!(!r.contains_point(Point::new(5.0, 5.0)));
        assert!(r.contains_point(Point::new(1.0, 1.0)));
    }

    #[test]
    fn parse_multipolygon() {
        let rs = parse_regions(
            "MULTIPOLYGON (((0 0, 1 0, 1 1, 0 1, 0 0)), ((5 5, 7 5, 7 7, 5 7, 5 5)))",
        )
        .unwrap();
        assert_eq!(rs.len(), 2);
        assert_eq!(rs[0].area(), 1.0);
        assert_eq!(rs[1].area(), 4.0);
    }

    #[test]
    fn scientific_notation_and_whitespace() {
        let r = parse_polygon("POLYGON\n(\t( 0 0 , 1e1 0, 1E1 1.5e1, 0 15, 0 0 ) )").unwrap();
        assert_eq!(r.area(), 150.0);
    }

    #[test]
    fn unclosed_ring_is_accepted() {
        // Some producers omit the closing point; we tolerate that.
        let r = parse_polygon("POLYGON ((0 0, 2 0, 2 2, 0 2))").unwrap();
        assert_eq!(r.area(), 4.0);
    }

    #[test]
    fn error_cases() {
        assert!(matches!(
            parse_polygon("LINESTRING (0 0, 1 1)"),
            Err(WktError::UnsupportedType(_))
        ));
        assert!(matches!(
            parse_polygon("POLYGON (0 0, 1 1)"),
            Err(WktError::Expected(_, _))
        ));
        assert!(matches!(
            parse_polygon("POLYGON ((0 0, 1 x, 1 1, 0 0))"),
            Err(WktError::BadNumber(_))
        ));
        assert!(matches!(
            parse_polygon("POLYGON ((0 0, 1 0, 1 1, 0 0)) extra"),
            Err(WktError::TrailingInput(_))
        ));
        // Degenerate ring (zero area).
        assert!(matches!(
            parse_polygon("POLYGON ((0 0, 1 1, 2 2, 0 0))"),
            Err(WktError::BadRing(_))
        ));
    }

    #[test]
    fn roundtrip_preserves_geometry() {
        let original =
            parse_polygon("POLYGON ((0 0, 10 0, 10 10, 0 10, 0 0), (2 2, 4 2, 4 4, 2 4, 2 2))")
                .unwrap();
        let wkt = to_wkt(&original);
        let reparsed = parse_polygon(&wkt).unwrap();
        assert_eq!(original.area(), reparsed.area());
        assert_eq!(original.num_vertices(), reparsed.num_vertices());
        assert_eq!(original.holes().len(), reparsed.holes().len());
    }

    #[test]
    fn relation_roundtrip_through_wkt_lines() {
        use crate::object::Relation;
        let rel = Relation::from_regions(vec![
            parse_polygon("POLYGON ((0 0, 2 0, 2 2, 0 2, 0 0))").unwrap(),
            parse_polygon("POLYGON ((5 5, 9 5, 9 9, 5 9, 5 5), (6 6, 7 6, 7 7, 6 7, 6 6))")
                .unwrap(),
        ]);
        let mut buf = Vec::new();
        write_relation(&mut buf, &rel).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert_eq!(text.lines().count(), 2);
        let reparsed = read_relation(std::io::Cursor::new(text)).unwrap();
        assert_eq!(reparsed.len(), 2);
        assert_eq!(reparsed.object(1).region.holes().len(), 1);
        assert!((reparsed.object(0).area() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn read_relation_skips_comments_and_blank_lines() {
        let text = "# a comment\n\nPOLYGON ((0 0, 1 0, 1 1, 0 1, 0 0))\n\n";
        let rel = read_relation(std::io::Cursor::new(text)).unwrap();
        assert_eq!(rel.len(), 1);
    }

    #[test]
    fn read_relation_expands_multipolygons() {
        let text = "MULTIPOLYGON (((0 0, 1 0, 1 1, 0 1, 0 0)), ((3 3, 4 3, 4 4, 3 4, 3 3)))";
        let rel = read_relation(std::io::Cursor::new(text)).unwrap();
        assert_eq!(rel.len(), 2);
        assert_eq!(rel.object(1).id, 1);
    }

    #[test]
    fn roundtrip_of_generated_blob() {
        // Orientation normalization makes the roundtrip exact on vertices.
        let poly = Polygon::new(vec![
            Point::new(0.5, 0.25),
            Point::new(3.75, -1.5),
            Point::new(5.0, 2.125),
            Point::new(2.5, 4.0),
        ])
        .unwrap();
        let region: PolygonWithHoles = poly.into();
        let reparsed = parse_polygon(&to_wkt(&region)).unwrap();
        assert_eq!(region.outer().vertices(), reparsed.outer().vertices());
    }
}

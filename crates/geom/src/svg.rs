//! Minimal SVG rendering of regions and relations — a debugging and
//! presentation aid (maps, approximation overlays) with no dependencies.

use crate::object::Relation;
use crate::point::Point;
use crate::polygon::PolygonWithHoles;
use crate::rect::Rect;
use std::fmt::Write as _;

/// Style of one rendered shape.
#[derive(Debug, Clone)]
pub struct Style {
    /// Fill color (CSS), e.g. `"#d0e0ff"` or `"none"`.
    pub fill: String,
    /// Stroke color (CSS).
    pub stroke: String,
    /// Stroke width in user units (scaled coordinates).
    pub stroke_width: f64,
}

impl Default for Style {
    fn default() -> Self {
        Style {
            fill: "#d9e4f1".into(),
            stroke: "#4a6785".into(),
            stroke_width: 1.0,
        }
    }
}

impl Style {
    /// An outline-only style.
    pub fn outline(stroke: &str, width: f64) -> Style {
        Style {
            fill: "none".into(),
            stroke: stroke.into(),
            stroke_width: width,
        }
    }
}

/// An SVG canvas mapping a world rectangle onto a pixel viewport
/// (y flipped so "north" is up).
#[derive(Debug)]
pub struct SvgCanvas {
    world: Rect,
    width: f64,
    height: f64,
    body: String,
}

impl SvgCanvas {
    /// Creates a canvas of `width` pixels; the height follows the world
    /// aspect ratio.
    pub fn new(world: Rect, width: f64) -> Self {
        let height = width * world.height() / world.width().max(f64::MIN_POSITIVE);
        SvgCanvas {
            world,
            width,
            height,
            body: String::new(),
        }
    }

    fn map(&self, p: Point) -> (f64, f64) {
        let sx = self.width / self.world.width();
        let sy = self.height / self.world.height();
        (
            (p.x - self.world.xmin()) * sx,
            (self.world.ymax() - p.y) * sy,
        )
    }

    fn path_of_ring(&self, ring: &[Point]) -> String {
        let mut d = String::new();
        for (i, &p) in ring.iter().enumerate() {
            let (x, y) = self.map(p);
            let _ = write!(d, "{}{x:.2},{y:.2} ", if i == 0 { "M" } else { "L" });
        }
        d.push('Z');
        d
    }

    /// Draws a polygonal region; holes are rendered via the even-odd fill
    /// rule.
    pub fn region(&mut self, region: &PolygonWithHoles, style: &Style) {
        let mut d = self.path_of_ring(region.outer().vertices());
        for hole in region.holes() {
            d.push(' ');
            d.push_str(&self.path_of_ring(hole.vertices()));
        }
        let _ = writeln!(
            self.body,
            r#"<path d="{d}" fill="{}" stroke="{}" stroke-width="{}" fill-rule="evenodd"/>"#,
            style.fill, style.stroke, style.stroke_width
        );
    }

    /// Draws an arbitrary closed ring.
    pub fn ring(&mut self, ring: &[Point], style: &Style) {
        if ring.len() < 2 {
            return;
        }
        let d = self.path_of_ring(ring);
        let _ = writeln!(
            self.body,
            r#"<path d="{d}" fill="{}" stroke="{}" stroke-width="{}"/>"#,
            style.fill, style.stroke, style.stroke_width
        );
    }

    /// Draws an axis-parallel rectangle.
    pub fn rect(&mut self, r: &Rect, style: &Style) {
        self.ring(&r.corners(), style);
    }

    /// Draws a whole relation.
    pub fn relation(&mut self, rel: &Relation, style: &Style) {
        for o in rel.iter() {
            self.region(&o.region, style);
        }
    }

    /// Draws a text label at a world position.
    pub fn label(&mut self, at: Point, text: &str, size: f64) {
        let (x, y) = self.map(at);
        let _ = writeln!(
            self.body,
            r#"<text x="{x:.1}" y="{y:.1}" font-family="monospace" font-size="{size}">{text}</text>"#
        );
    }

    /// Finishes the document.
    pub fn finish(self) -> String {
        format!(
            "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{:.0}\" height=\"{:.0}\" \
             viewBox=\"0 0 {:.0} {:.0}\">\n<rect width=\"100%\" height=\"100%\" fill=\"white\"/>\n{}</svg>\n",
            self.width, self.height, self.width, self.height, self.body
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::polygon::Polygon;

    fn square(x: f64, y: f64, s: f64) -> PolygonWithHoles {
        Polygon::new(vec![
            Point::new(x, y),
            Point::new(x + s, y),
            Point::new(x + s, y + s),
            Point::new(x, y + s),
        ])
        .unwrap()
        .into()
    }

    #[test]
    fn canvas_produces_valid_looking_svg() {
        let mut c = SvgCanvas::new(Rect::from_bounds(0.0, 0.0, 100.0, 50.0), 400.0);
        c.region(&square(10.0, 10.0, 20.0), &Style::default());
        c.rect(
            &Rect::from_bounds(0.0, 0.0, 100.0, 50.0),
            &Style::outline("#000", 0.5),
        );
        c.label(Point::new(5.0, 45.0), "map", 12.0);
        let svg = c.finish();
        assert!(svg.starts_with("<svg"));
        assert!(svg.ends_with("</svg>\n"));
        assert_eq!(svg.matches("<path").count(), 2);
        assert!(svg.contains("<text"));
        // Aspect ratio preserved: height = 400 * 50/100 = 200.
        assert!(svg.contains("height=\"200\""));
    }

    #[test]
    fn y_axis_is_flipped() {
        let c = SvgCanvas::new(Rect::from_bounds(0.0, 0.0, 10.0, 10.0), 100.0);
        let (_, y_bottom) = c.map(Point::new(0.0, 0.0));
        let (_, y_top) = c.map(Point::new(0.0, 10.0));
        assert_eq!(y_bottom, 100.0);
        assert_eq!(y_top, 0.0);
    }

    #[test]
    fn holes_render_with_evenodd() {
        let outer = Polygon::new(vec![
            Point::new(0.0, 0.0),
            Point::new(10.0, 0.0),
            Point::new(10.0, 10.0),
            Point::new(0.0, 10.0),
        ])
        .unwrap();
        let hole = Polygon::new(vec![
            Point::new(4.0, 4.0),
            Point::new(6.0, 4.0),
            Point::new(6.0, 6.0),
            Point::new(4.0, 6.0),
        ])
        .unwrap();
        let donut = PolygonWithHoles::new(outer, vec![hole]);
        let mut c = SvgCanvas::new(Rect::from_bounds(0.0, 0.0, 10.0, 10.0), 100.0);
        c.region(&donut, &Style::default());
        let svg = c.finish();
        assert!(svg.contains("evenodd"));
        // Two subpaths in one path element (two 'M' commands).
        let path_line = svg.lines().find(|l| l.contains("<path")).unwrap();
        assert_eq!(path_line.matches('M').count(), 2);
    }
}

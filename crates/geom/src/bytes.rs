//! Byte-level primitives for the persistent Step-0 store: a page-aligned
//! heap buffer and the FNV-1a checksum.
//!
//! `msj-store` serializes every Step-0 artifact (R*-tree node arena,
//! columnar approximation stores, TR* representations, raster interval
//! arenas) into 4096-byte-aligned segment files. The two primitives it
//! needs from the geometry layer live here so the store crate stays a
//! pure codec: [`AlignedBuf`], a `Vec<u8>` whose payload starts on a
//! [`PAGE_SIZE`] boundary (segment files are read back into one of these,
//! mmap-style — one aligned allocation, one read, zero re-parse), and
//! [`fnv1a64`], the checksum recorded per section in the segment manifest
//! and re-verified on every load.

/// The store's page size in bytes. Matches the paper's 4 KB R*-tree page
/// (§3.4) and the common OS page, so an aligned buffer is also
/// mmap-compatible.
pub const PAGE_SIZE: usize = 4096;

/// FNV-1a offset basis (64-bit).
pub const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

/// FNV-1a prime (64-bit).
pub const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// 64-bit FNV-1a hash of `bytes` — the per-section checksum of the
/// persistent store. Same constants as [`fnv1a64_update`] seeded with
/// [`FNV_OFFSET`].
#[inline]
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    fnv1a64_update(FNV_OFFSET, bytes)
}

/// Folds `bytes` into a running FNV-1a state `h` — for checksumming data
/// that arrives in chunks.
#[inline]
pub fn fnv1a64_update(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// A heap buffer whose payload starts on a [`PAGE_SIZE`]-aligned address.
///
/// Implemented safely by over-allocating a `Vec<u8>` by one page and
/// offsetting the payload to the first aligned byte — no `unsafe`, no
/// allocator APIs. The buffer is fixed-size after construction: segment
/// readers allocate one for the whole file, read into it, and decode in
/// place.
#[derive(Debug)]
pub struct AlignedBuf {
    raw: Vec<u8>,
    offset: usize,
    len: usize,
}

impl AlignedBuf {
    /// A zeroed buffer of `len` bytes starting on a page boundary.
    pub fn zeroed(len: usize) -> Self {
        let raw = vec![0u8; len + PAGE_SIZE];
        let offset = {
            let addr = raw.as_ptr() as usize;
            (PAGE_SIZE - addr % PAGE_SIZE) % PAGE_SIZE
        };
        AlignedBuf { raw, offset, len }
    }

    /// Number of payload bytes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the payload is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The payload, starting on a page-aligned address.
    #[inline]
    pub fn as_slice(&self) -> &[u8] {
        &self.raw[self.offset..self.offset + self.len]
    }

    /// Mutable payload, starting on a page-aligned address.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [u8] {
        &mut self.raw[self.offset..self.offset + self.len]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aligned_buf_is_page_aligned_and_sized() {
        for len in [0usize, 1, 17, PAGE_SIZE, PAGE_SIZE + 1, 3 * PAGE_SIZE] {
            let mut buf = AlignedBuf::zeroed(len);
            assert_eq!(buf.len(), len);
            assert_eq!(buf.as_slice().len(), len);
            if len > 0 {
                assert_eq!(buf.as_slice().as_ptr() as usize % PAGE_SIZE, 0);
                buf.as_mut_slice()[len - 1] = 0xAB;
                assert_eq!(buf.as_slice()[len - 1], 0xAB);
            }
        }
    }

    #[test]
    fn fnv_matches_known_vectors() {
        // Standard FNV-1a test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn fnv_update_chunks_agree_with_one_shot() {
        let data = b"multi-step processing of spatial joins";
        let whole = fnv1a64(data);
        let mut h = FNV_OFFSET;
        for chunk in data.chunks(7) {
            h = fnv1a64_update(h, chunk);
        }
        assert_eq!(h, whole);
    }
}

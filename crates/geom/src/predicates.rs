//! Orientation predicates.
//!
//! All higher-level tests (segment intersection, point-in-polygon, hulls)
//! reduce to the sign of the 2×2 determinant `orient2d`. We evaluate it in
//! `f64` with a relative error bound: results whose magnitude falls below
//! the bound are reported as [`Orientation::Collinear`]. This is not a full
//! exact-arithmetic predicate, but it makes the measure-zero degenerate
//! configurations produced by the synthetic data generators behave
//! deterministically instead of flickering with rounding noise.

use crate::point::Point;

/// The orientation of the ordered point triple `(a, b, c)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Orientation {
    /// `c` lies to the left of the directed line `a -> b`.
    CounterClockwise,
    /// `c` lies to the right of the directed line `a -> b`.
    Clockwise,
    /// The three points are (numerically) collinear.
    Collinear,
}

/// Relative error bound for the orientation determinant.
///
/// `(3 + 16ε)ε` is the standard forward error bound of the two-product
/// difference used by Shewchuk's adaptive predicates; we use it as the
/// collinearity threshold.
const ORIENT_EPS: f64 = 3.3306690738754716e-16;

/// Signed double area of the triangle `(a, b, c)`.
///
/// Positive iff the triple is counter-clockwise.
#[inline]
pub fn orient2d_raw(a: Point, b: Point, c: Point) -> f64 {
    (b.x - a.x) * (c.y - a.y) - (b.y - a.y) * (c.x - a.x)
}

/// Orientation of the triple `(a, b, c)` with a numeric collinearity band.
pub fn orient2d(a: Point, b: Point, c: Point) -> Orientation {
    let det_left = (b.x - a.x) * (c.y - a.y);
    let det_right = (b.y - a.y) * (c.x - a.x);
    let det = det_left - det_right;
    let bound = ORIENT_EPS * (det_left.abs() + det_right.abs());
    if det > bound {
        Orientation::CounterClockwise
    } else if det < -bound {
        Orientation::Clockwise
    } else {
        Orientation::Collinear
    }
}

/// Whether the triple is numerically collinear.
#[inline]
pub fn collinear(a: Point, b: Point, c: Point) -> bool {
    orient2d(a, b, c) == Orientation::Collinear
}

/// Whether `p` lies within the closed axis-aligned box spanned by `a`
/// and `b`. Combined with collinearity this yields the on-segment test.
#[inline]
pub fn in_box(a: Point, b: Point, p: Point) -> bool {
    a.x.min(b.x) <= p.x && p.x <= a.x.max(b.x) && a.y.min(b.y) <= p.y && p.y <= a.y.max(b.y)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orientation_basics() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(1.0, 0.0);
        assert_eq!(
            orient2d(a, b, Point::new(0.5, 1.0)),
            Orientation::CounterClockwise
        );
        assert_eq!(
            orient2d(a, b, Point::new(0.5, -1.0)),
            Orientation::Clockwise
        );
        assert_eq!(orient2d(a, b, Point::new(2.0, 0.0)), Orientation::Collinear);
    }

    #[test]
    fn orientation_is_antisymmetric() {
        let a = Point::new(0.3, 0.7);
        let b = Point::new(-1.2, 4.1);
        let c = Point::new(2.5, -0.4);
        let o1 = orient2d(a, b, c);
        let o2 = orient2d(b, a, c);
        match o1 {
            Orientation::CounterClockwise => assert_eq!(o2, Orientation::Clockwise),
            Orientation::Clockwise => assert_eq!(o2, Orientation::CounterClockwise),
            Orientation::Collinear => assert_eq!(o2, Orientation::Collinear),
        }
    }

    #[test]
    fn near_collinear_is_collinear() {
        // Points on a line y = x with a sub-epsilon perturbation.
        let a = Point::new(0.0, 0.0);
        let b = Point::new(1e8, 1e8);
        let c = Point::new(5e7, 5e7 + 1e-9);
        // The raw determinant is tiny relative to the products involved.
        assert_eq!(orient2d(a, b, c), Orientation::Collinear);
    }

    #[test]
    fn in_box_test() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(2.0, 2.0);
        assert!(in_box(a, b, Point::new(1.0, 1.0)));
        assert!(in_box(b, a, Point::new(1.0, 1.0)));
        assert!(in_box(a, b, b));
        assert!(!in_box(a, b, Point::new(3.0, 1.0)));
    }
}

//! Convex hull computation (Andrew's monotone chain, `O(n log n)`).
//!
//! The hull is both one of the conservative approximations evaluated in §3
//! and the starting point for the rotated MBR and the minimum bounding
//! m-corner.

use crate::point::Point;
use crate::predicates::orient2d_raw;

/// Computes the convex hull of a point set.
///
/// Returns the hull vertices in counter-clockwise order with collinear
/// points on the hull boundary removed. For fewer than three distinct
/// non-collinear points the degenerate hull (the distinct points, up to
/// two of them) is returned.
pub fn convex_hull(points: &[Point]) -> Vec<Point> {
    let mut pts: Vec<Point> = points.to_vec();
    pts.sort_by(|a, b| {
        a.x.partial_cmp(&b.x)
            .expect("finite coordinates")
            .then(a.y.partial_cmp(&b.y).expect("finite coordinates"))
    });
    pts.dedup();
    let n = pts.len();
    if n < 3 {
        return pts;
    }

    let mut hull: Vec<Point> = Vec::with_capacity(2 * n);
    // Lower hull.
    for &p in &pts {
        while hull.len() >= 2 && orient2d_raw(hull[hull.len() - 2], hull[hull.len() - 1], p) <= 0.0
        {
            hull.pop();
        }
        hull.push(p);
    }
    // Upper hull.
    let lower_len = hull.len() + 1;
    for &p in pts.iter().rev().skip(1) {
        while hull.len() >= lower_len
            && orient2d_raw(hull[hull.len() - 2], hull[hull.len() - 1], p) <= 0.0
        {
            hull.pop();
        }
        hull.push(p);
    }
    hull.pop(); // The first point is repeated at the end.
    if hull.len() < 3 {
        // All points collinear: return the two extremes.
        return vec![pts[0], pts[n - 1]];
    }
    hull
}

/// Whether `p` lies in the closed convex region given by CCW hull vertices.
pub fn convex_contains_point(hull: &[Point], p: Point) -> bool {
    if hull.len() < 3 {
        return match hull {
            [a] => *a == p,
            [a, b] => crate::segment::Segment::new(*a, *b).contains_point(p),
            _ => false,
        };
    }
    let n = hull.len();
    for i in 0..n {
        // Allow a tolerance scaled to the edge for boundary points.
        let a = hull[i];
        let b = hull[(i + 1) % n];
        let side = orient2d_raw(a, b, p);
        let scale = (b - a).norm() * ((p - a).norm() + 1.0);
        if side < -1e-12 * scale {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hull_of_square_with_interior_points() {
        let pts = vec![
            Point::new(0.0, 0.0),
            Point::new(2.0, 0.0),
            Point::new(2.0, 2.0),
            Point::new(0.0, 2.0),
            Point::new(1.0, 1.0),
            Point::new(0.5, 0.5),
        ];
        let h = convex_hull(&pts);
        assert_eq!(h.len(), 4);
        // CCW orientation.
        let area2: f64 = (0..h.len()).map(|i| h[i].cross(h[(i + 1) % h.len()])).sum();
        assert!(area2 > 0.0);
    }

    #[test]
    fn hull_removes_collinear_boundary_points() {
        let pts = vec![
            Point::new(0.0, 0.0),
            Point::new(1.0, 0.0),
            Point::new(2.0, 0.0),
            Point::new(2.0, 2.0),
            Point::new(0.0, 2.0),
        ];
        let h = convex_hull(&pts);
        assert_eq!(h.len(), 4);
        assert!(!h.contains(&Point::new(1.0, 0.0)));
    }

    #[test]
    fn hull_of_collinear_points_is_two_extremes() {
        let pts = vec![
            Point::new(0.0, 0.0),
            Point::new(1.0, 1.0),
            Point::new(3.0, 3.0),
            Point::new(2.0, 2.0),
        ];
        let h = convex_hull(&pts);
        assert_eq!(h, vec![Point::new(0.0, 0.0), Point::new(3.0, 3.0)]);
    }

    #[test]
    fn hull_handles_duplicates() {
        let pts = vec![
            Point::new(0.0, 0.0),
            Point::new(0.0, 0.0),
            Point::new(1.0, 0.0),
            Point::new(0.0, 1.0),
            Point::new(1.0, 0.0),
        ];
        let h = convex_hull(&pts);
        assert_eq!(h.len(), 3);
    }

    #[test]
    fn convex_containment() {
        let h = convex_hull(&[
            Point::new(0.0, 0.0),
            Point::new(4.0, 0.0),
            Point::new(4.0, 4.0),
            Point::new(0.0, 4.0),
        ]);
        assert!(convex_contains_point(&h, Point::new(2.0, 2.0)));
        assert!(convex_contains_point(&h, Point::new(0.0, 0.0)));
        assert!(convex_contains_point(&h, Point::new(2.0, 0.0)));
        assert!(!convex_contains_point(&h, Point::new(5.0, 2.0)));
        assert!(!convex_contains_point(&h, Point::new(-0.01, 2.0)));
    }

    #[test]
    fn hull_contains_all_input_points() {
        // Deterministic pseudo-random points.
        let mut pts = Vec::new();
        let mut x: u64 = 0x9E3779B97F4A7C15;
        for _ in 0..200 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let a = ((x >> 11) as f64 / (1u64 << 53) as f64) * 10.0;
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let b = ((x >> 11) as f64 / (1u64 << 53) as f64) * 10.0;
            pts.push(Point::new(a, b));
        }
        let h = convex_hull(&pts);
        for &p in &pts {
            assert!(convex_contains_point(&h, p), "hull must contain {p:?}");
        }
    }
}

//! Line segments and the *edge intersection test* — the innermost
//! operation of both the quadratic and the plane-sweep exact-geometry
//! algorithms (Table 6, weight 15).

use crate::point::Point;
use crate::predicates::{in_box, orient2d, orient2d_raw, Orientation};
use crate::rect::Rect;

/// A closed line segment between two endpoints.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Segment {
    pub a: Point,
    pub b: Point,
}

impl Segment {
    #[inline]
    pub const fn new(a: Point, b: Point) -> Self {
        Segment { a, b }
    }

    /// Direction vector `b - a`.
    #[inline]
    pub fn dir(&self) -> Point {
        self.b - self.a
    }

    /// Segment length.
    #[inline]
    pub fn len(&self) -> f64 {
        self.a.dist(self.b)
    }

    /// Whether the segment is degenerate (both endpoints equal).
    #[inline]
    pub fn is_degenerate(&self) -> bool {
        self.a == self.b
    }

    /// The MBR of the segment.
    #[inline]
    pub fn mbr(&self) -> Rect {
        Rect::new(self.a, self.b)
    }

    /// Whether `p` lies on the closed segment.
    pub fn contains_point(&self, p: Point) -> bool {
        orient2d(self.a, self.b, p) == Orientation::Collinear && in_box(self.a, self.b, p)
    }

    /// Closed segment intersection test (shared endpoints and touching
    /// count). This is the paper's *edge intersection test*.
    pub fn intersects(&self, other: &Segment) -> bool {
        let o1 = orient2d(self.a, self.b, other.a);
        let o2 = orient2d(self.a, self.b, other.b);
        let o3 = orient2d(other.a, other.b, self.a);
        let o4 = orient2d(other.a, other.b, self.b);

        // Proper crossing: the endpoints of each segment straddle the other.
        if o1 != o2
            && o3 != o4
            && o1 != Orientation::Collinear
            && o2 != Orientation::Collinear
            && o3 != Orientation::Collinear
            && o4 != Orientation::Collinear
        {
            return true;
        }
        // Collinear / touching cases.
        (o1 == Orientation::Collinear && in_box(self.a, self.b, other.a))
            || (o2 == Orientation::Collinear && in_box(self.a, self.b, other.b))
            || (o3 == Orientation::Collinear && in_box(other.a, other.b, self.a))
            || (o4 == Orientation::Collinear && in_box(other.a, other.b, self.b))
    }

    /// *Proper* intersection test: the open segments cross in exactly one
    /// interior point. Touching at endpoints or collinear overlap does not
    /// count. Used by the polygon simplicity validator, where adjacent
    /// edges legitimately share endpoints.
    pub fn intersects_properly(&self, other: &Segment) -> bool {
        let o1 = orient2d(self.a, self.b, other.a);
        let o2 = orient2d(self.a, self.b, other.b);
        let o3 = orient2d(other.a, other.b, self.a);
        let o4 = orient2d(other.a, other.b, self.b);
        o1 != o2
            && o3 != o4
            && o1 != Orientation::Collinear
            && o2 != Orientation::Collinear
            && o3 != Orientation::Collinear
            && o4 != Orientation::Collinear
    }

    /// The intersection point of the two supporting *lines*, or `None` when
    /// they are (numerically) parallel. Used when merging hull edges into a
    /// bounding m-corner.
    pub fn line_intersection(&self, other: &Segment) -> Option<Point> {
        let d1 = self.dir();
        let d2 = other.dir();
        let denom = d1.cross(d2);
        // Scale-relative parallelism check.
        if denom.abs() <= 1e-12 * d1.norm() * d2.norm() {
            return None;
        }
        let t = (other.a - self.a).cross(d2) / denom;
        Some(self.a + d1 * t)
    }

    /// The intersection point of the two closed segments when they cross in
    /// a single point; `None` when disjoint or collinear-overlapping.
    pub fn segment_intersection(&self, other: &Segment) -> Option<Point> {
        if !self.intersects(other) {
            return None;
        }
        let p = self.line_intersection(other)?;
        Some(p)
    }

    /// The point's y coordinate on the supporting line at abscissa `x`.
    ///
    /// For a vertical segment the lower y is returned. This is the basis of
    /// the plane-sweep *position test* (Table 6, weight 36).
    pub fn y_at(&self, x: f64) -> f64 {
        let dx = self.b.x - self.a.x;
        if dx.abs() < f64::EPSILON * (self.a.x.abs() + self.b.x.abs() + 1.0) {
            return self.a.y.min(self.b.y);
        }
        let t = (x - self.a.x) / dx;
        self.a.y + t * (self.b.y - self.a.y)
    }

    /// Closed segment vs closed rectangle intersection (the plane-sweep
    /// *edge-rectangle intersection test*, Table 6 weight 28).
    pub fn intersects_rect(&self, rect: &Rect) -> bool {
        // Quick accept: an endpoint inside.
        if rect.contains_point(self.a) || rect.contains_point(self.b) {
            return true;
        }
        // Quick reject: bounding boxes disjoint.
        if !self.mbr().intersects(rect) {
            return false;
        }
        // Otherwise the segment intersects iff it crosses one of the four
        // rectangle edges.
        let [c0, c1, c2, c3] = rect.corners();
        self.intersects(&Segment::new(c0, c1))
            || self.intersects(&Segment::new(c1, c2))
            || self.intersects(&Segment::new(c2, c3))
            || self.intersects(&Segment::new(c3, c0))
    }

    /// Minimum distance from a point to the closed segment.
    pub fn dist_to_point(&self, p: Point) -> f64 {
        let d = self.dir();
        let len_sq = d.norm_sq();
        if len_sq == 0.0 {
            return self.a.dist(p);
        }
        let t = ((p - self.a).dot(d) / len_sq).clamp(0.0, 1.0);
        (self.a + d * t).dist(p)
    }

    /// Signed double area contribution of the directed edge (for shoelace
    /// sums): `a.cross(b)`.
    #[inline]
    pub fn shoelace(&self) -> f64 {
        self.a.cross(self.b)
    }

    /// Signed double triangle area `(a, b, p)`; positive when `p` is left
    /// of the directed edge.
    #[inline]
    pub fn side_of(&self, p: Point) -> f64 {
        orient2d_raw(self.a, self.b, p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(ax: f64, ay: f64, bx: f64, by: f64) -> Segment {
        Segment::new(Point::new(ax, ay), Point::new(bx, by))
    }

    #[test]
    fn proper_crossing() {
        let e1 = s(0.0, 0.0, 2.0, 2.0);
        let e2 = s(0.0, 2.0, 2.0, 0.0);
        assert!(e1.intersects(&e2));
        assert!(e1.intersects_properly(&e2));
        let p = e1.segment_intersection(&e2).unwrap();
        assert!((p.x - 1.0).abs() < 1e-12 && (p.y - 1.0).abs() < 1e-12);
    }

    #[test]
    fn touching_at_endpoint_is_closed_but_not_proper() {
        let e1 = s(0.0, 0.0, 1.0, 1.0);
        let e2 = s(1.0, 1.0, 2.0, 0.0);
        assert!(e1.intersects(&e2));
        assert!(!e1.intersects_properly(&e2));
    }

    #[test]
    fn t_junction_is_closed_but_not_proper() {
        let e1 = s(0.0, 0.0, 2.0, 0.0);
        let e2 = s(1.0, 0.0, 1.0, 3.0);
        assert!(e1.intersects(&e2));
        assert!(!e1.intersects_properly(&e2));
    }

    #[test]
    fn disjoint_segments() {
        let e1 = s(0.0, 0.0, 1.0, 0.0);
        let e2 = s(0.0, 1.0, 1.0, 1.0);
        assert!(!e1.intersects(&e2));
        assert!(e1.segment_intersection(&e2).is_none());
    }

    #[test]
    fn collinear_overlap_intersects() {
        let e1 = s(0.0, 0.0, 2.0, 0.0);
        let e2 = s(1.0, 0.0, 3.0, 0.0);
        assert!(e1.intersects(&e2));
        // But no unique intersection point exists.
        assert!(e1.line_intersection(&e2).is_none());
    }

    #[test]
    fn collinear_disjoint_does_not_intersect() {
        let e1 = s(0.0, 0.0, 1.0, 0.0);
        let e2 = s(2.0, 0.0, 3.0, 0.0);
        assert!(!e1.intersects(&e2));
    }

    #[test]
    fn line_intersection_of_parallels_is_none() {
        let e1 = s(0.0, 0.0, 1.0, 1.0);
        let e2 = s(0.0, 1.0, 1.0, 2.0);
        assert!(e1.line_intersection(&e2).is_none());
    }

    #[test]
    fn line_intersection_beyond_segment_bounds() {
        let e1 = s(0.0, 0.0, 1.0, 0.0);
        let e2 = s(3.0, -1.0, 3.0, 1.0);
        // Segments don't intersect, lines do at (3, 0).
        assert!(!e1.intersects(&e2));
        let p = e1.line_intersection(&e2).unwrap();
        assert!((p.x - 3.0).abs() < 1e-12 && p.y.abs() < 1e-12);
    }

    #[test]
    fn y_at_interpolates() {
        let e = s(0.0, 0.0, 2.0, 4.0);
        assert_eq!(e.y_at(1.0), 2.0);
        assert_eq!(e.y_at(0.0), 0.0);
        let v = s(1.0, 3.0, 1.0, 7.0);
        assert_eq!(v.y_at(1.0), 3.0);
    }

    #[test]
    fn rect_intersection_cases() {
        let r = Rect::from_bounds(0.0, 0.0, 2.0, 2.0);
        assert!(s(1.0, 1.0, 5.0, 5.0).intersects_rect(&r)); // endpoint inside
        assert!(s(-1.0, 1.0, 3.0, 1.0).intersects_rect(&r)); // crosses through
        assert!(s(-1.0, -1.0, 3.0, 3.0).intersects_rect(&r)); // diagonal through
        assert!(!s(3.0, 0.0, 4.0, 1.0).intersects_rect(&r)); // fully outside
                                                             // Outside but with overlapping bounding boxes.
        assert!(!s(2.5, -1.0, 4.0, 3.0).intersects_rect(&r));
        // Touching a corner.
        assert!(s(2.0, 2.0, 3.0, 3.0).intersects_rect(&r));
    }

    #[test]
    fn point_distance() {
        let e = s(0.0, 0.0, 2.0, 0.0);
        assert_eq!(e.dist_to_point(Point::new(1.0, 1.0)), 1.0);
        assert_eq!(e.dist_to_point(Point::new(-1.0, 0.0)), 1.0);
        assert_eq!(
            e.dist_to_point(Point::new(3.0, 4.0)),
            Point::new(2.0, 0.0).dist(Point::new(3.0, 4.0))
        );
    }

    #[test]
    fn contains_point_on_segment() {
        let e = s(0.0, 0.0, 2.0, 2.0);
        assert!(e.contains_point(Point::new(1.0, 1.0)));
        assert!(e.contains_point(e.a));
        assert!(!e.contains_point(Point::new(3.0, 3.0)));
        assert!(!e.contains_point(Point::new(1.0, 1.1)));
    }
}

//! Calibration check: prints the Table 1 / Figure 2 statistics of the
//! synthetic Europe/BW datasets (used when tuning the blob generator).
//!
//! ```text
//! cargo run -p msj-datagen --release --example check_nfa
//! ```

fn main() {
    for (name, rel) in [
        ("Europe", msj_datagen::europe_like(1)),
        ("BW", msj_datagen::bw_like(1)),
    ] {
        let s = msj_datagen::mbr_false_area_stats(&rel);
        let (m, mn, mx) = rel.vertex_stats();
        println!(
            "{name}: nfa mean={:.3} min={:.3} max={:.3}  vertices mean={:.1} min={mn} max={mx}",
            s.mean, s.min, s.max, m
        );
    }
    println!("paper Table 1: Europe 0.91 (0.25..20.13), BW 1.02 (0.38..3.48)");
    println!("paper Figure 2: Europe m 84 (4..869), BW m 527 (6..2087)");
}

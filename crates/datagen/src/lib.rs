//! # msj-datagen — synthetic cartography-like datasets
//!
//! The paper evaluates on proprietary cartographic relations (*Europe*:
//! 810 EC county polygons; *BW*: 374 Baden-Württemberg municipality
//! polygons; plus two ≈130 000-object relations from [BKS 93a]). Those maps
//! are not available, so this crate generates seeded synthetic substitutes
//! whose *statistics* — vertex-count distribution, MBR normalized false
//! area, pairwise candidate/hit ratios — are calibrated against the values
//! the paper publishes (Figure 2, Table 1, Table 2). See DESIGN.md §3 for
//! the substitution rationale.
//!
//! Main entry points:
//! * [`relations::europe_like`], [`relations::bw_like`] — the two
//!   evaluation maps;
//! * [`relations::test_series`] / [`relations::all_series`] — the four join
//!   series Europe A/B, BW A/B (strategies of §3.1);
//! * [`relations::large_relation`] — the §3.4/§5 bulk relations;
//! * [`blob::blob`] — the underlying single-polygon generator.

pub mod blob;
pub mod calibrate;
pub mod holes;
pub mod layout;
pub mod relations;
pub mod series;

pub use blob::{blob, BlobParams};
pub use calibrate::{mbr_false_area_stats, Stats};
pub use holes::{carto_with_holes, carve_hole, with_holes, HoleParams};
pub use layout::{generate_relation, LayoutParams};
pub use relations::{
    all_series, bw_like, europe_like, large_relation, skewed_carto, small_carto, test_series,
    world, BaseMap, Strategy,
};
pub use series::{strategy_a, strategy_b, TestSeries};

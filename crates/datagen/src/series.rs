//! Join test series following the paper's two generation strategies
//! (§3.1):
//!
//! * **Strategy A** — the second relation is the first one shifted in x-
//!   and y-direction.
//! * **Strategy B** — both relations are derived from the base relation by
//!   randomly shifting and rotating every object, then scaling so that the
//!   sum of object areas equals the area of the data space.

use msj_geom::{Point, Rect, Relation, SpatialObject};
use rand::Rng;

/// A named pair of relations to be joined.
#[derive(Debug, Clone)]
pub struct TestSeries {
    pub name: String,
    pub a: Relation,
    pub b: Relation,
    /// The data space the series lives in.
    pub world: Rect,
}

/// Strategy A: `B` is `A` translated by the given fractions of the average
/// object MBR extent.
///
/// The paper does not give the shift amount; shifting by about half an
/// average object diameter makes most objects overlap their own copy and a
/// couple of neighbours, which reproduces Table 2's per-object candidate
/// ratios.
pub fn strategy_a(
    name: &str,
    base: &Relation,
    world: Rect,
    frac_x: f64,
    frac_y: f64,
) -> TestSeries {
    let n = base.len().max(1) as f64;
    let avg_w: f64 = base.iter().map(|o| o.mbr().width()).sum::<f64>() / n;
    let avg_h: f64 = base.iter().map(|o| o.mbr().height()).sum::<f64>() / n;
    let shift = Point::new(frac_x * avg_w, frac_y * avg_h);
    let b = Relation::new(
        base.iter()
            .map(|o| SpatialObject::new(o.id, o.region.translated(shift)))
            .collect(),
    );
    TestSeries {
        name: name.to_string(),
        a: base.clone(),
        b,
        world,
    }
}

/// Strategy B: two relations, each a randomly shifted and rotated copy of
/// the base objects, rescaled so that Σ object areas = area of the data
/// space.
pub fn strategy_b<R: Rng + ?Sized>(
    name: &str,
    base: &Relation,
    world: Rect,
    rng: &mut R,
) -> TestSeries {
    let a = scatter(base, world, rng);
    let b = scatter(base, world, rng);
    TestSeries {
        name: name.to_string(),
        a,
        b,
        world,
    }
}

/// Randomly shifts and rotates every object within `world` and rescales
/// all objects by a common factor so their total area equals the world
/// area.
fn scatter<R: Rng + ?Sized>(base: &Relation, world: Rect, rng: &mut R) -> Relation {
    let total = base.total_area();
    let factor = if total > 0.0 {
        (world.area() / total).sqrt()
    } else {
        1.0
    };
    let objects = base
        .iter()
        .map(|o| {
            let centroid = o.region.outer().centroid();
            let angle = rng.gen_range(0.0..std::f64::consts::TAU);
            let scaled = o
                .region
                .rotated_about(centroid, angle)
                .scaled_about(centroid, factor);
            // Choose a target center such that the object's MBR stays
            // inside the world where possible.
            let mbr = scaled.mbr();
            let (hw, hh) = (0.5 * mbr.width(), 0.5 * mbr.height());
            let cx = sample_coord(
                rng,
                world.xmin() + hw,
                world.xmax() - hw,
                world.xmin(),
                world.xmax(),
            );
            let cy = sample_coord(
                rng,
                world.ymin() + hh,
                world.ymax() - hh,
                world.ymin(),
                world.ymax(),
            );
            let target = Point::new(cx, cy);
            let shift = target - mbr.center();
            SpatialObject::new(o.id, scaled.translated(shift))
        })
        .collect();
    Relation::new(objects)
}

/// Uniform sample in `[lo, hi]`, falling back to the world mid-range when
/// the object is wider than the world.
fn sample_coord<R: Rng + ?Sized>(rng: &mut R, lo: f64, hi: f64, wlo: f64, whi: f64) -> f64 {
    if lo < hi {
        rng.gen_range(lo..hi)
    } else {
        0.5 * (wlo + whi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blob::BlobParams;
    use crate::layout::{generate_relation, LayoutParams};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn base() -> (Relation, Rect) {
        let world = Rect::from_bounds(0.0, 0.0, 100.0, 100.0);
        let params = LayoutParams {
            world,
            count: 36,
            vertices_mu_ln: 24f64.ln(),
            vertices_sigma_ln: 0.4,
            vertices_min: 8,
            vertices_max: 64,
            radius_frac: 0.42,
            shape: BlobParams::default(),
        };
        let mut rng = StdRng::seed_from_u64(100);
        (generate_relation(&mut rng, &params), world)
    }

    #[test]
    fn strategy_a_shifts_all_objects_equally() {
        let (rel, world) = base();
        let s = strategy_a("t", &rel, world, 0.5, 0.5);
        assert_eq!(s.a.len(), s.b.len());
        let d0 = s.b.object(0).mbr().center() - s.a.object(0).mbr().center();
        for id in 0..rel.len() as u32 {
            let d = s.b.object(id).mbr().center() - s.a.object(id).mbr().center();
            assert!((d - d0).norm() < 1e-9);
        }
        // Shift is positive and object-scale.
        assert!(d0.x > 0.0 && d0.y > 0.0);
    }

    #[test]
    fn strategy_a_preserves_geometry() {
        let (rel, world) = base();
        let s = strategy_a("t", &rel, world, 0.5, 0.5);
        for id in 0..rel.len() as u32 {
            assert!((s.a.object(id).area() - s.b.object(id).area()).abs() < 1e-9);
            assert_eq!(s.a.object(id).num_vertices(), s.b.object(id).num_vertices());
        }
    }

    #[test]
    fn strategy_b_scales_total_area_to_world() {
        let (rel, world) = base();
        let mut rng = StdRng::seed_from_u64(7);
        let s = strategy_b("t", &rel, world, &mut rng);
        let ta = s.a.total_area();
        let tb = s.b.total_area();
        assert!(
            (ta - world.area()).abs() / world.area() < 1e-6,
            "total area {ta}"
        );
        assert!(
            (tb - world.area()).abs() / world.area() < 1e-6,
            "total area {tb}"
        );
    }

    #[test]
    fn strategy_b_objects_mostly_inside_world() {
        let (rel, world) = base();
        let mut rng = StdRng::seed_from_u64(8);
        let s = strategy_b("t", &rel, world, &mut rng);
        let slack = world.inflated(0.25 * world.width());
        for o in s.a.iter().chain(s.b.iter()) {
            assert!(slack.contains_rect(&o.mbr()), "{:?}", o.mbr());
        }
    }

    #[test]
    fn strategy_b_relations_differ() {
        let (rel, world) = base();
        let mut rng = StdRng::seed_from_u64(9);
        let s = strategy_b("t", &rel, world, &mut rng);
        // The two scatters should not coincide.
        let same = (0..rel.len() as u32)
            .filter(|&id| {
                (s.a.object(id).mbr().center() - s.b.object(id).mbr().center()).norm() < 1e-9
            })
            .count();
        assert!(same < rel.len() / 4);
    }
}

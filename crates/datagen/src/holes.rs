//! Polygons with holes (§2.1: "the holes might represent areas such as
//! lakes").
//!
//! A hole is a small star-shaped blob centered at the outer polygon's
//! centroid, scaled to a fraction of the centroid's boundary clearance —
//! which guarantees strict containment without a validation loop.

use crate::blob::{blob, BlobParams};
use msj_geom::{Point, Polygon, PolygonWithHoles, Relation, SpatialObject};
use rand::Rng;

/// Parameters for carving a hole ("lake") into a polygon.
#[derive(Debug, Clone)]
pub struct HoleParams {
    /// Fraction of objects that receive a hole.
    pub fraction: f64,
    /// Hole radius as a fraction of the centroid's boundary clearance
    /// (must stay below 1.0 for guaranteed containment).
    pub radius_frac: f64,
    /// Vertex count of the hole ring.
    pub vertices: usize,
}

impl Default for HoleParams {
    fn default() -> Self {
        HoleParams {
            fraction: 0.3,
            radius_frac: 0.45,
            vertices: 12,
        }
    }
}

/// Minimum distance from `p` to the polygon boundary.
fn boundary_clearance(poly: &Polygon, p: Point) -> f64 {
    poly.edges()
        .map(|e| e.dist_to_point(p))
        .fold(f64::INFINITY, f64::min)
}

/// Attempts to carve one hole into `outer`; returns a hole-free region
/// when the centroid is unusable (outside a concave outline or with
/// negligible clearance).
pub fn carve_hole<R: Rng + ?Sized>(
    rng: &mut R,
    outer: Polygon,
    params: &HoleParams,
) -> PolygonWithHoles {
    let centroid = outer.centroid();
    if !outer.contains_point_strict(centroid) {
        return PolygonWithHoles::simple(outer);
    }
    let clearance = boundary_clearance(&outer, centroid);
    let mbr = outer.mbr();
    if clearance <= 1e-6 * mbr.width().max(mbr.height()) {
        return PolygonWithHoles::simple(outer);
    }
    let hole_shape = BlobParams {
        radius: params.radius_frac.min(0.9) * clearance / 1.7, // pre-stretch bound
        vertices: params.vertices.max(3),
        spikes: 0,
        lobe_amp: 0.2,
        mid_amp: 0.15,
        rough_amp: 0.08,
        max_elongation: 1.3,
        ..BlobParams::default()
    };
    let hole = blob(rng, centroid, &hole_shape);
    // Defensive check: the blob radius function is clamped to ≤ 4·radius
    // before stretching; verify actual containment and fall back rather
    // than emit an invalid region.
    let max_reach = hole
        .vertices()
        .iter()
        .map(|&v| v.dist(centroid))
        .fold(0.0f64, f64::max);
    if max_reach >= clearance {
        return PolygonWithHoles::simple(outer);
    }
    PolygonWithHoles::new(outer, vec![hole])
}

/// Adds holes to a fraction of a relation's objects (new relation, same
/// ids and outer rings).
pub fn with_holes<R: Rng + ?Sized>(
    rng: &mut R,
    relation: &Relation,
    params: &HoleParams,
) -> Relation {
    Relation::new(
        relation
            .iter()
            .map(|o| {
                let outer = o.region.outer().clone();
                let region = if o.region.holes().is_empty() && rng.gen_bool(params.fraction) {
                    carve_hole(rng, outer, params)
                } else {
                    o.region.clone()
                };
                SpatialObject::new(o.id, region)
            })
            .collect(),
    )
}

/// A cartography-like relation where a fraction of objects have lakes.
pub fn carto_with_holes(count: usize, mean_vertices: f64, seed: u64) -> Relation {
    use rand::SeedableRng;
    let base = crate::relations::small_carto(count, mean_vertices, seed);
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed ^ 0x4C414B45); // "LAKE"
    with_holes(&mut rng, &base, &HoleParams::default())
}

#[cfg(test)]
mod tests {
    use super::*;
    use msj_geom::validate::region_is_valid;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn carved_regions_are_structurally_valid() {
        let mut rng = StdRng::seed_from_u64(2);
        for i in 0..30 {
            let outer = blob(
                &mut rng,
                Point::new(i as f64 * 20.0, 0.0),
                &BlobParams {
                    vertices: 24 + i,
                    ..BlobParams::default()
                },
            );
            let mut rng2 = StdRng::seed_from_u64(100 + i as u64);
            let region = carve_hole(&mut rng2, outer, &HoleParams::default());
            assert!(region_is_valid(&region), "object {i} invalid");
            if let Some(hole) = region.holes().first() {
                assert!(hole.area() < region.outer().area());
                assert!(region.area() < region.outer().area());
            }
        }
    }

    #[test]
    fn fraction_controls_hole_rate() {
        let rel = carto_with_holes(120, 24.0, 9);
        let holed = rel.iter().filter(|o| !o.region.holes().is_empty()).count();
        // Default fraction 0.3 with fallback losses: expect a broad band.
        assert!(
            (12..=60).contains(&holed),
            "holed objects {holed} outside plausible band"
        );
        // Vertex counts include the hole rings.
        let with_hole = rel.iter().find(|o| !o.region.holes().is_empty()).unwrap();
        assert!(with_hole.num_vertices() > with_hole.region.outer().len());
    }

    #[test]
    fn hole_excludes_area_from_membership() {
        let rel = carto_with_holes(60, 24.0, 10);
        let holed = rel.iter().find(|o| !o.region.holes().is_empty()).unwrap();
        let hole_centroid = holed.region.holes()[0].centroid();
        // A point strictly inside the hole ring is outside the region
        // (hole rings are star-shaped around their centroid, so the
        // centroid is interior to the hole).
        assert!(!holed.region.contains_point(hole_centroid));
        assert!(holed.region.outer().contains_point(hole_centroid));
    }

    #[test]
    fn deterministic_per_seed() {
        let a = carto_with_holes(40, 20.0, 11);
        let b = carto_with_holes(40, 20.0, 11);
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(x.region.holes().len(), y.region.holes().len());
        }
    }
}

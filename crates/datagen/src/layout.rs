//! Spatial layout of generated objects into a relation.
//!
//! Cartographic relations (counties, municipalities) essentially tile
//! their map: objects rarely overlap each other, but their MBRs do. We
//! mimic this by assigning blobs to jittered grid cells.

use crate::blob::{blob, sample_vertex_count, BlobParams};
use msj_geom::{Point, Rect, Relation, SpatialObject};
use rand::Rng;

/// Layout parameters for a generated relation.
#[derive(Debug, Clone)]
pub struct LayoutParams {
    /// Data space to fill.
    pub world: Rect,
    /// Number of objects.
    pub count: usize,
    /// Log-space mean of the vertex count distribution.
    pub vertices_mu_ln: f64,
    /// Log-space standard deviation of the vertex count distribution.
    pub vertices_sigma_ln: f64,
    /// Vertex count bounds.
    pub vertices_min: usize,
    pub vertices_max: usize,
    /// Blob radius relative to the grid cell size (0.5 ≈ touching
    /// neighbours).
    pub radius_frac: f64,
    /// Shape parameters (radius is overwritten per object).
    pub shape: BlobParams,
}

impl LayoutParams {
    /// Grid dimensions (columns, rows) chosen to be as square as possible
    /// while providing at least `count` cells.
    pub fn grid_dims(&self) -> (usize, usize) {
        let aspect = self.world.width() / self.world.height();
        let cols = ((self.count as f64 * aspect).sqrt().ceil() as usize).max(1);
        let rows = self.count.div_ceil(cols);
        (cols, rows)
    }
}

/// Generates a relation by placing one blob per jittered grid cell.
pub fn generate_relation<R: Rng + ?Sized>(rng: &mut R, params: &LayoutParams) -> Relation {
    let (cols, rows) = params.grid_dims();
    let cell_w = params.world.width() / cols as f64;
    let cell_h = params.world.height() / rows as f64;
    let cell = cell_w.min(cell_h);

    let mut objects = Vec::with_capacity(params.count);
    'outer: for row in 0..rows {
        for col in 0..cols {
            if objects.len() >= params.count {
                break 'outer;
            }
            let cx = params.world.xmin() + (col as f64 + 0.5) * cell_w;
            let cy = params.world.ymin() + (row as f64 + 0.5) * cell_h;
            let jitter = 0.25 * cell;
            let center = Point::new(
                cx + rng.gen_range(-jitter..jitter),
                cy + rng.gen_range(-jitter..jitter),
            );
            let vertices = sample_vertex_count(
                rng,
                params.vertices_mu_ln,
                params.vertices_sigma_ln,
                params.vertices_min,
                params.vertices_max,
            );
            let shape = BlobParams {
                radius: params.radius_frac * cell * rng.gen_range(0.7..1.3),
                vertices,
                ..params.shape.clone()
            };
            let poly = blob(rng, center, &shape);
            objects.push(SpatialObject::new(objects.len() as u32, poly.into()));
        }
    }
    Relation::new(objects)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn params(count: usize) -> LayoutParams {
        LayoutParams {
            world: Rect::from_bounds(0.0, 0.0, 100.0, 100.0),
            count,
            vertices_mu_ln: 30f64.ln(),
            vertices_sigma_ln: 0.5,
            vertices_min: 6,
            vertices_max: 200,
            radius_frac: 0.45,
            shape: BlobParams::default(),
        }
    }

    #[test]
    fn generates_requested_count() {
        let mut rng = StdRng::seed_from_u64(1);
        let rel = generate_relation(&mut rng, &params(137));
        assert_eq!(rel.len(), 137);
    }

    #[test]
    fn objects_have_sequential_ids() {
        let mut rng = StdRng::seed_from_u64(2);
        let rel = generate_relation(&mut rng, &params(20));
        for (i, o) in rel.iter().enumerate() {
            assert_eq!(o.id as usize, i);
        }
    }

    #[test]
    fn objects_stay_near_the_world() {
        let mut rng = StdRng::seed_from_u64(3);
        let p = params(50);
        let rel = generate_relation(&mut rng, &p);
        // Blobs may poke out of the world a bit (spikes), but not far.
        let bounds = rel.bounding_rect().unwrap();
        let slack = 0.35 * p.world.width();
        assert!(bounds.xmin() > p.world.xmin() - slack);
        assert!(bounds.xmax() < p.world.xmax() + slack);
        assert!(bounds.ymin() > p.world.ymin() - slack);
        assert!(bounds.ymax() < p.world.ymax() + slack);
    }

    #[test]
    fn vertex_counts_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(4);
        let p = params(60);
        let rel = generate_relation(&mut rng, &p);
        for o in rel.iter() {
            assert!((p.vertices_min..=p.vertices_max).contains(&o.num_vertices()));
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let p = params(25);
        let r1 = generate_relation(&mut StdRng::seed_from_u64(5), &p);
        let r2 = generate_relation(&mut StdRng::seed_from_u64(5), &p);
        for (a, b) in r1.iter().zip(r2.iter()) {
            assert_eq!(a.region.outer().vertices(), b.region.outer().vertices());
        }
    }

    #[test]
    fn grid_dims_cover_count() {
        let p = params(810);
        let (c, r) = p.grid_dims();
        assert!(c * r >= 810);
    }
}

//! Canonical datasets mirroring the paper's experimental relations.
//!
//! * [`europe_like`] — 810 objects, average ≈ 84 vertices (Figure 2,
//!   relation *Europe*: the counties of the European Community in 1989);
//! * [`bw_like`] — 374 objects, average ≈ 527 vertices (Figure 2, relation
//!   *BW*: municipalities of Baden-Württemberg);
//! * [`large_relation`] — the ≈130 000-object relations of §3.4/§3.5/§5
//!   (scaled down by default; pass the full count for the paper setting);
//! * [`test_series`] — the four join series Europe A/B and BW A/B.
//!
//! All generation is deterministic per seed.

use crate::blob::BlobParams;
use crate::layout::{generate_relation, LayoutParams};
use crate::series::{strategy_a, strategy_b, TestSeries};
use msj_geom::{Rect, Relation};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The square data space used by all canonical datasets.
pub fn world() -> Rect {
    Rect::from_bounds(0.0, 0.0, 1000.0, 1000.0)
}

/// Shape parameters shared by the cartography-like datasets, calibrated so
/// the MBR's mean normalized false area lands in the paper's 0.9–1.0 band
/// (Table 1).
fn carto_shape() -> BlobParams {
    BlobParams {
        radius: 1.0, // overwritten per object
        vertices: 64,
        lobe_amp: 0.27,
        mid_amp: 0.22,
        rough_amp: 0.10,
        spikes: 3,
        spike_amp: 0.55,
        spike_width: 0.22,
        max_elongation: 1.7,
    }
}

/// The *Europe*-like relation: 810 objects, vertex counts clamped to
/// `[4, 869]` with mean ≈ 84.
pub fn europe_like(seed: u64) -> Relation {
    let params = LayoutParams {
        world: world(),
        count: 810,
        vertices_mu_ln: 62f64.ln(),
        vertices_sigma_ln: 0.85,
        vertices_min: 4,
        vertices_max: 869,
        radius_frac: 0.46,
        shape: carto_shape(),
    };
    generate_relation(&mut StdRng::seed_from_u64(seed), &params)
}

/// The *BW*-like relation: 374 objects, vertex counts clamped to
/// `[6, 2087]` with mean ≈ 527.
pub fn bw_like(seed: u64) -> Relation {
    let params = LayoutParams {
        world: world(),
        count: 374,
        vertices_mu_ln: 420f64.ln(),
        vertices_sigma_ln: 0.72,
        vertices_min: 6,
        vertices_max: 2087,
        radius_frac: 0.46,
        shape: carto_shape(),
    };
    generate_relation(&mut StdRng::seed_from_u64(seed), &params)
}

/// The reduced-size cartographic layout shared by [`small_carto`] and
/// [`skewed_carto`] — one place for the calibration constants, so the
/// even and skewed workloads stay statistically comparable.
fn small_carto_params(world: Rect, count: usize, mean_vertices: f64) -> LayoutParams {
    LayoutParams {
        world,
        count,
        vertices_mu_ln: (mean_vertices * 0.72).max(4.0).ln(),
        vertices_sigma_ln: 0.6,
        vertices_min: 4,
        vertices_max: (mean_vertices * 8.0) as usize,
        radius_frac: 0.46,
        shape: carto_shape(),
    }
}

/// A reduced-size relation with the same shape statistics as
/// [`europe_like`] / [`bw_like`] — convenient for fast tests.
pub fn small_carto(count: usize, mean_vertices: f64, seed: u64) -> Relation {
    let params = small_carto_params(world(), count, mean_vertices);
    generate_relation(&mut StdRng::seed_from_u64(seed), &params)
}

/// One of the two large relations of §3.4/§3.5/§5.
///
/// The paper uses ≈130 000 objects; `count` scales the experiment. To keep
/// the join selectivity of the paper (≈0.66 intersecting MBR pairs per
/// object), the two relations are laid out as *partially offset* tilings:
/// pass `which = 0` and `which = 1` with the same seed.
pub fn large_relation(count: usize, which: u8, seed: u64) -> Relation {
    let params = LayoutParams {
        world: world(),
        count,
        vertices_mu_ln: 24f64.ln(),
        vertices_sigma_ln: 0.45,
        vertices_min: 6,
        vertices_max: 120,
        // Sparser blobs: fewer candidate pairs per object, mimicking the
        // paper's 86k pairs over 130k objects.
        radius_frac: 0.34,
        shape: BlobParams {
            spikes: 2,
            spike_amp: 0.9,
            ..carto_shape()
        },
    };
    let mut rng = StdRng::seed_from_u64(seed ^ (0x9E37_79B9 * (which as u64 + 1)));
    let rel = generate_relation(&mut rng, &params);
    if which == 0 {
        rel
    } else {
        // Offset the second tiling by ~40% of a cell so pairs straddle.
        let (cols, _) = params.grid_dims();
        let cell = params.world.width() / cols as f64;
        let shift = msj_geom::Point::new(0.4 * cell, 0.4 * cell);
        Relation::new(
            rel.iter()
                .map(|o| msj_geom::SpatialObject::new(o.id, o.region.translated(shift)))
                .collect(),
        )
    }
}

/// A deliberately *skewed* cartographic relation: three quarters of the
/// objects packed into a hot corner covering 20 % × 20 % of the world,
/// the rest spread across the full data space.
///
/// Uniform spatial partitioning degrades on exactly this shape — a few
/// tiles carry most of the candidates — which makes it the stress
/// workload for the fused execution engine's load balancing. Shape
/// statistics match [`small_carto`]; generation is deterministic per
/// seed.
pub fn skewed_carto(count: usize, mean_vertices: f64, seed: u64) -> Relation {
    let w = world();
    let hot_count = count * 3 / 4;
    let hot_world = Rect::from_bounds(
        w.xmin(),
        w.ymin(),
        w.xmin() + w.width() * 0.2,
        w.ymin() + w.height() * 0.2,
    );
    let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0x5CA1E);
    let hot = generate_relation(
        &mut rng,
        &small_carto_params(hot_world, hot_count, mean_vertices),
    );
    let cold = generate_relation(
        &mut rng,
        &small_carto_params(w, count - hot_count, mean_vertices),
    );
    Relation::new(
        hot.iter()
            .chain(cold.iter())
            .enumerate()
            .map(|(id, o)| msj_geom::SpatialObject::new(id as u32, o.region.clone()))
            .collect(),
    )
}

/// Which base relation a test series is derived from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BaseMap {
    Europe,
    Bw,
}

/// Which generation strategy to apply.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strategy {
    A,
    B,
}

/// Builds one of the four canonical test series (Europe A/B, BW A/B).
pub fn test_series(map: BaseMap, strategy: Strategy, seed: u64) -> TestSeries {
    let base = match map {
        BaseMap::Europe => europe_like(seed),
        BaseMap::Bw => bw_like(seed),
    };
    let name = format!(
        "{} {}",
        match map {
            BaseMap::Europe => "Europe",
            BaseMap::Bw => "BW",
        },
        match strategy {
            Strategy::A => "A",
            Strategy::B => "B",
        }
    );
    match strategy {
        Strategy::A => strategy_a(&name, &base, world(), 0.5, 0.5),
        Strategy::B => {
            let mut rng = StdRng::seed_from_u64(seed.wrapping_add(0xB00B5));
            strategy_b(&name, &base, world(), &mut rng)
        }
    }
}

/// All four canonical series in paper order.
pub fn all_series(seed: u64) -> Vec<TestSeries> {
    vec![
        test_series(BaseMap::Europe, Strategy::A, seed),
        test_series(BaseMap::Europe, Strategy::B, seed),
        test_series(BaseMap::Bw, Strategy::A, seed),
        test_series(BaseMap::Bw, Strategy::B, seed),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn europe_like_matches_figure2_scale() {
        let rel = europe_like(1);
        assert_eq!(rel.len(), 810);
        let (mean, min, max) = rel.vertex_stats();
        assert!(min >= 4 && max <= 869);
        assert!(mean > 55.0 && mean < 115.0, "Europe mean vertices {mean}");
    }

    #[test]
    fn bw_like_matches_figure2_scale() {
        let rel = bw_like(1);
        assert_eq!(rel.len(), 374);
        let (mean, min, max) = rel.vertex_stats();
        assert!(min >= 6 && max <= 2087);
        assert!(mean > 350.0 && mean < 700.0, "BW mean vertices {mean}");
    }

    #[test]
    fn large_relations_are_offset_tilings() {
        let a = large_relation(200, 0, 5);
        let b = large_relation(200, 1, 5);
        assert_eq!(a.len(), 200);
        assert_eq!(b.len(), 200);
        // Same seed, different `which` must differ.
        let d = (a.object(0).mbr().center() - b.object(0).mbr().center()).norm();
        assert!(d > 0.0);
    }

    #[test]
    fn skewed_carto_packs_a_hot_corner() {
        let rel = skewed_carto(200, 24.0, 7);
        assert_eq!(rel.len(), 200);
        // Ids are contiguous (Relation::object indexes by id).
        for (i, o) in rel.iter().enumerate() {
            assert_eq!(o.id, i as u32);
        }
        // The hot three quarters live inside ~20% of the world extent
        // (generous margin for blob radii crossing the region edge).
        let w = world();
        let hot_bound = Rect::from_bounds(
            w.xmin() - 0.05 * w.width(),
            w.ymin() - 0.05 * w.height(),
            w.xmin() + 0.30 * w.width(),
            w.ymin() + 0.30 * w.height(),
        );
        let inside = rel
            .iter()
            .take(150)
            .filter(|o| hot_bound.contains_rect(&o.mbr()))
            .count();
        assert!(inside >= 140, "only {inside}/150 hot objects in corner");
        // Deterministic per seed, distinct across seeds.
        let again = skewed_carto(200, 24.0, 7);
        assert_eq!(
            rel.object(3).region.outer().vertices(),
            again.object(3).region.outer().vertices()
        );
        let other = skewed_carto(200, 24.0, 8);
        assert_ne!(
            rel.object(3).region.outer().vertices(),
            other.object(3).region.outer().vertices()
        );
    }

    #[test]
    fn series_construction() {
        let s = test_series(BaseMap::Europe, Strategy::A, 3);
        assert_eq!(s.name, "Europe A");
        assert_eq!(s.a.len(), 810);
        assert_eq!(s.b.len(), 810);
    }

    #[test]
    fn determinism() {
        let r1 = europe_like(9);
        let r2 = europe_like(9);
        assert_eq!(
            r1.object(5).region.outer().vertices(),
            r2.object(5).region.outer().vertices()
        );
    }
}

//! Calibration statistics: the generator-side measurements used to verify
//! that synthetic datasets match the paper's published shape statistics.

use msj_geom::Relation;

/// Summary statistics `(mean, min, max)` of a sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Stats {
    pub mean: f64,
    pub min: f64,
    pub max: f64,
}

impl Stats {
    pub fn from_samples(samples: &[f64]) -> Option<Stats> {
        if samples.is_empty() {
            return None;
        }
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        let mut sum = 0.0;
        for &s in samples {
            min = min.min(s);
            max = max.max(s);
            sum += s;
        }
        Some(Stats {
            mean: sum / samples.len() as f64,
            min,
            max,
        })
    }
}

/// Normalized false area of the MBR for each object:
/// `(area(MBR) - area(obj)) / area(obj)` — the measure behind Table 1.
pub fn mbr_false_area_samples(rel: &Relation) -> Vec<f64> {
    rel.iter()
        .map(|o| {
            let a = o.area();
            (o.mbr().area() - a) / a
        })
        .collect()
}

/// Table 1 statistics of a relation.
pub fn mbr_false_area_stats(rel: &Relation) -> Stats {
    Stats::from_samples(&mbr_false_area_samples(rel)).expect("non-empty relation")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::relations::{bw_like, europe_like};

    #[test]
    fn stats_of_samples() {
        let s = Stats::from_samples(&[1.0, 3.0, 2.0]).unwrap();
        assert_eq!(s.mean, 2.0);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 3.0);
        assert!(Stats::from_samples(&[]).is_none());
    }

    /// Paper Table 1: Europe ∅ 0.91 (min 0.25, max 20.13). We require the
    /// generator to land in a generous band around the published mean.
    #[test]
    fn europe_false_area_is_calibrated() {
        let s = mbr_false_area_stats(&europe_like(1));
        assert!(
            s.mean > 0.65 && s.mean < 1.35,
            "Europe-like mean normalized false area {:.3} outside calibration band",
            s.mean
        );
        assert!(s.min > 0.0, "all blobs strictly smaller than their MBR");
    }

    /// Paper Table 1: BW ∅ 1.02 (min 0.38, max 3.48).
    #[test]
    fn bw_false_area_is_calibrated() {
        let s = mbr_false_area_stats(&bw_like(1));
        assert!(
            s.mean > 0.65 && s.mean < 1.40,
            "BW-like mean normalized false area {:.3} outside calibration band",
            s.mean
        );
    }
}

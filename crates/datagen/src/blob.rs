//! Generation of single cartography-like polygons ("blobs").
//!
//! Real county/municipality outlines are highly non-convex: the paper
//! measures an average normalized false area of the MBR around 0.9–1.0
//! (Table 1). We reproduce that statistic with star-shaped polygons whose
//! radius function combines low-frequency lobes, mid/high-frequency
//! roughness, a few pronounced "peninsulas" (spikes) and anisotropic
//! stretching. Star-shapedness guarantees simplicity by construction.

use msj_geom::{Point, Polygon};
use rand::Rng;

/// Shape parameters of the blob generator.
///
/// The defaults are calibrated (see `calibrate.rs` tests) so that relations
/// generated with [`crate::relations::europe_like`] /
/// [`crate::relations::bw_like`] match the paper's Table 1 MBR false-area
/// statistics within a tolerance band.
#[derive(Debug, Clone)]
pub struct BlobParams {
    /// Mean radius before anisotropy.
    pub radius: f64,
    /// Number of boundary vertices.
    pub vertices: usize,
    /// Amplitude of the low-frequency lobe noise (frequency 2–3).
    pub lobe_amp: f64,
    /// Amplitude of the mid-frequency noise (frequency 4–7).
    pub mid_amp: f64,
    /// Amplitude of the high-frequency roughness (frequency 8–16).
    pub rough_amp: f64,
    /// Number of spike directions ("peninsulas").
    pub spikes: usize,
    /// Relative amplitude of a spike (radius multiplier − 1).
    pub spike_amp: f64,
    /// Angular half-width of a spike in radians.
    pub spike_width: f64,
    /// Maximum anisotropic stretch factor applied along a random axis.
    pub max_elongation: f64,
}

impl Default for BlobParams {
    fn default() -> Self {
        BlobParams {
            radius: 1.0,
            vertices: 64,
            lobe_amp: 0.27,
            mid_amp: 0.22,
            rough_amp: 0.10,
            spikes: 3,
            spike_amp: 0.55,
            spike_width: 0.22,
            max_elongation: 1.7,
        }
    }
}

/// Generates one blob polygon centered at `center`.
///
/// The polygon is star-shaped around `center` before stretching, hence
/// always simple. Vertices are returned in counter-clockwise order (via
/// `Polygon::new` normalization).
pub fn blob<R: Rng + ?Sized>(rng: &mut R, center: Point, params: &BlobParams) -> Polygon {
    let n = params.vertices.max(3);
    let tau = std::f64::consts::TAU;

    // Harmonic components with random frequency and phase.
    let f1 = rng.gen_range(2..=3) as f64;
    let f2 = rng.gen_range(4..=7) as f64;
    let f3 = rng.gen_range(8..=16) as f64;
    let p1 = rng.gen_range(0.0..tau);
    let p2 = rng.gen_range(0.0..tau);
    let p3 = rng.gen_range(0.0..tau);

    // Spike directions and strengths.
    let spikes: Vec<(f64, f64)> = (0..params.spikes)
        .map(|_| {
            (
                rng.gen_range(0.0..tau),
                params.spike_amp * rng.gen_range(0.5..1.5),
            )
        })
        .collect();

    // Anisotropy: stretch along a random axis.
    let elong = rng.gen_range(1.0..params.max_elongation.max(1.0 + f64::EPSILON));
    let orient = rng.gen_range(0.0..tau);

    // Small per-vertex angular jitter keeps angles strictly increasing.
    let max_jitter = 0.35 / n as f64 * tau;

    let mut vertices = Vec::with_capacity(n);
    for i in 0..n {
        let theta = i as f64 / n as f64 * tau + rng.gen_range(0.0..max_jitter);
        let mut r = 1.0
            + params.lobe_amp * (f1 * theta + p1).sin()
            + params.mid_amp * (f2 * theta + p2).sin()
            + params.rough_amp * (f3 * theta + p3).sin()
            + params.rough_amp * 0.5 * rng.gen_range(-1.0..1.0);
        for &(dir, amp) in &spikes {
            let mut d = (theta - dir).abs() % tau;
            if d > tau / 2.0 {
                d = tau - d;
            }
            let w = params.spike_width;
            r += amp * (-(d * d) / (w * w)).exp();
        }
        r = r.clamp(0.08, 4.0) * params.radius;
        // Stretched star point.
        let unit = Point::new(theta.cos(), theta.sin());
        let stretched = Point::new(unit.x * elong, unit.y).rotated(orient);
        vertices.push(center + stretched * r);
    }
    Polygon::new(vertices).expect("star-shaped blob is a valid polygon")
}

/// Samples a vertex count from a clamped log-normal distribution.
///
/// `mu_ln` and `sigma_ln` are the parameters of the underlying normal in
/// log space; the result is clamped to `[min, max]`. Used to mimic the
/// heavily skewed vertex-count distributions of Figure 2.
pub fn sample_vertex_count<R: Rng + ?Sized>(
    rng: &mut R,
    mu_ln: f64,
    sigma_ln: f64,
    min: usize,
    max: usize,
) -> usize {
    // Box-Muller from two uniforms (keeps us independent of rand_distr).
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
    let m = (mu_ln + sigma_ln * z).exp().round();
    (m as usize).clamp(min, max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use msj_geom::validate::is_simple;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn blobs_are_simple_polygons() {
        let mut rng = StdRng::seed_from_u64(7);
        for i in 0..25 {
            let params = BlobParams {
                vertices: 12 + 7 * i,
                ..BlobParams::default()
            };
            let p = blob(&mut rng, Point::new(0.0, 0.0), &params);
            assert_eq!(p.len(), params.vertices);
            assert!(p.area() > 0.0);
            assert!(is_simple(&p), "blob {i} must be simple");
        }
    }

    #[test]
    fn blob_respects_center_and_scale() {
        let mut rng = StdRng::seed_from_u64(42);
        let params = BlobParams {
            radius: 5.0,
            ..BlobParams::default()
        };
        let c = Point::new(100.0, -50.0);
        let p = blob(&mut rng, c, &params);
        // All vertices within the generous radius bound (4 * elong * r).
        let bound = 4.0 * params.max_elongation * params.radius;
        for &v in p.vertices() {
            assert!(v.dist(c) <= bound);
        }
        // And the blob is "around" the center.
        assert!(p.mbr().contains_point(c));
    }

    #[test]
    fn blob_is_deterministic_for_a_seed() {
        let params = BlobParams::default();
        let p1 = blob(&mut StdRng::seed_from_u64(9), Point::ORIGIN, &params);
        let p2 = blob(&mut StdRng::seed_from_u64(9), Point::ORIGIN, &params);
        assert_eq!(p1.vertices(), p2.vertices());
    }

    #[test]
    fn vertex_count_sampling_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..500 {
            let m = sample_vertex_count(&mut rng, 60f64.ln(), 0.9, 4, 900);
            assert!((4..=900).contains(&m));
        }
    }

    #[test]
    fn vertex_count_mean_is_in_expected_range() {
        let mut rng = StdRng::seed_from_u64(11);
        let n = 2000;
        let mean: f64 = (0..n)
            .map(|_| sample_vertex_count(&mut rng, 60f64.ln(), 0.9, 4, 900) as f64)
            .sum::<f64>()
            / n as f64;
        // Lognormal mean ≈ 60·e^{0.405} ≈ 90, clamping pulls it down a bit.
        assert!(mean > 55.0 && mean < 120.0, "mean vertex count {mean}");
    }
}

//! Per-step wall-clock accumulation shared across worker threads.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// A started wall-clock span; read it with
/// [`elapsed_nanos`](Span::elapsed_nanos).
#[derive(Debug, Clone, Copy)]
pub struct Span(Instant);

impl Span {
    /// Starts the clock.
    #[inline]
    pub fn start() -> Self {
        Span(Instant::now())
    }

    /// Nanoseconds since [`start`](Span::start), saturating at
    /// `u64::MAX`.
    #[inline]
    pub fn elapsed_nanos(&self) -> u64 {
        u64::try_from(self.0.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }
}

/// The pipeline steps a [`StepSpans`] accounts for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Step {
    /// Preprocessing (index/store construction).
    Step0,
    /// MBR join (candidate production).
    Step1,
    /// Geometric filter (includes Step 2a).
    Step2,
    /// Raster-signature pre-filter (⊆ Step 2).
    Step2a,
    /// Exact geometry.
    Step3,
}

impl Step {
    /// All steps, in pipeline order.
    pub const ALL: [Step; 5] = [
        Step::Step0,
        Step::Step1,
        Step::Step2,
        Step::Step2a,
        Step::Step3,
    ];

    /// The step's label (`"step0"` … `"step3"`).
    pub fn name(self) -> &'static str {
        match self {
            Step::Step0 => "step0",
            Step::Step1 => "step1",
            Step::Step2 => "step2",
            Step::Step2a => "step2a",
            Step::Step3 => "step3",
        }
    }

    fn index(self) -> usize {
        match self {
            Step::Step0 => 0,
            Step::Step1 => 1,
            Step::Step2 => 2,
            Step::Step2a => 3,
            Step::Step3 => 4,
        }
    }
}

/// Per-step nanosecond accumulators for one run, shared by reference
/// across every worker thread of that run — relaxed atomic adds, so
/// cross-worker sums happen for free.
#[derive(Debug, Default)]
pub struct StepSpans {
    nanos: [AtomicU64; 5],
}

impl StepSpans {
    pub fn new() -> Self {
        StepSpans::default()
    }

    /// Adds `nanos` to `step`'s accumulator.
    #[inline]
    pub fn add(&self, step: Step, nanos: u64) {
        self.nanos[step.index()].fetch_add(nanos, Ordering::Relaxed);
    }

    /// Stops `span` and adds its elapsed time to `step`.
    #[inline]
    pub fn finish(&self, step: Step, span: Span) {
        self.add(step, span.elapsed_nanos());
    }

    /// `step`'s accumulated nanoseconds.
    pub fn get(&self, step: Step) -> u64 {
        self.nanos[step.index()].load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_accumulate_across_threads() {
        let spans = StepSpans::new();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let spans = &spans;
                scope.spawn(move || {
                    spans.add(Step::Step2, 10);
                    spans.add(Step::Step3, 1);
                });
            }
        });
        assert_eq!(spans.get(Step::Step2), 40);
        assert_eq!(spans.get(Step::Step3), 4);
        assert_eq!(spans.get(Step::Step1), 0);
    }

    #[test]
    fn span_measures_nonnegative_time() {
        let spans = StepSpans::new();
        let t = Span::start();
        spans.finish(Step::Step1, t);
        // Just proves the plumbing; durations are environment-dependent.
        assert!(spans.get(Step::Step1) < u64::MAX);
        assert_eq!(Step::Step2a.name(), "step2a");
        assert_eq!(Step::ALL.len(), 5);
    }
}

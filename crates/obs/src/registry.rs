//! The named-instrument registry and its two exporters.

use crate::metrics::{Counter, Gauge, Histogram, HistogramSnapshot};
use std::collections::BTreeMap;
use std::sync::{Arc, RwLock};

/// Schema tag stamped into every [`EngineSnapshot`] /
/// [`MetricsRegistry::snapshot_json`] document.
pub const SNAPSHOT_SCHEMA: &str = "msj-obs-v1";

/// The canonical instrument key: `name` alone, or
/// `name{label="value",…}` with the labels in the given order.
pub fn metric_key(name: &str, labels: &[(&str, &str)]) -> String {
    if labels.is_empty() {
        return name.to_string();
    }
    let mut key = String::with_capacity(name.len() + 16 * labels.len());
    key.push_str(name);
    key.push('{');
    for (i, (k, v)) in labels.iter().enumerate() {
        if i > 0 {
            key.push(',');
        }
        key.push_str(k);
        key.push_str("=\"");
        key.push_str(v);
        key.push('"');
    }
    key.push('}');
    key
}

struct Entry<T> {
    /// Family name (the part before `{`).
    name: String,
    labels: Vec<(String, String)>,
    inner: Arc<T>,
}

/// Named lock-free instruments, shared by handle.
///
/// `counter`/`gauge`/`histogram` register on first use and return the
/// same `Arc` for the same `(name, labels)` afterwards — callers cache
/// the handle and record through a relaxed atomic, never through the
/// registry lock. [`MetricsRegistry::describe`] attaches HELP text per
/// family; described families render in the exporters even before any
/// sample lands (so a scrape sees the whole schema at zero).
pub struct MetricsRegistry {
    enabled: bool,
    help: RwLock<BTreeMap<String, String>>,
    counters: RwLock<BTreeMap<String, Entry<Counter>>>,
    gauges: RwLock<BTreeMap<String, Entry<Gauge>>>,
    histograms: RwLock<BTreeMap<String, Entry<Histogram>>>,
}

impl Default for MetricsRegistry {
    fn default() -> Self {
        MetricsRegistry::new()
    }
}

fn register<T: Default>(
    map: &RwLock<BTreeMap<String, Entry<T>>>,
    name: &str,
    labels: &[(&str, &str)],
) -> Arc<T> {
    let key = metric_key(name, labels);
    if let Some(entry) = map.read().expect("registry lock poisoned").get(&key) {
        return entry.inner.clone();
    }
    let mut map = map.write().expect("registry lock poisoned");
    map.entry(key)
        .or_insert_with(|| Entry {
            name: name.to_string(),
            labels: labels
                .iter()
                .map(|&(k, v)| (k.to_string(), v.to_string()))
                .collect(),
            inner: Arc::new(T::default()),
        })
        .inner
        .clone()
}

impl MetricsRegistry {
    /// An enabled, empty registry.
    pub fn new() -> Self {
        MetricsRegistry::with_enabled(true)
    }

    /// A registry that remembers whether recording is globally enabled
    /// (callers consult [`MetricsRegistry::is_enabled`] before paying
    /// for clock reads; the instruments themselves always work).
    pub fn with_enabled(enabled: bool) -> Self {
        MetricsRegistry {
            enabled,
            help: RwLock::new(BTreeMap::new()),
            counters: RwLock::new(BTreeMap::new()),
            gauges: RwLock::new(BTreeMap::new()),
            histograms: RwLock::new(BTreeMap::new()),
        }
    }

    /// Whether the owning engine records into this registry.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Attaches HELP text to a metric family (rendered by the
    /// Prometheus exporter).
    pub fn describe(&self, family: &str, help: &str) {
        self.help
            .write()
            .expect("registry lock poisoned")
            .insert(family.to_string(), help.to_string());
    }

    /// The counter registered under `(name, labels)`.
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Counter> {
        register(&self.counters, name, labels)
    }

    /// The gauge registered under `(name, labels)`.
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Gauge> {
        register(&self.gauges, name, labels)
    }

    /// The histogram registered under `(name, labels)`.
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Histogram> {
        register(&self.histograms, name, labels)
    }

    /// A point-in-time copy of every registered instrument.
    pub fn snapshot(&self) -> EngineSnapshot {
        EngineSnapshot {
            schema: SNAPSHOT_SCHEMA.to_string(),
            counters: self
                .counters
                .read()
                .expect("registry lock poisoned")
                .iter()
                .map(|(k, e)| (k.clone(), e.inner.get()))
                .collect(),
            gauges: self
                .gauges
                .read()
                .expect("registry lock poisoned")
                .iter()
                .map(|(k, e)| (k.clone(), e.inner.get()))
                .collect(),
            histograms: self
                .histograms
                .read()
                .expect("registry lock poisoned")
                .iter()
                .map(|(k, e)| (k.clone(), e.inner.snapshot()))
                .collect(),
        }
    }

    /// The schema-versioned JSON export: [`MetricsRegistry::snapshot`]
    /// rendered via [`EngineSnapshot::to_json`].
    pub fn snapshot_json(&self) -> String {
        self.snapshot().to_json()
    }

    /// A Prometheus-style text rendering: `# HELP`/`# TYPE` headers per
    /// family, counters and gauges as plain samples, histograms as
    /// summaries (`{quantile="…"}` samples plus `_count`/`_sum`/`_max`).
    pub fn render_prometheus(&self) -> String {
        let help = self.help.read().expect("registry lock poisoned").clone();
        let mut out = String::new();
        let mut last_family = String::new();
        let header = |out: &mut String, family: &str, kind: &str, last: &mut String| {
            if family != last {
                if let Some(text) = help.get(family) {
                    out.push_str(&format!("# HELP {family} {text}\n"));
                }
                out.push_str(&format!("# TYPE {family} {kind}\n"));
                last.clear();
                last.push_str(family);
            }
        };
        for (key, entry) in self.counters.read().expect("registry lock poisoned").iter() {
            header(&mut out, &entry.name, "counter", &mut last_family);
            out.push_str(&format!("{key} {}\n", entry.inner.get()));
        }
        for (key, entry) in self.gauges.read().expect("registry lock poisoned").iter() {
            header(&mut out, &entry.name, "gauge", &mut last_family);
            out.push_str(&format!("{key} {}\n", entry.inner.get()));
        }
        for entry in self
            .histograms
            .read()
            .expect("registry lock poisoned")
            .values()
        {
            header(&mut out, &entry.name, "summary", &mut last_family);
            let snap = entry.inner.snapshot();
            let labels: Vec<(&str, &str)> = entry
                .labels
                .iter()
                .map(|(k, v)| (k.as_str(), v.as_str()))
                .collect();
            for (q, v) in [
                ("0.5", snap.p50()),
                ("0.9", snap.p90()),
                ("0.99", snap.p99()),
            ] {
                let mut with_q = labels.clone();
                with_q.push(("quantile", q));
                out.push_str(&format!("{} {v}\n", metric_key(&entry.name, &with_q)));
            }
            let suffixed = |suffix: &str| metric_key(&format!("{}{suffix}", entry.name), &labels);
            out.push_str(&format!("{} {}\n", suffixed("_count"), snap.count));
            out.push_str(&format!("{} {}\n", suffixed("_sum"), snap.sum));
            out.push_str(&format!("{} {}\n", suffixed("_max"), snap.max));
        }
        // Described families with no samples yet still render, at zero —
        // a scrape sees the full schema from the first request on.
        for family in help.keys() {
            if !out.contains(family.as_str()) {
                out.push_str(&format!("# TYPE {family} counter\n{family} 0\n"));
            }
        }
        out
    }
}

/// A point-in-time copy of a whole [`MetricsRegistry`], keyed by the
/// canonical [`metric_key`] strings. [`EngineSnapshot::delta`] turns
/// two snapshots into interval rates.
#[derive(Debug, Clone, PartialEq)]
pub struct EngineSnapshot {
    /// The export schema ([`SNAPSHOT_SCHEMA`]).
    pub schema: String,
    pub counters: BTreeMap<String, u64>,
    /// Gauges are levels, not rates — a delta keeps the newer value.
    pub gauges: BTreeMap<String, f64>,
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl EngineSnapshot {
    /// A counter's value (0 when the key never registered).
    pub fn counter(&self, key: &str) -> u64 {
        self.counters.get(key).copied().unwrap_or(0)
    }

    /// A gauge's level (0 when the key never registered).
    pub fn gauge(&self, key: &str) -> f64 {
        self.gauges.get(key).copied().unwrap_or(0.0)
    }

    /// A histogram's captured distribution, if the key registered.
    pub fn histogram(&self, key: &str) -> Option<&HistogramSnapshot> {
        self.histograms.get(key)
    }

    /// What happened between `earlier` and `self` (both snapshots of
    /// the same registry): counters and histogram counts/sums subtract;
    /// gauges keep the newer level.
    pub fn delta(&self, earlier: &EngineSnapshot) -> EngineSnapshot {
        EngineSnapshot {
            schema: self.schema.clone(),
            counters: self
                .counters
                .iter()
                .map(|(k, &v)| (k.clone(), v.saturating_sub(earlier.counter(k))))
                .collect(),
            gauges: self.gauges.clone(),
            histograms: self
                .histograms
                .iter()
                .map(|(k, h)| {
                    let before = earlier.histograms.get(k);
                    (
                        k.clone(),
                        match before {
                            Some(b) => h.delta(b),
                            None => h.clone(),
                        },
                    )
                })
                .collect(),
        }
    }

    /// The schema-versioned JSON document (hand-rendered — the
    /// workspace vendors no serde).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        out.push_str(&format!("\"schema\":\"{}\"", escape(&self.schema)));
        out.push_str(",\"counters\":{");
        for (i, (k, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{}\":{v}", escape(k)));
        }
        out.push_str("},\"gauges\":{");
        for (i, (k, v)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{}\":{}", escape(k), json_f64(*v)));
        }
        out.push_str("},\"histograms\":{");
        for (i, (k, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                concat!(
                    "\"{}\":{{\"count\":{},\"sum\":{},\"max\":{},",
                    "\"mean\":{},\"p50\":{},\"p90\":{},\"p99\":{}}}"
                ),
                escape(k),
                h.count,
                h.sum,
                h.max,
                json_f64(h.mean()),
                h.p50(),
                h.p90(),
                h.p99(),
            ));
        }
        out.push_str("}}");
        out
    }
}

/// Escapes a string for embedding in a JSON string literal.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Finite JSON number rendering (JSON has no NaN/Inf).
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keys_render_labels_in_order() {
        assert_eq!(metric_key("m", &[]), "m");
        assert_eq!(
            metric_key("m", &[("kind", "join"), ("w", "0")]),
            "m{kind=\"join\",w=\"0\"}"
        );
    }

    #[test]
    fn same_key_returns_the_same_instrument() {
        let reg = MetricsRegistry::new();
        let a = reg.counter("hits", &[("kind", "x")]);
        let b = reg.counter("hits", &[("kind", "x")]);
        a.add(3);
        assert_eq!(b.get(), 3);
        assert!(Arc::ptr_eq(&a, &b));
        let other = reg.counter("hits", &[("kind", "y")]);
        assert_eq!(other.get(), 0);
    }

    #[test]
    fn snapshot_json_is_schema_versioned_and_balanced() {
        let reg = MetricsRegistry::new();
        reg.counter("msj_admission_shed_total", &[]).add(2);
        reg.gauge("msj_admission_error", &[]).set(0.25);
        reg.histogram("msj_request_latency_nanos", &[("kind", "join")])
            .record(1500);
        let json = reg.snapshot_json();
        assert!(json.contains("\"schema\":\"msj-obs-v1\""));
        assert!(json.contains("\"msj_admission_shed_total\":2"));
        assert!(json.contains("\"msj_admission_error\":0.25"));
        assert!(json.contains("msj_request_latency_nanos{kind=\\\"join\\\"}"));
        assert!(json.contains("\"count\":1"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn prometheus_rendering_has_families_and_quantiles() {
        let reg = MetricsRegistry::new();
        reg.describe("msj_admission_shed_total", "Joins refused by admission");
        reg.describe("msj_request_latency_nanos", "Request latency");
        reg.counter("msj_step_nanos_total", &[("step", "step2")])
            .add(10);
        let h = reg.histogram("msj_request_latency_nanos", &[("kind", "join")]);
        h.record(1000);
        h.record(3000);
        let text = reg.render_prometheus();
        assert!(text.contains("# TYPE msj_step_nanos_total counter"));
        assert!(text.contains("msj_step_nanos_total{step=\"step2\"} 10"));
        assert!(text.contains("# HELP msj_request_latency_nanos Request latency"));
        assert!(text.contains("# TYPE msj_request_latency_nanos summary"));
        assert!(text.contains("msj_request_latency_nanos{kind=\"join\",quantile=\"0.5\"}"));
        assert!(text.contains("msj_request_latency_nanos_count{kind=\"join\"} 2"));
        assert!(text.contains("msj_request_latency_nanos_sum{kind=\"join\"} 4000"));
        assert!(text.contains("msj_request_latency_nanos_max{kind=\"join\"} 3000"));
        // A described family with no samples still renders (at zero).
        assert!(text.contains("msj_admission_shed_total 0"));
    }

    #[test]
    fn snapshot_delta_subtracts_counters_and_keeps_gauges() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("events", &[]);
        let g = reg.gauge("level", &[]);
        let h = reg.histogram("lat", &[]);
        c.add(5);
        g.set(1.0);
        h.record(10);
        let before = reg.snapshot();
        c.add(7);
        g.set(2.0);
        h.record(20);
        h.record(30);
        let delta = reg.snapshot().delta(&before);
        assert_eq!(delta.counter("events"), 7);
        assert_eq!(delta.gauge("level"), 2.0);
        let hd = delta.histogram("lat").unwrap();
        assert_eq!(hd.count, 2);
        assert_eq!(hd.sum, 50);
    }

    #[test]
    fn registry_survives_8_hammering_threads() {
        let reg = Arc::new(MetricsRegistry::new());
        std::thread::scope(|scope| {
            for t in 0..8usize {
                let reg = Arc::clone(&reg);
                scope.spawn(move || {
                    let kind = if t % 2 == 0 { "even" } else { "odd" };
                    for i in 0..5_000u64 {
                        // Mix cached-handle and re-registration paths.
                        reg.counter("hammer_total", &[("kind", kind)]).inc();
                        reg.histogram("hammer_lat", &[]).record(i);
                        reg.gauge("hammer_level", &[]).set(i as f64);
                    }
                });
            }
        });
        let snap = reg.snapshot();
        assert_eq!(
            snap.counter("hammer_total{kind=\"even\"}")
                + snap.counter("hammer_total{kind=\"odd\"}"),
            40_000
        );
        let h = snap.histogram("hammer_lat").unwrap();
        assert_eq!(h.count, 40_000);
        assert_eq!(h.max, 4_999);
    }
}

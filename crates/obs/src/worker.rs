//! Per-worker telemetry: who consumed how many pairs, who flushed how
//! many batches, and how skewed the distribution is.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// Which side of the candidate stream a lane instruments.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LaneRole {
    /// Backend/producer side: the Step-1 worker (partition tile worker,
    /// R*-traversal chunker) that *emits* candidates.
    Backend,
    /// Consumer side: the fused sink that *receives* candidate batches
    /// and runs Steps 2–3 on them.
    Consumer,
}

impl LaneRole {
    /// The role's label (`"backend"` / `"consumer"`).
    pub fn as_str(self) -> &'static str {
        match self {
            LaneRole::Backend => "backend",
            LaneRole::Consumer => "consumer",
        }
    }
}

/// One worker's counters: candidate pairs handled, batches flushed, and
/// the peak of whatever "buffered at once" means for its role (largest
/// chunk in flight for a producer, busiest tile for a partition
/// worker). All relaxed atomics — a lane is shared by reference into
/// the worker's hot loop.
#[derive(Debug, Default)]
pub struct WorkerLane {
    pairs: AtomicU64,
    batches: AtomicU64,
    peak_buffered: AtomicU64,
}

impl WorkerLane {
    /// Adds `n` candidate pairs.
    #[inline]
    pub fn add_pairs(&self, n: u64) {
        self.pairs.fetch_add(n, Ordering::Relaxed);
    }

    /// Counts one flushed batch (a chunk, a tile, a sink delivery).
    #[inline]
    pub fn inc_batches(&self) {
        self.batches.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts `n` flushed batches at once.
    #[inline]
    pub fn add_batches(&self, n: u64) {
        self.batches.fetch_add(n, Ordering::Relaxed);
    }

    /// Raises the peak-buffered watermark to `n` if larger.
    #[inline]
    pub fn record_buffered(&self, n: u64) {
        self.peak_buffered.fetch_max(n, Ordering::Relaxed);
    }

    fn snapshot(&self, role: LaneRole, worker: usize) -> WorkerLaneSnapshot {
        WorkerLaneSnapshot {
            role,
            worker,
            pairs: self.pairs.load(Ordering::Relaxed),
            batches: self.batches.load(Ordering::Relaxed),
            peak_buffered: self.peak_buffered.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time copy of one [`WorkerLane`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkerLaneSnapshot {
    pub role: LaneRole,
    /// Lane index within its role group (backend lanes are indexed by
    /// the backend's worker number; consumer lanes by attach order).
    pub worker: usize,
    pub pairs: u64,
    pub batches: u64,
    pub peak_buffered: u64,
}

/// Telemetry of one fused run: a lane per backend worker and a lane per
/// attached consumer sink. Create one per run, hand `&self` to the
/// candidate source and the consumer, then
/// [`snapshot`](WorkerTelemetry::snapshot) after the run.
#[derive(Debug)]
pub struct WorkerTelemetry {
    backends: Vec<WorkerLane>,
    consumers: Vec<WorkerLane>,
    next_consumer: AtomicUsize,
}

impl WorkerTelemetry {
    /// Telemetry sized for `workers` lanes per role (clamped to ≥ 1).
    pub fn new(workers: usize) -> Self {
        let workers = workers.max(1);
        WorkerTelemetry {
            backends: (0..workers).map(|_| WorkerLane::default()).collect(),
            consumers: (0..workers).map(|_| WorkerLane::default()).collect(),
            next_consumer: AtomicUsize::new(0),
        }
    }

    /// Backend worker `w`'s lane (wrapping beyond the sized count, so a
    /// backend that over-subscribes never panics).
    pub fn backend_lane(&self, w: usize) -> &WorkerLane {
        &self.backends[w % self.backends.len()]
    }

    /// Claims the next consumer lane (attach order).
    pub fn attach_consumer(&self) -> &WorkerLane {
        let i = self.next_consumer.fetch_add(1, Ordering::Relaxed);
        &self.consumers[i % self.consumers.len()]
    }

    /// All lanes (backends first, then consumers), including idle ones.
    pub fn snapshot(&self) -> Vec<WorkerLaneSnapshot> {
        self.backends
            .iter()
            .enumerate()
            .map(|(i, lane)| lane.snapshot(LaneRole::Backend, i))
            .chain(
                self.consumers
                    .iter()
                    .enumerate()
                    .map(|(i, lane)| lane.snapshot(LaneRole::Consumer, i)),
            )
            .collect()
    }

    /// Consumer-side imbalance: max/mean pairs over the consumer lanes
    /// that received anything (1.0 = perfectly balanced; 0 when idle).
    pub fn consumer_imbalance(&self) -> f64 {
        let pairs: Vec<u64> = self
            .consumers
            .iter()
            .map(|l| l.pairs.load(Ordering::Relaxed))
            .filter(|&p| p > 0)
            .collect();
        if pairs.is_empty() {
            return 0.0;
        }
        let max = *pairs.iter().max().expect("nonempty") as f64;
        let mean = pairs.iter().sum::<u64>() as f64 / pairs.len() as f64;
        max / mean
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lanes_count_per_worker() {
        let t = WorkerTelemetry::new(2);
        t.backend_lane(0).add_pairs(10);
        t.backend_lane(0).inc_batches();
        t.backend_lane(1).add_pairs(30);
        t.backend_lane(1).record_buffered(7);
        t.backend_lane(2).add_pairs(1); // wraps onto lane 0
        let snap = t.snapshot();
        assert_eq!(snap.len(), 4);
        assert_eq!(snap[0].pairs, 11);
        assert_eq!(snap[0].batches, 1);
        assert_eq!(snap[1].pairs, 30);
        assert_eq!(snap[1].peak_buffered, 7);
        assert_eq!(snap[0].role, LaneRole::Backend);
        assert_eq!(snap[2].role, LaneRole::Consumer);
        assert_eq!(LaneRole::Consumer.as_str(), "consumer");
    }

    #[test]
    fn consumer_lanes_assign_by_attach_order() {
        let t = WorkerTelemetry::new(3);
        std::thread::scope(|scope| {
            for _ in 0..3 {
                let t = &t;
                scope.spawn(move || t.attach_consumer().add_pairs(100));
            }
        });
        let consumers: Vec<_> = t
            .snapshot()
            .into_iter()
            .filter(|l| l.role == LaneRole::Consumer)
            .collect();
        assert_eq!(consumers.len(), 3);
        assert!(consumers.iter().all(|l| l.pairs == 100));
        assert!((t.consumer_imbalance() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn zero_workers_clamp_to_one_lane() {
        let t = WorkerTelemetry::new(0);
        t.backend_lane(0).add_pairs(1);
        assert_eq!(t.snapshot().len(), 2);
        assert_eq!(t.consumer_imbalance(), 0.0);
    }
}

//! Opt-in per-request traces, retained in a bounded ring.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Step-by-step wall-clock breakdown of one traced request
/// (nanoseconds; selections leave steps they do not run at zero).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TraceSteps {
    pub step0_nanos: u64,
    pub step1_nanos: u64,
    pub step2_nanos: u64,
    pub step2a_nanos: u64,
    pub step3_nanos: u64,
}

/// One traced request: identity, outcome sizes, latency and the step
/// breakdown. No wall-clock timestamps — the `seq` number orders traces
/// within one engine.
#[derive(Debug, Clone, PartialEq)]
pub struct Trace {
    /// Monotonic per-engine sequence number (registration order).
    pub seq: u64,
    /// Request kind (`"join"`, `"self_join"`, `"point"`, `"window"`).
    pub kind: &'static str,
    /// The dataset ids involved (`(id, id)` for selections).
    pub datasets: (u32, u32),
    /// Whether admission let the request run (`false` = shed; the
    /// remaining fields are then zero).
    pub admitted: bool,
    /// §5 modeled cost (seconds) the request was admitted/refused under
    /// (0 for selections).
    pub estimated_s: f64,
    /// End-to-end request latency.
    pub latency_nanos: u64,
    /// Step-1 candidates inspected.
    pub candidates: u64,
    /// Result rows (pairs or selected objects).
    pub results: u64,
    /// Kernel dispatch path the request's batched loops ran on
    /// (`"scalar"` / `"sse2"` / `"avx2"`), chosen once per engine.
    pub dispatch: &'static str,
    pub steps: TraceSteps,
}

/// A bounded ring of the most recent [`Trace`]s. Capacity 0 disables
/// tracing entirely ([`push`](TraceRing::push) is then a no-op).
#[derive(Debug)]
pub struct TraceRing {
    capacity: usize,
    seq: AtomicU64,
    ring: Mutex<VecDeque<Trace>>,
}

impl TraceRing {
    /// A ring retaining the `capacity` most recent traces.
    pub fn new(capacity: usize) -> Self {
        TraceRing {
            capacity,
            seq: AtomicU64::new(0),
            ring: Mutex::new(VecDeque::with_capacity(capacity)),
        }
    }

    /// Whether traces are retained at all.
    pub fn enabled(&self) -> bool {
        self.capacity > 0
    }

    /// Maximum retained traces.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The next trace sequence number (monotonic, shared across
    /// threads).
    pub fn next_seq(&self) -> u64 {
        self.seq.fetch_add(1, Ordering::Relaxed)
    }

    /// Retains `trace`, evicting the oldest beyond capacity.
    pub fn push(&self, trace: Trace) {
        if self.capacity == 0 {
            return;
        }
        let mut ring = self.ring.lock().expect("trace ring poisoned");
        if ring.len() == self.capacity {
            ring.pop_front();
        }
        ring.push_back(trace);
    }

    /// The retained traces, oldest first.
    pub fn recent(&self) -> Vec<Trace> {
        self.ring
            .lock()
            .expect("trace ring poisoned")
            .iter()
            .cloned()
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace(seq: u64) -> Trace {
        Trace {
            seq,
            kind: "join",
            datasets: (0, 1),
            admitted: true,
            estimated_s: 0.5,
            latency_nanos: 100 + seq,
            candidates: 10,
            results: 5,
            dispatch: "scalar",
            steps: TraceSteps::default(),
        }
    }

    #[test]
    fn ring_is_bounded_and_ordered() {
        let ring = TraceRing::new(3);
        assert!(ring.enabled());
        for _ in 0..5 {
            let seq = ring.next_seq();
            ring.push(trace(seq));
        }
        let recent = ring.recent();
        assert_eq!(recent.len(), 3);
        let seqs: Vec<u64> = recent.iter().map(|t| t.seq).collect();
        assert_eq!(seqs, vec![2, 3, 4]);
    }

    #[test]
    fn zero_capacity_disables_tracing() {
        let ring = TraceRing::new(0);
        assert!(!ring.enabled());
        ring.push(trace(0));
        assert!(ring.recent().is_empty());
    }
}

//! The lock-free instruments: counter, gauge, log₂-bucketed histogram.

use std::sync::atomic::{AtomicU64, Ordering};

/// A monotonically increasing event count (relaxed atomic).
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    pub fn new() -> Self {
        Counter::default()
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// The current count.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-write-wins floating-point level (f64 bits in a relaxed
/// atomic).
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    pub fn new() -> Self {
        Gauge::default()
    }

    /// Sets the level.
    #[inline]
    pub fn set(&self, value: f64) {
        self.0.store(value.to_bits(), Ordering::Relaxed);
    }

    /// The current level.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// Number of histogram buckets: bucket 0 holds the value `0`, bucket
/// `i ≥ 1` holds `[2^(i-1), 2^i)`, so 65 buckets cover all of `u64`
/// with ≤ 2× relative quantile error.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// A log₂-bucketed value distribution recordable from any number of
/// threads without locks: per-bucket relaxed counters plus an exact
/// `fetch_max` maximum and a running sum for the mean.
///
/// Quantiles ([`Histogram::quantile`], `p50`/`p90`/`p99`) report the
/// inclusive upper bound of the bucket containing the requested rank,
/// clamped to the exact observed maximum — an over-estimate by at most
/// the bucket width (2× the value), never an under-estimate.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }
}

/// The bucket a value lands in: `0 → 0`, otherwise `⌊log₂ v⌋ + 1`.
#[inline]
pub(crate) fn bucket_index(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        64 - value.leading_zeros() as usize
    }
}

/// Inclusive upper bound of bucket `i` (`u64::MAX` saturates the last).
pub(crate) fn bucket_upper(i: usize) -> u64 {
    match i {
        0 => 0,
        64.. => u64::MAX,
        _ => (1u64 << i) - 1,
    }
}

/// Inclusive lower bound of bucket `i`.
#[cfg(test)]
pub(crate) fn bucket_lower(i: usize) -> u64 {
    match i {
        0 => 0,
        _ => 1u64 << (i - 1),
    }
}

impl Histogram {
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Records one observation.
    #[inline]
    pub fn record(&self, value: u64) {
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Observations recorded so far.
    pub fn count(&self) -> u64 {
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum()
    }

    /// Sum of all recorded values (wrapping beyond `u64::MAX`).
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Exact largest recorded value (0 when empty).
    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// Mean of the recorded values (0 when empty).
    pub fn mean(&self) -> f64 {
        let count = self.count();
        if count == 0 {
            0.0
        } else {
            self.sum() as f64 / count as f64
        }
    }

    /// The `q`-quantile (`q` clamped to `[0, 1]`); 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        self.snapshot().quantile(q)
    }

    /// Median upper bound.
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 90th-percentile upper bound.
    pub fn p90(&self) -> u64 {
        self.quantile(0.90)
    }

    /// 99th-percentile upper bound.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// A point-in-time copy of the distribution.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let buckets: Vec<(u64, u64)> = self
            .buckets
            .iter()
            .enumerate()
            .filter_map(|(i, b)| {
                let count = b.load(Ordering::Relaxed);
                (count > 0).then(|| (bucket_upper(i), count))
            })
            .collect();
        HistogramSnapshot {
            count: buckets.iter().map(|&(_, c)| c).sum(),
            sum: self.sum(),
            max: self.max(),
            buckets,
        }
    }
}

/// A point-in-time copy of one [`Histogram`]: totals plus the nonempty
/// `(inclusive upper bound, count)` buckets in ascending order.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    pub count: u64,
    pub sum: u64,
    /// Exact observed maximum over the histogram's whole lifetime (in a
    /// [`delta`](HistogramSnapshot::delta) this stays the lifetime
    /// maximum — interval maxima are not recoverable from buckets).
    pub max: u64,
    pub buckets: Vec<(u64, u64)>,
}

impl HistogramSnapshot {
    /// Mean of the captured values (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The `q`-quantile over the captured buckets, clamped to the
    /// observed maximum; 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cumulative = 0u64;
        for &(upper, count) in &self.buckets {
            cumulative += count;
            if cumulative >= rank {
                return upper.min(self.max);
            }
        }
        self.max
    }

    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    pub fn p90(&self) -> u64 {
        self.quantile(0.90)
    }

    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// The distribution of observations recorded after `earlier` was
    /// taken (both snapshots of the *same* histogram): counts and sums
    /// subtract saturating; `max` stays the lifetime maximum.
    pub fn delta(&self, earlier: &HistogramSnapshot) -> HistogramSnapshot {
        let mut buckets = Vec::with_capacity(self.buckets.len());
        for &(upper, count) in &self.buckets {
            let before = earlier
                .buckets
                .iter()
                .find(|&&(u, _)| u == upper)
                .map_or(0, |&(_, c)| c);
            let diff = count.saturating_sub(before);
            if diff > 0 {
                buckets.push((upper, diff));
            }
        }
        HistogramSnapshot {
            count: self.count.saturating_sub(earlier.count),
            sum: self.sum.wrapping_sub(earlier.sum),
            max: self.max,
            buckets,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn counter_and_gauge_roundtrip() {
        let c = Counter::new();
        c.inc();
        c.add(41);
        assert_eq!(c.get(), 42);
        let g = Gauge::new();
        assert_eq!(g.get(), 0.0);
        g.set(-2.5);
        assert_eq!(g.get(), -2.5);
    }

    #[test]
    fn bucket_boundaries_land_exactly() {
        // Values sitting exactly on bucket edges: 2^(i-1) opens bucket i,
        // 2^i - 1 closes it.
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        for i in 1..=63usize {
            let lower = bucket_lower(i);
            let upper = bucket_upper(i);
            assert_eq!(bucket_index(lower), i, "lower edge of bucket {i}");
            assert_eq!(bucket_index(upper), i, "upper edge of bucket {i}");
            if i < 63 {
                assert_eq!(bucket_index(upper + 1), i + 1, "first of bucket {}", i + 1);
            }
        }
        // Powers of two are lower edges: 2, 4, 8 … open their buckets.
        for k in 1..=62u32 {
            let v = 1u64 << k;
            assert_eq!(bucket_index(v), k as usize + 1);
            assert_eq!(bucket_index(v - 1), k as usize);
        }
    }

    #[test]
    fn histogram_saturates_at_max() {
        let h = Histogram::new();
        h.record(u64::MAX);
        h.record(u64::MAX - 1);
        assert_eq!(bucket_index(u64::MAX), HISTOGRAM_BUCKETS - 1);
        assert_eq!(h.max(), u64::MAX);
        assert_eq!(h.count(), 2);
        // Quantiles clamp to the exact maximum, never overshoot it.
        assert_eq!(h.p50(), u64::MAX);
        assert_eq!(h.p99(), u64::MAX);
        let snap = h.snapshot();
        assert_eq!(snap.buckets, vec![(u64::MAX, 2)]);
    }

    #[test]
    fn quantiles_bound_the_true_value_from_above() {
        let h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 1000);
        assert_eq!(h.sum(), 500_500);
        let p50 = h.p50();
        // The true median is 500; the bucket upper bound is 511.
        assert!((500..=1023).contains(&p50), "p50 = {p50}");
        assert!(p50 >= 500);
        // p99 (true 990) reports the bucket holding it, clamped to the
        // observed max of 1000.
        let p99 = h.p99();
        assert!((990..=1000).contains(&p99), "p99 = {p99}");
        assert_eq!(h.quantile(1.0), 1000);
        assert_eq!(h.quantile(0.0), 1); // rank clamps to the first value
        assert!((h.mean() - 500.5).abs() < 1e-9);
    }

    #[test]
    fn zero_only_histogram() {
        let h = Histogram::new();
        assert_eq!(h.p50(), 0);
        h.record(0);
        h.record(0);
        assert_eq!(h.count(), 2);
        assert_eq!(h.max(), 0);
        assert_eq!(h.p99(), 0);
        assert_eq!(h.snapshot().buckets, vec![(0, 2)]);
    }

    #[test]
    fn snapshot_delta_isolates_the_interval() {
        let h = Histogram::new();
        for _ in 0..10 {
            h.record(4);
        }
        let before = h.snapshot();
        for _ in 0..5 {
            h.record(100);
        }
        let delta = h.snapshot().delta(&before);
        assert_eq!(delta.count, 5);
        assert_eq!(delta.sum, 500);
        assert_eq!(delta.buckets, vec![(127, 5)]);
        assert_eq!(delta.p50(), 100); // clamped to the lifetime max
    }

    #[test]
    fn histogram_is_consistent_under_8_threads() {
        let h = Arc::new(Histogram::new());
        const PER_THREAD: u64 = 10_000;
        std::thread::scope(|scope| {
            for t in 0..8u64 {
                let h = Arc::clone(&h);
                scope.spawn(move || {
                    for i in 0..PER_THREAD {
                        h.record(t * PER_THREAD + i);
                    }
                });
            }
        });
        assert_eq!(h.count(), 8 * PER_THREAD);
        let n = 8 * PER_THREAD;
        assert_eq!(h.sum(), n * (n - 1) / 2);
        assert_eq!(h.max(), n - 1);
    }
}

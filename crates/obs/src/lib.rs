//! Engine observability for the multi-step spatial join workspace.
//!
//! Everything here is built for the hot path of a resident
//! [`SpatialEngine`](../msj_core/struct.SpatialEngine.html): lock-free
//! atomic instruments cheap enough to be always-on, with the exporters
//! and per-request traces layered on top.
//!
//! * [`Counter`], [`Gauge`] — single relaxed atomics;
//! * [`Histogram`] — log₂-bucketed value distribution (65 fixed
//!   buckets covering all of `u64`) with `p50`/`p90`/`p99` quantiles
//!   and an exact observed maximum, recordable from any number of
//!   threads without locks;
//! * [`MetricsRegistry`] — named instruments with `{label="value"}`
//!   keys, an [`EngineSnapshot`] reader with a [`EngineSnapshot::delta`]
//!   helper for interval rates, a schema-versioned
//!   [`MetricsRegistry::snapshot_json`] exporter and a Prometheus-style
//!   [`MetricsRegistry::render_prometheus`] text rendering;
//! * [`Span`], [`StepSpans`] — per-step wall-clock accumulation shared
//!   across fused worker threads;
//! * [`Trace`], [`TraceRing`] — an opt-in bounded ring of recent
//!   per-request traces with the Step 0–3 breakdown;
//! * [`WorkerTelemetry`], [`WorkerLane`] — per-worker counters (pairs
//!   consumed, batches flushed, peak buffered) that make fused-worker
//!   imbalance visible.
//!
//! The crate deliberately depends on nothing but `std`, so every layer
//! of the workspace (`msj-sam`, `msj-partition`, `msj-core`) can record
//! into it without dependency cycles.

mod metrics;
mod registry;
mod span;
mod trace;
mod worker;

pub use metrics::{Counter, Gauge, Histogram, HistogramSnapshot, HISTOGRAM_BUCKETS};
pub use registry::{metric_key, EngineSnapshot, MetricsRegistry, SNAPSHOT_SCHEMA};
pub use span::{Span, Step, StepSpans};
pub use trace::{Trace, TraceRing, TraceSteps};
pub use worker::{LaneRole, WorkerLane, WorkerLaneSnapshot, WorkerTelemetry};

/// Observability policy carried by a join configuration: whether the
/// engine records metrics at all, and how many recent request traces to
/// retain.
///
/// The default is metrics **on** (the instruments are a handful of
/// relaxed atomic operations per batch, not per pair) with tracing
/// **off**. [`ObsConfig::disabled`] turns the whole layer off — the
/// execution paths then skip even the clock reads, which is what the
/// instrumentation-overhead guard in the bench compares against.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ObsConfig {
    /// Record metrics and step timings (default `true`).
    pub enabled: bool,
    /// Recent request traces to retain (`0` = tracing off, the default).
    pub trace_capacity: usize,
}

impl Default for ObsConfig {
    fn default() -> Self {
        ObsConfig {
            enabled: true,
            trace_capacity: 0,
        }
    }
}

impl ObsConfig {
    /// Metrics, step timing and tracing all off: the engine records
    /// nothing and skips the clock reads on the hot path.
    pub fn disabled() -> Self {
        ObsConfig {
            enabled: false,
            trace_capacity: 0,
        }
    }

    /// Metrics on plus a ring of the `capacity` most recent request
    /// traces.
    pub fn with_traces(capacity: usize) -> Self {
        ObsConfig {
            enabled: true,
            trace_capacity: capacity,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_presets() {
        let default = ObsConfig::default();
        assert!(default.enabled);
        assert_eq!(default.trace_capacity, 0);
        let off = ObsConfig::disabled();
        assert!(!off.enabled);
        let traced = ObsConfig::with_traces(16);
        assert!(traced.enabled);
        assert_eq!(traced.trace_capacity, 16);
    }
}

//! Fused-execution agreement: `Execution::Fused` must return the
//! byte-identical (canonically sorted) response set and exactly-merged
//! operation counts as `Execution::Serial` — across the paper's three
//! configurations, both Step-1 backends, and worker counts 1/2/8, plus
//! the empty-relation and single-candidate edge cases.

use msj_core::{Backend, Execution, JoinConfig, MultiStepJoin};
use msj_geom::{ObjectId, Point, Polygon, Relation, SpatialObject};
use proptest::prelude::*;

const THREAD_COUNTS: [usize; 3] = [1, 2, 8];

fn sorted(mut v: Vec<(ObjectId, ObjectId)>) -> Vec<(ObjectId, ObjectId)> {
    v.sort_unstable();
    v
}

fn versions() -> [JoinConfig; 3] {
    [
        JoinConfig::version1(),
        JoinConfig::version2(),
        JoinConfig::version3(),
    ]
}

fn backends() -> [Backend; 2] {
    [
        Backend::RStarTraversal,
        Backend::PartitionedSweep {
            tiles_per_axis: 4,
            threads: 2,
        },
    ]
}

/// Asserts the full fused-vs-serial contract for one relation pair under
/// one base configuration.
fn fused_equals_serial(name: &str, a: &Relation, b: &Relation, base: JoinConfig) {
    let serial =
        MultiStepJoin::new(base.to_builder().execution(Execution::Serial).build()).execute(a, b);
    let expect = sorted(serial.pairs.clone());
    for threads in THREAD_COUNTS {
        let fused = MultiStepJoin::new(
            base.to_builder()
                .execution(Execution::Fused { threads })
                .build(),
        )
        .execute(a, b);
        let label = format!("{name} {:?} x{threads}", base.backend);
        // Response set: byte-identical after canonical sorting (the
        // fused result is already canonically sorted).
        assert_eq!(fused.pairs, expect, "{label}: pairs diverged");
        // Step counters and operation counts merge exactly.
        let (s, f) = (&serial.stats, &fused.stats);
        assert_eq!(f.mbr_join.candidates, s.mbr_join.candidates, "{label}");
        assert_eq!(f.filter_false_hits, s.filter_false_hits, "{label}");
        assert_eq!(
            f.filter_hits_progressive, s.filter_hits_progressive,
            "{label}"
        );
        assert_eq!(
            f.filter_hits_false_area, s.filter_hits_false_area,
            "{label}"
        );
        assert_eq!(f.exact_tests, s.exact_tests, "{label}");
        assert_eq!(f.exact_hits, s.exact_hits, "{label}");
        assert_eq!(f.exact_ops, s.exact_ops, "{label}: op counts diverged");
        assert_eq!(f.result_pairs, s.result_pairs, "{label}");
        // The candidate set is never materialized: buffering stays under
        // the engine's per-worker bound (0 for streamed paths).
        assert!(
            f.peak_buffered_candidates
                <= msj_core::fused_buffer_bound(threads, msj_core::DEFAULT_BATCH_PAIRS),
            "{label}: peak buffer {} over bound",
            f.peak_buffered_candidates
        );
    }
}

#[test]
fn all_versions_and_backends_agree_on_carto_data() {
    let a = msj_datagen::small_carto(40, 24.0, 701);
    let b = msj_datagen::small_carto(40, 24.0, 702);
    for version in versions() {
        for backend in backends() {
            fused_equals_serial(
                "carto",
                &a,
                &b,
                version.to_builder().backend(backend).build(),
            );
        }
    }
}

#[test]
fn empty_relations_agree() {
    let empty = Relation::default();
    let carto = msj_datagen::small_carto(12, 16.0, 711);
    for backend in backends() {
        let base = JoinConfig::builder().backend(backend).build();
        fused_equals_serial("empty-vs-empty", &empty, &empty, base);
        fused_equals_serial("empty-vs-carto", &empty, &carto, base);
        fused_equals_serial("carto-vs-empty", &carto, &empty, base);
    }
}

#[test]
fn single_candidate_agrees() {
    // Exactly one candidate pair: two overlapping squares, nothing else.
    let square = |id: ObjectId, x: f64| {
        SpatialObject::new(
            id,
            Polygon::new(vec![
                Point::new(x, 0.0),
                Point::new(x + 2.0, 0.0),
                Point::new(x + 2.0, 2.0),
                Point::new(x, 2.0),
            ])
            .expect("square")
            .into(),
        )
    };
    let a = Relation::new(vec![square(0, 0.0)]);
    let b = Relation::new(vec![square(0, 1.0)]);
    for version in versions() {
        for backend in backends() {
            let base = version.to_builder().backend(backend).build();
            fused_equals_serial("single-candidate", &a, &b, base);
            let fused = MultiStepJoin::new(
                base.to_builder()
                    .execution(Execution::Fused { threads: 8 })
                    .build(),
            )
            .execute(&a, &b);
            assert_eq!(fused.pairs, vec![(0, 0)]);
            assert_eq!(fused.stats.mbr_join.candidates, 1);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Random workloads × versions × backends × worker counts: the fused
    /// engine is indistinguishable from the serial pipeline.
    #[test]
    fn random_workloads_fuse_identically(
        seed_a in 0u64..400,
        seed_b in 400u64..800,
        version_index in 0usize..3,
        backend_index in 0usize..2,
        holed in any::<bool>(),
    ) {
        let (a, b) = if holed {
            (
                msj_datagen::carto_with_holes(20, 20.0, seed_a),
                msj_datagen::carto_with_holes(20, 20.0, seed_b),
            )
        } else {
            (
                msj_datagen::small_carto(24, 20.0, seed_a),
                msj_datagen::small_carto(24, 20.0, seed_b),
            )
        };
        let base = versions()[version_index]
            .to_builder()
            .backend(backends()[backend_index])
            .build();
        fused_equals_serial("random", &a, &b, base);
    }
}

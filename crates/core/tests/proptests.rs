//! End-to-end property: the multi-step join equals the ground-truth
//! nested-loops exact join for every filter/exact configuration.

use msj_approx::{ConservativeKind, ProgressiveKind};
use msj_core::{
    ground_truth_join, Backend, Execution, JoinConfig, MultiStepJoin, RasterConfig, TreeLoader,
};
use msj_exact::ExactAlgorithm;
use proptest::prelude::*;

fn sorted(mut v: Vec<(u32, u32)>) -> Vec<(u32, u32)> {
    v.sort_unstable();
    v
}

fn conservative_strategy() -> impl Strategy<Value = Option<ConservativeKind>> {
    prop_oneof![
        Just(None),
        Just(Some(ConservativeKind::Mbc)),
        Just(Some(ConservativeKind::Mbe)),
        Just(Some(ConservativeKind::Rmbr)),
        Just(Some(ConservativeKind::FourCorner)),
        Just(Some(ConservativeKind::FiveCorner)),
        Just(Some(ConservativeKind::ConvexHull)),
    ]
}

fn progressive_strategy() -> impl Strategy<Value = Option<ProgressiveKind>> {
    prop_oneof![
        Just(None),
        Just(Some(ProgressiveKind::Mec)),
        Just(Some(ProgressiveKind::Mer)),
    ]
}

fn backend_strategy() -> impl Strategy<Value = Backend> {
    prop_oneof![
        Just(Backend::RStarTraversal),
        Just(Backend::PartitionedSweep {
            tiles_per_axis: 1,
            threads: 1
        }),
        Just(Backend::PartitionedSweep {
            tiles_per_axis: 4,
            threads: 2
        }),
        Just(Backend::PartitionedSweep {
            tiles_per_axis: 16,
            threads: 8
        }),
    ]
}

fn execution_strategy() -> impl Strategy<Value = Execution> {
    prop_oneof![
        Just(Execution::Serial),
        Just(Execution::Fused { threads: 1 }),
        Just(Execution::Fused { threads: 2 }),
        Just(Execution::Fused { threads: 8 }),
    ]
}

/// Step-0 loader × sink batch size, combined into one strategy.
fn loader_batch_strategy() -> impl Strategy<Value = (TreeLoader, usize)> {
    prop_oneof![
        Just((TreeLoader::Str, 1usize)),
        Just((TreeLoader::Str, 7)),
        Just((TreeLoader::Str, 1024)),
        Just((TreeLoader::Incremental, 1)),
        Just((TreeLoader::Incremental, 1024)),
    ]
}

/// Step-2a raster stage: off, auto-sized, and explicit resolutions.
fn raster_strategy() -> impl Strategy<Value = RasterConfig> {
    prop_oneof![
        Just(RasterConfig::off()),
        Just(RasterConfig::default()),
        Just(RasterConfig::with_bits(5)),
        Just(RasterConfig::with_bits(9)),
    ]
}

fn exact_strategy() -> impl Strategy<Value = ExactAlgorithm> {
    prop_oneof![
        Just(ExactAlgorithm::Quadratic),
        Just(ExactAlgorithm::PlaneSweep { restrict: true }),
        Just(ExactAlgorithm::PlaneSweep { restrict: false }),
        Just(ExactAlgorithm::TrStar { max_entries: 3 }),
        Just(ExactAlgorithm::TrStar { max_entries: 5 }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn multi_step_join_is_exact_for_any_configuration(
        seed_a in 0u64..1000,
        seed_b in 1000u64..2000,
        conservative in conservative_strategy(),
        progressive in progressive_strategy(),
        false_area_test in any::<bool>(),
        raster in raster_strategy(),
        exact in exact_strategy(),
        backend in backend_strategy(),
        execution in execution_strategy(),
        loader_batch in loader_batch_strategy(),
        page_size in prop_oneof![Just(1024usize), Just(2048), Just(4096)],
    ) {
        let (loader, batch_pairs) = loader_batch;
        let a = msj_datagen::small_carto(24, 20.0, seed_a);
        let b = msj_datagen::small_carto(24, 20.0, seed_b);
        let config = JoinConfig::builder()
            .backend(backend)
            .page_size(page_size)
            .buffer_bytes(32 * 1024)
            .conservative(conservative)
            .progressive(progressive)
            .false_area_test(false_area_test)
            .raster(raster)
            .exact(exact)
            .execution(execution)
            .loader(loader)
            .batch_pairs(batch_pairs)
            .build();
        let result = MultiStepJoin::new(config).execute(&a, &b);
        let expect = sorted(ground_truth_join(&a, &b));
        prop_assert_eq!(sorted(result.pairs), expect, "config {:?}", config);

        // Statistics identities.
        let s = &result.stats;
        prop_assert_eq!(s.mbr_join.candidates, s.identified() + s.exact_tests);
        prop_assert_eq!(
            s.result_pairs,
            s.raster_hits + s.filter_hits_progressive + s.filter_hits_false_area + s.exact_hits
        );
        if raster.enabled {
            prop_assert_eq!(
                s.mbr_join.candidates,
                s.raster_hits + s.raster_drops + s.raster_inconclusive
            );
        } else {
            prop_assert_eq!(s.raster_hits + s.raster_drops + s.raster_inconclusive, 0);
        }
    }
}
